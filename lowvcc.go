// Package lowvcc is a library-level reproduction of "High-Performance
// Low-Vcc In-Order Core" (Abella, Chaparro, Vera, Carretero, González —
// HPCA 2010): IRAW (immediate read after write) avoidance lets every SRAM
// block of an in-order core run at logic speed at low supply voltage by
// interrupting write operations early and guaranteeing that no read ever
// observes a not-yet-stabilized entry.
//
// The package is a facade over the internal implementation:
//
//   - the calibrated circuit/delay model (internal/circuit);
//   - the cycle-level Silverthorne-like core with all its SRAM blocks and
//     per-structure avoidance mechanisms (internal/core and substrates);
//   - the synthetic workload suite (internal/workload);
//   - the experiment harness regenerating every table and figure of the
//     paper's evaluation (internal/sim).
//
// Quick start:
//
//	tr := lowvcc.GenerateTrace(lowvcc.SpecIntProfile(), 100000, 1)
//	base := lowvcc.MustNewCore(lowvcc.DefaultConfig(500, lowvcc.ModeBaseline))
//	iraw := lowvcc.MustNewCore(lowvcc.DefaultConfig(500, lowvcc.ModeIRAW))
//	rb, _ := base.Run(tr)
//	ri, _ := iraw.Run(tr)
//	fmt.Printf("speedup at 500mV: %.2fx\n", rb.Time/ri.Time)
package lowvcc

import (
	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
	"lowvcc/internal/sim"
	"lowvcc/internal/trace"
	"lowvcc/internal/workload"
)

// Core types re-exported for library users.
type (
	// Millivolts is a supply-voltage level (700 down to 400, step 25).
	Millivolts = circuit.Millivolts
	// Mode selects the design: baseline, IRAW, faulty-bits, extra-bypass.
	Mode = circuit.Mode
	// ClockPlan is the timing configuration at one operating point.
	ClockPlan = circuit.ClockPlan
	// Config describes one simulated core.
	Config = core.Config
	// Core is a simulated operating point of the modelled processor.
	Core = core.Core
	// Result reports one simulated trace.
	Result = core.Result
	// Trace is a dynamic instruction sequence.
	Trace = trace.Trace
	// Profile parameterizes a synthetic workload class.
	Profile = workload.Profile
	// SuiteSpec sizes the standard evaluation suite.
	SuiteSpec = sim.SuiteSpec
)

// Design modes.
const (
	ModeBaseline    = circuit.ModeBaseline
	ModeIRAW        = circuit.ModeIRAW
	ModeFaultyBits  = circuit.ModeFaultyBits
	ModeExtraBypass = circuit.ModeExtraBypass
)

// Levels returns the modelled voltage levels, 700 mV down to 400 mV.
func Levels() []Millivolts { return circuit.Levels() }

// DefaultConfig returns the modelled Silverthorne-like core at (v, mode).
func DefaultConfig(v Millivolts, mode Mode) Config { return core.DefaultConfig(v, mode) }

// DefaultConfigWidth is DefaultConfig at an explicit fetch/issue width in
// [1, core.MaxWidth], growing the IQ issue/alloc bounds to fit wide cores;
// width 2 returns DefaultConfig exactly.
func DefaultConfigWidth(v Millivolts, mode Mode, width int) Config {
	return core.DefaultConfigWidth(v, mode, width)
}

// NewCore builds a core for cfg.
func NewCore(cfg Config) (*Core, error) { return core.New(cfg) }

// MustNewCore is NewCore for static configurations.
func MustNewCore(cfg Config) *Core { return core.MustNew(cfg) }

// DelayModel returns the calibrated circuit model (Figure 1 curves, clock
// plans, frequency gains).
func DelayModel() *circuit.Model { return circuit.Default() }

// GenerateTrace produces a deterministic synthetic trace.
func GenerateTrace(p Profile, instructions int, seed uint64) *Trace {
	return workload.Generate(p, instructions, seed)
}

// Workload profiles (the paper-aligned classes).
func SpecIntProfile() Profile     { return workload.SpecInt() }
func SpecFPProfile() Profile      { return workload.SpecFP() }
func KernelProfile() Profile      { return workload.Kernel() }
func MultimediaProfile() Profile  { return workload.Multimedia() }
func OfficeProfile() Profile      { return workload.Office() }
func ServerProfile() Profile      { return workload.Server() }
func WorkstationProfile() Profile { return workload.Workstation() }
func MemBoundProfile() Profile    { return workload.MemBound() }

// StandardSuite returns the evaluation workload: every paper-aligned
// class, seedsPerProfile traces each, n instructions per trace.
//
// Suites are memoized per (n, seedsPerProfile) and shared between callers;
// treat the returned traces as read-only. To build a variant workload,
// copy a trace (or use GenerateTrace) instead of mutating one in place.
func StandardSuite(n, seedsPerProfile int) []*Trace {
	return workload.Suite(n, seedsPerProfile)
}

// RunWarm runs tr once untimed (cache warm-up) and once measured on a fresh
// core built from cfg, returning the measured result.
func RunWarm(cfg Config, tr *Trace) (*Result, error) {
	c, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := c.Run(tr); err != nil {
		return nil, err
	}
	return c.Run(tr)
}

// MergeResults aggregates per-trace results into suite totals.
func MergeResults(results []*Result) *Result { return core.MergeResults(results) }
