package lowvcc_test

import (
	"testing"

	"lowvcc"
)

// TestFacadeQuickstart exercises the documented public-API flow end to end.
func TestFacadeQuickstart(t *testing.T) {
	tr := lowvcc.GenerateTrace(lowvcc.SpecIntProfile(), 15000, 1)
	base, err := lowvcc.RunWarm(lowvcc.DefaultConfig(500, lowvcc.ModeBaseline), tr)
	if err != nil {
		t.Fatal(err)
	}
	iraw, err := lowvcc.RunWarm(lowvcc.DefaultConfig(500, lowvcc.ModeIRAW), tr)
	if err != nil {
		t.Fatal(err)
	}
	speedup := base.Time / iraw.Time
	if speedup < 1.2 || speedup > 1.6 {
		t.Errorf("speedup at 500mV = %.2f, want the paper's band (~1.4-1.5)", speedup)
	}
	if iraw.CorruptConsumed != 0 {
		t.Errorf("corrupt consumed: %d", iraw.CorruptConsumed)
	}
}

func TestFacadeLevels(t *testing.T) {
	ls := lowvcc.Levels()
	if len(ls) != 13 || ls[0] != 700 || ls[12] != 400 {
		t.Fatalf("levels = %v", ls)
	}
}

func TestFacadeDelayModel(t *testing.T) {
	m := lowvcc.DelayModel()
	if g := m.FreqGain(500); g < 1.55 || g > 1.59 {
		t.Fatalf("FreqGain(500) = %.3f", g)
	}
}

func TestFacadeProfilesDistinct(t *testing.T) {
	profiles := []lowvcc.Profile{
		lowvcc.SpecIntProfile(), lowvcc.SpecFPProfile(), lowvcc.KernelProfile(),
		lowvcc.MultimediaProfile(), lowvcc.OfficeProfile(), lowvcc.ServerProfile(),
		lowvcc.WorkstationProfile(), lowvcc.MemBoundProfile(),
	}
	names := map[string]bool{}
	for _, p := range profiles {
		if names[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		names[p.Name] = true
		if err := p.Validate(); err != nil {
			t.Errorf("profile %q invalid: %v", p.Name, err)
		}
	}
}

func TestFacadeSuiteAndMerge(t *testing.T) {
	traces := lowvcc.StandardSuite(2000, 1)
	if len(traces) != 7 {
		t.Fatalf("suite size = %d", len(traces))
	}
	var results []*lowvcc.Result
	for _, tr := range traces {
		r, err := lowvcc.RunWarm(lowvcc.DefaultConfig(575, lowvcc.ModeIRAW), tr)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	agg := lowvcc.MergeResults(results)
	if agg.Run.Instructions != 7*2000 {
		t.Fatalf("aggregate instructions = %d", agg.Run.Instructions)
	}
}
