// Command irawsim runs a single simulation: one workload (a named profile
// or a trace file) on one core configuration, printing the performance
// counters and violation accounting.
//
//	irawsim -mv 500 -mode iraw -profile specint -insts 100000
//	irawsim -mv 450 -mode baseline -trace foo.trc
package main

import (
	"flag"
	"fmt"
	"os"

	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
	"lowvcc/internal/report"
	"lowvcc/internal/stats"
	"lowvcc/internal/trace"
	"lowvcc/internal/workload"
)

func main() {
	mv := flag.Int("mv", 500, "supply voltage in millivolts (400..700, step 25)")
	mode := flag.String("mode", "iraw", "design: baseline, iraw, faultybits, extrabypass")
	profile := flag.String("profile", "specint", "workload profile (specint, specfp, kernel, multimedia, office, server, workstation, membound)")
	traceFile := flag.String("trace", "", "trace file (overrides -profile)")
	insts := flag.Int("insts", 100000, "instructions to generate (with -profile)")
	seed := flag.Uint64("seed", 1, "generation seed")
	warm := flag.Bool("warm", true, "run one untimed warm-up pass first")
	forcedN := flag.Int("n", 0, "force stabilization cycles (0 = derive from Vcc)")
	unsafe := flag.Bool("unsafe", false, "disable avoidance mechanisms (validation mode)")
	flag.Parse()

	if err := run(*mv, *mode, *profile, *traceFile, *insts, *seed, *warm, *forcedN, *unsafe); err != nil {
		fmt.Fprintln(os.Stderr, "irawsim:", err)
		os.Exit(1)
	}
}

func parseMode(s string) (circuit.Mode, error) {
	switch s {
	case "baseline":
		return circuit.ModeBaseline, nil
	case "iraw":
		return circuit.ModeIRAW, nil
	case "faultybits":
		return circuit.ModeFaultyBits, nil
	case "extrabypass":
		return circuit.ModeExtraBypass, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func profileByName(name string) (workload.Profile, error) {
	for _, p := range workload.Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	if name == "membound" {
		return workload.MemBound(), nil
	}
	return workload.Profile{}, fmt.Errorf("unknown profile %q", name)
}

func run(mv int, modeName, profName, traceFile string, insts int, seed uint64, warm bool, forcedN int, unsafe bool) error {
	mode, err := parseMode(modeName)
	if err != nil {
		return err
	}
	var tr *trace.Trace
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if tr, err = trace.Read(f); err != nil {
			return err
		}
	} else {
		p, err := profileByName(profName)
		if err != nil {
			return err
		}
		tr = workload.Generate(p, insts, seed)
	}

	cfg := core.DefaultConfig(circuit.Millivolts(mv), mode)
	cfg.ForcedN = forcedN
	cfg.DisableAvoidance = unsafe
	c, err := core.New(cfg)
	if err != nil {
		return err
	}
	if warm {
		if _, err := c.Run(tr); err != nil {
			return err
		}
	}
	res, err := c.Run(tr)
	if err != nil {
		return err
	}

	plan := res.Plan
	t := report.NewTable(fmt.Sprintf("%s @ %v, %v design", tr.Name, plan.Vcc, plan.Mode), "metric", "value")
	t.AddRow("cycle time (a.u.)", plan.CycleTime)
	t.AddRow("IRAW active", fmt.Sprintf("%v (N=%d)", plan.IRAWActive, plan.StabilizeCycles))
	t.AddRow("frequency gain vs baseline", plan.FreqGain)
	t.AddRow("instructions", res.Run.Instructions)
	t.AddRow("cycles", res.Run.Cycles)
	t.AddRow("IPC", res.IPC())
	t.AddRow("execution time (a.u.)", res.Time)
	t.AddRow("delayed by RF IRAW", report.Pct(res.Run.DelayedFraction()))
	for _, k := range []stats.StallKind{stats.StallRFIRAW, stats.StallIQGate, stats.StallDL0IRAW,
		stats.StallOtherIRAW, stats.StallRAW, stats.StallMemory, stats.StallStructural, stats.StallFetchEmpty} {
		t.AddRow("stall "+k.String(), report.Pct(res.Run.StallFraction(k)))
	}
	t.AddRow("DL0 hit rate", report.Pct(rate(res.DL0.Hits, res.DL0.Accesses)))
	t.AddRow("UL1 hit rate", report.Pct(rate(res.UL1.Hits, res.UL1.Accesses)))
	t.AddRow("BP mispredict rate", report.Pct(rate(res.BP.Mispredicts, res.BP.Predictions)))
	t.AddRow("STable forwards", res.Mem.STableForwards)
	t.AddRow("repaired destructions", res.RepairedDestructions)
	t.AddRow("violations (RF/cache)", fmt.Sprintf("%d/%d", res.RFViolations, res.CacheViolations))
	t.AddRow("corrupt data consumed", res.CorruptConsumed)
	t.AddRow("integrity errors", res.IntegrityErrors)
	return t.Render(os.Stdout)
}

func rate(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
