// Command figures regenerates every table and figure of the paper's
// evaluation (and the extra statistics Section 4/5 quote inline):
//
//	figures -fig 1          Figure 1  (delay curves)
//	figures -fig 11a        Figure 11(a) (cycle times)
//	figures -fig 11b        Figure 11(b) (frequency & performance gains)
//	figures -fig 12         Figure 12 (energy, delay, EDP)
//	figures -fig t1         Table 1 (mechanism comparison, quantitative)
//	figures -fig breakdown  Section 5.2 stall decomposition at -mv
//	figures -fig delayed    The 13.2%-delayed-instructions statistic
//	figures -fig bp         Section 4.5 BP/RSB statistics
//	figures -fig overhead   Section 5.3 area/energy overheads
//	figures -fig edp450     Section 5.3 worked example at 450 mV
//	figures -fig nsweep     N ablation (1..4 stabilization cycles)
//	figures -fig resched    compiler-rescheduling extension (§5.2 future work)
//	figures -fig gate       IQ occupancy-gate sensitivity (ICI/AI)
//	figures -fig stable     Store-Table sizing ablation
//	figures -fig det        deterministic BP/RSB testability variant (§4.5)
//	figures -fig combined   IRAW + Faulty-Bits combination (§4.4)
//	figures -fig width      core-width ablation (widths 1/2/4 x Vcc x design)
//	figures -fig plots      ASCII renderings of Figures 1 and 11(a)
//	figures -fig all        everything above
//
// Use -insts/-seeds to scale the workload and -csv for CSV output. -width
// re-runs any figure on a wider (or scalar) core; the width ablation table
// sweeps widths itself and ignores it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"lowvcc/internal/circuit"
	"lowvcc/internal/report"
	"lowvcc/internal/service"
	"lowvcc/internal/sim"
	"lowvcc/internal/trace"
)

func main() {
	fig := flag.String("fig", "all", "which artifact to regenerate (1, 11a, 11b, 12, t1, breakdown, delayed, bp, overhead, edp450, nsweep, all)")
	insts := flag.Int("insts", 60000, "instructions per trace")
	seeds := flag.Int("seeds", 2, "traces per workload class")
	mv := flag.Int("mv", 575, "voltage for the breakdown statistic")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	width := flag.Int("width", 0, "fetch/issue width of the simulated core, 1..4 (0 = the modelled default, 2)")
	workers := flag.Int("workers", 0, "simulation worker goroutines (0 = GOMAXPROCS)")
	window := flag.Int("window", 0, "shard traces into sample windows of this many instructions (0 = auto for long traces, <0 = off)")
	warm := flag.Int("warm", 0, "warm-up prefix per sample window (0 = mode default, <0 = full prefix)")
	warmMode := flag.String("warmmode", "functional", "sample-window warm-up: functional (timing-free replay) or timed")
	ckptSpec := flag.String("ckpt", "", "warm-state checkpoint store: auto (default; journal dir or in-memory), off, or a directory")
	timeout := flag.Duration("timeout", 0, "per-point wall-clock budget (0 = none)")
	progress := flag.Bool("progress", false, "print per-point progress lines to stderr as grid cells complete")
	journal := flag.String("journal", "", "journal completed cells to this directory and replay them on restart")
	journalBudget := flag.Int64("journal-budget", 0, "journal disk budget in bytes; least-recently-used entries evict past it (0 = unbounded)")
	ckptBudget := flag.Int64("ckpt-budget", 0, "checkpoint-store disk budget in bytes (0 = unbounded)")
	retries := flag.Int("retries", 0, "retry transiently-failed cells (timeouts) this many times")
	retryBackoff := flag.Duration("retry-backoff", time.Second, "backoff before the first retry (doubles per attempt)")
	allowPartial := flag.Bool("allow-partial", false, "keep going past failed cells; streaming tables mark them FAIL(reason)")
	server := flag.String("server", "", "run the sweep on a sweepd daemon at this address (-fig 11b only)")
	flag.Parse()
	wm, err := sim.ParseWarmMode(*warmMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(2)
	}
	sim.SetWorkers(*workers)
	sim.SetWidth(*width)
	sim.SetWindow(*window, *warm)
	sim.SetWarmMode(wm)
	sim.SetPointTimeout(*timeout)
	sim.SetJournal(*journal)
	sim.SetJournalBudget(*journalBudget)
	sim.SetCheckpoints(*ckptSpec)
	sim.SetCheckpointBudget(*ckptBudget)
	sim.SetRetries(*retries, *retryBackoff)
	sim.SetAllowPartial(*allowPartial)
	if *progress {
		start := time.Now()
		sim.SetProgress(func(u sim.PointUpdate) {
			switch {
			case u.Err != nil && u.Point >= 0:
				fmt.Fprintf(os.Stderr, "figures: [%6.2fs] %3d/%d %s %s FAILED: %v\n",
					time.Since(start).Seconds(), u.Done, u.Total, u.Label, u.TraceName, u.Err)
			case u.Err != nil:
				// Terminal update; the error surfaces through the generator.
			default:
				tag := ""
				if u.Replayed {
					tag = " [journal]"
				}
				fmt.Fprintf(os.Stderr, "figures: [%6.2fs] %3d/%d %s %s (%d window(s))%s\n",
					time.Since(start).Seconds(), u.Done, u.Total, u.Label, u.TraceName, u.Windows, tag)
			}
		})
	}

	spec := sim.SuiteSpec{InstsPerTrace: *insts, SeedsPerProfile: *seeds}
	g := &gen{csv: *csv, spec: spec, breakdownMV: circuit.Millivolts(*mv),
		server: *server, window: *window, warm: *warm, warmMode: *warmMode,
		width: *width}
	if *server != "" && *fig != "11b" {
		fmt.Fprintln(os.Stderr, "figures: -server only supports -fig 11b (the voltage-sweep figure)")
		os.Exit(2)
	}
	if err := g.run(*fig); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

type gen struct {
	csv         bool
	spec        sim.SuiteSpec
	breakdownMV circuit.Millivolts
	traces      []*trace.Trace

	// server, when non-empty, runs the Figure 11(b) sweep on a sweepd
	// daemon at that address; the windowing flags ride along so the
	// daemon's cell keys match a local journal's.
	server   string
	window   int
	warm     int
	warmMode string
	width    int
}

func (g *gen) suite() []*trace.Trace {
	if g.traces == nil {
		g.traces = g.spec.Traces()
	}
	return g.traces
}

func (g *gen) emit(t *report.Table) error {
	if g.csv {
		return t.RenderCSV(os.Stdout)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func (g *gen) run(fig string) error {
	all := fig == "all"
	any := false
	steps := []struct {
		name string
		f    func() error
	}{
		{"1", g.fig1}, {"11a", g.fig11a}, {"11b", g.fig11b}, {"12", g.fig12},
		{"t1", g.table1}, {"breakdown", g.breakdown}, {"delayed", g.delayed},
		{"bp", g.bp}, {"overhead", g.overhead}, {"edp450", g.edp450},
		{"nsweep", g.nsweep}, {"resched", g.resched}, {"gate", g.gate},
		{"stable", g.stableSizing}, {"det", g.determinism},
		{"combined", g.combined}, {"width", g.widthAblation}, {"plots", g.plots},
	}
	for _, s := range steps {
		if all || fig == s.name {
			any = true
			if err := s.f(); err != nil {
				return fmt.Errorf("fig %s: %w", s.name, err)
			}
		}
	}
	if !any {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

func (g *gen) fig1() error {
	t := report.NewTable("Figure 1: delay vs Vcc (normalized to 12 FO4 at 700mV)",
		"Vcc", "12FO4", "write", "read", "write+WL", "read+WL")
	for _, r := range sim.Figure1() {
		t.AddRow(r.Vcc, r.Phase, r.BitcellWrite, r.BitcellRead, r.WriteWithWL, r.ReadWithWL)
	}
	return g.emit(t)
}

func (g *gen) fig11a() error {
	t := report.NewTable("Figure 11(a): cycle time (normalized to 24 FO4 at 700mV)",
		"Vcc", "24FO4", "baseline", "IRAW")
	for _, r := range sim.Figure11a() {
		t.AddRow(r.Vcc, r.LogicCycle, r.BaselineCycle, r.IRAWCycle)
	}
	return g.emit(t)
}

// fig11bTable is the figure's stream table (shared by the local and
// -server paths).
func (g *gen) fig11bTable() (*report.StreamTable, error) {
	return report.NewStreamTable(os.Stdout, g.csv,
		"Figure 11(b): IRAW frequency increase and performance gains",
		"Vcc", "freq-gain", "perf-gain", "ipc-base", "ipc-iraw", "stall-cost")
}

// serverFig11b renders Figure 11(b) from a sweepd daemon's results: the
// client's level aggregation is bit-identical to the local sweep's, so the
// table matches a local run of the same suite.
func (g *gen) serverFig11b() error {
	cl, err := service.NewClient(g.server)
	if err != nil {
		return err
	}
	t, err := g.fig11bTable()
	if err != nil {
		return err
	}
	spec := sim.SweepSpec{
		InstsPerTrace:   g.spec.InstsPerTrace,
		SeedsPerProfile: g.spec.SeedsPerProfile,
		Modes:           []string{"baseline", "iraw"},
		WindowInsts:     g.window,
		WarmInsts:       g.warm,
		WarmMode:        g.warmMode,
		Width:           g.width,
	}
	failed := 0
	err = cl.StreamLevels(context.Background(), spec,
		func(v circuit.Millivolts, pts map[circuit.Mode]*sim.Point, fails map[circuit.Mode]*sim.CellError) error {
			for _, m := range []circuit.Mode{circuit.ModeBaseline, circuit.ModeIRAW} {
				if ce := fails[m]; ce != nil {
					failed++
					return t.AddRow(v, "FAIL("+ce.Reason(32)+")", "-", "-", "-", "-")
				}
			}
			r := sim.Fig11bFrom(v, pts[circuit.ModeBaseline].Agg, pts[circuit.ModeIRAW].Agg)
			return t.AddRow(r.Vcc, r.FreqGain, r.PerfGain, r.IPCBase, r.IPCIRAW, report.Pct(r.StallCost))
		})
	if err != nil {
		return err
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "figures: %d operating point(s) failed; rows marked FAIL\n", failed)
	}
	if !g.csv {
		fmt.Println()
	}
	return nil
}

// fig11b renders Figure 11(b) progressively: each voltage's row prints the
// moment both designs at that level finish simulating, so the figure
// starts appearing long before the full (mode x voltage x trace) grid
// completes.
func (g *gen) fig11b() error {
	if g.server != "" {
		return g.serverFig11b()
	}
	t, err := g.fig11bTable()
	if err != nil {
		return err
	}
	var rowErr error
	_, err = sim.Figure11bStream(context.Background(), g.suite(), func(r sim.Fig11bRow, fail *sim.CellError) {
		var e error
		if fail != nil {
			e = t.AddRow(r.Vcc, "FAIL("+fail.Reason(32)+")", "-", "-", "-", "-")
		} else {
			e = t.AddRow(r.Vcc, r.FreqGain, r.PerfGain, r.IPCBase, r.IPCIRAW, report.Pct(r.StallCost))
		}
		if e != nil && rowErr == nil {
			rowErr = e
		}
	})
	var pe *sim.PartialError
	if errors.As(err, &pe) {
		// The failed voltages already rendered as FAIL rows (-allow-partial);
		// note the damage and keep the run alive.
		fmt.Fprintf(os.Stderr, "figures: %d cell(s) failed; rows marked FAIL\n", len(pe.Cells))
	} else if err != nil {
		return err
	}
	if rowErr != nil {
		return rowErr
	}
	if !g.csv {
		fmt.Println()
	}
	return nil
}

func (g *gen) fig12() error {
	rows, err := sim.Figure12(g.suite())
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 12: IRAW energy, delay and EDP relative to baseline",
		"Vcc", "delay", "energy", "EDP")
	for _, r := range rows {
		t.AddRow(r.Vcc, r.RelDelay, r.RelEnergy, r.RelEDP)
	}
	return g.emit(t)
}

func (g *gen) table1() error {
	res, err := sim.Table1(g.suite(), 500)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Table 1 (quantitative, at %v)", res.Vcc),
		"mechanism", "all-blocks", "adapts-Vcc", "hw-overhead", "hard-to-test",
		"freq-gain", "perf-gain", "feasible", "caveat")
	for _, r := range res.Rows {
		t.AddRow(r.Mode.String(), report.Bool(r.WorksForAllBlocks), report.Bool(r.AdaptsToVcc),
			r.HardwareOverhead, report.Bool(r.HardToTest),
			r.FreqGain, r.PerfGain, report.Bool(r.Feasible), r.Caveat)
	}
	return g.emit(t)
}

func (g *gen) breakdown() error {
	res, err := sim.Breakdown(g.suite(), g.breakdownMV)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Section 5.2 stall decomposition at %v (paper: 8.86%% = 8.52 RF + 0.30 DL0 + 0.04 rest)", res.Vcc),
		"metric", "value")
	t.AddRow("performance drop vs baseline", report.Pct(res.PerfDrop))
	t.AddRow("RF IRAW issue-stall share", report.Pct(res.RFShare))
	t.AddRow("IQ gate share", report.Pct(res.IQShare))
	t.AddRow("DL0 share (fill-stall + replay)", report.Pct(res.DL0Share))
	t.AddRow("other blocks share", report.Pct(res.OtherShare))
	return g.emit(t)
}

func (g *gen) delayed() error {
	res, err := sim.Breakdown(g.suite(), 500)
	if err != nil {
		return err
	}
	t := report.NewTable("Instructions delayed by RF IRAW avoidance (paper: 13.2%)", "metric", "value")
	t.AddRow("delayed fraction", report.Pct(res.DelayedFraction))
	return g.emit(t)
}

func (g *gen) bp() error {
	res, err := sim.BPStats(g.suite(), 500)
	if err != nil {
		return err
	}
	t := report.NewTable("Section 4.5: prediction-only blocks under IRAW (paper: 0.0017% potential extra mispredictions, no RSB conflicts)",
		"metric", "value")
	t.AddRow("BP potential corruption rate", fmt.Sprintf("%.5f%%", 100*res.PotentialCorruptionRate))
	t.AddRow("RSB conflicts", res.RSBConflicts)
	t.AddRow("return predictions", res.ReturnPredictions)
	return g.emit(t)
}

func (g *gen) overhead() error {
	a := sim.IRAWOverheads()
	t := report.NewTable("Section 5.3 overheads (paper: <0.03% area, <1% energy)", "metric", "value")
	t.AddRow("core SRAM bits", a.CoreSRAMBits)
	t.AddRow("IRAW extra latch bits", a.ExtraLatchBits)
	t.AddRow("area overhead", fmt.Sprintf("%.4f%%", 100*a.OverheadFraction()))
	t.AddRow("energy overhead (20x activity)", fmt.Sprintf("%.4f%%", 100*a.EnergyOverheadFraction()))
	return g.emit(t)
}

func (g *gen) edp450() error {
	res, err := sim.EDP450(g.suite())
	if err != nil {
		return err
	}
	t := report.NewTable("Section 5.3 worked example at 450mV, scaled to 5J unconstrained (paper: 5/1.24, 8.50/4.74, 6.40/2.64)",
		"design", "total-J", "leakage-J")
	t.AddRow("unconstrained", report.F2(res.Unconstrained.Total()), report.F2(res.Unconstrained.Leakage))
	t.AddRow("baseline", report.F2(res.Baseline.Total()), report.F2(res.Baseline.Leakage))
	t.AddRow("IRAW", report.F2(res.IRAW.Total()), report.F2(res.IRAW.Leakage))
	return g.emit(t)
}

func (g *gen) resched() error {
	res, err := sim.CompilerResched(g.suite(), 500, 8)
	if err != nil {
		return err
	}
	t := report.NewTable("Extension: bubble-aware compiler rescheduling at 500mV (Section 5.2 future work)",
		"metric", "original", "rescheduled")
	t.AddRow("delayed by RF IRAW", report.Pct(res.DelayedBefore), report.Pct(res.DelayedAfter))
	t.AddRow("IRAW speedup over baseline", report.F(res.PerfGainBefore), report.F(res.PerfGainAfter))
	return g.emit(t)
}

func (g *gen) gate() error {
	rows, err := sim.GateSensitivity(g.suite(), 500)
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation: IQ occupancy gate (threshold = ICI + AI*N) at 500mV",
		"ICI", "AI", "threshold", "IPC", "gate-share")
	for _, r := range rows {
		t.AddRow(r.ICI, r.AI, r.Threshold, r.IPC, report.Pct(r.GateShare))
	}
	return g.emit(t)
}

func (g *gen) stableSizing() error {
	rows, err := sim.STableSizing(g.suite(), 500)
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation: Store-Table provisioning at 500mV",
		"stores/cycle", "entries", "IPC", "forwards", "replay-cycles")
	for _, r := range rows {
		t.AddRow(r.StoresPerCycle, r.Entries, r.IPC, r.Forwards, r.ReplayCycles)
	}
	return g.emit(t)
}

func (g *gen) determinism() error {
	res, err := sim.DeterminismMode(g.suite(), 500)
	if err != nil {
		return err
	}
	t := report.NewTable("Section 4.5 testability variant: deterministic RSB", "metric", "value")
	t.AddRow("default IPC", res.DefaultIPC)
	t.AddRow("deterministic IPC", res.DeterministicIPC)
	t.AddRow("default RSB conflicts", res.DefaultConflicts)
	t.AddRow("deterministic RSB stall cycles", res.DeterministicRSBStallCycles)
	return g.emit(t)
}

func (g *gen) combined() error {
	rows, err := sim.CombinedFaulty(g.suite(), []circuit.Millivolts{500, 450, 400})
	if err != nil {
		return err
	}
	t := report.NewTable("Section 4.4 combination: IRAW + Faulty Bits (4 sigma)",
		"Vcc", "iraw-freq", "combined-freq", "iraw-perf", "combined-perf", "disabled-lines")
	for _, r := range rows {
		t.AddRow(r.Vcc, r.IRAWFreqGain, r.CombinedFreqGain, r.IRAWPerfGain, r.CombinedPerfGain, r.DisabledLines)
	}
	return g.emit(t)
}

// width renders the core-width ablation: both designs at fetch/issue
// widths 1, 2 and 4 across a small voltage ladder. perf-gain is IRAW over
// the same-width baseline; width-gain is the baseline's speedup over the
// scalar (width-1) baseline at the same voltage.
func (g *gen) widthAblation() error {
	rows, err := sim.WidthAblation(context.Background(), g.suite(),
		[]int{1, 2, 4}, []circuit.Millivolts{600, 500, 400})
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation: fetch/issue width x Vcc x design",
		"width", "Vcc", "ipc-base", "ipc-iraw", "perf-gain", "width-gain")
	for _, r := range rows {
		t.AddRow(r.Width, r.Vcc, r.IPCBase, r.IPCIRAW, r.PerfGain, r.WidthGain)
	}
	return g.emit(t)
}

func (g *gen) plots() error {
	f1 := sim.Figure1()
	ticks := make([]string, len(f1))
	logic := make([]float64, len(f1))
	write := make([]float64, len(f1))
	read := make([]float64, len(f1))
	for i, r := range f1 {
		ticks[i] = fmt.Sprintf("%d", int(r.Vcc))
		logic[i] = r.Phase
		write[i] = r.WriteWithWL
		read[i] = r.ReadWithWL
	}
	p1 := &report.Plot{
		Title:  "Figure 1 (ASCII): delay vs Vcc, y clipped at 10 a.u. like the paper",
		XLabel: "Vcc (mV)", YLabel: "delay (a.u.)", XTicks: ticks, YMax: 10,
	}
	p1.AddSeries("12FO4", '*', logic)
	p1.AddSeries("write+WL", 'w', write)
	p1.AddSeries("read+WL", 'r', read)
	if err := p1.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	f11 := sim.Figure11a()
	base := make([]float64, len(f11))
	iraw := make([]float64, len(f11))
	fo24 := make([]float64, len(f11))
	for i, r := range f11 {
		base[i] = r.BaselineCycle
		iraw[i] = r.IRAWCycle
		fo24[i] = r.LogicCycle
	}
	p2 := &report.Plot{
		Title:  "Figure 11(a) (ASCII): cycle time vs Vcc",
		XLabel: "Vcc (mV)", YLabel: "cycle (a.u.)", XTicks: ticks, YMax: 45,
	}
	p2.AddSeries("24FO4", '*', fo24)
	p2.AddSeries("baseline", 'b', base)
	p2.AddSeries("IRAW", 'i', iraw)
	if err := p2.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func (g *gen) nsweep() error {
	rows, err := sim.NSweep(g.suite(), 500, 4)
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation: forced stabilization cycles N at 500mV", "N", "perf-gain", "delayed")
	for _, r := range rows {
		t.AddRow(r.N, r.PerfGain, report.Pct(r.Delayed))
	}
	return g.emit(t)
}
