// Command vccsweep sweeps the full voltage range for one or more designs
// and prints the frequency/performance/EDP series (the data behind
// Figures 11 and 12). Rows render progressively: each voltage's line is
// written the moment every design at that level has finished simulating,
// while the rest of the grid is still running.
//
//	vccsweep -insts 60000 -seeds 2
//	vccsweep -modes baseline,iraw,faultybits
//	vccsweep -insts 500000 -window 50000 -progress   # sharded long traces
//	vccsweep -server 127.0.0.1:7077                  # run on a sweepd daemon
//
// With -server the sweep executes on a sweepd daemon (and its workers)
// instead of in-process; the rendered table is bit-identical to the local
// run because cells aggregate in the same fixed order on either path.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"lowvcc/internal/circuit"
	"lowvcc/internal/report"
	"lowvcc/internal/service"
	"lowvcc/internal/sim"
)

func main() {
	insts := flag.Int("insts", 40000, "instructions per trace")
	seeds := flag.Int("seeds", 1, "traces per workload class")
	modesFlag := flag.String("modes", "baseline,iraw", "comma-separated designs to sweep")
	width := flag.Int("width", 0, "fetch/issue width of the swept core, 1..4 (0 = the modelled default, 2)")
	csv := flag.Bool("csv", false, "emit CSV")
	workers := flag.Int("workers", 0, "simulation worker goroutines (0 = GOMAXPROCS)")
	window := flag.Int("window", 0, "shard traces into sample windows of this many instructions (0 = auto for long traces, <0 = off)")
	warm := flag.Int("warm", 0, "warm-up prefix per sample window (0 = mode default, <0 = full prefix)")
	warmMode := flag.String("warmmode", "functional", "sample-window warm-up: functional (timing-free replay) or timed")
	ckptSpec := flag.String("ckpt", "", "warm-state checkpoint store: auto (default; journal dir or in-memory), off, or a directory")
	timeout := flag.Duration("timeout", 0, "per-point wall-clock budget (0 = none)")
	progress := flag.Bool("progress", false, "print per-point progress lines to stderr")
	journal := flag.String("journal", "", "journal completed cells to this directory and replay them on restart")
	journalBudget := flag.Int64("journal-budget", 0, "journal disk budget in bytes; least-recently-used entries evict past it (0 = unbounded)")
	ckptBudget := flag.Int64("ckpt-budget", 0, "checkpoint-store disk budget in bytes (0 = unbounded)")
	retries := flag.Int("retries", 0, "retry transiently-failed cells (timeouts) this many times")
	retryBackoff := flag.Duration("retry-backoff", time.Second, "backoff before the first retry (doubles per attempt)")
	allowPartial := flag.Bool("allow-partial", false, "keep sweeping past failed cells and render them as FAIL(reason)")
	server := flag.String("server", "", "run the sweep on a sweepd daemon at this address instead of in-process")
	flag.Parse()
	wm, err := sim.ParseWarmMode(*warmMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vccsweep:", err)
		os.Exit(2)
	}
	sim.SetWorkers(*workers)
	sim.SetWidth(*width)
	sim.SetWindow(*window, *warm)
	sim.SetWarmMode(wm)
	sim.SetPointTimeout(*timeout)
	sim.SetJournal(*journal)
	sim.SetJournalBudget(*journalBudget)
	sim.SetCheckpoints(*ckptSpec)
	sim.SetCheckpointBudget(*ckptBudget)
	sim.SetRetries(*retries, *retryBackoff)
	sim.SetAllowPartial(*allowPartial)
	if *progress {
		start := time.Now()
		sim.SetProgress(func(u sim.PointUpdate) {
			switch {
			case u.Err != nil && u.Point >= 0:
				fmt.Fprintf(os.Stderr, "vccsweep: [%6.2fs] %3d/%d %s %s FAILED: %v\n",
					time.Since(start).Seconds(), u.Done, u.Total, u.Label, u.TraceName, u.Err)
			case u.Err != nil:
				// Terminal update; the error surfaces through run().
			default:
				tag := ""
				if u.Replayed {
					tag = " [journal]"
				}
				fmt.Fprintf(os.Stderr, "vccsweep: [%6.2fs] %3d/%d %s %s (%d window(s))%s\n",
					time.Since(start).Seconds(), u.Done, u.Total, u.Label, u.TraceName, u.Windows, tag)
			}
		})
	}

	if *server != "" {
		spec := sim.SweepSpec{
			InstsPerTrace:   *insts,
			SeedsPerProfile: *seeds,
			WindowInsts:     *window,
			WarmInsts:       *warm,
			WarmMode:        *warmMode,
			Width:           *width,
		}
		if err := runServer(*server, spec, *modesFlag, *csv); err != nil {
			fmt.Fprintln(os.Stderr, "vccsweep:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*insts, *seeds, *modesFlag, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "vccsweep:", err)
		os.Exit(1)
	}
}

// runServer renders the same table as run, with the simulation done by a
// sweepd daemon: the client re-aggregates the daemon's cell events into
// per-level points bit-identical to the local path's.
func runServer(addr string, spec sim.SweepSpec, modesFlag string, csv bool) error {
	modes, err := sim.ParseModes(modesFlag)
	if err != nil {
		return err
	}
	for _, m := range modes {
		spec.Modes = append(spec.Modes, m.String())
	}
	cl, err := service.NewClient(addr)
	if err != nil {
		return err
	}
	t, err := newSweepTable(modes, csv)
	if err != nil {
		return err
	}
	failed := 0
	err = cl.StreamLevels(context.Background(), spec,
		func(v circuit.Millivolts, pts map[circuit.Mode]*sim.Point, fails map[circuit.Mode]*sim.CellError) error {
			n, err := addSweepRow(t, modes, v, pts, fails)
			failed += n
			return err
		})
	if err != nil {
		return err
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "vccsweep: %d operating point(s) failed; rows marked FAIL\n", failed)
	}
	return nil
}

func run(insts, seeds int, modesFlag string, csv bool) error {
	modes, err := sim.ParseModes(modesFlag)
	if err != nil {
		return err
	}
	traces := sim.SuiteSpec{InstsPerTrace: insts, SeedsPerProfile: seeds}.Traces()
	levels := circuit.Levels()

	t, err := newSweepTable(modes, csv)
	if err != nil {
		return err
	}

	// Collect the streaming sweep, rendering each voltage's row as soon as
	// every requested design at that level has landed (rows stay in
	// voltage order: a finished level waits for slower earlier levels).
	// With -allow-partial, failed operating points render as FAIL(reason)
	// cells and the sweep keeps going.
	failed := 0
	err = sim.StreamLevels(context.Background(), traces, modes, levels,
		func(v circuit.Millivolts, pts map[circuit.Mode]*sim.Point, fails map[circuit.Mode]*sim.CellError) error {
			n, err := addSweepRow(t, modes, v, pts, fails)
			failed += n
			return err
		})
	if err != nil {
		return err
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "vccsweep: %d operating point(s) failed; rows marked FAIL\n", failed)
	}
	return nil
}

// newSweepTable builds the sweep's stream table (shared by the local and
// -server paths).
func newSweepTable(modes []circuit.Mode, csv bool) (*report.StreamTable, error) {
	header := []string{"Vcc"}
	for _, m := range modes {
		header = append(header, m.String()+"-ipc", m.String()+"-time", m.String()+"-freqgain")
	}
	return report.NewStreamTable(os.Stdout, csv, "Vcc sweep (time in phase-at-700mV units)", header...)
}

// addSweepRow renders one voltage's row and returns how many of its
// operating points failed.
func addSweepRow(t *report.StreamTable, modes []circuit.Mode, v circuit.Millivolts, pts map[circuit.Mode]*sim.Point, fails map[circuit.Mode]*sim.CellError) (int, error) {
	failed := 0
	row := []interface{}{v}
	for _, m := range modes {
		if ce := fails[m]; ce != nil {
			failed++
			row = append(row, "FAIL("+ce.Reason(32)+")", "-", "-")
			continue
		}
		p := pts[m].Agg
		row = append(row, p.IPC(), fmt.Sprintf("%.0f", p.Time), p.Plan.FreqGain)
	}
	return failed, t.AddRow(row...)
}
