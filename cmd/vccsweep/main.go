// Command vccsweep sweeps the full voltage range for one or more designs
// and prints the frequency/performance/EDP series (the data behind
// Figures 11 and 12).
//
//	vccsweep -insts 60000 -seeds 2
//	vccsweep -modes baseline,iraw,faultybits
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lowvcc/internal/circuit"
	"lowvcc/internal/report"
	"lowvcc/internal/sim"
)

func main() {
	insts := flag.Int("insts", 40000, "instructions per trace")
	seeds := flag.Int("seeds", 1, "traces per workload class")
	modesFlag := flag.String("modes", "baseline,iraw", "comma-separated designs to sweep")
	csv := flag.Bool("csv", false, "emit CSV")
	workers := flag.Int("workers", 0, "simulation worker goroutines (0 = GOMAXPROCS)")
	flag.Parse()
	sim.SetWorkers(*workers)

	if err := run(*insts, *seeds, *modesFlag, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "vccsweep:", err)
		os.Exit(1)
	}
}

func run(insts, seeds int, modesFlag string, csv bool) error {
	var modes []circuit.Mode
	for _, s := range strings.Split(modesFlag, ",") {
		switch strings.TrimSpace(s) {
		case "baseline":
			modes = append(modes, circuit.ModeBaseline)
		case "iraw":
			modes = append(modes, circuit.ModeIRAW)
		case "faultybits":
			modes = append(modes, circuit.ModeFaultyBits)
		case "extrabypass":
			modes = append(modes, circuit.ModeExtraBypass)
		default:
			return fmt.Errorf("unknown mode %q", s)
		}
	}
	traces := sim.SuiteSpec{InstsPerTrace: insts, SeedsPerProfile: seeds}.Traces()
	sweep, err := sim.Sweep(traces, modes, circuit.Levels())
	if err != nil {
		return err
	}
	header := []string{"Vcc"}
	for _, m := range modes {
		header = append(header, m.String()+"-ipc", m.String()+"-time", m.String()+"-freqgain")
	}
	t := report.NewTable("Vcc sweep (time in phase-at-700mV units)", header...)
	for _, v := range circuit.Levels() {
		row := []interface{}{v}
		for _, m := range modes {
			p := sweep[m][v].Agg
			row = append(row, p.IPC(), fmt.Sprintf("%.0f", p.Time), p.Plan.FreqGain)
		}
		t.AddRow(row...)
	}
	if csv {
		return t.RenderCSV(os.Stdout)
	}
	return t.Render(os.Stdout)
}
