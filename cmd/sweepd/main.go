// Command sweepd is the sweep daemon: it accepts voltage-sweep
// specifications over HTTP, decomposes them into journal-keyed cells, and
// executes the cells under time-bounded leases — in-process, on external
// worker processes, or both. Workers can crash, hang, or be kill -9'ed and
// the sweep still completes, bit-identical to a local run, because every
// cell is idempotent by content address in the shared journal.
//
// Start a daemon (journal directory is required; it also holds the
// exclusive-writer LOCK):
//
//	sweepd -addr 127.0.0.1:7077 -journal /tmp/jnl
//
// Join external workers — any number, any time, from any machine. A
// worker journals into a private scratch directory and uploads each
// sealed result in its Complete call (the daemon verifies the bytes'
// content address before admitting them), so no filesystem is shared:
//
//	sweepd -worker -join 127.0.0.1:7077
//
// Submit a sweep and watch it with curl:
//
//	curl -s -d '{"insts_per_trace":40000,"seeds_per_profile":1,"modes":["baseline","iraw"]}' \
//	    http://127.0.0.1:7077/api/v1/sweeps
//	curl -s http://127.0.0.1:7077/api/v1/sweeps/sweep-1
//	curl -sN http://127.0.0.1:7077/api/v1/sweeps/sweep-1/events
//
// Or let the CLIs drive it: `vccsweep -server 127.0.0.1:7077` renders the
// usual sweep table from the daemon's results, and
// `figures -fig 11b -server 127.0.0.1:7077` does the same for Figure
// 11(b).
//
// SIGTERM or SIGINT drains gracefully: no new sweeps or leases, in-flight
// cells finish and journal, the journal is verified, and the process exits
// 0. A second signal forces exit 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lowvcc/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "listen address (host:port; port 0 picks a free one)")
	journalDir := flag.String("journal", "", "journal directory shared by daemon and workers (required)")
	workers := flag.Int("workers", 0, "in-process simulation workers (0 = GOMAXPROCS, -1 = none: external workers only)")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "cell lease TTL; a dead worker's cells requeue within ~1.25x this")
	maxQueue := flag.Int("max-queue", 4096, "max pending+leased cells before submissions get 429")
	maxAttempts := flag.Int("max-attempts", 5, "attempts per cell (reclaims included) before it is declared failed")
	sweepDeadline := flag.Duration("sweep-deadline", 0, "per-sweep wall-clock budget (0 = none)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell wall-clock budget on this process's workers (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "graceful-shutdown budget for in-flight cells")
	fsync := flag.Bool("fsync", true, "fsync journal entries (power-loss durability)")
	retries := flag.Int("retries", 1, "window-level transient-failure retries per cell execution")
	retryBackoff := flag.Duration("retry-backoff", time.Second, "backoff before the first retry (doubles, jittered)")
	journalBudget := flag.Int64("journal-budget", 0, "journal disk budget in bytes; LRU entries evict past it (0 = unbounded)")
	ckptBudget := flag.Int64("ckpt-budget", 0, "checkpoint-store disk budget in bytes, worker mode (0 = unbounded)")
	submitRate := flag.Float64("submit-rate", 0, "per-client sweep submissions per second (0 = unlimited)")
	submitBurst := flag.Int("submit-burst", 2, "per-client submission burst on top of -submit-rate")
	maxCells := flag.Int("max-cells-per-sweep", 0, "reject any single sweep expanding past this many cells (0 = unlimited)")

	workerMode := flag.Bool("worker", false, "run as an external worker instead of a daemon")
	join := flag.String("join", "", "daemon address to pull leases from (worker mode)")
	name := flag.String("name", "", "worker name in leases and events (worker mode; default pid-derived)")
	poll := flag.Duration("poll", 250*time.Millisecond, "idle poll interval (worker mode)")
	workerJournal := flag.String("worker-journal", "", "worker's private journal directory (worker mode; default throwaway temp dir)")
	flag.Parse()

	var err error
	if *workerMode {
		err = runWorker(workerConfig{
			join: *join, name: *name, journalDir: *workerJournal,
			poll: *poll, cellTimeout: *cellTimeout,
			retries: *retries, retryBackoff: *retryBackoff,
			journalBudget: *journalBudget, ckptBudget: *ckptBudget,
		})
	} else {
		err = runDaemon(daemonConfig{
			addr: *addr, journalDir: *journalDir, workers: *workers,
			leaseTTL: *leaseTTL, maxQueue: *maxQueue, maxAttempts: *maxAttempts,
			sweepDeadline: *sweepDeadline, cellTimeout: *cellTimeout,
			drainTimeout: *drainTimeout, fsync: *fsync,
			retries: *retries, retryBackoff: *retryBackoff,
			journalBudget: *journalBudget,
			submitRate:    *submitRate, submitBurst: *submitBurst, maxCells: *maxCells,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

type daemonConfig struct {
	addr, journalDir           string
	workers                    int
	leaseTTL                   time.Duration
	maxQueue, maxAttempts      int
	sweepDeadline, cellTimeout time.Duration
	drainTimeout               time.Duration
	fsync                      bool
	retries                    int
	retryBackoff               time.Duration
	journalBudget              int64
	submitRate                 float64
	submitBurst, maxCells      int
}

func runDaemon(cfg daemonConfig) error {
	if cfg.journalDir == "" {
		return fmt.Errorf("-journal is required (it holds results and the writer lock)")
	}
	srv, warn, err := service.NewServer(service.ServerOpts{
		SchedulerOpts: service.SchedulerOpts{
			JournalDir:       cfg.journalDir,
			LeaseTTL:         cfg.leaseTTL,
			MaxQueuedCells:   cfg.maxQueue,
			MaxAttempts:      cfg.maxAttempts,
			SweepDeadline:    cfg.sweepDeadline,
			JournalSync:      cfg.fsync,
			JournalBudget:    cfg.journalBudget,
			SubmitRate:       cfg.submitRate,
			SubmitBurst:      cfg.submitBurst,
			MaxCellsPerSweep: cfg.maxCells,
		},
		Workers:      cfg.workers,
		CellTimeout:  cfg.cellTimeout,
		Retries:      cfg.retries,
		RetryBackoff: cfg.retryBackoff,
	})
	if err != nil {
		return err
	}
	if warn != "" {
		fmt.Fprintln(os.Stderr, "sweepd:", warn)
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		srv.Scheduler().Close()
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	// The parseable serving line: scripts read the actual port from it
	// when -addr ends in :0.
	fmt.Printf("sweepd: serving on %s\n", ln.Addr())
	os.Stdout.Sync()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		srv.Scheduler().Close()
		return err
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "sweepd: %v: draining (in-flight cells finish; new work rejected)\n", sig)
	}

	// Second signal: forced exit.
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "sweepd: second signal, forcing exit")
		os.Exit(1)
	}()

	dctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	drainErr := srv.Drain(dctx)

	// Let in-flight HTTP responses (e.g. event streams delivering their
	// terminal events) finish before the listener dies.
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	httpSrv.Shutdown(hctx)

	n, verr := srv.Scheduler().Journal().Verify()
	switch {
	case verr != nil:
		return fmt.Errorf("journal verification after drain: %w", verr)
	case drainErr != nil:
		return fmt.Errorf("drain: %w (journal consistent: %d entries)", drainErr, n)
	}
	fmt.Fprintf(os.Stderr, "sweepd: drained; journal verified (%d entries)\n", n)
	return nil
}

type workerConfig struct {
	join, name, journalDir    string
	poll, cellTimeout         time.Duration
	retries                   int
	retryBackoff              time.Duration
	journalBudget, ckptBudget int64
}

func runWorker(cfg workerConfig) error {
	if cfg.join == "" {
		return fmt.Errorf("-worker requires -join <daemon address>")
	}
	if cfg.name == "" {
		cfg.name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	fmt.Fprintf(os.Stderr, "sweepd: worker %s pulling from %s\n", cfg.name, cfg.join)
	err := service.Work(ctx, cfg.join, service.WorkerOpts{
		Name:          cfg.name,
		Poll:          cfg.poll,
		CellTimeout:   cfg.cellTimeout,
		Retries:       cfg.retries,
		RetryBackoff:  cfg.retryBackoff,
		JournalDir:    cfg.journalDir,
		JournalBudget: cfg.journalBudget,
		CkptBudget:    cfg.ckptBudget,
	})
	if err == context.Canceled {
		return nil // clean signal-driven exit
	}
	return err
}
