// Command tracegen writes synthetic traces to disk in the lowvcc binary
// trace format, for use with irawsim -trace or external tooling.
//
//	tracegen -profile specint -insts 1000000 -seed 7 -o specint.trc
//	tracegen -suite -insts 100000 -seeds 2 -dir traces/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lowvcc/internal/trace"
	"lowvcc/internal/workload"
)

func main() {
	profile := flag.String("profile", "specint", "workload profile")
	insts := flag.Int("insts", 1000000, "instructions per trace")
	seed := flag.Uint64("seed", 1, "generation seed")
	out := flag.String("o", "", "output file (default <profile>-<seed>.trc)")
	suite := flag.Bool("suite", false, "generate the whole standard suite")
	seeds := flag.Int("seeds", 1, "traces per class (with -suite)")
	dir := flag.String("dir", ".", "output directory (with -suite)")
	flag.Parse()

	if err := run(*profile, *insts, *seed, *out, *suite, *seeds, *dir); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(profName string, insts int, seed uint64, out string, suite bool, seeds int, dir string) error {
	if suite {
		for _, tr := range workload.Suite(insts, seeds) {
			path := filepath.Join(dir, tr.Name+".trc")
			if err := writeTrace(path, tr); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d instructions)\n", path, tr.Len())
		}
		return nil
	}
	var prof *workload.Profile
	for _, p := range append(workload.Profiles(), workload.MemBound()) {
		if p.Name == profName {
			pp := p
			prof = &pp
			break
		}
	}
	if prof == nil {
		return fmt.Errorf("unknown profile %q", profName)
	}
	tr := workload.Generate(*prof, insts, seed)
	if out == "" {
		out = fmt.Sprintf("%s-%d.trc", profName, seed)
	}
	if err := writeTrace(out, tr); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d instructions)\n", out, tr.Len())
	return nil
}

func writeTrace(path string, tr *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		return err
	}
	return f.Close()
}
