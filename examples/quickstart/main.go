// Quickstart: build a baseline core and an IRAW core at 500 mV, run the
// same workload on both, and report the paper's headline effect — the
// frequency boost from interrupting SRAM writes turns into end-to-end
// speedup despite the avoidance stalls.
package main

import (
	"fmt"
	"log"

	"lowvcc"
)

func main() {
	tr := lowvcc.GenerateTrace(lowvcc.SpecIntProfile(), 100000, 1)

	const vcc = lowvcc.Millivolts(500)
	base, err := lowvcc.RunWarm(lowvcc.DefaultConfig(vcc, lowvcc.ModeBaseline), tr)
	if err != nil {
		log.Fatal(err)
	}
	iraw, err := lowvcc.RunWarm(lowvcc.DefaultConfig(vcc, lowvcc.ModeIRAW), tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s (%d instructions) at %v\n", tr.Name, tr.Len(), vcc)
	fmt.Printf("baseline: cycle %.3f a.u., IPC %.3f, time %.0f\n",
		base.Plan.CycleTime, base.IPC(), base.Time)
	fmt.Printf("IRAW:     cycle %.3f a.u., IPC %.3f, time %.0f (N=%d)\n",
		iraw.Plan.CycleTime, iraw.IPC(), iraw.Time, iraw.Plan.StabilizeCycles)
	fmt.Printf("frequency gain: %.2fx   speedup: %.2fx\n",
		iraw.Plan.FreqGain, base.Time/iraw.Time)
	fmt.Printf("instructions delayed by RF IRAW avoidance: %.1f%%\n",
		100*iraw.Run.DelayedFraction())
	fmt.Printf("corrupt data consumed: %d (must be 0)\n", iraw.CorruptConsumed)
}
