// Quickstart: build a baseline core and an IRAW core at 500 mV, run the
// same workload on both, and report the paper's headline effect — the
// frequency boost from interrupting SRAM writes turns into end-to-end
// speedup despite the avoidance stalls.
//
// Both operating points fan out together across the experiment pool
// (-workers bounds it) — the same parallel path every sweep uses, with the
// same warm-up + measure methodology RunWarm applies.
package main

import (
	"flag"
	"fmt"
	"log"

	"lowvcc"
	"lowvcc/internal/circuit"
	"lowvcc/internal/sim"
)

func main() {
	workers := flag.Int("workers", 0, "simulation worker goroutines (0 = GOMAXPROCS)")
	width := flag.Int("width", 0, "fetch/issue width, 1..4 (0 = the modelled default, 2)")
	flag.Parse()
	sim.SetWorkers(*workers)
	sim.SetWidth(*width)

	tr := lowvcc.GenerateTrace(lowvcc.SpecIntProfile(), 100000, 1)

	const vcc = lowvcc.Millivolts(500)
	sweep, err := sim.Sweep([]*lowvcc.Trace{tr},
		[]circuit.Mode{lowvcc.ModeBaseline, lowvcc.ModeIRAW},
		[]circuit.Millivolts{vcc})
	if err != nil {
		log.Fatal(err)
	}
	base := sweep[lowvcc.ModeBaseline][vcc].Agg
	iraw := sweep[lowvcc.ModeIRAW][vcc].Agg

	fmt.Printf("workload: %s (%d instructions) at %v\n", tr.Name, tr.Len(), vcc)
	fmt.Printf("baseline: cycle %.3f a.u., IPC %.3f, time %.0f\n",
		base.Plan.CycleTime, base.IPC(), base.Time)
	fmt.Printf("IRAW:     cycle %.3f a.u., IPC %.3f, time %.0f (N=%d)\n",
		iraw.Plan.CycleTime, iraw.IPC(), iraw.Time, iraw.Plan.StabilizeCycles)
	fmt.Printf("frequency gain: %.2fx   speedup: %.2fx\n",
		iraw.Plan.FreqGain, base.Time/iraw.Time)
	fmt.Printf("instructions delayed by RF IRAW avoidance: %.1f%%\n",
		100*iraw.Run.DelayedFraction())
	fmt.Printf("corrupt data consumed: %d (must be 0)\n", iraw.CorruptConsumed)
}
