// Governor example: close the loop the paper motivates. First the planner
// picks operating points from measured sweep data (the Figure 11/12 curves
// of THIS machine's run): the EDP-optimal level, the most frugal level
// meeting a deadline, the fastest level within an energy budget. Then a
// reactive ladder governor walks a phased workload (compute burst → memory
// sweep → branchy control) on one warm IRAW core, reconfiguring the
// avoidance machinery at every step — the Section 4.1.3 flexibility doing
// real work.
package main

import (
	"flag"
	"fmt"
	"log"

	"lowvcc"
	"lowvcc/internal/circuit"
	"lowvcc/internal/dvfs"
	"lowvcc/internal/sim"
	"lowvcc/internal/workload"
)

func main() {
	workers := flag.Int("workers", 0, "simulation worker goroutines (0 = GOMAXPROCS)")
	flag.Parse()
	sim.SetWorkers(*workers)

	// --- Offline planning over measured points -------------------------
	traces := lowvcc.StandardSuite(15000, 1)
	model, err := sim.CalibratedEnergy(traces)
	if err != nil {
		log.Fatal(err)
	}
	levels := []circuit.Millivolts{700, 600, 500, 450, 400}
	sweep, err := sim.Sweep(traces, []circuit.Mode{circuit.ModeIRAW}, levels)
	if err != nil {
		log.Fatal(err)
	}
	ovh := sim.IRAWOverheads().EnergyOverheadFraction()
	points := make([]dvfs.PointMetrics, 0, len(levels))
	for _, v := range levels {
		agg := sweep[circuit.ModeIRAW][v].Agg
		e := model.Energy(v, agg.Activity, agg.Time, ovh)
		points = append(points, dvfs.PointMetrics{
			Vcc: v, Mode: circuit.ModeIRAW, Time: agg.Time, Energy: e.Total(),
		})
	}
	planner, err := dvfs.NewPlanner(points)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("measured operating points (IRAW design):")
	for _, p := range planner.Points() {
		fmt.Printf("  %-6v time %12.0f  energy %12.0f  EDP %.3g\n", p.Vcc, p.Time, p.Energy, p.EDP())
	}
	if best, ok := planner.Pick(dvfs.MinEDP, 0); ok {
		fmt.Printf("EDP-optimal level: %v\n", best.Vcc)
	}
	ref := points[0] // 700 mV
	if best, ok := planner.Pick(dvfs.MinEnergyUnderDeadline, ref.Time*1.6); ok {
		fmt.Printf("most frugal within 1.6x the 700mV time: %v\n", best.Vcc)
	}
	if best, ok := planner.Pick(dvfs.MinTimeUnderBudget, ref.Energy*0.7); ok {
		fmt.Printf("fastest within 70%% of the 700mV energy: %v\n", best.Vcc)
	}

	// --- Reactive governance over a phased workload --------------------
	gov, err := dvfs.NewGovernor(levels)
	if err != nil {
		log.Fatal(err)
	}
	// Utilization here is issue-slot occupancy (cycles that issued at least
	// one instruction); thresholds tuned for this core's comfortable band.
	gov.UpThreshold, gov.DownThreshold = 0.48, 0.30
	phases := []lowvcc.Profile{
		lowvcc.OfficeProfile(),   // interactive: moderate demand
		lowvcc.MemBoundProfile(), // memory sweep: core mostly waits -> down
		lowvcc.SpecIntProfile(),  // compute burst: saturated -> back up
		lowvcc.SpecIntProfile(),
	}
	c := lowvcc.MustNewCore(lowvcc.DefaultConfig(gov.Level(), lowvcc.ModeIRAW))
	fmt.Println("\nreactive ladder on a phased workload:")
	for i, p := range phases {
		tr := workload.Generate(p, 25000, uint64(i%3+1))
		if _, err := c.Run(tr); err != nil { // warm pass
			log.Fatal(err)
		}
		res, err := c.Run(tr)
		if err != nil {
			log.Fatal(err)
		}
		busy := float64(res.Run.Cycles-res.Run.IssueHist[0]) / float64(res.Run.Cycles)
		next := gov.Observe(busy)
		next = gov.Observe(busy) // the governor wants sustained evidence
		fmt.Printf("  phase %-10s at %-6v IPC %.3f busy %.2f -> next level %v\n",
			p.Name, res.Plan.Vcc, res.IPC(), busy, next)
		if res.CorruptConsumed != 0 {
			log.Fatalf("phase %s consumed corrupt data", p.Name)
		}
		if err := c.Reconfigure(next); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("governor made %d transitions; all phases ran corruption-free\n", gov.Transitions())
}
