// Mechanism shoot-out (Table 1): IRAW avoidance against the two
// state-of-the-art alternatives for overriding SRAM write delay —
// Faulty Bits (re-margin to 4 sigma, disable failing lines) and Extra
// Bypass (pipeline writes, widen the bypass network). Both comparators run
// in their *idealized* forms (Faulty Bits pretends the RF tolerates bad
// entries; Extra Bypass pretends caches need none), and IRAW still wins on
// frequency and end-to-end performance while remaining the only mechanism
// that is actually feasible for every SRAM block of the core.
package main

import (
	"flag"
	"fmt"
	"log"

	"lowvcc"
	"lowvcc/internal/sim"
)

func main() {
	workers := flag.Int("workers", 0, "simulation worker goroutines (0 = GOMAXPROCS)")
	width := flag.Int("width", 0, "fetch/issue width of every compared design, 1..4 (0 = the modelled default, 2)")
	flag.Parse()
	sim.SetWorkers(*workers)
	sim.SetWidth(*width)

	traces := lowvcc.StandardSuite(30000, 1)
	res, err := sim.Table1(traces, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mechanism comparison at %v (suite of %d traces)\n\n", res.Vcc, len(traces))
	fmt.Println("mechanism    all-blocks  adapts-Vcc  hard-to-test  freq-gain  perf-gain  feasible")
	for _, r := range res.Rows {
		fmt.Printf("%-12s %-11s %-11s %-13s %8.2fx %9.2fx  %s\n",
			r.Mode, yn(r.WorksForAllBlocks), yn(r.AdaptsToVcc), yn(r.HardToTest),
			r.FreqGain, r.PerfGain, yn(r.Feasible))
		if r.Caveat != "" {
			fmt.Printf("             ^ %s\n", r.Caveat)
		}
	}
	fmt.Println("\nIRAW avoidance is the only design that reaches near-logic frequency")
	fmt.Println("while working for the register file, the instruction queue, and every")
	fmt.Println("cache-like block — with reconfiguration at each Vcc level (Table 1).")
}

func yn(b bool) string {
	if b {
		return "YES"
	}
	return "NO"
}
