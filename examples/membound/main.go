// Memory-bound study: the paper notes performance gains trail frequency
// gains partly because "off-chip memory latency remains constant"
// (Section 5.2, effect i). This example runs a cache-hostile streaming
// workload next to a compute workload and shows the IRAW speedup shrinking
// as the memory-bound fraction grows — the faster clock just waits more
// cycles for the same nanoseconds of DRAM. It also surfaces the Store
// Table at work: forwards and store replays on the store-heavy stream.
//
// All six (design, workload) cells fan out across the experiment pool
// (-workers bounds it); per-trace results come back in workload order.
package main

import (
	"flag"
	"fmt"
	"log"

	"lowvcc"
	"lowvcc/internal/sim"
)

func main() {
	workers := flag.Int("workers", 0, "simulation worker goroutines (0 = GOMAXPROCS)")
	flag.Parse()
	sim.SetWorkers(*workers)

	const vcc = lowvcc.Millivolts(450)
	workloads := []lowvcc.Profile{
		lowvcc.SpecIntProfile(),
		lowvcc.WorkstationProfile(),
		lowvcc.MemBoundProfile(),
	}
	traces := make([]*lowvcc.Trace, len(workloads))
	for i, p := range workloads {
		traces[i] = lowvcc.GenerateTrace(p, 60000, 9)
	}
	bases, _, err := sim.RunPoint(lowvcc.DefaultConfig(vcc, lowvcc.ModeBaseline), traces)
	if err != nil {
		log.Fatal(err)
	}
	iraws, _, err := sim.RunPoint(lowvcc.DefaultConfig(vcc, lowvcc.ModeIRAW), traces)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("at %v (frequency gain %.2fx):\n\n", vcc,
		lowvcc.DelayModel().FreqGain(vcc))
	fmt.Println("workload     UL1-missrate  mem-stall  speedup  STable-fwd  replays")
	for i, p := range workloads {
		base, iraw := bases[i], iraws[i]
		missRate := 0.0
		if iraw.UL1.Accesses > 0 {
			missRate = float64(iraw.UL1.Misses) / float64(iraw.UL1.Accesses)
		}
		memStall := iraw.Run.StallFraction(6) // stats.StallMemory
		fmt.Printf("%-12s %8.1f%%  %8.1f%%  %6.2fx  %10d  %7d\n",
			p.Name, 100*missRate, 100*memStall, base.Time/iraw.Time,
			iraw.Mem.STableForwards, iraw.Mem.RepairedDestructions)
	}
	fmt.Println("\nthe cache-hostile stream keeps the lowest speedup: its off-chip")
	fmt.Println("portion is constant-time DRAM, which the frequency gain cannot")
	fmt.Println("touch — Section 5.2's effect (i) in isolation.")
}
