// Memory-bound study: the paper notes performance gains trail frequency
// gains partly because "off-chip memory latency remains constant"
// (Section 5.2, effect i). This example runs a cache-hostile streaming
// workload next to a compute workload and shows the IRAW speedup shrinking
// as the memory-bound fraction grows — the faster clock just waits more
// cycles for the same nanoseconds of DRAM. It also surfaces the Store
// Table at work: forwards and store replays on the store-heavy stream.
//
// All six (design, workload) cells fan out across the experiment pool
// (-workers bounds it; -window/-warm shard long traces), and per-trace
// results come back in workload order. The example doubles as a smoke
// check of the memory-hierarchy fast path: the whole sweep runs once with
// the hierarchy fast paths disabled and once enabled, and the simulated
// instructions per wall-clock second are printed before/after — the
// results themselves are bit-identical, only the wall-clock moves.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"lowvcc"
	"lowvcc/internal/sim"
)

func main() {
	workers := flag.Int("workers", 0, "simulation worker goroutines (0 = GOMAXPROCS)")
	width := flag.Int("width", 0, "fetch/issue width, 1..4 (0 = the modelled default, 2)")
	window := flag.Int("window", 0, "sample-window instructions for sharded long traces (0 = off)")
	warm := flag.Int("warm", 0, "warm-up instructions per sample window (0 = mode default, <0 = full prefix)")
	warmMode := flag.String("warmmode", "functional", "sample-window warm-up: functional or timed")
	flag.Parse()
	wm, err := sim.ParseWarmMode(*warmMode)
	if err != nil {
		log.Fatal(err)
	}
	sim.SetWorkers(*workers)
	sim.SetWindow(*window, *warm)
	sim.SetWarmMode(wm)

	const vcc = lowvcc.Millivolts(450)
	workloads := []lowvcc.Profile{
		lowvcc.SpecIntProfile(),
		lowvcc.WorkstationProfile(),
		lowvcc.MemBoundProfile(),
	}
	traces := make([]*lowvcc.Trace, len(workloads))
	totalInsts := 0
	for i, p := range workloads {
		traces[i] = lowvcc.GenerateTrace(p, 60000, 9)
		totalInsts += traces[i].Len()
	}

	// sweep runs the baseline and IRAW points over every trace, returning
	// the per-trace results and the measured-instruction throughput (the
	// unsharded path additionally executes a warm-up pass per trace that
	// this rate deliberately does not count — it is a relative smoke
	// metric, not BenchmarkMemBoundThroughput's per-pass insts/s).
	sweep := func(disableFastPaths bool) (bases, iraws []*lowvcc.Result, instsPerSec float64) {
		start := time.Now()
		w := *width
		if w == 0 {
			w = 2 // the modelled default; DefaultConfigWidth(…, 2) == DefaultConfig
		}
		baseCfg := lowvcc.DefaultConfigWidth(vcc, lowvcc.ModeBaseline, w)
		irawCfg := lowvcc.DefaultConfigWidth(vcc, lowvcc.ModeIRAW, w)
		baseCfg.DisableFastPaths = disableFastPaths
		irawCfg.DisableFastPaths = disableFastPaths
		bases, _, err := sim.RunPoint(baseCfg, traces)
		if err != nil {
			log.Fatal(err)
		}
		iraws, _, err = sim.RunPoint(irawCfg, traces)
		if err != nil {
			log.Fatal(err)
		}
		return bases, iraws, 2 * float64(totalInsts) / time.Since(start).Seconds()
	}

	_, _, slowRate := sweep(true)
	bases, iraws, fastRate := sweep(false)

	fmt.Printf("at %v (frequency gain %.2fx):\n\n", vcc,
		lowvcc.DelayModel().FreqGain(vcc))
	fmt.Println("workload     UL1-missrate  mem-stall  speedup  STable-fwd  replays")
	for i, p := range workloads {
		base, iraw := bases[i], iraws[i]
		missRate := 0.0
		if iraw.UL1.Accesses > 0 {
			missRate = float64(iraw.UL1.Misses) / float64(iraw.UL1.Accesses)
		}
		memStall := iraw.Run.StallFraction(6) // stats.StallMemory
		fmt.Printf("%-12s %8.1f%%  %8.1f%%  %6.2fx  %10d  %7d\n",
			p.Name, 100*missRate, 100*memStall, base.Time/iraw.Time,
			iraw.Mem.STableForwards, iraw.Mem.RepairedDestructions)
	}
	fmt.Println("\nthe cache-hostile stream keeps the lowest speedup: its off-chip")
	fmt.Println("portion is constant-time DRAM, which the frequency gain cannot")
	fmt.Println("touch — Section 5.2's effect (i) in isolation.")

	fmt.Printf("\nsimulator throughput, measured insts/s (identical results, hierarchy fast path off -> on):\n")
	fmt.Printf("  before: %10.0f\n  after:  %10.0f  (%.2fx)\n",
		slowRate, fastRate, fastRate/slowRate)
}
