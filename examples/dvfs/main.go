// DVFS scenario (Section 4.1.3): a single core moves through voltage
// phases — high-Vcc bursts and low-Vcc battery-saver stretches — and the
// IRAW machinery reconfigures at each transition: the scoreboard bubble,
// the IQ occupancy threshold, the STable size and the port-stall counters
// all follow the new level. Caches stay warm across phases (one persistent
// core), exactly what a mobile workload sees.
package main

import (
	"fmt"
	"log"

	"lowvcc"
)

func main() {
	// A phone-like duty cycle: interactive burst, idle scroll, video.
	phases := []struct {
		name string
		vcc  lowvcc.Millivolts
		prof lowvcc.Profile
	}{
		{"interactive burst", 700, lowvcc.OfficeProfile()},
		{"background sync", 500, lowvcc.ServerProfile()},
		{"video decode", 475, lowvcc.MultimediaProfile()},
		{"idle housekeeping", 400, lowvcc.KernelProfile()},
		{"interactive burst", 675, lowvcc.OfficeProfile()},
	}

	c := lowvcc.MustNewCore(lowvcc.DefaultConfig(700, lowvcc.ModeIRAW))
	fmt.Println("phase               Vcc    N  freq-gain  IPC    time(a.u.)")
	var total float64
	for i, ph := range phases {
		if err := c.Reconfigure(ph.vcc); err != nil {
			log.Fatal(err)
		}
		tr := lowvcc.GenerateTrace(ph.prof, 40000, uint64(i+1))
		res, err := c.Run(tr)
		if err != nil {
			log.Fatal(err)
		}
		plan := res.Plan
		fmt.Printf("%-18s  %-5v  %d  %-9.2f  %.3f  %.0f\n",
			ph.name, ph.vcc, plan.StabilizeCycles, plan.FreqGain, res.IPC(), res.Time)
		total += res.Time
		if res.CorruptConsumed != 0 {
			log.Fatalf("phase %q consumed corrupt data", ph.name)
		}
	}
	fmt.Printf("total time: %.0f a.u. — zero corruption across %d reconfigurations\n",
		total, len(phases))
}
