// DVFS scenario (Section 4.1.3): a single core moves through voltage
// phases — high-Vcc bursts and low-Vcc battery-saver stretches — and the
// IRAW machinery reconfigures at each transition: the scoreboard bubble,
// the IQ occupancy threshold, the STable size and the port-stall counters
// all follow the new level. Caches stay warm across phases (one persistent
// core), exactly what a mobile workload sees.
//
// Next to the serial phase walk, every phase's steady-state reference — a
// fresh core at the phase's voltage over the same trace — fans out across
// the experiment pool (-workers bounds it; -window/-warm/-warmmode shard
// long phase traces into sample windows), so the printout contrasts the
// warm-across-transitions DVFS trajectory with the isolated operating
// points while the references simulate concurrently.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"lowvcc"
	"lowvcc/internal/sim"
)

func main() {
	insts := flag.Int("insts", 40000, "instructions per phase trace")
	workers := flag.Int("workers", 0, "simulation worker goroutines (0 = GOMAXPROCS)")
	window := flag.Int("window", 0, "sample-window instructions for sharded long phase traces (0 = off)")
	warm := flag.Int("warm", 0, "warm-up instructions per sample window (0 = mode default, <0 = full prefix)")
	warmMode := flag.String("warmmode", "functional", "sample-window warm-up: functional or timed")
	flag.Parse()
	wm, err := sim.ParseWarmMode(*warmMode)
	if err != nil {
		log.Fatal(err)
	}

	// A phone-like duty cycle: interactive burst, idle scroll, video.
	phases := []struct {
		name string
		vcc  lowvcc.Millivolts
		prof lowvcc.Profile
	}{
		{"interactive burst", 700, lowvcc.OfficeProfile()},
		{"background sync", 500, lowvcc.ServerProfile()},
		{"video decode", 475, lowvcc.MultimediaProfile()},
		{"idle housekeeping", 400, lowvcc.KernelProfile()},
		{"interactive burst", 675, lowvcc.OfficeProfile()},
	}
	traces := make([]*lowvcc.Trace, len(phases))
	for i, ph := range phases {
		traces[i] = lowvcc.GenerateTrace(ph.prof, *insts, uint64(i+1))
	}

	// Steady-state references: one operating point per phase, all fanned
	// across one pool (each phase's trace shards into sample windows when
	// -window is set). Stream emission order is completion order; results
	// are placed by point index, so the output is deterministic.
	runner := (&sim.Runner{Workers: *workers}).
		WithWindow(*window, *warm).
		WithWarmMode(wm)
	specs := make([]sim.PointSpec, len(phases))
	for i, ph := range phases {
		specs[i] = sim.PointSpec{
			Label:  ph.name,
			Cfg:    lowvcc.DefaultConfig(ph.vcc, lowvcc.ModeIRAW),
			Traces: []*lowvcc.Trace{traces[i]},
		}
	}
	steady := make([]*lowvcc.Result, len(phases))
	for u := range runner.Stream(context.Background(), specs) {
		if u.Err != nil {
			log.Fatal(u.Err)
		}
		steady[u.Point] = u.Result
	}

	// The serial DVFS walk: one persistent core, reconfigured per phase.
	c := lowvcc.MustNewCore(lowvcc.DefaultConfig(700, lowvcc.ModeIRAW))
	fmt.Println("phase               Vcc    N  freq-gain  IPC    steady-IPC  time(a.u.)")
	var total float64
	for i, ph := range phases {
		if err := c.Reconfigure(ph.vcc); err != nil {
			log.Fatal(err)
		}
		res, err := c.Run(traces[i])
		if err != nil {
			log.Fatal(err)
		}
		plan := res.Plan
		fmt.Printf("%-18s  %-5v  %d  %-9.2f  %.3f  %.3f       %.0f\n",
			ph.name, ph.vcc, plan.StabilizeCycles, plan.FreqGain,
			res.IPC(), steady[i].IPC(), res.Time)
		total += res.Time
		if res.CorruptConsumed != 0 {
			log.Fatalf("phase %q consumed corrupt data", ph.name)
		}
	}
	fmt.Printf("total time: %.0f a.u. — zero corruption across %d reconfigurations\n",
		total, len(phases))
	fmt.Println("steady-IPC is each phase in isolation (fresh core, pooled);")
	fmt.Println("the DVFS walk keeps caches warm across transitions, so its")
	fmt.Println("phases meet warmer state than their isolated counterparts.")
}
