// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark reports the paper's headline metrics as custom units next
// to the usual ns/op, so `go test -bench=.` doubles as the reproduction
// harness:
//
//	BenchmarkFig11bSpeedup   ...  1.57 freq-gain-500mV  1.44 perf-gain-500mV
//
// The workload is sized for stable rates at benchmark time; cmd/figures
// runs the same experiments at larger scale.
package lowvcc_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lowvcc/internal/circuit"
	"lowvcc/internal/ckpt"
	"lowvcc/internal/core"
	"lowvcc/internal/service"
	"lowvcc/internal/sim"
	"lowvcc/internal/trace"
	"lowvcc/internal/workload"
)

func benchSuite() []*trace.Trace {
	return sim.SuiteSpec{InstsPerTrace: 20000, SeedsPerProfile: 1}.Traces()
}

// BenchmarkFig1DelayModel regenerates Figure 1 (delay curves vs Vcc).
func BenchmarkFig1DelayModel(b *testing.B) {
	var rows []sim.Fig1Row
	for i := 0; i < b.N; i++ {
		rows = sim.Figure1()
	}
	for _, r := range rows {
		if r.Vcc == 450 {
			b.ReportMetric(r.BitcellWrite, "write-delay-450mV")
			b.ReportMetric(r.BitcellRead, "read-delay-450mV")
		}
	}
}

// BenchmarkFig11aCycleTime regenerates Figure 11(a) (cycle times vs Vcc).
func BenchmarkFig11aCycleTime(b *testing.B) {
	var rows []sim.Fig11aRow
	for i := 0; i < b.N; i++ {
		rows = sim.Figure11a()
	}
	for _, r := range rows {
		if r.Vcc == 500 {
			b.ReportMetric(r.BaselineCycle, "baseline-cycle-500mV")
			b.ReportMetric(r.IRAWCycle, "iraw-cycle-500mV")
		}
	}
}

// BenchmarkFig11bSpeedup regenerates Figure 11(b): frequency and
// performance gains (paper: +57%/+48% at 500 mV, +99%/+90% at 400 mV).
func BenchmarkFig11bSpeedup(b *testing.B) {
	traces := benchSuite()
	var rows []sim.Fig11bRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = sim.Figure11b(traces)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Vcc {
		case 500:
			b.ReportMetric(r.FreqGain, "freq-gain-500mV")
			b.ReportMetric(r.PerfGain, "perf-gain-500mV")
		case 400:
			b.ReportMetric(r.FreqGain, "freq-gain-400mV")
			b.ReportMetric(r.PerfGain, "perf-gain-400mV")
		}
	}
}

// BenchmarkFig12EDP regenerates Figure 12: relative energy, delay and EDP
// (paper: EDP 0.61 at 500 mV, 0.41 at 450 mV, 0.33 at 400 mV).
func BenchmarkFig12EDP(b *testing.B) {
	traces := benchSuite()
	var rows []sim.Fig12Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = sim.Figure12(traces)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Vcc {
		case 500:
			b.ReportMetric(r.RelEDP, "rel-EDP-500mV")
		case 450:
			b.ReportMetric(r.RelEDP, "rel-EDP-450mV")
		case 400:
			b.ReportMetric(r.RelEDP, "rel-EDP-400mV")
		}
	}
}

// BenchmarkTable1Mechanisms regenerates the quantitative Table 1 comparison
// (IRAW vs Faulty Bits vs Extra Bypass at 500 mV).
func BenchmarkTable1Mechanisms(b *testing.B) {
	traces := benchSuite()
	var res *sim.Table1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sim.Table1(traces, 500)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res.Rows {
		switch r.Mode {
		case circuit.ModeIRAW:
			b.ReportMetric(r.PerfGain, "iraw-perf-gain")
		case circuit.ModeFaultyBits:
			b.ReportMetric(r.PerfGain, "faultybits-perf-gain")
		case circuit.ModeExtraBypass:
			b.ReportMetric(r.PerfGain, "extrabypass-perf-gain")
		}
	}
}

// BenchmarkStallBreakdown575 regenerates the Section 5.2 decomposition
// (paper: 8.86% total = 8.52% RF + 0.30% DL0 + 0.04% rest at 575 mV) and
// the 13.2%-delayed-instructions statistic.
func BenchmarkStallBreakdown575(b *testing.B) {
	traces := benchSuite()
	var bd *sim.BreakdownResult
	for i := 0; i < b.N; i++ {
		var err error
		bd, err = sim.Breakdown(traces, 575)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*bd.PerfDrop, "perf-drop-%")
	b.ReportMetric(100*bd.RFShare, "rf-share-%")
	b.ReportMetric(100*bd.DL0Share, "dl0-share-%")
	b.ReportMetric(100*bd.DelayedFraction, "delayed-%")
}

// BenchmarkBPStats regenerates the Section 4.5 prediction-only statistics
// (paper: 0.0017% potential extra mispredictions, no RSB conflicts).
func BenchmarkBPStats(b *testing.B) {
	traces := benchSuite()
	var res *sim.BPStatsResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sim.BPStats(traces, 500)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.PotentialCorruptionRate, "bp-corrupt-%")
	b.ReportMetric(float64(res.RSBConflicts), "rsb-conflicts")
}

// BenchmarkOverheads regenerates the Section 5.3 area/energy accounting
// (paper: <0.03% area, <1% energy).
func BenchmarkOverheads(b *testing.B) {
	var a = sim.IRAWOverheads()
	for i := 0; i < b.N; i++ {
		a = sim.IRAWOverheads()
	}
	b.ReportMetric(100*a.OverheadFraction(), "area-ovh-%")
	b.ReportMetric(100*a.EnergyOverheadFraction(), "energy-ovh-%")
}

// BenchmarkEDP450Example regenerates the Section 5.3 worked example
// (paper illustration: 5 J unconstrained, 8.50 J baseline, 6.40 J IRAW).
func BenchmarkEDP450Example(b *testing.B) {
	traces := benchSuite()
	var res *sim.EDP450Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sim.EDP450(traces)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Baseline.Total(), "baseline-J")
	b.ReportMetric(res.IRAW.Total(), "iraw-J")
}

// BenchmarkNSweepAblation measures the forced-N ablation (Section 5.2's
// "different technology nodes" scenario).
func BenchmarkNSweepAblation(b *testing.B) {
	traces := benchSuite()
	var rows []sim.NSweepRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = sim.NSweep(traces, 500, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.N == 1 || r.N == 3 {
			b.ReportMetric(r.PerfGain, "perf-gain-N"+string(rune('0'+r.N)))
		}
	}
}

// BenchmarkCompilerResched measures the future-work compiler extension.
func BenchmarkCompilerResched(b *testing.B) {
	traces := benchSuite()
	var res *sim.ReschedResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sim.CompilerResched(traces, 500, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.DelayedBefore, "delayed-before-%")
	b.ReportMetric(100*res.DelayedAfter, "delayed-after-%")
}

// BenchmarkShardedLongTrace measures the sharded long-trace path: a
// one-point sweep over a single long production-style trace, unsharded
// (whole-trace warm-up + measured pass, the serialization ROADMAP called
// out) versus sharded into 8 sample windows at 8 workers — once per warm
// mode, each at its runner-default prefix: timed warm-up (win/4, every
// warm instruction simulated) and functional warm-up (core.WarmReplay
// over two windows of history, timing-free). Note the timed arm's config:
// BENCH_3/BENCH_4 recorded sharded-s with an explicit warm=len/128 (a
// benchmark-special short prefix), so their sharded-s history is not
// directly comparable to timedwarm-sharded-s here, which measures the
// timed mode as the Runner actually defaults it. Sharding wins even on
// one CPU — each window runs one pass over its warm-up prefix plus span
// instead of two full passes — and parallel machines additionally overlap
// the windows.
//
// Two acceptance metrics: sharded-speedup (unsharded over functional
// sharded wall-clock, recorded since BENCH_3.json; sharded-s must stay at
// or under timedwarm-sharded-s) and shard-bias-% (the absolute IPC
// deviation of the functional-warm stitch from the cold single production
// pass the windows approximate — low single digits, vs tens of percent for
// the timed warm-up, timedwarm-bias-%; gated in bench_check.sh).
//
// A fourth arm repeats the functional-warm run with the result journal
// enabled against a cold directory each iteration — all cost, no replay
// benefit — and reports journal-overhead-% (recorded since BENCH_6.json;
// the resilience layer's cache must stay under a few percent on top of
// sharded execution). Journaling stays off in every other arm and every
// other benchmark: benches measure simulation, not the cache.
//
// Since BENCH_8.json the functional arm warms at the runner's new default —
// warm=-1, the full trace prefix — through a warm-state checkpoint store
// primed once before the clock starts, so every timed window start is an
// O(state) snapshot restore plus a residual replay of at most one window.
// A fifth arm runs the identical full-history configuration with
// checkpoints disabled (live functional replay of every prefix, the
// reference path) and must produce bit-identical results; the pair yields
// ckptoff-sharded-s, ckpt-restore-speedup (reference over checkpointed
// wall-clock) and ckpt-hit-rate-% (store hits over lookups across the timed
// loop). Full-history warm is what drives shard-bias-% to ~0: BENCH_7's
// two-window default recorded -2.45%.
func BenchmarkShardedLongTrace(b *testing.B) {
	tr := workload.LongTrace(700000, 11)
	cfg := core.DefaultConfig(500, circuit.ModeIRAW)
	ctx := context.Background()
	win := len(tr.Insts) / 8
	// The cold single production pass the sample windows approximate: the
	// bias reference (deterministic, so computed once outside the timing).
	cold, err := core.MustNew(cfg).Run(tr)
	if err != nil {
		b.Fatal(err)
	}
	bias := func(r *core.Result) float64 {
		d := 100 * (r.IPC() - cold.IPC()) / cold.IPC()
		if d < 0 {
			return -d
		}
		return d
	}
	// Shared checkpoint store, primed before the clock starts: the timed
	// checkpointed arms measure the steady state every operating point after
	// the first one sees (snapshots are vcc-independent, so a real sweep
	// captures once and restores everywhere).
	st, err := ckpt.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	prime := (&sim.Runner{Workers: 8}).WithWindow(win, 0).WithCheckpointStore(st)
	if _, _, err := prime.RunPoint(ctx, cfg, []*trace.Trace{tr}); err != nil {
		b.Fatal(err)
	}
	primed := st.Stats()
	b.ResetTimer()
	var unsharded, timedWarm, sharded, ckptOff, journaled time.Duration
	var timedRes, funcRes *core.Result
	for i := 0; i < b.N; i++ {
		// Explicit opt-out: auto-windowing would otherwise shard this trace.
		r := (&sim.Runner{Workers: 8}).WithWindow(-1, 0)
		t0 := time.Now()
		if _, _, err := r.RunPoint(ctx, cfg, []*trace.Trace{tr}); err != nil {
			b.Fatal(err)
		}
		unsharded += time.Since(t0)
		rt := (&sim.Runner{Workers: 8}).
			WithWindow(win, 0). // the timed default warm (win/4)
			WithWarmMode(core.WarmTimed)
		t1 := time.Now()
		tper, _, err := rt.RunPoint(ctx, cfg, []*trace.Trace{tr})
		if err != nil {
			b.Fatal(err)
		}
		timedWarm += time.Since(t1)
		timedRes = tper[0]
		rf := (&sim.Runner{Workers: 8}).WithWindow(win, 0).WithCheckpointStore(st)
		t2 := time.Now()
		fper, _, err := rf.RunPoint(ctx, cfg, []*trace.Trace{tr})
		if err != nil {
			b.Fatal(err)
		}
		sharded += time.Since(t2)
		funcRes = fper[0]
		// The reference path: identical full-history windows, every prefix
		// replayed live. Bit-identity here is the benchmark's correctness
		// gate for the store.
		ro := (&sim.Runner{Workers: 8}).WithWindow(win, 0).WithDisableCheckpoints(true)
		t3 := time.Now()
		oper, _, err := ro.RunPoint(ctx, cfg, []*trace.Trace{tr})
		if err != nil {
			b.Fatal(err)
		}
		ckptOff += time.Since(t3)
		if oper[0].Run != funcRes.Run {
			b.Fatal("checkpointed run diverged from the live-replay reference")
		}
		// Cold journal every iteration: measures the full write-side cost
		// (trace hashing, encode, fsync-free atomic rename) with zero hits.
		// The shared checkpoint store rides along so the only delta against
		// the sharded arm is the journal itself.
		rj := (&sim.Runner{Workers: 8}).
			WithWindow(win, 0).
			WithCheckpointStore(st).
			WithJournal(b.TempDir())
		t4 := time.Now()
		jper, _, err := rj.RunPoint(ctx, cfg, []*trace.Trace{tr})
		if err != nil {
			b.Fatal(err)
		}
		journaled += time.Since(t4)
		if jper[0].Run != funcRes.Run {
			b.Fatal("journaled run diverged from the plain sharded run")
		}
	}
	b.StopTimer()
	b.ReportMetric(unsharded.Seconds()/float64(b.N), "unsharded-s")
	b.ReportMetric(timedWarm.Seconds()/float64(b.N), "timedwarm-sharded-s")
	b.ReportMetric(sharded.Seconds()/float64(b.N), "sharded-s")
	b.ReportMetric(unsharded.Seconds()/sharded.Seconds(), "sharded-speedup")
	// Both absolute rates, so the trajectory JSON is self-describing: the
	// speedup ratio can be recomputed from them without this source.
	b.ReportMetric(float64(len(tr.Insts))*float64(b.N)/unsharded.Seconds(), "unsharded-insts/s")
	b.ReportMetric(float64(len(tr.Insts))*float64(b.N)/sharded.Seconds(), "sharded-insts/s")
	b.ReportMetric(bias(funcRes), "shard-bias-%")
	b.ReportMetric(bias(timedRes), "timedwarm-bias-%")
	b.ReportMetric(journaled.Seconds()/float64(b.N), "journaled-sharded-s")
	b.ReportMetric(100*(journaled.Seconds()-sharded.Seconds())/sharded.Seconds(), "journal-overhead-%")
	b.ReportMetric(ckptOff.Seconds()/float64(b.N), "ckptoff-sharded-s")
	b.ReportMetric(ckptOff.Seconds()/sharded.Seconds(), "ckpt-restore-speedup")
	s := st.Stats()
	if lookups := (s.Hits - primed.Hits) + (s.Misses - primed.Misses); lookups > 0 {
		b.ReportMetric(100*float64(s.Hits-primed.Hits)/float64(lookups), "ckpt-hit-rate-%")
	}
}

// BenchmarkMemBoundThroughput measures simulator speed on the cache-hostile
// streaming profile (workload.MemBound), where the memory hierarchy's
// per-access work — TLB check, STable probe, set-wide sram read, oracle
// signature, MSHR bookkeeping — dominates. The trace is production-scale
// (300k instructions, cf. the paper's 10M-instruction traces and
// BenchmarkShardedLongTrace's 700k): that length is where the slow path's
// per-access recomputation compounds — its in-flight and oracle records
// grow with every line ever missed or stored, while the fast path's stay
// at working-set size. It runs the identical workload twice, with the
// hierarchy fast paths enabled and disabled (core.Config.DisableFastPaths),
// and reports both rates plus their ratio: the PR-4 acceptance metric
// (>= 1.5x) recorded in BENCH_4.json. Interleaving the two cores inside
// one benchmark keeps the ratio largely immune to machine-load noise.
func BenchmarkMemBoundThroughput(b *testing.B) {
	tr := workload.Generate(workload.MemBound(), 300000, 1)
	fastCfg := core.DefaultConfig(500, circuit.ModeIRAW)
	slowCfg := fastCfg
	slowCfg.DisableFastPaths = true
	fast := core.MustNew(fastCfg)
	slow := core.MustNew(slowCfg)
	// Warm both cores (and prove the fast paths change nothing).
	fr, err := fast.Run(tr)
	if err != nil {
		b.Fatal(err)
	}
	sr, err := slow.Run(tr)
	if err != nil {
		b.Fatal(err)
	}
	if fr.Run != sr.Run {
		b.Fatalf("fast paths changed results:\nfast: %+v\nslow: %+v", fr.Run, sr.Run)
	}
	b.ResetTimer()
	var fastD, slowD time.Duration
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := fast.Run(tr); err != nil {
			b.Fatal(err)
		}
		fastD += time.Since(t0)
		t1 := time.Now()
		if _, err := slow.Run(tr); err != nil {
			b.Fatal(err)
		}
		slowD += time.Since(t1)
	}
	insts := float64(tr.Len()) * float64(b.N)
	b.ReportMetric(insts/fastD.Seconds(), "membound-insts/s")
	b.ReportMetric(insts/slowD.Seconds(), "membound-baseline-insts/s")
	b.ReportMetric(slowD.Seconds()/fastD.Seconds(), "membound-speedup")
}

// BenchmarkWideCore measures simulator speed across the fetch/issue width
// axis (1, 2, 4) on the warm SpecInt profile. Width 2 is the modelled
// default (DefaultConfigWidth(v, mode, 2) == DefaultConfig), so its rate
// tracks BenchmarkCoreThroughput; widths above 2 exercise the batched
// ready-set probe (scoreboard.IssueReadySet + iq.MayIssueN) that the
// struct-of-arrays issue loop uses to issue up to Width slots per cycle
// without per-slot re-probing. The three cores run interleaved inside one
// iteration so the width1/width2/width4 rates share machine-load noise.
// All three are informational in bench_check.sh (reported, never gated) —
// a wider core does more work per simulated instruction, so the absolute
// rates are not comparable to the gated insts/s; the per-width IPC is
// deterministic and recorded too so the trajectory JSON shows the wide
// core actually issuing more.
func BenchmarkWideCore(b *testing.B) {
	tr := workload.Generate(workload.SpecInt(), 50000, 1)
	widths := []int{1, 2, 4}
	cores := make([]*core.Core, len(widths))
	durs := make([]time.Duration, len(widths))
	ipcs := make([]float64, len(widths))
	for i, w := range widths {
		cores[i] = core.MustNew(core.DefaultConfigWidth(500, circuit.ModeIRAW, w))
		r, err := cores[i].Run(tr) // warm-up, and the deterministic IPC
		if err != nil {
			b.Fatal(err)
		}
		ipcs[i] = r.IPC()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for wi, c := range cores {
			t0 := time.Now()
			if _, err := c.Run(tr); err != nil {
				b.Fatal(err)
			}
			durs[wi] += time.Since(t0)
		}
	}
	b.StopTimer()
	insts := float64(tr.Len()) * float64(b.N)
	for wi, w := range widths {
		b.ReportMetric(insts/durs[wi].Seconds(), fmt.Sprintf("width%d-insts/s", w))
		b.ReportMetric(ipcs[wi], fmt.Sprintf("width%d-ipc", w))
	}
}

// BenchmarkCoreThroughput measures raw simulator speed (instructions
// simulated per second), the practical cost of every experiment above.
func BenchmarkCoreThroughput(b *testing.B) {
	tr := workload.Generate(workload.SpecInt(), 50000, 1)
	c := core.MustNew(core.DefaultConfig(500, circuit.ModeIRAW))
	if _, err := c.Run(tr); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds(), "insts/s")
}

// waitSweep polls a sweep to its terminal state and fails the benchmark
// unless it finished clean.
func waitSweep(b *testing.B, s *service.Scheduler, id string) {
	b.Helper()
	for {
		st, err := s.Status(id)
		if err != nil {
			b.Fatal(err)
		}
		if st.Terminal() {
			if st.State != "done" {
				b.Fatalf("sweep %s ended %q (done %d, failed %d)", id, st.State, st.Done, st.Failed)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// BenchmarkSweepDaemon prices the sweep daemon's result push-down path.
// The same small grid runs through two deployments per iteration:
//
//   - shared: in-process workers journaling straight into the daemon's
//     directory, the classic shared-filesystem layout;
//   - pushdown: external-style workers pulling leases over loopback HTTP,
//     journaling into private directories, and uploading the sealed entry
//     bytes in Complete through the daemon's content check.
//
// pushdown-overhead-% is the extra wall-clock of the wire path over the
// shared path. It is informational (reported by bench_check.sh, never
// gated): at this benchmark's deliberately tiny cells the HTTP round
// trips are a visible fraction of each cell, which is the worst case —
// real sweeps amortize the same per-cell cost over far longer
// simulations. Fresh journal directories every iteration keep replay
// hits from shortcutting either arm.
func BenchmarkSweepDaemon(b *testing.B) {
	spec := sim.SweepSpec{
		InstsPerTrace:   10000,
		SeedsPerProfile: 1,
		Modes:           []string{"baseline", "iraw"},
		LevelsMV:        []int{500},
	}

	runShared := func() time.Duration {
		s, _, err := service.NewScheduler(service.SchedulerOpts{
			JournalDir:  b.TempDir(),
			JournalSync: false,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		stop := service.RunWorkers(context.Background(), s, 4,
			service.WorkerOpts{Poll: 2 * time.Millisecond})
		defer stop()
		t0 := time.Now()
		id, err := s.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		waitSweep(b, s, id)
		return time.Since(t0)
	}

	runPushDown := func() time.Duration {
		srv, _, err := service.NewServer(service.ServerOpts{
			SchedulerOpts: service.SchedulerOpts{
				JournalDir:  b.TempDir(),
				JournalSync: false,
			},
			Workers: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Scheduler().Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		wctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			opts := service.WorkerOpts{
				Name:       fmt.Sprintf("bench-%d", i),
				Poll:       2 * time.Millisecond,
				JournalDir: b.TempDir(), // private: nothing shared with the daemon
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				service.Work(wctx, ts.URL, opts)
			}()
		}
		t0 := time.Now()
		id, err := srv.Scheduler().Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		waitSweep(b, srv.Scheduler(), id)
		d := time.Since(t0)
		cancel()
		wg.Wait()
		return d
	}

	// One untimed warmup of each arm absorbs first-run costs (page cache,
	// TCP setup, lazy allocations) that would skew a 1x run.
	runShared()
	runPushDown()

	b.ResetTimer()
	var sharedD, pushD time.Duration
	for i := 0; i < b.N; i++ {
		sharedD += runShared()
		pushD += runPushDown()
	}
	b.ReportMetric(sharedD.Seconds()/float64(b.N), "shared-sweep-s")
	b.ReportMetric(pushD.Seconds()/float64(b.N), "pushdown-sweep-s")
	b.ReportMetric(100*(pushD.Seconds()-sharedD.Seconds())/sharedD.Seconds(),
		"pushdown-overhead-%")
}
