module lowvcc

go 1.24
