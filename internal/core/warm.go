package core

import (
	"fmt"

	"lowvcc/internal/isa"
	"lowvcc/internal/trace"
)

// WarmMode selects how RunWindow executes a sample window's warm-up prefix.
type WarmMode uint8

const (
	// WarmFunctional (the zero value, and the default everywhere) replays
	// the prefix timing-free through WarmReplay: caches, TLBs, LRU state,
	// the integrity oracle and the predictor are trained in access order at
	// near-zero cost, with no ports, stalls or cycle accounting, and the
	// timed engine takes over at the window boundary. This is the
	// SMARTS-style functional-warming half of the sample-window
	// methodology: it lets warm prefixes grow to whole windows of history,
	// which shrinks the sharding bias from tens of percent to low single
	// digits.
	WarmFunctional WarmMode = iota
	// WarmTimed executes the prefix on the timed engine and discards its
	// statistics — the pre-functional behaviour, kept selectable for
	// equivalence tests and benchmark baselines.
	WarmTimed
)

// String implements fmt.Stringer.
func (m WarmMode) String() string {
	switch m {
	case WarmFunctional:
		return "functional"
	case WarmTimed:
		return "timed"
	default:
		return fmt.Sprintf("WarmMode(%d)", int(m))
	}
}

// warmStopStride bounds how many instructions WarmReplay processes between
// stop-check polls; replay is so much faster than timed simulation that a
// coarser stride than the run loop's keeps preemption just as prompt.
const warmStopStride = 4096

// WarmReplay functionally replays the first n instructions of tr: the
// memory hierarchy sees the fetch/load/store stream and the predictor the
// resolved control flow, both through their timing-free warm paths, so the
// core's architectural warm state (cache and TLB contents, LRU recency,
// dirty bits, oracle versions, BP counters, global history, RSB) ends up
// exactly as a function of the instruction sequence — independent of the
// clock plan, the Vcc level and the IRAW mode. Nothing timing-visible
// changes: no cycles elapse (c.now is untouched), no port holds, stalls,
// in-flight fills, STable entries or stabilization windows are created, and
// no Result statistics move (a following measured run diffs from its own
// snapshot anyway). The pipeline-side state (scoreboard, IQ, register
// timing) is left cold: it re-fills within a few cycles of the measured
// span, the same transient the head of any trace pays.
//
// The replay mirrors the timed front end's access stream: one instruction
// fetch per 64-byte line transition, one data access per load or store, one
// predictor update per control instruction. The installed stop check is
// polled so context cancellation and point timeouts preempt warm replay
// just as they preempt timed simulation.
func (c *Core) WarmReplay(tr *trace.Trace, n int) error {
	return c.WarmReplayRange(tr, 0, n)
}

// WarmReplayRange functionally replays instructions [from, to) of tr — the
// segmented form of WarmReplay that the checkpoint store uses to replay only
// the residual tail after restoring a snapshot. Replaying a prefix in
// segments leaves the same warm state as one continuous replay: the only
// segmentation artifacts are the per-segment fetch-line memo reset (at worst
// one extra warm fetch of an already most-recently-touched line — an
// order-preserving no-op) and warm-memo invalidation (the memos are
// result-invariant caches). Tick counters advance differently, but only
// their ordering is observable and capture normalizes it away.
func (c *Core) WarmReplayRange(tr *trace.Trace, from, to int) error {
	if from < 0 || to < from || to > len(tr.Insts) {
		return fmt.Errorf("core: warm range [%d, %d) out of range for trace %q (%d insts)",
			from, to, tr.Name, len(tr.Insts))
	}
	at := c.now
	c.mem.BeginWarm()
	lastLine := ^uint64(0)
	for i := from; i < to; i++ {
		if c.stop != nil && i&(warmStopStride-1) == 0 {
			if err := c.stop(); err != nil {
				return fmt.Errorf("core: %s: warm replay aborted: %w", tr.Name, err)
			}
		}
		in := &tr.Insts[i]
		if line := in.PC &^ 63; line != lastLine {
			c.mem.WarmFetch(at, in.PC)
			lastLine = line
		}
		switch in.Op {
		case isa.OpLoad:
			c.mem.WarmLoad(at, in.Addr)
		case isa.OpStore:
			c.mem.WarmStore(at, in.Addr)
		case isa.OpBranch:
			c.bp.WarmBranch(in.PC, in.Taken)
		case isa.OpCall:
			c.bp.WarmCall(in.PC + 4)
		case isa.OpReturn:
			c.bp.WarmReturn()
		}
	}
	return nil
}
