package core

import (
	"math"
	"reflect"
	"testing"

	"lowvcc/internal/circuit"
	"lowvcc/internal/isa"
	"lowvcc/internal/stats"
	"lowvcc/internal/trace"
	"lowvcc/internal/workload"
)

func runWarm(t *testing.T, cfg Config, tr *trace.Trace) *Result {
	t.Helper()
	c := MustNew(cfg)
	if _, err := c.Run(tr); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	res, err := c.Run(tr)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// TestResetMatchesFreshCore is the contract the parallel sweep runner
// relies on: a Reset core must produce bit-identical results to a freshly
// constructed one, for every mode (including the fault-map modes, whose
// RNG state is derived from cfg.Seed and must re-derive identically).
func TestResetMatchesFreshCore(t *testing.T) {
	trA := workload.Generate(workload.SpecInt(), 12000, 1)
	trB := workload.Generate(workload.Server(), 12000, 2)
	for _, mode := range []circuit.Mode{
		circuit.ModeBaseline, circuit.ModeIRAW,
		circuit.ModeFaultyBits, circuit.ModeExtraBypass,
	} {
		cfg := DefaultConfig(500, mode)

		// Reused core: run trace A (dirtying caches, predictor, scratch),
		// Reset, then warm+measure trace B.
		c := MustNew(cfg)
		if _, err := c.Run(trA); err != nil {
			t.Fatalf("%v: dirty run: %v", mode, err)
		}
		if err := c.Reset(); err != nil {
			t.Fatalf("%v: reset: %v", mode, err)
		}
		if _, err := c.Run(trB); err != nil {
			t.Fatalf("%v: warmup: %v", mode, err)
		}
		reused, err := c.Run(trB)
		if err != nil {
			t.Fatalf("%v: measure: %v", mode, err)
		}

		fresh := runWarm(t, cfg, trB)
		if !reflect.DeepEqual(fresh, reused) {
			t.Errorf("%v: reset core diverges from fresh core:\nfresh:  %+v\nreused: %+v", mode, fresh, reused)
		}
	}
}

func TestBaselineAndIRAWIdenticalAtHighVcc(t *testing.T) {
	tr := workload.Generate(workload.SpecInt(), 20000, 1)
	base := runWarm(t, DefaultConfig(700, circuit.ModeBaseline), tr)
	iraw := runWarm(t, DefaultConfig(700, circuit.ModeIRAW), tr)
	if base.Run.Cycles != iraw.Run.Cycles {
		t.Fatalf("cycle counts differ at 700mV: %d vs %d (IRAW must deactivate)", base.Run.Cycles, iraw.Run.Cycles)
	}
	if iraw.Plan.IRAWActive {
		t.Fatal("IRAW active at 700mV")
	}
}

func TestIRAWSpeedupAtLowVcc(t *testing.T) {
	tr := workload.Generate(workload.SpecInt(), 20000, 1)
	for _, v := range []circuit.Millivolts{500, 450, 400} {
		base := runWarm(t, DefaultConfig(v, circuit.ModeBaseline), tr)
		iraw := runWarm(t, DefaultConfig(v, circuit.ModeIRAW), tr)
		speedup := base.Time / iraw.Time
		if speedup <= 1.2 {
			t.Errorf("%v: speedup %.2f, want substantial gain", v, speedup)
		}
		if speedup >= iraw.Plan.FreqGain {
			t.Errorf("%v: speedup %.2f exceeds frequency gain %.2f", v, speedup, iraw.Plan.FreqGain)
		}
	}
}

// TestNoCorruptionWithAvoidance is the paper's correctness claim: the
// avoidance mechanisms guarantee no read ever consumes a not-yet-stabilized
// value, for every workload class at every active voltage.
func TestNoCorruptionWithAvoidance(t *testing.T) {
	for _, p := range workload.Profiles() {
		tr := workload.Generate(p, 20000, 5)
		for _, v := range []circuit.Millivolts{575, 475, 400} {
			res := runWarm(t, DefaultConfig(v, circuit.ModeIRAW), tr)
			if res.CorruptConsumed != 0 {
				t.Errorf("%s %v: consumed %d corrupt values", p.Name, v, res.CorruptConsumed)
			}
			if res.IntegrityErrors != 0 {
				t.Errorf("%s %v: %d integrity errors", p.Name, v, res.IntegrityErrors)
			}
			if res.RFViolations != 0 {
				t.Errorf("%s %v: %d RF violations", p.Name, v, res.RFViolations)
			}
		}
	}
}

// TestUnsafeModeShowsViolations: with the same interrupted-write clock but
// the avoidance machinery disabled, corruption must appear — evidence the
// mechanisms are what keeps the safe runs clean.
func TestUnsafeModeShowsViolations(t *testing.T) {
	tr := workload.Generate(workload.SpecInt(), 20000, 1)
	cfg := DefaultConfig(500, circuit.ModeIRAW)
	cfg.DisableAvoidance = true
	res := runWarm(t, cfg, tr)
	if res.RFViolations == 0 {
		t.Error("unsafe mode produced no RF violations")
	}
	if res.CorruptConsumed == 0 {
		t.Error("unsafe mode consumed no corrupt data")
	}
}

func TestBaselineHasNoIRAWStalls(t *testing.T) {
	tr := workload.Generate(workload.SpecInt(), 20000, 1)
	res := runWarm(t, DefaultConfig(450, circuit.ModeBaseline), tr)
	if res.Run.IssueStalls[stats.StallRFIRAW] != 0 {
		t.Error("baseline charged RF-IRAW stalls")
	}
	if res.Run.IssueStalls[stats.StallIQGate] != 0 {
		t.Error("baseline charged IQ-gate stalls")
	}
	if res.Run.DelayedByRFIRAW != 0 {
		t.Error("baseline delayed instructions")
	}
}

func TestIRAWStallBreakdownShape(t *testing.T) {
	tr := workload.Generate(workload.SpecInt(), 30000, 1)
	res := runWarm(t, DefaultConfig(575, circuit.ModeIRAW), tr)
	rf := res.Run.IssueStalls[stats.StallRFIRAW]
	dl0 := res.Run.IssueStalls[stats.StallDL0IRAW]
	if rf == 0 {
		t.Fatal("no RF IRAW stalls at 575mV")
	}
	// The paper's ordering: RF dominates DL0 dominates the rest.
	if dl0 >= rf {
		t.Errorf("DL0 stalls (%d) not below RF stalls (%d)", dl0, rf)
	}
	if res.Run.DelayedFraction() < 0.05 || res.Run.DelayedFraction() > 0.30 {
		t.Errorf("delayed fraction %.3f outside plausible band", res.Run.DelayedFraction())
	}
}

func TestDeterminism(t *testing.T) {
	tr := workload.Generate(workload.Kernel(), 15000, 3)
	a := runWarm(t, DefaultConfig(500, circuit.ModeIRAW), tr)
	b := runWarm(t, DefaultConfig(500, circuit.ModeIRAW), tr)
	if a.Run.Cycles != b.Run.Cycles || a.Run.DelayedByRFIRAW != b.Run.DelayedByRFIRAW {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d cycles/delayed",
			a.Run.Cycles, a.Run.DelayedByRFIRAW, b.Run.Cycles, b.Run.DelayedByRFIRAW)
	}
}

func TestReconfigureAcrossLevels(t *testing.T) {
	tr := workload.Generate(workload.Office(), 10000, 2)
	c := MustNew(DefaultConfig(700, circuit.ModeIRAW))
	for _, v := range []circuit.Millivolts{700, 575, 450, 400, 625, 500} {
		if err := c.Reconfigure(v); err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(tr)
		if err != nil {
			t.Fatalf("at %v: %v", v, err)
		}
		if res.CorruptConsumed != 0 {
			t.Errorf("at %v after reconfigure: %d corrupt", v, res.CorruptConsumed)
		}
		wantActive := v <= 575
		if res.Plan.IRAWActive != wantActive {
			t.Errorf("at %v: IRAWActive = %v", v, res.Plan.IRAWActive)
		}
	}
	if err := c.Reconfigure(123); err == nil {
		t.Error("invalid voltage accepted")
	}
}

func TestFencesDrainWithNOOPs(t *testing.T) {
	p := workload.Kernel()
	p.Fence = 0.05 // fence-heavy
	tr := workload.Generate(p, 10000, 4)
	res := runWarm(t, DefaultConfig(500, circuit.ModeIRAW), tr)
	if res.NOOPsInjected == 0 {
		t.Fatal("fence-heavy run injected no drain NOOPs")
	}
	if res.CorruptConsumed != 0 {
		t.Fatal("corruption with fences")
	}
}

func TestFaultyBitsMode(t *testing.T) {
	tr := workload.Generate(workload.SpecInt(), 20000, 1)
	res := runWarm(t, DefaultConfig(500, circuit.ModeFaultyBits), tr)
	if res.Plan.FreqGain <= 1 {
		t.Error("faulty-bits gained no frequency")
	}
	iraw := runWarm(t, DefaultConfig(500, circuit.ModeIRAW), tr)
	if res.Plan.FreqGain >= iraw.Plan.FreqGain {
		t.Errorf("faulty-bits gain %.2f not below IRAW %.2f", res.Plan.FreqGain, iraw.Plan.FreqGain)
	}
	if res.DL0.DisabledLines == 0 && res.UL1.DisabledLines == 0 && res.IL0.DisabledLines == 0 {
		t.Error("no lines disabled in faulty-bits mode")
	}
}

func TestExtraBypassMode(t *testing.T) {
	tr := workload.Generate(workload.SpecInt(), 20000, 1)
	res := runWarm(t, DefaultConfig(500, circuit.ModeExtraBypass), tr)
	if res.Plan.WritePipelineCycles < 2 {
		t.Fatalf("write pipeline = %d at 500mV", res.Plan.WritePipelineCycles)
	}
	// Write-port contention must cost structural stalls vs the IRAW run.
	if res.Run.IssueStalls[stats.StallStructural] == 0 {
		t.Error("extra-bypass produced no structural stalls")
	}
}

func TestForcedNSweep(t *testing.T) {
	tr := workload.Generate(workload.SpecInt(), 15000, 1)
	prev := math.Inf(1)
	for n := 1; n <= 3; n++ {
		cfg := DefaultConfig(500, circuit.ModeIRAW)
		cfg.ForcedN = n
		res := runWarm(t, cfg, tr)
		if res.CorruptConsumed != 0 {
			t.Fatalf("N=%d: corruption", n)
		}
		ipc := res.IPC()
		if ipc >= prev+1e-9 {
			t.Errorf("IPC did not decrease with N: N=%d ipc=%.4f prev=%.4f", n, ipc, prev)
		}
		prev = ipc
	}
}

func TestDelayedFractionGrowsWithN(t *testing.T) {
	tr := workload.Generate(workload.SpecInt(), 15000, 1)
	cfg1 := DefaultConfig(500, circuit.ModeIRAW)
	cfg1.ForcedN = 1
	cfg3 := DefaultConfig(500, circuit.ModeIRAW)
	cfg3.ForcedN = 3
	r1 := runWarm(t, cfg1, tr)
	r3 := runWarm(t, cfg3, tr)
	if r3.Run.DelayedFraction() <= r1.Run.DelayedFraction() {
		t.Errorf("delayed fraction not increasing with N: %.3f vs %.3f",
			r1.Run.DelayedFraction(), r3.Run.DelayedFraction())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		func() Config { c := DefaultConfig(500, circuit.ModeIRAW); c.Vcc = 123; return c }(),
		func() Config { c := DefaultConfig(500, circuit.ModeIRAW); c.Width = 0; return c }(),
		func() Config { c := DefaultConfig(500, circuit.ModeIRAW); c.MemLatencyTime = 0; return c }(),
		func() Config { c := DefaultConfig(500, circuit.ModeIRAW); c.MispredictPenalty = 0; return c }(),
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestEmptyTraceRejected(t *testing.T) {
	c := MustNew(DefaultConfig(500, circuit.ModeIRAW))
	if _, err := c.Run(&trace.Trace{Name: "empty"}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestMergeResults(t *testing.T) {
	tr := workload.Generate(workload.SpecInt(), 5000, 1)
	a := runWarm(t, DefaultConfig(500, circuit.ModeIRAW), tr)
	b := runWarm(t, DefaultConfig(500, circuit.ModeIRAW), tr)
	m := MergeResults([]*Result{a, b})
	if m.Run.Instructions != a.Run.Instructions+b.Run.Instructions {
		t.Fatal("instructions not summed")
	}
	if m.Time != a.Time+b.Time {
		t.Fatal("time not summed")
	}
	if MergeResults(nil).Run.Instructions != 0 {
		t.Fatal("empty merge not zero")
	}
}

func TestAreaAccounting(t *testing.T) {
	c := MustNew(DefaultConfig(500, circuit.ModeIRAW))
	extra := c.IRAWExtraBits()
	total := c.TotalSRAMBits()
	if extra <= 0 || total <= 0 {
		t.Fatalf("accounting: extra=%d total=%d", extra, total)
	}
	// The paper's claim: latch-equivalent area below 0.03%.
	frac := 4 * float64(extra) / float64(total)
	if frac > 0.0003 {
		t.Errorf("area overhead %.5f%% exceeds the paper's 0.03%%", 100*frac)
	}
}

// TestBPPotentialCorruptionsRare: Section 4.5's claim that prediction-only
// violations are negligible.
func TestBPPotentialCorruptionsRare(t *testing.T) {
	tr := workload.Generate(workload.Office(), 30000, 7) // branchy class
	res := runWarm(t, DefaultConfig(500, circuit.ModeIRAW), tr)
	if res.BP.Predictions == 0 {
		t.Fatal("no predictions")
	}
	rate := float64(res.BP.PotentialCorruptions) / float64(res.BP.Predictions)
	if rate > 0.001 {
		t.Errorf("potential corruption rate %.5f, want negligible (<0.1%%)", rate)
	}
	if res.BP.RSBConflicts != 0 {
		t.Errorf("RSB conflicts = %d; the paper found none", res.BP.RSBConflicts)
	}
}

func TestScratchRegistersStayInRange(t *testing.T) {
	// Guard the ISA contract: the workload only writes scratch registers.
	tr := workload.Generate(workload.SpecInt(), 5000, 1)
	for _, in := range tr.Insts {
		if in.Dst != isa.RegNone && int(in.Dst) >= isa.NumRegs {
			t.Fatalf("dst out of range: %v", in.Dst)
		}
	}
}

func TestCombinedIRAWFaultyBits(t *testing.T) {
	tr := workload.Generate(workload.SpecInt(), 15000, 1)
	pure := runWarm(t, DefaultConfig(450, circuit.ModeIRAW), tr)
	cfg := DefaultConfig(450, circuit.ModeIRAW)
	cfg.CombineFaultyBits = true
	comb := runWarm(t, cfg, tr)
	if comb.Plan.FreqGain <= pure.Plan.FreqGain {
		t.Errorf("combined freq gain %.3f not above pure %.3f",
			comb.Plan.FreqGain, pure.Plan.FreqGain)
	}
	if comb.CorruptConsumed != 0 {
		t.Errorf("combined mode corrupt: %d", comb.CorruptConsumed)
	}
	// Fault maps must be installed (some capacity disabled).
	disabled := comb.IL0.DisabledLines + comb.DL0.DisabledLines + comb.UL1.DisabledLines
	if disabled == 0 {
		t.Error("no fault maps in combined mode")
	}
}

// TestIssueRetryBoundedByFutureDL0Hold pins the skip bound for the
// overlapping-hold corner: a mem op blocked on a busy DTLB must not be
// retried past the onset of a DL0 hold window that was registered in the
// past for a future cycle — tryIssue checks the DL0 first, so the stepped
// engine re-attributes the stall (StallOtherIRAW -> StallDL0IRAW) the
// cycle that window opens, and a skip crossing it would diverge.
func TestIssueRetryBoundedByFutureDL0Hold(t *testing.T) {
	c := MustNew(DefaultConfig(500, circuit.ModeIRAW))
	const cycle = int64(100)
	c.mem.DTLB.HoldPorts(cycle, cycle+5)
	slot := c.slots.alloc(&trace.Inst{Op: isa.OpLoad, Src1: isa.RegNone, Src2: isa.RegNone, Dst: isa.RegNone})

	if got := c.issueRetryAt(cycle, slot); got != cycle+6 {
		t.Fatalf("clear DL0: retry = %d, want DTLB free time %d", got, cycle+6)
	}
	c.mem.DL0.HoldPorts(cycle+2, cycle+4) // future onset inside the DTLB run
	if got := c.issueRetryAt(cycle, slot); got != cycle+2 {
		t.Fatalf("future DL0 hold: retry = %d, want its onset %d", got, cycle+2)
	}
	// DL0 busy right now: the retry walks only the contiguous busy run.
	if got := c.issueRetryAt(cycle+2, slot); got != cycle+5 {
		t.Fatalf("DL0 busy: retry = %d, want first DL0-free cycle %d", got, cycle+5)
	}
}
