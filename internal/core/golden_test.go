package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"lowvcc/internal/circuit"
	"lowvcc/internal/trace"
	"lowvcc/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden engine results")

// goldenCases spans the paths the engine rewrite must keep bit-identical:
// every mode, multiple Vcc points (active and inactive IRAW), mispredict
// redirects (branchy profiles), fence drains with NOOP injection,
// long-latency load misses (membound), forced-N bubbles, combined
// faulty-bits, the unsafe validation mode, and the Extra-Bypass write-port
// FIFO (structural stalls).
func goldenCases() []struct {
	Label string
	Cfg   Config
	Trace *trace.Trace
} {
	fenceHeavy := workload.Kernel()
	fenceHeavy.Fence = 0.05

	mk := func(label string, cfg Config, p workload.Profile, insts int, seed uint64) struct {
		Label string
		Cfg   Config
		Trace *trace.Trace
	} {
		return struct {
			Label string
			Cfg   Config
			Trace *trace.Trace
		}{label, cfg, workload.Generate(p, insts, seed)}
	}

	forcedN := DefaultConfig(450, circuit.ModeIRAW)
	forcedN.ForcedN = 3
	combined := DefaultConfig(450, circuit.ModeIRAW)
	combined.CombineFaultyBits = true
	unsafeCfg := DefaultConfig(500, circuit.ModeIRAW)
	unsafeCfg.DisableAvoidance = true

	return []struct {
		Label string
		Cfg   Config
		Trace *trace.Trace
	}{
		mk("specint-575-iraw", DefaultConfig(575, circuit.ModeIRAW), workload.SpecInt(), 8000, 1),
		mk("specint-450-iraw", DefaultConfig(450, circuit.ModeIRAW), workload.SpecInt(), 8000, 1),
		mk("specint-700-iraw-inactive", DefaultConfig(700, circuit.ModeIRAW), workload.SpecInt(), 8000, 1),
		mk("specint-500-baseline", DefaultConfig(500, circuit.ModeBaseline), workload.SpecInt(), 8000, 1),
		mk("specint-500-extrabypass", DefaultConfig(500, circuit.ModeExtraBypass), workload.SpecInt(), 8000, 1),
		mk("specint-500-faultybits", DefaultConfig(500, circuit.ModeFaultyBits), workload.SpecInt(), 8000, 1),
		mk("kernel-fences-500-iraw", DefaultConfig(500, circuit.ModeIRAW), fenceHeavy, 8000, 4),
		mk("membound-450-iraw", DefaultConfig(450, circuit.ModeIRAW), workload.MemBound(), 6000, 2),
		mk("office-575-iraw", DefaultConfig(575, circuit.ModeIRAW), workload.Office(), 8000, 7),
		mk("specint-450-forcedN3", forcedN, workload.SpecInt(), 8000, 1),
		mk("specint-450-combined-faulty", combined, workload.SpecInt(), 8000, 1),
		mk("specint-500-unsafe", unsafeCfg, workload.SpecInt(), 8000, 1),
	}
}

// goldenRecord stores both a cold and a warm run: the warm rerun exercises
// the free-running absolute timeline (c.now, pending wheel events carried
// across Run calls).
type goldenRecord struct {
	Label        string
	Cold, Warm   json.RawMessage
	Cycles       uint64 // cold-run cycles, for readable diffs
	Instructions uint64
}

func goldenPath() string { return filepath.Join("testdata", "golden_engine.json") }

// TestEngineMatchesGolden asserts that the event-driven engine reproduces,
// bit for bit, the Results recorded from the seed cycle-stepped engine for
// representative traces across all four modes. Regenerate with -update ONLY
// when an intentional model change (not an engine change) alters results.
func TestEngineMatchesGolden(t *testing.T) {
	cases := goldenCases()

	records := make([]goldenRecord, 0, len(cases))
	for _, gc := range cases {
		c, err := New(gc.Cfg)
		if err != nil {
			t.Fatalf("%s: %v", gc.Label, err)
		}
		cold, err := c.Run(gc.Trace)
		if err != nil {
			t.Fatalf("%s: cold run: %v", gc.Label, err)
		}
		warm, err := c.Run(gc.Trace)
		if err != nil {
			t.Fatalf("%s: warm run: %v", gc.Label, err)
		}
		cb, err := json.Marshal(cold)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := json.Marshal(warm)
		if err != nil {
			t.Fatal(err)
		}
		records = append(records, goldenRecord{
			Label: gc.Label, Cold: cb, Warm: wb,
			Cycles: cold.Run.Cycles, Instructions: cold.Run.Instructions,
		})
	}

	if *updateGolden {
		out, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cases)", goldenPath(), len(records))
		return
	}

	data, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	if len(want) != len(records) {
		t.Fatalf("golden has %d cases, test produced %d (regenerate with -update)", len(want), len(records))
	}
	for i, w := range want {
		got := records[i]
		if w.Label != got.Label {
			t.Fatalf("case %d: label %q != golden %q", i, got.Label, w.Label)
		}
		for _, pass := range []struct {
			name      string
			got, want json.RawMessage
		}{{"cold", got.Cold, w.Cold}, {"warm", got.Warm, w.Warm}} {
			if !jsonEqual(pass.got, pass.want) {
				t.Errorf("%s (%s run): engine diverges from recorded seed engine\n got: %s\nwant: %s",
					w.Label, pass.name, diffHint(pass.got, pass.want), "(see testdata/golden_engine.json)")
			}
		}
	}
}

// jsonEqual compares two JSON documents structurally (whitespace- and
// key-order-insensitive, exact values).
func jsonEqual(a, b json.RawMessage) bool {
	var ca, cb bytes.Buffer
	if err := json.Compact(&ca, a); err != nil {
		return false
	}
	if err := json.Compact(&cb, b); err != nil {
		return false
	}
	return bytes.Equal(ca.Bytes(), cb.Bytes())
}

// diffHint unmarshals both documents and reports the first top-level field
// that differs, keeping failure output readable.
func diffHint(got, want json.RawMessage) string {
	var g, w map[string]json.RawMessage
	if json.Unmarshal(got, &g) != nil || json.Unmarshal(want, &w) != nil {
		return string(got)
	}
	for k, gv := range g {
		var cg, cw bytes.Buffer
		json.Compact(&cg, gv)
		json.Compact(&cw, w[k])
		if !bytes.Equal(cg.Bytes(), cw.Bytes()) {
			return "field " + k + ": got " + cg.String() + ", want " + cw.String()
		}
	}
	return "documents differ in missing fields"
}
