package core

import (
	"lowvcc/internal/cache"
	"lowvcc/internal/circuit"
	"lowvcc/internal/energy"
	"lowvcc/internal/predictor"
	"lowvcc/internal/stats"
)

// Result reports one trace's simulation.
type Result struct {
	TraceName string
	Plan      circuit.ClockPlan

	Run stats.Run

	// Time is Cycles x CycleTime in the global time unit (one clock phase
	// at 700 mV = 1.0).
	Time float64

	// Violation accounting (ground truth from the sram substrate).
	RFViolations         uint64
	CacheViolations      uint64
	CorruptConsumed      uint64
	IntegrityErrors      uint64
	RepairedDestructions uint64

	// Predictor statistics (potential corruptions, RSB conflicts).
	BP predictor.Stats

	// Memory-system statistics.
	Mem        cache.HierarchyStats
	IL0, DL0   cache.Stats
	UL1        cache.Stats
	ITLB, DTLB cache.Stats
	// STableForwards duplicates Mem.STableForwards for convenience.

	// Activity is the census for the energy model.
	Activity energy.Activity

	// NOOPsInjected counts drain NOOPs added to the IQ.
	NOOPsInjected uint64
}

// IPC returns retired program instructions per cycle.
func (r *Result) IPC() float64 { return r.Run.IPC() }

// MergeResults aggregates per-trace results into suite totals (cycles and
// instructions add; Time adds; rates derive from the sums).
func MergeResults(results []*Result) *Result {
	if len(results) == 0 {
		return &Result{}
	}
	agg := &Result{TraceName: "suite", Plan: results[0].Plan}
	for _, r := range results {
		agg.Run.Add(&r.Run)
		agg.Time += r.Time
		agg.RFViolations += r.RFViolations
		agg.CacheViolations += r.CacheViolations
		agg.CorruptConsumed += r.CorruptConsumed
		agg.IntegrityErrors += r.IntegrityErrors
		agg.RepairedDestructions += r.RepairedDestructions
		agg.NOOPsInjected += r.NOOPsInjected

		agg.BP.Predictions += r.BP.Predictions
		agg.BP.Mispredicts += r.BP.Mispredicts
		agg.BP.PotentialCorruptions += r.BP.PotentialCorruptions
		agg.BP.ReturnPredictions += r.BP.ReturnPredictions
		agg.BP.ReturnMispredicts += r.BP.ReturnMispredicts
		agg.BP.RSBConflicts += r.BP.RSBConflicts
		agg.BP.RSBStallCycles += r.BP.RSBStallCycles

		agg.Mem.Loads += r.Mem.Loads
		agg.Mem.Stores += r.Mem.Stores
		agg.Mem.Fetches += r.Mem.Fetches
		agg.Mem.TLBWalks += r.Mem.TLBWalks
		agg.Mem.STableForwards += r.Mem.STableForwards
		agg.Mem.RepairedDestructions += r.Mem.RepairedDestructions
		agg.Mem.CorruptConsumed += r.Mem.CorruptConsumed
		agg.Mem.IntegrityErrors += r.Mem.IntegrityErrors
		agg.Mem.DL0ReplayStallCycles += r.Mem.DL0ReplayStallCycles

		addCache(&agg.IL0, &r.IL0)
		addCache(&agg.DL0, &r.DL0)
		addCache(&agg.UL1, &r.UL1)
		addCache(&agg.ITLB, &r.ITLB)
		addCache(&agg.DTLB, &r.DTLB)

		addActivity(&agg.Activity, &r.Activity)
	}
	return agg
}

// MergeWindowResults stitches the per-window Results of one sharded trace
// (in window order) into a single trace-level Result carrying the parent
// trace's name. It differs from MergeResults in two ways that matter for
// window stitching:
//
//   - Time is recomputed from the stitched cycle total and the shared clock
//     plan, so the stitch is independent of per-window float summation and
//     bit-identical to what a single run over the same cycles would report;
//   - DisabledLines is a per-core constant (the Faulty-Bits fault map), not
//     a flow counter: every window reports the same map, so the stitched
//     result keeps one copy instead of summing.
//
// With a single window covering the whole trace the output equals the
// window's Result exactly (golden-tested against a whole-trace run).
func MergeWindowResults(traceName string, windows []*Result) *Result {
	if len(windows) == 1 {
		res := *windows[0]
		res.TraceName = traceName
		return &res
	}
	agg := MergeResults(windows)
	agg.TraceName = traceName
	if len(windows) > 0 {
		agg.Time = float64(agg.Run.Cycles) * agg.Plan.CycleTime
		agg.IL0.DisabledLines = windows[0].IL0.DisabledLines
		agg.DL0.DisabledLines = windows[0].DL0.DisabledLines
		agg.UL1.DisabledLines = windows[0].UL1.DisabledLines
		agg.ITLB.DisabledLines = windows[0].ITLB.DisabledLines
		agg.DTLB.DisabledLines = windows[0].DTLB.DisabledLines
	}
	return agg
}

func addCache(dst, src *cache.Stats) {
	dst.Accesses += src.Accesses
	dst.Hits += src.Hits
	dst.Misses += src.Misses
	dst.Fills += src.Fills
	dst.Evictions += src.Evictions
	dst.DirtyEvicts += src.DirtyEvicts
	dst.FillStallCycles += src.FillStallCycles
	dst.DisabledLines += src.DisabledLines
}

func addActivity(dst, src *energy.Activity) {
	dst.Instructions += src.Instructions
	dst.IL0Accesses += src.IL0Accesses
	dst.DL0Accesses += src.DL0Accesses
	dst.UL1Accesses += src.UL1Accesses
	dst.TLBAccesses += src.TLBAccesses
	dst.RFReads += src.RFReads
	dst.RFWrites += src.RFWrites
	dst.IQOps += src.IQOps
	dst.BPAccesses += src.BPAccesses
	dst.ExecOps += src.ExecOps
	dst.MemAccesses += src.MemAccesses
}
