package core

import (
	"math"
	"testing"

	"lowvcc/internal/rng"
)

// TestWheelDispatchAndNextAfter drives the wheel with random events —
// including far-future ones that share buckets across laps — and checks,
// against a flat reference slice, that bucket filtering yields exactly the
// due events at every cycle and that nextAfter is exact whenever queried.
func TestWheelDispatchAndNextAfter(t *testing.T) {
	src := rng.New(42)
	var w wheel
	w.clear()

	pending := map[int64]int{} // due-cycle -> count, the reference model
	refNext := func(cycle int64) int64 {
		best := int64(math.MaxInt64)
		for at := range pending {
			if at > cycle && at < best {
				best = at
			}
		}
		return best
	}

	for cycle := int64(1); cycle <= 3000; cycle++ {
		// Dispatch due events the way the core does.
		got := 0
		b := w.bucket(cycle)
		for i := 0; i < len(*b); {
			if (*b)[i].at != cycle {
				i++
				continue
			}
			(*b)[i] = (*b)[len(*b)-1]
			*b = (*b)[:len(*b)-1]
			w.pending--
			got++
		}
		w.noteDrained(cycle)
		if got != pending[cycle] {
			t.Fatalf("cycle %d: dispatched %d events, want %d", cycle, got, pending[cycle])
		}
		delete(pending, cycle)

		// Random pushes: near-future, same-bucket-next-lap, and far-future.
		for k := src.Intn(3); k > 0; k-- {
			var at int64
			switch src.Intn(3) {
			case 0:
				at = cycle + 1 + int64(src.Intn(8))
			case 1:
				at = cycle + wheelSize + int64(src.Intn(4)) // next lap, same bucket zone
			default:
				at = cycle + 1 + int64(src.Intn(10*wheelSize)) // several laps out
			}
			w.push(wake{at: at})
			pending[at]++
		}

		if want, got := refNext(cycle), w.nextAfter(cycle); got != want {
			t.Fatalf("cycle %d: nextAfter = %d, want %d", cycle, got, want)
		}
	}
}

// TestWheelClearKeepsNothing: clear must drop every pending event and reset
// the next-due hint (the Reset reuse path).
func TestWheelClearKeepsNothing(t *testing.T) {
	var w wheel
	w.clear()
	w.push(wake{at: 5})
	w.push(wake{at: 500})
	w.clear()
	if w.pending != 0 || w.occ != 0 {
		t.Fatalf("clear left pending=%d occ=%b", w.pending, w.occ)
	}
	if got := w.nextAfter(0); got != math.MaxInt64 {
		t.Fatalf("nextAfter on empty wheel = %d", got)
	}
}
