package core

import (
	"fmt"

	"lowvcc/internal/cache"
	"lowvcc/internal/predictor"
)

// WarmState is the checkpointable snapshot of a core that has only been
// warmed functionally: the memory hierarchy's and branch predictor's warm
// states, which together are everything a WarmReplay from reset can evolve.
// The pipeline-side blocks (scoreboard, IQ, register file, timing wheel)
// stay at their reset values during functional warm-up, so they are asserted
// cold rather than serialized, and the clock never moved (c.now == 0).
//
// Because warm state is a pure function of the instruction sequence under
// the access-order contract — independent of Vcc, clock plan and IRAW mode —
// one WarmState is shared read-only across every operating point of a sweep:
// restores copy out of it and never mutate it.
type WarmState struct {
	Mem *cache.HierarchyWarmState
	BP  *predictor.WarmState
}

// CaptureWarm snapshots the core's functional warm state. The core must be
// at cycle zero (freshly reset or only ever warmed functionally); any timed
// state — elapsed cycles, port holds, in-flight fills, stabilization stamps
// — makes the capture fail rather than silently serialize timing.
func (c *Core) CaptureWarm() (*WarmState, error) {
	if c.now != 0 {
		return nil, fmt.Errorf("core: clock at cycle %d — warm capture requires a never-run core", c.now)
	}
	mem, err := c.mem.CaptureWarm()
	if err != nil {
		return nil, err
	}
	bp, err := c.bp.CaptureWarm()
	if err != nil {
		return nil, err
	}
	return &WarmState{Mem: mem, BP: bp}, nil
}

// RestoreWarm loads a warm snapshot into the core, which must be freshly
// reset (cycle zero, fault maps installed, nothing run). After the restore
// the core is observationally equivalent to one that replayed the snapshot's
// producing instruction sequence itself: a following WarmReplayRange or
// timed run behaves identically. The snapshot is only read.
func (c *Core) RestoreWarm(s *WarmState) error {
	if c.now != 0 {
		return fmt.Errorf("core: clock at cycle %d — warm restore requires a reset core", c.now)
	}
	if s == nil || s.Mem == nil || s.BP == nil {
		return fmt.Errorf("core: nil warm snapshot")
	}
	if err := c.mem.RestoreWarm(s.Mem); err != nil {
		return err
	}
	return c.bp.RestoreWarm(s.BP)
}
