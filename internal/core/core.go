package core

import (
	"fmt"
	"math"

	"lowvcc/internal/cache"
	"lowvcc/internal/circuit"
	"lowvcc/internal/iq"
	"lowvcc/internal/isa"
	"lowvcc/internal/predictor"
	"lowvcc/internal/regfile"
	"lowvcc/internal/rng"
	"lowvcc/internal/scoreboard"
	"lowvcc/internal/stats"
	"lowvcc/internal/trace"
)

// Core is one simulated operating point of the modelled processor.
// Not goroutine-safe; create one Core per concurrent simulation.
type Core struct {
	cfg   Config
	model *circuit.Model
	plan  circuit.ClockPlan

	sb  *scoreboard.Scoreboard
	q   *iq.Queue
	rf  *regfile.File
	bp  *predictor.Predictor
	mem *cache.Hierarchy

	// Per-register shadow timing, mirroring what the bypass network knows:
	// when each register's in-flight value lands in the RF and until when
	// the bypass network can supply it.
	regWriteAt    [isa.NumRegs]int64
	regBypassVal  [isa.NumRegs]uint64
	regBypassTill [isa.NumRegs]int64

	// Extra-Bypass write-port FIFO state.
	portBusyUntil int64

	// bypassLvl and writePipe cache cfg.Scoreboard.BypassLevels and
	// plan.WritePipelineCycles for the per-issue hot path (refreshed by
	// applyPlan).
	bypassLvl int64
	writePipe int64

	// now is the core's clock. It never resets: every absolute stamp in
	// the hierarchy (fill completions, stabilization windows, buffer
	// occupancy) lives on this timeline, so back-to-back runs on one core
	// (warm-up passes, DVFS phases) stay consistent.
	now int64

	// wheel carries deferred events (long-latency completions, pending RF
	// writes) across cycles and across runs, bucketed by due-cycle.
	wheel wheel

	seq uint64 // value generator: each producer writes its sequence number

	// noSkip forces strict cycle stepping (idle-cycle skipping disabled).
	// Test hook: the equivalence fuzz drives both engines over the same
	// inputs and asserts bit-identical Results. It also disables the
	// dual-issue fast path, so the stepped engine is the seed reference.
	noSkip bool

	// noPair disables the batched ready-set fast path only (the multi-slot
	// scoreboard probe); set by Config.DisableFastPaths and the
	// equivalence fuzz. Every slot then takes the sequential register
	// walk, exactly as the seed engine did.
	noPair bool

	// stop, when non-nil, is polled periodically from the run loop; a
	// non-nil return aborts the run with that error. The experiment runner
	// wires context cancellation and per-point timeouts through it so a
	// long simulation can be preempted between cycles without perturbing
	// results (the check has no side effects on core state).
	stop func() error

	// Per-run scratch, owned by the core so back-to-back Run calls (and
	// Reset-reused cores) allocate nothing on the hot path. slots is the
	// struct-of-arrays in-flight instruction state (see slotArrays); fetch
	// is a ring of slot ids; probeOps is the ready-set probe's scratch.
	slots    slotArrays
	fetch    fetchRing
	probeOps [MaxWidth]scoreboard.IssueOp
}

// New builds a core for cfg.
func New(cfg Config) (*Core, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Core{cfg: cfg}
	if err := c.reset(); err != nil {
		return nil, err
	}
	return c, nil
}

// Reset restores the core to the state New(cfg) would produce — cold
// caches, empty pipeline, cycle zero — while keeping the core's scratch
// buffers. Every internal block is rebuilt through the same constructors
// New uses, so a Reset core is bit-identical to a fresh one; the parallel
// experiment runner relies on that to reuse one Core per worker across the
// traces of an operating point.
func (c *Core) Reset() error { return c.reset() }

func (c *Core) reset() error {
	params := circuit.DefaultParams()
	if c.cfg.Circuit != nil {
		params = *c.cfg.Circuit
	}
	c.model = circuit.NewModel(params)

	c.sb = scoreboard.New(c.cfg.Scoreboard)
	c.q = iq.New(c.cfg.IQ)
	c.rf = regfile.New()
	c.bp = predictor.New(c.cfg.Predictor)
	mem, err := cache.NewHierarchy(c.cfg.Hierarchy)
	if err != nil {
		return err
	}
	c.mem = mem
	if c.cfg.DisableFastPaths {
		c.mem.SetFastPaths(false)
		c.noPair = true
	}

	c.regWriteAt = [isa.NumRegs]int64{}
	c.regBypassVal = [isa.NumRegs]uint64{}
	c.regBypassTill = [isa.NumRegs]int64{}
	c.portBusyUntil = 0
	c.now = 0
	c.wheel.clear()
	c.seq = 0
	c.fetch.init(c.cfg.Width)
	c.slots.init(len(c.fetch.buf) + c.cfg.IQ.Size)

	if err := c.applyPlan(c.cfg.Vcc); err != nil {
		return err
	}
	if c.cfg.Mode == circuit.ModeFaultyBits ||
		(c.cfg.Mode == circuit.ModeIRAW && c.cfg.CombineFaultyBits) {
		c.installFaultMaps()
	}
	return nil
}

// MustNew is New for static configurations.
func MustNew(cfg Config) *Core {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Plan returns the active clock plan.
func (c *Core) Plan() circuit.ClockPlan { return c.plan }

// applyPlan derives the clock plan for v and reconfigures every block —
// exactly the Vcc controller's job in Sections 4.1.3, 4.2, 4.3 and 4.4.
func (c *Core) applyPlan(v circuit.Millivolts) error {
	switch c.cfg.Mode {
	case circuit.ModeIRAW:
		switch {
		case c.cfg.CombineFaultyBits:
			c.plan = c.model.PlanIRAWFaultyBits(v, c.cfg.FaultySigma)
		case c.cfg.ForcedN > 0:
			c.plan = c.model.PlanIRAWForcedN(v, c.cfg.ForcedN)
		default:
			c.plan = c.model.PlanIRAW(v)
		}
	case circuit.ModeFaultyBits:
		c.plan = c.model.PlanFaultyBits(v, c.cfg.FaultySigma)
	default:
		c.plan = c.model.Plan(v, c.cfg.Mode)
	}

	interrupted := c.plan.IRAWActive
	n := c.plan.StabilizeCycles
	avoid := interrupted && !c.cfg.DisableAvoidance

	effN := 0
	if avoid {
		effN = n
	}
	c.sb.SetStabilizeCycles(effN)
	c.q.SetStabilizeCycles(effN)
	c.rf.SetIRAW(interrupted, n)
	if interrupted {
		c.bp.SetStabilizeCycles(n)
	} else {
		c.bp.SetStabilizeCycles(0)
	}
	memCycles := c.plan.CyclesForTime(c.cfg.MemLatencyTime)
	if memCycles < 1 {
		memCycles = 1
	}
	c.mem.SetMode(cache.TimingMode{
		Interrupted: interrupted,
		N:           n,
		Avoid:       avoid,
		MemCycles:   memCycles,
	})
	c.rf.SetWritePipeline(c.plan.WritePipelineCycles)
	c.bypassLvl = int64(c.cfg.Scoreboard.BypassLevels)
	c.writePipe = int64(c.plan.WritePipelineCycles)
	return nil
}

// Reconfigure moves the core to a new Vcc level at run boundaries (the
// DVFS transition: only shift-register init values, the IQ threshold, the
// STable size and the stall counters change).
func (c *Core) Reconfigure(v circuit.Millivolts) error {
	if !v.Valid() {
		return fmt.Errorf("core: invalid Vcc %v", v)
	}
	c.cfg.Vcc = v
	return c.applyPlan(v)
}

// installFaultMaps disables cache lines that fail timing at the reduced
// margin (Faulty Bits). The RF and IQ cannot tolerate faulty entries
// (Section 2.2, Table 1) — the design is idealized there, which the
// comparison harness reports.
func (c *Core) installFaultMaps() {
	src := rng.New(c.cfg.Seed ^ 0xFAB17B175)
	sigma := c.cfg.FaultySigma
	for _, ca := range []*cache.Cache{c.mem.IL0, c.mem.DL0, c.mem.UL1, c.mem.ITLB, c.mem.DTLB} {
		bits := ca.Config().LineBytes * 8
		if ca.Config().LineBytes > 512 {
			bits = 64 // TLBs: entry payload, not the page itself
		}
		p := circuit.LineFailProb(sigma, bits)
		ca.DisableFaultyLines(src.Fork(), p)
	}
}

// wakeKind distinguishes deferred events.
type wakeKind uint8

const (
	wakeLong    wakeKind = iota // long-latency completion heads-up
	wakeRFWrite                 // physical register-file write
)

// wake is one deferred event; fields are ordered to pack into 32 bytes
// (events are copied on every wheel push and dispatch).
type wake struct {
	at    int64
	avail int64 // cycle the value becomes available (wakeLong)
	val   uint64
	kind  wakeKind
	reg   isa.Reg
}

// fbEntry is one fetched-but-not-allocated instruction, identified by its
// in-flight slot id.
type fbEntry struct {
	slot    int
	readyAt int64
}

// fetchRing is the fetch buffer between fetch and allocate: 8 entries per
// width step, rounded up to a power of two for the ring arithmetic — 16 at
// the modelled width 2, exactly the seed's fixed depth. A ring (rather
// than a reallocated slice) keeps the fetch→allocate path allocation-free.
type fetchRing struct {
	buf  []fbEntry
	mask int
	head int
	n    int
}

// init sizes the ring for the configured width and empties it. The buffer
// is reallocated only when the capacity changes, so Reset-reused cores
// keep their scratch.
func (r *fetchRing) init(width int) {
	c := nextPow2(8 * width)
	if len(r.buf) != c {
		r.buf = make([]fbEntry, c)
		r.mask = c - 1
	}
	r.head, r.n = 0, 0
}

func (r *fetchRing) clear()          { r.head, r.n = 0, 0 }
func (r *fetchRing) len() int        { return r.n }
func (r *fetchRing) full() bool      { return r.n == len(r.buf) }
func (r *fetchRing) front() *fbEntry { return &r.buf[r.head] }

func (r *fetchRing) push(e fbEntry) {
	r.buf[(r.head+r.n)&r.mask] = e
	r.n++
}

func (r *fetchRing) pop() {
	r.head = (r.head + 1) & r.mask
	r.n--
}

// slotArrays is the struct-of-arrays layout for the in-flight instruction
// state — every instruction fetched but not yet issued. Each field the
// per-cycle issue stage reads lives in its own parallel slice indexed by
// slot id, so the batched ready-set probe and the register walk scan dense
// arrays instead of chasing *trace.Inst pointers, and the per-instruction
// census flags (delayed, mispred) are per-slot instead of per-trace-index
// (the seed engine allocated and cleared two trace-length bool slices per
// run).
//
// Invariants:
//
//   - slot ids are ring-allocated (free-running counter & mask) at fetch
//     and freed implicitly, in allocation order, when the instruction
//     issues — in-order issue guarantees FIFO slot lifetime;
//   - capacity covers the fetch buffer plus the IQ (the only places a
//     live slot id is held: fbEntry.slot and iq.Entry.Payload), rounded
//     up to a power of two, so a live slot is never overwritten;
//   - NOOP IQ entries consume no slots;
//   - a slot is valid from its alloc until its issue pops it from the IQ,
//     which spans the mispred hand-off from predictAtFetch to tryIssue.
type slotArrays struct {
	op []isa.Op
	// ops holds the operand quadruple (sources, destination, installed
	// producer) — the exact record the batched ready-set probe consumes,
	// packed 4 bytes per slot so the probe's gather and tryIssue's walk
	// load one word instead of four parallel bytes.
	ops     []scoreboard.IssueOp
	addr    []uint64
	pc      []uint64
	taken   []bool
	mispred []bool // fetch-time misprediction verdict, consumed at issue
	delayed []bool // already counted in DelayedByRFIRAW (census once per inst)
	mask    int
	next    int // free-running allocation counter (slot id = next & mask)
}

// init sizes the arrays for the configured fetch-buffer + IQ capacity.
// Like fetchRing.init, it reallocates only on a capacity change.
func (s *slotArrays) init(capacity int) {
	c := nextPow2(capacity)
	if len(s.op) != c {
		s.op = make([]isa.Op, c)
		s.ops = make([]scoreboard.IssueOp, c)
		s.addr = make([]uint64, c)
		s.pc = make([]uint64, c)
		s.taken = make([]bool, c)
		s.mispred = make([]bool, c)
		s.delayed = make([]bool, c)
		s.mask = c - 1
	}
	s.next = 0
}

// alloc fills the next slot from a trace instruction and returns its id.
func (s *slotArrays) alloc(in *trace.Inst) int {
	i := s.next & s.mask
	s.next++
	s.op[i] = in.Op
	s.ops[i] = scoreboard.IssueOp{
		S1: in.Src1, S2: in.Src2, D: in.Dst, Prod: producedDst(in),
	}
	s.addr[i] = in.Addr
	s.pc[i] = in.PC
	s.taken[i] = in.Taken
	s.mispred[i] = false
	s.delayed[i] = false
	return i
}

// nextPow2 returns the smallest power of two >= n (and >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// dispatchWakes handles every deferred event due this cycle: long-latency
// heads-ups re-arm the scoreboard and schedule the pipelined RF write;
// RF-write events land the value in the physical register file. Same-cycle
// events commute (they touch disjoint per-register and per-block state), so
// bucket order is free. A handler may push into the wheel — including this
// very bucket — which is safe: pushed events are always strictly in the
// future and the due-cycle filter skips them.
// The caller pre-checks the wheel's occupancy bit for this cycle, so idle
// cycles never pay the call; the check lives only at the call site.
func (c *Core) dispatchWakes(cycle int64) (dispatched bool) {
	bypass, writePipe := c.bypassLvl, c.writePipe
	b := c.wheel.bucket(cycle)
	for i := 0; i < len(*b); {
		w := (*b)[i]
		if w.at != cycle {
			i++ // a future lap's event sharing this bucket
			continue
		}
		dispatched = true
		(*b)[i] = (*b)[len(*b)-1]
		*b = (*b)[:len(*b)-1]
		c.wheel.pending--
		switch w.kind {
		case wakeLong:
			remaining := int(w.avail - cycle)
			if remaining < 1 {
				remaining = 1
			}
			c.sb.CompleteLongLatency(w.reg, remaining)
			c.regWriteAt[w.reg] = w.avail + bypass
			// The bypass network serves consumers issuing strictly
			// before the RF write lands (through w-1 for single-cycle
			// writes; Extra-Bypass extends it across the pipelined
			// write).
			c.regBypassTill[w.reg] = w.avail + bypass + writePipe - 2
			c.regBypassVal[w.reg] = w.val
			c.wheel.push(wake{at: w.avail + bypass, kind: wakeRFWrite, reg: w.reg, val: w.val})
		case wakeRFWrite:
			c.rf.Write(w.at, w.reg, w.val)
		}
	}
	if dispatched {
		c.wheel.noteDrained(cycle)
	}
	return dispatched
}

// SetStopCheck installs f as the run loop's preemption hook: it is polled
// every few thousand loop iterations and a non-nil return aborts the
// in-flight Run/RunWindow with that error. Passing nil removes the hook.
// The hook must be side-effect free with respect to simulation state; it
// never affects the results of runs that complete.
func (c *Core) SetStopCheck(f func() error) { c.stop = f }

// statBases snapshots every counter a Result diffs against, taken when
// measurement starts (core construction time for a whole run, the window
// boundary for RunWindow).
type statBases struct {
	rf         regfile.Stats
	mem        cache.HierarchyStats
	il0, dl0   cache.Stats
	ul1        cache.Stats
	itlb, dtlb cache.Stats
	bp         predictor.Stats
	rfv, cv    uint64
	noop       uint64
	run        stats.Run
	cycle      int64
}

func (c *Core) snapBases(run *stats.Run, cycle int64) statBases {
	return statBases{
		rf:    c.rf.Stats(),
		mem:   c.mem.Stats(),
		il0:   c.mem.IL0.Stats(),
		dl0:   c.mem.DL0.Stats(),
		ul1:   c.mem.UL1.Stats(),
		itlb:  c.mem.ITLB.Stats(),
		dtlb:  c.mem.DTLB.Stats(),
		bp:    c.bp.Stats(),
		rfv:   c.rf.Array().Stats().ViolationReads,
		cv:    c.mem.ViolationReads(),
		noop:  c.q.NOOPsInjected,
		run:   *run,
		cycle: cycle,
	}
}

// Run simulates tr to completion and reports the result. The core's caches
// stay warm across calls (deliberately, for the DVFS scenario); use a fresh
// Core for independent measurements.
//
// The loop is event-driven: deferred completions dispatch from a timing
// wheel, the scoreboard is lazy (time advances in one jump), and cycles in
// which no pipeline stage can make progress are skipped in bulk to the next
// interesting time — see the package documentation for the skip conditions
// and why stall attribution is preserved. Results are bit-identical to
// strict cycle stepping (golden + fuzz equivalence tests hold the engines
// together).
func (c *Core) Run(tr *trace.Trace) (*Result, error) { return c.run(tr, 0) }

// RunWindow simulates tr's measured span — the instructions from
// measureFrom on — after executing the leading instructions as warm-up
// whose statistics are excluded from the Result. RunWindow(tr, 0, mode) is
// exactly Run(tr) for every mode: with nothing to warm, both modes hand the
// whole trace to the timed engine bit-identically.
//
// The warm mode selects the execution half of the sample-window
// methodology (trace.Shard produces the windows, the sim runner fans them
// out, core.MergeWindowResults stitches the pieces):
//
//   - WarmFunctional (the default) replays the prefix through WarmReplay —
//     timing-free, at a fraction of simulation cost — and starts the timed
//     engine cold-pipelined but warm-stated at the boundary. The boundary
//     is trivially deterministic: measurement covers every simulated cycle.
//   - WarmTimed executes the whole trace on the timed engine and snapshots
//     statistics at the top of the first cycle after the measureFrom-th
//     instruction issued — deterministic regardless of engine mode (stepped
//     or event-driven), as before.
func (c *Core) RunWindow(tr *trace.Trace, measureFrom int, warm WarmMode) (*Result, error) {
	if measureFrom < 0 || measureFrom >= len(tr.Insts) {
		return nil, fmt.Errorf("core: window start %d out of range for trace %q (%d insts)",
			measureFrom, tr.Name, len(tr.Insts))
	}
	if warm == WarmFunctional {
		if measureFrom > 0 {
			if err := c.WarmReplay(tr, measureFrom); err != nil {
				return nil, err
			}
		}
		return c.RunWarmed(tr, measureFrom)
	}
	return c.run(tr, measureFrom)
}

// RunWarmed simulates tr's measured span — the instructions from measureFrom
// on — on the timed engine, assuming the warm-up prefix has already been
// applied to the core (via WarmReplay/WarmReplayRange, a checkpoint
// RestoreWarm, or any mix of restore and residual replay). It is the second
// half of RunWindow's functional branch, exposed so the checkpoint store can
// substitute a snapshot restore for the live replay; measurement covers
// every simulated cycle, exactly as in RunWindow.
func (c *Core) RunWarmed(tr *trace.Trace, measureFrom int) (*Result, error) {
	if measureFrom < 0 || measureFrom >= len(tr.Insts) {
		return nil, fmt.Errorf("core: window start %d out of range for trace %q (%d insts)",
			measureFrom, tr.Name, len(tr.Insts))
	}
	span := &trace.Trace{Name: tr.Name, Insts: tr.Insts[measureFrom:]}
	return c.run(span, 0)
}

func (c *Core) run(tr *trace.Trace, measureFrom int) (*Result, error) {
	insts := tr.Insts
	total := len(insts)
	if total == 0 {
		return nil, fmt.Errorf("core: empty trace %q", tr.Name)
	}

	// Stat snapshots so a Result reports this trace's measured span only;
	// taken immediately for a whole run, at the window boundary otherwise.
	var bases statBases
	measuring := false

	var run stats.Run
	c.fetch.clear()

	fetchIdx := 0
	fetchStallUntil := int64(0)
	awaitRedirect := -1
	lastFetchLine := ^uint64(0)
	draining := false

	startCycle := c.now
	cycle := c.now
	issuedTotal := 0

	maxCycles := c.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 10000 + int64(total)*400
	}
	maxCycles += startCycle

	// Blocked-head memo: when the IQ head failed to issue, nothing can
	// change its verdict (or the stall attribution) before the earliest of
	// a wheel event and its issueRetryAt time — the head entry itself can
	// only change through a pop, which the blockage prevents, and allocs
	// only grow occupancy, which keeps MayIssue true. While the memo holds,
	// the issue stage collapses to reusing the recorded attribution; any
	// dispatched wake invalidates it (completions move scoreboard state).
	memoValid := false
	var memoUntil int64
	var memoStall stats.StallKind
	memoBlocked := -1

	// prevIssued gates the ready-set probe: a cycle that follows a
	// non-issuing cycle almost always has a blocked head, where the probe
	// would be pure overhead. The gate is a heuristic, never a semantic:
	// when it skips the probe the sequential walk derives the same outcome.
	prevIssued := true

	loopIters := 0
	for issuedTotal < total {
		// Measurement boundary: at the top of the first cycle after the
		// measureFrom-th instruction issued. issuedTotal only changes in the
		// issue stage and a cycle that issues never enters the bulk skip, so
		// this trigger point is identical for the stepped and event-driven
		// engines.
		if !measuring && issuedTotal >= measureFrom {
			bases = c.snapBases(&run, cycle)
			measuring = true
		}
		if c.stop != nil && loopIters&1023 == 0 {
			if err := c.stop(); err != nil {
				return nil, fmt.Errorf("core: %s: run aborted: %w", tr.Name, err)
			}
		}
		loopIters++
		cycle++
		if cycle > maxCycles {
			return nil, fmt.Errorf("core: deadlock watchdog at cycle %d (%d/%d issued, occupancy %d)",
				cycle, issuedTotal, total, c.q.Occupancy())
		}

		c.sb.AdvanceTo(cycle)
		if c.wheel.occ>>(uint(cycle)&wheelMask)&1 != 0 && c.dispatchWakes(cycle) {
			memoValid = false
		}

		// ===== Issue stage (reads IQ entries before this cycle's allocs).
		issued := 0
		memIssued := false
		stall := stats.StallNone
		blocked := -1          // head slot a failed tryIssue left behind
		var blockedRetry int64 // earliest cycle its verdict can change (valid with blocked >= 0)
		if memoValid && cycle < memoUntil {
			stall = memoStall
			blocked = memoBlocked
			blockedRetry = memoUntil
		} else {
			memoValid = false
			// verdicts carries the batched ready-set probe's per-slot
			// scoreboard verdicts across loop iterations: bit 0 is the
			// current head's verdict as if every older probed slot had
			// issued; verdictN counts the bits still valid. Verdicts are
			// consumed only while the older slots actually issue.
			var verdicts uint32
			verdictN := 0
			for issued < c.cfg.Width {
				if c.q.Occupancy() == 0 {
					if issued == 0 && issuedTotal < total {
						stall = stats.StallFetchEmpty
					}
					break
				}
				if !c.q.MayIssue() {
					if issued == 0 && c.q.GateBlocked() {
						stall = stats.StallIQGate
						c.q.NoteGateStall()
					}
					break
				}
				e := c.q.Oldest(0)
				if e.NOOP {
					c.q.PopOldest()
					run.IssuedNOOPs++
					issued++
					verdictN = 0 // the probed slots are no longer the head
					continue
				}
				slot := int(e.Payload)
				sbOK := int8(-1)
				if verdictN > 0 {
					sbOK = int8(verdicts & 1)
					verdicts >>= 1
					verdictN--
				} else if issued == 0 && prevIssued && !c.noPair && !c.noSkip && c.cfg.Width >= 2 {
					// Batched ready-set fast path: resolve up to Width IQ
					// slots in one scoreboard probe over the SoA operand
					// arrays. Younger slots' verdicts are evaluated as if
					// the older ones had issued, so each successor that
					// reaches the head reuses its bit instead of re-probing.
					// The occupancy gate is re-applied per pop by the loop
					// above; k only bounds how many slots are worth probing,
					// and a k below 2 skips the probe outright (a lone head
					// takes the sequential walk, exactly as the seed did).
					k := c.cfg.Width
					for k >= 2 && !c.q.MayIssueN(k) {
						k--
					}
					if k >= 2 {
						sl := &c.slots
						n := 0
						for i := 0; i < k; i++ {
							// MayIssueN(k) guarantees occupancy >= k and
							// DefaultConfigWidth keeps Width <= ICI, so
							// Oldest(i) is non-nil throughout.
							ei := c.q.Oldest(i)
							if ei == nil || ei.NOOP {
								break
							}
							c.probeOps[n] = sl.ops[int(ei.Payload)]
							n++
						}
						if n >= 2 {
							verdicts = c.sb.IssueReadySet(c.probeOps[:n])
							verdictN = n
							sbOK = int8(verdicts & 1)
							verdicts >>= 1
							verdictN--
						}
					}
				}
				reason, ok := c.tryIssue(cycle, slot, sbOK, &memIssued, &run, &fetchStallUntil, &awaitRedirect)
				if !ok {
					if issued == 0 {
						stall = reason
						blocked = slot
						blockedRetry = c.issueRetryAt(cycle, slot)
						if !c.noSkip { // keep the stepped reference engine truly stepped
							memoValid, memoUntil, memoStall, memoBlocked = true, blockedRetry, stall, blocked
						}
					}
					break
				}
				c.q.PopOldest()
				issued++
				issuedTotal++
				if c.slots.op[slot] == isa.OpFence {
					draining = false
				}
			}
		}
		prevIssued = issued > 0
		if issued > 2 {
			issued = 2
		}
		run.IssueHist[issued]++
		if issued == 0 && stall != stats.StallNone {
			run.IssueStalls[stall]++
		}

		// ===== Allocate stage (up to AI per cycle, after issue).
		allocs := 0
		if !draining {
			for allocs < c.cfg.IQ.AI && c.fetch.len() > 0 && c.q.Free() > 0 {
				fe := *c.fetch.front()
				if fe.readyAt > cycle {
					break
				}
				c.q.Alloc(cycle, uint64(fe.slot))
				c.fetch.pop()
				allocs++
				if c.slots.op[fe.slot] == isa.OpFence {
					draining = true
					break
				}
			}
		}
		// Drain NOOP injection: the occupancy gate blocks while allocation
		// has nothing to deliver (fence drain, trace end, mispredict
		// redirect, or an instruction-fetch drought). In hardware the
		// front-end would keep allocating (wrong-path) instructions; the
		// NOOPs stand in for them so the gate cannot starve stable
		// instructions indefinitely.
		injected := 0
		if allocs == 0 && c.q.GateBlocked() {
			injected = c.q.InjectNOOPs(cycle)
		}

		// ===== Fetch stage.
		fetched := 0
		if fetchIdx < total && awaitRedirect < 0 && cycle >= fetchStallUntil {
			for f := 0; f < c.cfg.Width && fetchIdx < total && !c.fetch.full(); f++ {
				in := &insts[fetchIdx]
				line := in.PC &^ 63
				if line != lastFetchLine {
					fr := c.mem.FetchInst(cycle, in.PC)
					lastFetchLine = line
					if fr.ReadyCycle > cycle {
						// Miss or port hold: the group arrives later, data
						// via the fill buffer (no array re-read).
						fetchStallUntil = fr.ReadyCycle
						break
					}
				}
				slot := c.slots.alloc(in)
				stop := c.predictAtFetch(cycle, slot, in, &fetchStallUntil, &awaitRedirect)
				c.fetch.push(fbEntry{slot, cycle + int64(c.cfg.FrontDepth)})
				fetchIdx++
				fetched++
				if stop {
					break
				}
			}
		}
		if fetched > 2 {
			fetched = 2
		}
		run.FetchHist[fetched]++

		// ===== Idle-cycle skip. When every stage came up empty the pipeline
		// state is frozen until an external time arrives: the next wheel
		// event, a fetch-stall expiry, a fetch-buffer entry maturing, or a
		// scoreboard/port-hold transition for the blocked head instruction.
		// Jump there, crediting the skipped cycles to the same histogram and
		// stall-attribution counters the stepped loop would have recorded
		// (the attribution is constant across the gap by construction: every
		// time at which it could change bounds the jump).
		//
		// Gate-blocked cycles are excluded: they charge the IQ gate-stall
		// counter per cycle and (when the queue is full) must spin to the
		// watchdog exactly as the stepped engine does. Structural write-port
		// stalls are excluded inside issueRetryAt (they charge per-cycle
		// port contention).
		if issued == 0 && allocs == 0 && injected == 0 && fetched == 0 &&
			stall != stats.StallIQGate && !c.noSkip {
			next := c.wheel.nextAfter(cycle)
			if blocked >= 0 && blockedRetry < next {
				next = blockedRetry
			}
			if !draining && c.fetch.len() > 0 && c.q.Free() > 0 {
				if fe := c.fetch.front(); fe.readyAt > cycle && fe.readyAt < next {
					next = fe.readyAt
				}
			}
			if fetchIdx < total && awaitRedirect < 0 && fetchStallUntil > cycle && fetchStallUntil < next {
				next = fetchStallUntil
			}
			if next > maxCycles+1 {
				next = maxCycles + 1 // a genuine deadlock still trips the watchdog
			}
			if k := next - cycle - 1; k > 0 {
				run.IssueHist[0] += uint64(k)
				if stall != stats.StallNone {
					run.IssueStalls[stall] += uint64(k)
				}
				run.FetchHist[0] += uint64(k)
				cycle += k
			}
		}
	}

	c.now = cycle
	// bases.run carries the warm span's counters (all zero for a whole run:
	// the snapshot happens before the first cycle); Cycles/Instructions are
	// only set here, after the diff.
	run.Sub(&bases.run)
	run.Cycles = uint64(cycle - bases.cycle)
	run.Instructions = uint64(total - measureFrom)
	return c.buildResult(tr.Name, &run, &bases), nil
}

// predictAtFetch consults BP/RSB for control ops, returning whether fetch
// must stop after this instruction (a predicted-wrong path we do not model:
// the trace holds only correct-path instructions, so a misprediction is a
// fetch bubble until the branch resolves at issue). slot is the
// instruction's freshly allocated in-flight slot; a misprediction is
// recorded there for tryIssue's commit half to consume.
func (c *Core) predictAtFetch(cycle int64, slot int, in *trace.Inst, fetchStallUntil *int64, awaitRedirect *int) bool {
	switch in.Op {
	case isa.OpBranch:
		pred := c.bp.PredictBranch(cycle, in.PC)
		if pred != in.Taken {
			c.slots.mispred[slot] = true
			*awaitRedirect = slot
			return true
		}
		// Correctly predicted taken branches end the fetch group (target
		// fetch continues next cycle).
		return in.Taken
	case isa.OpCall:
		c.bp.PushCall(cycle, in.PC+4)
		return true
	case isa.OpReturn:
		tgt, stallCycles, conflict := c.bp.PredictReturn(cycle)
		if stallCycles > 0 {
			*fetchStallUntil = cycle + int64(stallCycles)
		}
		if conflict || tgt != in.Addr {
			c.bp.NoteReturnMispredict()
			c.slots.mispred[slot] = true
			*awaitRedirect = slot
			return true
		}
		return true
	}
	return false
}

// tryIssue attempts to issue the instruction in the given in-flight slot at
// cycle; on failure it returns the stall attribution. sbOK carries the
// slot's verdict from the batched ready-set probe: 1 (ready — the register
// walk is skipped, the probe already performed it), 0 (not ready) or -1 (no
// probe ran); anything but 1 takes the register walk, which re-derives the
// verdict together with its stall attribution.
func (c *Core) tryIssue(cycle int64, slot int, sbOK int8, memIssued *bool, run *stats.Run,
	fetchStallUntil *int64, awaitRedirect *int) (stats.StallKind, bool) {

	s := &c.slots
	op := s.op[slot]
	o := s.ops[slot]
	src1, src2, dst := o.S1, o.S2, o.D
	if sbOK != 1 {
		// Source readiness (the scoreboard's shift registers). A ready-set
		// verdict of 0 lands here too: the walk re-derives the same failure
		// with its stall attribution and delayed census.
		for _, src := range [2]isa.Reg{src1, src2} {
			if src == isa.RegNone {
				continue
			}
			if c.sb.ReadReady(src) {
				continue
			}
			if c.sb.IRAWBlocked(src) {
				if !s.delayed[slot] {
					s.delayed[slot] = true
					run.DelayedByRFIRAW++
				}
				return stats.StallRFIRAW, false
			}
			if c.sb.LongPending(src) {
				return stats.StallMemory, false
			}
			return stats.StallRAW, false
		}
		// Destination (WAW through the baseline view).
		if dst != isa.RegNone && !c.sb.WriteReady(dst) {
			if c.sb.LongPending(dst) {
				return stats.StallMemory, false
			}
			return stats.StallRAW, false
		}
	}
	// Structural: one memory op per cycle; D-side port holds block issue.
	if isa.IsMem(op) {
		if *memIssued {
			return stats.StallStructural, false
		}
		if c.mem.DL0.Busy(cycle) {
			return stats.StallDL0IRAW, false
		}
		if c.mem.DTLB.Busy(cycle) {
			return stats.StallOtherIRAW, false
		}
	}
	// Extra-Bypass write-port FIFO.
	lat := int64(isa.Latency(op))
	if dst != isa.RegNone && c.writePipe > 1 {
		w := cycle + lat + c.bypassLvl
		if w <= c.portBusyUntil {
			c.rf.NotePortContention(c.portBusyUntil + 1 - w)
			return stats.StallStructural, false
		}
	}

	// ---- Commit to issuing: perform reads and effects.
	c.readSources(cycle, src1, src2)

	if isa.IsMem(op) {
		*memIssued = true
	}

	switch {
	case op == isa.OpLoad:
		res := c.mem.Load(cycle, s.addr[slot])
		avail := res.ReadyCycle + lat
		c.produce(cycle, dst, avail)
	case op == isa.OpStore:
		c.seq++
		c.mem.CommitStore(cycle, s.addr[slot], c.seq)
	case isa.LongLatency(op):
		avail := cycle + lat
		c.produceLong(cycle, dst, avail)
	case op == isa.OpBranch:
		c.bp.UpdateBranch(cycle, s.pc[slot], s.taken[slot], s.mispred[slot])
		if s.mispred[slot] {
			*fetchStallUntil = cycle + int64(c.cfg.MispredictPenalty)
			*awaitRedirect = -1
		}
	case op == isa.OpCall, op == isa.OpReturn:
		if s.mispred[slot] {
			*fetchStallUntil = cycle + int64(c.cfg.MispredictPenalty)
			*awaitRedirect = -1
		}
	case dst != isa.RegNone:
		c.produce(cycle, dst, cycle+lat)
	}
	return stats.StallNone, true
}

// producedDst returns the register an issuing instruction installs a
// producer for, or RegNone: exactly the ops for which tryIssue's commit
// half calls produce/produceLong. Stores, branches, calls and returns
// leave the scoreboard untouched even if a trace gave them a destination;
// any other op (including a fence) with a destination produces, matching
// tryIssue's fallthrough case.
func producedDst(in *trace.Inst) isa.Reg {
	switch in.Op {
	case isa.OpStore, isa.OpBranch, isa.OpCall, isa.OpReturn:
		return isa.RegNone
	}
	return in.Dst
}

// issueRetryAt mirrors tryIssue's check sequence — with no side effects —
// and returns the earliest cycle after `cycle` at which the blocked head
// instruction's issue decision, or its stall attribution, could change by
// the passage of time alone. Wheel events (long-latency completions, RF
// writes) are bounded separately by the caller.
//
// Two subtleties keep the skip exact:
//
//   - every register tryIssue consulted bounds the jump, including sources
//     that passed: read readiness is not monotone (the stabilization bubble
//     follows the bypass window), so a passing source can block later and
//     change the attribution;
//   - a failing Extra-Bypass write-port check charges the RF
//     port-contention counter with a per-cycle-varying amount, so those
//     cycles must step singly (return cycle+1).
func (c *Core) issueRetryAt(cycle int64, slot int) int64 {
	s := &c.slots
	next := int64(math.MaxInt64)
	add := func(t int64) {
		if t > cycle && t < next {
			next = t
		}
	}
	o := s.ops[slot]
	for _, src := range [2]isa.Reg{o.S1, o.S2} {
		if src == isa.RegNone {
			continue
		}
		add(c.sb.NextChange(src))
		if !c.sb.ReadReady(src) {
			return next // the blocking source: later checks are not reached
		}
	}
	if dst := o.D; dst != isa.RegNone && !c.sb.WriteReady(dst) {
		add(c.sb.NextChange(dst))
		return next
	}
	// A passing write view stays passing (no bubble, monotone) until a new
	// producer issues — no candidate needed for the destination.
	if isa.IsMem(s.op[slot]) {
		// memIssued is always false here (nothing issued this cycle).
		if c.mem.DL0.Busy(cycle) {
			// NextFree never jumps a free gap (it walks the contiguous busy
			// run), so every skipped cycle stays DL0-busy: attribution holds.
			add(c.mem.DL0.NextFree(cycle))
			return next
		}
		if c.mem.DTLB.Busy(cycle) {
			// The skip must not outrun a DL0 hold opening mid-gap: fill
			// windows are registered at miss time for future cycles, and
			// tryIssue checks DL0 before the DTLB, so the stepped engine
			// would re-attribute the stall the cycle DL0 turns busy.
			add(c.mem.DL0.NextHeld(cycle, c.mem.DTLB.NextFree(cycle)))
			return next
		}
		// New holds are only registered by accesses, and no access can
		// happen during an idle gap: both ports stay free.
	}
	// Only the Extra-Bypass write-port FIFO can have rejected the issue;
	// its contention accounting is per-cycle, so do not skip.
	return cycle + 1
}

// produce registers a producer whose value is available at `avail`,
// choosing the short (shift-register) or long-latency path.
func (c *Core) produce(cycle int64, dst isa.Reg, avail int64) {
	if dst == isa.RegNone {
		return
	}
	c.seq++
	val := c.seq
	lat := int(avail - cycle)
	bypass := c.bypassLvl
	writePipe := c.writePipe
	w := avail + bypass
	if lat <= c.sb.MaxShortLatency() {
		c.sb.IssueProducer(dst, lat)
		c.regWriteAt[dst] = w
		c.regBypassTill[dst] = w + writePipe - 2
		c.regBypassVal[dst] = val
		c.wheel.push(wake{at: w, kind: wakeRFWrite, reg: dst, val: val})
	} else {
		c.sb.BeginLongLatency(dst)
		c.regWriteAt[dst] = int64(1) << 60 // unknown until the heads-up
		headsUp := avail - int64(c.sb.MaxShortLatency())
		if headsUp <= cycle {
			headsUp = cycle + 1
		}
		c.wheel.push(wake{at: headsUp, kind: wakeLong, reg: dst, avail: avail, val: val})
	}
	if writePipe > 1 {
		c.portBusyUntil = w + writePipe - 1
	}
}

// produceLong is produce for always-long ops (dividers).
func (c *Core) produceLong(cycle int64, dst isa.Reg, avail int64) {
	c.produce(cycle, dst, avail)
}

// readSources models the register reads of an issuing instruction: through
// the bypass network while the value is in flight, from the RF array (next
// cycle, per the pipeline contract) afterwards.
func (c *Core) readSources(cycle int64, src1, src2 isa.Reg) {
	for _, src := range [2]isa.Reg{src1, src2} {
		if src == isa.RegNone {
			continue
		}
		if c.regWriteAt[src] > cycle || cycle <= c.regBypassTill[src] {
			_ = c.regBypassVal[src] // value carried by the bypass network
			continue
		}
		c.rf.Read(cycle+1, src)
	}
}

func (c *Core) buildResult(name string, run *stats.Run, bases *statBases) *Result {
	rfS := subRF(c.rf.Stats(), bases.rf)
	memS := subMem(c.mem.Stats(), bases.mem)
	il0 := subCache(c.mem.IL0.Stats(), bases.il0)
	dl0 := subCache(c.mem.DL0.Stats(), bases.dl0)
	ul1 := subCache(c.mem.UL1.Stats(), bases.ul1)
	itlb := subCache(c.mem.ITLB.Stats(), bases.itlb)
	dtlb := subCache(c.mem.DTLB.Stats(), bases.dtlb)
	bpS := subBP(c.bp.Stats(), bases.bp)

	res := &Result{
		TraceName: name,
		Plan:      c.plan,
		Run:       *run,
		Time:      float64(run.Cycles) * c.plan.CycleTime,

		RFViolations:         c.rf.Array().Stats().ViolationReads - bases.rfv,
		CacheViolations:      c.mem.ViolationReads() - bases.cv,
		CorruptConsumed:      memS.CorruptConsumed,
		IntegrityErrors:      rfS.IntegrityErrors + memS.IntegrityErrors,
		RepairedDestructions: memS.RepairedDestructions,

		BP:   bpS,
		Mem:  memS,
		IL0:  il0,
		DL0:  dl0,
		UL1:  ul1,
		ITLB: itlb,
		DTLB: dtlb,

		NOOPsInjected: c.q.NOOPsInjected - bases.noop,
	}
	res.CorruptConsumed += res.RFViolations // RF violations are consumed reads

	res.Activity.Instructions = run.Instructions
	res.Activity.IL0Accesses = il0.Accesses
	res.Activity.DL0Accesses = dl0.Accesses
	res.Activity.UL1Accesses = ul1.Accesses
	res.Activity.TLBAccesses = itlb.Accesses + dtlb.Accesses
	res.Activity.RFReads = rfS.Reads + rfS.BypassReads
	res.Activity.RFWrites = rfS.Writes
	res.Activity.IQOps = 2 * run.Instructions // alloc + issue per instruction
	res.Activity.BPAccesses = bpS.Predictions + bpS.ReturnPredictions
	res.Activity.ExecOps = run.Instructions
	res.Activity.MemAccesses = ul1.Misses
	return res
}

func subRF(a, b regfile.Stats) regfile.Stats {
	a.Reads -= b.Reads
	a.Writes -= b.Writes
	a.BypassReads -= b.BypassReads
	a.ViolationReads -= b.ViolationReads
	a.IntegrityErrors -= b.IntegrityErrors
	a.PortContentionCycles -= b.PortContentionCycles
	return a
}

func subMem(a, b cache.HierarchyStats) cache.HierarchyStats {
	a.Loads -= b.Loads
	a.Stores -= b.Stores
	a.Fetches -= b.Fetches
	a.TLBWalks -= b.TLBWalks
	a.STableForwards -= b.STableForwards
	a.RepairedDestructions -= b.RepairedDestructions
	a.CorruptConsumed -= b.CorruptConsumed
	a.IntegrityErrors -= b.IntegrityErrors
	a.DL0ReplayStallCycles -= b.DL0ReplayStallCycles
	return a
}

func subCache(a, b cache.Stats) cache.Stats {
	a.Accesses -= b.Accesses
	a.Hits -= b.Hits
	a.Misses -= b.Misses
	a.Fills -= b.Fills
	a.Evictions -= b.Evictions
	a.DirtyEvicts -= b.DirtyEvicts
	a.FillStallCycles -= b.FillStallCycles
	return a
}

func subBP(a, b predictor.Stats) predictor.Stats {
	a.Predictions -= b.Predictions
	a.Mispredicts -= b.Mispredicts
	a.PotentialCorruptions -= b.PotentialCorruptions
	a.ReturnPredictions -= b.ReturnPredictions
	a.ReturnMispredicts -= b.ReturnMispredicts
	a.RSBConflicts -= b.RSBConflicts
	a.RSBStallCycles -= b.RSBStallCycles
	return a
}

// IRAWExtraBits returns the latch bits the IRAW machinery adds: the
// scoreboard extension (bypass+bubble bits per register), the STable, the
// IQ occupancy comparator, and one 2-bit stall counter per cache-like
// block (Section 4.3).
func (c *Core) IRAWExtraBits() int {
	sbBits := c.cfg.Scoreboard.Regs * c.sb.ExtraBits
	stBits := c.mem.STab.Bits()
	iqBits := 12 // threshold adder + comparator state (Figure 9)
	counterBits := 7 * 2
	return sbBits + stBits + iqBits + counterBits
}

// TotalSRAMBits returns the core's SRAM capacity for area accounting.
func (c *Core) TotalSRAMBits() int {
	iqBits := c.cfg.IQ.Size * 64 // queue payload per entry
	return c.mem.TotalBits() + c.rf.TotalBits() + iqBits +
		c.bp.CounterBits() + c.bp.RSBBits()
}

// Mem exposes the memory hierarchy (examples and tests).
func (c *Core) Mem() *cache.Hierarchy { return c.mem }

// BP exposes the predictor (examples and tests).
func (c *Core) BP() *predictor.Predictor { return c.bp }

// RF exposes the register file (examples and tests).
func (c *Core) RF() *regfile.File { return c.rf }
