package core

import (
	"reflect"
	"testing"

	"lowvcc/internal/circuit"
	"lowvcc/internal/rng"
	"lowvcc/internal/workload"
)

// TestRandomizedConfigsNeverDeadlockOrCorrupt drives the pipeline through
// randomized (profile, voltage, mode, N) points: every run must terminate
// (no watchdog) and, whenever avoidance is active, consume zero corrupt
// values. This is the repo's crash/deadlock fuzz harness in miniature.
func TestRandomizedConfigsNeverDeadlockOrCorrupt(t *testing.T) {
	src := rng.New(0xF00D)
	profiles := append(workload.Profiles(), workload.MemBound())
	levels := circuit.Levels()
	modes := []circuit.Mode{circuit.ModeBaseline, circuit.ModeIRAW,
		circuit.ModeFaultyBits, circuit.ModeExtraBypass}
	iters := 40
	if testing.Short() {
		iters = 10
	}
	for i := 0; i < iters; i++ {
		p := profiles[src.Intn(len(profiles))]
		v := levels[src.Intn(len(levels))]
		mode := modes[src.Intn(len(modes))]
		n := 1 + src.Intn(3)
		insts := 2000 + src.Intn(4000)

		cfg := DefaultConfig(v, mode)
		if mode == circuit.ModeIRAW {
			switch src.Intn(3) {
			case 0:
				cfg.ForcedN = n
			case 1:
				cfg.CombineFaultyBits = true
			}
		}
		tr := workload.Generate(p, insts, uint64(i)+99)
		c, err := New(cfg)
		if err != nil {
			t.Fatalf("iter %d (%s %v %v): %v", i, p.Name, v, mode, err)
		}
		res, err := c.Run(tr)
		if err != nil {
			t.Fatalf("iter %d (%s %v %v N=%d): %v", i, p.Name, v, mode, cfg.ForcedN, err)
		}
		if res.Run.Instructions != uint64(insts) {
			t.Fatalf("iter %d: retired %d of %d", i, res.Run.Instructions, insts)
		}
		if res.CorruptConsumed != 0 || res.IntegrityErrors != 0 {
			t.Fatalf("iter %d (%s %v %v): corrupt=%d integ=%d",
				i, p.Name, v, mode, res.CorruptConsumed, res.IntegrityErrors)
		}
		// A second run on the same warm core must also stay clean.
		res2, err := c.Run(tr)
		if err != nil {
			t.Fatalf("iter %d warm rerun: %v", i, err)
		}
		if res2.CorruptConsumed != 0 || res2.IntegrityErrors != 0 {
			t.Fatalf("iter %d warm rerun: corrupt=%d integ=%d",
				i, res2.CorruptConsumed, res2.IntegrityErrors)
		}
	}
}

// TestSkipEngineMatchesSteppedEngine fuzzes the event-driven fast paths —
// the timing wheel, the lazy scoreboard and, above all, idle-cycle skipping
// — against strict cycle stepping: the same randomized (profile, voltage,
// mode, N) points run through both engine variants and every Result field
// (cycles, stall histograms, violation counters, cache/BP statistics) must
// be bit-identical, cold and warm.
func TestSkipEngineMatchesSteppedEngine(t *testing.T) {
	src := rng.New(0xBEEFCAFE)
	profiles := append(workload.Profiles(), workload.MemBound())
	levels := circuit.Levels()
	modes := []circuit.Mode{circuit.ModeBaseline, circuit.ModeIRAW,
		circuit.ModeFaultyBits, circuit.ModeExtraBypass}
	iters := 30
	if testing.Short() {
		iters = 8
	}
	for i := 0; i < iters; i++ {
		p := profiles[src.Intn(len(profiles))]
		v := levels[src.Intn(len(levels))]
		mode := modes[src.Intn(len(modes))]
		insts := 1500 + src.Intn(3000)

		cfg := DefaultConfig(v, mode)
		if mode == circuit.ModeIRAW {
			switch src.Intn(4) {
			case 0:
				cfg.ForcedN = 1 + src.Intn(3)
			case 1:
				cfg.CombineFaultyBits = true
			case 2:
				cfg.DisableAvoidance = true
			}
		}
		tr := workload.Generate(p, insts, uint64(i)+1234)

		fast := MustNew(cfg)
		slow := MustNew(cfg)
		slow.noSkip = true
		for pass := 0; pass < 2; pass++ {
			fr, err := fast.Run(tr)
			if err != nil {
				t.Fatalf("iter %d pass %d (%s %v %v): skip engine: %v", i, pass, p.Name, v, mode, err)
			}
			sr, err := slow.Run(tr)
			if err != nil {
				t.Fatalf("iter %d pass %d (%s %v %v): stepped engine: %v", i, pass, p.Name, v, mode, err)
			}
			if !reflect.DeepEqual(fr, sr) {
				t.Fatalf("iter %d pass %d (%s %v %v N=%d): engines diverge\nskip:    %+v\nstepped: %+v",
					i, pass, p.Name, v, mode, cfg.ForcedN, fr, sr)
			}
		}
	}
}

// TestFastPathsMatchDisabledEngine fuzzes the PR-4 fast paths — the
// hierarchy's cached set state (way masks, packed LRU, MSHR generations,
// lazy oracle signatures, STable early-outs, per-set sram summaries) and
// the dual-issue scoreboard probe — against the same event-driven engine
// with Config.DisableFastPaths set: randomized (profile, voltage, mode, N,
// faulty-bits) points must produce bit-identical Results, cold and warm.
// Together with TestSkipEngineMatchesSteppedEngine (which pins the default
// engine to strict cycle stepping) this chains fast paths -> plain
// event-driven -> stepped seed reference.
func TestFastPathsMatchDisabledEngine(t *testing.T) {
	src := rng.New(0xFA57C0DE)
	profiles := append(workload.Profiles(), workload.MemBound())
	levels := circuit.Levels()
	modes := []circuit.Mode{circuit.ModeBaseline, circuit.ModeIRAW,
		circuit.ModeFaultyBits, circuit.ModeExtraBypass}
	iters := 30
	if testing.Short() {
		iters = 8
	}
	for i := 0; i < iters; i++ {
		p := profiles[src.Intn(len(profiles))]
		v := levels[src.Intn(len(levels))]
		mode := modes[src.Intn(len(modes))]
		insts := 1500 + src.Intn(3000)

		cfg := DefaultConfig(v, mode)
		if mode == circuit.ModeIRAW {
			switch src.Intn(4) {
			case 0:
				cfg.ForcedN = 1 + src.Intn(3)
			case 1:
				cfg.CombineFaultyBits = true
			case 2:
				cfg.DisableAvoidance = true
			}
		}
		tr := workload.Generate(p, insts, uint64(i)+4242)

		fast := MustNew(cfg)
		slowCfg := cfg
		slowCfg.DisableFastPaths = true
		slow := MustNew(slowCfg)
		for pass := 0; pass < 2; pass++ {
			fr, err := fast.Run(tr)
			if err != nil {
				t.Fatalf("iter %d pass %d (%s %v %v): fast paths: %v", i, pass, p.Name, v, mode, err)
			}
			sr, err := slow.Run(tr)
			if err != nil {
				t.Fatalf("iter %d pass %d (%s %v %v): disabled: %v", i, pass, p.Name, v, mode, err)
			}
			if !reflect.DeepEqual(fr, sr) {
				t.Fatalf("iter %d pass %d (%s %v %v N=%d): fast paths change results\nfast:     %+v\ndisabled: %+v",
					i, pass, p.Name, v, mode, cfg.ForcedN, fr, sr)
			}
		}
	}
}

// TestPairProbeMatchesSequentialIssue isolates the dual-issue fast path:
// identical runs with only the two-slot scoreboard probe toggled (noPair)
// must be bit-identical — the probe may never change what issues when.
func TestPairProbeMatchesSequentialIssue(t *testing.T) {
	src := rng.New(0x2571)
	profiles := append(workload.Profiles(), workload.MemBound())
	levels := circuit.Levels()
	for i := 0; i < 12; i++ {
		p := profiles[src.Intn(len(profiles))]
		v := levels[src.Intn(len(levels))]
		cfg := DefaultConfig(v, circuit.ModeIRAW)
		if i%3 == 0 {
			cfg.Mode = circuit.ModeExtraBypass // writePipe > 1: port checks
		}
		tr := workload.Generate(p, 2000+src.Intn(2000), uint64(i)+777)
		pair := MustNew(cfg)
		seq := MustNew(cfg)
		seq.noPair = true
		pr, err := pair.Run(tr)
		if err != nil {
			t.Fatalf("iter %d: pair: %v", i, err)
		}
		sr, err := seq.Run(tr)
		if err != nil {
			t.Fatalf("iter %d: sequential: %v", i, err)
		}
		if !reflect.DeepEqual(pr, sr) {
			t.Fatalf("iter %d (%s %v): pair probe changes results\npair: %+v\nseq:  %+v", i, p.Name, v, pr, sr)
		}
	}
}

// TestWidthsMatchReferenceEngine fuzzes the width axis: for every width in
// 1..MaxWidth, the batched ready-set engine must be bit-identical to the
// stepped reference engine (noSkip — the seed semantics, probe off) and to
// the probe-disabled event-driven engine (noPair) on the same randomized
// (profile, voltage, mode, N) points, cold and warm. Width 2 is covered by
// the recorded golden; this extends the equivalence chain to the whole
// axis.
func TestWidthsMatchReferenceEngine(t *testing.T) {
	src := rng.New(0x51DE)
	profiles := append(workload.Profiles(), workload.MemBound())
	levels := circuit.Levels()
	modes := []circuit.Mode{circuit.ModeBaseline, circuit.ModeIRAW,
		circuit.ModeFaultyBits, circuit.ModeExtraBypass}
	iters := 24
	if testing.Short() {
		iters = 8
	}
	for i := 0; i < iters; i++ {
		width := 1 + i%MaxWidth
		p := profiles[src.Intn(len(profiles))]
		v := levels[src.Intn(len(levels))]
		mode := modes[src.Intn(len(modes))]
		insts := 1500 + src.Intn(3000)

		cfg := DefaultConfigWidth(v, mode, width)
		if mode == circuit.ModeIRAW && src.Intn(3) == 0 {
			cfg.ForcedN = 1 + src.Intn(3)
		}
		tr := workload.Generate(p, insts, uint64(i)+31337)

		fast := MustNew(cfg)
		stepped := MustNew(cfg)
		stepped.noSkip = true
		seq := MustNew(cfg)
		seq.noPair = true
		for pass := 0; pass < 2; pass++ {
			fr, err := fast.Run(tr)
			if err != nil {
				t.Fatalf("iter %d pass %d (w=%d %s %v %v): fast engine: %v", i, pass, width, p.Name, v, mode, err)
			}
			sr, err := stepped.Run(tr)
			if err != nil {
				t.Fatalf("iter %d pass %d (w=%d %s %v %v): stepped engine: %v", i, pass, width, p.Name, v, mode, err)
			}
			qr, err := seq.Run(tr)
			if err != nil {
				t.Fatalf("iter %d pass %d (w=%d %s %v %v): probe-off engine: %v", i, pass, width, p.Name, v, mode, err)
			}
			if !reflect.DeepEqual(fr, sr) {
				t.Fatalf("iter %d pass %d (w=%d %s %v %v N=%d): fast vs stepped diverge\nfast:    %+v\nstepped: %+v",
					i, pass, width, p.Name, v, mode, cfg.ForcedN, fr, sr)
			}
			if !reflect.DeepEqual(fr, qr) {
				t.Fatalf("iter %d pass %d (w=%d %s %v %v N=%d): probe changes results\nprobe: %+v\noff:   %+v",
					i, pass, width, p.Name, v, mode, cfg.ForcedN, fr, qr)
			}
		}
	}
}

// TestWiderCoreIssuesMore pins the point of the width axis: on a compute
// trace at nominal voltage, a 4-wide core must finish in strictly fewer
// cycles than the 2-wide core, and the 1-wide core in strictly more — the
// ready-set probe has to actually move extra instructions per cycle.
func TestWiderCoreIssuesMore(t *testing.T) {
	tr := workload.Generate(workload.SpecInt(), 20000, 7)
	cycles := map[int]uint64{}
	for _, w := range []int{1, 2, 4} {
		c := MustNew(DefaultConfigWidth(700, circuit.ModeBaseline, w))
		res, err := c.Run(tr)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		cycles[w] = res.Run.Cycles
	}
	if !(cycles[4] < cycles[2] && cycles[2] < cycles[1]) {
		t.Fatalf("cycles not strictly decreasing with width: w1=%d w2=%d w4=%d",
			cycles[1], cycles[2], cycles[4])
	}
}

// TestSkipEquivalenceUnderHoldPressure targets the overlapping-port-hold
// attribution corner: a TLB-hostile, store-heavy workload at high N makes
// DTLB walk-fill holds coincide with DL0 fill windows registered for
// future cycles, which is exactly where a skip bounded only by the
// DTLB-free time would misattribute StallDL0IRAW cycles as StallOtherIRAW.
func TestSkipEquivalenceUnderHoldPressure(t *testing.T) {
	p := workload.MemBound()
	p.Load, p.Store = 0.35, 0.30 // store-heavy: constant DL0 fill traffic
	p.DataWorkingSet = 256 << 20 // thrash both TLBs
	for _, forcedN := range []int{2, 4} {
		for seed := uint64(0); seed < 4; seed++ {
			cfg := DefaultConfig(400, circuit.ModeIRAW)
			cfg.ForcedN = forcedN
			tr := workload.Generate(p, 4000, seed+500)
			fast := MustNew(cfg)
			slow := MustNew(cfg)
			slow.noSkip = true
			fr, err := fast.Run(tr)
			if err != nil {
				t.Fatalf("N=%d seed %d: skip engine: %v", forcedN, seed, err)
			}
			sr, err := slow.Run(tr)
			if err != nil {
				t.Fatalf("N=%d seed %d: stepped engine: %v", forcedN, seed, err)
			}
			if !reflect.DeepEqual(fr, sr) {
				t.Fatalf("N=%d seed %d: engines diverge\nskip stalls:    %v\nstepped stalls: %v",
					forcedN, seed, fr.Run.IssueStalls, sr.Run.IssueStalls)
			}
		}
	}
}
