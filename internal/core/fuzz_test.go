package core

import (
	"testing"

	"lowvcc/internal/circuit"
	"lowvcc/internal/rng"
	"lowvcc/internal/workload"
)

// TestRandomizedConfigsNeverDeadlockOrCorrupt drives the pipeline through
// randomized (profile, voltage, mode, N) points: every run must terminate
// (no watchdog) and, whenever avoidance is active, consume zero corrupt
// values. This is the repo's crash/deadlock fuzz harness in miniature.
func TestRandomizedConfigsNeverDeadlockOrCorrupt(t *testing.T) {
	src := rng.New(0xF00D)
	profiles := append(workload.Profiles(), workload.MemBound())
	levels := circuit.Levels()
	modes := []circuit.Mode{circuit.ModeBaseline, circuit.ModeIRAW,
		circuit.ModeFaultyBits, circuit.ModeExtraBypass}
	iters := 40
	if testing.Short() {
		iters = 10
	}
	for i := 0; i < iters; i++ {
		p := profiles[src.Intn(len(profiles))]
		v := levels[src.Intn(len(levels))]
		mode := modes[src.Intn(len(modes))]
		n := 1 + src.Intn(3)
		insts := 2000 + src.Intn(4000)

		cfg := DefaultConfig(v, mode)
		if mode == circuit.ModeIRAW {
			switch src.Intn(3) {
			case 0:
				cfg.ForcedN = n
			case 1:
				cfg.CombineFaultyBits = true
			}
		}
		tr := workload.Generate(p, insts, uint64(i)+99)
		c, err := New(cfg)
		if err != nil {
			t.Fatalf("iter %d (%s %v %v): %v", i, p.Name, v, mode, err)
		}
		res, err := c.Run(tr)
		if err != nil {
			t.Fatalf("iter %d (%s %v %v N=%d): %v", i, p.Name, v, mode, cfg.ForcedN, err)
		}
		if res.Run.Instructions != uint64(insts) {
			t.Fatalf("iter %d: retired %d of %d", i, res.Run.Instructions, insts)
		}
		if res.CorruptConsumed != 0 || res.IntegrityErrors != 0 {
			t.Fatalf("iter %d (%s %v %v): corrupt=%d integ=%d",
				i, p.Name, v, mode, res.CorruptConsumed, res.IntegrityErrors)
		}
		// A second run on the same warm core must also stay clean.
		res2, err := c.Run(tr)
		if err != nil {
			t.Fatalf("iter %d warm rerun: %v", i, err)
		}
		if res2.CorruptConsumed != 0 || res2.IntegrityErrors != 0 {
			t.Fatalf("iter %d warm rerun: corrupt=%d integ=%d",
				i, res2.CorruptConsumed, res2.IntegrityErrors)
		}
	}
}
