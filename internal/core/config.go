// Package core assembles the paper's contribution: a Silverthorne-like
// two-wide in-order pipeline whose SRAM blocks (RF, IQ, IL0, DL0, UL1,
// TLBs, WCB/EB, FB, BP, RSB) run at logic speed at low Vcc by interrupting
// writes early and avoiding immediate reads after writes, per-structure as
// described in Sections 3 and 4.
//
// A Core is built for one (voltage, mode) operating point, runs traces, and
// reports cycle counts, stall attribution, violation counters and the
// activity census for the energy model. The DVFS reconfiguration of
// Section 4.1.3/4.2/4.4 is exercised via Reconfigure.
package core

import (
	"fmt"

	"lowvcc/internal/cache"
	"lowvcc/internal/circuit"
	"lowvcc/internal/iq"
	"lowvcc/internal/predictor"
	"lowvcc/internal/scoreboard"
)

// Config describes one simulated operating point.
type Config struct {
	// Vcc is the supply level; Mode selects the design (baseline, IRAW,
	// faulty bits, extra bypass).
	Vcc  circuit.Millivolts
	Mode circuit.Mode

	// Width is the issue width (2 for the modelled core).
	Width int

	Scoreboard scoreboard.Config
	IQ         iq.Config
	Hierarchy  cache.HierarchyConfig
	Predictor  predictor.Config

	// Circuit overrides the delay-model calibration (nil = default).
	Circuit *circuit.Params

	// MemLatencyTime is the off-chip latency in time units (one clock
	// phase at 700 mV = 1.0); it is constant across voltage, reproducing
	// Section 5.2's effect (i).
	MemLatencyTime float64

	// MispredictPenalty is the fetch-redirect bubble in cycles.
	MispredictPenalty int

	// FrontDepth is the fetch-to-allocate depth in cycles.
	FrontDepth int

	// ForcedN overrides the stabilization cycle count when positive
	// (the N-sweep ablation).
	ForcedN int

	// DisableAvoidance turns off every avoidance mechanism while keeping
	// interrupted writes: the unsafe validation mode, in which the sram
	// substrate must report violations.
	DisableAvoidance bool

	// FaultySigma is the reduced margin of the Faulty-Bits design.
	FaultySigma float64

	// CombineFaultyBits, with ModeIRAW, additionally re-margins the
	// interrupted write path to FaultySigma and installs fault maps — the
	// Section 4.4 combination for even higher frequency.
	CombineFaultyBits bool

	// Seed drives fault-map generation and any other stochastic state.
	Seed uint64

	// MaxCycles guards against pipeline deadlock (0 = automatic bound).
	MaxCycles int64
}

// DefaultConfig returns the modelled core at the given operating point.
func DefaultConfig(v circuit.Millivolts, mode circuit.Mode) Config {
	return Config{
		Vcc:               v,
		Mode:              mode,
		Width:             2,
		Scoreboard:        scoreboard.DefaultConfig(),
		IQ:                iq.DefaultConfig(),
		Hierarchy:         cache.DefaultHierarchyConfig(),
		Predictor:         predictor.DefaultConfig(),
		MemLatencyTime:    240, // ~120 cycles at the 700 mV logic clock
		MispredictPenalty: 11,
		FrontDepth:        3,
		FaultySigma:       4,
		Seed:              1,
	}
}

func (c Config) validate() error {
	if !c.Vcc.Valid() {
		return fmt.Errorf("core: invalid Vcc %v", c.Vcc)
	}
	if c.Width < 1 || c.Width > c.IQ.ICI {
		return fmt.Errorf("core: width %d must be in [1, ICI=%d]", c.Width, c.IQ.ICI)
	}
	if c.MemLatencyTime <= 0 {
		return fmt.Errorf("core: MemLatencyTime must be positive")
	}
	if c.MispredictPenalty < 1 || c.FrontDepth < 1 {
		return fmt.Errorf("core: penalties must be positive")
	}
	return nil
}
