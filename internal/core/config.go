// Package core assembles the paper's contribution: a Silverthorne-like
// two-wide in-order pipeline whose SRAM blocks (RF, IQ, IL0, DL0, UL1,
// TLBs, WCB/EB, FB, BP, RSB) run at logic speed at low Vcc by interrupting
// writes early and avoiding immediate reads after writes, per-structure as
// described in Sections 3 and 4.
//
// A Core is built for one (voltage, mode) operating point, runs traces, and
// reports cycle counts, stall attribution, violation counters and the
// activity census for the energy model. The DVFS reconfiguration of
// Section 4.1.3/4.2/4.4 is exercised via Reconfigure.
//
// # The event-driven engine
//
// Run models a strictly cycle-stepped pipeline but executes event-driven;
// its Results are bit-identical to stepping every cycle (held together by
// a recorded-golden test and an equivalence fuzz against the noSkip
// stepped mode). Three mechanisms carry the loop:
//
//   - Timing wheel (wheel.go). Deferred events — long-latency completion
//     heads-ups and pipelined register-file writes — live in a 64-bucket
//     wheel indexed by due-cycle mod 64, replacing the seed engine's
//     per-cycle linear scan over all pending events. Dispatch touches only
//     the current bucket; far-future events wait in place across laps.
//
//   - Lazy scoreboard (internal/scoreboard). Registers store their
//     initialization patterns plus an issue stamp instead of physically
//     shifting every cycle; views are computed from the elapsed cycle
//     count, and AdvanceTo moves time in one jump. NextChange exposes the
//     next self-inflicted readiness flip — the event-driven loop's bound
//     for how far it may skip while an instruction waits on a register.
//
//   - Idle-cycle skipping. When a cycle ends with nothing issued,
//     allocated, fetched or injected, the pipeline state is frozen until
//     an external time arrives: the next wheel event, the fetch-stall
//     expiry, the front of the fetch buffer maturing, a scoreboard flip or
//     a port-hold release for the blocked head instruction (issueRetryAt
//     mirrors tryIssue's exact check order to find it). The loop jumps
//     there directly. Attribution is preserved because the jump target is
//     the minimum over every time at which the stall reason could change,
//     so the skipped cycles are credited to the same IssueHist/IssueStalls
//     /FetchHist counters the stepped loop would have recorded, in the
//     same amounts. Cycles whose stall charges per-cycle side effects
//     (the IQ occupancy gate, Extra-Bypass write-port contention) are
//     never skipped. A blocked-head memo extends the same reasoning to
//     busy cycles: while fetch/allocate progress but the IQ head stays
//     blocked and no wake dispatches, the issue stage reuses the recorded
//     verdict instead of re-deriving it.
//
// The IQ needs no "next event" hook (its gate depends only on occupancy,
// which only pipeline actions change), and neither does the predictor (its
// RSB stalls are already routed through the fetch-stall time); the caches
// expose NextFree for the port-hold windows the issue stage polls.
//
// # Functional warm-up replay
//
// RunWindow executes one sample window of a sharded long trace: a warm-up
// prefix whose statistics are discarded, then the measured span. The warm
// mode selects the prefix's execution. WarmTimed simulates it — exact, but
// every warm instruction costs a simulated one, so affordable prefixes are
// short and windows start tens of percent pessimistic. WarmFunctional (the
// default) replays it through WarmReplay under the hierarchy's
// timing-independent access-order contract (see internal/cache): one
// instruction-fetch touch per 64-byte line transition, one data touch per
// load or store, one predictor update per control instruction, all
// timing-free. The invariants that make the handoff sound:
//
//   - warm state is a pure function of the instruction sequence —
//     independent of clock plan, Vcc, IRAW mode and the cycle the replay
//     runs at (equivalence-tested across operating points);
//   - every warm write lands settled: no stabilization window, port hold,
//     in-flight fill or STable entry reaches into the measured span, and
//     the predictor's warm writes carry no stabilization stamp;
//   - nothing timing-visible moves: no cycles elapse, no statistics
//     change, and the timed engine takes over at the next cycle with the
//     pipeline cold (the same few-cycle ramp any trace head pays);
//   - WarmReplay(tr, 0) is a no-op, so RunWindow(tr, 0, mode) is exactly
//     Run(tr) in both modes — warm=0 windows stay bit-identical to the
//     unsharded engine.
//
// The replay trains predictor direction state exactly (training depends
// only on resolved outcomes, never on timing) and cache/TLB/LRU/dirty
// state in access order; what it cannot reproduce is timing-dependent
// interleaving (MSHR merges, fill-completion ordering), which is the low
// single-digit residual the sharding-bias golden test bounds.
//
// # Warm-state checkpoints
//
// Because warm state is a pure function of the instruction sequence, it can
// be captured once and restored instead of replayed: CaptureWarm serializes
// a never-run core's functional warm state (cache/TLB arrays, predictor
// tables) into an immutable WarmState, and RestoreWarm loads one into a
// freshly reset core in O(state size) — turning an O(prefix length) window
// start into a near-constant one. The contract the checkpoint layer relies
// on:
//
//   - capture requires c.now == 0 and refuses any timed residue (elapsed
//     cycles, holds, in-flight fills, stabilization stamps), so a snapshot
//     can only ever hold access-order state;
//   - snapshots are canonical (LRU ticks renumbered by rank, derived
//     summaries recomputed on restore), so the same prefix produces
//     byte-identical snapshots however its replay was segmented;
//   - snapshots are Vcc- and mode-independent — one snapshot per (trace,
//     warm-relevant config, boundary) serves every operating point of a
//     sweep, shared read-only across cores and workers;
//   - fault maps are not serialized: reset reinstalls them
//     deterministically from (Seed, FaultySigma), so they key the snapshot,
//     and RestoreWarm rejects a snapshot whose valid entries collide with a
//     disabled line;
//   - restore + WarmReplayRange of the residual tail + RunWarmed yields
//     Results bit-identical to a continuous WarmReplay + RunWarmed
//     (fuzz-tested by internal/ckpt and internal/sim).
//
// internal/ckpt builds the content-addressed store on these primitives;
// internal/sim routes sharded windows through it by default.
//
// # Struct-of-arrays slot state and issue width
//
// The in-flight instruction state (fetched but not yet issued) is held
// struct-of-arrays: parallel slices for opcode, sources, destination,
// produced register, address, PC, branch outcome and the per-instruction
// census flags, indexed by a ring-allocated slot id (see slotArrays in
// core.go for the lifetime invariants). The issue stage therefore scans
// dense arrays, and the batched ready-set probe
// (scoreboard.IssueReadySet + iq.MayIssueN) resolves up to Width IQ slots
// in one scoreboard call per cycle; DisableFastPaths (or the fuzz-only
// noPair hook) falls back to the sequential per-slot register walk, which
// is also the path every probe miss re-derives its stall attribution
// through — Results are bit-identical either way.
//
// Config.Width is a real 1..MaxWidth axis: it sizes the fetch group, the
// fetch buffer (8 entries per width step) and the per-cycle issue bound.
// Width must not exceed IQ.ICI (the hardware reads only the ICI oldest
// IQ slots); DefaultConfigWidth widens the IQ defaults alongside the
// width so any 1..MaxWidth point is one call away. The IssueHist and
// FetchHist histogram shapes are unchanged: cycles that move more than
// two instructions fold into bucket 2 (the histograms' role — the
// issue-0/issue-some split for stall accounting — does not need wider
// buckets, and recorded goldens stay comparable). Warm state is
// width-independent (the functional replay never consults Width), so
// warm-state checkpoints are shared across a width sweep's points.
package core

import (
	"fmt"

	"lowvcc/internal/cache"
	"lowvcc/internal/circuit"
	"lowvcc/internal/iq"
	"lowvcc/internal/predictor"
	"lowvcc/internal/scoreboard"
)

// EngineVersion identifies the simulation semantics for result caching:
// any change that can alter a simulated Result for the same (config,
// trace) input — timing model, stall attribution, stat definitions — must
// bump it. internal/journal keys cached cell results by it, so a bump
// invalidates every previously journaled entry at once instead of
// replaying stale numbers.
const EngineVersion = "lowvcc-engine-8"

// Config describes one simulated operating point.
type Config struct {
	// Vcc is the supply level; Mode selects the design (baseline, IRAW,
	// faulty bits, extra bypass).
	Vcc  circuit.Millivolts
	Mode circuit.Mode

	// Width is the fetch/issue width, in [1, MaxWidth] (2 for the
	// modelled core). It must not exceed IQ.ICI — the issue stage reads
	// only the ICI oldest IQ slots; DefaultConfigWidth keeps the two in
	// step.
	Width int

	Scoreboard scoreboard.Config
	IQ         iq.Config
	Hierarchy  cache.HierarchyConfig
	Predictor  predictor.Config

	// Circuit overrides the delay-model calibration (nil = default).
	Circuit *circuit.Params

	// MemLatencyTime is the off-chip latency in time units (one clock
	// phase at 700 mV = 1.0); it is constant across voltage, reproducing
	// Section 5.2's effect (i).
	MemLatencyTime float64

	// MispredictPenalty is the fetch-redirect bubble in cycles.
	MispredictPenalty int

	// FrontDepth is the fetch-to-allocate depth in cycles.
	FrontDepth int

	// ForcedN overrides the stabilization cycle count when positive
	// (the N-sweep ablation).
	ForcedN int

	// DisableAvoidance turns off every avoidance mechanism while keeping
	// interrupted writes: the unsafe validation mode, in which the sram
	// substrate must report violations.
	DisableAvoidance bool

	// FaultySigma is the reduced margin of the Faulty-Bits design.
	FaultySigma float64

	// CombineFaultyBits, with ModeIRAW, additionally re-margins the
	// interrupted write path to FaultySigma and installs fault maps — the
	// Section 4.4 combination for even higher frequency.
	CombineFaultyBits bool

	// Seed drives fault-map generation and any other stochastic state.
	Seed uint64

	// DisableFastPaths turns off the result-invariant hot-path caches —
	// the hierarchy's cached set state (way masks, MSHR generations, lazy
	// integrity-oracle signatures, STable probe early-outs, per-set sram
	// summaries) and the core's dual-issue scoreboard probe — while
	// keeping the event-driven engine. Results are bit-identical either
	// way (equivalence-fuzzed); this is the benchmark baseline and
	// equivalence-test hook.
	DisableFastPaths bool

	// MaxCycles guards against pipeline deadlock (0 = automatic bound).
	MaxCycles int64
}

// MaxWidth is the largest fetch/issue width the engine models: the
// ready-set probe's scratch and verdict mask are sized for it.
const MaxWidth = 4

// DefaultConfig returns the modelled core at the given operating point.
func DefaultConfig(v circuit.Millivolts, mode circuit.Mode) Config {
	return Config{
		Vcc:               v,
		Mode:              mode,
		Width:             2,
		Scoreboard:        scoreboard.DefaultConfig(),
		IQ:                iq.DefaultConfig(),
		Hierarchy:         cache.DefaultHierarchyConfig(),
		Predictor:         predictor.DefaultConfig(),
		MemLatencyTime:    240, // ~120 cycles at the 700 mV logic clock
		MispredictPenalty: 11,
		FrontDepth:        3,
		FaultySigma:       4,
		Seed:              1,
	}
}

// DefaultConfigWidth returns DefaultConfig widened (or narrowed) to the
// given fetch/issue width, raising the IQ's ICI and AI to match so the
// wider front end can actually be fed and issued. Width 2 returns exactly
// DefaultConfig, so journal keys and recorded goldens for the modelled
// core are unchanged.
func DefaultConfigWidth(v circuit.Millivolts, mode circuit.Mode, width int) Config {
	cfg := DefaultConfig(v, mode)
	cfg.Width = width
	if width > cfg.IQ.ICI {
		cfg.IQ.ICI = width
	}
	if width > cfg.IQ.AI {
		cfg.IQ.AI = width
	}
	return cfg
}

func (c Config) validate() error {
	if !c.Vcc.Valid() {
		return fmt.Errorf("core: invalid Vcc %v", c.Vcc)
	}
	if c.Width < 1 || c.Width > MaxWidth {
		return fmt.Errorf("core: width %d must be in [1, %d]", c.Width, MaxWidth)
	}
	if c.Width > c.IQ.ICI {
		return fmt.Errorf("core: width %d exceeds IQ.ICI=%d (the issue stage reads only the ICI oldest IQ slots); raise IQ.ICI/AI or build the config with DefaultConfigWidth", c.Width, c.IQ.ICI)
	}
	if c.MemLatencyTime <= 0 {
		return fmt.Errorf("core: MemLatencyTime must be positive")
	}
	if c.MispredictPenalty < 1 || c.FrontDepth < 1 {
		return fmt.Errorf("core: penalties must be positive")
	}
	// Sub-block configurations are user input at this boundary: reject them
	// with errors here so the constructors' invariant panics stay
	// unreachable through New.
	if err := c.Scoreboard.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := c.IQ.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := c.Predictor.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.Circuit != nil {
		if err := c.Circuit.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	return nil
}
