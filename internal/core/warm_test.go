package core

import (
	"math"
	"reflect"
	"testing"

	"lowvcc/internal/cache"
	"lowvcc/internal/circuit"
	"lowvcc/internal/rng"
	"lowvcc/internal/trace"
	"lowvcc/internal/workload"
)

// TestWarmFunctionalVsTimedFuzz drives RunWindow over random (profile,
// seed, window, warm) combinations in both warm modes and checks the
// functional-warming contract: with warm=0 the two modes are bit-identical
// (nothing to warm — both are exactly Run over the span), and with a warm
// prefix the measured spans cover the same instructions and land within the
// golden sampling tolerance of each other (the two warm-ups produce
// near-identical architectural state; only boundary transients differ).
func TestWarmFunctionalVsTimedFuzz(t *testing.T) {
	src := rng.New(0xF00DF00D)
	profiles := []workload.Profile{
		workload.SpecInt(), workload.SpecFP(), workload.Server(), workload.Kernel(),
	}
	modes := []circuit.Mode{circuit.ModeBaseline, circuit.ModeIRAW}
	const tol = 0.15
	for i := 0; i < 12; i++ {
		prof := profiles[src.Intn(len(profiles))]
		n := 4000 + src.Intn(8000)
		tr := workload.Generate(prof, n, 1+src.Uint64n(1000))
		mode := modes[src.Intn(len(modes))]
		cfg := DefaultConfig(circuit.Millivolts(450+25*src.Intn(6)), mode)
		measureFrom := src.Intn(n)

		fun, err := MustNew(cfg).RunWindow(tr, measureFrom, WarmFunctional)
		if err != nil {
			t.Fatal(err)
		}
		tim, err := MustNew(cfg).RunWindow(tr, measureFrom, WarmTimed)
		if err != nil {
			t.Fatal(err)
		}
		if measureFrom == 0 {
			if !reflect.DeepEqual(fun, tim) {
				t.Fatalf("%s from=0: warm modes are not bit-identical", tr.Name)
			}
			continue
		}
		if fun.Run.Instructions != tim.Run.Instructions {
			t.Fatalf("%s from=%d: measured %d vs %d instructions",
				tr.Name, measureFrom, fun.Run.Instructions, tim.Run.Instructions)
		}
		if d := math.Abs(fun.IPC()-tim.IPC()) / tim.IPC(); d > tol {
			t.Errorf("%s %v from=%d: functional IPC %.4f vs timed %.4f (%.1f%% > %.0f%%)",
				tr.Name, mode, measureFrom, fun.IPC(), tim.IPC(), 100*d, 100*tol)
		}
		// Avoidance must hold regardless of how the window was warmed.
		if fun.CorruptConsumed != 0 || fun.IntegrityErrors != 0 {
			t.Errorf("%s from=%d: functional warm-up leaked corruption (%d consumed, %d integrity)",
				tr.Name, measureFrom, fun.CorruptConsumed, fun.IntegrityErrors)
		}
	}
}

// TestWarmReplayDeterministic: two identical cores after the same replay
// produce bit-identical measured windows.
func TestWarmReplayDeterministic(t *testing.T) {
	tr := workload.Generate(workload.SpecInt(), 9000, 21)
	cfg := DefaultConfig(500, circuit.ModeIRAW)
	a, err := MustNew(cfg).RunWindow(tr, 6000, WarmFunctional)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MustNew(cfg).RunWindow(tr, 6000, WarmFunctional)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("functional RunWindow is not deterministic")
	}
}

// TestWarmReplayTimingIndependence: the hierarchy state WarmReplay leaves
// behind is a function of the access sequence only — cores at different
// voltages and modes (hence different clock plans, stabilization counts and
// memory latencies) end up with identical cache and TLB contents.
func TestWarmReplayTimingIndependence(t *testing.T) {
	tr := workload.Generate(workload.Server(), 12000, 5)
	a := MustNew(DefaultConfig(700, circuit.ModeBaseline))
	b := MustNew(DefaultConfig(450, circuit.ModeIRAW))
	if err := a.WarmReplay(tr, len(tr.Insts)); err != nil {
		t.Fatal(err)
	}
	if err := b.WarmReplay(tr, len(tr.Insts)); err != nil {
		t.Fatal(err)
	}
	blocks := []struct {
		name   string
		ca, cb interface {
			LineAddrAt(set, way int) (uint64, bool)
		}
		sets, ways int
	}{
		{"IL0", a.Mem().IL0, b.Mem().IL0, a.Mem().IL0.Config().Sets, a.Mem().IL0.Config().Ways},
		{"DL0", a.Mem().DL0, b.Mem().DL0, a.Mem().DL0.Config().Sets, a.Mem().DL0.Config().Ways},
		{"UL1", a.Mem().UL1, b.Mem().UL1, a.Mem().UL1.Config().Sets, a.Mem().UL1.Config().Ways},
		{"ITLB", a.Mem().ITLB, b.Mem().ITLB, a.Mem().ITLB.Config().Sets, a.Mem().ITLB.Config().Ways},
		{"DTLB", a.Mem().DTLB, b.Mem().DTLB, a.Mem().DTLB.Config().Sets, a.Mem().DTLB.Config().Ways},
	}
	for _, blk := range blocks {
		for s := 0; s < blk.sets; s++ {
			for w := 0; w < blk.ways; w++ {
				la, va := blk.ca.LineAddrAt(s, w)
				lb, vb := blk.cb.LineAddrAt(s, w)
				if la != lb || va != vb {
					t.Fatalf("%s (%d,%d): warm state differs across timing configs: (%x,%v) vs (%x,%v)",
						blk.name, s, w, la, va, lb, vb)
				}
			}
		}
	}
}

// TestWarmReplayLeavesTimingStateUntouched: a replay moves no clock, holds
// no ports, leaves the STable empty and the statistics at zero.
func TestWarmReplayLeavesTimingStateUntouched(t *testing.T) {
	tr := workload.Generate(workload.SpecInt(), 8000, 9)
	c := MustNew(DefaultConfig(500, circuit.ModeIRAW))
	if err := c.WarmReplay(tr, len(tr.Insts)); err != nil {
		t.Fatal(err)
	}
	m := c.Mem()
	if s := (cache.HierarchyStats{}); m.Stats() != s {
		t.Errorf("warm replay moved hierarchy statistics: %+v", m.Stats())
	}
	for _, blk := range []struct {
		name string
		st   interface{ Busy(int64) bool }
	}{{"IL0", m.IL0}, {"DL0", m.DL0}, {"UL1", m.UL1}, {"ITLB", m.ITLB}, {"DTLB", m.DTLB}} {
		for cyc := int64(0); cyc < 16; cyc++ {
			if blk.st.Busy(cyc) {
				t.Errorf("%s ports held at cycle %d after warm replay", blk.name, cyc)
			}
		}
	}
	for _, e := range m.STab.Entries() {
		if e.Valid {
			t.Error("warm replay left a live STable entry")
		}
	}
	if got := m.IL0.Stats(); got.Accesses != 0 || got.Fills != 0 {
		t.Errorf("warm replay counted IL0 activity: %+v", got)
	}
}

// TestRunWindowShardEdgeCases exercises trace.Shard's boundary plans at the
// RunWindow level: window=1 (every instruction its own window), warm
// longer than the available prefix (capped), full-prefix warm (warm < 0)
// and window >= len (the unsharded identity).
func TestRunWindowShardEdgeCases(t *testing.T) {
	tr := workload.Generate(workload.SpecInt(), 600, 13)
	cfg := DefaultConfig(500, circuit.ModeIRAW)
	n := len(tr.Insts)

	// window >= len: a single window whose Trace IS the parent, and whose
	// execution is bit-identical to Run.
	plan := trace.Shard(tr, n, 100)
	if len(plan) != 1 || plan[0].Trace != tr || plan[0].Warm != 0 {
		t.Fatalf("window>=len plan: %+v", plan[0])
	}
	whole, err := MustNew(cfg).Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MustNew(cfg).RunWindow(plan[0].Trace, plan[0].Warm, WarmFunctional)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(whole, res) {
		t.Fatal("window>=len RunWindow differs from Run")
	}

	// warm > start: every window's prefix is capped at its start, so
	// window 0 is cold and the others carry their full history.
	plan = trace.Shard(tr, 100, 1<<20)
	for i, w := range plan {
		if want := w.Start; w.Warm != want {
			t.Fatalf("window %d: warm %d, want capped prefix %d", i, w.Warm, want)
		}
	}
	// warm < 0 selects the same full-prefix plan.
	if full := trace.Shard(tr, 100, -1); !reflect.DeepEqual(full, plan) {
		t.Fatal("warm<0 plan differs from the warm>len cap")
	}

	// window = 1: n windows, each measuring exactly one instruction; the
	// stitched totals must cover the trace exactly.
	plan = trace.Shard(tr, 1, 50)
	if len(plan) != n {
		t.Fatalf("window=1 made %d windows, want %d", len(plan), n)
	}
	results := make([]*Result, len(plan))
	c := MustNew(cfg)
	for i, w := range plan {
		if err := c.Reset(); err != nil {
			t.Fatal(err)
		}
		r, err := c.RunWindow(w.Trace, w.Warm, WarmFunctional)
		if err != nil {
			t.Fatal(err)
		}
		if r.Run.Instructions != 1 {
			t.Fatalf("window %d measured %d instructions, want 1", i, r.Run.Instructions)
		}
		results[i] = r
	}
	st := MergeWindowResults(tr.Name, results)
	if st.Run.Instructions != uint64(n) {
		t.Fatalf("window=1 stitch measured %d instructions, want %d", st.Run.Instructions, n)
	}
}
