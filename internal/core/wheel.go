package core

import (
	"math"
	"math/bits"
)

// wheelBits sizes the timing wheel: 64 buckets covers the common deferred
// horizons (bypass writes, long-latency heads-ups) in one lap; far-future
// events (deep load misses at low frequency) simply stay in their bucket
// across laps and are re-examined once per lap, which keeps insertion O(1)
// with no overflow structure. 64 is also deliberate: bucket occupancy fits
// one uint64 mask, so scans touch only non-empty buckets.
const (
	wheelBits = 6
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
)

// wheel is a bucketed timing wheel for deferred pipeline events, indexed by
// cycle mod wheelSize. Entries carry absolute due-cycles, so a bucket can
// hold events for several laps at once; dispatch filters on exact due-cycle.
// Replaces the seed engine's per-cycle linear scan of a flat wake slice:
// dispatch is O(due events + same-bucket future events) instead of
// O(all pending events) every cycle.
type wheel struct {
	buckets [wheelSize][]wake
	occ     uint64 // bit i set iff buckets[i] is non-empty
	pending int
	// nextDue is a lower bound on the earliest pending due-cycle: pushes
	// lower it, dispatch leaves it stale (events are only removed at their
	// due cycle, and the clock only moves forward, so `nextDue > cycle`
	// implies the event that set it is still pending — nextAfter then
	// answers without scanning).
	nextDue int64
}

// clear empties the wheel, keeping bucket capacity (Reset reuse path).
func (w *wheel) clear() {
	for i := range w.buckets {
		w.buckets[i] = w.buckets[i][:0]
	}
	w.occ = 0
	w.pending = 0
	w.nextDue = math.MaxInt64
}

// push schedules e; e.at must be strictly in the future of the cycle being
// executed (the pipeline never schedules same-cycle work for itself).
func (w *wheel) push(e wake) {
	i := int(e.at) & wheelMask
	w.buckets[i] = append(w.buckets[i], e)
	w.occ |= 1 << uint(i)
	w.pending++
	if e.at < w.nextDue {
		w.nextDue = e.at
	}
}

// bucket returns the bucket due at cycle, for in-place dispatch. The caller
// must call noteDrained afterwards so the occupancy mask stays exact.
func (w *wheel) bucket(cycle int64) *[]wake {
	return &w.buckets[int(cycle)&wheelMask]
}

// noteDrained updates the occupancy bit of cycle's bucket after dispatch.
func (w *wheel) noteDrained(cycle int64) {
	i := int(cycle) & wheelMask
	if len(w.buckets[i]) == 0 {
		w.occ &^= 1 << uint(i)
	}
}

// nextAfter returns the earliest pending due-cycle strictly after cycle, or
// math.MaxInt64 when the wheel is empty. The pipeline never runs past a
// pending event, so no entry can be due at or before cycle. The occupancy
// mask limits the rescan to non-empty buckets; the result refreshes
// nextDue, so a scan happens at most once per dispatched event.
func (w *wheel) nextAfter(cycle int64) int64 {
	if w.pending == 0 {
		return math.MaxInt64
	}
	if w.nextDue > cycle {
		return w.nextDue
	}
	best := int64(math.MaxInt64)
	for m := w.occ; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		for j := range w.buckets[i] {
			if at := w.buckets[i][j].at; at > cycle && at < best {
				best = at
			}
		}
	}
	w.nextDue = best
	return best
}
