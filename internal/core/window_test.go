package core

import (
	"errors"
	"reflect"
	"testing"

	"lowvcc/internal/circuit"
	"lowvcc/internal/trace"
	"lowvcc/internal/workload"
)

// TestRunWindowZeroEqualsRun: measuring from instruction 0 is exactly Run,
// in both warm modes (with nothing to warm they must coincide bitwise).
func TestRunWindowZeroEqualsRun(t *testing.T) {
	tr := workload.Generate(workload.SpecInt(), 8000, 3)
	for _, mode := range []circuit.Mode{circuit.ModeBaseline, circuit.ModeIRAW} {
		cfg := DefaultConfig(500, mode)
		a, err := MustNew(cfg).Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		for _, wm := range []WarmMode{WarmFunctional, WarmTimed} {
			b, err := MustNew(cfg).RunWindow(tr, 0, wm)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%v: RunWindow(tr, 0, %v) differs from Run(tr)", mode, wm)
			}
		}
	}
}

// TestRunWindowPartition: a run's counters split exactly at the window
// boundary — the warm span plus the measured span must reproduce the whole
// run's totals for every monotone counter, because both runs follow the
// identical trajectory and only the snapshot point differs.
func TestRunWindowPartition(t *testing.T) {
	tr := workload.Generate(workload.SpecInt(), 8000, 5)
	cfg := DefaultConfig(500, circuit.ModeIRAW)

	whole, err := MustNew(cfg).Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	const from = 3000
	win, err := MustNew(cfg).RunWindow(tr, from, WarmTimed)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := win.Run.Instructions, uint64(len(tr.Insts)-from); got != want {
		t.Errorf("measured instructions %d, want %d", got, want)
	}
	if win.Run.Cycles >= whole.Run.Cycles {
		t.Errorf("measured cycles %d not smaller than the whole run's %d", win.Run.Cycles, whole.Run.Cycles)
	}
	// The measured span is a suffix of the identical trajectory: every
	// counter must be bounded by the whole run's.
	if win.DL0.Accesses > whole.DL0.Accesses || win.IL0.Accesses > whole.IL0.Accesses ||
		win.Run.IssuedNOOPs > whole.Run.IssuedNOOPs {
		t.Error("window counters exceed the whole run's")
	}
	// Determinism of the boundary.
	again, err := MustNew(cfg).RunWindow(tr, from, WarmTimed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(win, again) {
		t.Error("RunWindow is not deterministic")
	}
}

// TestRunWindowValidation: out-of-range boundaries are rejected.
func TestRunWindowValidation(t *testing.T) {
	tr := workload.Generate(workload.SpecInt(), 100, 1)
	c := MustNew(DefaultConfig(500, circuit.ModeBaseline))
	for _, from := range []int{-1, 100, 101} {
		for _, wm := range []WarmMode{WarmFunctional, WarmTimed} {
			if _, err := c.RunWindow(tr, from, wm); err == nil {
				t.Errorf("RunWindow(tr, %d, %v) accepted an out-of-range boundary", from, wm)
			}
		}
	}
}

// TestMergeWindowResultsStitch: stitching the RunWindow results of a shard
// plan preserves instruction totals, recomputes Time from the stitched
// cycle count, and keeps the per-core DisabledLines constant un-summed.
func TestMergeWindowResultsStitch(t *testing.T) {
	tr := workload.Generate(workload.SpecInt(), 9000, 2)
	cfg := DefaultConfig(450, circuit.ModeFaultyBits) // nonzero DisabledLines
	windows := trace.Shard(tr, 3000, 1000)
	if len(windows) != 3 {
		t.Fatalf("got %d windows, want 3", len(windows))
	}
	results := make([]*Result, len(windows))
	var cycles uint64
	for i, w := range windows {
		c := MustNew(cfg)
		res, err := c.RunWindow(w.Trace, w.Warm, WarmTimed)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
		cycles += res.Run.Cycles
	}
	st := MergeWindowResults(tr.Name, results)
	if st.TraceName != tr.Name {
		t.Errorf("TraceName %q, want %q", st.TraceName, tr.Name)
	}
	if got := st.Run.Instructions; got != uint64(len(tr.Insts)) {
		t.Errorf("stitched instructions %d, want %d", got, len(tr.Insts))
	}
	if st.Run.Cycles != cycles {
		t.Errorf("stitched cycles %d, want %d", st.Run.Cycles, cycles)
	}
	if want := float64(cycles) * st.Plan.CycleTime; st.Time != want {
		t.Errorf("stitched Time %v, want cycles x CycleTime = %v", st.Time, want)
	}
	if st.DL0.DisabledLines != results[0].DL0.DisabledLines {
		t.Errorf("DisabledLines summed across windows: %d vs per-window %d",
			st.DL0.DisabledLines, results[0].DL0.DisabledLines)
	}

	// Single-window stitch is the identity (plus the parent name).
	c := MustNew(cfg)
	res, err := c.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	one := MergeWindowResults(tr.Name, []*Result{res})
	if !reflect.DeepEqual(one, res) {
		t.Error("single-window stitch differs from the window result")
	}
}

// TestStopCheck: an installed stop check aborts a run with its error, and
// removing it restores normal operation on the same core.
func TestStopCheck(t *testing.T) {
	tr := workload.Generate(workload.SpecInt(), 8000, 4)
	c := MustNew(DefaultConfig(500, circuit.ModeIRAW))
	boom := errors.New("preempted")
	c.SetStopCheck(func() error { return boom })
	if _, err := c.Run(tr); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	c.SetStopCheck(nil)
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(tr); err != nil {
		t.Fatalf("run after removing stop check: %v", err)
	}
}
