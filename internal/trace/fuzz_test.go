package trace

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// encodeRaw builds a trace file image by hand so tests can lie in any
// header field.
func encodeRaw(name string, count uint64, records []byte) []byte {
	var buf bytes.Buffer
	buf.Write(magic[:])
	binary.Write(&buf, binary.LittleEndian, uint16(len(name)))
	buf.WriteString(name)
	binary.Write(&buf, binary.LittleEndian, count)
	buf.Write(records)
	return buf.Bytes()
}

// TestReadDescriptiveErrors pins the loader's error taxonomy: every
// malformed shape a user can hand the CLI tools produces a distinct,
// descriptive message rather than a bare EOF or a panic.
func TestReadDescriptiveErrors(t *testing.T) {
	var valid bytes.Buffer
	if err := Write(&valid, sample()); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want string // substring of the error
	}{
		{"empty file", nil, "empty input"},
		{"partial magic", magic[:5], "truncated magic"},
		{"header cut at name length", magic[:], "name length"},
		{"header cut mid-name", encodeRaw("abcdef", 0, nil)[:12], "name"},
		{"header cut at count", append(append([]byte{}, magic[:]...), 0, 0), "count"},
		{"hostile count", encodeRaw("x", 1<<40, nil), "implausible instruction count"},
		{"count overstates records", encodeRaw("x", 1000, valid.Bytes()[len(valid.Bytes())-5*recordBytes:]), "truncated: record"},
		{"record cut mid-stream", valid.Bytes()[:len(valid.Bytes())-1], "truncated: record"},
	}
	for _, tc := range cases {
		_, err := Read(bytes.NewReader(tc.data))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestReadHostileCountAllocation: a header declaring the maximum plausible
// count backed by no records must fail fast without reserving memory for
// the declared count (the chunked decoder allocates only ahead of bytes
// actually read — this completing at all, rather than OOMing, is the
// assertion).
func TestReadHostileCountAllocation(t *testing.T) {
	if _, err := Read(bytes.NewReader(encodeRaw("big", 1<<31, nil))); err == nil {
		t.Fatal("headerless 2^31-record trace accepted")
	}
}

// FuzzRead throws corrupted, truncated and adversarial byte streams at the
// loader. The invariants: Read never panics (the harness would catch it),
// and anything it accepts is structurally valid and re-encodes to an image
// that decodes to the same trace.
func FuzzRead(f *testing.F) {
	var valid bytes.Buffer
	if err := Write(&valid, sample()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(magic[:5])
	f.Add(encodeRaw("x", 1<<40, nil))
	f.Add(encodeRaw("", 1, make([]byte, recordBytes)))
	f.Add(valid.Bytes()[:len(valid.Bytes())-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := range tr.Insts {
			if verr := tr.Insts[i].Validate(); verr != nil {
				t.Fatalf("accepted trace holds invalid inst %d: %v", i, verr)
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("accepted trace fails to re-encode: %v", err)
		}
		rt, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-encoded trace fails to decode: %v", err)
		}
		if rt.Name != tr.Name || len(rt.Insts) != len(tr.Insts) {
			t.Fatalf("round trip changed shape: %q/%d -> %q/%d",
				tr.Name, len(tr.Insts), rt.Name, len(rt.Insts))
		}
		for i := range tr.Insts {
			if rt.Insts[i] != tr.Insts[i] {
				t.Fatalf("round trip changed inst %d", i)
			}
		}
	})
}
