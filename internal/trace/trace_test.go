package trace

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"lowvcc/internal/isa"
)

func sample() *Trace {
	return &Trace{
		Name: "sample",
		Insts: []Inst{
			{PC: 0x400000, Op: isa.OpALU, Dst: 3, Src1: 1, Src2: 2},
			{PC: 0x400004, Op: isa.OpLoad, Dst: 4, Src1: 3, Src2: isa.RegNone, Addr: 0x10000000, Size: 8},
			{PC: 0x400008, Op: isa.OpStore, Dst: isa.RegNone, Src1: 3, Src2: 4, Addr: 0x10000040, Size: 8},
			{PC: 0x40000c, Op: isa.OpBranch, Dst: isa.RegNone, Src1: 4, Src2: isa.RegNone, Addr: 0x400000, Taken: true},
			{PC: 0x400000, Op: isa.OpNop, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name {
		t.Fatalf("name %q != %q", got.Name, tr.Name)
	}
	if len(got.Insts) != len(tr.Insts) {
		t.Fatalf("count %d != %d", len(got.Insts), len(tr.Insts))
	}
	for i := range tr.Insts {
		if got.Insts[i] != tr.Insts[i] {
			t.Fatalf("inst %d: %+v != %+v", i, got.Insts[i], tr.Insts[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(pcs [16]uint64, regs [16]uint8, taken [16]bool) bool {
		tr := &Trace{Name: "prop"}
		for i := 0; i < 16; i++ {
			tr.Insts = append(tr.Insts, Inst{
				PC:    pcs[i],
				Op:    isa.OpALU,
				Dst:   isa.Reg(regs[i] % isa.NumRegs),
				Src1:  isa.Reg(regs[(i+1)%16] % isa.NumRegs),
				Src2:  isa.RegNone,
				Taken: taken[i],
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		for i := range tr.Insts {
			if got.Insts[i] != tr.Insts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	_, err := Read(bytes.NewReader([]byte("NOTATRACEFILE....")))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{9, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestReadValidatesRecords(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the op byte of the first record (header is 8 magic + 2 len +
	// 6 name + 8 count = 24 bytes; op at offset 24+16).
	raw[24+16] = 0xEE
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt op accepted")
	}
}

func TestValidate(t *testing.T) {
	bad := []Inst{
		{Op: isa.Op(99)},
		{Op: isa.OpALU, Dst: 99, Src1: isa.RegNone, Src2: isa.RegNone},
		{Op: isa.OpALU, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}, // ALU needs dst
		{Op: isa.OpLoad, Dst: 1, Src1: 0, Src2: isa.RegNone, Size: 0},           // load needs size
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad inst %d accepted: %+v", i, in)
		}
	}
	good := Inst{Op: isa.OpALU, Dst: 1, Src1: 2, Src2: isa.RegNone}
	if err := good.Validate(); err != nil {
		t.Errorf("good inst rejected: %v", err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sample())
	if s.Count != 5 || s.Loads != 1 || s.Stores != 1 || s.Ctrl != 1 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if s.PerOp[isa.OpALU] != 1 || s.PerOp[isa.OpNop] != 1 {
		t.Fatalf("per-op wrong: %+v", s.PerOp)
	}
	if s.WithDst != 2 {
		t.Fatalf("WithDst = %d, want 2", s.WithDst)
	}
}
