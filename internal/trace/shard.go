package trace

import "fmt"

// Window is one sample window of a longer trace: a measured span plus a
// warm-up prefix of earlier instructions that is replayed before measurement
// starts, so the window begins with realistic cache, TLB and predictor
// state instead of a cold core. The window's Trace shares the parent's
// backing array — sharding never copies instructions.
//
// Windows follow the sample-window methodology of large-core evaluations:
// a long workload is partitioned into fixed-size measurement intervals,
// each preceded by a functional warm-up interval whose statistics are
// discarded. Window 0 has no prefix (there is nothing before instruction
// 0); its measured span starts cold, exactly like the head of a whole
// production trace.
type Window struct {
	// Trace is the executable sub-trace: Warm warm-up instructions followed
	// by the measured span.
	Trace *Trace
	// Warm is the number of leading instructions excluded from measurement.
	Warm int
	// Start and End delimit the measured span [Start, End) in the parent.
	Start, End int
	// Index and Count identify this window in the shard plan.
	Index, Count int
}

// Shard cuts t into deterministic sample windows of windowInsts measured
// instructions each (the last window takes the remainder), with up to
// warmInsts instructions of warm-up prefix per window; a negative
// warmInsts selects each window's entire prefix (everything before its
// measured span — affordable when the warm-up replay is functional). The
// plan is a pure function of (len(t.Insts), windowInsts, warmInsts): the
// same inputs always produce the same boundaries, which is what makes
// sharded execution independent of worker count and scheduling. A warm
// request longer than a window's prefix is capped at the prefix (window 0
// always has Warm 0: there is nothing before instruction 0).
//
// windowInsts <= 0 or >= len(t.Insts) disables sharding: the result is a
// single window covering the whole trace with no prefix, and the window's
// Trace is t itself, so downstream consumers follow the exact unsharded
// path.
func Shard(t *Trace, windowInsts, warmInsts int) []Window {
	n := len(t.Insts)
	if windowInsts <= 0 || windowInsts >= n {
		return []Window{{Trace: t, Warm: 0, Start: 0, End: n, Index: 0, Count: 1}}
	}
	if warmInsts < 0 {
		warmInsts = n // full prefix: the per-window cap below trims it to start
	}
	count := (n + windowInsts - 1) / windowInsts
	windows := make([]Window, 0, count)
	for i := 0; i < count; i++ {
		start := i * windowInsts
		end := start + windowInsts
		if end > n {
			end = n
		}
		warm := warmInsts
		if warm > start {
			warm = start
		}
		windows = append(windows, Window{
			Trace: &Trace{
				Name:  fmt.Sprintf("%s@%d/%d", t.Name, i, count),
				Insts: t.Insts[start-warm : end],
			},
			Warm:  warm,
			Start: start,
			End:   end,
			Index: i,
			Count: count,
		})
	}
	return windows
}
