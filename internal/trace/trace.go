// Package trace defines the instruction-trace representation that drives
// the simulator, with an in-memory form and a compact binary file format.
//
// The paper evaluates on 531 proprietary traces of 10M instructions each
// (Section 5.1); this reproduction generates synthetic traces (package
// workload) with the same role. The format carries exactly what the timing
// model needs: op class, register operands, memory address, and branch
// outcome.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"lowvcc/internal/isa"
)

// Inst is one dynamic instruction.
type Inst struct {
	// PC is the instruction address (drives IL0, ITLB, BP indexing).
	PC uint64
	// Addr is the effective address for loads/stores, and the target for
	// taken control transfers.
	Addr uint64
	// Op is the operation class.
	Op isa.Op
	// Dst is the destination register, or isa.RegNone.
	Dst isa.Reg
	// Src1, Src2 are source registers, or isa.RegNone.
	Src1, Src2 isa.Reg
	// Taken is the branch outcome (meaningful for OpBranch; calls and
	// returns are always taken).
	Taken bool
	// Size is the access width in bytes for loads/stores.
	Size uint8
}

// Validate checks structural well-formedness of an instruction.
func (in Inst) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("trace: invalid op %d", uint8(in.Op))
	}
	if in.Dst != isa.RegNone && !in.Dst.Valid() {
		return fmt.Errorf("trace: invalid dst %d", uint8(in.Dst))
	}
	if in.Src1 != isa.RegNone && !in.Src1.Valid() {
		return fmt.Errorf("trace: invalid src1 %d", uint8(in.Src1))
	}
	if in.Src2 != isa.RegNone && !in.Src2.Valid() {
		return fmt.Errorf("trace: invalid src2 %d", uint8(in.Src2))
	}
	if isa.WritesReg(in.Op) && in.Dst == isa.RegNone {
		return fmt.Errorf("trace: %v without destination", in.Op)
	}
	if isa.IsMem(in.Op) && in.Size == 0 {
		return fmt.Errorf("trace: %v with zero size", in.Op)
	}
	return nil
}

// Trace is an in-memory instruction sequence with an identifying name.
type Trace struct {
	Name  string
	Insts []Inst
}

// Len returns the number of instructions.
func (t *Trace) Len() int { return len(t.Insts) }

// Binary format:
//
//	magic   [8]byte  "LVCCTRC1"
//	nameLen uint16, name bytes
//	count   uint64
//	records count * 24 bytes each:
//	  pc uint64, addr uint64, op uint8, dst uint8, src1 uint8, src2 uint8,
//	  flags uint8 (bit0 = taken), size uint8, pad uint16
var magic = [8]byte{'L', 'V', 'C', 'C', 'T', 'R', 'C', '1'}

const recordBytes = 24

// ErrBadMagic is returned when a stream does not begin with the trace magic.
var ErrBadMagic = errors.New("trace: bad magic (not a lowvcc trace)")

// Write encodes t to w in the binary format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if len(t.Name) > 0xFFFF {
		return fmt.Errorf("trace: name too long (%d bytes)", len(t.Name))
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t.Insts))); err != nil {
		return err
	}
	var rec [recordBytes]byte
	for i := range t.Insts {
		in := &t.Insts[i]
		binary.LittleEndian.PutUint64(rec[0:], in.PC)
		binary.LittleEndian.PutUint64(rec[8:], in.Addr)
		rec[16] = uint8(in.Op)
		rec[17] = uint8(in.Dst)
		rec[18] = uint8(in.Src1)
		rec[19] = uint8(in.Src2)
		var flags uint8
		if in.Taken {
			flags |= 1
		}
		rec[20] = flags
		rec[21] = in.Size
		rec[22], rec[23] = 0, 0
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a trace from r. Instructions are validated on the way in so
// that a corrupt file fails loudly rather than poisoning an experiment:
// empty input, a truncated header or record stream, a hostile count and
// structurally invalid instructions all return descriptive errors, and the
// decoder never allocates ahead of the bytes it has actually read.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if n, err := io.ReadFull(br, m[:]); err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("trace: empty input (not a lowvcc trace)")
		}
		return nil, fmt.Errorf("trace: truncated magic (%d bytes, want 8): %w", n, err)
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	var nameLen uint16
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, fmt.Errorf("trace: truncated header: reading name length: %w", err)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: truncated header: reading %d-byte name: %w", nameLen, err)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trace: truncated header: reading count: %w", err)
	}
	const maxInsts = 1 << 31
	if count > maxInsts {
		return nil, fmt.Errorf("trace: implausible instruction count %d (max %d)", count, uint64(maxInsts))
	}
	// Grow in bounded chunks rather than trusting the declared count: a
	// truncated or hostile file fails at its first missing record instead
	// of reserving count * 48 bytes up front.
	const allocChunk = 1 << 16
	initial := count
	if initial > allocChunk {
		initial = allocChunk
	}
	t := &Trace{Name: string(name), Insts: make([]Inst, 0, initial)}
	var rec [recordBytes]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: truncated: record %d of declared %d: %w", i, count, err)
		}
		in := Inst{
			PC:    binary.LittleEndian.Uint64(rec[0:]),
			Addr:  binary.LittleEndian.Uint64(rec[8:]),
			Op:    isa.Op(rec[16]),
			Dst:   isa.Reg(rec[17]),
			Src1:  isa.Reg(rec[18]),
			Src2:  isa.Reg(rec[19]),
			Taken: rec[20]&1 != 0,
			Size:  rec[21],
		}
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		t.Insts = append(t.Insts, in)
	}
	return t, nil
}

// Stats summarizes the composition of a trace.
type Stats struct {
	Count   int
	PerOp   [isa.NumOps]int
	Loads   int
	Stores  int
	Ctrl    int
	Taken   int
	WithDst int
}

// Summarize computes composition statistics for t.
func Summarize(t *Trace) Stats {
	var s Stats
	s.Count = len(t.Insts)
	for i := range t.Insts {
		in := &t.Insts[i]
		s.PerOp[in.Op]++
		switch {
		case in.Op == isa.OpLoad:
			s.Loads++
		case in.Op == isa.OpStore:
			s.Stores++
		}
		if isa.IsCtrl(in.Op) {
			s.Ctrl++
			if in.Taken || in.Op != isa.OpBranch {
				s.Taken++
			}
		}
		if in.Dst != isa.RegNone {
			s.WithDst++
		}
	}
	return s
}
