package trace

import (
	"testing"

	"lowvcc/internal/isa"
)

func mkTrace(n int) *Trace {
	t := &Trace{Name: "shardable"}
	for i := 0; i < n; i++ {
		t.Insts = append(t.Insts, Inst{
			PC: uint64(0x1000 + 4*i), Op: isa.OpALU,
			Dst: isa.Reg(i % 8), Src1: isa.RegNone, Src2: isa.RegNone,
		})
	}
	return t
}

func TestShardDisabled(t *testing.T) {
	tr := mkTrace(100)
	for _, w := range []int{0, -1, 100, 500} {
		ws := Shard(tr, w, 25)
		if len(ws) != 1 {
			t.Fatalf("windowInsts=%d: got %d windows, want 1", w, len(ws))
		}
		if ws[0].Trace != tr {
			t.Errorf("windowInsts=%d: single window must be the parent trace itself", w)
		}
		if ws[0].Warm != 0 || ws[0].Start != 0 || ws[0].End != 100 {
			t.Errorf("windowInsts=%d: bad window %+v", w, ws[0])
		}
	}
}

func TestShardPartition(t *testing.T) {
	tr := mkTrace(1000)
	for _, tc := range []struct{ win, warm int }{{100, 0}, {100, 30}, {333, 50}, {999, 10}, {1, 5}} {
		ws := Shard(tr, tc.win, tc.warm)
		next := 0
		for i, w := range ws {
			if w.Index != i || w.Count != len(ws) {
				t.Fatalf("win=%d: window %d has Index=%d Count=%d", tc.win, i, w.Index, w.Count)
			}
			if w.Start != next {
				t.Fatalf("win=%d: window %d starts at %d, want %d (gap or overlap)", tc.win, i, w.Start, next)
			}
			if got := w.End - w.Start + w.Warm; got != len(w.Trace.Insts) {
				t.Fatalf("win=%d: window %d spans %d insts but carries %d", tc.win, i, got, len(w.Trace.Insts))
			}
			if w.Warm > tc.warm || (i > 0 && w.Warm != min(tc.warm, w.Start)) {
				t.Fatalf("win=%d: window %d warm=%d (want min(%d, %d))", tc.win, i, w.Warm, tc.warm, w.Start)
			}
			// The sub-trace must alias the parent's instructions exactly.
			if &w.Trace.Insts[0] != &tr.Insts[w.Start-w.Warm] {
				t.Fatalf("win=%d: window %d copies instructions instead of sharing", tc.win, i)
			}
			next = w.End
		}
		if next != 1000 {
			t.Fatalf("win=%d: windows cover [0, %d), want [0, 1000)", tc.win, next)
		}
	}
}

func TestShardDeterministic(t *testing.T) {
	tr := mkTrace(777)
	a := Shard(tr, 128, 32)
	b := Shard(tr, 128, 32)
	if len(a) != len(b) {
		t.Fatal("shard plan not deterministic")
	}
	for i := range a {
		if a[i].Start != b[i].Start || a[i].End != b[i].End || a[i].Warm != b[i].Warm ||
			a[i].Trace.Name != b[i].Trace.Name {
			t.Fatalf("window %d differs between identical Shard calls", i)
		}
	}
}
