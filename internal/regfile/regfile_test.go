package regfile

import (
	"testing"

	"lowvcc/internal/isa"
)

func TestWriteReadRoundTrip(t *testing.T) {
	f := New()
	f.Write(10, 3, 0xDEADBEEF)
	v, ok := f.Read(11, 3)
	if !ok || v != 0xDEADBEEF {
		t.Fatalf("Read = (%#x, %v)", v, ok)
	}
	if f.Stats().IntegrityErrors != 0 {
		t.Fatal("integrity error on clean round trip")
	}
}

func TestInterruptedWriteWindow(t *testing.T) {
	f := New()
	f.SetIRAW(true, 1)
	f.Write(100, 5, 42)
	// Stabilizing during 101; readable from 102.
	if f.Stable(101, 5) {
		t.Fatal("stable inside the window")
	}
	if v, ok := f.Read(101, 5); ok || v == 42 {
		t.Fatalf("in-window read = (%d, %v), want scrambled violation", v, ok)
	}
	if f.Stats().ViolationReads != 1 {
		t.Fatalf("ViolationReads = %d", f.Stats().ViolationReads)
	}
	// The destroyed value stays wrong until rewritten and stabilized.
	f.Write(200, 5, 43)
	if v, ok := f.Read(202, 5); !ok || v != 43 {
		t.Fatalf("post-rewrite read = (%d, %v)", v, ok)
	}
}

func TestBypassAlwaysSafe(t *testing.T) {
	f := New()
	f.SetIRAW(true, 2)
	f.Write(100, 7, 9)
	if v := f.ReadBypass(7); v != 9 {
		t.Fatalf("bypass = %d", v)
	}
	if f.Stats().BypassReads != 1 {
		t.Fatal("bypass not counted")
	}
	if f.Array().Stats().Reads != 0 {
		t.Fatal("bypass touched the array")
	}
}

func TestWritePipelinePortContention(t *testing.T) {
	f := New()
	f.SetWritePipeline(3)
	f.Write(10, 1, 1) // port busy through 12
	if w := f.WritePortWait(11); w != 2 {
		t.Fatalf("WritePortWait(11) = %d, want 2", w)
	}
	if w := f.WritePortWait(13); w != 0 {
		t.Fatalf("WritePortWait(13) = %d, want 0", w)
	}
	f.Write(13, 2, 2)
	f.NotePortContention(2)
	if f.Stats().PortContentionCycles != 2 {
		t.Fatal("contention not counted")
	}
}

func TestWriteIntoBusyPortPanics(t *testing.T) {
	f := New()
	f.SetWritePipeline(2)
	f.Write(10, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	f.Write(11, 2, 2)
}

func TestInvalidRegisterPanics(t *testing.T) {
	f := New()
	for _, fn := range []func(){
		func() { f.Write(1, isa.RegNone, 0) },
		func() { f.Read(1, isa.Reg(99)) },
		func() { f.ReadBypass(isa.RegNone) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestSetIRAWValidation(t *testing.T) {
	f := New()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	f.SetIRAW(true, 0)
}

func TestTotalBits(t *testing.T) {
	f := New()
	if f.TotalBits() != isa.NumRegs*8*8 {
		t.Fatalf("TotalBits = %d", f.TotalBits())
	}
}

// TestAllRegistersIndependent: writes to one register never disturb others
// (EntriesPerSet=1: no set-wide destruction in the RF).
func TestAllRegistersIndependent(t *testing.T) {
	f := New()
	f.SetIRAW(true, 2)
	for r := 0; r < isa.NumRegs; r++ {
		f.Write(int64(100+r*10), isa.Reg(r), uint64(r*7+1))
	}
	for r := 0; r < isa.NumRegs; r++ {
		if v, ok := f.Read(int64(1000+r), isa.Reg(r)); !ok || v != uint64(r*7+1) {
			t.Fatalf("r%d = (%d, %v)", r, v, ok)
		}
	}
}
