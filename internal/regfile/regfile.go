// Package regfile implements the register file of the in-order core on top
// of the sram substrate, together with the bypass network abstraction and
// the Extra-Bypass comparison design of Section 2.2.
//
// Timing contract with the issue logic (mirrors the scoreboard patterns):
// a producer issued at cycle c with execution latency L and `bypass` bypass
// levels writes the RF at cycle w = c+L+bypass. Consumers issuing during
// [c+L, c+L+bypass-1] take the value from the bypass network; consumers
// issuing at cycle s >= c+L+bypass read the RF at s+1. Under IRAW clocking
// the write is interrupted and the entry stabilizes through w+N, so reads
// at [w+1, w+N] — i.e. consumers issuing in the scoreboard's bubble — would
// hit a stabilizing entry.
package regfile

import (
	"encoding/binary"
	"fmt"

	"lowvcc/internal/isa"
	"lowvcc/internal/sram"
)

// Stats counts register-file activity.
type Stats struct {
	Reads       uint64
	Writes      uint64
	BypassReads uint64
	// ViolationReads counts reads of stabilizing entries (unsafe mode).
	ViolationReads uint64
	// IntegrityErrors counts clean reads whose value mismatched the oracle
	// (a simulator self-check; nonzero means a modelling bug).
	IntegrityErrors uint64
	// PortContentionCycles counts write-port waits (Extra-Bypass designs
	// pipeline writes over several cycles, serializing the port).
	PortContentionCycles uint64
}

// File is the architectural register file. Not goroutine-safe.
type File struct {
	arr *sram.Array
	// values is the oracle: the architecturally correct value of each
	// register, updated in issue order.
	values [isa.NumRegs]uint64

	interrupted bool
	n           int

	// writePipeCycles > 1 models the Extra-Bypass design: each write holds
	// the port for that many cycles.
	writePipeCycles int
	portFreeAt      int64

	stats Stats
}

// New returns a register file with all registers zero and stable.
func New() *File {
	return &File{
		arr: sram.MustNew(sram.Config{
			Name:          "RF",
			Entries:       isa.NumRegs,
			BytesPerEntry: 8,
			EntriesPerSet: 1,
		}),
		writePipeCycles: 1,
	}
}

// SetIRAW configures write interruption (IRAW clocking) with N
// stabilization cycles.
func (f *File) SetIRAW(interrupted bool, n int) {
	if interrupted && n < 1 {
		panic("regfile: interrupted writes need n >= 1")
	}
	f.interrupted = interrupted
	f.n = n
}

// SetWritePipeline configures the Extra-Bypass write pipelining depth
// (1 = conventional single-cycle port occupancy).
func (f *File) SetWritePipeline(cycles int) {
	if cycles < 1 {
		panic("regfile: write pipeline needs cycles >= 1")
	}
	f.writePipeCycles = cycles
}

// Stats returns a snapshot of the counters.
func (f *File) Stats() Stats { return f.stats }

// Array exposes the backing sram array (violation counters for tests).
func (f *File) Array() *sram.Array { return f.arr }

// WritePortWait returns how many cycles a write starting at `cycle` would
// wait for the write port (always 0 for single-cycle writes). The issue
// stage consults this to model Extra-Bypass write-port contention.
func (f *File) WritePortWait(cycle int64) int64 {
	if f.writePipeCycles == 1 || cycle > f.portFreeAt {
		return 0
	}
	return f.portFreeAt + 1 - cycle
}

// Write commits value to r at the given cycle. The caller must have
// resolved port contention via WritePortWait; Write panics on a busy port
// (a pipeline sequencing bug, not a runtime condition).
func (f *File) Write(cycle int64, r isa.Reg, value uint64) {
	if !r.Valid() {
		panic(fmt.Sprintf("regfile: write to %v", r))
	}
	if f.writePipeCycles > 1 {
		if cycle <= f.portFreeAt {
			panic("regfile: write port busy; caller must wait WritePortWait")
		}
		f.portFreeAt = cycle + int64(f.writePipeCycles) - 1
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], value)
	f.arr.Write(cycle, int(r), buf[:], f.interrupted, f.n)
	f.values[r] = value
	f.stats.Writes++
}

// NotePortContention charges write-port wait cycles to the statistics.
func (f *File) NotePortContention(cycles int64) {
	f.stats.PortContentionCycles += uint64(cycles)
}

// Read fetches r from the register file at the given cycle. ok reports a
// clean read; a read inside a stabilization window returns scrambled data
// (and destroys the entry) exactly as the sram substrate dictates.
func (f *File) Read(cycle int64, r isa.Reg) (value uint64, ok bool) {
	if !r.Valid() {
		panic(fmt.Sprintf("regfile: read of %v", r))
	}
	raw, ok := f.arr.Read(cycle, int(r))
	f.stats.Reads++
	if raw != nil {
		value = binary.BigEndian.Uint64(raw)
	}
	if !ok {
		f.stats.ViolationReads++
		return value, false
	}
	if value != f.values[r] {
		f.stats.IntegrityErrors++
	}
	return value, true
}

// ReadBypass returns r's architectural value through the bypass network
// (no SRAM access, always safe).
func (f *File) ReadBypass(r isa.Reg) uint64 {
	if !r.Valid() {
		panic(fmt.Sprintf("regfile: bypass read of %v", r))
	}
	f.stats.BypassReads++
	return f.values[r]
}

// Stable reports whether r is readable at the given cycle.
func (f *File) Stable(cycle int64, r isa.Reg) bool {
	return f.arr.Stable(cycle, int(r))
}

// TotalBits returns the RF storage for area accounting.
func (f *File) TotalBits() int { return f.arr.TotalBits() }
