// Package energy implements the power, energy and area model of the
// evaluation (Sections 5.1 and 5.3):
//
//   - dynamic energy scales with activity and quadratically with Vcc;
//   - leakage power grows about 10% per 25 mV of Vcc *decrease* in this
//     near-threshold range and contributes energy proportional to execution
//     time, calibrated so leakage is 10% of total energy at 600 mV;
//   - the IRAW hardware overhead is accounted as latch-equivalent bits with
//     a pessimistic 20x activity factor (the paper measures < 1% energy and
//     < 0.03% area).
package energy

import (
	"fmt"

	"lowvcc/internal/circuit"
)

// Activity is the per-run event census the dynamic model weighs.
type Activity struct {
	Instructions uint64
	IL0Accesses  uint64
	DL0Accesses  uint64
	UL1Accesses  uint64
	TLBAccesses  uint64
	RFReads      uint64
	RFWrites     uint64
	IQOps        uint64 // allocations + issues
	BPAccesses   uint64
	ExecOps      uint64
	MemAccesses  uint64 // off-chip transfers
}

// Weights are relative dynamic energies per event at the reference voltage
// (arbitrary units; only ratios matter for the reproduced figures).
type Weights struct {
	Instruction float64
	IL0Access   float64
	DL0Access   float64
	UL1Access   float64
	TLBAccess   float64
	RFRead      float64
	RFWrite     float64
	IQOp        float64
	BPAccess    float64
	ExecOp      float64
	MemAccess   float64
}

// DefaultWeights follows the usual energy ranking of core structures
// (off-chip ≫ UL1 ≫ L0 arrays ≫ register/queue/predictor ops).
func DefaultWeights() Weights {
	return Weights{
		Instruction: 1.0,
		IL0Access:   1.2,
		DL0Access:   1.5,
		UL1Access:   6.0,
		TLBAccess:   0.4,
		RFRead:      0.3,
		RFWrite:     0.4,
		IQOp:        0.3,
		BPAccess:    0.2,
		ExecOp:      0.8,
		MemAccess:   120.0,
	}
}

// weightedSum folds an activity census with the weights.
func weightedSum(a Activity, w Weights) float64 {
	return float64(a.Instructions)*w.Instruction +
		float64(a.IL0Accesses)*w.IL0Access +
		float64(a.DL0Accesses)*w.DL0Access +
		float64(a.UL1Accesses)*w.UL1Access +
		float64(a.TLBAccesses)*w.TLBAccess +
		float64(a.RFReads)*w.RFRead +
		float64(a.RFWrites)*w.RFWrite +
		float64(a.IQOps)*w.IQOp +
		float64(a.BPAccesses)*w.BPAccess +
		float64(a.ExecOps)*w.ExecOp +
		float64(a.MemAccesses)*w.MemAccess
}

// Model evaluates energies. Configure with New, then Calibrate against a
// reference run before asking for absolute energies.
type Model struct {
	w Weights
	// vRef is the voltage at which the leakage share is defined (600 mV).
	vRef circuit.Millivolts
	// leakFracAtRef is leakage's share of total energy for the calibration
	// run at vRef (the paper sets 10%).
	leakFracAtRef float64
	// growthPer25mV is the leakage-power growth factor per 25 mV decrease.
	growthPer25mV float64
	// leakPower is the calibrated leakage power at vRef (energy per time
	// unit); zero until Calibrate.
	leakPower  float64
	calibrated bool
}

// New returns an uncalibrated model.
func New(w Weights) *Model {
	return &Model{w: w, vRef: 600, leakFracAtRef: 0.10, growthPer25mV: 1.10}
}

// Calibrate fixes the leakage power so that the given reference activity
// and execution time at 600 mV yield the paper's 10% leakage share.
func (m *Model) Calibrate(refActivity Activity, refTime float64) error {
	if refTime <= 0 {
		return fmt.Errorf("energy: non-positive reference time %v", refTime)
	}
	dyn := m.Dynamic(m.vRef, refActivity, 0)
	if dyn <= 0 {
		return fmt.Errorf("energy: empty reference activity")
	}
	// leak / (dyn + leak) = frac  =>  leak = dyn * frac/(1-frac)
	leak := dyn * m.leakFracAtRef / (1 - m.leakFracAtRef)
	m.leakPower = leak / refTime
	m.calibrated = true
	return nil
}

// Calibrated reports whether Calibrate has run.
func (m *Model) Calibrated() bool { return m.calibrated }

// LeakagePower returns the leakage power at v (energy per time unit).
func (m *Model) LeakagePower(v circuit.Millivolts) float64 {
	if !m.calibrated {
		panic("energy: model not calibrated")
	}
	steps := float64(m.vRef-v) / 25
	p := m.leakPower
	for i := 0; i < int(steps+0.5); i++ {
		p *= m.growthPer25mV
	}
	for i := 0; i > int(steps-0.5); i-- {
		p /= m.growthPer25mV
	}
	return p
}

// Dynamic returns the dynamic energy of the activity at v.
// overheadFrac adds the IRAW hardware's share (see OverheadFraction).
func (m *Model) Dynamic(v circuit.Millivolts, a Activity, overheadFrac float64) float64 {
	scale := float64(v) * float64(v) / (float64(m.vRef) * float64(m.vRef))
	return weightedSum(a, m.w) * scale * (1 + overheadFrac)
}

// Breakdown is one run's energy decomposition.
type Breakdown struct {
	Dynamic float64
	Leakage float64
}

// Total returns dynamic plus leakage energy.
func (b Breakdown) Total() float64 { return b.Dynamic + b.Leakage }

// Energy returns the energy breakdown for a run at v that took `time` time
// units with the given activity. overheadFrac is the IRAW dynamic overhead
// (0 for baseline designs).
func (m *Model) Energy(v circuit.Millivolts, a Activity, time, overheadFrac float64) Breakdown {
	return Breakdown{
		Dynamic: m.Dynamic(v, a, overheadFrac),
		Leakage: m.LeakagePower(v) * time,
	}
}

// EDP returns the energy-delay product of a breakdown and a time.
func EDP(b Breakdown, time float64) float64 { return b.Total() * time }

// Area accounts the IRAW hardware additions against the core's SRAM
// capacity (Section 5.1: "area overhead has been estimated based on the
// size of the extra bits ... assuming latch-size bits").
type Area struct {
	// CoreSRAMBits is the total SRAM capacity of the core.
	CoreSRAMBits int
	// ExtraLatchBits is the IRAW addition in latch cells (scoreboard
	// extension, STable, port-stall counters, occupancy comparator).
	ExtraLatchBits int
	// LatchToSRAMRatio is the area of a latch relative to an SRAM bitcell.
	LatchToSRAMRatio float64
}

// OverheadFraction returns the area overhead of the IRAW hardware.
func (a Area) OverheadFraction() float64 {
	if a.CoreSRAMBits == 0 {
		return 0
	}
	return float64(a.ExtraLatchBits) * a.LatchToSRAMRatio / float64(a.CoreSRAMBits)
}

// EnergyOverheadFraction returns the pessimistic dynamic-energy overhead of
// the IRAW hardware: the bit-count share scaled by a 20x activity factor
// (Section 5.1).
func (a Area) EnergyOverheadFraction() float64 {
	if a.CoreSRAMBits == 0 {
		return 0
	}
	return 20 * float64(a.ExtraLatchBits) / float64(a.CoreSRAMBits)
}
