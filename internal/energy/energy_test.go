package energy

import (
	"math"
	"testing"

	"lowvcc/internal/circuit"
)

func refActivity() Activity {
	return Activity{
		Instructions: 100000, IL0Accesses: 50000, DL0Accesses: 30000,
		UL1Accesses: 3000, TLBAccesses: 80000, RFReads: 120000,
		RFWrites: 70000, IQOps: 200000, BPAccesses: 15000,
		ExecOps: 100000, MemAccesses: 100,
	}
}

func calibrated(t *testing.T) *Model {
	t.Helper()
	m := New(DefaultWeights())
	if err := m.Calibrate(refActivity(), 1000); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCalibrationLeakageShare(t *testing.T) {
	m := calibrated(t)
	// At the calibration point, leakage must be exactly 10% of total.
	b := m.Energy(600, refActivity(), 1000, 0)
	share := b.Leakage / b.Total()
	if math.Abs(share-0.10) > 1e-9 {
		t.Fatalf("leakage share at 600mV = %v, want 0.10", share)
	}
}

func TestUncalibratedPanics(t *testing.T) {
	m := New(DefaultWeights())
	if m.Calibrated() {
		t.Fatal("fresh model claims calibration")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.LeakagePower(500)
}

func TestCalibrateRejectsBadInput(t *testing.T) {
	m := New(DefaultWeights())
	if err := m.Calibrate(refActivity(), 0); err == nil {
		t.Error("zero time accepted")
	}
	if err := m.Calibrate(Activity{}, 100); err == nil {
		t.Error("empty activity accepted")
	}
}

// TestLeakageGrowth: +10% per 25 mV decrease (Section 5.3).
func TestLeakageGrowth(t *testing.T) {
	m := calibrated(t)
	p600 := m.LeakagePower(600)
	p575 := m.LeakagePower(575)
	if math.Abs(p575/p600-1.10) > 1e-9 {
		t.Fatalf("leakage growth per 25mV = %v, want 1.10", p575/p600)
	}
	p400 := m.LeakagePower(400)
	want := p600 * math.Pow(1.10, 8)
	if math.Abs(p400/want-1) > 1e-9 {
		t.Fatalf("leakage at 400mV = %v, want %v", p400, want)
	}
	// Above the reference it shrinks.
	p650 := m.LeakagePower(650)
	if math.Abs(p650/p600-1/1.21) > 1e-9 {
		t.Fatalf("leakage at 650mV = %v", p650/p600)
	}
}

// TestDynamicQuadratic: dynamic energy scales with Vcc^2.
func TestDynamicQuadratic(t *testing.T) {
	m := calibrated(t)
	a := refActivity()
	d600 := m.Dynamic(600, a, 0)
	d300x2 := m.Dynamic(circuit.Millivolts(400), a, 0)
	want := d600 * (400.0 * 400.0) / (600.0 * 600.0)
	if math.Abs(d300x2-want) > 1e-6*want {
		t.Fatalf("Dynamic(400) = %v, want %v", d300x2, want)
	}
}

func TestOverheadFraction(t *testing.T) {
	m := calibrated(t)
	a := refActivity()
	base := m.Dynamic(500, a, 0)
	ovh := m.Dynamic(500, a, 0.01)
	if math.Abs(ovh/base-1.01) > 1e-9 {
		t.Fatalf("overhead scaling = %v", ovh/base)
	}
}

func TestEDP(t *testing.T) {
	b := Breakdown{Dynamic: 3, Leakage: 1}
	if b.Total() != 4 {
		t.Fatal("total wrong")
	}
	if EDP(b, 2) != 8 {
		t.Fatal("EDP wrong")
	}
}

func TestAreaAccounting(t *testing.T) {
	a := Area{CoreSRAMBits: 1000000, ExtraLatchBits: 50, LatchToSRAMRatio: 4}
	if got := a.OverheadFraction(); math.Abs(got-0.0002) > 1e-12 {
		t.Fatalf("area overhead = %v", got)
	}
	if got := a.EnergyOverheadFraction(); math.Abs(got-0.001) > 1e-12 {
		t.Fatalf("energy overhead = %v", got)
	}
	empty := Area{}
	if empty.OverheadFraction() != 0 || empty.EnergyOverheadFraction() != 0 {
		t.Fatal("empty area not zero")
	}
}

// TestEDPTrendMatchesPaperShape: with a baseline whose time stretches by
// the write-delay ratio and an IRAW design at logic speed + stalls, the
// relative EDP must fall below 1 at low Vcc — the headline of Figure 12.
func TestEDPTrendMatchesPaperShape(t *testing.T) {
	m := calibrated(t)
	cm := circuit.Default()
	a := refActivity()
	refCycles := 1000.0 / cm.PlanBaseline(600).CycleTime // cycles of the calibration run

	relEDP := func(v circuit.Millivolts) float64 {
		base := cm.PlanBaseline(v)
		iraw := cm.PlanIRAW(v)
		stall := 1.0
		if iraw.IRAWActive {
			stall = 1.09 // ~9% stall cost while the mechanism is on
		}
		baseTime := refCycles * base.CycleTime
		irawTime := refCycles * stall * iraw.CycleTime
		be := m.Energy(v, a, baseTime, 0)
		ie := m.Energy(v, a, irawTime, 0.005)
		return ie.Total() * irawTime / (be.Total() * baseTime)
	}
	if e := relEDP(500); e < 0.5 || e > 0.75 {
		t.Errorf("relative EDP at 500mV = %.3f, want ~0.61 band", e)
	}
	if e := relEDP(400); e < 0.2 || e > 0.45 {
		t.Errorf("relative EDP at 400mV = %.3f, want ~0.33 band", e)
	}
	if e := relEDP(650); math.Abs(e-1) > 0.02 {
		t.Errorf("relative EDP at 650mV = %.3f, want ~1 (IRAW inactive)", e)
	}
}
