package sim

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// CellError is one (point, trace) cell's failure, carrying everything a
// sweep operator needs to locate and triage it: the cell's identity, the
// failing window, how many attempts were made, and — when the cause was a
// panic — the recovered value's stack. It is the Err payload of per-cell
// PointUpdates and the deterministic error batch collectors surface.
type CellError struct {
	// Label and TraceName identify the cell as the spec named it (Label
	// encodes the operating point, e.g. "sweep 500mV iraw").
	Label     string
	TraceName string
	// Point and Trace are the cell's indices: specs[Point].Traces[Trace].
	Point, Trace int
	// Window is the failing window's index; Windows the cell's shard-plan
	// size (0/1 for unsharded cells).
	Window, Windows int
	// Attempts counts executions of the failing window (1 = no retries).
	Attempts int
	// Panicked reports whether the cause was a recovered panic; Stack is
	// the goroutine stack captured at the recovery point.
	Panicked bool
	Stack    []byte
	// Err is the underlying cause.
	Err error
}

func (e *CellError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: cell %s %s", e.Label, e.TraceName)
	if e.Windows > 1 {
		fmt.Fprintf(&b, " window %d/%d", e.Window, e.Windows)
	}
	if e.Attempts > 1 {
		fmt.Fprintf(&b, " failed after %d attempts", e.Attempts)
	} else {
		b.WriteString(" failed")
	}
	if e.Panicked {
		b.WriteString(" (panic)")
	}
	fmt.Fprintf(&b, ": %v", e.Err)
	return b.String()
}

func (e *CellError) Unwrap() error { return e.Err }

// Reason is a compact cause for table cells and progress lines: the
// underlying error's message truncated to max runes (0 = no limit),
// without the identity prefix Error carries.
func (e *CellError) Reason(max int) string {
	msg := "unknown"
	if e.Err != nil {
		msg = e.Err.Error()
	}
	if e.Panicked {
		msg = "panic: " + msg
	}
	if max > 0 {
		if r := []rune(msg); len(r) > max {
			msg = string(r[:max-1]) + "…"
		}
	}
	return msg
}

// TimeoutError reports a cell that exhausted its per-point wall-clock
// budget (Runner.PointTimeout). Timeouts are transient: whether one fires
// depends on machine load, so the retry policy may retry the cell with a
// re-armed budget.
type TimeoutError struct {
	Label     string
	TraceName string
	Budget    time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("%s: %s: point timeout after %v", e.Label, e.TraceName, e.Budget)
}

// Transient marks the timeout retryable.
func (e *TimeoutError) Transient() bool { return true }

// panicError wraps a recovered panic value so it travels as an error with
// its stack.
type panicError struct {
	value any
	stack []byte
}

func (e *panicError) Error() string { return fmt.Sprintf("panic: %v", e.value) }

// IsTransient reports whether err (or anything it wraps) marks itself
// retryable via a `Transient() bool` method — the classification the
// runner's bounded-retry policy uses. Permanent failures (panics,
// configuration errors, simulation errors) and context cancellation are
// never transient.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// PartialError aggregates the failed cells of an allow-partial batch run.
// Batch collectors cannot render FAIL markers the way streaming tables
// can, so they surface every failure in one deterministic error instead
// (cells in (point, trace) order).
type PartialError struct {
	// Cells are the failures in (point, trace) order.
	Cells []*CellError
	// Total is the run's total cell count.
	Total int
}

func (e *PartialError) Error() string {
	if len(e.Cells) == 0 {
		return "sim: partial run (no failed cells)"
	}
	return fmt.Sprintf("sim: %d of %d cells failed; first: %v", len(e.Cells), e.Total, e.Cells[0])
}

func (e *PartialError) Unwrap() error {
	if len(e.Cells) == 0 {
		return nil
	}
	return e.Cells[0]
}
