package sim

import (
	"context"
	"math"
	"reflect"
	"testing"

	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
	"lowvcc/internal/trace"
	"lowvcc/internal/workload"
)

// TestFunctionalWarmShardingBias is the sharding acceptance test: on the
// production-style long trace, sample windows warmed with the default
// functional replay — now full-history (warm=-1) via the checkpoint-backed
// default — must land within 1% of the unsharded cold pass they
// approximate — versus the tens-of-percent pessimistic bias of the timed
// warm-up at its default prefix — and the improvement must not cost
// bitwise determinism.
func TestFunctionalWarmShardingBias(t *testing.T) {
	// The production-scale trace BenchmarkShardedLongTrace records: bias is
	// a property of warm-history length against the suite's working sets,
	// so the golden number is pinned at the scale the acceptance names.
	tr := workload.LongTrace(700000, 11)
	cfg := core.DefaultConfig(500, circuit.ModeIRAW)
	ctx := context.Background()

	cold, err := core.MustNew(cfg).Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	bias := func(r *core.Result) float64 {
		return 100 * (r.IPC() - cold.IPC()) / cold.IPC()
	}
	run := func(mode core.WarmMode) *core.Result {
		r := (&Runner{Workers: 4}).WithWindow(len(tr.Insts)/8, 0).WithWarmMode(mode)
		per, _, err := r.RunPoint(ctx, cfg, []*trace.Trace{tr})
		if err != nil {
			t.Fatal(err)
		}
		return per[0]
	}

	fun := run(core.WarmFunctional)
	if fun.Run.Instructions != uint64(len(tr.Insts)) {
		t.Fatalf("stitch measured %d instructions, want %d", fun.Run.Instructions, len(tr.Insts))
	}
	fb := bias(fun)
	if math.Abs(fb) > 1 {
		t.Errorf("functional-warm sharding bias %+.2f%% exceeds the 1%% golden tolerance", fb)
	}

	tim := run(core.WarmTimed)
	tb := bias(tim)
	if math.Abs(tb) <= math.Abs(fb) {
		t.Errorf("timed-warm bias %+.2f%% not worse than functional %+.2f%% — the replay buys nothing", tb, fb)
	}
	// The motivating gap: the timed default prefix leaves a cold-start
	// penalty an order of magnitude above the functional replay's residual.
	if math.Abs(tb) < 8 {
		t.Logf("note: timed-warm bias %+.2f%% is smaller than the documented tens of percent", tb)
	}

	// Determinism: the functional-warm stitch is worker- and repeat-
	// invariant.
	again := run(core.WarmFunctional)
	if !reflect.DeepEqual(fun, again) {
		t.Error("functional-warm sharded run is not deterministic")
	}
	r1 := (&Runner{Workers: 1}).WithWindow(len(tr.Insts)/8, 0)
	per, _, err := r1.RunPoint(ctx, cfg, []*trace.Trace{tr})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fun, per[0]) {
		t.Error("functional-warm sharded run depends on worker count")
	}
}
