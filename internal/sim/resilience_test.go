package sim

import (
	"context"
	"errors"
	"os"
	"os/exec"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
	"lowvcc/internal/journal"
)

// resilienceSuite is the small fixed workload every resilience test (and
// the crash-resume child process) shares, so parent and child agree on
// trace names and journal keys.
func resilienceSuite() SuiteSpec { return SuiteSpec{InstsPerTrace: 2000, SeedsPerProfile: 1} }

// TestPanicIsolationStrict: an injected panic in one cell surfaces as the
// stream's terminal *CellError — with the cell's identity, the Panicked
// flag and the recovered stack — instead of killing the process.
func TestPanicIsolationStrict(t *testing.T) {
	traces := resilienceSuite().Traces()
	specs := (&Runner{}).sweepSpecs(traces, streamModes, streamLevels)
	victim := specs[1] // baseline @ 400mV
	plan := NewFaultPlan(FaultRule{
		Label: victim.Label, TraceName: victim.Traces[0].Name,
		Window: -1, Kind: FaultPanic, Times: 1,
	})
	r := (&Runner{Workers: 2}).WithFaults(plan)
	_, err := r.Sweep(context.Background(), traces, streamModes, streamLevels)
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want a *CellError", err)
	}
	if !ce.Panicked || len(ce.Stack) == 0 {
		t.Errorf("CellError = %+v, want Panicked with a captured stack", ce)
	}
	if ce.Label != victim.Label || ce.TraceName != victim.Traces[0].Name {
		t.Errorf("CellError identity = (%q, %q), want (%q, %q)",
			ce.Label, ce.TraceName, victim.Label, victim.Traces[0].Name)
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Errorf("error %q does not mention the panic", err)
	}
}

// TestPanicIsolationPartial: with AllowPartial, an injected panic costs
// exactly its own cell — every other operating point completes
// bit-identical to a fault-free run, and the failure comes back as a
// one-cell *PartialError.
func TestPanicIsolationPartial(t *testing.T) {
	traces := resilienceSuite().Traces()
	clean, err := (&Runner{Workers: 2}).Sweep(context.Background(), traces, streamModes, streamLevels)
	if err != nil {
		t.Fatal(err)
	}

	specs := (&Runner{}).sweepSpecs(traces, streamModes, streamLevels)
	victim := specs[2] // iraw @ 500mV
	plan := NewFaultPlan(FaultRule{
		Label: victim.Label, TraceName: victim.Traces[0].Name,
		Window: -1, Kind: FaultPanic, Times: 1,
	})
	r := (&Runner{Workers: 2}).WithFaults(plan).WithAllowPartial(true)
	grid, err := r.Sweep(context.Background(), traces, streamModes, streamLevels)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a *PartialError", err)
	}
	if len(pe.Cells) != 1 || !pe.Cells[0].Panicked {
		t.Fatalf("PartialError = %+v, want exactly one panicked cell", pe)
	}
	failed := 0
	for mode, byVcc := range clean {
		for vcc, want := range byVcc {
			got, ok := grid[mode][vcc]
			if !ok {
				failed++
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%v %v: surviving point differs from the fault-free run", mode, vcc)
			}
		}
	}
	if failed != 1 {
		t.Errorf("%d operating points missing, want exactly the panicked one", failed)
	}
}

// TestRetryTransient pins the bounded-retry policy: transient faults heal
// within the budget (and the healed result is bit-identical to a clean
// run), exhaust the budget with the attempt count recorded, and never
// retry when the budget is zero.
func TestRetryTransient(t *testing.T) {
	traces := resilienceSuite().Traces()[:1]
	cfg := core.DefaultConfig(500, circuit.ModeIRAW)
	clean, _, err := (&Runner{Workers: 1}).RunPoint(context.Background(), cfg, traces)
	if err != nil {
		t.Fatal(err)
	}

	// Two injected transient failures, two retries: attempt 3 succeeds.
	plan := NewFaultPlan(FaultRule{Window: -1, Kind: FaultTransient, Times: 2})
	healed, _, err := (&Runner{Workers: 1}).WithFaults(plan).WithRetry(2, 0).
		RunPoint(context.Background(), cfg, traces)
	if err != nil {
		t.Fatalf("healed run failed: %v", err)
	}
	if !reflect.DeepEqual(healed, clean) {
		t.Error("result after transient retries differs from a clean run")
	}

	// Unlimited transient failures exhaust the budget: Retries+1 attempts.
	plan = NewFaultPlan(FaultRule{Window: -1, Kind: FaultTransient})
	_, _, err = (&Runner{Workers: 1}).WithFaults(plan).WithRetry(2, 0).
		RunPoint(context.Background(), cfg, traces)
	var ce *CellError
	if !errors.As(err, &ce) || ce.Attempts != 3 {
		t.Fatalf("err = %v, want a *CellError after 3 attempts", err)
	}
	if !IsTransient(err) {
		t.Error("exhausted transient failure lost its transient marker")
	}

	// Zero budget: permanent on the first transient failure.
	plan = NewFaultPlan(FaultRule{Window: -1, Kind: FaultTransient, Times: 1})
	_, _, err = (&Runner{Workers: 1}).WithFaults(plan).
		RunPoint(context.Background(), cfg, traces)
	if !errors.As(err, &ce) || ce.Attempts != 1 {
		t.Fatalf("err = %v, want a first-attempt *CellError with Retries=0", err)
	}

	// Permanent faults never consume retries.
	plan = NewFaultPlan(FaultRule{Window: -1, Kind: FaultError, Times: 1})
	_, _, err = (&Runner{Workers: 1}).WithFaults(plan).WithRetry(5, 0).
		RunPoint(context.Background(), cfg, traces)
	if !errors.As(err, &ce) || ce.Attempts != 1 {
		t.Fatalf("err = %v, want a permanent failure on attempt 1 despite retries", err)
	}
}

// TestJournalReplayBitIdentical: a journaled sweep replays entirely from
// disk on the next run — for any worker count — and the replayed grid is
// bit-identical to the simulated one.
func TestJournalReplayBitIdentical(t *testing.T) {
	traces := resilienceSuite().Traces()
	dir := t.TempDir()
	first, err := (&Runner{Workers: 2}).WithJournal(dir).
		Sweep(context.Background(), traces, streamModes, streamLevels)
	if err != nil {
		t.Fatal(err)
	}
	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := j.Len(); err != nil || n != len(streamModes)*len(streamLevels)*len(traces) {
		t.Fatalf("journal holds %d entries (err %v), want one per cell", n, err)
	}

	for _, workers := range []int{1, 4} {
		replayed, simulated := 0, 0
		r := (&Runner{Workers: workers}).WithJournal(dir).WithProgress(func(u PointUpdate) {
			if u.Replayed {
				replayed++
			} else {
				simulated++
			}
		})
		again, err := r.Sweep(context.Background(), traces, streamModes, streamLevels)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if simulated != 0 || replayed != len(streamModes)*len(streamLevels)*len(traces) {
			t.Errorf("workers=%d: %d replayed + %d simulated, want pure replay", workers, replayed, simulated)
		}
		if !reflect.DeepEqual(again, first) {
			t.Errorf("workers=%d: replayed grid differs from the simulated one", workers)
		}
	}
}

// TestJournalKeySensitivity: changing anything a Result depends on —
// config, windowing plan — must miss the journal, not replay stale
// numbers.
func TestJournalKeySensitivity(t *testing.T) {
	traces := resilienceSuite().Traces()[:1]
	dir := t.TempDir()
	cfg := core.DefaultConfig(500, circuit.ModeIRAW)
	if _, _, err := (&Runner{Workers: 1}).WithJournal(dir).
		RunPoint(context.Background(), cfg, traces); err != nil {
		t.Fatal(err)
	}
	countReplays := func(r *Runner) int {
		replayed := 0
		r.WithProgress(func(u PointUpdate) {
			if u.Replayed {
				replayed++
			}
		})
		if _, _, err := r.RunPoint(context.Background(), cfg, traces); err != nil {
			t.Fatal(err)
		}
		return replayed
	}
	if n := countReplays((&Runner{Workers: 1}).WithJournal(dir)); n != 1 {
		t.Fatalf("identical re-run replayed %d cells, want 1", n)
	}
	// A different windowing plan is a different result: must re-simulate.
	if n := countReplays((&Runner{Workers: 1}).WithJournal(dir).WithWindow(500, 100)); n != 0 {
		t.Errorf("changed window plan still replayed %d cells", n)
	}
	// A different operating point likewise.
	other := core.DefaultConfig(400, circuit.ModeIRAW)
	r := (&Runner{Workers: 1}).WithJournal(dir)
	replayed := 0
	r.WithProgress(func(u PointUpdate) {
		if u.Replayed {
			replayed++
		}
	})
	if _, _, err := r.RunPoint(context.Background(), other, traces); err != nil {
		t.Fatal(err)
	}
	if replayed != 0 {
		t.Errorf("changed config still replayed %d cells", replayed)
	}
}

// TestTruncatedJournalWriteResimulates: a torn journal write (crash
// mid-Put, injected via FaultTruncateJournal) is detected by the integrity
// check on the next run, which re-simulates that cell — and still lands
// bit-identical.
func TestTruncatedJournalWriteResimulates(t *testing.T) {
	traces := resilienceSuite().Traces()
	cfg := core.DefaultConfig(500, circuit.ModeIRAW)
	dir := t.TempDir()
	clean, _, err := (&Runner{Workers: 2}).RunPoint(context.Background(), cfg, traces)
	if err != nil {
		t.Fatal(err)
	}

	plan := NewFaultPlan(FaultRule{TraceName: traces[0].Name, Kind: FaultTruncateJournal, Times: 1})
	if _, _, err := (&Runner{Workers: 2}).WithJournal(dir).WithFaults(plan).
		RunPoint(context.Background(), cfg, traces); err != nil {
		t.Fatal(err)
	}

	replayed, simulated := 0, 0
	r := (&Runner{Workers: 2}).WithJournal(dir).WithProgress(func(u PointUpdate) {
		if u.Replayed {
			replayed++
		} else {
			simulated++
		}
	})
	again, _, err := r.RunPoint(context.Background(), cfg, traces)
	if err != nil {
		t.Fatal(err)
	}
	if simulated != 1 || replayed != len(traces)-1 {
		t.Errorf("%d simulated + %d replayed, want exactly the torn cell re-simulated", simulated, replayed)
	}
	if !reflect.DeepEqual(again, clean) {
		t.Error("recovery from a torn journal write changed results")
	}
}

// TestCrashResumeHelper is the child half of TestCrashResume: it runs a
// journaled sweep with a FaultExit rule on the last cell, so the process
// dies mid-sweep exactly like a kill -9 after journaling a prefix of the
// grid. Skipped unless spawned by the parent test.
func TestCrashResumeHelper(t *testing.T) {
	if os.Getenv("LOWVCC_CRASH_HELPER") != "1" {
		t.Skip("helper process for TestCrashResume")
	}
	workers, _ := strconv.Atoi(os.Getenv("LOWVCC_CRASH_WORKERS"))
	traces := resilienceSuite().Traces()
	specs := (&Runner{}).sweepSpecs(traces, streamModes, streamLevels)
	last := specs[len(specs)-1]
	plan := NewFaultPlan(FaultRule{
		Label: last.Label, TraceName: last.Traces[len(last.Traces)-1].Name,
		Window: -1, Kind: FaultExit, Times: 1,
	})
	r := (&Runner{Workers: workers}).
		WithJournal(os.Getenv("LOWVCC_CRASH_JOURNAL")).
		WithFaults(plan)
	_, _ = r.Sweep(context.Background(), traces, streamModes, streamLevels)
	// The fault must have killed the process above; exiting 0 tells the
	// parent it never fired.
	os.Exit(0)
}

// TestCrashResume is the crash-resume equivalence guarantee at the process
// level: a sweep killed mid-run (child process dies on FaultExit, exactly
// like kill -9) and re-invoked against the same journal produces output
// bit-identical to an uninterrupted run — for multiple worker counts, with
// the journaled prefix replayed rather than re-simulated.
func TestCrashResume(t *testing.T) {
	traces := resilienceSuite().Traces()
	ref, err := (&Runner{Workers: 2}).Sweep(context.Background(), traces, streamModes, streamLevels)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		dir := t.TempDir()
		cmd := exec.Command(os.Args[0], "-test.run=TestCrashResumeHelper$")
		cmd.Env = append(os.Environ(),
			"LOWVCC_CRASH_HELPER=1",
			"LOWVCC_CRASH_JOURNAL="+dir,
			"LOWVCC_CRASH_WORKERS="+strconv.Itoa(workers),
		)
		out, err := cmd.CombinedOutput()
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 3 {
			t.Fatalf("workers=%d: child exited err=%v (want code 3), output:\n%s", workers, err, out)
		}
		j, err := journal.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		n, err := j.Len()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 || n >= len(streamModes)*len(streamLevels)*len(traces) {
			t.Fatalf("workers=%d: crash left %d journaled cells, want a strict non-empty prefix", workers, n)
		}

		replayed := 0
		r := (&Runner{Workers: workers}).WithJournal(dir).WithProgress(func(u PointUpdate) {
			if u.Replayed {
				replayed++
			}
		})
		resumed, err := r.Sweep(context.Background(), traces, streamModes, streamLevels)
		if err != nil {
			t.Fatalf("workers=%d: resume failed: %v", workers, err)
		}
		if replayed != n {
			t.Errorf("workers=%d: resume replayed %d cells, journal held %d", workers, replayed, n)
		}
		if !reflect.DeepEqual(resumed, ref) {
			t.Errorf("workers=%d: resumed sweep is not bit-identical to the uninterrupted run", workers)
		}
	}
}

// TestStreamCancelNoGoroutineLeak: cancelling mid-stream, repeatedly,
// leaves no worker or producer goroutines behind (counting harness; the
// count must settle back to its pre-stream level).
func TestStreamCancelNoGoroutineLeak(t *testing.T) {
	traces := SuiteSpec{InstsPerTrace: 20000, SeedsPerProfile: 1}.Traces()
	specs := (&Runner{}).sweepSpecs(traces, streamModes, circuit.Levels())
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		ch := (&Runner{Workers: 4}).Stream(ctx, specs)
		if _, ok := <-ch; !ok {
			cancel()
			t.Fatal("stream closed before the first update")
		}
		cancel()
		for range ch {
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if now := runtime.NumGoroutine(); now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after cancelled streams", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStreamLevelsPartialRows: with AllowPartial, a failed operating point
// arrives in the level's fails map — identity intact for FAIL(reason)
// rendering — while the level's surviving modes and all other levels keep
// their points.
func TestStreamLevelsPartialRows(t *testing.T) {
	traces := resilienceSuite().Traces()
	specs := (&Runner{}).sweepSpecs(traces, streamModes, streamLevels)
	victim := specs[1] // baseline @ 400mV
	plan := NewFaultPlan(FaultRule{Label: victim.Label, Window: -1, Kind: FaultError})
	r := (&Runner{Workers: 2}).WithFaults(plan).WithAllowPartial(true)

	type row struct {
		pts   int
		fails int
	}
	rows := make(map[circuit.Millivolts]row)
	err := r.StreamLevels(context.Background(), traces, streamModes, streamLevels,
		func(v circuit.Millivolts, pts map[circuit.Mode]*Point, fails map[circuit.Mode]*CellError) error {
			rows[v] = row{pts: len(pts), fails: len(fails)}
			if ce := fails[circuit.ModeBaseline]; ce != nil {
				if ce.Label != victim.Label || ce.Reason(32) == "" {
					t.Errorf("fail cell = %+v, want victim identity and a reason", ce)
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := rows[500]; got.pts != 2 || got.fails != 0 {
		t.Errorf("level 500 = %+v, want both modes healthy", got)
	}
	if got := rows[400]; got.pts != 1 || got.fails != 1 {
		t.Errorf("level 400 = %+v, want one healthy mode and one FAIL", got)
	}
}

// TestRunPointPartialSlots: the batch collector in partial mode returns
// the surviving per-trace results (failed slots nil, aggregate nil) plus a
// deterministic *PartialError.
func TestRunPointPartialSlots(t *testing.T) {
	traces := resilienceSuite().Traces()
	cfg := core.DefaultConfig(500, circuit.ModeIRAW)
	clean, _, err := (&Runner{Workers: 2}).RunPoint(context.Background(), cfg, traces)
	if err != nil {
		t.Fatal(err)
	}
	plan := NewFaultPlan(FaultRule{TraceName: traces[1].Name, Window: -1, Kind: FaultError})
	results, agg, err := (&Runner{Workers: 2}).WithFaults(plan).WithAllowPartial(true).
		RunPoint(context.Background(), cfg, traces)
	var pe *PartialError
	if !errors.As(err, &pe) || len(pe.Cells) != 1 || pe.Cells[0].Trace != 1 {
		t.Fatalf("err = %v, want a one-cell *PartialError for trace 1", err)
	}
	if agg != nil {
		t.Error("partial run returned an aggregate over an incomplete trace set")
	}
	for i := range traces {
		switch {
		case i == 1 && results[i] != nil:
			t.Error("failed cell's slot is not nil")
		case i != 1 && !reflect.DeepEqual(results[i], clean[i]):
			t.Errorf("surviving trace %d differs from the clean run", i)
		}
	}
}
