package sim

import (
	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
	"lowvcc/internal/trace"
	"lowvcc/internal/workload"
)

// ReschedResult quantifies the compiler-assistance extension (Section 5.2
// leaves it as future work: "the compiler could help removing some of the
// register file induced stalls by scheduling instructions properly").
type ReschedResult struct {
	Vcc circuit.Millivolts
	// DelayedBefore/After: fraction of instructions delayed by RF IRAW.
	DelayedBefore, DelayedAfter float64
	// PerfGainBefore/After: IRAW speedup over baseline with the original
	// and rescheduled traces.
	PerfGainBefore, PerfGainAfter float64
}

// CompilerResched runs the IRAW core on the suite before and after the
// bubble-aware list scheduler widens producer→consumer distances.
func CompilerResched(traces []*trace.Trace, v circuit.Millivolts, minGap int) (*ReschedResult, error) {
	resched := make([]*trace.Trace, len(traces))
	for i, tr := range traces {
		resched[i] = workload.Reschedule(tr, minGap)
	}
	res := &ReschedResult{Vcc: v}

	baseCfg := core.DefaultConfig(v, circuit.ModeBaseline)
	irawCfg := core.DefaultConfig(v, circuit.ModeIRAW)

	_, base, err := RunPoint(baseCfg, traces)
	if err != nil {
		return nil, err
	}
	_, iraw, err := RunPoint(irawCfg, traces)
	if err != nil {
		return nil, err
	}
	_, baseR, err := RunPoint(baseCfg, resched)
	if err != nil {
		return nil, err
	}
	_, irawR, err := RunPoint(irawCfg, resched)
	if err != nil {
		return nil, err
	}
	res.DelayedBefore = iraw.Run.DelayedFraction()
	res.DelayedAfter = irawR.Run.DelayedFraction()
	res.PerfGainBefore = base.Time / iraw.Time
	res.PerfGainAfter = baseR.Time / irawR.Time
	return res, nil
}

// GateSensitivityRow reports the IQ occupancy-gate ablation at one
// configuration (Section 4.2's ICI/AI parameters).
type GateSensitivityRow struct {
	ICI, AI   int
	Threshold int
	IPC       float64
	GateShare float64
}

// GateSensitivity sweeps the IQ issue/allocation widths at v, showing how
// the occupancy threshold ICI + AI*N scales the gate's cost.
func GateSensitivity(traces []*trace.Trace, v circuit.Millivolts) ([]GateSensitivityRow, error) {
	configs := []struct{ ici, ai int }{{2, 2}, {2, 4}, {4, 2}, {4, 4}}
	rows := make([]GateSensitivityRow, 0, len(configs))
	for _, cc := range configs {
		cfg := core.DefaultConfig(v, circuit.ModeIRAW)
		cfg.IQ.ICI = cc.ici
		cfg.IQ.AI = cc.ai
		if cfg.Width > cc.ici {
			cfg.Width = cc.ici
		}
		_, agg, err := RunPoint(cfg, traces)
		if err != nil {
			return nil, err
		}
		n := agg.Plan.StabilizeCycles
		rows = append(rows, GateSensitivityRow{
			ICI: cc.ici, AI: cc.ai,
			Threshold: cc.ici + cc.ai*n,
			IPC:       agg.IPC(),
			GateShare: agg.Run.StallFraction(2), // stats.StallIQGate
		})
	}
	return rows, nil
}

// STableSizingRow reports the Store-Table sizing ablation.
type STableSizingRow struct {
	StoresPerCycle int
	Entries        int
	IPC            float64
	Forwards       uint64
	ReplayCycles   uint64
}

// STableSizing varies the table's commit width provisioning at v.
func STableSizing(traces []*trace.Trace, v circuit.Millivolts) ([]STableSizingRow, error) {
	rows := make([]STableSizingRow, 0, 3)
	for _, spc := range []int{1, 2, 4} {
		cfg := core.DefaultConfig(v, circuit.ModeIRAW)
		cfg.Hierarchy.StoresPerCycle = spc
		_, agg, err := RunPoint(cfg, traces)
		if err != nil {
			return nil, err
		}
		rows = append(rows, STableSizingRow{
			StoresPerCycle: spc,
			Entries:        spc * (cfg.Hierarchy.MaxStabilize + 1),
			IPC:            agg.IPC(),
			Forwards:       agg.Mem.STableForwards,
			ReplayCycles:   agg.Mem.DL0ReplayStallCycles,
		})
	}
	return rows, nil
}

// DeterminismResult compares the default (ignore violations) and the
// deterministic (testability) BP/RSB variants of Section 4.5.
type DeterminismResult struct {
	DefaultIPC, DeterministicIPC   float64
	DefaultConflicts               uint64
	DeterministicRSBStallCycles    uint64
	DeterministicPotentialCorrupts uint64
}

// DeterminismMode measures the cost of the deterministic RSB variant.
func DeterminismMode(traces []*trace.Trace, v circuit.Millivolts) (*DeterminismResult, error) {
	cfg := core.DefaultConfig(v, circuit.ModeIRAW)
	_, def, err := RunPoint(cfg, traces)
	if err != nil {
		return nil, err
	}
	cfg.Predictor.Deterministic = true
	_, det, err := RunPoint(cfg, traces)
	if err != nil {
		return nil, err
	}
	return &DeterminismResult{
		DefaultIPC:                     def.IPC(),
		DeterministicIPC:               det.IPC(),
		DefaultConflicts:               def.BP.RSBConflicts,
		DeterministicRSBStallCycles:    det.BP.RSBStallCycles,
		DeterministicPotentialCorrupts: det.BP.PotentialCorruptions,
	}, nil
}

// CombinedFaultyRow compares pure IRAW with the Section 4.4 combination
// (IRAW + tolerated faulty bits at 4 sigma) at one voltage.
type CombinedFaultyRow struct {
	Vcc              circuit.Millivolts
	IRAWFreqGain     float64
	CombinedFreqGain float64
	IRAWPerfGain     float64
	CombinedPerfGain float64
	DisabledLines    int
}

// CombinedFaulty measures the combination across the given levels.
func CombinedFaulty(traces []*trace.Trace, levels []circuit.Millivolts) ([]CombinedFaultyRow, error) {
	rows := make([]CombinedFaultyRow, 0, len(levels))
	for _, v := range levels {
		_, base, err := RunPoint(core.DefaultConfig(v, circuit.ModeBaseline), traces)
		if err != nil {
			return nil, err
		}
		_, iraw, err := RunPoint(core.DefaultConfig(v, circuit.ModeIRAW), traces)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig(v, circuit.ModeIRAW)
		cfg.CombineFaultyBits = true
		_, comb, err := RunPoint(cfg, traces)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CombinedFaultyRow{
			Vcc:              v,
			IRAWFreqGain:     iraw.Plan.FreqGain,
			CombinedFreqGain: comb.Plan.FreqGain,
			IRAWPerfGain:     base.Time / iraw.Time,
			CombinedPerfGain: base.Time / comb.Time,
			DisabledLines:    comb.IL0.DisabledLines + comb.DL0.DisabledLines + comb.UL1.DisabledLines,
		})
	}
	return rows, nil
}
