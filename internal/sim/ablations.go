package sim

import (
	"context"
	"fmt"

	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
	"lowvcc/internal/trace"
	"lowvcc/internal/workload"
)

// ReschedResult quantifies the compiler-assistance extension (Section 5.2
// leaves it as future work: "the compiler could help removing some of the
// register file induced stalls by scheduling instructions properly").
type ReschedResult struct {
	Vcc circuit.Millivolts
	// DelayedBefore/After: fraction of instructions delayed by RF IRAW.
	DelayedBefore, DelayedAfter float64
	// PerfGainBefore/After: IRAW speedup over baseline with the original
	// and rescheduled traces.
	PerfGainBefore, PerfGainAfter float64
}

// CompilerResched runs the IRAW core on the suite before and after the
// bubble-aware list scheduler widens producer→consumer distances. All four
// points (baseline/IRAW × original/rescheduled) fan out together.
func CompilerResched(traces []*trace.Trace, v circuit.Millivolts, minGap int) (*ReschedResult, error) {
	resched := make([]*trace.Trace, len(traces))
	for i, tr := range traces {
		resched[i] = workload.Reschedule(tr, minGap)
	}

	baseCfg := defaultRunner.pointConfig(v, circuit.ModeBaseline)
	irawCfg := defaultRunner.pointConfig(v, circuit.ModeIRAW)
	_, aggs, err := defaultRunner.runPoints(context.Background(), []PointSpec{
		{Label: fmt.Sprintf("resched %v baseline", v), Cfg: baseCfg, Traces: traces},
		{Label: fmt.Sprintf("resched %v iraw", v), Cfg: irawCfg, Traces: traces},
		{Label: fmt.Sprintf("resched %v baseline+sched", v), Cfg: baseCfg, Traces: resched},
		{Label: fmt.Sprintf("resched %v iraw+sched", v), Cfg: irawCfg, Traces: resched},
	})
	if err != nil {
		return nil, err
	}
	base, iraw, baseR, irawR := aggs[0], aggs[1], aggs[2], aggs[3]
	return &ReschedResult{
		Vcc:            v,
		DelayedBefore:  iraw.Run.DelayedFraction(),
		DelayedAfter:   irawR.Run.DelayedFraction(),
		PerfGainBefore: base.Time / iraw.Time,
		PerfGainAfter:  baseR.Time / irawR.Time,
	}, nil
}

// GateSensitivityRow reports the IQ occupancy-gate ablation at one
// configuration (Section 4.2's ICI/AI parameters).
type GateSensitivityRow struct {
	ICI, AI   int
	Threshold int
	IPC       float64
	GateShare float64
}

// GateSensitivity sweeps the IQ issue/allocation widths at v, showing how
// the occupancy threshold ICI + AI*N scales the gate's cost. All four
// configurations fan out together through one runPoints call, so the pool
// never drains between points.
func GateSensitivity(traces []*trace.Trace, v circuit.Millivolts) ([]GateSensitivityRow, error) {
	configs := []struct{ ici, ai int }{{2, 2}, {2, 4}, {4, 2}, {4, 4}}
	specs := make([]PointSpec, 0, len(configs))
	for _, cc := range configs {
		cfg := defaultRunner.pointConfig(v, circuit.ModeIRAW)
		cfg.IQ.ICI = cc.ici
		cfg.IQ.AI = cc.ai
		if cfg.Width > cc.ici {
			cfg.Width = cc.ici
		}
		specs = append(specs, PointSpec{
			Label: fmt.Sprintf("gate %v ici=%d ai=%d", v, cc.ici, cc.ai),
			Cfg:   cfg, Traces: traces,
		})
	}
	_, aggs, err := defaultRunner.runPoints(context.Background(), specs)
	if err != nil {
		return nil, err
	}
	rows := make([]GateSensitivityRow, 0, len(configs))
	for i, cc := range configs {
		agg := aggs[i]
		n := agg.Plan.StabilizeCycles
		rows = append(rows, GateSensitivityRow{
			ICI: cc.ici, AI: cc.ai,
			Threshold: cc.ici + cc.ai*n,
			IPC:       agg.IPC(),
			GateShare: agg.Run.StallFraction(2), // stats.StallIQGate
		})
	}
	return rows, nil
}

// STableSizingRow reports the Store-Table sizing ablation.
type STableSizingRow struct {
	StoresPerCycle int
	Entries        int
	IPC            float64
	Forwards       uint64
	ReplayCycles   uint64
}

// STableSizing varies the table's commit width provisioning at v. The
// three sizings fan out together through one runPoints call.
func STableSizing(traces []*trace.Trace, v circuit.Millivolts) ([]STableSizingRow, error) {
	widths := []int{1, 2, 4}
	specs := make([]PointSpec, 0, len(widths))
	for _, spc := range widths {
		cfg := defaultRunner.pointConfig(v, circuit.ModeIRAW)
		cfg.Hierarchy.StoresPerCycle = spc
		specs = append(specs, PointSpec{
			Label: fmt.Sprintf("stable %v spc=%d", v, spc),
			Cfg:   cfg, Traces: traces,
		})
	}
	_, aggs, err := defaultRunner.runPoints(context.Background(), specs)
	if err != nil {
		return nil, err
	}
	rows := make([]STableSizingRow, 0, len(widths))
	for i, spc := range widths {
		agg := aggs[i]
		rows = append(rows, STableSizingRow{
			StoresPerCycle: spc,
			Entries:        spc * (specs[i].Cfg.Hierarchy.MaxStabilize + 1),
			IPC:            agg.IPC(),
			Forwards:       agg.Mem.STableForwards,
			ReplayCycles:   agg.Mem.DL0ReplayStallCycles,
		})
	}
	return rows, nil
}

// WidthAblationRow is one (width, voltage) cell of the core-width
// ablation: the baseline and IRAW designs simulated at that fetch/issue
// width.
type WidthAblationRow struct {
	Width   int
	Vcc     circuit.Millivolts
	IPCBase float64
	IPCIRAW float64
	// PerfGain is T_baseline / T_IRAW at this width and voltage — how the
	// IRAW mechanism's cost scales with issue width.
	PerfGain float64
	// WidthGain is T_baseline(widths[0]) / T_baseline(width) at this
	// voltage — the baseline speedup over the narrowest swept width
	// (1.0 for the first width).
	WidthGain float64
}

// WidthAblation sweeps the mechanism comparison across fetch/issue widths:
// every (width, voltage, design) config is built with
// core.DefaultConfigWidth, so wide cores get matching IQ issue/alloc
// bounds. All cells fan out together through one runPoints call. The rows
// come back in (width, voltage) order.
func WidthAblation(ctx context.Context, traces []*trace.Trace, widths []int, levels []circuit.Millivolts) ([]WidthAblationRow, error) {
	modes := []circuit.Mode{circuit.ModeBaseline, circuit.ModeIRAW}
	specs := make([]PointSpec, 0, len(modes)*len(widths)*len(levels))
	for _, w := range widths {
		for _, v := range levels {
			for _, mode := range modes {
				specs = append(specs, PointSpec{
					Label:  fmt.Sprintf("width %d %v %v", w, v, mode),
					Cfg:    core.DefaultConfigWidth(v, mode, w),
					Traces: traces,
				})
			}
		}
	}
	_, aggs, err := defaultRunner.runPoints(ctx, specs)
	if err != nil {
		return nil, err
	}
	rows := make([]WidthAblationRow, 0, len(widths)*len(levels))
	for wi, w := range widths {
		for li, v := range levels {
			base := aggs[2*(wi*len(levels)+li)]
			iraw := aggs[2*(wi*len(levels)+li)+1]
			ref := aggs[2*li] // widths[0] baseline at this voltage
			rows = append(rows, WidthAblationRow{
				Width: w, Vcc: v,
				IPCBase: base.IPC(), IPCIRAW: iraw.IPC(),
				PerfGain:  base.Time / iraw.Time,
				WidthGain: ref.Time / base.Time,
			})
		}
	}
	return rows, nil
}

// DeterminismResult compares the default (ignore violations) and the
// deterministic (testability) BP/RSB variants of Section 4.5.
type DeterminismResult struct {
	DefaultIPC, DeterministicIPC   float64
	DefaultConflicts               uint64
	DeterministicRSBStallCycles    uint64
	DeterministicPotentialCorrupts uint64
}

// DeterminismMode measures the cost of the deterministic RSB variant. Both
// variants fan out together through one runPoints call.
func DeterminismMode(traces []*trace.Trace, v circuit.Millivolts) (*DeterminismResult, error) {
	defCfg := defaultRunner.pointConfig(v, circuit.ModeIRAW)
	detCfg := defaultRunner.pointConfig(v, circuit.ModeIRAW)
	detCfg.Predictor.Deterministic = true
	_, aggs, err := defaultRunner.runPoints(context.Background(), []PointSpec{
		{Label: fmt.Sprintf("determinism %v default", v), Cfg: defCfg, Traces: traces},
		{Label: fmt.Sprintf("determinism %v deterministic", v), Cfg: detCfg, Traces: traces},
	})
	if err != nil {
		return nil, err
	}
	def, det := aggs[0], aggs[1]
	return &DeterminismResult{
		DefaultIPC:                     def.IPC(),
		DeterministicIPC:               det.IPC(),
		DefaultConflicts:               def.BP.RSBConflicts,
		DeterministicRSBStallCycles:    det.BP.RSBStallCycles,
		DeterministicPotentialCorrupts: det.BP.PotentialCorruptions,
	}, nil
}

// CombinedFaultyRow compares pure IRAW with the Section 4.4 combination
// (IRAW + tolerated faulty bits at 4 sigma) at one voltage.
type CombinedFaultyRow struct {
	Vcc              circuit.Millivolts
	IRAWFreqGain     float64
	CombinedFreqGain float64
	IRAWPerfGain     float64
	CombinedPerfGain float64
	DisabledLines    int
}

// CombinedFaulty measures the combination across the given levels. All
// three designs at every level fan out together across the pool.
func CombinedFaulty(traces []*trace.Trace, levels []circuit.Millivolts) ([]CombinedFaultyRow, error) {
	specs := make([]PointSpec, 0, 3*len(levels))
	for _, v := range levels {
		comb := defaultRunner.pointConfig(v, circuit.ModeIRAW)
		comb.CombineFaultyBits = true
		specs = append(specs,
			PointSpec{Label: fmt.Sprintf("combined %v baseline", v), Cfg: defaultRunner.pointConfig(v, circuit.ModeBaseline), Traces: traces},
			PointSpec{Label: fmt.Sprintf("combined %v iraw", v), Cfg: defaultRunner.pointConfig(v, circuit.ModeIRAW), Traces: traces},
			PointSpec{Label: fmt.Sprintf("combined %v iraw+faulty", v), Cfg: comb, Traces: traces},
		)
	}
	_, aggs, err := defaultRunner.runPoints(context.Background(), specs)
	if err != nil {
		return nil, err
	}
	rows := make([]CombinedFaultyRow, 0, len(levels))
	for i, v := range levels {
		base, iraw, comb := aggs[3*i], aggs[3*i+1], aggs[3*i+2]
		rows = append(rows, CombinedFaultyRow{
			Vcc:              v,
			IRAWFreqGain:     iraw.Plan.FreqGain,
			CombinedFreqGain: comb.Plan.FreqGain,
			IRAWPerfGain:     base.Time / iraw.Time,
			CombinedPerfGain: base.Time / comb.Time,
			DisabledLines:    comb.IL0.DisabledLines + comb.DL0.DisabledLines + comb.UL1.DisabledLines,
		})
	}
	return rows, nil
}
