package sim

import (
	"context"
	"reflect"
	"testing"

	"lowvcc/internal/circuit"
	"lowvcc/internal/ckpt"
	"lowvcc/internal/core"
	"lowvcc/internal/trace"
	"lowvcc/internal/workload"
)

// TestPlanFor: the effective windowing plan is the documented pure function
// of (WindowInsts, WarmInsts, WarmMode, trace length).
func TestPlanFor(t *testing.T) {
	for _, tc := range []struct {
		name              string
		win, warm         int
		mode              core.WarmMode
		n                 int
		wantWin, wantWarm int
	}{
		{"opt-out", -1, 0, core.WarmFunctional, 1_000_000, 0, 0},
		{"auto short trace", 0, 0, core.WarmFunctional, autoWindowThreshold - 1, 0, 0},
		{"auto long trace", 0, 0, core.WarmFunctional, 700_000, 87_500, -1},
		{"auto exact threshold", 0, 0, core.WarmFunctional, autoWindowThreshold, 25_000, -1},
		{"explicit window functional", 10_000, 0, core.WarmFunctional, 700_000, 10_000, -1},
		{"explicit window timed", 10_000, 0, core.WarmTimed, 700_000, 10_000, 2_500},
		{"explicit warm", 10_000, 3_000, core.WarmFunctional, 700_000, 10_000, 3_000},
		{"full-history spelled out", 10_000, -1, core.WarmTimed, 700_000, 10_000, -1},
		{"auto long trace timed", 0, 0, core.WarmTimed, 700_000, 87_500, 21_875},
	} {
		r := (&Runner{}).WithWindow(tc.win, tc.warm).WithWarmMode(tc.mode)
		win, warm := r.planFor(tc.n)
		if win != tc.wantWin || warm != tc.wantWarm {
			t.Errorf("%s: planFor(%d) = (%d, %d), want (%d, %d)",
				tc.name, tc.n, win, warm, tc.wantWin, tc.wantWarm)
		}
	}
}

// TestCheckpointEquivalence: sharded execution with the checkpoint store —
// cold and with a hot store — is bit-identical to the live-replay reference
// path (DisableCheckpoints), and the hot pass actually restores.
func TestCheckpointEquivalence(t *testing.T) {
	tr := workload.LongTrace(60_000, 3)
	cfg := core.DefaultConfig(500, circuit.ModeIRAW)
	ctx := context.Background()

	ref, _, err := (&Runner{Workers: 2}).WithWindow(15_000, 0).
		WithDisableCheckpoints(true).
		RunCell(ctx, "ref", cfg, tr)
	if err != nil {
		t.Fatal(err)
	}

	st, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		res, _, err := (&Runner{Workers: 2}).WithWindow(15_000, 0).
			WithCheckpointStore(st).
			RunCell(ctx, "ckpt", cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("round %d: checkpointed run differs from live-replay reference", round)
		}
	}
	s := st.Stats()
	if s.Captures == 0 {
		t.Errorf("no snapshots captured (stats %+v)", s)
	}
	if s.Restores == 0 {
		t.Errorf("hot store never restored (stats %+v)", s)
	}

	// Vcc-independence at the runner level: a different operating point
	// restores the very same snapshots instead of capturing new ones.
	before := st.Stats().Captures
	cfg2 := core.DefaultConfig(650, circuit.ModeBaseline)
	if _, _, err := (&Runner{Workers: 2}).WithWindow(15_000, 0).
		WithCheckpointStore(st).
		RunCell(ctx, "ckpt-650", cfg2, tr); err != nil {
		t.Fatal(err)
	}
	if after := st.Stats().Captures; after != before {
		t.Errorf("sweeping a second operating point captured %d new snapshots; want full reuse", after-before)
	}
}

// TestAutoWindowing: with the zero-value runner, long traces shard into
// autoWindowCount windows and short traces stay unsharded; a negative
// window opts sharded execution out entirely.
func TestAutoWindowing(t *testing.T) {
	// LongTrace's phase rounding can shave a few instructions off the
	// requested length, so aim comfortably past the threshold.
	long := workload.LongTrace(autoWindowThreshold+10_000, 5)
	if len(long.Insts) < autoWindowThreshold {
		t.Fatalf("test trace too short: %d insts", len(long.Insts))
	}
	cfg := core.DefaultConfig(500, circuit.ModeBaseline)

	windowsOf := func(r *Runner, tr *trace.Trace) int {
		t.Helper()
		var n int
		for u := range r.Stream(context.Background(), []PointSpec{{Label: "auto", Cfg: cfg, Traces: []*trace.Trace{tr}}}) {
			if u.Err != nil {
				t.Fatal(u.Err)
			}
			n = u.Windows
		}
		return n
	}

	if got := windowsOf(&Runner{}, long); got != autoWindowCount {
		t.Errorf("auto windows on a long trace = %d, want %d", got, autoWindowCount)
	}
	if got := windowsOf((&Runner{}).WithWindow(-1, 0), long); got != 1 {
		t.Errorf("windows with explicit opt-out = %d, want 1", got)
	}
	short := workload.Suite(20_000, 1)[0]
	if got := windowsOf(&Runner{}, short); got != 1 {
		t.Errorf("auto windows on a short trace = %d, want 1", got)
	}
}
