package sim

import (
	"context"
	"fmt"
	"sort"

	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
	"lowvcc/internal/trace"
)

// pointSpec is one operating point to simulate: a core configuration over
// an ordered trace list, plus a label for error reporting.
type pointSpec struct {
	label  string
	cfg    core.Config
	traces []*trace.Trace
}

// runPoints simulates every (point, trace) cell of specs on the runner's
// pool and returns, per point, the per-trace results (in trace order) and
// their aggregate.
//
// The fan-out unit is one cell — fresh-core warm-up pass plus measured
// pass of one trace — so a sweep of M points over T traces exposes M*T
// independent jobs. Each worker keeps one Core and reuses it via
// (*core.Core).Reset while consecutive jobs stay on the same point, which
// removes the per-trace construction cost on large sweeps. Results are
// merged after the pool drains, in (point, trace-index) order, so the
// output is bit-identical to the sequential path regardless of worker
// count or scheduling.
func (r *Runner) runPoints(ctx context.Context, specs []pointSpec) ([][]*core.Result, []*core.Result, error) {
	offsets := make([]int, len(specs)+1)
	for i, s := range specs {
		offsets[i+1] = offsets[i] + len(s.traces)
	}
	n := offsets[len(specs)]

	results := make([][]*core.Result, len(specs))
	for i, s := range specs {
		results[i] = make([]*core.Result, len(s.traces))
	}

	// Worker-local core cache: reused across cells of the same point. The
	// pool size is resolved exactly once and shared with forEach so the
	// cache and the pool can never disagree (SetWorkers racing a running
	// sweep must not index out of range).
	workers := r.workers(n)
	type workerCore struct {
		point int
		c     *core.Core
	}
	cores := make([]workerCore, workers)
	for i := range cores {
		cores[i].point = -1
	}

	err := r.forEach(ctx, workers, n, func(worker, job int) error {
		// Map the flat job index back to its (point, trace) cell: the
		// last point whose first cell is at or before job.
		point := sort.SearchInts(offsets, job+1) - 1
		spec := &specs[point]
		tr := spec.traces[job-offsets[point]]

		wc := &cores[worker]
		if wc.point == point && wc.c != nil {
			if err := wc.c.Reset(); err != nil {
				return fmt.Errorf("%s: reset: %w", spec.label, err)
			}
		} else {
			c, err := core.New(spec.cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", spec.label, err)
			}
			wc.point, wc.c = point, c
		}

		if _, err := wc.c.Run(tr); err != nil { // warm-up pass
			return fmt.Errorf("%s: warmup %s: %w", spec.label, tr.Name, err)
		}
		res, err := wc.c.Run(tr)
		if err != nil {
			return fmt.Errorf("%s: measure %s: %w", spec.label, tr.Name, err)
		}
		results[point][job-offsets[point]] = res
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	aggs := make([]*core.Result, len(specs))
	for i := range specs {
		aggs[i] = core.MergeResults(results[i])
	}
	return results, aggs, nil
}

// RunPoint simulates every trace at one operating point (fresh core,
// warm-up pass, measured pass per trace) across the runner's pool and
// returns the per-trace results plus their aggregate.
func (r *Runner) RunPoint(ctx context.Context, cfg core.Config, traces []*trace.Trace) ([]*core.Result, *core.Result, error) {
	results, aggs, err := r.runPoints(ctx, []pointSpec{{label: "point", cfg: cfg, traces: traces}})
	if err != nil {
		return nil, nil, err
	}
	return results[0], aggs[0], nil
}

// Sweep runs the suite for each voltage level in each mode on the runner's
// pool. The result is indexed [mode][voltage].
func (r *Runner) Sweep(ctx context.Context, traces []*trace.Trace, modes []circuit.Mode, levels []circuit.Millivolts) (map[circuit.Mode]map[circuit.Millivolts]*Point, error) {
	specs := make([]pointSpec, 0, len(modes)*len(levels))
	for _, mode := range modes {
		for _, v := range levels {
			specs = append(specs, pointSpec{
				label:  fmt.Sprintf("sweep %v %v", v, mode),
				cfg:    core.DefaultConfig(v, mode),
				traces: traces,
			})
		}
	}
	_, aggs, err := r.runPoints(ctx, specs)
	if err != nil {
		return nil, err
	}
	out := make(map[circuit.Mode]map[circuit.Millivolts]*Point, len(modes))
	i := 0
	for _, mode := range modes {
		out[mode] = make(map[circuit.Millivolts]*Point, len(levels))
		for _, v := range levels {
			out[mode][v] = &Point{Vcc: v, Mode: mode, Agg: aggs[i]}
			i++
		}
	}
	return out, nil
}
