package sim

import (
	"context"
	"errors"
	"sort"

	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
	"lowvcc/internal/trace"
)

// runPoints is the batch collector over Stream: it drains the update
// channel, places each cell's result into its (point, trace) slot, and
// aggregates per point after the stream closes — always in (point,
// trace-index) order, so the output is bit-identical to the sequential
// path regardless of worker count, scheduling or emission order.
//
// With AllowPartial, failed cells leave nil result slots and runPoints
// returns the completed grid alongside a *PartialError listing every
// failure in (point, trace) order; per-point aggregates are skipped (nil),
// since an aggregate over a partial trace set would silently misrepresent
// the point.
func (r *Runner) runPoints(ctx context.Context, specs []PointSpec) ([][]*core.Result, []*core.Result, error) {
	results := make([][]*core.Result, len(specs))
	total := 0
	for i := range specs {
		results[i] = make([]*core.Result, len(specs[i].Traces))
		total += len(specs[i].Traces)
	}

	var firstErr error
	var failed []*CellError
	for u := range r.Stream(ctx, specs) {
		if u.Err != nil {
			if u.Point >= 0 {
				// Isolated cell failure (AllowPartial): record and keep
				// collecting.
				failed = append(failed, asCellError(u.Err))
				continue
			}
			if firstErr == nil {
				firstErr = u.Err
			}
			continue
		}
		results[u.Point][u.Trace] = u.Result
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	// The terminal update can be dropped when cancellation races the drain;
	// the context still records why the stream stopped short.
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if len(failed) > 0 {
		sort.Slice(failed, func(i, j int) bool {
			if failed[i].Point != failed[j].Point {
				return failed[i].Point < failed[j].Point
			}
			return failed[i].Trace < failed[j].Trace
		})
		return results, nil, &PartialError{Cells: failed, Total: total}
	}

	aggs := make([]*core.Result, len(specs))
	for i := range specs {
		aggs[i] = core.MergeResults(results[i])
	}
	return results, aggs, nil
}

// RunPoint simulates every trace at one operating point (fresh core,
// warm-up pass, measured pass per trace — or sharded sample windows when
// windowing is enabled) across the runner's pool and returns the per-trace
// results plus their aggregate. In partial mode a *PartialError comes back
// alongside the completed per-trace results (failed slots nil, aggregate
// nil).
func (r *Runner) RunPoint(ctx context.Context, cfg core.Config, traces []*trace.Trace) ([]*core.Result, *core.Result, error) {
	results, aggs, err := r.runPoints(ctx, []PointSpec{{Label: "point", Cfg: cfg, Traces: traces}})
	if err != nil {
		var pe *PartialError
		if errors.As(err, &pe) && len(results) == 1 {
			return results[0], nil, err
		}
		return nil, nil, err
	}
	return results[0], aggs[0], nil
}

// Sweep runs the suite for each voltage level in each mode on the runner's
// pool, collecting the streaming sweep into a grid. The result is indexed
// [mode][voltage]. In partial mode, failed operating points are simply
// absent from the grid and a *PartialError (cells in point order) comes
// back alongside the completed points.
func (r *Runner) Sweep(ctx context.Context, traces []*trace.Trace, modes []circuit.Mode, levels []circuit.Millivolts) (map[circuit.Mode]map[circuit.Millivolts]*Point, error) {
	out := make(map[circuit.Mode]map[circuit.Millivolts]*Point, len(modes))
	for _, mode := range modes {
		out[mode] = make(map[circuit.Millivolts]*Point, len(levels))
	}
	var firstErr error
	var failed []*CellError
	for u := range r.SweepStream(ctx, traces, modes, levels) {
		if u.Err != nil {
			if !u.Terminal {
				failed = append(failed, asCellError(u.Err))
				continue
			}
			if firstErr == nil {
				firstErr = u.Err
			}
			continue
		}
		out[u.Mode][u.Vcc] = u.Point
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(failed) > 0 {
		sort.Slice(failed, func(i, j int) bool {
			if failed[i].Point != failed[j].Point {
				return failed[i].Point < failed[j].Point
			}
			return failed[i].Trace < failed[j].Trace
		})
		return out, &PartialError{Cells: failed, Total: len(modes) * len(levels)}
	}
	return out, nil
}
