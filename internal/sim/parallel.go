package sim

import (
	"context"

	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
	"lowvcc/internal/trace"
)

// runPoints is the batch collector over Stream: it drains the update
// channel, places each cell's result into its (point, trace) slot, and
// aggregates per point after the stream closes — always in (point,
// trace-index) order, so the output is bit-identical to the sequential
// path regardless of worker count, scheduling or emission order.
func (r *Runner) runPoints(ctx context.Context, specs []PointSpec) ([][]*core.Result, []*core.Result, error) {
	results := make([][]*core.Result, len(specs))
	for i := range specs {
		results[i] = make([]*core.Result, len(specs[i].Traces))
	}

	var firstErr error
	for u := range r.Stream(ctx, specs) {
		if u.Err != nil {
			if firstErr == nil {
				firstErr = u.Err
			}
			continue
		}
		results[u.Point][u.Trace] = u.Result
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	// The terminal update can be dropped when cancellation races the drain;
	// the context still records why the stream stopped short.
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	aggs := make([]*core.Result, len(specs))
	for i := range specs {
		aggs[i] = core.MergeResults(results[i])
	}
	return results, aggs, nil
}

// RunPoint simulates every trace at one operating point (fresh core,
// warm-up pass, measured pass per trace — or sharded sample windows when
// windowing is enabled) across the runner's pool and returns the per-trace
// results plus their aggregate.
func (r *Runner) RunPoint(ctx context.Context, cfg core.Config, traces []*trace.Trace) ([]*core.Result, *core.Result, error) {
	results, aggs, err := r.runPoints(ctx, []PointSpec{{Label: "point", Cfg: cfg, Traces: traces}})
	if err != nil {
		return nil, nil, err
	}
	return results[0], aggs[0], nil
}

// Sweep runs the suite for each voltage level in each mode on the runner's
// pool, collecting the streaming sweep into a grid. The result is indexed
// [mode][voltage].
func (r *Runner) Sweep(ctx context.Context, traces []*trace.Trace, modes []circuit.Mode, levels []circuit.Millivolts) (map[circuit.Mode]map[circuit.Millivolts]*Point, error) {
	out := make(map[circuit.Mode]map[circuit.Millivolts]*Point, len(modes))
	for _, mode := range modes {
		out[mode] = make(map[circuit.Millivolts]*Point, len(levels))
	}
	var firstErr error
	for u := range r.SweepStream(ctx, traces, modes, levels) {
		if u.Err != nil {
			if firstErr == nil {
				firstErr = u.Err
			}
			continue
		}
		out[u.Mode][u.Vcc] = u.Point
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
