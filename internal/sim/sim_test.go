package sim

import (
	"testing"

	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
)

// tinySuite keeps harness tests fast while covering every workload class.
func tinySuite() SuiteSpec { return SuiteSpec{InstsPerTrace: 8000, SeedsPerProfile: 1} }

func TestFigure1Shape(t *testing.T) {
	rows := Figure1()
	if len(rows) != 13 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Vcc != 700 || rows[0].Phase != 1.0 {
		t.Fatalf("normalization wrong: %+v", rows[0])
	}
	// Write crosses the phase near 600 mV with WL activation.
	for _, r := range rows {
		switch {
		case r.Vcc >= 625 && r.WriteWithWL >= r.Phase:
			t.Errorf("%v: write+WL critical too early", r.Vcc)
		case r.Vcc <= 575 && r.WriteWithWL <= r.Phase:
			t.Errorf("%v: write+WL not critical", r.Vcc)
		}
		if r.ReadWithWL >= r.Phase {
			t.Errorf("%v: read path critical (8-T reads never limit)", r.Vcc)
		}
	}
}

func TestFigure11aShape(t *testing.T) {
	rows := Figure11a()
	for _, r := range rows {
		if r.IRAWCycle > r.BaselineCycle+1e-12 {
			t.Errorf("%v: IRAW cycle above baseline", r.Vcc)
		}
		if r.LogicCycle > r.IRAWCycle+1e-12 {
			t.Errorf("%v: logic cycle above IRAW cycle", r.Vcc)
		}
	}
	last := rows[len(rows)-1] // 400 mV
	if last.BaselineCycle < 30 {
		t.Errorf("baseline cycle at 400mV = %.1f, want the Figure 11a blow-up (~40)", last.BaselineCycle)
	}
}

func TestRunPointAggregates(t *testing.T) {
	traces := tinySuite().Traces()
	results, agg, err := RunPoint(core.DefaultConfig(500, circuit.ModeIRAW), traces)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(traces) {
		t.Fatalf("results = %d", len(results))
	}
	var insts uint64
	for _, r := range results {
		insts += r.Run.Instructions
	}
	if agg.Run.Instructions != insts {
		t.Fatal("aggregate does not sum instructions")
	}
	if agg.CorruptConsumed != 0 {
		t.Fatalf("suite consumed %d corrupt values", agg.CorruptConsumed)
	}
}

// TestHeadlineAnchors is the central reproduction check at the two voltages
// the paper quotes: frequency gains must match the paper exactly (they are
// circuit-model properties) and speedups must land in the right band.
func TestHeadlineAnchors(t *testing.T) {
	traces := tinySuite().Traces()
	for _, c := range []struct {
		v                 circuit.Millivolts
		wantFreq, minPerf float64
	}{
		{500, 1.57, 1.30},
		{400, 1.99, 1.60},
	} {
		sweep, err := Sweep(traces, []circuit.Mode{circuit.ModeBaseline, circuit.ModeIRAW}, []circuit.Millivolts{c.v})
		if err != nil {
			t.Fatal(err)
		}
		iraw := sweep[circuit.ModeIRAW][c.v].Agg
		base := sweep[circuit.ModeBaseline][c.v].Agg
		if g := iraw.Plan.FreqGain; g < c.wantFreq-0.02 || g > c.wantFreq+0.02 {
			t.Errorf("%v: freq gain %.3f, want %.2f", c.v, g, c.wantFreq)
		}
		perf := base.Time / iraw.Time
		if perf < c.minPerf || perf >= iraw.Plan.FreqGain {
			t.Errorf("%v: perf gain %.3f outside (%.2f, freq %.2f)", c.v, perf, c.minPerf, iraw.Plan.FreqGain)
		}
	}
}

func TestBreakdownOrdering(t *testing.T) {
	traces := tinySuite().Traces()
	bd, err := Breakdown(traces, 575)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's decomposition: RF dominates, DL0 small, rest tiny.
	if bd.RFShare <= bd.DL0Share {
		t.Errorf("RF share %.4f not above DL0 share %.4f", bd.RFShare, bd.DL0Share)
	}
	if bd.PerfDrop < 0.03 || bd.PerfDrop > 0.15 {
		t.Errorf("perf drop %.3f outside the paper's band", bd.PerfDrop)
	}
	if bd.DelayedFraction < 0.08 || bd.DelayedFraction > 0.25 {
		t.Errorf("delayed fraction %.3f implausible", bd.DelayedFraction)
	}
}

func TestValidateExperiment(t *testing.T) {
	traces := SuiteSpec{InstsPerTrace: 6000, SeedsPerProfile: 1}.Traces()
	res, err := Validate(traces, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.SafeCorrupt != 0 || res.SafeIntegrity != 0 {
		t.Errorf("safe run corrupt=%d integrity=%d", res.SafeCorrupt, res.SafeIntegrity)
	}
	if res.UnsafeViolations == 0 || res.UnsafeCorrupt == 0 {
		t.Errorf("unsafe run clean: violations=%d corrupt=%d", res.UnsafeViolations, res.UnsafeCorrupt)
	}
}

func TestIRAWOverheadsWithinPaperBounds(t *testing.T) {
	a := IRAWOverheads()
	if f := a.OverheadFraction(); f >= 0.0003 {
		t.Errorf("area overhead %.5f%% >= 0.03%%", 100*f)
	}
	if f := a.EnergyOverheadFraction(); f >= 0.01 {
		t.Errorf("energy overhead %.4f%% >= 1%%", 100*f)
	}
}

func TestNSweepMonotone(t *testing.T) {
	traces := SuiteSpec{InstsPerTrace: 6000, SeedsPerProfile: 1}.Traces()
	rows, err := NSweep(traces, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].PerfGain > rows[i-1].PerfGain+1e-9 {
			t.Errorf("perf gain grew with N: %+v", rows)
		}
		if rows[i].Delayed < rows[i-1].Delayed-1e-9 {
			t.Errorf("delayed fraction shrank with N: %+v", rows)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	traces := SuiteSpec{InstsPerTrace: 6000, SeedsPerProfile: 1}.Traces()
	res, err := Table1(traces, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var iraw, fb Table1Row
	for _, r := range res.Rows {
		switch r.Mode {
		case circuit.ModeIRAW:
			iraw = r
		case circuit.ModeFaultyBits:
			fb = r
		}
	}
	if !iraw.WorksForAllBlocks || !iraw.Feasible {
		t.Error("IRAW row mischaracterized")
	}
	if fb.WorksForAllBlocks || fb.Feasible {
		t.Error("faulty-bits row mischaracterized")
	}
	if iraw.FreqGain <= fb.FreqGain {
		t.Errorf("IRAW freq gain %.2f not above faulty-bits %.2f", iraw.FreqGain, fb.FreqGain)
	}
	if iraw.PerfGain <= 1 {
		t.Errorf("IRAW perf gain %.2f", iraw.PerfGain)
	}
}
