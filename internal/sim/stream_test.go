package sim

import (
	"context"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
	"lowvcc/internal/trace"
	"lowvcc/internal/workload"
)

var streamModes = []circuit.Mode{circuit.ModeBaseline, circuit.ModeIRAW}
var streamLevels = []circuit.Millivolts{500, 400}

// TestStreamingBatchEquivalence is the tentpole guarantee: for every
// (worker count x window configuration) combination, Sweep — now a
// collector over Stream — produces bit-identical output to the one-worker
// run of the same window configuration; and both no-windowing spellings
// (WindowInsts 0 and WindowInsts >= trace length) equal each other, i.e.
// the exact pre-streaming batch semantics.
func TestStreamingBatchEquivalence(t *testing.T) {
	traces := SuiteSpec{InstsPerTrace: 4000, SeedsPerProfile: 1}.Traces()

	type cfg struct{ win, warm int }
	configs := []cfg{
		{0, 0},       // windowing off
		{1 << 20, 0}, // window >= trace: must equal windowing off bitwise
		{1500, 0},    // sharded, default warm (win/4)
		{1500, 500},  // sharded, explicit warm
		{997, 100},   // sharded, uneven tail window
	}
	sweeps := make(map[cfg]map[circuit.Mode]map[circuit.Millivolts]*Point)
	for _, c := range configs {
		var ref map[circuit.Mode]map[circuit.Millivolts]*Point
		for _, workers := range []int{1, 3, runtime.NumCPU() + 2} {
			r := (&Runner{Workers: workers}).WithWindow(c.win, c.warm)
			got, err := r.Sweep(context.Background(), traces, streamModes, streamLevels)
			if err != nil {
				t.Fatalf("win=%d warm=%d workers=%d: %v", c.win, c.warm, workers, err)
			}
			if ref == nil {
				ref = got
				continue
			}
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("win=%d warm=%d: workers=%d output differs from workers=1", c.win, c.warm, workers)
			}
		}
		sweeps[c] = ref
	}
	// The two no-windowing spellings must agree bitwise.
	if !reflect.DeepEqual(sweeps[cfg{0, 0}], sweeps[cfg{1 << 20, 0}]) {
		t.Error("WindowInsts >= trace length does not reproduce the unsharded path")
	}
}

// TestShardStitchGolden pins the stitched sample-window numbers against
// whole-trace runs. With a single window the stitch must be bit-identical
// to the unsharded warm-up + measure run. With real sharding the stitch
// approximates a single production pass over the long trace: it must
// preserve the instruction count and clock plan exactly, be deterministic
// across repeats, and keep IPC within the documented sampling tolerance of
// the cold whole-trace pass — the bias is pessimistic (each window re-pays
// cold-start misses its warm-up prefix cannot cover) and shrinks as
// windows grow, which the test also asserts.
func TestShardStitchGolden(t *testing.T) {
	tr := workload.Generate(workload.SpecInt(), 96000, 7)
	cfg := core.DefaultConfig(500, circuit.ModeIRAW)

	whole, wholeAgg, err := (&Runner{Workers: 2}).RunPoint(context.Background(), cfg, []*trace.Trace{tr})
	if err != nil {
		t.Fatal(err)
	}

	// Single window covering the trace: the "stitch" is the whole-trace run.
	one, oneAgg, err := (&Runner{Workers: 2}).WithWindow(1<<20, 0).RunPoint(context.Background(), cfg, []*trace.Trace{tr})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(whole, one) || !reflect.DeepEqual(wholeAgg, oneAgg) {
		t.Fatal("single-window shard-stitch is not bit-identical to the whole-trace run")
	}

	// The sharded reference: one cold pass over the whole trace (the
	// production-trace semantics sample windows approximate).
	cold, err := core.MustNew(cfg).Run(tr)
	if err != nil {
		t.Fatal(err)
	}

	shard := func(win, warm int) []*core.Result {
		s, _, err := (&Runner{Workers: 4}).WithWindow(win, warm).RunPoint(context.Background(), cfg, []*trace.Trace{tr})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1 := shard(12000, 3000)
	s2 := shard(12000, 3000)
	if !reflect.DeepEqual(s1, s2) {
		t.Error("sharded run is not deterministic across repeats")
	}
	if got, want := s1[0].Run.Instructions, cold.Run.Instructions; got != want {
		t.Errorf("stitched instruction count %d != whole-trace %d", got, want)
	}
	if s1[0].TraceName != tr.Name {
		t.Errorf("stitched TraceName %q, want parent %q", s1[0].TraceName, tr.Name)
	}
	if s1[0].Plan != cold.Plan {
		t.Error("stitched clock plan differs from whole-trace plan")
	}

	bias := func(r *core.Result) float64 { return (r.IPC() - cold.IPC()) / cold.IPC() }
	small, large := bias(s1[0]), bias(shard(48000, 12000)[0])
	if small > 0.01 {
		t.Errorf("small-window bias %+.2f%% should be pessimistic", 100*small)
	}
	if large < small {
		t.Errorf("bias must shrink with window size: %+.2f%% (48k) vs %+.2f%% (12k)", 100*large, 100*small)
	}
	if large < -0.15 || large > 0.15 {
		t.Errorf("48k-window IPC bias %+.2f%% outside the 15%% sampling tolerance", 100*large)
	}
}

// TestStreamEmitsIncrementally proves the stream is actually streaming:
// the first cell update arrives while later cells are still unfinished
// (Done strictly less than Total on the first receive).
func TestStreamEmitsIncrementally(t *testing.T) {
	traces := SuiteSpec{InstsPerTrace: 3000, SeedsPerProfile: 1}.Traces()
	specs := (&Runner{}).sweepSpecs(traces, streamModes, streamLevels)
	r := &Runner{Workers: 1}
	first := true
	for u := range r.Stream(context.Background(), specs) {
		if u.Err != nil {
			t.Fatal(u.Err)
		}
		if first {
			first = false
			if u.Done >= u.Total {
				t.Fatalf("first update reports Done=%d Total=%d: nothing streamed", u.Done, u.Total)
			}
		}
	}
	if first {
		t.Fatal("stream produced no updates")
	}
}

// TestStreamCancellation proves the stream drains promptly on context
// cancellation: cancelling after the first update must close the channel
// quickly (the stop check preempts in-flight simulations) and surface
// context.Canceled to batch collectors.
func TestStreamCancellation(t *testing.T) {
	traces := SuiteSpec{InstsPerTrace: 20000, SeedsPerProfile: 2}.Traces()
	specs := (&Runner{}).sweepSpecs(traces, streamModes, circuit.Levels())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ch := (&Runner{Workers: 2}).Stream(ctx, specs)
	if _, ok := <-ch; !ok {
		t.Fatal("stream closed before the first update")
	}
	cancel()
	start := time.Now()
	for range ch {
		// drain whatever was already in flight
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("stream took %v to drain after cancellation", waited)
	}

	// The batch collector path reports the context error.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, _, err := (&Runner{Workers: 2}).RunPoint(ctx2, core.DefaultConfig(500, circuit.ModeIRAW), traces); err != context.Canceled {
		t.Fatalf("cancelled RunPoint err = %v, want context.Canceled", err)
	}
}

// TestPointTimeout: an absurdly small per-point budget aborts the sweep
// with a descriptive timeout error from inside the run loop.
func TestPointTimeout(t *testing.T) {
	traces := SuiteSpec{InstsPerTrace: 60000, SeedsPerProfile: 1}.Traces()
	r := (&Runner{Workers: 1}).WithPointTimeout(time.Nanosecond)
	_, _, err := r.RunPoint(context.Background(), core.DefaultConfig(500, circuit.ModeIRAW), traces)
	if err == nil || !strings.Contains(err.Error(), "point timeout") {
		t.Fatalf("err = %v, want a point-timeout error", err)
	}
}

// TestProgressCallback: the callback fires once per cell with strictly
// increasing Done, both unsharded and sharded, and batch collectors honor
// it.
func TestProgressCallback(t *testing.T) {
	traces := SuiteSpec{InstsPerTrace: 3000, SeedsPerProfile: 1}.Traces()
	for _, win := range []int{0, 1000} {
		var seen []int
		r := (&Runner{Workers: 3}).WithWindow(win, 0).WithProgress(func(u PointUpdate) {
			if u.Err != nil {
				t.Errorf("progress saw error: %v", u.Err)
			}
			seen = append(seen, u.Done)
		})
		if _, _, err := r.RunPoint(context.Background(), core.DefaultConfig(500, circuit.ModeBaseline), traces); err != nil {
			t.Fatal(err)
		}
		if len(seen) != len(traces) {
			t.Fatalf("win=%d: progress fired %d times for %d cells", win, len(seen), len(traces))
		}
		for i, d := range seen {
			if d != i+1 {
				t.Fatalf("win=%d: Done sequence %v is not strictly increasing from 1", win, seen)
			}
		}
	}
}

// TestSweepStreamMatchesBatch: every point emitted by SweepStream is
// bit-identical to the batch Sweep's grid entry, and the stream covers the
// whole grid exactly once.
func TestSweepStreamMatchesBatch(t *testing.T) {
	traces := SuiteSpec{InstsPerTrace: 3000, SeedsPerProfile: 1}.Traces()
	batch, err := (&Runner{Workers: 2}).Sweep(context.Background(), traces, streamModes, streamLevels)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for u := range (&Runner{Workers: 2}).SweepStream(context.Background(), traces, streamModes, streamLevels) {
		if u.Err != nil {
			t.Fatal(u.Err)
		}
		got++
		if !reflect.DeepEqual(batch[u.Mode][u.Vcc], u.Point) {
			t.Errorf("%v %v: streamed point differs from batch grid", u.Mode, u.Vcc)
		}
	}
	if want := len(streamModes) * len(streamLevels); got != want {
		t.Fatalf("stream emitted %d points, want %d", got, want)
	}
}
