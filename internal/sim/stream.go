package sim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
	"lowvcc/internal/trace"
)

// PointSpec is one operating point to simulate: a core configuration over
// an ordered trace list, plus a label for error reporting and progress
// lines.
type PointSpec struct {
	Label  string
	Cfg    core.Config
	Traces []*trace.Trace
}

// PointUpdate is one event on the result stream: a completed (point, trace)
// cell, or — exactly once, as the last update before the channel closes —
// the sweep's failure.
type PointUpdate struct {
	// Point and Trace locate the cell: specs[Point].Traces[Trace].
	// Both are -1 on the terminal error update.
	Point int
	Trace int
	// Label and TraceName identify the cell for progress lines.
	Label     string
	TraceName string
	// Windows is how many sample windows the cell was sharded into
	// (1 = unsharded whole-trace execution).
	Windows int
	// Result is the cell's (stitched) result; nil when Err is set.
	Result *core.Result
	// Err carries the sweep's failure: the error of the lowest-index failed
	// job, or the context's error on cancellation.
	Err error
	// Done and Total report stream progress in cells.
	Done, Total int
}

// cell is one (point, trace) unit of a stream: its shard plan, the
// per-window result slots, and the countdown that triggers stitch-and-emit
// when the last window lands.
type cell struct {
	point, traceIdx int
	name            string
	windows         []trace.Window
	results         []*core.Result
	remaining       atomic.Int32
	// startedNanos is the wall-clock stamp of the cell's first claimed
	// window; the per-point timeout measures from here.
	startedNanos atomic.Int64
}

// Stream is the runner's core: it fans every (point, trace) cell of specs —
// sharded into sample windows when windowing is enabled — across the worker
// pool and emits each cell's result the moment its last window completes.
// Every batch API (Sweep, RunPoint, the ablations) is a thin collector over
// this stream.
//
// Emission order follows completion and is therefore scheduling-dependent,
// but each update's content is not: a cell's Result is bit-identical for
// any worker count, and collectors that place updates by (Point, Trace)
// reconstruct exactly the sequential output. On failure the stream cancels
// outstanding work, emits one terminal update carrying the deterministic
// lowest-index error, and closes. Consumers must drain the channel until it
// closes; abandoning it mid-stream requires cancelling ctx (the producer
// drops sends once ctx is done, so cancellation drains promptly).
func (r *Runner) Stream(ctx context.Context, specs []PointSpec) <-chan PointUpdate {
	ch := make(chan PointUpdate)
	go r.stream(ctx, specs, ch)
	return ch
}

func (r *Runner) stream(ctx context.Context, specs []PointSpec, ch chan<- PointUpdate) {
	defer close(ch)

	// Build the cells and the flat job list in (point, trace, window)
	// order. Job order is what makes error reporting deterministic (the
	// pool surfaces the lowest-index failure) and keeps consecutive jobs of
	// one point adjacent, so the per-worker core-reuse cache keeps hitting.
	type jobRef struct {
		cell *cell
		win  int
	}
	var cells []*cell
	var jobs []jobRef
	for p := range specs {
		for ti, tr := range specs[p].Traces {
			cl := &cell{
				point: p, traceIdx: ti, name: tr.Name,
				windows: trace.Shard(tr, r.WindowInsts, r.warmInsts()),
			}
			cl.results = make([]*core.Result, len(cl.windows))
			cl.remaining.Store(int32(len(cl.windows)))
			cells = append(cells, cl)
			for w := range cl.windows {
				jobs = append(jobs, jobRef{cl, w})
			}
		}
	}

	// emit serializes channel sends, the Done counter and the Progress
	// callback: Progress observes strictly increasing Done values and is
	// never invoked concurrently. Sends drop once ctx is cancelled so
	// workers can never block on a departed consumer.
	var emitMu sync.Mutex
	done := 0
	emit := func(u PointUpdate) {
		emitMu.Lock()
		defer emitMu.Unlock()
		done++
		u.Done, u.Total = done, len(cells)
		if r.Progress != nil {
			r.Progress(u)
		}
		select {
		case ch <- u:
		case <-ctx.Done():
		}
	}

	workers := r.workers(len(jobs))
	type workerCore struct {
		point int
		c     *core.Core
	}
	cores := make([]workerCore, workers)
	for i := range cores {
		cores[i].point = -1
	}

	err := r.forEach(ctx, workers, len(jobs), func(worker, j int) error {
		jr := jobs[j]
		cl := jr.cell
		spec := &specs[cl.point]
		win := &cl.windows[jr.win]

		wc := &cores[worker]
		if wc.point == cl.point && wc.c != nil {
			if err := wc.c.Reset(); err != nil {
				return fmt.Errorf("%s: reset: %w", spec.Label, err)
			}
		} else {
			c, err := core.New(spec.Cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", spec.Label, err)
			}
			wc.point, wc.c = cl.point, c
		}

		// Preemption: context cancellation and the per-point wall-clock
		// budget are polled from inside the core's run loop, so even a
		// single enormous window aborts promptly. The budget clock starts
		// at the cell's first claimed window.
		if r.PointTimeout > 0 {
			cl.startedNanos.CompareAndSwap(0, time.Now().UnixNano())
		}
		wc.c.SetStopCheck(func() error {
			if err := ctx.Err(); err != nil {
				return err
			}
			if r.PointTimeout > 0 {
				elapsed := time.Duration(time.Now().UnixNano() - cl.startedNanos.Load())
				if elapsed > r.PointTimeout {
					return fmt.Errorf("%s: %s: point timeout after %v", spec.Label, cl.name, r.PointTimeout)
				}
			}
			return nil
		})
		defer wc.c.SetStopCheck(nil)

		var res *core.Result
		var err error
		if len(cl.windows) == 1 {
			// Unsharded cell: the exact batch methodology — one untimed
			// warm-up pass, one measured pass.
			if _, err = wc.c.Run(win.Trace); err != nil {
				return fmt.Errorf("%s: warmup %s: %w", spec.Label, win.Trace.Name, err)
			}
			if res, err = wc.c.Run(win.Trace); err != nil {
				return fmt.Errorf("%s: measure %s: %w", spec.Label, win.Trace.Name, err)
			}
		} else {
			// Sample window: one pass where the warm-up prefix executes
			// unmeasured — functionally replayed or timed, per the runner's
			// warm mode — and statistics cover only the window's span.
			if res, err = wc.c.RunWindow(win.Trace, win.Warm, r.WarmMode); err != nil {
				return fmt.Errorf("%s: window %s: %w", spec.Label, win.Trace.Name, err)
			}
		}
		cl.results[jr.win] = res
		if cl.remaining.Add(-1) == 0 {
			// Last window of the cell: stitch in window order (deterministic
			// regardless of which worker got here) and emit.
			emit(PointUpdate{
				Point: cl.point, Trace: cl.traceIdx,
				Label: spec.Label, TraceName: cl.name,
				Windows: len(cl.windows),
				Result:  core.MergeWindowResults(cl.name, cl.results),
			})
		}
		return nil
	})
	if err != nil {
		emit(PointUpdate{Point: -1, Trace: -1, Err: err})
	}
}

// SweepUpdate is one event on a streaming sweep: a completed operating
// point (all traces merged), or the sweep's failure.
type SweepUpdate struct {
	Mode circuit.Mode
	Vcc  circuit.Millivolts
	// Point is the aggregated operating-point measurement; PerTrace its
	// per-trace results in trace order. Both are nil when Err is set.
	Point    *Point
	PerTrace []*core.Result
	Err      error
	// Done and Total report progress in operating points.
	Done, Total int
}

// sweepSpecs expands a (modes x levels) grid into PointSpecs in the fixed
// (mode, level) order every sweep consumer indexes by.
func sweepSpecs(traces []*trace.Trace, modes []circuit.Mode, levels []circuit.Millivolts) []PointSpec {
	specs := make([]PointSpec, 0, len(modes)*len(levels))
	for _, mode := range modes {
		for _, v := range levels {
			specs = append(specs, PointSpec{
				Label:  fmt.Sprintf("sweep %v %v", v, mode),
				Cfg:    core.DefaultConfig(v, mode),
				Traces: traces,
			})
		}
	}
	return specs
}

// StreamLevels collects a streaming sweep voltage by voltage: onLevel is
// invoked in level order, each call made as soon as every requested mode
// at that level has completed — while later levels may still be running —
// with the level's points keyed by mode. An onLevel error cancels the
// sweep; StreamLevels always drains the stream before returning, so
// callers never strand the producer's workers.
func (r *Runner) StreamLevels(ctx context.Context, traces []*trace.Trace, modes []circuit.Mode, levels []circuit.Millivolts, onLevel func(circuit.Millivolts, map[circuit.Mode]*Point) error) error {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	grid := make(map[circuit.Mode]map[circuit.Millivolts]*Point, len(modes))
	for _, m := range modes {
		grid[m] = make(map[circuit.Millivolts]*Point, len(levels))
	}
	next := 0 // first level not yet handed to onLevel
	var firstErr error
	for u := range r.SweepStream(sctx, traces, modes, levels) {
		if u.Err != nil {
			if firstErr == nil {
				firstErr = u.Err
			}
			continue
		}
		if firstErr != nil {
			continue // already failing: drain without emitting
		}
		grid[u.Mode][u.Vcc] = u.Point
		for next < len(levels) {
			v := levels[next]
			row := make(map[circuit.Mode]*Point, len(modes))
			for _, m := range modes {
				if p := grid[m][v]; p != nil {
					row[m] = p
				}
			}
			if len(row) < len(modes) {
				break // a slower earlier level gates emission order
			}
			if err := onLevel(v, row); err != nil {
				firstErr = err
				cancel() // stop producing; keep draining
				break
			}
			next++
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// SweepStream runs the (modes x levels) grid and emits each operating
// point as soon as its last trace cell lands: per-trace results merge in
// trace order, so every emitted Point is bit-identical to what the batch
// Sweep reports for that (mode, level). Emission order follows completion;
// on failure one terminal update carries the error and the channel closes.
// Consumers must drain the channel (cancel ctx to abandon early).
func (r *Runner) SweepStream(ctx context.Context, traces []*trace.Trace, modes []circuit.Mode, levels []circuit.Millivolts) <-chan SweepUpdate {
	specs := sweepSpecs(traces, modes, levels)
	out := make(chan SweepUpdate)
	go func() {
		defer close(out)
		type pointState struct {
			results   []*core.Result
			remaining int
		}
		states := make([]pointState, len(specs))
		for i := range specs {
			states[i] = pointState{results: make([]*core.Result, len(traces)), remaining: len(traces)}
		}
		done := 0
		emit := func(u SweepUpdate) {
			u.Done, u.Total = done, len(specs)
			select {
			case out <- u:
			case <-ctx.Done():
			}
		}
		for u := range r.Stream(ctx, specs) {
			if u.Err != nil {
				emit(SweepUpdate{Err: u.Err})
				continue
			}
			st := &states[u.Point]
			st.results[u.Trace] = u.Result
			if st.remaining--; st.remaining == 0 {
				mode := modes[u.Point/len(levels)]
				v := levels[u.Point%len(levels)]
				done++
				emit(SweepUpdate{
					Mode: mode, Vcc: v,
					Point:    &Point{Vcc: v, Mode: mode, Agg: core.MergeResults(st.results)},
					PerTrace: st.results,
				})
			}
		}
	}()
	return out
}
