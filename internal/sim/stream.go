package sim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"lowvcc/internal/circuit"
	"lowvcc/internal/ckpt"
	"lowvcc/internal/core"
	"lowvcc/internal/journal"
	"lowvcc/internal/trace"
)

// PointSpec is one operating point to simulate: a core configuration over
// an ordered trace list, plus a label for error reporting and progress
// lines.
type PointSpec struct {
	Label  string
	Cfg    core.Config
	Traces []*trace.Trace
}

// PointUpdate is one event on the result stream: a completed (point, trace)
// cell — successfully, from the journal, or (with AllowPartial) as an
// isolated failure — or, as the last update before the channel closes, the
// sweep's terminal error.
type PointUpdate struct {
	// Point and Trace locate the cell: specs[Point].Traces[Trace].
	// Both are -1 on the terminal error update.
	Point int
	Trace int
	// Label and TraceName identify the cell for progress lines.
	Label     string
	TraceName string
	// Windows is how many sample windows the cell was sharded into
	// (1 = unsharded whole-trace execution).
	Windows int
	// Result is the cell's (stitched) result; nil when Err is set.
	Result *core.Result
	// Replayed reports that Result came from the journal, not simulation.
	Replayed bool
	// Err carries a failure. With Point >= 0 it is one cell's isolated
	// *CellError (AllowPartial mode; the stream continues). With Point < 0
	// it is the terminal update: the deterministic lowest-index *CellError
	// in strict mode, or the context's error on cancellation.
	Err error
	// Done and Total report stream progress in cells.
	Done, Total int
}

// cell is one (point, trace) unit of a stream: its shard plan, the
// per-window result and error slots, and the countdown that triggers
// stitch-and-emit when the last window lands.
type cell struct {
	point, traceIdx int
	name            string
	windows         []trace.Window
	results         []*core.Result
	errs            []error
	remaining       atomic.Int32
	// key is the cell's journal content-address ("" when journaling is
	// off); cached is its replayed entry when the journal already held it.
	key    string
	cached *journal.Entry
	// traceHash, warmKey and winInsts feed the warm-state checkpoint
	// store: the snapshot family identity and the boundary spacing
	// (warmKey "" means checkpoints are off for this cell).
	traceHash, warmKey string
	winInsts           int
	// startedNanos is the wall-clock stamp of the cell's first claimed
	// window (re-armed when a window retries); the per-point timeout
	// measures from here.
	startedNanos atomic.Int64
}

// firstErr returns the lowest-window-index recorded error — deterministic
// because every window of a failed cell still runs and records.
func (cl *cell) firstErr() error {
	for _, err := range cl.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Stream is the runner's core: it fans every (point, trace) cell of specs —
// sharded into sample windows when windowing is enabled — across the worker
// pool and emits each cell's result the moment its last window completes.
// Every batch API (Sweep, RunPoint, the ablations) is a thin collector over
// this stream.
//
// Emission order follows completion and is therefore scheduling-dependent,
// but each update's content is not: a cell's Result is bit-identical for
// any worker count, and collectors that place updates by (Point, Trace)
// reconstruct exactly the sequential output.
//
// Failure semantics (see the package doc's "Failure semantics" section for
// the full contract): every window job runs isolated — a panic inside the
// engine is recovered into a typed *CellError instead of killing the
// process — and transient failures retry per the runner's retry policy. In
// strict mode (the default) a failed cell cancels outstanding work and the
// stream emits one terminal update carrying the deterministic lowest-index
// *CellError, then closes. With AllowPartial, failures are isolated to
// their cell: the failed cell emits an update with Err set and identity
// intact, every other cell still runs, and only context cancellation is
// terminal. With journaling enabled, cells whose results are already
// recorded replay instantly (Replayed=true) before any simulation starts.
//
// Consumers must drain the channel until it closes; abandoning it
// mid-stream requires cancelling ctx (the producer drops sends once ctx is
// done, so cancellation drains promptly).
func (r *Runner) Stream(ctx context.Context, specs []PointSpec) <-chan PointUpdate {
	ch := make(chan PointUpdate)
	go r.stream(ctx, specs, ch)
	return ch
}

// cfgHash content-addresses the trace-independent half of a cell's inputs:
// the full core configuration and the engine version. The windowing plan
// joins at the cell key — it resolves per trace (planFor), so it cannot
// live in a per-point hash.
func (r *Runner) cfgHash(cfg core.Config) (string, error) {
	blob, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("sim: hashing config: %w", err)
	}
	h := sha256.Sum256(blob)
	return journal.Key(hex.EncodeToString(h[:]), core.EngineVersion), nil
}

// cellKey assembles a cell's journal content address from its trace hash,
// point hash and the windowing plan resolved for its trace length.
func (r *Runner) cellKey(th, pointKey string, n int) string {
	win, warm := r.planFor(n)
	return journal.Key(th, pointKey,
		fmt.Sprintf("win=%d warm=%d mode=%d", win, warm, r.WarmMode))
}

// traceHash content-addresses a trace's full binary encoding (name and
// records).
func traceHash(t *trace.Trace) (string, error) {
	h := sha256.New()
	if err := trace.Write(h, t); err != nil {
		return "", fmt.Errorf("sim: hashing trace %s: %w", t.Name, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// CellKey returns the journal content address the (cfg, tr) cell's
// stitched Result is recorded under given this runner's windowing plan —
// the exact key Stream computes internally. External schedulers
// (internal/service) use it to detect already-journaled cells before
// leasing any work, and workers use it to verify that their engine build
// and configuration agree with the daemon that granted the lease: a key
// mismatch means the two binaries would simulate different numbers, so
// the cell must not run.
func (r *Runner) CellKey(cfg core.Config, tr *trace.Trace) (string, error) {
	pointKey, err := r.cfgHash(cfg)
	if err != nil {
		return "", err
	}
	th, err := traceHash(tr)
	if err != nil {
		return "", err
	}
	return r.cellKey(th, pointKey, len(tr.Insts)), nil
}

// RunCell runs exactly one (cfg, trace) cell through the stream — with the
// runner's windowing, retries, journal replay and fault injection all in
// effect — and returns the cell's stitched Result plus whether it replayed
// from the journal instead of simulating. label identifies the cell in
// errors, progress lines and fault-injection rules, exactly like a
// PointSpec label.
func (r *Runner) RunCell(ctx context.Context, label string, cfg core.Config, tr *trace.Trace) (*core.Result, bool, error) {
	var res *core.Result
	var replayed bool
	var firstErr error
	for u := range r.Stream(ctx, []PointSpec{{Label: label, Cfg: cfg, Traces: []*trace.Trace{tr}}}) {
		if u.Err != nil {
			if firstErr == nil {
				firstErr = u.Err
			}
			continue
		}
		res, replayed = u.Result, u.Replayed
	}
	if firstErr != nil {
		return nil, false, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	if res == nil {
		return nil, false, fmt.Errorf("sim: cell %s %s produced no result", label, tr.Name)
	}
	return res, replayed, nil
}

func (r *Runner) stream(ctx context.Context, specs []PointSpec, ch chan<- PointUpdate) {
	defer close(ch)

	// emit serializes channel sends, the Done counter and the Progress
	// callback: Progress observes strictly increasing Done values and is
	// never invoked concurrently. Sends drop once ctx is cancelled so
	// workers can never block on a departed consumer.
	var cells []*cell
	var emitMu sync.Mutex
	done := 0
	emit := func(u PointUpdate) {
		emitMu.Lock()
		defer emitMu.Unlock()
		done++
		u.Done, u.Total = done, len(cells)
		if r.Progress != nil {
			r.Progress(u)
		}
		select {
		case ch <- u:
		case <-ctx.Done():
		}
	}

	// The journal replays completed cells from an earlier (possibly
	// killed) run; a journal that cannot open is an infrastructure
	// failure, terminal in every mode.
	var jnl *journal.Journal
	if r.JournalDir != "" {
		var err error
		if jnl, err = journal.Open(r.JournalDir); err != nil {
			emit(PointUpdate{Point: -1, Trace: -1, Err: err})
			return
		}
		jnl.SetSync(r.JournalSync)
		if r.JournalBudget > 0 {
			jnl.SetBudget(r.JournalBudget)
		}
	}

	// Build the cells and the flat job list in (point, trace, window)
	// order. Job order is what makes strict-mode error reporting
	// deterministic (the pool surfaces the lowest-index failure) and keeps
	// consecutive jobs of one point adjacent, so the per-worker core-reuse
	// cache keeps hitting. Journaled cells take no jobs: they replay
	// before the pool starts.
	type jobRef struct {
		cell *cell
		win  int
	}
	st := r.checkpoints()
	var jobs []jobRef
	var replayed []*cell
	traceHashes := make(map[*trace.Trace]string)
	hashOf := func(tr *trace.Trace) (string, error) {
		th, ok := traceHashes[tr]
		if !ok {
			var err error
			if th, err = traceHash(tr); err != nil {
				return "", err
			}
			traceHashes[tr] = th
		}
		return th, nil
	}
	for p := range specs {
		var pointKey, warmKey string
		if jnl != nil {
			k, err := r.cfgHash(specs[p].Cfg)
			if err != nil {
				emit(PointUpdate{Point: -1, Trace: -1, Err: err})
				return
			}
			pointKey = k
		}
		if st != nil {
			warmKey = ckpt.WarmConfigKey(specs[p].Cfg)
		}
		for ti, tr := range specs[p].Traces {
			cl := &cell{point: p, traceIdx: ti, name: tr.Name}
			if jnl != nil || st != nil {
				th, err := hashOf(tr)
				if err != nil {
					emit(PointUpdate{Point: -1, Trace: -1, Err: err})
					return
				}
				cl.traceHash = th
			}
			if jnl != nil {
				cl.key = r.cellKey(cl.traceHash, pointKey, len(tr.Insts))
				if e, hit := jnl.Get(cl.key); hit {
					cl.cached = e
					cells = append(cells, cl)
					replayed = append(replayed, cl)
					continue
				}
			}
			win, warm := r.planFor(len(tr.Insts))
			cl.winInsts = win
			cl.warmKey = warmKey
			cl.windows = trace.Shard(tr, win, warm)
			cl.results = make([]*core.Result, len(cl.windows))
			cl.errs = make([]error, len(cl.windows))
			cl.remaining.Store(int32(len(cl.windows)))
			cells = append(cells, cl)
			for w := range cl.windows {
				jobs = append(jobs, jobRef{cl, w})
			}
		}
	}

	// Journal replays first, in (point, trace) order: a resumed sweep
	// streams its recovered prefix instantly, then simulates only the
	// missing cells.
	for _, cl := range replayed {
		emit(PointUpdate{
			Point: cl.point, Trace: cl.traceIdx,
			Label: specs[cl.point].Label, TraceName: cl.name,
			Windows: cl.cached.Windows, Result: cl.cached.Result,
			Replayed: true,
		})
	}

	workers := r.workers(len(jobs))
	cores := make([]workerCore, workers)
	for i := range cores {
		cores[i].point = -1
	}

	// finish decrements the cell's window countdown and, on the last
	// window, stitches-and-emits (journaling the stitched result) or emits
	// the cell's deterministic lowest-window error.
	finish := func(cl *cell) {
		if cl.remaining.Add(-1) != 0 {
			return
		}
		spec := &specs[cl.point]
		if err := cl.firstErr(); err != nil {
			emit(PointUpdate{
				Point: cl.point, Trace: cl.traceIdx,
				Label: spec.Label, TraceName: cl.name,
				Windows: len(cl.windows), Err: err,
			})
			return
		}
		res := core.MergeWindowResults(cl.name, cl.results)
		if jnl != nil {
			e := &journal.Entry{Key: cl.key, Windows: len(cl.windows), Result: res}
			if f := r.Faults.takeJournal(spec.Label, cl.name); f != nil {
				_ = jnl.PutTruncated(e, -1)
			} else {
				// A failed write is not a cell failure: the journal is a
				// cache, and losing an entry only costs re-simulation.
				_ = jnl.Put(e)
			}
		}
		emit(PointUpdate{
			Point: cl.point, Trace: cl.traceIdx,
			Label: spec.Label, TraceName: cl.name,
			Windows: len(cl.windows), Result: res,
		})
	}

	err := r.forEach(ctx, workers, len(jobs), func(worker, j int) error {
		jr := jobs[j]
		cl := jr.cell
		err := r.runWindowAttempts(ctx, &specs[cl.point], &cores[worker], cl, jr.win)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			cl.errs[jr.win] = err
			if !r.AllowPartial {
				// Strict mode: fail fast. The pool cancels outstanding
				// work and surfaces the lowest-index failure; the failing
				// cell's countdown never completes, so it cannot also emit.
				return err
			}
		}
		finish(cl)
		return nil
	})
	if err != nil {
		u := PointUpdate{Point: -1, Trace: -1, Err: err}
		var ce *CellError
		if errors.As(err, &ce) {
			u.Label, u.TraceName, u.Windows = ce.Label, ce.TraceName, ce.Windows
		}
		emit(u)
	}
}

// workerCore is one worker's cached simulator, reused across consecutive
// jobs of the same operating point.
type workerCore struct {
	point int
	c     *core.Core
}

// invalidate drops the cached core. Called after any window failure: a
// panic or abort can leave the core mid-run, and the engine's
// fresh-equals-Reset guarantee makes dropping always safe.
func (wc *workerCore) invalidate() {
	wc.point, wc.c = -1, nil
}

// runWindowAttempts executes one window with the runner's bounded-retry
// policy: transient failures (timeouts, injected transients) retry up to
// r.Retries times with exponential backoff, re-arming the cell's
// wall-clock budget per attempt; permanent failures and exhausted retries
// return a *CellError carrying the cell identity, attempt count and — for
// panics — the recovered stack. Context cancellation returns the context's
// error unwrapped.
func (r *Runner) runWindowAttempts(ctx context.Context, spec *PointSpec, wc *workerCore, cl *cell, win int) error {
	for attempt := 1; ; attempt++ {
		err := r.runWindowOnce(ctx, spec, wc, cl, win)
		if err == nil {
			return nil
		}
		wc.invalidate()
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		if attempt <= r.Retries && IsTransient(err) {
			if r.RetryBackoff > 0 {
				t := time.NewTimer(jitteredBackoff(r.RetryBackoff, attempt))
				select {
				case <-ctx.Done():
					t.Stop()
					return ctx.Err()
				case <-t.C:
				}
			}
			// Re-arm the cell's budget: without this a retried timeout
			// would expire instantly. Sibling windows of the same cell
			// share the stamp, so their budgets extend too — conservative
			// in the right direction for a guard rail.
			cl.startedNanos.Store(time.Now().UnixNano())
			continue
		}
		ce := &CellError{
			Label: spec.Label, TraceName: cl.name,
			Point: cl.point, Trace: cl.traceIdx,
			Window: win, Windows: len(cl.windows),
			Attempts: attempt, Err: err,
		}
		var pe *panicError
		if errors.As(err, &pe) {
			ce.Panicked = true
			ce.Stack = pe.stack
		}
		return ce
	}
}

// jitteredBackoff is the sleep before retry number `attempt`: exponential
// in the attempt count, then jittered uniformly into [base/2, base]. The
// jitter is what stops retries from synchronizing: when a died worker's
// cells are reassigned in a batch (the sweep service's lease reclamation
// does exactly that), unjittered backoff would march every replacement
// into the journal and scheduler in lockstep.
func jitteredBackoff(backoff time.Duration, attempt int) time.Duration {
	base := backoff << (attempt - 1)
	if base <= 1 {
		return base
	}
	half := base / 2
	return half + rand.N(base-half+1)
}

// JitteredBackoff exposes the retry sleep policy — exponential in the
// 1-based attempt number, jittered into [base/2, base] — for the other
// layers that retry over unreliable transports (the sweep service's
// worker↔daemon calls), so every backoff in the system herds the same
// way.
func JitteredBackoff(backoff time.Duration, attempt int) time.Duration {
	return jitteredBackoff(backoff, attempt)
}

// runWindowOnce executes one window attempt in isolation: a panic anywhere
// inside the engine is recovered into a *panicError instead of unwinding
// the worker goroutine, so one bad cell can never kill the sweep.
func (r *Runner) runWindowOnce(ctx context.Context, spec *PointSpec, wc *workerCore, cl *cell, winIdx int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &panicError{value: v, stack: debug.Stack()}
		}
	}()

	// Fault injection (test/dev only): deterministic panics, delays,
	// transient and permanent errors, process death — inside the recover
	// scope, so injected panics exercise the real isolation path.
	if f := r.Faults.takeWindow(spec.Label, cl.name, winIdx); f != nil {
		if ierr := f.apply(spec.Label, cl.name, winIdx); ierr != nil {
			return ierr
		}
	}

	win := &cl.windows[winIdx]
	if wc.point == cl.point && wc.c != nil {
		if err := wc.c.Reset(); err != nil {
			return fmt.Errorf("%s: reset: %w", spec.Label, err)
		}
	} else {
		c, err := core.New(spec.Cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", spec.Label, err)
		}
		wc.point, wc.c = cl.point, c
	}

	// Preemption: context cancellation and the per-point wall-clock
	// budget are polled from inside the core's run loop, so even a
	// single enormous window aborts promptly. The budget clock starts
	// at the cell's first claimed window.
	if r.PointTimeout > 0 {
		cl.startedNanos.CompareAndSwap(0, time.Now().UnixNano())
	}
	wc.c.SetStopCheck(func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if r.PointTimeout > 0 {
			elapsed := time.Duration(time.Now().UnixNano() - cl.startedNanos.Load())
			if elapsed > r.PointTimeout {
				return &TimeoutError{Label: spec.Label, TraceName: cl.name, Budget: r.PointTimeout}
			}
		}
		return nil
	})
	defer wc.c.SetStopCheck(nil)

	var res *core.Result
	if len(cl.windows) == 1 {
		// Unsharded cell: the exact batch methodology — one untimed
		// warm-up pass, one measured pass.
		if _, err = wc.c.Run(win.Trace); err != nil {
			return fmt.Errorf("%s: warmup %s: %w", spec.Label, win.Trace.Name, err)
		}
		if res, err = wc.c.Run(win.Trace); err != nil {
			return fmt.Errorf("%s: measure %s: %w", spec.Label, win.Trace.Name, err)
		}
	} else if st := r.checkpoints(); st != nil && cl.warmKey != "" &&
		win.Warm > 0 && win.Start == win.Warm {
		// Sample window with a checkpointable warm prefix: the prefix
		// starts at the parent trace's first instruction (Start == Warm,
		// which full-history warm-up guarantees for every window), so its
		// boundaries are the checkpoint store's — restore the deepest
		// snapshot, replay only the residual tail, then measure. Identical
		// results to the live branch below, cheaper warm-up.
		if err = st.WarmTo(wc.c, cl.traceHash, cl.warmKey, cl.winInsts, win.Trace, win.Warm); err != nil {
			return fmt.Errorf("%s: window %s: %w", spec.Label, win.Trace.Name, err)
		}
		if res, err = wc.c.RunWarmed(win.Trace, win.Warm); err != nil {
			return fmt.Errorf("%s: window %s: %w", spec.Label, win.Trace.Name, err)
		}
	} else {
		// Sample window: one pass where the warm-up prefix executes
		// unmeasured — functionally replayed or timed, per the runner's
		// warm mode — and statistics cover only the window's span.
		if res, err = wc.c.RunWindow(win.Trace, win.Warm, r.WarmMode); err != nil {
			return fmt.Errorf("%s: window %s: %w", spec.Label, win.Trace.Name, err)
		}
	}
	cl.results[winIdx] = res
	return nil
}

// SweepUpdate is one event on a streaming sweep: a completed operating
// point (all traces merged), one operating point's isolated failure
// (AllowPartial mode), or the sweep's terminal error.
type SweepUpdate struct {
	Mode circuit.Mode
	Vcc  circuit.Millivolts
	// Point is the aggregated operating-point measurement; PerTrace its
	// per-trace results in trace order. Both are nil when Err is set.
	Point    *Point
	PerTrace []*core.Result
	// Err carries a failure. With Terminal false it is one operating
	// point's failure (the lowest-trace-index *CellError; Mode and Vcc
	// identify the point, and the sweep continues). With Terminal true it
	// is the sweep's failure and the last update before close.
	Err      error
	Terminal bool
	// Done and Total report progress in operating points.
	Done, Total int
}

// sweepSpecs expands a (modes x levels) grid into PointSpecs in the fixed
// (mode, level) order every sweep consumer indexes by, each cell at the
// runner's configured width (pointConfig).
func (r *Runner) sweepSpecs(traces []*trace.Trace, modes []circuit.Mode, levels []circuit.Millivolts) []PointSpec {
	specs := make([]PointSpec, 0, len(modes)*len(levels))
	for _, mode := range modes {
		for _, v := range levels {
			specs = append(specs, PointSpec{
				Label:  SweepLabel(v, mode),
				Cfg:    r.pointConfig(v, mode),
				Traces: traces,
			})
		}
	}
	return specs
}

// StreamLevels collects a streaming sweep voltage by voltage: onLevel is
// invoked in level order, each call made as soon as every requested mode
// at that level has completed — while later levels may still be running —
// with the level's points keyed by mode. With AllowPartial, failed
// operating points arrive in the fails map instead (and never in pts), so
// renderers can mark the cell and keep going; without it, fails is always
// empty (the sweep aborts first). An onLevel error cancels the sweep;
// StreamLevels always drains the stream before returning, so callers
// never strand the producer's workers.
func (r *Runner) StreamLevels(ctx context.Context, traces []*trace.Trace, modes []circuit.Mode, levels []circuit.Millivolts, onLevel func(circuit.Millivolts, map[circuit.Mode]*Point, map[circuit.Mode]*CellError) error) error {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type slot struct {
		p    *Point
		fail *CellError
	}
	grid := make(map[circuit.Mode]map[circuit.Millivolts]*slot, len(modes))
	for _, m := range modes {
		grid[m] = make(map[circuit.Millivolts]*slot, len(levels))
	}
	next := 0 // first level not yet handed to onLevel
	var firstErr error
	for u := range r.SweepStream(sctx, traces, modes, levels) {
		if u.Err != nil && u.Terminal {
			if firstErr == nil {
				firstErr = u.Err
			}
			continue
		}
		if firstErr != nil {
			continue // already failing: drain without emitting
		}
		if u.Err != nil {
			ce := asCellError(u.Err)
			grid[u.Mode][u.Vcc] = &slot{fail: ce}
		} else {
			grid[u.Mode][u.Vcc] = &slot{p: u.Point}
		}
		for next < len(levels) {
			v := levels[next]
			row := make(map[circuit.Mode]*Point, len(modes))
			fails := make(map[circuit.Mode]*CellError)
			filled := 0
			for _, m := range modes {
				s := grid[m][v]
				if s == nil {
					continue
				}
				filled++
				if s.fail != nil {
					fails[m] = s.fail
				} else {
					row[m] = s.p
				}
			}
			if filled < len(modes) {
				break // a slower earlier level gates emission order
			}
			if err := onLevel(v, row, fails); err != nil {
				firstErr = err
				cancel() // stop producing; keep draining
				break
			}
			next++
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// asCellError coerces err into a *CellError, wrapping foreign errors so
// consumers always get cell identity fields (possibly zero).
func asCellError(err error) *CellError {
	var ce *CellError
	if errors.As(err, &ce) {
		return ce
	}
	return &CellError{Point: -1, Trace: -1, Err: err}
}

// SweepStream runs the (modes x levels) grid and emits each operating
// point as soon as its last trace cell lands: per-trace results merge in
// trace order, so every emitted Point is bit-identical to what the batch
// Sweep reports for that (mode, level). Emission order follows completion.
// With AllowPartial, an operating point with failed trace cells emits an
// update with Err set (Terminal false) and the sweep continues; otherwise
// — and on cancellation — one Terminal update carries the error and the
// channel closes. Consumers must drain the channel (cancel ctx to abandon
// early).
func (r *Runner) SweepStream(ctx context.Context, traces []*trace.Trace, modes []circuit.Mode, levels []circuit.Millivolts) <-chan SweepUpdate {
	specs := r.sweepSpecs(traces, modes, levels)
	out := make(chan SweepUpdate)
	go func() {
		defer close(out)
		type pointState struct {
			results   []*core.Result
			errs      []error
			remaining int
		}
		states := make([]pointState, len(specs))
		for i := range specs {
			states[i] = pointState{
				results:   make([]*core.Result, len(traces)),
				errs:      make([]error, len(traces)),
				remaining: len(traces),
			}
		}
		done := 0
		emit := func(u SweepUpdate) {
			u.Done, u.Total = done, len(specs)
			select {
			case out <- u:
			case <-ctx.Done():
			}
		}
		for u := range r.Stream(ctx, specs) {
			if u.Err != nil && u.Point < 0 {
				emit(SweepUpdate{Err: u.Err, Terminal: true})
				continue
			}
			st := &states[u.Point]
			if u.Err != nil {
				st.errs[u.Trace] = u.Err
			} else {
				st.results[u.Trace] = u.Result
			}
			if st.remaining--; st.remaining > 0 {
				continue
			}
			mode := modes[u.Point/len(levels)]
			v := levels[u.Point%len(levels)]
			done++
			var pointErr error
			for _, err := range st.errs {
				if err != nil {
					pointErr = err // lowest trace index: deterministic
					break
				}
			}
			if pointErr != nil {
				emit(SweepUpdate{Mode: mode, Vcc: v, Err: pointErr})
				continue
			}
			emit(SweepUpdate{
				Mode: mode, Vcc: v,
				Point:    &Point{Vcc: v, Mode: mode, Agg: core.MergeResults(st.results)},
				PerTrace: st.results,
			})
		}
	}()
	return out
}
