package sim

// Fault injection for the resilience layer — test and development only.
// A FaultPlan attached via Runner.WithFaults deterministically injects
// failures at the two places the layer must defend: window execution
// (panics, permanent and transient errors, artificial slowness, process
// death) and journal writes (torn/truncated entries). Rules match by cell
// identity — spec label, trace name, window index — never by timing, so a
// plan injects the same faults for any worker count or schedule; keep
// per-rule Times budgets on rules that pin one exact cell if that
// determinism matters to the test.

import (
	"fmt"
	"os"
	"sync"
	"time"
)

// FaultKind selects what an injected fault does.
type FaultKind uint8

const (
	// FaultPanic panics inside the window job — exercises the recover()
	// isolation path exactly like a real engine bug would.
	FaultPanic FaultKind = iota + 1
	// FaultError fails the window with a permanent (non-retryable) error.
	FaultError
	// FaultTransient fails the window with a transient error, which the
	// runner's retry policy may retry.
	FaultTransient
	// FaultDelay sleeps Delay before running the window normally —
	// artificial slowness for timeout and progress testing.
	FaultDelay
	// FaultTruncateJournal truncates the cell's journal entry mid-write
	// (journal.PutTruncated), simulating a crash that tore the write.
	FaultTruncateJournal
	// FaultExit terminates the process with ExitCode (default 3) — the
	// process-level crash for kill -9 resume tests. Never fires outside a
	// test binary's child process by construction of the plan.
	FaultExit
	// Network faults, matched by TakeNet at the worker↔daemon call sites
	// (service.ChaosSource). They select by cell identity and — via
	// FaultRule.Op — by protocol call, never by timing.
	//
	// FaultNetDrop fails one call with a transport error: the request (or
	// its response) is lost on the wire. The caller's retry policy decides
	// what happens next; a dropped Complete response is the canonical
	// double-count hazard the daemon's dedup must absorb.
	FaultNetDrop
	// FaultNetDelay sleeps Delay before the call proceeds — a slow or
	// congested link for timeout testing.
	FaultNetDelay
	// FaultNetDup delivers the call twice: the duplicate's result is
	// discarded, exercising daemon-side idempotency.
	FaultNetDup
	// FaultNetSever partitions the worker from the daemon for the rest of
	// the matched cell's lease: every subsequent call on that lease fails
	// until the worker abandons the cell. The lease expires daemon-side
	// and the cell requeues.
	FaultNetSever
)

func (k FaultKind) String() string {
	switch k {
	case FaultPanic:
		return "panic"
	case FaultError:
		return "error"
	case FaultTransient:
		return "transient"
	case FaultDelay:
		return "delay"
	case FaultTruncateJournal:
		return "truncate-journal"
	case FaultExit:
		return "exit"
	case FaultNetDrop:
		return "net-drop"
	case FaultNetDelay:
		return "net-delay"
	case FaultNetDup:
		return "net-dup"
	case FaultNetSever:
		return "net-sever"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// FaultRule matches cells and describes the fault to inject.
type FaultRule struct {
	// Label and TraceName select cells ("" matches any). Window selects a
	// window index within the cell (-1 matches any; unsharded cells run as
	// window 0). FaultTruncateJournal matches at journal-write time, where
	// no window applies.
	Label     string
	TraceName string
	Window    int

	// Op narrows network faults to one protocol call — "acquire",
	// "heartbeat" or "complete" ("" matches any). Ignored by non-network
	// kinds.
	Op string

	Kind FaultKind

	// Times bounds how often the rule fires (0 = unlimited). Retries of
	// one window re-match the plan, so Times=1 on a FaultTransient rule
	// means "fail the first attempt, let the retry through".
	Times int

	// Delay is FaultDelay's sleep.
	Delay time.Duration

	// ExitCode is FaultExit's status (0 means 3, so a zero-value rule
	// still exits visibly non-zero).
	ExitCode int
}

// FaultPlan is a deterministic set of fault rules. Safe for concurrent use
// by the runner's workers.
type FaultPlan struct {
	mu    sync.Mutex
	rules []FaultRule
	fired []int
}

// NewFaultPlan builds a plan from rules.
func NewFaultPlan(rules ...FaultRule) *FaultPlan {
	return &FaultPlan{rules: rules, fired: make([]int, len(rules))}
}

// take returns the first live rule matching (op, label, trace, window)
// whose kind passes filter, consuming one firing from its budget.
func (p *FaultPlan) take(op, label, traceName string, window int, filter func(FaultKind) bool) *FaultRule {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.rules {
		r := &p.rules[i]
		if !filter(r.Kind) {
			continue
		}
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.Label != "" && r.Label != label {
			continue
		}
		if r.TraceName != "" && r.TraceName != traceName {
			continue
		}
		if r.Window >= 0 && window >= 0 && r.Window != window {
			continue
		}
		if r.Times > 0 && p.fired[i] >= r.Times {
			continue
		}
		p.fired[i]++
		rc := *r
		return &rc
	}
	return nil
}

// isNetFault reports whether k is one of the network fault kinds.
func isNetFault(k FaultKind) bool {
	return k == FaultNetDrop || k == FaultNetDelay || k == FaultNetDup || k == FaultNetSever
}

// takeWindow matches execution-time faults for one window attempt.
func (p *FaultPlan) takeWindow(label, traceName string, window int) *FaultRule {
	return p.take("", label, traceName, window, func(k FaultKind) bool {
		return k != FaultTruncateJournal && !isNetFault(k)
	})
}

// takeJournal matches journal-write faults for one completed cell.
func (p *FaultPlan) takeJournal(label, traceName string) *FaultRule {
	return p.take("", label, traceName, -1, func(k FaultKind) bool { return k == FaultTruncateJournal })
}

// TakeNet matches network faults for one protocol call (op is "acquire",
// "heartbeat" or "complete") touching the cell identified by (label,
// traceName). It consumes one firing from the matched rule's budget and
// is exported for the service layer's chaos wrapper; simulation code
// never calls it.
func (p *FaultPlan) TakeNet(op, label, traceName string) *FaultRule {
	return p.take(op, label, traceName, -1, isNetFault)
}

// injectedError is the error FaultError/FaultTransient produce.
type injectedError struct {
	label, traceName string
	window           int
	transient        bool
}

func (e *injectedError) Error() string {
	kind := "permanent"
	if e.transient {
		kind = "transient"
	}
	return fmt.Sprintf("sim: injected %s fault in %s %s window %d", kind, e.label, e.traceName, e.window)
}

// Transient marks the error retryable for the runner's retry policy.
func (e *injectedError) Transient() bool { return e.transient }

// apply executes an execution-time fault. It returns a non-nil error for
// FaultError/FaultTransient, panics for FaultPanic, exits for FaultExit,
// sleeps and returns nil for FaultDelay.
func (r *FaultRule) apply(label, traceName string, window int) error {
	switch r.Kind {
	case FaultPanic:
		panic(fmt.Sprintf("sim: injected panic in %s %s window %d", label, traceName, window))
	case FaultExit:
		code := r.ExitCode
		if code == 0 {
			code = 3
		}
		os.Exit(code)
	case FaultDelay:
		time.Sleep(r.Delay)
	case FaultError:
		return &injectedError{label: label, traceName: traceName, window: window}
	case FaultTransient:
		return &injectedError{label: label, traceName: traceName, window: window, transient: true}
	}
	return nil
}
