package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
	"lowvcc/internal/journal"
)

// TestSweepSpecRoundTrip: the wire form preserves every field a remote
// worker needs to recompute the cell grid.
func TestSweepSpecRoundTrip(t *testing.T) {
	spec := SweepSpec{
		InstsPerTrace:   2000,
		SeedsPerProfile: 1,
		Modes:           []string{"baseline", "iraw"},
		LevelsMV:        []int{500, 400},
		WindowInsts:     1000,
		WarmInsts:       -1,
		WarmMode:        "timed",
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var got SweepSpec
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.InstsPerTrace != spec.InstsPerTrace || got.WarmInsts != spec.WarmInsts ||
		got.WarmMode != spec.WarmMode || len(got.Modes) != 2 || len(got.LevelsMV) != 2 {
		t.Fatalf("round trip mangled the spec: %+v", got)
	}

	modes, err := got.CircuitModes()
	if err != nil {
		t.Fatal(err)
	}
	if modes[0] != circuit.ModeBaseline || modes[1] != circuit.ModeIRAW {
		t.Fatalf("CircuitModes = %v", modes)
	}
	levels := got.Levels()
	if len(levels) != 2 || levels[0] != 500 || levels[1] != 400 {
		t.Fatalf("Levels = %v", levels)
	}
	r := got.NewRunner()
	if r.WindowInsts != 1000 || r.WarmInsts != -1 || r.WarmMode.String() != "timed" {
		t.Fatalf("NewRunner dropped windowing: %+v", r)
	}
}

// TestSweepSpecValidateRejects: the admission check rejects every
// structurally broken spec a client could submit.
func TestSweepSpecValidateRejects(t *testing.T) {
	good := SweepSpec{InstsPerTrace: 1000, SeedsPerProfile: 1, Modes: []string{"baseline"}}
	if err := good.Validate(); err != nil {
		t.Fatalf("minimal spec rejected: %v", err)
	}
	optOut := good
	optOut.WindowInsts = -1
	if err := optOut.Validate(); err != nil {
		t.Fatalf("negative window (the sharding opt-out spelling) rejected: %v", err)
	}
	for name, mutate := range map[string]func(*SweepSpec){
		"zero insts":     func(s *SweepSpec) { s.InstsPerTrace = 0 },
		"huge insts":     func(s *SweepSpec) { s.InstsPerTrace = 1 << 40 },
		"zero seeds":     func(s *SweepSpec) { s.SeedsPerProfile = 0 },
		"no modes":       func(s *SweepSpec) { s.Modes = nil },
		"unknown mode":   func(s *SweepSpec) { s.Modes = []string{"turbo"} },
		"level too low":  func(s *SweepSpec) { s.LevelsMV = []int{300} },
		"level too high": func(s *SweepSpec) { s.LevelsMV = []int{900} },
		"bad warm mode":  func(s *SweepSpec) { s.WarmMode = "psychic" },
	} {
		t.Run(name, func(t *testing.T) {
			s := good
			mutate(&s)
			if err := s.Validate(); err == nil {
				t.Fatalf("Validate accepted %+v", s)
			}
		})
	}
}

// TestParseModes: round trip through the CLI list format, and rejection
// with the offending name in the error.
func TestParseModes(t *testing.T) {
	modes, err := ParseModes("baseline, iraw,faultybits,extrabypass")
	if err != nil {
		t.Fatal(err)
	}
	want := []circuit.Mode{circuit.ModeBaseline, circuit.ModeIRAW, circuit.ModeFaultyBits, circuit.ModeExtraBypass}
	for i, m := range want {
		if modes[i] != m {
			t.Fatalf("ParseModes = %v, want %v", modes, want)
		}
	}
	if _, err := ParseModes("baseline,warp"); err == nil || !strings.Contains(err.Error(), "warp") {
		t.Fatalf("ParseModes err = %v, want mention of \"warp\"", err)
	}
}

// TestSweepLabelMatchesStream: the exported label builder and the internal
// sweep grid must agree — fault-injection rules and service cells address
// points by this string.
func TestSweepLabelMatchesStream(t *testing.T) {
	specs := (&Runner{}).sweepSpecs(nil, []circuit.Mode{circuit.ModeIRAW}, []circuit.Millivolts{475})
	if got, want := specs[0].Label, SweepLabel(475, circuit.ModeIRAW); got != want {
		t.Fatalf("sweepSpecs label %q != SweepLabel %q", got, want)
	}
}

// TestCellKeyMatchesJournal: RunCell journals under exactly the key
// CellKey predicts, so a scheduler that precomputes keys finds the
// worker's results.
func TestCellKeyMatchesJournal(t *testing.T) {
	spec := SweepSpec{InstsPerTrace: 2000, SeedsPerProfile: 1, Modes: []string{"iraw"}, LevelsMV: []int{500}}
	tr := spec.Traces()[0]
	cfg := core.DefaultConfig(500, circuit.ModeIRAW)

	dir := t.TempDir()
	r := spec.NewRunner().WithJournal(dir)
	key, err := r.CellKey(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	res, replayed, err := r.RunCell(t.Context(), SweepLabel(500, circuit.ModeIRAW), cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if replayed {
		t.Fatal("first run reported a journal replay")
	}
	if res == nil || res.Run.Instructions == 0 {
		t.Fatalf("RunCell result = %+v", res)
	}

	jnl, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ent, ok := jnl.Get(key)
	if !ok {
		t.Fatalf("journal has no entry under CellKey %s", key)
	}
	if ent.Result.Run != res.Run {
		t.Fatalf("journaled result differs: %+v vs %+v", ent.Result, res)
	}

	// Second run replays rather than re-simulating, bit-identical.
	res2, replayed2, err := spec.NewRunner().WithJournal(dir).RunCell(t.Context(), "replay", cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !replayed2 {
		t.Fatal("second run did not replay from the journal")
	}
	if res2.Run != res.Run || res2.Time != res.Time {
		t.Fatalf("replayed result differs: %+v vs %+v", res2, res)
	}
}
