package sim

// Sweep-spec (de)serialization: the wire form a sweep request travels in
// between the CLIs, the sweep daemon (internal/service) and its external
// worker processes. The spec deliberately carries generators, not data:
// the workload suite is a pure function of (InstsPerTrace,
// SeedsPerProfile), so a remote worker regenerates bit-identical traces
// locally instead of shipping megabytes of records, and the windowing
// parameters pin the exact journal content addresses both sides compute.

import (
	"fmt"
	"strings"

	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
	"lowvcc/internal/trace"
)

// SweepSpec is a serializable sweep request: everything needed to
// reproduce the (mode, vcc, trace) cell grid deterministically on any
// process running the same engine build.
type SweepSpec struct {
	// InstsPerTrace and SeedsPerProfile size the workload suite
	// (workload.Suite); the suite is deterministic in them.
	InstsPerTrace   int `json:"insts_per_trace"`
	SeedsPerProfile int `json:"seeds_per_profile"`
	// Modes names the designs to sweep ("baseline", "iraw", "faultybits",
	// "extrabypass").
	Modes []string `json:"modes"`
	// LevelsMV lists the voltage levels in sweep order; empty selects the
	// full supported range (circuit.Levels()).
	LevelsMV []int `json:"levels_mv,omitempty"`
	// WindowInsts, WarmInsts and WarmMode mirror the Runner fields of the
	// same names (0 window = automatic windowing of long traces, negative
	// = sharding off); they are part of every cell's journal key via the
	// per-trace resolved plan.
	WindowInsts int    `json:"window_insts,omitempty"`
	WarmInsts   int    `json:"warm_insts,omitempty"`
	WarmMode    string `json:"warm_mode,omitempty"` // "functional" (default) or "timed"
	// Width mirrors Runner.Width: the fetch/issue width of every core
	// configuration in the sweep grid, 0 for the modelled default. It is
	// part of the full core configuration and therefore of every cell's
	// journal content address, so the daemon and its worker processes must
	// agree on it — both build each cell's config through the same
	// width-aware path.
	Width int `json:"width,omitempty"`
}

// Validate reports whether the spec is structurally runnable. It is the
// admission check the sweep service applies to untrusted submissions, so
// it rejects rather than clamps.
func (s SweepSpec) Validate() error {
	if s.InstsPerTrace <= 0 {
		return fmt.Errorf("sim: spec: insts_per_trace %d must be positive", s.InstsPerTrace)
	}
	if s.InstsPerTrace > 100_000_000 {
		return fmt.Errorf("sim: spec: insts_per_trace %d is implausibly large", s.InstsPerTrace)
	}
	if s.SeedsPerProfile <= 0 || s.SeedsPerProfile > 64 {
		return fmt.Errorf("sim: spec: seeds_per_profile %d out of range [1, 64]", s.SeedsPerProfile)
	}
	if len(s.Modes) == 0 {
		return fmt.Errorf("sim: spec: no modes")
	}
	if _, err := s.CircuitModes(); err != nil {
		return err
	}
	for _, mv := range s.LevelsMV {
		v := circuit.Millivolts(mv)
		if v < circuit.VMin || v > circuit.VMax {
			return fmt.Errorf("sim: spec: level %dmV outside supported range [%v, %v]", mv, circuit.VMin, circuit.VMax)
		}
	}
	if _, err := ParseWarmMode(s.WarmMode); err != nil {
		return err
	}
	if s.Width != 0 && (s.Width < 1 || s.Width > core.MaxWidth) {
		return fmt.Errorf("sim: spec: width %d out of range [1, %d] (0 = default)", s.Width, core.MaxWidth)
	}
	return nil
}

// ParseMode maps a design name to its circuit.Mode (the inverse of
// Mode.String).
func ParseMode(name string) (circuit.Mode, error) {
	switch strings.TrimSpace(name) {
	case "baseline":
		return circuit.ModeBaseline, nil
	case "iraw":
		return circuit.ModeIRAW, nil
	case "faultybits":
		return circuit.ModeFaultyBits, nil
	case "extrabypass":
		return circuit.ModeExtraBypass, nil
	default:
		return 0, fmt.Errorf("sim: unknown mode %q (want baseline, iraw, faultybits or extrabypass)", name)
	}
}

// ParseModes maps a comma-separated design list ("baseline,iraw") to
// modes — the CLIs' -modes flag format.
func ParseModes(list string) ([]circuit.Mode, error) {
	var modes []circuit.Mode
	for _, s := range strings.Split(list, ",") {
		m, err := ParseMode(s)
		if err != nil {
			return nil, err
		}
		modes = append(modes, m)
	}
	return modes, nil
}

// CircuitModes resolves the spec's mode names.
func (s SweepSpec) CircuitModes() ([]circuit.Mode, error) {
	modes := make([]circuit.Mode, len(s.Modes))
	for i, name := range s.Modes {
		m, err := ParseMode(name)
		if err != nil {
			return nil, err
		}
		modes[i] = m
	}
	return modes, nil
}

// Levels resolves the spec's voltage list (full range when empty).
func (s SweepSpec) Levels() []circuit.Millivolts {
	if len(s.LevelsMV) == 0 {
		return circuit.Levels()
	}
	levels := make([]circuit.Millivolts, len(s.LevelsMV))
	for i, mv := range s.LevelsMV {
		levels[i] = circuit.Millivolts(mv)
	}
	return levels
}

// Traces materializes the spec's workload suite (memoized by workload's
// keyed cache, so repeated materialization across sweeps is free).
func (s SweepSpec) Traces() []*trace.Trace {
	return SuiteSpec{InstsPerTrace: s.InstsPerTrace, SeedsPerProfile: s.SeedsPerProfile}.Traces()
}

// NewRunner builds a Runner carrying the spec's windowing plan and core
// width — the configuration under which every cell's journal key is
// defined. Call Validate first: an unparseable warm mode falls back to
// functional here.
func (s SweepSpec) NewRunner() *Runner {
	wm, _ := ParseWarmMode(s.WarmMode)
	return (&Runner{}).WithWindow(s.WindowInsts, s.WarmInsts).WithWarmMode(wm).WithWidth(s.Width)
}

// PointConfig builds the core configuration of one of the spec's cells —
// the spec's width applied over the modelled default. The sweep daemon
// (key planning) and its external workers (lease execution) both construct
// configs through here, which is what keeps their journal content
// addresses in agreement.
func (s SweepSpec) PointConfig(v circuit.Millivolts, mode circuit.Mode) core.Config {
	return (&Runner{Width: s.Width}).pointConfig(v, mode)
}

// SweepLabel is the canonical label of one operating point's cells, shared
// by local sweeps and the sweep service so progress lines and
// fault-injection rules match either way.
func SweepLabel(v circuit.Millivolts, mode circuit.Mode) string {
	return fmt.Sprintf("sweep %v %v", v, mode)
}

// Fig11bFrom derives one voltage's Figure 11(b) row from the two designs'
// aggregate results — exported for remote-sweep clients that receive the
// aggregates over the wire instead of simulating locally.
func Fig11bFrom(v circuit.Millivolts, base, iraw *core.Result) Fig11bRow {
	return fig11bRow(v, base, iraw)
}
