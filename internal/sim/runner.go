package sim

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner executes independent simulation jobs across a bounded pool of
// goroutines. The zero value is ready to use and sizes the pool to
// runtime.GOMAXPROCS(0).
//
// Scheduling never affects results: jobs write into per-index slots and
// aggregation happens after the pool drains, in a fixed order, so a Runner
// with one worker and a Runner with N workers produce bit-identical output.
type Runner struct {
	// Workers bounds concurrency; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
}

// workers resolves the effective pool size for n jobs.
func (r *Runner) workers(n int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEach runs fn(worker, i) for every i in [0, n) on a pool of exactly
// `workers` goroutines (resolve the count once with r.workers(n) and share
// it with any worker-indexed state — re-resolving could disagree if
// Workers changes concurrently). worker is the stable index of the
// executing goroutine in [0, workers), so callers can keep worker-local
// scratch (the point runner caches one Core per worker). Jobs are handed
// out in index order.
//
// On failure, in-flight jobs finish, unclaimed jobs are abandoned, and the
// error of the lowest-index failed job is returned — deterministic no
// matter which worker hit its error first. Context cancellation likewise
// stops the pool and surfaces ctx.Err().
func (r *Runner) forEach(ctx context.Context, workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		// Inline fast path: no goroutines, same job order.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				// Check for cancellation before claiming, never after: a
				// claimed job always runs. Claims are monotonic, so when
				// job j fails every job below j was claimed earlier and
				// has recorded its own failure by the time the pool
				// drains — the lowest-index-error guarantee depends on
				// claimed jobs never being abandoned.
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if err := fn(worker, i); err != nil {
					errs[i] = err
					failed.Store(true)
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return ctx.Err()
}
