package sim

import (
	"context"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lowvcc/internal/ckpt"
	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
)

// Runner executes independent simulation jobs across a bounded pool of
// goroutines. The zero value is ready to use and sizes the pool to
// runtime.GOMAXPROCS(0).
//
// Scheduling never affects results: Stream emits each (point, trace) cell
// as it completes, every cell's content is deterministic, and the batch
// collectors place cells by index and aggregate in a fixed order — so a
// Runner with one worker and a Runner with N workers produce bit-identical
// output for the same windowing configuration.
type Runner struct {
	// Workers bounds concurrency; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int

	// Width is the fetch/issue width of every core configuration the
	// runner builds itself (the sweep grids and the default-config
	// experiment paths); 0 selects the modelled core's default width
	// (core.DefaultConfig). It does not override the Cfg of an explicit
	// PointSpec. The width is part of the full core configuration, so it
	// flows into every journal content address — sweeps at different
	// widths never collide. Validated by core.Config.Validate via
	// core.DefaultConfigWidth, which also grows the IQ issue/alloc bounds
	// to fit wide cores.
	Width int

	// PointTimeout, when positive, bounds each (point, trace) cell's wall
	// clock, measured from the cell's first claimed window. A cell that
	// exceeds it aborts with a descriptive error, which fails the sweep the
	// same way any simulation error does (deterministic lowest-index
	// reporting — though whether a timeout fires at all depends on the
	// machine, so treat it as a guard rail, not a result).
	PointTimeout time.Duration

	// Progress, when non-nil, is invoked once per completed cell (and once
	// for the terminal error update, if any) before the update is placed on
	// the stream. Invocations are serialized and Done is strictly
	// increasing. Keep it fast: it runs on the emitting worker's goroutine.
	Progress func(PointUpdate)

	// WindowInsts selects sharded long-trace execution. Positive values
	// shard every trace longer than WindowInsts into deterministic sample
	// windows of that many measured instructions (trace.Shard), each
	// preceded by a WarmInsts warm-up prefix that executes unmeasured.
	// Sharded cells run each window as one pass on a fresh (Reset) core
	// and stitch with core.MergeWindowResults; traces at or under the
	// window size keep the exact unsharded warm-up + measure methodology.
	// 0 (the default) selects automatic windowing: traces of at least
	// autoWindowThreshold instructions shard into autoWindowCount windows,
	// shorter traces run unsharded. Negative values disable sharding
	// entirely — the explicit opt-out.
	WindowInsts int

	// WarmInsts is the per-window warm-up prefix length: positive values
	// are explicit, negative values select the window's entire prefix
	// (full-history warm-up), and 0 selects the warm-mode default — the
	// full prefix for functional warm-up, whose checkpointed replay makes
	// whole-history warming affordable (see Checkpoints), and a quarter
	// window for timed warm-up, where every warm instruction costs a
	// simulated one.
	WarmInsts int

	// WarmMode selects how each window's warm-up prefix executes:
	// core.WarmFunctional (the zero value and default) replays it
	// timing-free; core.WarmTimed simulates it on the timed engine (the
	// pre-functional behaviour, kept for equivalence testing and
	// benchmarking).
	WarmMode core.WarmMode

	// Retries bounds how many times a transiently-failed window (timeout,
	// preemption — anything IsTransient reports retryable) re-executes
	// before the cell is declared failed: a window runs at most Retries+1
	// times. Permanent failures (panics, simulation errors) never retry.
	Retries int

	// RetryBackoff is the sleep before the first retry, doubling per
	// subsequent attempt and jittered uniformly into [d/2, d] so retries
	// never synchronize — reassigned cells from a died worker must not
	// thundering-herd the journal or scheduler (0 = retry immediately).
	// The sleep aborts promptly on context cancellation.
	RetryBackoff time.Duration

	// JournalDir, when non-empty, enables the on-disk result journal
	// (internal/journal) rooted there: every completed cell's stitched
	// Result is recorded under a content address covering the trace bytes,
	// the full core configuration, the windowing plan and the engine
	// version, and a later run with the same inputs replays recorded cells
	// instead of re-simulating them — a killed sweep resumes bit-identical
	// to an uninterrupted one. "" (the default) disables journaling.
	JournalDir string

	// JournalSync selects fsync-on-Put for the journal (power-loss
	// durability instead of crash-only; see journal.SetSync). The sweep
	// daemon turns it on; the CLIs leave it off.
	JournalSync bool

	// JournalBudget, when positive, caps the journal directory at that
	// many bytes: least-recently-used entries are evicted past the cap
	// (journal.SetBudget). An evicted entry is a future re-simulation,
	// never an error. 0 (the default) means unbounded.
	JournalBudget int64

	// CkptBudget, when positive, caps the on-disk checkpoint store at
	// that many bytes (ckpt.SetBudget): whole snapshots evict LRU, blobs
	// go with their last referencing manifest, and an evicted snapshot
	// degrades to live warm replay. 0 means unbounded.
	CkptBudget int64

	// AllowPartial switches failure handling from strict (a failed cell
	// cancels the sweep; the stream ends with one terminal error) to
	// partial (a failed cell emits its own *CellError update and every
	// other cell still runs). Batch collectors in partial mode return the
	// completed results alongside a *PartialError listing the failed cells.
	AllowPartial bool

	// Faults, when non-nil, deterministically injects failures for tests
	// (see FaultPlan). Production runners leave it nil.
	Faults *FaultPlan

	// CkptStore, when non-nil, is the warm-state checkpoint store sharded
	// functional warm-up prefixes restore from and capture into
	// (internal/ckpt) — the explicit hook for benchmarks and tests that
	// want to prime or inspect one store across several runners.
	CkptStore *ckpt.Store

	// CkptDir, when non-empty, roots an on-disk checkpoint store there
	// (consulted only when CkptStore is nil). When both are empty the
	// store defaults to JournalDir/ckpt when journaling is on — so sweep
	// workers sharing a journal directory share snapshots through the
	// filesystem — and otherwise to a process-wide in-memory store.
	CkptDir string

	// DisableCheckpoints selects the reference warm path: every sharded
	// window replays its full warm prefix live instead of restoring a
	// snapshot. Results are bit-identical either way (checkpointing moves
	// work, never numbers — fuzz-tested); this is the equivalence-test and
	// benchmark-baseline hook.
	DisableCheckpoints bool

	// ckptOnce/ckptMemo memoize the resolved store for CkptDir/JournalDir.
	ckptOnce sync.Once
	ckptMemo *ckpt.Store
}

// WithWidth sets the fetch/issue width of runner-built core
// configurations (0 = the modelled default; see Width) and returns r for
// chaining.
func (r *Runner) WithWidth(w int) *Runner {
	r.Width = w
	return r
}

// WithPointTimeout sets the per-cell wall-clock budget and returns r for
// chaining.
func (r *Runner) WithPointTimeout(d time.Duration) *Runner {
	r.PointTimeout = d
	return r
}

// WithProgress sets the per-cell completion callback and returns r for
// chaining.
func (r *Runner) WithProgress(f func(PointUpdate)) *Runner {
	r.Progress = f
	return r
}

// WithWindow configures sharded long-trace execution (windowInsts measured
// instructions per sample window — 0 for automatic windowing, negative to
// disable sharding; warmInsts of warm-up prefix — 0 for the warm-mode
// default, negative the full prefix; see WindowInsts and WarmInsts) and
// returns r for chaining.
func (r *Runner) WithWindow(windowInsts, warmInsts int) *Runner {
	r.WindowInsts = windowInsts
	r.WarmInsts = warmInsts
	return r
}

// WithWarmMode selects the warm-up execution mode for sample windows and
// returns r for chaining.
func (r *Runner) WithWarmMode(m core.WarmMode) *Runner {
	r.WarmMode = m
	return r
}

// WithRetry sets the transient-failure retry policy (n retries, backoff
// before the first one, doubling) and returns r for chaining.
func (r *Runner) WithRetry(n int, backoff time.Duration) *Runner {
	r.Retries = n
	r.RetryBackoff = backoff
	return r
}

// WithJournal enables the on-disk result journal rooted at dir (""
// disables it) and returns r for chaining.
func (r *Runner) WithJournal(dir string) *Runner {
	r.JournalDir = dir
	return r
}

// WithJournalSync selects fsync-on-Put for the journal and returns r for
// chaining.
func (r *Runner) WithJournalSync(on bool) *Runner {
	r.JournalSync = on
	return r
}

// WithJournalBudget caps the journal directory at budget bytes (0 =
// unbounded) and returns r for chaining.
func (r *Runner) WithJournalBudget(budget int64) *Runner {
	r.JournalBudget = budget
	return r
}

// WithCheckpointBudget caps the on-disk checkpoint store at budget bytes
// (0 = unbounded) and returns r for chaining.
func (r *Runner) WithCheckpointBudget(budget int64) *Runner {
	r.CkptBudget = budget
	return r
}

// WithAllowPartial selects partial-failure mode and returns r for
// chaining.
func (r *Runner) WithAllowPartial(allow bool) *Runner {
	r.AllowPartial = allow
	return r
}

// WithFaults attaches a fault-injection plan (tests only) and returns r
// for chaining.
func (r *Runner) WithFaults(p *FaultPlan) *Runner {
	r.Faults = p
	return r
}

// WithCheckpointStore attaches an explicit warm-state checkpoint store and
// returns r for chaining.
func (r *Runner) WithCheckpointStore(s *ckpt.Store) *Runner {
	r.CkptStore = s
	return r
}

// WithCheckpointDir roots the warm-state checkpoint store at dir (see
// CkptDir for the resolution order) and returns r for chaining.
func (r *Runner) WithCheckpointDir(dir string) *Runner {
	r.CkptDir = dir
	return r
}

// WithDisableCheckpoints selects the live-replay reference warm path and
// returns r for chaining.
func (r *Runner) WithDisableCheckpoints(disable bool) *Runner {
	r.DisableCheckpoints = disable
	return r
}

// pointConfig builds the core configuration for one operating point under
// the runner's width: the modelled default config at Width 0 (bit-identical
// journal keys to width-oblivious runners), core.DefaultConfigWidth
// otherwise. Every runner-built sweep grid goes through here so local
// sweeps, the sweep daemon and its workers agree on each cell's config —
// and therefore on its journal content address.
func (r *Runner) pointConfig(v circuit.Millivolts, mode circuit.Mode) core.Config {
	if r.Width == 0 {
		return core.DefaultConfig(v, mode)
	}
	return core.DefaultConfigWidth(v, mode, r.Width)
}

// Automatic windowing policy: with WindowInsts 0, traces of at least
// autoWindowThreshold instructions shard into autoWindowCount equal
// windows. The threshold keeps the evaluation suites (tens of thousands of
// instructions) on the exact unsharded methodology; the count is small
// enough that each window amortizes its pipeline cold-start and large
// enough to parallelize a long trace across a typical pool.
const (
	autoWindowThreshold = 200_000
	autoWindowCount     = 8
)

// planFor resolves the effective (window, warm) plan for a trace of n
// instructions — the pure function of (WindowInsts, WarmInsts, WarmMode, n)
// that the shard plan, the journal keys and the checkpoint boundaries are
// all defined by. A zero window result means the trace runs unsharded.
func (r *Runner) planFor(n int) (win, warm int) {
	win = r.WindowInsts
	switch {
	case win < 0:
		return 0, 0
	case win == 0:
		if n < autoWindowThreshold {
			return 0, 0
		}
		win = (n + autoWindowCount - 1) / autoWindowCount
	}
	warm = r.WarmInsts
	if warm == 0 {
		if r.WarmMode == core.WarmFunctional {
			warm = -1 // full history: checkpoints make it near-free
		} else {
			warm = win / 4
		}
	}
	return win, warm
}

// sharedCkpt is the process-wide in-memory checkpoint store runners fall
// back to when no directory is configured: every runner in the process
// shares one snapshot per (trace, config, boundary), which is exactly the
// point of content addressing.
var sharedCkpt, _ = ckpt.Open("")

// checkpoints resolves the runner's warm-state checkpoint store; nil means
// checkpoints are off (disabled explicitly, or moot because the warm mode
// is timed). The CkptDir/JournalDir resolution is memoized: the store must
// be opened once so its in-memory half actually accumulates.
func (r *Runner) checkpoints() *ckpt.Store {
	if r.DisableCheckpoints || r.WarmMode != core.WarmFunctional {
		return nil
	}
	if r.CkptStore != nil {
		return r.CkptStore
	}
	r.ckptOnce.Do(func() {
		dir := r.CkptDir
		if dir == "" && r.JournalDir != "" {
			dir = filepath.Join(r.JournalDir, "ckpt")
		}
		if dir == "" {
			r.ckptMemo = sharedCkpt
			return
		}
		st, err := ckpt.Open(dir)
		if err != nil {
			// The store is a cache: an unusable directory degrades to the
			// shared in-memory store instead of failing the sweep.
			st = sharedCkpt
		} else if r.CkptBudget > 0 {
			st.SetBudget(r.CkptBudget)
		}
		r.ckptMemo = st
	})
	return r.ckptMemo
}

// workers resolves the effective pool size for n jobs.
func (r *Runner) workers(n int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEach runs fn(worker, i) for every i in [0, n) on a pool of exactly
// `workers` goroutines (resolve the count once with r.workers(n) and share
// it with any worker-indexed state — re-resolving could disagree if
// Workers changes concurrently). worker is the stable index of the
// executing goroutine in [0, workers), so callers can keep worker-local
// scratch (the point runner caches one Core per worker). Jobs are handed
// out in index order.
//
// On failure, in-flight jobs finish, unclaimed jobs are abandoned, and the
// error of the lowest-index failed job is returned — deterministic no
// matter which worker hit its error first. Context cancellation likewise
// stops the pool and surfaces ctx.Err().
func (r *Runner) forEach(ctx context.Context, workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		// Inline fast path: no goroutines, same job order.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				// Check for cancellation before claiming, never after: a
				// claimed job always runs. Claims are monotonic, so when
				// job j fails every job below j was claimed earlier and
				// has recorded its own failure by the time the pool
				// drains — the lowest-index-error guarantee depends on
				// claimed jobs never being abandoned.
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if err := fn(worker, i); err != nil {
					errs[i] = err
					failed.Store(true)
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return ctx.Err()
}
