// Package sim is the experiment harness: it runs the workload suite across
// voltage levels and design modes and regenerates every table and figure of
// the paper's evaluation (Section 5), plus the ablations DESIGN.md lists.
//
// Conventions:
//   - every core is warmed with one untimed pass of its trace before the
//     measured pass (the paper's production traces run warm);
//   - suite-level numbers aggregate cycles and time across traces, so they
//     are weighted means;
//   - the energy model is calibrated once per suite on the 600 mV baseline
//     run, per Section 5.1 ("leakage ... set to 10% of the total energy
//     consumption at 600mV").
//
// # Stream/collector architecture
//
// The experiment engine is a streaming pipeline. Runner.Stream is the one
// execution core: it fans every (point, trace) cell across the worker pool
// and emits a PointUpdate the moment a cell completes. Everything else is
// a collector over that stream:
//
//   - runPoints (backing RunPoint and every ablation) places updates into
//     (point, trace-index) slots and aggregates after the stream closes;
//   - SweepStream folds cells into operating points and re-emits each
//     point as its last trace lands (progressive consumers — cmd/figures,
//     cmd/vccsweep — render rows from it before the grid finishes);
//   - Sweep collects SweepStream into the [mode][voltage] grid.
//
// Concurrency conventions:
//   - a Core is not goroutine-safe: exactly one Core per goroutine. The
//     Runner's worker pool gives each worker its own Core and reuses it
//     across jobs of the same operating point via (*core.Core).Reset,
//     which is guaranteed bit-identical to constructing a fresh Core;
//   - the fan-out unit is one (mode, vcc, trace) cell — or, with windowing
//     enabled, one sample window of a cell; jobs never share mutable
//     state, and each writes its *core.Result into its own slot;
//   - emission order follows completion and is scheduling-dependent, but
//     update *content* is not, and collectors place by index — so batch
//     output is bit-identical to sequential output for any worker count;
//   - errors are deterministic: the pool cancels on first failure and the
//     stream's terminal update carries the lowest-index job's error;
//   - cancellation and per-point timeouts preempt from inside the core's
//     run loop (Core.SetStopCheck), so the stream drains promptly even
//     mid-simulation;
//   - the package-level experiment functions (Sweep, RunPoint, the figure
//     and ablation generators) run on a shared default Runner sized to
//     GOMAXPROCS; construct a Runner directly for custom worker counts,
//     windowing, timeouts or context cancellation.
//
// # Sharding determinism rules
//
// With windowing enabled — explicitly (Runner.WindowInsts > 0) or by the
// automatic long-trace policy (WindowInsts 0 shards traces of at least
// autoWindowThreshold instructions; negative opts out) — long traces
// execute as deterministic sample windows instead of two full passes:
// trace.Shard cuts the trace into fixed measured spans, each prefixed by a
// warm-up interval that executes unmeasured on a fresh core
// (core.RunWindow), and core.MergeWindowResults stitches the per-window
// results in window order. The rules that keep this deterministic:
//
//   - the shard plan is a pure function of (trace length, WindowInsts,
//     WarmInsts, WarmMode) via Runner.planFor — never of worker count,
//     scheduling or wall clock;
//   - each window simulates a fixed instruction span on a Reset core, so a
//     window's Result depends only on (config, trace bytes, plan);
//   - stitching always happens in window order, triggered by whichever
//     worker finishes the cell's last window;
//   - traces at or under the window size — and all traces when windowing
//     is off — keep the exact unsharded warm-up + measure methodology, so
//     WindowInsts = 0 and WindowInsts >= len(trace) are bit-identical to
//     the pre-streaming batch engine.
//
// Sharded numbers are a sample-window *approximation* of one production
// pass over the long trace: each window sees only its warm-up prefix of
// history, and the approximation is deterministic and worker-invariant for
// a fixed configuration but not bitwise equal to the unsharded run. How
// close it lands depends on the warm mode (Runner.WarmMode):
//
//   - core.WarmFunctional (the default) replays each window's prefix
//     timing-free (core.WarmReplay), so the default prefix is the window's
//     entire history and the stitched numbers land within a fraction of a
//     percent of the whole-pass run (golden-tested on workload.LongTrace,
//     and gated in scripts/bench_check.sh);
//   - core.WarmTimed simulates the prefix on the timed engine — every warm
//     instruction costs a measured one, so affordable prefixes are short
//     (a quarter window by default) and the stitched IPC is
//     deterministically pessimistic by up to tens of percent (cross-window
//     cache reuse re-paid as cold-start misses), converging as windows
//     grow (golden-tested with a 15% tolerance at window = len/2).
//
// Full-history warm-up is affordable because of the warm-state checkpoint
// store (internal/ckpt): each window's warm prefix restores the deepest
// snapshot at a window boundary and replays only the residual tail, so a
// window start costs O(state size) instead of O(prefix length), and one
// vcc-independent snapshot per (trace, boundary) is shared across every
// operating point, worker and — through a shared journal directory —
// worker process of a sweep. Checkpointing moves work, never numbers: the
// live-replay reference path (Runner.DisableCheckpoints, -ckpt off) is
// bit-identical, enforced by an equivalence fuzz. Warm=0 windows and
// window >= len(trace) stay bit-identical to the unsharded engine in both
// modes.
//
// # Failure semantics
//
// The resilience layer wraps every unit of work so that one bad cell —
// a simulation error, a deadlock timeout, even a panic deep in the
// engine — has a bounded, predictable blast radius:
//
//   - Isolation. Each window job runs under recover(): a panic is
//     converted into a typed *CellError carrying the cell's (mode, vcc,
//     trace) identity, the failing window, the attempt count and the
//     recovered stack, instead of killing the process. A worker whose
//     core panicked or aborted drops its cached Core (Reset is
//     bit-identical to fresh construction, so dropping is always safe).
//
//   - Retry. Failures that mark themselves retryable via a
//     `Transient() bool` method (per-point timeouts, injected transient
//     faults) re-execute up to Runner.Retries times with exponential
//     backoff (Runner.RetryBackoff), re-arming the cell's wall-clock
//     budget per attempt. Permanent failures never retry. A cell that
//     exhausts its retries fails with Attempts recorded — reported, not
//     silently dropped.
//
//   - Strict mode (default). A failed cell cancels outstanding work and
//     the stream emits one terminal update (PointUpdate.Point = -1)
//     carrying the deterministic lowest-index *CellError — exactly the
//     pre-resilience contract, with a typed error.
//
//   - Partial mode (Runner.AllowPartial). A failed cell emits its own
//     update with Err set and identity intact; every other cell — and
//     every other window of the failed cell — still runs, so the
//     reported per-cell error is deterministically the lowest-window one.
//     Batch collectors return completed results plus a *PartialError
//     listing the failures in (point, trace) order; streaming renderers
//     (report.NewStreamTable consumers) mark the cell FAIL(reason) and
//     keep going. Only context cancellation is terminal.
//
//   - Journal (Runner.JournalDir). Completed cells are recorded in an
//     append-only content-addressed on-disk journal (internal/journal)
//     keyed by (trace bytes, full config, windowing plan,
//     core.EngineVersion). A re-run — including after kill -9 mid-sweep —
//     replays recorded cells bit-identically (PointUpdate.Replayed) and
//     simulates only the rest. Torn or corrupt entries are detected by
//     checksum and re-simulated; journal write failures cost only the
//     cache, never the sweep.
package sim

import (
	"context"
	"fmt"
	"time"

	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
	"lowvcc/internal/energy"
	"lowvcc/internal/trace"
	"lowvcc/internal/workload"
)

// SuiteSpec sizes the standard evaluation workload.
type SuiteSpec struct {
	// InstsPerTrace is the dynamic length of each trace.
	InstsPerTrace int
	// SeedsPerProfile is how many traces each workload class contributes.
	SeedsPerProfile int
}

// DefaultSuite is the size used by the checked-in experiments: large enough
// for warm caches and stable rates, small enough to sweep 13 voltages x
// several modes in seconds.
func DefaultSuite() SuiteSpec { return SuiteSpec{InstsPerTrace: 60000, SeedsPerProfile: 2} }

// QuickSuite is a fast variant for tests.
func QuickSuite() SuiteSpec { return SuiteSpec{InstsPerTrace: 20000, SeedsPerProfile: 1} }

// Traces materializes the suite.
func (s SuiteSpec) Traces() []*trace.Trace {
	return workload.Suite(s.InstsPerTrace, s.SeedsPerProfile)
}

// defaultRunner backs the package-level experiment functions: a shared
// GOMAXPROCS-sized pool. Runner carries no state between calls, so sharing
// it is free; its determinism guarantee makes the sharing invisible.
var defaultRunner = &Runner{}

// SetWorkers bounds the default runner's pool to n goroutines; n <= 0
// restores GOMAXPROCS sizing. Call it at startup (the cmd tools' -workers
// flag does); it is not synchronized against experiments already running.
func SetWorkers(n int) { defaultRunner.Workers = n }

// SetWidth sets the fetch/issue width of every core configuration the
// default runner builds (the cmd tools' -width flag); 0 restores the
// modelled default width. Startup-time only, like SetWorkers.
func SetWidth(w int) { defaultRunner.WithWidth(w) }

// SetProgress installs a per-cell completion callback on the default
// runner (the cmd tools' -progress flag); nil removes it. Startup-time
// only, like SetWorkers.
func SetProgress(f func(PointUpdate)) { defaultRunner.Progress = f }

// SetPointTimeout bounds each cell's wall clock on the default runner;
// 0 disables the guard. Startup-time only, like SetWorkers.
func SetPointTimeout(d time.Duration) { defaultRunner.PointTimeout = d }

// SetWindow configures sharded long-trace execution on the default runner
// (the cmd tools' -window/-warm flags); windowInsts 0 selects automatic
// windowing of long traces and negative values disable sharding, while
// warmInsts 0 selects the warm-mode default (the full prefix for
// functional warm-up, a quarter window for timed), negative the full
// prefix. Startup-time only, like SetWorkers.
func SetWindow(windowInsts, warmInsts int) { defaultRunner.WithWindow(windowInsts, warmInsts) }

// SetCheckpoints configures the default runner's warm-state checkpoint
// store (the cmd tools' -ckpt flag): "" or "auto" keeps the default
// resolution (JournalDir/ckpt when journaling is on, else a shared
// in-memory store), "off" selects the live-replay reference path, and any
// other value roots an on-disk store at that directory. Startup-time only,
// like SetWorkers.
func SetCheckpoints(spec string) {
	switch spec {
	case "off":
		defaultRunner.DisableCheckpoints = true
	case "", "auto":
		defaultRunner.DisableCheckpoints = false
		defaultRunner.CkptDir = ""
	default:
		defaultRunner.DisableCheckpoints = false
		defaultRunner.CkptDir = spec
	}
}

// SetWarmMode selects the default runner's sample-window warm-up mode (the
// cmd tools' -warmmode flag). Startup-time only, like SetWorkers.
func SetWarmMode(m core.WarmMode) { defaultRunner.WithWarmMode(m) }

// SetJournal roots the default runner's on-disk result journal at dir (the
// cmd tools' -journal flag); "" disables it. Startup-time only, like
// SetWorkers.
func SetJournal(dir string) { defaultRunner.WithJournal(dir) }

// SetJournalBudget caps the default runner's journal directory at budget
// bytes with LRU eviction (the cmd tools' -journal-budget flag); 0 means
// unbounded. Startup-time only, like SetWorkers.
func SetJournalBudget(budget int64) { defaultRunner.WithJournalBudget(budget) }

// SetCheckpointBudget caps the default runner's on-disk checkpoint store
// at budget bytes with LRU snapshot eviction (the cmd tools'
// -ckpt-budget flag); 0 means unbounded. Startup-time only, like
// SetWorkers.
func SetCheckpointBudget(budget int64) { defaultRunner.WithCheckpointBudget(budget) }

// SetRetries sets the default runner's transient-failure retry policy (the
// cmd tools' -retries flag). Startup-time only, like SetWorkers.
func SetRetries(n int, backoff time.Duration) { defaultRunner.WithRetry(n, backoff) }

// SetAllowPartial selects partial-failure mode on the default runner (the
// cmd tools' -allow-partial flag). Startup-time only, like SetWorkers.
func SetAllowPartial(allow bool) { defaultRunner.WithAllowPartial(allow) }

// ParseWarmMode maps the -warmmode flag spellings to a core.WarmMode.
func ParseWarmMode(s string) (core.WarmMode, error) {
	switch s {
	case "functional", "":
		return core.WarmFunctional, nil
	case "timed":
		return core.WarmTimed, nil
	default:
		return 0, fmt.Errorf("sim: unknown warm mode %q (want functional or timed)", s)
	}
}

// RunPoint simulates every trace at one operating point (warm measurement)
// and returns the per-trace results plus their aggregate. Traces fan out
// across the default runner's pool; results are in trace order.
func RunPoint(cfg core.Config, traces []*trace.Trace) ([]*core.Result, *core.Result, error) {
	return defaultRunner.RunPoint(context.Background(), cfg, traces)
}

// Point is one aggregated operating-point measurement.
type Point struct {
	Vcc  circuit.Millivolts
	Mode circuit.Mode
	Agg  *core.Result
}

// Sweep runs the suite for each voltage level in each mode, fanning every
// (mode, voltage, trace) cell across the default runner's pool. modes maps
// to rows; the result is indexed [mode][voltage].
func Sweep(traces []*trace.Trace, modes []circuit.Mode, levels []circuit.Millivolts) (map[circuit.Mode]map[circuit.Millivolts]*Point, error) {
	return defaultRunner.Sweep(context.Background(), traces, modes, levels)
}

// SweepStream runs the (modes x levels) grid on the default runner and
// emits each operating point the moment its last trace completes; see
// Runner.SweepStream for the drain contract.
func SweepStream(ctx context.Context, traces []*trace.Trace, modes []circuit.Mode, levels []circuit.Millivolts) <-chan SweepUpdate {
	return defaultRunner.SweepStream(ctx, traces, modes, levels)
}

// StreamLevels collects a streaming sweep voltage by voltage on the
// default runner; see Runner.StreamLevels.
func StreamLevels(ctx context.Context, traces []*trace.Trace, modes []circuit.Mode, levels []circuit.Millivolts, onLevel func(circuit.Millivolts, map[circuit.Mode]*Point, map[circuit.Mode]*CellError) error) error {
	return defaultRunner.StreamLevels(ctx, traces, modes, levels, onLevel)
}

// CalibratedEnergy builds an energy model calibrated on the 600 mV baseline
// aggregate, as the paper prescribes. The calibration point is built at
// the default runner's configured width so width sweeps calibrate against
// a same-width baseline.
func CalibratedEnergy(traces []*trace.Trace) (*energy.Model, error) {
	cfg := defaultRunner.pointConfig(600, circuit.ModeBaseline)
	_, agg, err := RunPoint(cfg, traces)
	if err != nil {
		return nil, err
	}
	m := energy.New(energy.DefaultWeights())
	if err := m.Calibrate(agg.Activity, agg.Time); err != nil {
		return nil, err
	}
	return m, nil
}

// IRAWOverheads computes the area and pessimistic-energy overheads of the
// IRAW hardware for the default core (Section 5.3: <0.03% area, <1% energy).
func IRAWOverheads() energy.Area {
	c := core.MustNew(core.DefaultConfig(500, circuit.ModeIRAW))
	return energy.Area{
		CoreSRAMBits:     c.TotalSRAMBits(),
		ExtraLatchBits:   c.IRAWExtraBits(),
		LatchToSRAMRatio: 4,
	}
}
