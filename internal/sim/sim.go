// Package sim is the experiment harness: it runs the workload suite across
// voltage levels and design modes and regenerates every table and figure of
// the paper's evaluation (Section 5), plus the ablations DESIGN.md lists.
//
// Conventions:
//   - every core is warmed with one untimed pass of its trace before the
//     measured pass (the paper's production traces run warm);
//   - suite-level numbers aggregate cycles and time across traces, so they
//     are weighted means;
//   - the energy model is calibrated once per suite on the 600 mV baseline
//     run, per Section 5.1 ("leakage ... set to 10% of the total energy
//     consumption at 600mV").
//
// Concurrency conventions (the parallel experiment engine):
//   - a Core is not goroutine-safe: exactly one Core per goroutine. The
//     Runner's worker pool gives each worker its own Core and reuses it
//     across traces of the same operating point via (*core.Core).Reset,
//     which is guaranteed bit-identical to constructing a fresh Core;
//   - the fan-out unit is one (mode, vcc, trace) cell; cells never share
//     mutable state, and each writes its *core.Result into its own
//     pre-indexed slot;
//   - aggregation is deterministic: per-point merges happen after the pool
//     drains, always in (mode, vcc, trace-index) order, so parallel output
//     is bit-identical to sequential output for any worker count;
//   - the package-level experiment functions (Sweep, RunPoint, the figure
//     and ablation generators) run on a shared default Runner sized to
//     GOMAXPROCS; construct a Runner directly for custom worker counts or
//     context cancellation.
package sim

import (
	"context"

	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
	"lowvcc/internal/energy"
	"lowvcc/internal/trace"
	"lowvcc/internal/workload"
)

// SuiteSpec sizes the standard evaluation workload.
type SuiteSpec struct {
	// InstsPerTrace is the dynamic length of each trace.
	InstsPerTrace int
	// SeedsPerProfile is how many traces each workload class contributes.
	SeedsPerProfile int
}

// DefaultSuite is the size used by the checked-in experiments: large enough
// for warm caches and stable rates, small enough to sweep 13 voltages x
// several modes in seconds.
func DefaultSuite() SuiteSpec { return SuiteSpec{InstsPerTrace: 60000, SeedsPerProfile: 2} }

// QuickSuite is a fast variant for tests.
func QuickSuite() SuiteSpec { return SuiteSpec{InstsPerTrace: 20000, SeedsPerProfile: 1} }

// Traces materializes the suite.
func (s SuiteSpec) Traces() []*trace.Trace {
	return workload.Suite(s.InstsPerTrace, s.SeedsPerProfile)
}

// defaultRunner backs the package-level experiment functions: a shared
// GOMAXPROCS-sized pool. Runner carries no state between calls, so sharing
// it is free; its determinism guarantee makes the sharing invisible.
var defaultRunner = &Runner{}

// SetWorkers bounds the default runner's pool to n goroutines; n <= 0
// restores GOMAXPROCS sizing. Call it at startup (the cmd tools' -workers
// flag does); it is not synchronized against experiments already running.
func SetWorkers(n int) { defaultRunner.Workers = n }

// RunPoint simulates every trace at one operating point (warm measurement)
// and returns the per-trace results plus their aggregate. Traces fan out
// across the default runner's pool; results are in trace order.
func RunPoint(cfg core.Config, traces []*trace.Trace) ([]*core.Result, *core.Result, error) {
	return defaultRunner.RunPoint(context.Background(), cfg, traces)
}

// Point is one aggregated operating-point measurement.
type Point struct {
	Vcc  circuit.Millivolts
	Mode circuit.Mode
	Agg  *core.Result
}

// Sweep runs the suite for each voltage level in each mode, fanning every
// (mode, voltage, trace) cell across the default runner's pool. modes maps
// to rows; the result is indexed [mode][voltage].
func Sweep(traces []*trace.Trace, modes []circuit.Mode, levels []circuit.Millivolts) (map[circuit.Mode]map[circuit.Millivolts]*Point, error) {
	return defaultRunner.Sweep(context.Background(), traces, modes, levels)
}

// CalibratedEnergy builds an energy model calibrated on the 600 mV baseline
// aggregate, as the paper prescribes.
func CalibratedEnergy(traces []*trace.Trace) (*energy.Model, error) {
	cfg := core.DefaultConfig(600, circuit.ModeBaseline)
	_, agg, err := RunPoint(cfg, traces)
	if err != nil {
		return nil, err
	}
	m := energy.New(energy.DefaultWeights())
	if err := m.Calibrate(agg.Activity, agg.Time); err != nil {
		return nil, err
	}
	return m, nil
}

// IRAWOverheads computes the area and pessimistic-energy overheads of the
// IRAW hardware for the default core (Section 5.3: <0.03% area, <1% energy).
func IRAWOverheads() energy.Area {
	c := core.MustNew(core.DefaultConfig(500, circuit.ModeIRAW))
	return energy.Area{
		CoreSRAMBits:     c.TotalSRAMBits(),
		ExtraLatchBits:   c.IRAWExtraBits(),
		LatchToSRAMRatio: 4,
	}
}
