// Package sim is the experiment harness: it runs the workload suite across
// voltage levels and design modes and regenerates every table and figure of
// the paper's evaluation (Section 5), plus the ablations DESIGN.md lists.
//
// Conventions:
//   - every core is warmed with one untimed pass of its trace before the
//     measured pass (the paper's production traces run warm);
//   - suite-level numbers aggregate cycles and time across traces, so they
//     are weighted means;
//   - the energy model is calibrated once per suite on the 600 mV baseline
//     run, per Section 5.1 ("leakage ... set to 10% of the total energy
//     consumption at 600mV").
package sim

import (
	"fmt"

	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
	"lowvcc/internal/energy"
	"lowvcc/internal/trace"
	"lowvcc/internal/workload"
)

// SuiteSpec sizes the standard evaluation workload.
type SuiteSpec struct {
	// InstsPerTrace is the dynamic length of each trace.
	InstsPerTrace int
	// SeedsPerProfile is how many traces each workload class contributes.
	SeedsPerProfile int
}

// DefaultSuite is the size used by the checked-in experiments: large enough
// for warm caches and stable rates, small enough to sweep 13 voltages x
// several modes in seconds.
func DefaultSuite() SuiteSpec { return SuiteSpec{InstsPerTrace: 60000, SeedsPerProfile: 2} }

// QuickSuite is a fast variant for tests.
func QuickSuite() SuiteSpec { return SuiteSpec{InstsPerTrace: 20000, SeedsPerProfile: 1} }

// Traces materializes the suite.
func (s SuiteSpec) Traces() []*trace.Trace {
	return workload.Suite(s.InstsPerTrace, s.SeedsPerProfile)
}

// RunPoint simulates every trace at one operating point (warm measurement)
// and returns the per-trace results plus their aggregate.
func RunPoint(cfg core.Config, traces []*trace.Trace) ([]*core.Result, *core.Result, error) {
	results := make([]*core.Result, 0, len(traces))
	for _, tr := range traces {
		c, err := core.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		if _, err := c.Run(tr); err != nil { // warm-up pass
			return nil, nil, fmt.Errorf("warmup %s: %w", tr.Name, err)
		}
		res, err := c.Run(tr)
		if err != nil {
			return nil, nil, fmt.Errorf("measure %s: %w", tr.Name, err)
		}
		results = append(results, res)
	}
	return results, core.MergeResults(results), nil
}

// Point is one aggregated operating-point measurement.
type Point struct {
	Vcc  circuit.Millivolts
	Mode circuit.Mode
	Agg  *core.Result
}

// Sweep runs the suite for each voltage level in each mode.
// modes maps to rows; the result is indexed [mode][voltage].
func Sweep(traces []*trace.Trace, modes []circuit.Mode, levels []circuit.Millivolts) (map[circuit.Mode]map[circuit.Millivolts]*Point, error) {
	out := make(map[circuit.Mode]map[circuit.Millivolts]*Point, len(modes))
	for _, mode := range modes {
		out[mode] = make(map[circuit.Millivolts]*Point, len(levels))
		for _, v := range levels {
			cfg := core.DefaultConfig(v, mode)
			_, agg, err := RunPoint(cfg, traces)
			if err != nil {
				return nil, fmt.Errorf("sweep %v %v: %w", v, mode, err)
			}
			out[mode][v] = &Point{Vcc: v, Mode: mode, Agg: agg}
		}
	}
	return out, nil
}

// CalibratedEnergy builds an energy model calibrated on the 600 mV baseline
// aggregate, as the paper prescribes.
func CalibratedEnergy(traces []*trace.Trace) (*energy.Model, error) {
	cfg := core.DefaultConfig(600, circuit.ModeBaseline)
	_, agg, err := RunPoint(cfg, traces)
	if err != nil {
		return nil, err
	}
	m := energy.New(energy.DefaultWeights())
	if err := m.Calibrate(agg.Activity, agg.Time); err != nil {
		return nil, err
	}
	return m, nil
}

// IRAWOverheads computes the area and pessimistic-energy overheads of the
// IRAW hardware for the default core (Section 5.3: <0.03% area, <1% energy).
func IRAWOverheads() energy.Area {
	c := core.MustNew(core.DefaultConfig(500, circuit.ModeIRAW))
	return energy.Area{
		CoreSRAMBits:     c.TotalSRAMBits(),
		ExtraLatchBits:   c.IRAWExtraBits(),
		LatchToSRAMRatio: 4,
	}
}
