package sim

import (
	"testing"

	"lowvcc/internal/circuit"
)

func TestCompilerReschedReducesDelays(t *testing.T) {
	traces := SuiteSpec{InstsPerTrace: 8000, SeedsPerProfile: 1}.Traces()
	res, err := CompilerResched(traces, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.DelayedAfter >= res.DelayedBefore {
		t.Errorf("rescheduling did not reduce delayed instructions: %.3f -> %.3f",
			res.DelayedBefore, res.DelayedAfter)
	}
	if res.PerfGainAfter < res.PerfGainBefore-0.01 {
		t.Errorf("rescheduling hurt the IRAW speedup: %.3f -> %.3f",
			res.PerfGainBefore, res.PerfGainAfter)
	}
}

func TestGateSensitivity(t *testing.T) {
	traces := SuiteSpec{InstsPerTrace: 6000, SeedsPerProfile: 1}.Traces()
	rows, err := GateSensitivity(traces, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Threshold != r.ICI+r.AI*1 { // N=1 at 500 mV
			t.Errorf("threshold %d for ICI=%d AI=%d", r.Threshold, r.ICI, r.AI)
		}
		if r.IPC <= 0 {
			t.Errorf("IPC %v", r.IPC)
		}
		// The gate's direct share stays small in every configuration
		// (the paper lumps it into the 0.04% "remaining blocks").
		if r.GateShare > 0.05 {
			t.Errorf("ICI=%d AI=%d: gate share %.3f implausibly large", r.ICI, r.AI, r.GateShare)
		}
	}
}

func TestSTableSizing(t *testing.T) {
	traces := SuiteSpec{InstsPerTrace: 6000, SeedsPerProfile: 1}.Traces()
	rows, err := STableSizing(traces, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Entries != r.StoresPerCycle*5 { // MaxStabilize 4 -> spc*(4+1)
			t.Errorf("entries = %d for spc %d", r.Entries, r.StoresPerCycle)
		}
		// Wider provisioning must not reduce IPC (more coverage, never
		// less; the modelled commit width stays 1 so rates barely move).
		if i > 0 && r.IPC < rows[i-1].IPC*0.99 {
			t.Errorf("IPC fell with a larger STable: %+v", rows)
		}
	}
}

func TestDeterminismMode(t *testing.T) {
	traces := SuiteSpec{InstsPerTrace: 6000, SeedsPerProfile: 1}.Traces()
	res, err := DeterminismMode(traces, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic mode may stall but must not corrupt predictions
	// through the RSB; its IPC cost is tiny (the paper: stalling the RSB
	// after a call "is very unlikely to delay any instruction").
	if res.DeterministicIPC < res.DefaultIPC*0.98 {
		t.Errorf("deterministic mode cost too much: %.3f vs %.3f",
			res.DeterministicIPC, res.DefaultIPC)
	}
}

func TestCalibratedEnergyModel(t *testing.T) {
	traces := SuiteSpec{InstsPerTrace: 6000, SeedsPerProfile: 1}.Traces()
	m, err := CalibratedEnergy(traces)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Calibrated() {
		t.Fatal("model not calibrated")
	}
	// Leakage power grows monotonically as Vcc falls.
	prev := 0.0
	for _, v := range circuit.Levels() {
		p := m.LeakagePower(v)
		if prev > 0 && p < prev {
			t.Errorf("leakage power fell from %v at %v", p, v)
		}
		prev = p
	}
}

func TestEDP450WorkedExample(t *testing.T) {
	traces := SuiteSpec{InstsPerTrace: 6000, SeedsPerProfile: 1}.Traces()
	res, err := EDP450(traces)
	if err != nil {
		t.Fatal(err)
	}
	// Scaled so the unconstrained case totals 5 J (the paper's framing).
	if res.Unconstrained.Total() < 4.99 || res.Unconstrained.Total() > 5.01 {
		t.Fatalf("unconstrained total = %.2f, want 5", res.Unconstrained.Total())
	}
	// Orderings from the paper: baseline most energy, IRAW between.
	if !(res.Baseline.Total() > res.IRAW.Total() && res.IRAW.Total() > res.Unconstrained.Total()) {
		t.Errorf("energy ordering wrong: base=%.2f iraw=%.2f unc=%.2f",
			res.Baseline.Total(), res.IRAW.Total(), res.Unconstrained.Total())
	}
	// Leakage dominance grows with execution time.
	if res.Baseline.Leakage <= res.IRAW.Leakage {
		t.Errorf("baseline leakage %.2f not above IRAW %.2f", res.Baseline.Leakage, res.IRAW.Leakage)
	}
}
