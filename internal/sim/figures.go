package sim

import (
	"context"
	"fmt"

	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
	"lowvcc/internal/energy"
	"lowvcc/internal/stats"
	"lowvcc/internal/trace"
)

// Fig1Row is one voltage's delays, normalized to a 12-FO4 clock phase at
// 700 mV (Figure 1's y-axis).
type Fig1Row struct {
	Vcc          circuit.Millivolts
	Phase        float64 // 12 FO4 (one clock phase)
	BitcellWrite float64
	BitcellRead  float64
	WriteWithWL  float64
	ReadWithWL   float64
}

// Figure1 evaluates the circuit model across the voltage range.
func Figure1() []Fig1Row {
	m := circuit.Default()
	rows := make([]Fig1Row, 0, len(circuit.Levels()))
	for _, v := range circuit.Levels() {
		rows = append(rows, Fig1Row{
			Vcc:          v,
			Phase:        m.Phase(v),
			BitcellWrite: m.BitcellWrite(v),
			BitcellRead:  m.BitcellRead(v),
			WriteWithWL:  m.WriteWithWL(v),
			ReadWithWL:   m.ReadWithWL(v),
		})
	}
	return rows
}

// Fig11aRow is one voltage's cycle times normalized to 24 FO4 at 700 mV
// (Figure 11(a)).
type Fig11aRow struct {
	Vcc           circuit.Millivolts
	LogicCycle    float64 // 24 FO4
	BaselineCycle float64 // write-delay constrained
	IRAWCycle     float64
}

// Figure11a evaluates the cycle-time curves.
func Figure11a() []Fig11aRow {
	m := circuit.Default()
	norm := 1 / m.LogicCycle(700)
	rows := make([]Fig11aRow, 0, len(circuit.Levels()))
	for _, v := range circuit.Levels() {
		rows = append(rows, Fig11aRow{
			Vcc:           v,
			LogicCycle:    m.LogicCycle(v) * norm,
			BaselineCycle: m.BaselineCycle(v) * norm,
			IRAWCycle:     m.PlanIRAW(v).CycleTime * norm,
		})
	}
	return rows
}

// Fig11bRow is one voltage's frequency and performance gain (Figure 11(b)).
type Fig11bRow struct {
	Vcc       circuit.Millivolts
	FreqGain  float64 // f_IRAW / f_baseline
	PerfGain  float64 // T_baseline / T_IRAW (suite aggregate)
	IPCBase   float64
	IPCIRAW   float64
	StallCost float64 // 1 - IPC_IRAW/IPC_base at iso-voltage
}

// Figure11b sweeps both designs over the full range and measures speedups.
func Figure11b(traces []*trace.Trace) ([]Fig11bRow, error) {
	return Figure11bStream(context.Background(), traces, nil)
}

// fig11bRow derives one voltage's row from the two designs' aggregates.
func fig11bRow(v circuit.Millivolts, base, iraw *core.Result) Fig11bRow {
	row := Fig11bRow{
		Vcc:      v,
		FreqGain: iraw.Plan.FreqGain,
		PerfGain: base.Time / iraw.Time,
		IPCBase:  base.IPC(),
		IPCIRAW:  iraw.IPC(),
	}
	if row.IPCBase > 0 {
		row.StallCost = 1 - row.IPCIRAW/row.IPCBase
	}
	return row
}

// Figure11bStream is Figure11b off the streaming sweep: rows are handed to
// emit in voltage order as soon as both designs at a voltage have
// completed, so callers can render the figure progressively while the rest
// of the grid is still running. The returned slice is the complete figure,
// bit-identical to the batch Figure11b (which is implemented as this
// function with a nil emit).
//
// In partial mode a voltage whose cells failed is handed to emit with fail
// set (its row carries only the Vcc) and left out of the returned slice;
// the figure then comes back with a *PartialError listing every failed
// voltage's cell error, alongside the completed rows.
func Figure11bStream(ctx context.Context, traces []*trace.Trace, emit func(row Fig11bRow, fail *CellError)) ([]Fig11bRow, error) {
	modes := []circuit.Mode{circuit.ModeBaseline, circuit.ModeIRAW}
	levels := circuit.Levels()
	rows := make([]Fig11bRow, 0, len(levels))
	var failed []*CellError
	err := defaultRunner.StreamLevels(ctx, traces, modes, levels,
		func(v circuit.Millivolts, pts map[circuit.Mode]*Point, fails map[circuit.Mode]*CellError) error {
			if len(fails) > 0 {
				// Deterministic representative: baseline's failure first.
				fail := fails[circuit.ModeBaseline]
				if fail == nil {
					fail = fails[circuit.ModeIRAW]
				}
				failed = append(failed, fail)
				if emit != nil {
					emit(Fig11bRow{Vcc: v}, fail)
				}
				return nil
			}
			row := fig11bRow(v, pts[circuit.ModeBaseline].Agg, pts[circuit.ModeIRAW].Agg)
			rows = append(rows, row)
			if emit != nil {
				emit(row, nil)
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	if len(failed) > 0 {
		return rows, &PartialError{Cells: failed, Total: len(modes) * len(levels)}
	}
	return rows, nil
}

// Fig12Row is one voltage's relative energy, delay and EDP (IRAW/baseline,
// Figure 12).
type Fig12Row struct {
	Vcc       circuit.Millivolts
	RelDelay  float64
	RelEnergy float64
	RelEDP    float64
	// Absolute values for the EXPERIMENTS record.
	BaseEnergy, IRAWEnergy energy.Breakdown
	BaseTime, IRAWTime     float64
}

// Figure12 measures the energy/delay/EDP curves with the calibrated model.
func Figure12(traces []*trace.Trace) ([]Fig12Row, error) {
	model, err := CalibratedEnergy(traces)
	if err != nil {
		return nil, err
	}
	sweep, err := Sweep(traces, []circuit.Mode{circuit.ModeBaseline, circuit.ModeIRAW}, circuit.Levels())
	if err != nil {
		return nil, err
	}
	ovh := IRAWOverheads().EnergyOverheadFraction()
	rows := make([]Fig12Row, 0, len(circuit.Levels()))
	for _, v := range circuit.Levels() {
		base := sweep[circuit.ModeBaseline][v].Agg
		iraw := sweep[circuit.ModeIRAW][v].Agg
		be := model.Energy(v, base.Activity, base.Time, 0)
		ie := model.Energy(v, iraw.Activity, iraw.Time, ovh)
		row := Fig12Row{
			Vcc:        v,
			RelDelay:   iraw.Time / base.Time,
			RelEnergy:  ie.Total() / be.Total(),
			BaseEnergy: be, IRAWEnergy: ie,
			BaseTime: base.Time, IRAWTime: iraw.Time,
		}
		row.RelEDP = row.RelDelay * row.RelEnergy
		rows = append(rows, row)
	}
	return rows, nil
}

// Table1Row compares one mechanism at a voltage point (Table 1 made
// quantitative: the qualitative rows of the paper plus measured numbers).
type Table1Row struct {
	Mode circuit.Mode
	// Qualitative characteristics from the paper's Table 1.
	WorksForAllBlocks bool
	AdaptsToVcc       bool
	HardwareOverhead  string
	HardToTest        bool
	// Measured at the comparison point.
	FreqGain       float64
	PerfGain       float64
	IPC            float64
	DisabledLines  int
	ExtraLatchBits int
	Feasible       bool // whether the design works for every block physically
	Caveat         string
}

// Table1Result is the mechanism comparison at one voltage.
type Table1Result struct {
	Vcc  circuit.Millivolts
	Rows []Table1Row
}

// Table1 runs the three designs plus the baseline at the comparison point
// (500 mV, where the paper quotes its headline numbers).
func Table1(traces []*trace.Trace, v circuit.Millivolts) (*Table1Result, error) {
	modes := []circuit.Mode{circuit.ModeBaseline, circuit.ModeFaultyBits, circuit.ModeExtraBypass, circuit.ModeIRAW}
	sweep, err := Sweep(traces, modes, []circuit.Millivolts{v})
	if err != nil {
		return nil, err
	}
	base := sweep[circuit.ModeBaseline][v].Agg
	res := &Table1Result{Vcc: v}
	for _, mode := range modes {
		agg := sweep[mode][v].Agg
		row := Table1Row{
			Mode:     mode,
			FreqGain: agg.Plan.FreqGain,
			PerfGain: base.Time / agg.Time,
			IPC:      agg.IPC(),
		}
		switch mode {
		case circuit.ModeBaseline:
			row.WorksForAllBlocks = true
			row.AdaptsToVcc = true
			row.HardwareOverhead = "none"
			row.Feasible = true
			row.Caveat = "frequency limited by SRAM write delay"
		case circuit.ModeFaultyBits:
			row.WorksForAllBlocks = false // RF/IQ need all entries
			row.AdaptsToVcc = false       // fault maps per level, retest on change
			row.HardwareOverhead = "fault maps (low but costly to maintain)"
			row.HardToTest = true
			row.DisabledLines = agg.IL0.DisabledLines + agg.DL0.DisabledLines + agg.UL1.DisabledLines
			row.Feasible = false
			row.Caveat = "idealized: assumes the RF tolerates faulty entries, which it cannot"
		case circuit.ModeExtraBypass:
			row.WorksForAllBlocks = false // cache addresses known too late
			row.AdaptsToVcc = false       // bypass cost paid at every level
			row.HardwareOverhead = "high: wide latches and wires on critical paths"
			row.ExtraLatchBits = 2 * 128 // two pipelined 128-bit SIMD write latches
			row.Feasible = false
			row.Caveat = "idealized: assumes cache-like blocks need no extra bypass"
		case circuit.ModeIRAW:
			row.WorksForAllBlocks = true
			row.AdaptsToVcc = true
			row.HardwareOverhead = "low: scoreboard bits, STable, counters"
			row.ExtraLatchBits = IRAWOverheads().ExtraLatchBits
			row.Feasible = true
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// BreakdownResult reports the Section 5.2 stall decomposition at one level.
type BreakdownResult struct {
	Vcc circuit.Millivolts
	// PerfDrop is 1 - IPC_IRAW/IPC_baseline at iso-voltage (the paper's
	// 8.86% at 575 mV).
	PerfDrop float64
	// Shares decompose the IRAW-attributed stall cycles.
	RFShare, IQShare, DL0Share, OtherShare float64
	// DelayedFraction is the 13.2% statistic.
	DelayedFraction float64
}

// Breakdown measures the stall decomposition at v (the paper quotes 575 mV).
func Breakdown(traces []*trace.Trace, v circuit.Millivolts) (*BreakdownResult, error) {
	sweep, err := Sweep(traces, []circuit.Mode{circuit.ModeBaseline, circuit.ModeIRAW}, []circuit.Millivolts{v})
	if err != nil {
		return nil, err
	}
	base := sweep[circuit.ModeBaseline][v].Agg
	iraw := sweep[circuit.ModeIRAW][v].Agg
	res := &BreakdownResult{
		Vcc:             v,
		DelayedFraction: iraw.Run.DelayedFraction(),
	}
	if base.IPC() > 0 {
		res.PerfDrop = 1 - iraw.IPC()/base.IPC()
	}
	cyc := float64(iraw.Run.Cycles)
	if cyc > 0 {
		sub := func(a, b uint64) float64 {
			if a <= b {
				return 0
			}
			return float64(a - b)
		}
		res.RFShare = float64(iraw.Run.IssueStalls[stats.StallRFIRAW]) / cyc
		res.IQShare = float64(iraw.Run.IssueStalls[stats.StallIQGate]) / cyc
		// Fill-port stalls exist in the baseline too (a fill occupies the
		// ports for its write cycle); only the excess is IRAW's cost.
		res.DL0Share = (float64(iraw.Run.IssueStalls[stats.StallDL0IRAW]) +
			float64(iraw.Mem.DL0ReplayStallCycles) +
			sub(iraw.DL0.FillStallCycles, base.DL0.FillStallCycles)) / cyc
		res.OtherShare = (float64(iraw.Run.IssueStalls[stats.StallOtherIRAW]) +
			sub(iraw.IL0.FillStallCycles, base.IL0.FillStallCycles) +
			sub(iraw.UL1.FillStallCycles, base.UL1.FillStallCycles) +
			sub(iraw.ITLB.FillStallCycles, base.ITLB.FillStallCycles) +
			sub(iraw.DTLB.FillStallCycles, base.DTLB.FillStallCycles)) / cyc
	}
	return res, nil
}

// BPStatsResult reports the Section 4.5 prediction-only numbers.
type BPStatsResult struct {
	PotentialCorruptionRate float64 // per prediction
	RSBConflicts            uint64
	ReturnPredictions       uint64
}

// BPStats measures the prediction-only violation statistics at v.
func BPStats(traces []*trace.Trace, v circuit.Millivolts) (*BPStatsResult, error) {
	cfg := defaultRunner.pointConfig(v, circuit.ModeIRAW)
	_, agg, err := RunPoint(cfg, traces)
	if err != nil {
		return nil, err
	}
	res := &BPStatsResult{
		RSBConflicts:      agg.BP.RSBConflicts,
		ReturnPredictions: agg.BP.ReturnPredictions,
	}
	if agg.BP.Predictions > 0 {
		res.PotentialCorruptionRate = float64(agg.BP.PotentialCorruptions) / float64(agg.BP.Predictions)
	}
	return res, nil
}

// EDP450Result is the Section 5.3 worked example: absolute energies at
// 450 mV for the unconstrained-logic, baseline and IRAW designs, scaled so
// the unconstrained case totals 5 J as in the paper's illustration.
type EDP450Result struct {
	Unconstrained, Baseline, IRAW energy.Breakdown
}

// EDP450 reproduces the worked example. The "cycle time not constrained by
// write delay" case is approximated by the IRAW design with its stalls —
// closest to a logic-limited core — rescaled onto the paper's 5 J budget.
func EDP450(traces []*trace.Trace) (*EDP450Result, error) {
	model, err := CalibratedEnergy(traces)
	if err != nil {
		return nil, err
	}
	const v = circuit.Millivolts(450)
	sweep, err := Sweep(traces, []circuit.Mode{circuit.ModeBaseline, circuit.ModeIRAW}, []circuit.Millivolts{v})
	if err != nil {
		return nil, err
	}
	base := sweep[circuit.ModeBaseline][v].Agg
	iraw := sweep[circuit.ModeIRAW][v].Agg

	// Unconstrained: logic-speed clock with no IRAW stalls. Model it from
	// the baseline run's cycle count at the logic cycle time.
	m := circuit.Default()
	uncTime := float64(base.Run.Cycles) * m.LogicCycle(v)
	unc := model.Energy(v, base.Activity, uncTime, 0)
	scale := 5.0 / unc.Total()

	ovh := IRAWOverheads().EnergyOverheadFraction()
	be := model.Energy(v, base.Activity, base.Time, 0)
	ie := model.Energy(v, iraw.Activity, iraw.Time, ovh)
	return &EDP450Result{
		Unconstrained: energy.Breakdown{Dynamic: unc.Dynamic * scale, Leakage: unc.Leakage * scale},
		Baseline:      energy.Breakdown{Dynamic: be.Dynamic * scale, Leakage: be.Leakage * scale},
		IRAW:          energy.Breakdown{Dynamic: ie.Dynamic * scale, Leakage: ie.Leakage * scale},
	}, nil
}

// NSweepRow is the stabilization-cycle ablation at one N.
type NSweepRow struct {
	N        int
	PerfGain float64
	Delayed  float64
}

// NSweep forces N = 1..maxN at v and measures the cost of wider bubbles
// ("our mechanism would work also for different technology nodes or Vcc
// ranges where the number of IRAW cycles was larger", Section 5.2). The
// baseline and every forced-N point fan out together across the pool.
func NSweep(traces []*trace.Trace, v circuit.Millivolts, maxN int) ([]NSweepRow, error) {
	specs := make([]PointSpec, 0, maxN+1)
	specs = append(specs, PointSpec{
		Label: fmt.Sprintf("nsweep %v baseline", v),
		Cfg:   defaultRunner.pointConfig(v, circuit.ModeBaseline), Traces: traces,
	})
	for n := 1; n <= maxN; n++ {
		cfg := defaultRunner.pointConfig(v, circuit.ModeIRAW)
		cfg.ForcedN = n
		specs = append(specs, PointSpec{
			Label: fmt.Sprintf("nsweep %v N=%d", v, n),
			Cfg:   cfg, Traces: traces,
		})
	}
	_, aggs, err := defaultRunner.runPoints(context.Background(), specs)
	if err != nil {
		return nil, err
	}
	base := aggs[0]
	rows := make([]NSweepRow, 0, maxN)
	for n := 1; n <= maxN; n++ {
		agg := aggs[n]
		rows = append(rows, NSweepRow{
			N:        n,
			PerfGain: base.Time / agg.Time,
			Delayed:  agg.Run.DelayedFraction(),
		})
	}
	return rows, nil
}

// ValidationResult is the correctness evidence: with avoidance on, nothing
// unsafe is ever consumed; with it off at the same clock, corruption shows.
type ValidationResult struct {
	SafeCorrupt, SafeIntegrity      uint64
	UnsafeViolations, UnsafeCorrupt uint64
}

// Validate runs the safety experiment at v. The safe and unsafe variants
// fan out together through one runPoints call, so the pool never drains
// between them.
func Validate(traces []*trace.Trace, v circuit.Millivolts) (*ValidationResult, error) {
	safeCfg := defaultRunner.pointConfig(v, circuit.ModeIRAW)
	unsafeCfg := defaultRunner.pointConfig(v, circuit.ModeIRAW)
	unsafeCfg.DisableAvoidance = true
	_, aggs, err := defaultRunner.runPoints(context.Background(), []PointSpec{
		{Label: fmt.Sprintf("validate %v safe", v), Cfg: safeCfg, Traces: traces},
		{Label: fmt.Sprintf("validate %v unsafe", v), Cfg: unsafeCfg, Traces: traces},
	})
	if err != nil {
		return nil, err
	}
	safe, uns := aggs[0], aggs[1]
	return &ValidationResult{
		SafeCorrupt:      safe.CorruptConsumed,
		SafeIntegrity:    safe.IntegrityErrors,
		UnsafeViolations: uns.RFViolations + uns.CacheViolations,
		UnsafeCorrupt:    uns.CorruptConsumed,
	}, nil
}

// String renders a compact summary for one Fig11b row (used by cmd tools).
func (r Fig11bRow) String() string {
	return fmt.Sprintf("%v freq x%.2f perf x%.2f (ipc %.3f -> %.3f)",
		r.Vcc, r.FreqGain, r.PerfGain, r.IPCBase, r.IPCIRAW)
}
