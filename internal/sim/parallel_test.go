package sim

import (
	"context"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
)

// TestParallelSequentialEquivalence is the determinism guarantee of the
// sweep engine: one worker (forced via GOMAXPROCS=1, the truly sequential
// inline path) and a NumCPU-wide pool must produce bit-identical Result
// aggregates — IPC, cycles, stall breakdown, every counter — per point.
func TestParallelSequentialEquivalence(t *testing.T) {
	traces := SuiteSpec{InstsPerTrace: 4000, SeedsPerProfile: 1}.Traces()
	modes := []circuit.Mode{circuit.ModeBaseline, circuit.ModeIRAW, circuit.ModeFaultyBits}
	levels := []circuit.Millivolts{575, 500, 400}

	prev := runtime.GOMAXPROCS(1)
	seq, seqErr := (&Runner{}).Sweep(context.Background(), traces, modes, levels)
	runtime.GOMAXPROCS(prev)
	if seqErr != nil {
		t.Fatal(seqErr)
	}

	par, err := (&Runner{Workers: runtime.NumCPU()}).Sweep(context.Background(), traces, modes, levels)
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range modes {
		for _, v := range levels {
			s, p := seq[mode][v], par[mode][v]
			if s.Vcc != p.Vcc || s.Mode != p.Mode {
				t.Fatalf("%v %v: point metadata differs", mode, v)
			}
			if s.Agg.IPC() != p.Agg.IPC() {
				t.Errorf("%v %v: IPC differs: %v vs %v", mode, v, s.Agg.IPC(), p.Agg.IPC())
			}
			if !reflect.DeepEqual(s.Agg, p.Agg) {
				t.Errorf("%v %v: aggregates differ:\nseq: %+v\npar: %+v", mode, v, s.Agg, p.Agg)
			}
		}
	}
}

// TestRunPointWorkerCounts sweeps worker counts on one point: every pool
// size must agree with the single-worker result, per trace and aggregate.
func TestRunPointWorkerCounts(t *testing.T) {
	traces := SuiteSpec{InstsPerTrace: 4000, SeedsPerProfile: 1}.Traces()
	cfg := core.DefaultConfig(500, circuit.ModeIRAW)
	ref, refAgg, err := (&Runner{Workers: 1}).RunPoint(context.Background(), cfg, traces)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, runtime.NumCPU() + 1} {
		got, gotAgg, err := (&Runner{Workers: workers}).RunPoint(context.Background(), cfg, traces)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d: per-trace results differ", workers)
		}
		if !reflect.DeepEqual(refAgg, gotAgg) {
			t.Errorf("workers=%d: aggregate differs", workers)
		}
	}
}

// TestRunnerCancellation: a cancelled context stops the pool and surfaces
// the context error.
func TestRunnerCancellation(t *testing.T) {
	traces := SuiteSpec{InstsPerTrace: 4000, SeedsPerProfile: 1}.Traces()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, _, err := (&Runner{Workers: workers}).RunPoint(ctx, core.DefaultConfig(500, circuit.ModeIRAW), traces)
		if err != context.Canceled {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestRunnerDeterministicError: when several cells fail, the runner always
// reports the lowest-index one, regardless of worker count or scheduling.
func TestRunnerDeterministicError(t *testing.T) {
	traces := SuiteSpec{InstsPerTrace: 4000, SeedsPerProfile: 1}.Traces()
	cfg := core.DefaultConfig(500, circuit.ModeIRAW)
	cfg.MaxCycles = 10 // every trace trips the deadlock watchdog
	want := "warmup " + traces[0].Name
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		_, _, err := (&Runner{Workers: workers}).RunPoint(context.Background(), cfg, traces)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("workers=%d: err = %v, want the first trace's failure (%q)", workers, err, want)
		}
	}
}

// TestForEachWorkerIndexes: worker indexes are stable and in range, and
// every job runs exactly once.
func TestForEachWorkerIndexes(t *testing.T) {
	const n = 100
	workers := 4
	var ran [n]atomic.Int32
	err := (&Runner{Workers: workers}).forEach(context.Background(), workers, n, func(w, i int) error {
		if w < 0 || w >= workers {
			t.Errorf("worker index %d out of range", w)
		}
		ran[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Errorf("job %d ran %d times", i, got)
		}
	}
}
