package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestLockExcludesSecondHolder: while a live process holds the lock, a
// second acquire fails with the holder's pid; after Release it succeeds.
func TestLockExcludesSecondHolder(t *testing.T) {
	dir := t.TempDir()
	l, warn, err := AcquireLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	if warn != "" {
		t.Errorf("fresh acquire produced warning %q", warn)
	}
	_, _, err = AcquireLock(dir)
	var held *LockHeldError
	if !errors.As(err, &held) {
		t.Fatalf("second acquire err = %v, want *LockHeldError", err)
	}
	if held.Pid != os.Getpid() {
		t.Errorf("LockHeldError.Pid = %d, want %d", held.Pid, os.Getpid())
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	l2, _, err := AcquireLock(dir)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	if err := l2.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestLockStaleReclaim: a LOCK file recording a dead pid — what a crashed
// or kill -9'ed daemon leaves behind — is reclaimed with a warning, as is
// a garbage LOCK file.
func TestLockStaleReclaim(t *testing.T) {
	for name, content := range map[string]string{
		// Far above any real pid_max, so never a live process.
		"dead-pid": "999999999 somehost\n",
		"garbage":  "not a lock file",
		"empty":    "",
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, lockName), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			l, warn, err := AcquireLock(dir)
			if err != nil {
				t.Fatalf("stale lock was not reclaimed: %v", err)
			}
			if warn == "" {
				t.Error("stale reclaim produced no warning")
			}
			if err := l.Release(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestReleaseRefusesForeignLock: losing a reclaim race must not remove the
// winner's lock.
func TestReleaseRefusesForeignLock(t *testing.T) {
	dir := t.TempDir()
	l, _, err := AcquireLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Another daemon reclaimed and re-claimed the file behind our back.
	if err := os.WriteFile(l.Path(), []byte(fmt.Sprintf("%d other\n", os.Getpid()+1)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.Release(); err == nil {
		t.Fatal("Release removed a lock now owned by another pid")
	}
	if _, err := os.Stat(l.Path()); err != nil {
		t.Fatalf("foreign lock file was removed: %v", err)
	}
}

// TestVerify: a consistent journal verifies clean and counts entries; the
// LOCK file is not an entry; a torn write fails verification with the
// offending key in the error.
func TestVerify(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := sampleResult(t)
	for i := 0; i < 3; i++ {
		if err := j.Put(&Entry{Key: Key(fmt.Sprintf("k%d", i)), Windows: 1, Result: res}); err != nil {
			t.Fatal(err)
		}
	}
	if l, _, err := AcquireLock(dir); err != nil {
		t.Fatal(err)
	} else {
		defer l.Release()
	}
	n, err := j.Verify()
	if err != nil || n != 3 {
		t.Fatalf("Verify = (%d, %v), want (3, nil)", n, err)
	}

	bad := &Entry{Key: Key("torn"), Windows: 1, Result: res}
	if err := j.PutTruncated(bad, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Verify(); err == nil || !strings.Contains(err.Error(), Key("torn")) {
		t.Fatalf("Verify err = %v, want a failure naming the torn key", err)
	}
}

// TestSyncPutRoundTrip: fsync-on-Put preserves the exact Get contract (it
// only changes durability, never content).
func TestSyncPutRoundTrip(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j.SetSync(true)
	res := sampleResult(t)
	key := Key("synced")
	if err := j.Put(&Entry{Key: key, Windows: 2, Result: res}); err != nil {
		t.Fatal(err)
	}
	got, ok := j.Get(key)
	if !ok || got.Windows != 2 || !reflect.DeepEqual(got.Result, res) {
		t.Fatalf("synced Put round-trip failed (hit=%v)", ok)
	}
}
