// Package journal persists completed sweep-cell results on disk so an
// interrupted sweep campaign can resume without re-simulating finished
// work. It is the durability half of the sim runner's resilience layer
// (sim.Runner.WithJournal) and the content-addressed result cache the
// ROADMAP's sweep-service item calls for.
//
// # Keying
//
// Entries are content-addressed: the caller derives a key from everything
// the cell's Result is a pure function of — the trace bytes, the full core
// configuration, the windowing parameters and the engine version
// (core.EngineVersion) — via Key. Two cells with the same key are
// guaranteed bit-identical by the engine's determinism contract, which is
// what makes replaying an entry indistinguishable from re-running the
// cell. Anything that changes simulated Results must change the key
// (bumping core.EngineVersion invalidates every prior entry at once).
//
// # Durability
//
// The journal is append-only at the granularity of whole entries: one
// immutable file per key, written to a temporary file first and renamed
// into place, so a crash — including kill -9 — can never leave a
// half-written entry under a final name. Defense in depth for torn writes
// that bypass the rename (a dying filesystem, fault injection): every
// entry carries a header with the payload's SHA-256 and length, and Get
// verifies both before decoding. A truncated, corrupt or undecodable entry
// is treated as a miss (and counted), never as data — the cell simply
// re-runs.
//
// Entries encode as JSON. Go's encoder emits the shortest float64
// representation that round-trips exactly and core.Result is all exported
// scalar fields, so a decoded Result is bit-identical to the recorded one
// (asserted by TestEntryRoundTrip).
package journal

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"lowvcc/internal/core"
)

// Entry is one journaled cell: the stitched Result plus the shard plan
// size it was produced under (PointUpdate.Windows on replay).
type Entry struct {
	Key     string
	Windows int
	Result  *core.Result
}

// Stats is a snapshot of the journal's access counters.
type Stats struct {
	Hits, Misses uint64
	// Corrupt counts entries rejected by the integrity check (truncated or
	// scrambled files); each also counted as a miss.
	Corrupt uint64
	// WriteErrors counts failed Puts. The journal is a cache: a failed
	// write costs a future re-simulation, never correctness.
	WriteErrors uint64
	// Rejected counts uploads refused by Admit (bad header, checksum or
	// key mismatch): a byzantine or buggy uploader never lands an entry.
	Rejected uint64
	// Evictions counts entries removed by the disk-budget policy
	// (SetBudget). An evicted entry is a future miss, nothing more.
	Evictions uint64
}

// Journal is a directory of immutable cell entries. Safe for concurrent
// use by multiple goroutines (and, thanks to atomic renames, by multiple
// processes sharing the directory).
type Journal struct {
	dir  string
	sync atomic.Bool

	hits, misses, corrupt, writeErrs atomic.Uint64
	rejected, evictions              atomic.Uint64

	// Disk-budget state (SetBudget). sizes/lastUse/pins are only
	// populated while a budget is active; all are guarded by mu.
	mu      sync.Mutex
	budget  int64
	total   int64
	sizes   map[string]int64
	lastUse map[string]int64
	useSeq  int64
	pins    map[string]int
}

// Open creates the journal directory if needed and returns a handle.
func Open(dir string) (*Journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("journal: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{dir: dir}, nil
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// SetSync selects fsync-on-Put: with it on, every Put fsyncs the entry
// file before the rename and the directory after it, so a published entry
// survives power loss, not just process death. Off (the default) relies on
// the atomic rename alone — crash-consistent, cheaper, and the right
// trade for the journal's cache role; the sweep daemon turns it on because
// a service's durability promise is stronger than a CLI's.
func (j *Journal) SetSync(on bool) { j.sync.Store(on) }

// Stats returns a snapshot of the access counters.
func (j *Journal) Stats() Stats {
	return Stats{
		Hits:        j.hits.Load(),
		Misses:      j.misses.Load(),
		Corrupt:     j.corrupt.Load(),
		WriteErrors: j.writeErrs.Load(),
		Rejected:    j.rejected.Load(),
		Evictions:   j.evictions.Load(),
	}
}

// Key derives a content-address from its parts: each part is
// length-prefixed before hashing, so ("ab", "c") and ("a", "bc") never
// collide. The result is a hex SHA-256, safe as a file name.
func Key(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// header is the integrity line preceding the JSON payload.
const headerMagic = "lowvccjnl1"

func (j *Journal) path(key string) string { return filepath.Join(j.dir, key+".cell") }

// encode renders the entry file: one header line with the payload's
// SHA-256 and length, then the payload.
func encode(e *Entry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("journal: encoding %s: %w", e.Key, err)
	}
	header := fmt.Sprintf("%s %x %d\n", headerMagic, sha256.Sum256(payload), len(payload))
	return append([]byte(header), payload...), nil
}

// Get returns the entry for key, or (nil, false) when it is absent or
// fails the integrity check. Corrupt entries count as misses: the caller
// re-runs the cell and Put overwrites the bad file.
func (j *Journal) Get(key string) (*Entry, bool) {
	data, err := os.ReadFile(j.path(key))
	if err != nil {
		j.misses.Add(1)
		return nil, false
	}
	e, err := decode(key, data)
	if err != nil {
		j.corrupt.Add(1)
		j.misses.Add(1)
		return nil, false
	}
	j.hits.Add(1)
	j.touch(key)
	return e, true
}

// GetRaw returns the sealed entry file bytes for key — header line plus
// payload, exactly as stored — after running the same integrity check as
// Get. This is the upload format for result push-down: a worker ships the
// sealed bytes to the daemon, which re-verifies them with Admit before
// admitting the entry into its own journal.
func (j *Journal) GetRaw(key string) ([]byte, bool) {
	data, err := os.ReadFile(j.path(key))
	if err != nil {
		j.misses.Add(1)
		return nil, false
	}
	if _, err := decode(key, data); err != nil {
		j.corrupt.Add(1)
		j.misses.Add(1)
		return nil, false
	}
	j.hits.Add(1)
	j.touch(key)
	return data, true
}

// Admit verifies sealed entry bytes produced elsewhere (GetRaw on another
// journal, possibly another machine) and publishes them under key. The
// full check runs before a single byte lands: header magic, payload
// length, SHA-256 content address, key match, decodability and a non-nil
// Result. Bytes from a buggy or byzantine uploader are rejected with an
// error and counted in Stats.Rejected; nothing is written. This is the
// daemon half of result push-down — the scheduler believes the verified
// bytes, never the worker.
func (j *Journal) Admit(key string, data []byte) (*Entry, error) {
	e, err := decode(key, data)
	if err != nil {
		j.rejected.Add(1)
		return nil, err
	}
	if err := j.writeFile(key, data); err != nil {
		return nil, err
	}
	return e, nil
}

func decode(key string, data []byte) (*Entry, error) {
	nl := strings.IndexByte(string(data), '\n')
	if nl < 0 {
		return nil, fmt.Errorf("journal: %s: truncated header", key)
	}
	var sum string
	var length int
	var magicGot string
	if _, err := fmt.Sscanf(string(data[:nl]), "%s %s %d", &magicGot, &sum, &length); err != nil || magicGot != headerMagic {
		return nil, fmt.Errorf("journal: %s: bad header", key)
	}
	payload := data[nl+1:]
	if len(payload) != length {
		return nil, fmt.Errorf("journal: %s: payload %d bytes, header says %d (truncated write)", key, len(payload), length)
	}
	if got := fmt.Sprintf("%x", sha256.Sum256(payload)); got != sum {
		return nil, fmt.Errorf("journal: %s: checksum mismatch", key)
	}
	var e Entry
	if err := json.Unmarshal(payload, &e); err != nil {
		return nil, fmt.Errorf("journal: %s: %w", key, err)
	}
	if e.Key != key {
		return nil, fmt.Errorf("journal: entry %s stored under key %s", e.Key, key)
	}
	if e.Result == nil {
		return nil, fmt.Errorf("journal: %s: entry without result", key)
	}
	return &e, nil
}

// Put records the entry under its key: written to a unique temporary file
// and renamed into place, so concurrent writers (which, by the keying
// contract, carry identical content) and crashes are both safe. Errors are
// counted and returned; callers may ignore them — a lost entry costs one
// re-simulation.
func (j *Journal) Put(e *Entry) error {
	data, err := encode(e)
	if err != nil {
		j.writeErrs.Add(1)
		return err
	}
	return j.writeFile(e.Key, data)
}

// PutTruncated writes the entry's file cut off after keep bytes, bypassing
// the atomic-rename protocol — a deterministic stand-in for a torn write
// (process killed mid-write on a filesystem that reordered the rename).
// Test and fault-injection use only: Get must reject the result.
func (j *Journal) PutTruncated(e *Entry, keep int) error {
	data, err := encode(e)
	if err != nil {
		j.writeErrs.Add(1)
		return err
	}
	if keep < 0 || keep > len(data) {
		keep = len(data) / 2
	}
	if err := os.WriteFile(j.path(e.Key), data[:keep], 0o644); err != nil {
		j.writeErrs.Add(1)
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

func (j *Journal) writeFile(key string, data []byte) error {
	tmp, err := os.CreateTemp(j.dir, ".put-*")
	if err != nil {
		j.writeErrs.Add(1)
		return fmt.Errorf("journal: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		j.writeErrs.Add(1)
		return fmt.Errorf("journal: writing %s: %w", key, err)
	}
	if j.sync.Load() {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmpName)
			j.writeErrs.Add(1)
			return fmt.Errorf("journal: syncing %s: %w", key, err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		j.writeErrs.Add(1)
		return fmt.Errorf("journal: closing %s: %w", key, err)
	}
	if err := os.Rename(tmpName, j.path(key)); err != nil {
		os.Remove(tmpName)
		j.writeErrs.Add(1)
		return fmt.Errorf("journal: publishing %s: %w", key, err)
	}
	if j.sync.Load() {
		// Persist the rename itself: without the directory fsync the entry
		// file can be durable while its name is not.
		if d, err := os.Open(j.dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	j.recordWrite(key, int64(len(data)))
	return nil
}

// SetBudget caps the journal directory at budget bytes of entry files.
// When a Put or Admit pushes the total over the cap, least-recently-used
// entries are unlinked until it fits again (Stats.Evictions counts them).
// Zero or negative disables the cap. Pinned keys (Pin) are never evicted,
// so an in-flight lease's entry cannot vanish between a worker's write and
// the scheduler's read-back. Because the journal is a cache, eviction is
// always safe: an evicted entry is re-simulated on the next miss.
//
// The accounting assumes this process is the directory's only writer
// while a budget is active — exactly the sweep daemon's LOCK-guarded
// arrangement. Readers in other processes are unaffected beyond extra
// misses.
func (j *Journal) SetBudget(budget int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.budget = budget
	if budget <= 0 {
		j.sizes, j.lastUse, j.pins, j.total = nil, nil, nil, 0
		return
	}
	if j.sizes == nil {
		j.scanLocked()
	}
	j.enforceLocked("")
}

// Pin marks key as non-evictable until a matching Unpin; pins are
// counted, so concurrent leases on the same cell nest.
func (j *Journal) Pin(key string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.pins == nil {
		j.pins = make(map[string]int)
	}
	j.pins[key]++
}

// Unpin releases one Pin on key.
func (j *Journal) Unpin(key string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.pins == nil {
		return
	}
	if j.pins[key]--; j.pins[key] <= 0 {
		delete(j.pins, key)
	}
}

// DiskUsage reports the tracked entry-file bytes while a budget is
// active (0 otherwise).
func (j *Journal) DiskUsage() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

// touch bumps key's recency; a no-op unless a budget is active.
func (j *Journal) touch(key string) {
	j.mu.Lock()
	if j.lastUse != nil {
		if _, ok := j.sizes[key]; ok {
			j.useSeq++
			j.lastUse[key] = j.useSeq
		}
	}
	j.mu.Unlock()
}

// recordWrite folds a freshly published entry into the budget accounting
// and evicts over-budget entries (never the one just written).
func (j *Journal) recordWrite(key string, size int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.budget <= 0 || j.sizes == nil {
		return
	}
	j.total += size - j.sizes[key]
	j.sizes[key] = size
	j.useSeq++
	j.lastUse[key] = j.useSeq
	j.enforceLocked(key)
}

// scanLocked seeds the accounting from the directory: sizes from a walk,
// recency from file mtimes (older file = colder entry).
func (j *Journal) scanLocked() {
	j.sizes = make(map[string]int64)
	j.lastUse = make(map[string]int64)
	j.total = 0
	ents, err := os.ReadDir(j.dir)
	if err != nil {
		return
	}
	type aged struct {
		key string
		mt  int64
	}
	var found []aged
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasSuffix(name, ".cell") {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		key := strings.TrimSuffix(name, ".cell")
		j.sizes[key] = info.Size()
		j.total += info.Size()
		found = append(found, aged{key, info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(a, b int) bool { return found[a].mt < found[b].mt })
	for _, f := range found {
		j.useSeq++
		j.lastUse[f.key] = j.useSeq
	}
}

// enforceLocked unlinks least-recently-used, unpinned entries until the
// total fits the budget. keep (the just-written key) is exempt even when
// unpinned, so a fresh result always survives long enough to be read back.
func (j *Journal) enforceLocked(keep string) {
	if j.budget <= 0 || j.total <= j.budget {
		return
	}
	type cand struct {
		key string
		use int64
	}
	var cands []cand
	for key, use := range j.lastUse {
		if key == keep || j.pins[key] > 0 {
			continue
		}
		cands = append(cands, cand{key, use})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].use < cands[b].use })
	for _, c := range cands {
		if j.total <= j.budget {
			return
		}
		if err := os.Remove(j.path(c.key)); err != nil && !os.IsNotExist(err) {
			continue
		}
		j.total -= j.sizes[c.key]
		delete(j.sizes, c.key)
		delete(j.lastUse, c.key)
		j.evictions.Add(1)
	}
}

// Verify decodes every entry in the directory through the full integrity
// check (header, length, SHA-256, key match) and returns how many passed.
// The first failing entry aborts the walk with a descriptive error. The
// sweep daemon runs this after a drain to assert the journal it leaves
// behind is wholly consistent; it does not touch the access counters.
func (j *Journal) Verify() (int, error) {
	ents, err := os.ReadDir(j.dir)
	if err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	n := 0
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasSuffix(name, ".cell") {
			continue
		}
		key := strings.TrimSuffix(name, ".cell")
		data, err := os.ReadFile(filepath.Join(j.dir, name))
		if err != nil {
			return n, fmt.Errorf("journal: verifying %s: %w", key, err)
		}
		if _, err := decode(key, data); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Len reports how many well-named entries the journal directory holds
// (without verifying their integrity).
func (j *Journal) Len() (int, error) {
	ents, err := os.ReadDir(j.dir)
	if err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	n := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".cell") {
			n++
		}
	}
	return n, nil
}
