package journal

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
	"lowvcc/internal/workload"
)

// sampleResult produces a real simulation Result so the round-trip test
// exercises every populated field, not a zero value.
func sampleResult(t testing.TB) *core.Result {
	t.Helper()
	tr := workload.Generate(workload.SpecInt(), 3000, 1)
	res, err := core.MustNew(core.DefaultConfig(500, circuit.ModeIRAW)).Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEntryRoundTrip is the journal's core guarantee: a Get after a Put
// returns a Result bit-identical to the recorded one (reflect.DeepEqual
// over every counter and float).
func TestEntryRoundTrip(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := sampleResult(t)
	key := Key("trace-hash", "cfg-hash", core.EngineVersion)
	if err := j.Put(&Entry{Key: key, Windows: 3, Result: res}); err != nil {
		t.Fatal(err)
	}
	got, ok := j.Get(key)
	if !ok {
		t.Fatal("Get missed a just-written entry")
	}
	if got.Windows != 3 {
		t.Errorf("Windows = %d, want 3", got.Windows)
	}
	if !reflect.DeepEqual(got.Result, res) {
		t.Errorf("replayed Result differs from recorded one:\ngot  %+v\nwant %+v", got.Result, res)
	}
	if s := j.Stats(); s.Hits != 1 || s.Corrupt != 0 {
		t.Errorf("stats = %+v, want 1 hit, 0 corrupt", s)
	}
}

// TestKeyDerivation: keys are injective over part boundaries and
// deterministic.
func TestKeyDerivation(t *testing.T) {
	if Key("ab", "c") == Key("a", "bc") {
		t.Error("length prefixing failed: shifted parts collide")
	}
	if Key("x", "y") != Key("x", "y") {
		t.Error("key is not deterministic")
	}
	if len(Key("x")) != 64 {
		t.Errorf("key length %d, want 64 hex chars", len(Key("x")))
	}
}

// TestMissAndCorruptEntries: absent keys miss; truncated and scrambled
// entries are rejected by the integrity check and treated as misses, then
// repaired by the next Put.
func TestMissAndCorruptEntries(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Get(Key("absent")); ok {
		t.Fatal("Get hit an absent key")
	}

	res := sampleResult(t)
	key := Key("k")
	e := &Entry{Key: key, Windows: 1, Result: res}

	// Truncated at several byte counts, including 0 and header-only.
	full, err := encode(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{0, 5, len(full) / 2, len(full) - 1} {
		if err := j.PutTruncated(e, keep); err != nil {
			t.Fatal(err)
		}
		if _, ok := j.Get(key); ok {
			t.Errorf("Get accepted an entry truncated to %d bytes", keep)
		}
	}

	// Scrambled payload byte (length intact, checksum must catch it).
	if err := j.Put(e); err != nil {
		t.Fatal(err)
	}
	path := j.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Get(key); ok {
		t.Fatal("Get accepted a scrambled entry")
	}
	if s := j.Stats(); s.Corrupt == 0 {
		t.Error("corrupt entries were not counted")
	}

	// A fresh Put repairs the slot.
	if err := j.Put(e); err != nil {
		t.Fatal(err)
	}
	if got, ok := j.Get(key); !ok || !reflect.DeepEqual(got.Result, res) {
		t.Fatal("Put did not repair a corrupt entry")
	}
}

// TestWrongKeyAndStrayFiles: an entry stored under the wrong name is
// rejected, and temp files never count as entries.
func TestWrongKeyAndStrayFiles(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := sampleResult(t)
	if err := j.Put(&Entry{Key: Key("a"), Windows: 1, Result: res}); err != nil {
		t.Fatal(err)
	}
	// Copy the valid entry under a different key's file name.
	data, err := os.ReadFile(j.path(Key("a")))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(j.path(Key("b")), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Get(Key("b")); ok {
		t.Fatal("Get accepted an entry whose recorded key mismatches its file name")
	}

	if err := os.WriteFile(filepath.Join(dir, ".put-stray"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := j.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 { // a's entry + b's (corrupt, but well-named) copy
		t.Errorf("Len = %d, want 2", n)
	}
}

// TestConcurrentPuts: many goroutines writing (identical content, per the
// keying contract) and reading the same key never corrupt the entry.
func TestConcurrentPuts(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := sampleResult(t)
	key := Key("shared")
	e := &Entry{Key: key, Windows: 2, Result: res}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := j.Put(e); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if got, ok := j.Get(key); ok {
					if !reflect.DeepEqual(got.Result, res) {
						t.Error("concurrent reader observed a corrupt entry")
						return
					}
				}
				if ctx.Err() != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
}
