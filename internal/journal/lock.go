package journal

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
)

// lockName is the exclusive-writer lock file inside a journal directory.
const lockName = "LOCK"

// Lock is an exclusive-writer claim on a journal directory, held by one
// long-running process (the sweep daemon) so two daemons can never
// interleave scheduling decisions over one journal. The lock protects
// daemon mutual exclusion, not entry integrity — entries themselves stay
// safe under concurrent writers by content addressing and atomic renames,
// which is what lets a daemon's worker processes share the directory
// without holding the lock.
type Lock struct {
	path string
	pid  int
}

// LockHeldError reports a journal directory already locked by a live
// process.
type LockHeldError struct {
	Dir string
	Pid int
}

func (e *LockHeldError) Error() string {
	return fmt.Sprintf("journal: %s is locked by running pid %d", e.Dir, e.Pid)
}

// AcquireLock claims the exclusive-writer lock on dir, creating the
// directory if needed. The lock is a LOCK file recording the owner's pid,
// hostname and process start time; liveness is checked by signaling the
// pid AND comparing the start time (when /proc exposes one), so a lock
// left behind by a crashed or kill -9'ed daemon is reclaimed even when
// the kernel has recycled its pid for an unrelated process (the returned
// warning is non-empty when a reclaim happened — callers should surface
// it). A lock held by a live process returns a *LockHeldError.
func AcquireLock(dir string) (*Lock, string, error) {
	if dir == "" {
		return nil, "", fmt.Errorf("journal: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, "", fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(dir, lockName)
	warning := ""
	// O_EXCL create is the atomic claim; everything else is deciding
	// whether an existing file may be swept aside. Bounded retries: each
	// loop either claims, returns "held", or removes one stale file.
	for attempt := 0; attempt < 8; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			host, _ := os.Hostname()
			pid := os.Getpid()
			if _, werr := fmt.Fprintf(f, "%d %s %s\n", pid, host, procStartTime(pid)); werr != nil {
				f.Close()
				os.Remove(path)
				return nil, "", fmt.Errorf("journal: writing lock: %w", werr)
			}
			f.Sync()
			if cerr := f.Close(); cerr != nil {
				os.Remove(path)
				return nil, "", fmt.Errorf("journal: writing lock: %w", cerr)
			}
			return &Lock{path: path, pid: pid}, warning, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return nil, "", fmt.Errorf("journal: acquiring lock: %w", err)
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			// Raced with a concurrent release or reclaim; try again.
			continue
		}
		pid, start := parseLock(data)
		if pid > 0 && ownerAlive(pid, start) {
			return nil, "", &LockHeldError{Dir: dir, Pid: pid}
		}
		// Stale: the recorded pid is dead, was recycled by an unrelated
		// process (start-time mismatch), or the file is garbage. Remove
		// and race for the claim again.
		warning = fmt.Sprintf("journal: reclaimed stale lock %s (held by dead pid %d)", path, pid)
		os.Remove(path)
	}
	return nil, "", fmt.Errorf("journal: could not acquire %s after repeated stale-lock reclaims", path)
}

// Release drops the lock. It refuses to remove a LOCK file that no longer
// records this process (a stale-reclaim race took ownership): losing that
// race means some other daemon now legitimately holds the directory.
func (l *Lock) Release() error {
	data, err := os.ReadFile(l.path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("journal: releasing lock: %w", err)
	}
	if pid, _ := parseLock(data); pid != l.pid {
		return fmt.Errorf("journal: lock %s now held by pid %d, not releasing", l.path, pid)
	}
	if err := os.Remove(l.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("journal: releasing lock: %w", err)
	}
	return nil
}

// Path returns the lock file's path.
func (l *Lock) Path() string { return l.path }

// parseLock extracts the owner pid and recorded process start time from a
// LOCK file. Pid 0 means garbage (treated as stale); an empty start time
// means a pre-start-time lock format (pid liveness alone decides).
func parseLock(data []byte) (pid int, start string) {
	fields := strings.Fields(string(data))
	if len(fields) == 0 {
		return 0, ""
	}
	pid, err := strconv.Atoi(fields[0])
	if err != nil || pid <= 0 {
		return 0, ""
	}
	if len(fields) >= 3 {
		start = fields[2]
	}
	return pid, start
}

// ownerAlive reports whether the recorded lock owner still runs: the pid
// must name a live process AND, when both the lock and /proc expose a
// start time, the start times must match. A recycled pid — same number,
// different process since boot — has a different start time and counts as
// dead, so a fresh daemon is never wedged by a number collision.
func ownerAlive(pid int, start string) bool {
	if !pidAlive(pid) {
		return false
	}
	if start == "" {
		return true // old lock format: pid liveness is all we recorded
	}
	cur := procStartTime(pid)
	if cur == "" {
		return true // /proc unreadable (foreign pid, non-Linux): stay safe
	}
	return cur == start
}

// pidAlive reports whether pid names a live process: signal 0 probes
// existence without delivering anything. EPERM means alive-but-foreign,
// which still counts as held.
func pidAlive(pid int) bool {
	err := syscall.Kill(pid, 0)
	return err == nil || errors.Is(err, syscall.EPERM)
}

// procStartTime returns the kernel's start-time tick for pid (field 22 of
// /proc/<pid>/stat), or "" where that is unreadable. The tick counts
// monotonically since boot, so (pid, starttime) identifies one process
// incarnation — exactly the token AcquireLock needs to survive pid reuse.
func procStartTime(pid int) string {
	data, err := os.ReadFile(fmt.Sprintf("/proc/%d/stat", pid))
	if err != nil {
		return ""
	}
	// The comm field (2) is parenthesized and may itself contain spaces
	// or parens; everything after the LAST ')' is space-separated, with
	// starttime at offset 19 (field 22 overall).
	s := string(data)
	i := strings.LastIndexByte(s, ')')
	if i < 0 {
		return ""
	}
	rest := strings.Fields(s[i+1:])
	if len(rest) < 20 {
		return ""
	}
	return rest[19]
}
