package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAdmitRoundTrip: GetRaw on one journal produces sealed bytes that
// Admit on a second journal (the daemon side of result push-down)
// verifies and publishes bit-identically.
func TestAdmitRoundTrip(t *testing.T) {
	worker, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	daemon, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := sampleResult(t)
	key := Key("trace-hash", "cfg-hash", "win=0")
	if err := worker.Put(&Entry{Key: key, Windows: 2, Result: res}); err != nil {
		t.Fatal(err)
	}
	raw, ok := worker.GetRaw(key)
	if !ok {
		t.Fatal("GetRaw missed a just-written entry")
	}
	ent, err := daemon.Admit(key, raw)
	if err != nil {
		t.Fatalf("Admit rejected valid upload: %v", err)
	}
	if ent.Windows != 2 || ent.Result == nil {
		t.Fatalf("Admit returned wrong entry: %+v", ent)
	}
	got, ok := daemon.Get(key)
	if !ok {
		t.Fatal("admitted entry not readable")
	}
	if got.Result.Time != res.Time || got.Result.TraceName != res.TraceName {
		t.Errorf("admitted entry differs: got %+v want %+v", got.Result, res)
	}
	// The file on disk must be byte-identical to the uploaded bytes.
	onDisk, err := os.ReadFile(daemon.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if string(onDisk) != string(raw) {
		t.Error("admitted file differs from uploaded bytes")
	}
}

// TestAdmitRejectsCorrupt: Admit runs the full integrity check before any
// byte lands — flipped payloads, truncations, key mismatches and garbage
// are all rejected with nothing written.
func TestAdmitRejectsCorrupt(t *testing.T) {
	worker, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := sampleResult(t)
	key := Key("adm-trace", "adm-cfg")
	if err := worker.Put(&Entry{Key: key, Windows: 1, Result: res}); err != nil {
		t.Fatal(err)
	}
	raw, _ := worker.GetRaw(key)

	cases := []struct {
		name string
		key  string
		data []byte
	}{
		{"flipped byte", key, append(append([]byte{}, raw[:len(raw)-3]...), raw[len(raw)-3]^0x40, raw[len(raw)-2], raw[len(raw)-1])},
		{"truncated", key, raw[:len(raw)/2]},
		{"wrong key", Key("other-trace", "adm-cfg"), raw},
		{"garbage", key, []byte("not a journal entry at all")},
		{"empty", key, nil},
	}
	for _, tc := range cases {
		daemon, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := daemon.Admit(tc.key, tc.data); err == nil {
			t.Errorf("%s: Admit accepted corrupt upload", tc.name)
		}
		if n, _ := daemon.Len(); n != 0 {
			t.Errorf("%s: corrupt upload landed on disk (%d entries)", tc.name, n)
		}
		if s := daemon.Stats(); s.Rejected != 1 {
			t.Errorf("%s: Rejected = %d, want 1", tc.name, s.Rejected)
		}
	}
}

// budgetJournal writes n entries of roughly equal size and returns the
// journal plus the per-entry size.
func budgetJournal(t *testing.T, n int) (*Journal, []string, int64) {
	t.Helper()
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := sampleResult(t)
	keys := make([]string, n)
	for i := range keys {
		keys[i] = Key("budget-trace", fmt.Sprintf("cfg-%d", i))
		if err := j.Put(&Entry{Key: keys[i], Windows: 1, Result: res}); err != nil {
			t.Fatal(err)
		}
	}
	info, err := os.Stat(j.path(keys[0]))
	if err != nil {
		t.Fatal(err)
	}
	return j, keys, info.Size()
}

// TestBudgetEvictsLRU: entries past the byte budget are evicted in
// least-recently-used order; a Get refreshes recency.
func TestBudgetEvictsLRU(t *testing.T) {
	j, keys, size := budgetJournal(t, 3)
	// Activate tracking with a roomy budget, refresh keys[0] so keys[1]
	// becomes the LRU victim, then cap at 2 entries.
	j.SetBudget(100 * size)
	if _, ok := j.Get(keys[0]); !ok {
		t.Fatal("warm get missed")
	}
	j.SetBudget(2*size + size/2)
	if s := j.Stats(); s.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", s.Evictions)
	}
	if _, ok := j.Get(keys[1]); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := j.Get(keys[0]); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := j.Get(keys[2]); !ok {
		t.Error("most recently written entry was evicted")
	}
	if u := j.DiskUsage(); u > 2*size+size/2 {
		t.Errorf("DiskUsage %d over budget", u)
	}
	// Further writes keep enforcing: adding a fourth entry evicts again,
	// and the freshly written key always survives.
	res := sampleResult(t)
	k4 := Key("budget-trace", "cfg-extra")
	if err := j.Put(&Entry{Key: k4, Windows: 1, Result: res}); err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Get(k4); !ok {
		t.Error("just-written entry was evicted")
	}
	if s := j.Stats(); s.Evictions != 2 {
		t.Errorf("Evictions = %d, want 2", s.Evictions)
	}
}

// TestBudgetPinBlocksEviction: a pinned key (an in-flight lease's cell)
// survives any squeeze; Unpin makes it evictable again.
func TestBudgetPinBlocksEviction(t *testing.T) {
	j, keys, size := budgetJournal(t, 3)
	j.Pin(keys[0])
	j.SetBudget(size + size/2) // room for one entry
	if _, ok := j.Get(keys[0]); !ok {
		t.Fatal("pinned entry was evicted")
	}
	if _, ok := j.Get(keys[1]); ok {
		t.Error("unpinned LRU entry survived a one-entry budget")
	}
	j.Unpin(keys[0])
	res := sampleResult(t)
	k := Key("budget-trace", "cfg-pin-extra")
	if err := j.Put(&Entry{Key: k, Windows: 1, Result: res}); err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Get(keys[0]); ok {
		t.Error("unpinned entry survived the next enforcement")
	}
}

// TestBudgetSeedsFromDisk: SetBudget on a journal reopened over an
// existing directory accounts for the entries already on disk.
func TestBudgetSeedsFromDisk(t *testing.T) {
	j, keys, size := budgetJournal(t, 4)
	reopened, err := Open(j.Dir())
	if err != nil {
		t.Fatal(err)
	}
	reopened.SetBudget(2 * size)
	n, err := reopened.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n > 2 {
		t.Errorf("reopened journal holds %d entries over a 2-entry budget", n)
	}
	alive := 0
	for _, k := range keys {
		if _, ok := reopened.Get(k); ok {
			alive++
		}
	}
	if alive != n {
		t.Errorf("%d entries readable, %d on disk", alive, n)
	}
}

// TestLockPidReuse: a LOCK file whose pid is alive but whose recorded
// start time names a different process incarnation is stale — a recycled
// pid must not wedge a fresh daemon.
func TestLockPidReuse(t *testing.T) {
	if procStartTime(os.Getpid()) == "" {
		t.Skip("no /proc start time on this platform")
	}
	dir := t.TempDir()
	// Our own pid is certainly alive; stamp it with an impossible start
	// time to simulate the pid having been recycled since the lock was
	// written.
	lockPath := filepath.Join(dir, lockName)
	content := fmt.Sprintf("%d somehost 1\n", os.Getpid())
	if err := os.WriteFile(lockPath, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	l, warning, err := AcquireLock(dir)
	if err != nil {
		t.Fatalf("AcquireLock failed against recycled-pid lock: %v", err)
	}
	defer l.Release()
	if warning == "" {
		t.Error("reclaim of a recycled-pid lock produced no warning")
	}
	// The refreshed lock must carry our real start time, and a second
	// acquire must now see a genuinely live owner.
	data, err := os.ReadFile(lockPath)
	if err != nil {
		t.Fatal(err)
	}
	pid, start := parseLock(data)
	if pid != os.Getpid() || start != procStartTime(os.Getpid()) {
		t.Errorf("lock records (%d, %q), want (%d, %q)", pid, start, os.Getpid(), procStartTime(os.Getpid()))
	}
	if _, _, err := AcquireLock(dir); err == nil {
		t.Error("second acquire succeeded against a live owner")
	} else if !strings.Contains(err.Error(), "locked by running pid") {
		t.Errorf("unexpected error: %v", err)
	}
}
