package report

import (
	"bytes"
	"strings"
	"testing"
)

func samplePlot() *Plot {
	p := &Plot{
		Title:  "delay vs Vcc",
		XLabel: "Vcc",
		YLabel: "a.u.",
		XTicks: []string{"700", "600", "500", "400"},
		Height: 8,
	}
	p.AddSeries("logic", '*', []float64{1, 1.2, 1.6, 2.7})
	p.AddSeries("write", 'w', []float64{0.5, 1.0, 2.9, 39})
	return p
}

func TestPlotRender(t *testing.T) {
	var buf bytes.Buffer
	if err := samplePlot().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"delay vs Vcc", "*=logic", "w=write", "700", "400", "(x: Vcc, y: a.u.)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Marker characters must appear in the grid (later series overwrite
	// earlier ones where curves coincide, so not every sample is visible).
	if strings.Count(out, "*") < 2 {
		t.Errorf("logic markers missing:\n%s", out)
	}
	if strings.Count(out, "w") < 4 { // legend 'w' + at least 3 samples
		t.Errorf("write markers missing:\n%s", out)
	}
}

func TestPlotYMaxClips(t *testing.T) {
	p := samplePlot()
	p.YMax = 10 // the paper's Figure 1 clips its y-axis at 10
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "10.0") {
		t.Errorf("clipped range not reflected:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "39.0") {
		t.Errorf("unclipped max leaked into axis:\n%s", buf.String())
	}
}

func TestPlotMismatchedSeriesRejected(t *testing.T) {
	p := &Plot{XTicks: []string{"a", "b"}}
	p.AddSeries("bad", 'x', []float64{1})
	var buf bytes.Buffer
	if err := p.Render(&buf); err == nil {
		t.Fatal("mismatched series accepted")
	}
}

func TestPlotEmpty(t *testing.T) {
	p := &Plot{Title: "empty"}
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(empty plot)") {
		t.Fatal("empty plot not marked")
	}
}

func TestPlotFlatSeries(t *testing.T) {
	p := &Plot{XTicks: []string{"1", "2"}, Height: 4}
	p.AddSeries("flat", 'f', []float64{2, 2})
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatal(err) // zero range must not divide by zero
	}
}
