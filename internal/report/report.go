// Package report renders experiment results as aligned ASCII tables and CSV,
// the formats the cmd tools and EXPERIMENTS.md use.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows with a fixed header.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable returns a table with the given title and column names.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one row; values are formatted with %v unless already
// strings.
func (t *Table) AddRow(cells ...interface{}) {
	t.Rows = append(t.Rows, formatCells(cells))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(t.Header) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (simple quoting: cells containing
// commas or quotes are quoted with doubled quotes).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatCells renders a row's values the way Table.AddRow does, so the
// batch and streaming tables print identically for the same inputs.
func formatCells(cells []interface{}) []string {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	return row
}

// StreamTable renders rows as they arrive instead of buffering the whole
// table: the header goes out immediately and each AddRow writes one line. It
// exists for progressive consumers (cmd/figures, cmd/vccsweep render each
// sweep row the moment its operating points complete, long before the
// grid finishes). Column widths are fixed up front from the header (with
// a floor), so alignment holds without seeing future rows; an oversized
// cell widens its own row only.
type StreamTable struct {
	w      io.Writer
	csv    bool
	widths []int
}

// minStreamWidth is the narrowest streamed column; headers shorter than
// this get padding room for typical numeric cells.
const minStreamWidth = 9

// NewStreamTable writes the title and header to w immediately and returns
// the streaming row writer. With csv set, output is CSV (no title, no
// alignment), matching Table.RenderCSV cell for cell.
func NewStreamTable(w io.Writer, csv bool, title string, header ...string) (*StreamTable, error) {
	s := &StreamTable{w: w, csv: csv, widths: make([]int, len(header))}
	for i, h := range header {
		s.widths[i] = len(h)
		if s.widths[i] < minStreamWidth {
			s.widths[i] = minStreamWidth
		}
	}
	if csv {
		return s, s.writeCSV(header)
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	s.writeAligned(&b, header)
	total := len(header) - 1
	for _, wd := range s.widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return s, err
}

// AddRow formats and writes one row immediately (values format exactly as
// Table.AddRow would).
func (s *StreamTable) AddRow(cells ...interface{}) error {
	row := formatCells(cells)
	if s.csv {
		return s.writeCSV(row)
	}
	var b strings.Builder
	s.writeAligned(&b, row)
	_, err := io.WriteString(s.w, b.String())
	return err
}

func (s *StreamTable) writeAligned(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteString("  ")
		}
		width := minStreamWidth
		if i < len(s.widths) {
			width = s.widths[i]
		}
		fmt.Fprintf(b, "%-*s", width, c)
	}
	b.WriteByte('\n')
}

func (s *StreamTable) writeCSV(cells []string) error {
	var b strings.Builder
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
	_, err := io.WriteString(s.w, b.String())
	return err
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }

// F formats a float with 3 decimals.
func F(f float64) string { return fmt.Sprintf("%.3f", f) }

// F2 formats a float with 2 decimals.
func F2(f float64) string { return fmt.Sprintf("%.2f", f) }

// Bool renders YES/NO (Table 1 style).
func Bool(b bool) string {
	if b {
		return "YES"
	}
	return "NO"
}
