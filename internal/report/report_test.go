package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := NewTable("demo", "name", "value")
	t.AddRow("alpha", 1.5)
	t.AddRow("beta, the second", 42)
	return t
}

func TestRenderAligned(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") {
		t.Fatalf("output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Fatalf("no rule line:\n%s", out)
	}
}

func TestRenderCSVQuoting(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "\"beta, the second\"") {
		t.Fatalf("comma cell not quoted:\n%s", out)
	}
	if !strings.HasPrefix(out, "name,value\n") {
		t.Fatalf("header wrong:\n%s", out)
	}
}

func TestHelpers(t *testing.T) {
	if Pct(0.1234) != "12.34%" {
		t.Fatal(Pct(0.1234))
	}
	if F(1.23456) != "1.235" || F2(1.23456) != "1.23" {
		t.Fatal("float helpers wrong")
	}
	if Bool(true) != "YES" || Bool(false) != "NO" {
		t.Fatal("Bool wrong")
	}
}

func TestStreamTableAlignedAndCSV(t *testing.T) {
	var buf strings.Builder
	st, err := NewStreamTable(&buf, false, "stream title", "Vcc", "ipc", "a-long-header")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddRow(500, 0.51234, "x"); err != nil {
		t.Fatal(err)
	}
	if err := st.AddRow(400, 1.0, "yy"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "stream title" {
		t.Errorf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Vcc") || !strings.Contains(lines[1], "a-long-header") {
		t.Errorf("header line %q", lines[1])
	}
	if !strings.Contains(lines[3], "0.512") {
		t.Errorf("float not formatted like Table.AddRow: %q", lines[3])
	}

	var csv strings.Builder
	st, err = NewStreamTable(&csv, true, "ignored", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddRow("x,y", 2.5); err != nil {
		t.Fatal(err)
	}
	if got, want := csv.String(), "a,b\n\"x,y\",2.500\n"; got != want {
		t.Errorf("csv = %q, want %q", got, want)
	}
}
