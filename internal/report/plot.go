package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve for an ASCII plot.
type Series struct {
	Name   string
	Marker byte
	Y      []float64
}

// Plot renders aligned ASCII line charts of one or more series over a
// shared x-axis, the form in which cmd/figures reproduces the paper's
// figure panels (delay curves, cycle times, gain curves).
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	// XTicks labels the columns (one per sample).
	XTicks []string
	Series []Series
	// Height is the number of character rows for the y-range (default 16).
	Height int
	// YMax clips the y-range when positive (the paper's Figure 1 clips at
	// 10 a.u. while the curves keep growing).
	YMax float64
}

// AddSeries appends a curve; every series must have len(XTicks) samples.
func (p *Plot) AddSeries(name string, marker byte, y []float64) {
	p.Series = append(p.Series, Series{Name: name, Marker: marker, Y: y})
}

// Render draws the chart.
func (p *Plot) Render(w io.Writer) error {
	if len(p.Series) == 0 || len(p.XTicks) == 0 {
		_, err := fmt.Fprintf(w, "%s\n(empty plot)\n", p.Title)
		return err
	}
	for _, s := range p.Series {
		if len(s.Y) != len(p.XTicks) {
			return fmt.Errorf("report: series %q has %d samples, want %d", s.Name, len(s.Y), len(p.XTicks))
		}
	}
	height := p.Height
	if height <= 0 {
		height = 16
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for _, v := range s.Y {
			if p.YMax > 0 && v > p.YMax {
				v = p.YMax
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if lo > 0 && lo < hi/4 {
		lo = 0 // anchor at zero when the data plausibly starts there
	}
	if hi == lo {
		hi = lo + 1
	}

	cols := len(p.XTicks)
	colWidth := 0
	for _, t := range p.XTicks {
		if len(t) > colWidth {
			colWidth = len(t)
		}
	}
	colWidth++

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols*colWidth))
	}
	rowOf := func(v float64) int {
		if p.YMax > 0 && v > p.YMax {
			v = p.YMax
		}
		frac := (v - lo) / (hi - lo)
		r := int(math.Round(frac * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r > height-1 {
			r = height - 1
		}
		return height - 1 - r // row 0 at the top
	}
	for _, s := range p.Series {
		for i, v := range s.Y {
			grid[rowOf(v)][i*colWidth+colWidth/2] = s.Marker
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	legend := make([]string, 0, len(p.Series))
	for _, s := range p.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.Marker, s.Name))
	}
	fmt.Fprintf(&b, "  [%s]\n", strings.Join(legend, "  "))
	axisWidth := len(fmt.Sprintf("%.1f", hi))
	if w2 := len(fmt.Sprintf("%.1f", lo)); w2 > axisWidth {
		axisWidth = w2
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", axisWidth)
		switch r {
		case 0:
			label = fmt.Sprintf("%*.1f", axisWidth, hi)
		case height - 1:
			label = fmt.Sprintf("%*.1f", axisWidth, lo)
		case (height - 1) / 2:
			label = fmt.Sprintf("%*.1f", axisWidth, (hi+lo)/2)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", axisWidth), strings.Repeat("-", cols*colWidth))
	fmt.Fprintf(&b, "%s  ", strings.Repeat(" ", axisWidth))
	for _, t := range p.XTicks {
		fmt.Fprintf(&b, "%-*s", colWidth, t)
	}
	b.WriteByte('\n')
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%s  (x: %s, y: %s)\n", strings.Repeat(" ", axisWidth), p.XLabel, p.YLabel)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
