package stats

import "testing"

func TestStallKindStrings(t *testing.T) {
	if StallRFIRAW.String() != "rf-iraw" || StallIQGate.String() != "iq-gate" {
		t.Fatal("stall names wrong")
	}
	if StallKind(99).String() != "StallKind(99)" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestIRAWKindsCoverMechanisms(t *testing.T) {
	kinds := IRAWKinds()
	if len(kinds) != 4 {
		t.Fatalf("IRAWKinds = %v", kinds)
	}
	seen := map[StallKind]bool{}
	for _, k := range kinds {
		seen[k] = true
	}
	for _, k := range []StallKind{StallRFIRAW, StallIQGate, StallDL0IRAW, StallOtherIRAW} {
		if !seen[k] {
			t.Errorf("missing %v", k)
		}
	}
}

func TestRunDerivedMetrics(t *testing.T) {
	r := Run{Instructions: 1000, Cycles: 2000, DelayedByRFIRAW: 132}
	r.IssueStalls[StallRFIRAW] = 170
	r.IssueStalls[StallIQGate] = 10
	if r.IPC() != 0.5 {
		t.Fatalf("IPC = %v", r.IPC())
	}
	if r.StallFraction(StallRFIRAW) != 0.085 {
		t.Fatalf("StallFraction = %v", r.StallFraction(StallRFIRAW))
	}
	if got := r.IRAWStallFraction(); got < 0.0899 || got > 0.0901 {
		t.Fatalf("IRAWStallFraction = %v", got)
	}
	if r.DelayedFraction() != 0.132 {
		t.Fatalf("DelayedFraction = %v", r.DelayedFraction())
	}
	var zero Run
	if zero.IPC() != 0 || zero.StallFraction(StallRAW) != 0 || zero.DelayedFraction() != 0 {
		t.Fatal("zero-run metrics not zero")
	}
}

func TestRunAdd(t *testing.T) {
	a := Run{Instructions: 10, Cycles: 20, DelayedByRFIRAW: 1, IssuedNOOPs: 2}
	a.IssueStalls[StallRAW] = 5
	a.IssueHist[2] = 7
	b := Run{Instructions: 30, Cycles: 40, DelayedByRFIRAW: 3, IssuedNOOPs: 4}
	b.IssueStalls[StallRAW] = 6
	b.IssueHist[2] = 1
	a.Add(&b)
	if a.Instructions != 40 || a.Cycles != 60 || a.DelayedByRFIRAW != 4 ||
		a.IssuedNOOPs != 6 || a.IssueStalls[StallRAW] != 11 || a.IssueHist[2] != 8 {
		t.Fatalf("Add wrong: %+v", a)
	}
}
