// Package stats defines the performance counters of a simulated run and the
// stall-attribution taxonomy used to reproduce the paper's Section 5.2
// breakdown (issue stalls from RF IRAW avoidance vs. DL0 vs. the remaining
// blocks).
package stats

import "fmt"

// StallKind attributes a cycle in which the issue stage made no progress.
type StallKind int

const (
	// StallNone is a sentinel for "no stall" (never counted).
	StallNone StallKind = iota
	// StallRFIRAW: the oldest instruction's source is available but its RF
	// entry is still stabilizing (the scoreboard bubble) — the dominant
	// cost in the paper (8.52% of 8.86% at 575 mV).
	StallRFIRAW
	// StallIQGate: the occupancy gate (Section 4.2) blocked issue.
	StallIQGate
	// StallDL0IRAW: the DL0 ports were held by a fill-stabilization window
	// or a Store-Table replay (Section 4.4).
	StallDL0IRAW
	// StallOtherIRAW: port holds on IL0, UL1, TLBs, FB or WCB/EB
	// (Section 4.3) blocked the oldest instruction or fetch.
	StallOtherIRAW
	// StallRAW: a source value is genuinely not produced yet (baseline
	// dependency stall, present in every design).
	StallRAW
	// StallMemory: the oldest instruction waits on a long-latency value
	// (load miss, divider).
	StallMemory
	// StallStructural: an execution resource or write port was busy.
	StallStructural
	// StallFetchEmpty: the IQ ran dry (fetch could not keep up: I-misses,
	// mispredict redirects).
	StallFetchEmpty
	// StallDrain: cycles spent draining with injected NOOPs.
	StallDrain
	numStallKinds
)

// NumStallKinds is the number of attribution categories.
const NumStallKinds = int(numStallKinds)

var stallNames = [NumStallKinds]string{
	"none", "rf-iraw", "iq-gate", "dl0-iraw", "other-iraw",
	"raw", "memory", "structural", "fetch-empty", "drain",
}

// String implements fmt.Stringer.
func (k StallKind) String() string {
	if int(k) < NumStallKinds {
		return stallNames[k]
	}
	return fmt.Sprintf("StallKind(%d)", int(k))
}

// IRAWKinds lists the attribution categories introduced by IRAW avoidance
// (the ones the paper charges to the mechanism).
func IRAWKinds() []StallKind {
	return []StallKind{StallRFIRAW, StallIQGate, StallDL0IRAW, StallOtherIRAW}
}

// Run accumulates one simulation's counters.
type Run struct {
	Instructions uint64
	Cycles       uint64
	// IssueStalls[k] counts cycles whose issue stall was attributed to k.
	IssueStalls [NumStallKinds]uint64
	// DelayedByRFIRAW counts distinct instructions whose issue was delayed
	// by the scoreboard bubble (the paper's 13.2% statistic).
	DelayedByRFIRAW uint64
	// IssuedNOOPs counts drain NOOPs issued (not program instructions).
	IssuedNOOPs uint64
	// IssueHist[k] counts cycles that issued k instructions; FetchHist
	// likewise for fetched instructions. The histograms keep the modelled
	// dual-issue shape at every width: bucket 2 means "2 or more", so cores
	// wider than 2 fold their 3- and 4-issue cycles into it. That keeps Run
	// comparable (and bit-identical at width 2) across the whole width axis
	// rather than resizing with core.Config.Width.
	IssueHist [3]uint64
	FetchHist [3]uint64
}

// IPC returns instructions per cycle.
func (r *Run) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// StallFraction returns the fraction of cycles attributed to kind k.
func (r *Run) StallFraction(k StallKind) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.IssueStalls[k]) / float64(r.Cycles)
}

// IRAWStallFraction sums the IRAW-attributed stall fractions.
func (r *Run) IRAWStallFraction() float64 {
	var total float64
	for _, k := range IRAWKinds() {
		total += r.StallFraction(k)
	}
	return total
}

// DelayedFraction returns the fraction of instructions delayed by RF IRAW
// avoidance.
func (r *Run) DelayedFraction() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.DelayedByRFIRAW) / float64(r.Instructions)
}

// Sub removes base from r. The core's window-resume path snapshots the Run
// counters when measurement starts and subtracts the snapshot at the end,
// so a window's Result covers only its measured span; every field is a
// monotone counter, which makes the diff exact.
func (r *Run) Sub(base *Run) {
	r.Instructions -= base.Instructions
	r.Cycles -= base.Cycles
	for k := range r.IssueStalls {
		r.IssueStalls[k] -= base.IssueStalls[k]
	}
	r.DelayedByRFIRAW -= base.DelayedByRFIRAW
	r.IssuedNOOPs -= base.IssuedNOOPs
	for k := range r.IssueHist {
		r.IssueHist[k] -= base.IssueHist[k]
		r.FetchHist[k] -= base.FetchHist[k]
	}
}

// Add accumulates other into r (suite aggregation).
func (r *Run) Add(other *Run) {
	r.Instructions += other.Instructions
	r.Cycles += other.Cycles
	for k := range r.IssueStalls {
		r.IssueStalls[k] += other.IssueStalls[k]
	}
	r.DelayedByRFIRAW += other.DelayedByRFIRAW
	r.IssuedNOOPs += other.IssuedNOOPs
	for k := range r.IssueHist {
		r.IssueHist[k] += other.IssueHist[k]
		r.FetchHist[k] += other.FetchHist[k]
	}
}
