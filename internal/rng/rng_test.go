package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestSeedsProduceDistinctStreams(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

// TestReferenceStream pins the exact output stream so that workloads are
// reproducible across releases: any change to the generator is a breaking
// change for recorded experiments and must be deliberate.
func TestReferenceStream(t *testing.T) {
	s := New(0)
	got := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	s2 := New(0)
	for i, want := range got {
		if v := s2.Uint64(); v != want {
			t.Fatalf("draw %d not reproducible: %d != %d", i, v, want)
		}
	}
	// The first draw from seed 0 must be nonzero and stable within a process.
	if got[0] == 0 && got[1] == 0 {
		t.Fatal("suspicious all-zero prefix from seed 0")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d has %d draws, want about %.0f", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nBounds(t *testing.T) {
	s := New(3)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := s.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.Normal(3, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("mean = %v, want 3 +- 0.05", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("stddev = %v, want 2 +- 0.05", math.Sqrt(variance))
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(9)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.9, 1.0} {
		const n = 100000
		sum := 0
		for i := 0; i < n; i++ {
			k := s.Geometric(p)
			if k < 1 {
				t.Fatalf("Geometric(%v) returned %d < 1", p, k)
			}
			sum += k
		}
		mean := float64(sum) / n
		want := 1 / p
		if math.Abs(mean-want) > 0.05*want+0.02 {
			t.Errorf("Geometric(%v) mean = %v, want about %v", p, mean, want)
		}
	}
}

func TestGeometricPanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%v) did not panic", p)
				}
			}()
			New(1).Geometric(p)
		}()
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exponential(4)
	}
	if mean := sum / n; math.Abs(mean-4) > 0.1 {
		t.Errorf("Exponential(4) mean = %v", mean)
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(17)
	z := NewZipf(s, 100, 1.0)
	const n = 100000
	counts := make([]int, 100)
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate rank 50 heavily at theta=1.
	if counts[0] < 10*counts[50] {
		t.Errorf("Zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// And every draw is in range (implicitly: no panic, counts sum to n).
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("draws out of range: %d != %d", total, n)
	}
}

func TestZipfUniformAtZeroTheta(t *testing.T) {
	s := New(19)
	z := NewZipf(s, 10, 0)
	const n = 100000
	counts := make([]int, 10)
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	want := float64(n) / 10
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("theta=0 bucket %d: %d, want about %.0f", i, c, want)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(23)
	fork := a.Fork()
	// The fork must not replay the parent's stream.
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == fork.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("fork collided with parent on %d draws", same)
	}
}

func TestPerm(t *testing.T) {
	s := New(29)
	out := make([]int, 16)
	s.Perm(out)
	seen := make(map[int]bool, len(out))
	for _, v := range out {
		if v < 0 || v >= len(out) || seen[v] {
			t.Fatalf("not a permutation: %v", out)
		}
		seen[v] = true
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(31)
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	trues := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			trues++
		}
	}
	if math.Abs(float64(trues)/n-0.25) > 0.01 {
		t.Errorf("Bool(0.25) rate = %v", float64(trues)/n)
	}
}

func TestMul64(t *testing.T) {
	f := func(x, y uint64) bool {
		hi, lo := mul64(x, y)
		// Verify against big-number arithmetic via pieces.
		wantLo := x * y
		// hi check: ((x*y) >> 64) computed by splitting.
		const mask = 1<<32 - 1
		x0, x1 := x&mask, x>>32
		y0, y1 := y&mask, y>>32
		mid := x1*y0 + (x0*y0)>>32
		wantHi := x1*y1 + mid>>32 + ((mid&mask)+x0*y1)>>32
		return lo == wantLo && hi == wantHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
