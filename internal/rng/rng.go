// Package rng provides deterministic pseudo-random number generation and the
// distributions used by the workload generators and variation models.
//
// The simulator must produce bit-identical results for a given seed across Go
// releases and platforms, so it cannot depend on math/rand's unspecified
// stream. The package implements SplitMix64 (for seeding) and xoshiro256**
// (for the main stream), both with published reference outputs that the test
// suite pins down.
package rng

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used to expand a single user seed into the four xoshiro words.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic xoshiro256** generator. The zero value is not
// valid; use New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via SplitMix64, as recommended by the
// xoshiro authors. Distinct seeds yield independent-looking streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitMix64(&sm)
	}
	// A pathological all-zero state would be a fixed point; SplitMix64 cannot
	// produce four zero words from any seed, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Fork returns a new Source whose stream is independent of the receiver's
// continued use. It is used to give each structure (workload class, cache
// variation map, ...) its own stream so that adding draws to one consumer
// does not perturb another.
func (s *Source) Fork() *Source {
	seed := s.Uint64()
	return New(seed ^ 0xd1342543de82ef95)
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return s.Uint64() & (n - 1)
	}
	threshold := -n % n
	for {
		v := s.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo). Implemented
// directly so the package has no dependency beyond math.
func mul64(x, y uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	x0, x1 := x&mask, x>>32
	y0, y1 := y&mask, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation, using the Box–Muller transform (the cached second
// variate is deliberately discarded to keep Source stateless beyond s).
func (s *Source) Normal(mean, stddev float64) float64 {
	// Avoid log(0).
	u1 := 1 - s.Float64()
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Geometric returns a geometrically distributed integer >= 1 with success
// probability p (mean 1/p): the number of trials up to and including the
// first success. It panics unless 0 < p <= 1.
func (s *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 1
	}
	u := 1 - s.Float64() // in (0, 1]
	k := int(math.Ceil(math.Log(u) / math.Log(1-p)))
	if k < 1 {
		k = 1
	}
	return k
}

// Exponential returns an exponentially distributed float64 with the given
// mean. It panics if mean <= 0.
func (s *Source) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exponential requires mean > 0")
	}
	return -mean * math.Log(1-s.Float64())
}

// Zipf draws integers in [0, n) with probability proportional to
// 1/(rank+1)^theta. The zero value is not valid; use NewZipf.
type Zipf struct {
	src   *Source
	n     int
	theta float64
	cdf   []float64
}

// NewZipf returns a Zipf sampler over [0, n) with exponent theta >= 0.
// theta == 0 degenerates to uniform. It panics if n <= 0 or theta < 0.
func NewZipf(src *Source, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf requires n > 0")
	}
	if theta < 0 {
		panic("rng: NewZipf requires theta >= 0")
	}
	z := &Zipf{src: src, n: n, theta: theta, cdf: make([]float64, n)}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		z.cdf[i] = sum
	}
	inv := 1 / sum
	for i := range z.cdf {
		z.cdf[i] *= inv
	}
	z.cdf[n-1] = 1 // guard against rounding
	return z
}

// Next returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Next() int {
	u := z.src.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the size of the sampler's domain.
func (z *Zipf) N() int { return z.n }

// Perm fills out with a uniform random permutation of [0, len(out)).
func (s *Source) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}
