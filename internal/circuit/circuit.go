// Package circuit models the delay and timing behaviour of logic and 8-T
// SRAM bitcells across the supply-voltage range studied by the paper
// (700 mV down to 400 mV, 45 nm).
//
// The paper obtained these curves from Intel electrical simulations
// (Figure 1); we substitute an analytic model with the same shape,
// calibrated against every numeric anchor the paper publishes:
//
//   - logic delay (a chain of FO4 inverters) grows roughly linearly as Vcc
//     drops (alpha-power law);
//   - bitcell write delay grows exponentially and, including wordline (WL)
//     activation, crosses the 12-FO4 clock phase near 600 mV (near 525 mV
//     without WL activation);
//   - the write-constrained cycle is about 2x the logic cycle at 500 mV and
//     about 4.2x at 450 mV (frequency down to 24%);
//   - interrupting writes early (IRAW avoidance) yields frequency gains of
//     +57% at 500 mV and +99% at 400 mV, with one stabilization cycle
//     sufficing at and below 575 mV.
//
// All delays are expressed in arbitrary units where one clock phase
// (12 FO4) at 700 mV equals 1.0, matching Figure 1's normalization.
package circuit

import (
	"fmt"
	"math"
)

// Millivolts is a supply voltage level. The paper's operating range is
// [400 mV, 700 mV] in 25 mV steps.
type Millivolts int

// Supported voltage range.
const (
	VMin Millivolts = 400
	VMax Millivolts = 700
	// VStep is the granularity of the DVFS controller.
	VStep = 25
)

// String implements fmt.Stringer ("500mV").
func (v Millivolts) String() string { return fmt.Sprintf("%dmV", int(v)) }

// Valid reports whether v lies in the modelled range on a 25 mV step.
func (v Millivolts) Valid() bool {
	return v >= VMin && v <= VMax && (v-VMin)%VStep == 0
}

// Levels returns all modelled voltage levels in descending order,
// 700, 675, ..., 400, matching the x-axes of Figures 1, 11 and 12.
func Levels() []Millivolts {
	levels := make([]Millivolts, 0, int((VMax-VMin)/VStep)+1)
	for v := VMax; v >= VMin; v -= VStep {
		levels = append(levels, v)
	}
	return levels
}

// Params holds the calibration constants of the delay model. DefaultParams
// returns the set calibrated against the paper's anchors; tests guard the
// resulting curve properties, and ablation studies may perturb them.
type Params struct {
	// VthMV and Alpha parameterize the alpha-power logic-delay law:
	// FO4(V) proportional to V / (V - Vth)^Alpha.
	VthMV float64
	Alpha float64

	// FO4PerPhase is the logic depth of one clock phase (the paper uses a
	// 12-FO4 phase and a 24-FO4 cycle).
	FO4PerPhase int

	// WLFrac is the wordline-activation delay as a fraction of a clock
	// phase ("low, and its slope resembles that of the 12 FO4 chain").
	WLFrac float64

	// ReadFrac is the bitcell/bitline read delay as a fraction of a clock
	// phase; 8-T cells keep reads comfortably below the phase.
	ReadFrac float64

	// Bitcell write delay in phase units is
	//   R(V) - WLFrac, with R(V) = WriteR600 * exp(a*x + b*x^2 + c*x^3),
	// where x = 600 - V in mV and R is the (write+WL)/phase ratio. Above
	// 600 mV only the linear term is used so the curve stays monotone.
	WriteR600              float64
	WriteA, WriteB, WriteC float64
	// GammaAt400 and GammaAt500 set the interrupted-write fraction
	// gamma(V): the portion of the full bitcell write delay that must
	// elapse (wordline active, bitlines driven) before the write may be
	// interrupted and the cell left to stabilize on its own. Linear in V.
	GammaAt400, GammaAt500 float64

	// StabFactor scales the full write delay to give the self-stabilization
	// time after interruption (the cell "must complete its flip on its own,
	// with no further help from the bitlines").
	StabFactor float64

	// SigmaLN is the lognormal sigma of per-bitcell write-delay variation;
	// the nominal curves already include SigmaMargin sigmas of margin
	// ("only one critical path per billion would not fit the cycle time").
	SigmaLN     float64
	SigmaMargin float64

	// ActivationGain is the minimum frequency gain for which the DVFS
	// controller keeps IRAW avoidance enabled; below it the stall overhead
	// outweighs the gain (the paper deactivates at 600 mV where the gain
	// would be a modest 1%).
	ActivationGain float64

	// MaxStabilizeCycles bounds N for sanity; the paper's range needs N=1
	// but other technology nodes may need more (Section 5.2).
	MaxStabilizeCycles int
}

// DefaultParams returns the calibration used throughout the reproduction.
func DefaultParams() Params {
	return Params{
		VthMV:              280,
		Alpha:              1.25,
		FO4PerPhase:        12,
		WLFrac:             0.15,
		ReadFrac:           0.55,
		WriteR600:          1.01,
		WriteA:             0.0038159,
		WriteB:             7.826e-6,
		WriteC:             1.98152e-7,
		GammaAt400:         0.49729,
		GammaAt500:         0.60669,
		StabFactor:         1.0,
		SigmaLN:            0.08,
		SigmaMargin:        6.0,
		ActivationGain:     1.10,
		MaxStabilizeCycles: 4,
	}
}

// Model evaluates the delay curves for one parameter set. The zero value is
// not valid; use NewModel.
type Model struct {
	p       Params
	fo4Norm float64 // normalization so Phase(700) == 1
}

// Validate reports whether the parameters are structurally usable.
// NewModel panics on the same conditions (an invariant backstop), so API
// boundaries that accept user-supplied parameters — core.New via
// Config.Circuit — check here first and return the error instead.
func (p Params) Validate() error {
	if p.VthMV >= float64(VMin) {
		return fmt.Errorf("circuit: VthMV %.0f must be below the minimum operating voltage %d", p.VthMV, VMin)
	}
	if p.FO4PerPhase <= 0 {
		return fmt.Errorf("circuit: FO4PerPhase must be positive (got %v)", p.FO4PerPhase)
	}
	return nil
}

// NewModel returns a Model for the given parameters. It panics if the
// parameters are structurally invalid (e.g. Vth at or above VMin), since
// that indicates a programming error rather than a runtime condition;
// validate user input with Params.Validate first.
func NewModel(p Params) *Model {
	if err := p.Validate(); err != nil {
		panic(err.Error())
	}
	m := &Model{p: p, fo4Norm: 1}
	m.fo4Norm = 1 / (float64(p.FO4PerPhase) * m.fo4Raw(VMax))
	return m
}

// Default returns a Model with DefaultParams.
func Default() *Model { return NewModel(DefaultParams()) }

// Params returns a copy of the model's parameters.
func (m *Model) Params() Params { return m.p }

func (m *Model) fo4Raw(v Millivolts) float64 {
	vv := float64(v)
	return vv / math.Pow(vv-m.p.VthMV, m.p.Alpha)
}

// FO4 returns the delay of a single FO4 inverter at v.
func (m *Model) FO4(v Millivolts) float64 { return m.fo4Raw(v) * m.fo4Norm }

// Phase returns the duration of one clock phase's worth of logic
// (FO4PerPhase inverters); 1.0 at 700 mV by construction.
func (m *Model) Phase(v Millivolts) float64 {
	return float64(m.p.FO4PerPhase) * m.FO4(v)
}

// LogicCycle returns the cycle time that pure logic would permit
// (two clock phases).
func (m *Model) LogicCycle(v Millivolts) float64 { return 2 * m.Phase(v) }

// WLActivation returns the wordline-activation delay at v.
func (m *Model) WLActivation(v Millivolts) float64 {
	return m.p.WLFrac * m.Phase(v)
}

// writeRatio returns R(V) = (WL + bitcell write) / phase.
func (m *Model) writeRatio(v Millivolts) float64 {
	x := 600 - float64(v)
	if x < 0 {
		// Above 600 mV keep the curve monotone with the linear term only.
		return m.p.WriteR600 * math.Exp(m.p.WriteA*x)
	}
	e := m.p.WriteA*x + m.p.WriteB*x*x + m.p.WriteC*x*x*x
	return m.p.WriteR600 * math.Exp(e)
}

// BitcellWrite returns the full (uninterrupted) bitcell write delay at v,
// excluding wordline activation. This is the exponentially growing curve of
// Figure 1 and includes the design-time SigmaMargin variation margin.
func (m *Model) BitcellWrite(v Millivolts) float64 {
	return (m.writeRatio(v) - m.p.WLFrac) * m.Phase(v)
}

// BitcellWriteAtSigma returns the write delay re-margined for k sigmas of
// process variation instead of the design-time SigmaMargin. Faulty-Bits
// style designs use k < SigmaMargin for a shorter cycle at the cost of a
// population of cells that no longer meet timing.
func (m *Model) BitcellWriteAtSigma(v Millivolts, k float64) float64 {
	return m.BitcellWrite(v) * math.Exp((k-m.p.SigmaMargin)*m.p.SigmaLN)
}

// BitcellRead returns the bitcell/bitline read delay at v (excluding WL).
func (m *Model) BitcellRead(v Millivolts) float64 {
	return m.p.ReadFrac * m.Phase(v)
}

// WriteWithWL returns wordline activation plus full bitcell write delay:
// the path that constrains the second clock phase in the baseline design.
func (m *Model) WriteWithWL(v Millivolts) float64 {
	return m.writeRatio(v) * m.Phase(v)
}

// ReadWithWL returns wordline activation plus bitline read delay.
func (m *Model) ReadWithWL(v Millivolts) float64 {
	return m.WLActivation(v) + m.BitcellRead(v)
}

// Gamma returns the interrupted-write fraction gamma(V): how much of the
// full bitcell write delay must elapse before the wordline may be safely
// deactivated (properties (i)-(iii) of Section 3.2).
func (m *Model) Gamma(v Millivolts) float64 {
	g := m.p.GammaAt400 + (m.p.GammaAt500-m.p.GammaAt400)*(float64(v)-400)/100
	if g > 1 {
		g = 1
	}
	if g < 0 {
		g = 0
	}
	return g
}

// InterruptedWrite returns the minimum effective write time under IRAW
// avoidance: the wordline-active portion after which the cell flips far
// enough to finish stabilizing on its own.
func (m *Model) InterruptedWrite(v Millivolts) float64 {
	return m.Gamma(v) * m.BitcellWrite(v)
}

// StabilizeTime returns how long an interrupted cell needs to reach a
// readable state after its wordline is deactivated.
func (m *Model) StabilizeTime(v Millivolts) float64 {
	return m.p.StabFactor * m.BitcellWrite(v)
}

// BaselineCycle returns the cycle time of the conventional design, where
// the second clock phase must fit wordline activation plus a complete
// bitcell write (Figure 4, top).
func (m *Model) BaselineCycle(v Millivolts) float64 {
	phase := m.Phase(v)
	return 2 * math.Max(phase, m.WriteWithWL(v))
}

// BaselineCycleAtSigma is BaselineCycle with the write path re-margined to
// k sigmas (used by the Faulty-Bits comparison design).
func (m *Model) BaselineCycleAtSigma(v Millivolts, k float64) float64 {
	phase := m.Phase(v)
	wl := m.WLActivation(v)
	w := m.BitcellWriteAtSigma(v, k)
	return 2 * math.Max(phase, wl+w)
}

// IRAWCycle returns the cycle time with IRAW avoidance: the second phase
// must fit wordline activation plus only the interrupted-write portion, and
// reads (never the limiter for 8-T cells in this range) must also fit.
func (m *Model) IRAWCycle(v Millivolts) float64 {
	phase := m.Phase(v)
	second := math.Max(m.WLActivation(v)+m.InterruptedWrite(v), m.ReadWithWL(v))
	return 2 * math.Max(phase, second)
}

// StabilizeCycles returns N, the number of whole IRAW cycles an interrupted
// write needs before its bitcells are readable again.
func (m *Model) StabilizeCycles(v Millivolts) int {
	cyc := m.IRAWCycle(v)
	n := int(math.Ceil(m.StabilizeTime(v)/cyc - 1e-9))
	if n < 1 {
		n = 1
	}
	if n > m.p.MaxStabilizeCycles {
		n = m.p.MaxStabilizeCycles
	}
	return n
}

// FreqGain returns the operating-frequency ratio IRAW/baseline at v
// (Figure 11(b), squares): 1.57 at 500 mV and 1.99 at 400 mV under the
// default calibration.
func (m *Model) FreqGain(v Millivolts) float64 {
	return m.BaselineCycle(v) / m.IRAWCycle(v)
}
