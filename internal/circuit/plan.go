package circuit

import (
	"fmt"
	"math"
)

// Mode identifies how the core copes with SRAM write delay at low Vcc.
type Mode int

const (
	// ModeBaseline scales frequency down so every write completes within a
	// single cycle ("the realistic baseline" of Section 5).
	ModeBaseline Mode = iota
	// ModeIRAW interrupts writes early and avoids immediate reads after
	// writes (the paper's contribution).
	ModeIRAW
	// ModeFaultyBits shortens the cycle by re-margining the write path to
	// fewer sigmas and disabling the cells that no longer meet timing
	// (state of the art, Section 2.2).
	ModeFaultyBits
	// ModeExtraBypass pipelines writes across several cycles and adds
	// bypass latches so in-flight values remain reachable (state of the
	// art, Section 2.2).
	ModeExtraBypass
)

// String implements fmt.Stringer.
func (mo Mode) String() string {
	switch mo {
	case ModeBaseline:
		return "baseline"
	case ModeIRAW:
		return "iraw"
	case ModeFaultyBits:
		return "faultybits"
	case ModeExtraBypass:
		return "extrabypass"
	default:
		return fmt.Sprintf("Mode(%d)", int(mo))
	}
}

// ClockPlan fixes the timing configuration of a core at one voltage level.
// It is the contract between the circuit model and the microarchitecture:
// the pipeline never consults delay curves directly, only its plan.
type ClockPlan struct {
	Vcc  Millivolts
	Mode Mode

	// CycleTime in phase-at-700mV units; Frequency is its reciprocal.
	CycleTime float64
	Frequency float64

	// StabilizeCycles is N: how many cycles a freshly written SRAM entry
	// needs before it may be read. Zero when IRAW is inactive.
	StabilizeCycles int

	// IRAWActive reports whether write interruption (and therefore all the
	// avoidance machinery) is enabled. The mechanism is deactivated at high
	// Vcc where the frequency gain would not pay for the stalls.
	IRAWActive bool

	// FreqGain is the frequency ratio relative to the baseline plan at the
	// same voltage (1.0 for the baseline itself).
	FreqGain float64

	// WritePipelineCycles is the number of cycles a write occupies its port
	// (1 except in ModeExtraBypass, where writes are pipelined and the port
	// stays busy).
	WritePipelineCycles int

	// SigmaMargin is the variation margin the cycle was sized for; designs
	// below the model's design margin imply faulty cells (ModeFaultyBits).
	SigmaMargin float64
}

// CyclesForTime converts an absolute duration (same units as CycleTime)
// into whole cycles at this plan's frequency, rounding up. It is used to
// convert the constant off-chip memory latency into cycles, reproducing
// effect (i) of Section 5.2 (memory latency does not scale with frequency).
func (cp ClockPlan) CyclesForTime(t float64) int {
	if t <= 0 {
		return 0
	}
	n := int(t / cp.CycleTime)
	if float64(n)*cp.CycleTime < t-1e-12 {
		n++
	}
	return n
}

// PlanBaseline returns the write-constrained baseline plan at v.
func (m *Model) PlanBaseline(v Millivolts) ClockPlan {
	cyc := m.BaselineCycle(v)
	return ClockPlan{
		Vcc:                 v,
		Mode:                ModeBaseline,
		CycleTime:           cyc,
		Frequency:           1 / cyc,
		StabilizeCycles:     0,
		IRAWActive:          false,
		FreqGain:            1,
		WritePipelineCycles: 1,
		SigmaMargin:         m.p.SigmaMargin,
	}
}

// PlanIRAW returns the IRAW-avoidance plan at v. The mechanism
// self-deactivates (reverting to baseline timing, N=0) when the frequency
// gain falls below Params.ActivationGain, as the paper does at 600 mV and
// above where stalls would outweigh a ~1% gain.
func (m *Model) PlanIRAW(v Millivolts) ClockPlan {
	gain := m.FreqGain(v)
	if gain < m.p.ActivationGain {
		cp := m.PlanBaseline(v)
		cp.Mode = ModeIRAW // still the IRAW design, with avoidance disabled
		return cp
	}
	cyc := m.IRAWCycle(v)
	return ClockPlan{
		Vcc:                 v,
		Mode:                ModeIRAW,
		CycleTime:           cyc,
		Frequency:           1 / cyc,
		StabilizeCycles:     m.StabilizeCycles(v),
		IRAWActive:          true,
		FreqGain:            gain,
		WritePipelineCycles: 1,
		SigmaMargin:         m.p.SigmaMargin,
	}
}

// PlanIRAWForcedN is PlanIRAW with a forced stabilization-cycle count,
// used by the N-sweep ablation ("our mechanism would work also for
// different technology nodes or Vcc ranges where the number of IRAW cycles
// was larger", Section 5.2). It panics if n is out of range.
func (m *Model) PlanIRAWForcedN(v Millivolts, n int) ClockPlan {
	if n < 1 || n > m.p.MaxStabilizeCycles {
		panic(fmt.Sprintf("circuit: forced N=%d out of range [1,%d]", n, m.p.MaxStabilizeCycles))
	}
	cp := m.PlanIRAW(v)
	if !cp.IRAWActive {
		return cp
	}
	cp.StabilizeCycles = n
	return cp
}

// IRAWCycleAtSigma is IRAWCycle with the write path re-margined to k
// sigmas: the combination of write interruption and tolerated faulty bits
// the paper sketches in Section 4.4 ("both IRAW avoidance and allowing
// faulty bits can be combined to further increase operating frequency").
func (m *Model) IRAWCycleAtSigma(v Millivolts, k float64) float64 {
	phase := m.Phase(v)
	w := m.Gamma(v) * m.BitcellWriteAtSigma(v, k)
	second := math.Max(m.WLActivation(v)+w, m.ReadWithWL(v))
	return 2 * math.Max(phase, second)
}

// PlanIRAWFaultyBits combines IRAW avoidance with a k-sigma margin: the
// interrupted write is shorter still, at the cost of fault maps in the
// cache-like blocks (the RF/IQ stay fully functional — IRAW already covers
// them, which is what makes this combination feasible where pure Faulty
// Bits is not).
func (m *Model) PlanIRAWFaultyBits(v Millivolts, k float64) ClockPlan {
	base := m.BaselineCycle(v)
	cyc := m.IRAWCycleAtSigma(v, k)
	gain := base / cyc
	if gain < m.p.ActivationGain {
		cp := m.PlanBaseline(v)
		cp.Mode = ModeIRAW
		return cp
	}
	n := int(math.Ceil(m.StabilizeTime(v)/cyc - 1e-9))
	if n < 1 {
		n = 1
	}
	if n > m.p.MaxStabilizeCycles {
		n = m.p.MaxStabilizeCycles
	}
	return ClockPlan{
		Vcc:                 v,
		Mode:                ModeIRAW,
		CycleTime:           cyc,
		Frequency:           1 / cyc,
		StabilizeCycles:     n,
		IRAWActive:          true,
		FreqGain:            gain,
		WritePipelineCycles: 1,
		SigmaMargin:         k,
	}
}

// PlanFaultyBits returns a plan for the Faulty-Bits design at k sigmas of
// margin (k < design margin shortens the cycle; the resulting per-cell
// failure probability is reported by CellFailProb).
func (m *Model) PlanFaultyBits(v Millivolts, k float64) ClockPlan {
	cyc := m.BaselineCycleAtSigma(v, k)
	base := m.BaselineCycle(v)
	return ClockPlan{
		Vcc:                 v,
		Mode:                ModeFaultyBits,
		CycleTime:           cyc,
		Frequency:           1 / cyc,
		StabilizeCycles:     0,
		IRAWActive:          false,
		FreqGain:            base / cyc,
		WritePipelineCycles: 1,
		SigmaMargin:         k,
	}
}

// PlanExtraBypass returns a plan for the Extra-Bypass design: the clock
// runs at logic speed and each SRAM write is pipelined over however many
// cycles the full write needs, keeping the write port busy (Section 2.2:
// "causing significant write port contention").
func (m *Model) PlanExtraBypass(v Millivolts) ClockPlan {
	cyc := 2 * m.Phase(v)
	writeCycles := ClockPlan{CycleTime: cyc}.CyclesForTime(2 * m.WriteWithWL(v))
	if writeCycles < 1 {
		writeCycles = 1
	}
	base := m.BaselineCycle(v)
	return ClockPlan{
		Vcc:                 v,
		Mode:                ModeExtraBypass,
		CycleTime:           cyc,
		Frequency:           1 / cyc,
		StabilizeCycles:     0,
		IRAWActive:          false,
		FreqGain:            base / cyc,
		WritePipelineCycles: writeCycles,
		SigmaMargin:         m.p.SigmaMargin,
	}
}

// Plan dispatches on mode with that mode's default knobs (4 sigma for
// Faulty Bits, per Section 2.2's example of relaxing 6 sigma to 4).
func (m *Model) Plan(v Millivolts, mode Mode) ClockPlan {
	switch mode {
	case ModeBaseline:
		return m.PlanBaseline(v)
	case ModeIRAW:
		return m.PlanIRAW(v)
	case ModeFaultyBits:
		return m.PlanFaultyBits(v, 4)
	case ModeExtraBypass:
		return m.PlanExtraBypass(v)
	default:
		panic(fmt.Sprintf("circuit: unknown mode %v", mode))
	}
}
