package circuit

import "math"

// CellFailProb returns the probability that a single bitcell's write misses
// the cycle time when the design is margined for k sigmas of variation:
// the upper-tail probability of a standard normal beyond k.
//
// The paper sizes the nominal cycle for 6 sigma ("only one critical path
// per billion would not fit"); Faulty-Bits designs accept k = 4 or less and
// disable the offending cells (Section 2.2).
func CellFailProb(k float64) float64 {
	return 0.5 * math.Erfc(k/math.Sqrt2)
}

// LineFailProb returns the probability that at least one of bits cells in a
// line (or other disable granule) fails at margin k. Faulty-Bits designs
// disable whole granules, so this is the fraction of disabled capacity.
func LineFailProb(k float64, bits int) float64 {
	if bits <= 0 {
		return 0
	}
	p := CellFailProb(k)
	return 1 - math.Pow(1-p, float64(bits))
}

// MarginForFailProb inverts CellFailProb: the sigma margin needed for a
// target per-cell failure probability. Used to express design points such
// as "one per billion" (~6 sigma). Binary search is plenty fast and has no
// special-function dependencies beyond Erfc.
func MarginForFailProb(p float64) float64 {
	if p >= 0.5 {
		return 0
	}
	lo, hi := 0.0, 10.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if CellFailProb(mid) > p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
