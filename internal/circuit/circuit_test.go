package circuit

import (
	"math"
	"testing"
)

func almost(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestPhaseNormalization(t *testing.T) {
	m := Default()
	if p := m.Phase(700); !almost(p, 1.0, 1e-12) {
		t.Fatalf("Phase(700) = %v, want 1.0 (Figure 1 normalization)", p)
	}
	if c := m.LogicCycle(700); !almost(c, 2.0, 1e-12) {
		t.Fatalf("LogicCycle(700) = %v, want 2.0", c)
	}
}

func TestLevels(t *testing.T) {
	ls := Levels()
	if len(ls) != 13 {
		t.Fatalf("got %d levels, want 13 (700..400 step 25)", len(ls))
	}
	if ls[0] != 700 || ls[len(ls)-1] != 400 {
		t.Fatalf("levels range wrong: %v", ls)
	}
	for i := 1; i < len(ls); i++ {
		if ls[i-1]-ls[i] != VStep {
			t.Fatalf("levels not descending by %d: %v", VStep, ls)
		}
		if !ls[i].Valid() {
			t.Fatalf("level %v reported invalid", ls[i])
		}
	}
	if Millivolts(410).Valid() || Millivolts(725).Valid() || Millivolts(375).Valid() {
		t.Fatal("off-grid or out-of-range voltages reported valid")
	}
}

// TestDelayMonotonicity: every delay curve must grow as voltage drops.
func TestDelayMonotonicity(t *testing.T) {
	m := Default()
	curves := []struct {
		name string
		f    func(Millivolts) float64
	}{
		{"FO4", m.FO4},
		{"Phase", m.Phase},
		{"WLActivation", m.WLActivation},
		{"BitcellWrite", m.BitcellWrite},
		{"BitcellRead", m.BitcellRead},
		{"WriteWithWL", m.WriteWithWL},
		{"ReadWithWL", m.ReadWithWL},
		{"InterruptedWrite", m.InterruptedWrite},
		{"StabilizeTime", m.StabilizeTime},
		{"BaselineCycle", m.BaselineCycle},
		{"IRAWCycle", m.IRAWCycle},
	}
	for _, c := range curves {
		prev := -1.0
		for _, v := range Levels() { // descending voltage
			d := c.f(v)
			if d <= 0 {
				t.Fatalf("%s(%v) = %v, want positive", c.name, v, d)
			}
			if prev > 0 && d < prev {
				t.Fatalf("%s not monotone: %v at %v < %v at previous level", c.name, d, v, prev)
			}
			prev = d
		}
	}
}

// TestWriteGrowsFasterThanLogic checks the paper's central premise: write
// delay grows exponentially while logic grows roughly linearly, so the
// write/logic ratio keeps increasing as Vcc drops (Figure 1).
func TestWriteGrowsFasterThanLogic(t *testing.T) {
	m := Default()
	prevRatio := 0.0
	for _, v := range Levels() {
		ratio := m.WriteWithWL(v) / m.Phase(v)
		if ratio < prevRatio {
			t.Fatalf("write/logic ratio not increasing at %v: %v < %v", v, ratio, prevRatio)
		}
		prevRatio = ratio
	}
	if prevRatio < 10 {
		t.Fatalf("write/logic ratio at 400mV = %v, want exponential blow-up (>10)", prevRatio)
	}
}

// TestFigure1Crossovers: the write path (with WL activation) becomes the
// cycle limiter near 600 mV; the 8-T read path never does.
func TestFigure1Crossovers(t *testing.T) {
	m := Default()
	if r := m.WriteWithWL(600) / m.Phase(600); !almost(r, 1.01, 0.02) {
		t.Errorf("write+WL vs phase at 600mV = %v, want ~1.01 (crossover)", r)
	}
	if r := m.WriteWithWL(625) / m.Phase(625); r >= 1.0 {
		t.Errorf("write+WL still critical at 625mV (ratio %v); paper says logic-limited above 600mV", r)
	}
	for _, v := range Levels() {
		if m.ReadWithWL(v) >= m.Phase(v) {
			t.Errorf("read path exceeds phase at %v; 8-T reads must never limit the cycle", v)
		}
	}
}

// TestPaperFrequencyAnchors checks the headline circuit-level numbers.
func TestPaperFrequencyAnchors(t *testing.T) {
	m := Default()
	// Frequency gains (Figure 11b): +57% at 500 mV, +99% at 400 mV.
	if g := m.FreqGain(500); !almost(g, 1.57, 0.02) {
		t.Errorf("FreqGain(500mV) = %v, want 1.57 +- 0.02", g)
	}
	if g := m.FreqGain(400); !almost(g, 1.99, 0.03) {
		t.Errorf("FreqGain(400mV) = %v, want 1.99 +- 0.03", g)
	}
	// Baseline frequency at 450 mV drops to ~24% of logic (Section 2.1).
	if r := m.LogicCycle(450) / m.BaselineCycle(450); !almost(r, 0.24, 0.015) {
		t.Errorf("baseline/logic frequency at 450mV = %v, want ~0.24", r)
	}
	// Cycle time "almost doubles" at 500 mV (Section 5.2 / Figure 11a).
	if r := m.BaselineCycle(500) / m.LogicCycle(500); !almost(r, 1.95, 0.06) {
		t.Errorf("baseline cycle inflation at 500mV = %v, want ~1.95 (almost 2x)", r)
	}
}

// TestStabilizationCycles: one stabilization cycle suffices across the whole
// active range in this technology (Section 5.2).
func TestStabilizationCycles(t *testing.T) {
	m := Default()
	for _, v := range Levels() {
		if v > 575 {
			continue
		}
		if n := m.StabilizeCycles(v); n != 1 {
			t.Errorf("StabilizeCycles(%v) = %d, want 1", v, n)
		}
	}
}

func TestPlanIRAWActivation(t *testing.T) {
	m := Default()
	for _, v := range Levels() {
		cp := m.PlanIRAW(v)
		if v >= 600 && cp.IRAWActive {
			t.Errorf("IRAW active at %v; paper deactivates at 600mV and above", v)
		}
		if v <= 575 && !cp.IRAWActive {
			t.Errorf("IRAW inactive at %v; paper keeps it active below 600mV", v)
		}
		if cp.IRAWActive {
			if cp.StabilizeCycles < 1 {
				t.Errorf("active plan at %v has N=%d", v, cp.StabilizeCycles)
			}
			if cp.FreqGain <= 1 {
				t.Errorf("active plan at %v has no frequency gain (%v)", v, cp.FreqGain)
			}
		} else {
			if cp.StabilizeCycles != 0 {
				t.Errorf("inactive plan at %v has N=%d, want 0", v, cp.StabilizeCycles)
			}
			if cp.CycleTime != m.BaselineCycle(v) {
				t.Errorf("inactive plan at %v must run baseline timing", v)
			}
		}
	}
}

func TestPlanBaselineProperties(t *testing.T) {
	m := Default()
	for _, v := range Levels() {
		cp := m.PlanBaseline(v)
		if cp.IRAWActive || cp.StabilizeCycles != 0 {
			t.Errorf("baseline plan at %v has IRAW state", v)
		}
		if !almost(cp.Frequency*cp.CycleTime, 1, 1e-12) {
			t.Errorf("frequency/cycle inconsistent at %v", v)
		}
		if cp.FreqGain != 1 {
			t.Errorf("baseline FreqGain at %v = %v, want 1", v, cp.FreqGain)
		}
	}
}

func TestCyclesForTime(t *testing.T) {
	cp := ClockPlan{CycleTime: 2.0}
	cases := []struct {
		t    float64
		want int
	}{
		{0, 0}, {-5, 0}, {0.1, 1}, {2.0, 1}, {2.0001, 2}, {4, 2}, {300, 150},
	}
	for _, c := range cases {
		if got := cp.CyclesForTime(c.t); got != c.want {
			t.Errorf("CyclesForTime(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

// TestMemoryLatencyScalesWithPlan: a constant-time memory takes fewer cycles
// on a slower clock; this drives Section 5.2's effect (i).
func TestMemoryLatencyScalesWithPlan(t *testing.T) {
	m := Default()
	const memTime = 300.0
	base := m.PlanBaseline(500).CyclesForTime(memTime)
	iraw := m.PlanIRAW(500).CyclesForTime(memTime)
	if base >= iraw {
		t.Errorf("memory cycles at 500mV: baseline %d >= IRAW %d; faster clock must see more cycles", base, iraw)
	}
}

func TestPlanExtraBypassWritePipelining(t *testing.T) {
	m := Default()
	cp := m.PlanExtraBypass(500)
	if cp.WritePipelineCycles < 2 {
		t.Errorf("extra-bypass at 500mV pipelines writes over %d cycles, want >=2", cp.WritePipelineCycles)
	}
	if cp.CycleTime != m.LogicCycle(500) {
		t.Errorf("extra-bypass must clock at logic speed")
	}
	hi := m.PlanExtraBypass(700)
	if hi.WritePipelineCycles != 1 {
		t.Errorf("extra-bypass at 700mV pipelines writes over %d cycles, want 1", hi.WritePipelineCycles)
	}
}

func TestPlanFaultyBitsTradeoff(t *testing.T) {
	m := Default()
	cp := m.PlanFaultyBits(500, 4)
	if cp.FreqGain <= 1 {
		t.Errorf("faulty-bits at 4 sigma should gain frequency, got %v", cp.FreqGain)
	}
	ir := m.PlanIRAW(500)
	if cp.FreqGain >= ir.FreqGain {
		t.Errorf("faulty-bits gain %v should stay below IRAW gain %v at 500mV", cp.FreqGain, ir.FreqGain)
	}
}

func TestPlanModeDispatch(t *testing.T) {
	m := Default()
	for _, mode := range []Mode{ModeBaseline, ModeIRAW, ModeFaultyBits, ModeExtraBypass} {
		cp := m.Plan(500, mode)
		if cp.Mode != mode {
			t.Errorf("Plan(500, %v) returned mode %v", mode, cp.Mode)
		}
		if cp.Vcc != 500 {
			t.Errorf("Plan(500, %v) returned Vcc %v", mode, cp.Vcc)
		}
	}
}

func TestModeString(t *testing.T) {
	want := map[Mode]string{
		ModeBaseline: "baseline", ModeIRAW: "iraw",
		ModeFaultyBits: "faultybits", ModeExtraBypass: "extrabypass",
	}
	for mo, s := range want {
		if mo.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(mo), mo.String(), s)
		}
	}
	if Mode(99).String() != "Mode(99)" {
		t.Errorf("unknown mode string = %q", Mode(99).String())
	}
}

func TestCellFailProb(t *testing.T) {
	// ~1 per billion at 6 sigma ("only one critical path per billion").
	if p := CellFailProb(6); p < 5e-10 || p > 2e-9 {
		t.Errorf("CellFailProb(6) = %v, want ~1e-9", p)
	}
	if p := CellFailProb(4); p < 2e-5 || p > 5e-5 {
		t.Errorf("CellFailProb(4) = %v, want ~3.2e-5", p)
	}
	if CellFailProb(0) != 0.5 {
		t.Errorf("CellFailProb(0) = %v, want 0.5", CellFailProb(0))
	}
}

func TestLineFailProb(t *testing.T) {
	if p := LineFailProb(4, 512); p < 0.01 || p > 0.025 {
		t.Errorf("LineFailProb(4, 512) = %v, want ~1.6%%", p)
	}
	if LineFailProb(4, 0) != 0 {
		t.Error("LineFailProb with zero bits must be 0")
	}
	// More bits per granule, more failures.
	if LineFailProb(4, 64) >= LineFailProb(4, 512) {
		t.Error("LineFailProb must grow with granule size")
	}
}

func TestMarginForFailProb(t *testing.T) {
	for _, k := range []float64{3, 4, 5, 6} {
		p := CellFailProb(k)
		if got := MarginForFailProb(p); !almost(got, k, 0.01) {
			t.Errorf("MarginForFailProb(CellFailProb(%v)) = %v", k, got)
		}
	}
}

func TestGammaBounds(t *testing.T) {
	m := Default()
	for _, v := range Levels() {
		g := m.Gamma(v)
		if g <= 0 || g >= 1 {
			t.Errorf("Gamma(%v) = %v, want in (0,1): interrupted writes are a strict fraction of full writes", v, g)
		}
		if m.InterruptedWrite(v) >= m.BitcellWrite(v) {
			t.Errorf("interrupted write not shorter than full write at %v", v)
		}
	}
}

func TestNewModelPanicsOnBadParams(t *testing.T) {
	p := DefaultParams()
	p.VthMV = 500
	defer func() {
		if recover() == nil {
			t.Fatal("NewModel accepted Vth above operating range")
		}
	}()
	NewModel(p)
}

func TestPlanIRAWForcedN(t *testing.T) {
	m := Default()
	cp := m.PlanIRAWForcedN(500, 3)
	if cp.StabilizeCycles != 3 {
		t.Fatalf("forced N=3 got %d", cp.StabilizeCycles)
	}
	// Forcing N on an inactive plan leaves it inactive.
	if got := m.PlanIRAWForcedN(700, 2); got.IRAWActive {
		t.Fatal("forced N activated IRAW at 700mV")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range N did not panic")
		}
	}()
	m.PlanIRAWForcedN(500, 99)
}

func TestPlanIRAWFaultyBitsCombination(t *testing.T) {
	m := Default()
	for _, v := range []Millivolts{500, 450, 400} {
		pure := m.PlanIRAW(v)
		comb := m.PlanIRAWFaultyBits(v, 4)
		if !comb.IRAWActive {
			t.Fatalf("%v: combined plan inactive", v)
		}
		if comb.FreqGain <= pure.FreqGain {
			t.Errorf("%v: combined gain %.3f not above pure IRAW %.3f (Section 4.4 promises more)",
				v, comb.FreqGain, pure.FreqGain)
		}
		if comb.SigmaMargin != 4 {
			t.Errorf("%v: sigma margin %v", v, comb.SigmaMargin)
		}
		if comb.StabilizeCycles < 1 {
			t.Errorf("%v: N=%d", v, comb.StabilizeCycles)
		}
	}
	// At high Vcc the combination deactivates like pure IRAW.
	if cp := m.PlanIRAWFaultyBits(700, 4); cp.IRAWActive {
		t.Error("combined plan active at 700mV")
	}
}
