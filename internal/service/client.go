package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
	"lowvcc/internal/sim"
)

// Client talks to a sweep daemon. Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client

	// ClientID, when set, identifies this client to the daemon's per-client
	// admission control (sent as the X-Client-ID header). Unset, the daemon
	// falls back to the peer address.
	ClientID string
}

// NewClient targets a daemon at baseURL (e.g. "http://127.0.0.1:7077").
func NewClient(baseURL string) (*Client, error) {
	base, err := normalizeBase(baseURL)
	if err != nil {
		return nil, err
	}
	return &Client{base: base, hc: &http.Client{}}, nil
}

func normalizeBase(baseURL string) (string, error) {
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	u, err := url.Parse(baseURL)
	if err != nil || u.Host == "" {
		return "", fmt.Errorf("service: bad daemon address %q", baseURL)
	}
	return strings.TrimRight(u.String(), "/"), nil
}

// Submit sends the spec and returns the daemon's sweep ID. Backpressure
// (HTTP 429) surfaces as *BusyError with the server's Retry-After; a
// draining daemon (503) as ErrDraining.
func (c *Client) Submit(ctx context.Context, spec sim.SweepSpec) (string, error) {
	data, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/api/v1/sweeps", bytes.NewReader(data))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.ClientID != "" {
		req.Header.Set("X-Client-ID", c.ClientID)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusCreated:
		var out struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return "", fmt.Errorf("service: decoding submit response: %w", err)
		}
		return out.ID, nil
	case http.StatusTooManyRequests:
		retry := 2 * time.Second
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil {
				retry = time.Duration(secs) * time.Second
			}
		}
		return "", &BusyError{RetryAfter: retry}
	case http.StatusServiceUnavailable:
		return "", ErrDraining
	default:
		return "", fmt.Errorf("service: submit: %s: %s", resp.Status, readErrBody(resp.Body))
	}
}

// Status fetches one sweep's summary.
func (c *Client) Status(ctx context.Context, id string) (SweepStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/api/v1/sweeps/"+url.PathEscape(id), nil)
	if err != nil {
		return SweepStatus{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return SweepStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return SweepStatus{}, fmt.Errorf("service: status: %s: %s", resp.Status, readErrBody(resp.Body))
	}
	var st SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return SweepStatus{}, err
	}
	return st, nil
}

// Events follows the sweep's progress stream, invoking fn per event, and
// returns the terminal event. An fn error aborts the stream and is
// returned.
func (c *Client) Events(ctx context.Context, id string, fn func(CellEvent) error) (CellEvent, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/api/v1/sweeps/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return CellEvent{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return CellEvent{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return CellEvent{}, fmt.Errorf("service: events: %s: %s", resp.Status, readErrBody(resp.Body))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev CellEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return CellEvent{}, fmt.Errorf("service: bad event line: %w", err)
		}
		if fn != nil {
			if err := fn(ev); err != nil {
				return CellEvent{}, err
			}
		}
		if ev.Terminal {
			return ev, nil
		}
	}
	if err := sc.Err(); err != nil {
		return CellEvent{}, err
	}
	return CellEvent{}, fmt.Errorf("service: event stream for %s ended without a terminal event", id)
}

// StreamLevels runs the spec on the daemon and replays the progress as the
// local sim.Runner.StreamLevels contract: onLevel fires once per voltage in
// spec order, as soon as every requested mode at that level has aggregated,
// with failed operating points in the fails map. Per-trace cell results
// merge in trace order via core.MergeResults — the emitted aggregates are
// bit-identical to a local sweep of the same spec, which is what lets
// `vccsweep -server` render the exact same table a local run prints.
func (c *Client) StreamLevels(ctx context.Context, spec sim.SweepSpec, onLevel func(circuit.Millivolts, map[circuit.Mode]*sim.Point, map[circuit.Mode]*sim.CellError) error) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	modes, err := spec.CircuitModes()
	if err != nil {
		return err
	}
	levels := spec.Levels()

	id, err := c.Submit(ctx, spec)
	if err != nil {
		return err
	}

	// One slot per operating point, accumulating per-trace results by
	// index so merge order never depends on event arrival order.
	type slot struct {
		results []*core.Result
		got     int
		fail    *sim.CellError
	}
	grid := make(map[circuit.Mode]map[circuit.Millivolts]*slot, len(modes))
	for _, m := range modes {
		grid[m] = make(map[circuit.Millivolts]*slot, len(levels))
	}
	var tracesPerPoint int

	modeOf := make(map[string]circuit.Mode, len(modes))
	for i, name := range spec.Modes {
		modeOf[name] = modes[i]
	}

	next := 0
	emitReady := func() error {
		for next < len(levels) {
			v := levels[next]
			row := make(map[circuit.Mode]*sim.Point, len(modes))
			fails := make(map[circuit.Mode]*sim.CellError)
			for _, m := range modes {
				s := grid[m][v]
				if s == nil || (s.fail == nil && s.got < tracesPerPoint) {
					return nil // level still incomplete (or gated by order)
				}
				if s.fail != nil {
					fails[m] = s.fail
				} else {
					row[m] = &sim.Point{Vcc: v, Mode: m, Agg: core.MergeResults(s.results)}
				}
			}
			if err := onLevel(v, row, fails); err != nil {
				return err
			}
			next++
		}
		return nil
	}

	term, err := c.Events(ctx, id, func(ev CellEvent) error {
		if ev.Terminal {
			return nil
		}
		if tracesPerPoint == 0 && ev.Total > 0 {
			tracesPerPoint = ev.Total / (len(modes) * len(levels))
		}
		m, ok := modeOf[ev.Mode]
		if !ok {
			return fmt.Errorf("service: event for unknown mode %q", ev.Mode)
		}
		v := circuit.Millivolts(ev.VccMV)
		s := grid[m][v]
		if s == nil {
			s = &slot{results: make([]*core.Result, tracesPerPoint)}
			grid[m][v] = s
		}
		switch {
		case ev.Err != "":
			if s.fail == nil {
				s.fail = &sim.CellError{Point: -1, Trace: ev.TraceIdx, TraceName: ev.TraceName, Label: ev.Label, Err: fmt.Errorf("%s", ev.Err)}
			}
		case ev.TraceIdx < 0 || ev.TraceIdx >= len(s.results):
			return fmt.Errorf("service: event trace index %d out of range", ev.TraceIdx)
		case s.results[ev.TraceIdx] == nil:
			s.results[ev.TraceIdx] = ev.Result
			s.got++
		}
		return emitReady()
	})
	if err != nil {
		return err
	}
	switch term.State {
	case "done", "failed":
		// Failed points rendered through the fails map; make sure every
		// level was emitted (a failed cell may have unblocked later levels
		// only now).
		if err := emitReady(); err != nil {
			return err
		}
		if next < len(levels) {
			return fmt.Errorf("service: sweep %s ended %q with %d/%d levels aggregated", id, term.State, next, len(levels))
		}
		return nil
	default:
		return fmt.Errorf("service: sweep %s ended %q (daemon drained mid-sweep; resubmit to resume from the journal)", id, term.State)
	}
}

func readErrBody(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 512))
	return strings.TrimSpace(string(b))
}

// httpSource speaks the daemon's lease endpoints — the external worker's
// CellSource.
type httpSource struct {
	base string
	hc   *http.Client
}

func newHTTPSource(baseURL string) (*httpSource, error) {
	base, err := normalizeBase(baseURL)
	if err != nil {
		return nil, err
	}
	return &httpSource{base: base, hc: &http.Client{Timeout: 10 * time.Second}}, nil
}

func (h *httpSource) Acquire(ctx context.Context, worker string) (*Lease, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		h.base+"/api/v1/lease?worker="+url.QueryEscape(worker), nil)
	if err != nil {
		return nil, err
	}
	resp, err := h.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil, nil
	case http.StatusOK:
		var l Lease
		if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
			return nil, err
		}
		return &l, nil
	default:
		return nil, fmt.Errorf("service: acquire: %s: %s", resp.Status, readErrBody(resp.Body))
	}
}

func (h *httpSource) Heartbeat(ctx context.Context, leaseID string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		h.base+"/api/v1/lease/"+url.PathEscape(leaseID)+"/heartbeat", nil)
	if err != nil {
		return err
	}
	resp, err := h.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil
	case http.StatusGone:
		return ErrLeaseLost
	default:
		return fmt.Errorf("service: heartbeat: %s", resp.Status)
	}
}

func (h *httpSource) Complete(ctx context.Context, leaseID, worker, errMsg string, entry []byte) error {
	// entry is the sealed journal-entry upload (base64 over JSON); the
	// lease ID in the URL doubles as the request's idempotency token.
	body, err := json.Marshal(struct {
		Worker string `json:"worker"`
		Err    string `json:"err"`
		Entry  []byte `json:"entry,omitempty"`
	}{worker, errMsg, entry})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		h.base+"/api/v1/lease/"+url.PathEscape(leaseID)+"/done", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil
	case http.StatusGone:
		return ErrLeaseLost
	default:
		return fmt.Errorf("service: complete: %s", resp.Status)
	}
}
