package service

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"lowvcc/internal/circuit"
	"lowvcc/internal/sim"
)

// TestSweepdWorkerHelper is not a test: it is the external worker process
// body for TestWorkerCrashResume, re-executing the test binary the way
// `sweepd -worker -join <addr>` runs in production. It pulls leases over
// HTTP until killed; LOWVCC_SWEEPD_FAULT="label|trace" arms a FaultExit
// rule so the process dies (exit 3) mid-cell when it reaches that cell.
func TestSweepdWorkerHelper(t *testing.T) {
	if os.Getenv("LOWVCC_SWEEPD_WORKER") != "1" {
		t.Skip("helper process for TestWorkerCrashResume")
	}
	join := os.Getenv("LOWVCC_SWEEPD_JOIN")
	name := os.Getenv("LOWVCC_SWEEPD_NAME")
	var plan *sim.FaultPlan
	if f := os.Getenv("LOWVCC_SWEEPD_FAULT"); f != "" {
		label, trace, ok := strings.Cut(f, "|")
		if !ok {
			fmt.Fprintf(os.Stderr, "helper: bad fault spec %q\n", f)
			os.Exit(2)
		}
		plan = sim.NewFaultPlan(sim.FaultRule{
			Label: label, TraceName: trace, Window: -1,
			Kind: sim.FaultExit, Times: 1,
		})
	}
	// Runs until the parent kills the process (clean workers) or the fault
	// fires os.Exit (the victim).
	if err := Work(context.Background(), join, WorkerOpts{
		Name:   name,
		Poll:   10 * time.Millisecond,
		Faults: plan,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "helper: %v\n", err)
		os.Exit(2)
	}
}

// spawnWorkerProc re-executes this test binary as an external worker
// process joined to the daemon at base. fault, when non-empty, is
// "label|trace" for a die-mid-cell FaultExit. The process is killed at
// test cleanup if still running.
func spawnWorkerProc(t *testing.T, base, name, fault string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestSweepdWorkerHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"LOWVCC_SWEEPD_WORKER=1",
		"LOWVCC_SWEEPD_JOIN="+base,
		"LOWVCC_SWEEPD_NAME="+name,
		"LOWVCC_SWEEPD_FAULT="+fault,
	)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting worker process %s: %v", name, err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd, &out
}

// TestWorkerCrashResume is the process-level resilience proof: an external
// worker process is killed mid-cell (fault-injected os.Exit, same effect
// as kill -9), its lease expires and the cell is reassigned, and a rescue
// fleet — sized 1, 2, and 4 across subtests — completes the sweep with no
// lost or double-counted cells and a journal byte-identical to an
// uninterrupted local run.
func TestWorkerCrashResume(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary as worker processes")
	}
	spec := testSpec()
	ref := localReferenceJournal(t, spec)
	// The victim cell sits mid-grid (second mode, first level, first
	// trace): the victim completes real work first, then dies.
	victimLabel := sim.SweepLabel(circuit.Millivolts(500), circuit.ModeIRAW)
	victimTrace := spec.Traces()[0].Name

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("rescuers=%d", n), func(t *testing.T) {
			dir := t.TempDir()
			_, base := newTestDaemon(t, ServerOpts{
				SchedulerOpts: SchedulerOpts{
					JournalDir: dir,
					LeaseTTL:   300 * time.Millisecond,
				},
				Workers: -1,
			})
			cl, err := NewClient(base)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()

			// The victim works the sweep alone so it deterministically
			// reaches the faulted cell and dies holding its lease.
			victim, vout := spawnWorkerProc(t, base, "victim", victimLabel+"|"+victimTrace)
			id, err := cl.Submit(ctx, spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := victim.Wait(); err == nil {
				t.Fatalf("victim exited clean, want fault exit 3\n%s", vout)
			}
			if code := victim.ProcessState.ExitCode(); code != 3 {
				t.Fatalf("victim exit code = %d, want 3 (FaultExit)\n%s", code, vout)
			}
			st, err := cl.Status(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			if st.Done == 0 || st.Terminal() {
				t.Fatalf("victim died too early/late: %+v (want partial progress)", st)
			}

			// Rescue fleet: n clean workers finish what the victim left,
			// including the reclaimed in-flight cell.
			for i := 0; i < n; i++ {
				spawnWorkerProc(t, base, fmt.Sprintf("rescue-%d", i), "")
			}

			seen := make(map[int]int)
			term, err := cl.Events(ctx, id, func(ev CellEvent) error {
				if !ev.Terminal && ev.Err == "" {
					seen[ev.Index]++
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if term.State != "done" {
				t.Fatalf("sweep ended %q after rescue, want done", term.State)
			}
			total := cellCount(spec)
			if len(seen) != total {
				t.Fatalf("completed %d distinct cells, want %d (lost cells)", len(seen), total)
			}
			for idx, c := range seen {
				if c != 1 {
					t.Fatalf("cell %d counted %d times (double count across crash)", idx, c)
				}
			}
			assertJournalsEqual(t, ref, dir, fmt.Sprintf("crash resume, %d rescuers", n))
		})
	}
}
