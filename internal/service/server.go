package service

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"lowvcc/internal/sim"
)

// ServerOpts configures a Server.
type ServerOpts struct {
	SchedulerOpts

	// Workers sizes the daemon's in-process simulation pool: 0 selects
	// GOMAXPROCS, negative disables local simulation entirely (the daemon
	// then only coordinates external workers).
	Workers int

	// Worker options forwarded to the in-process pool.
	CellTimeout  time.Duration
	Retries      int
	RetryBackoff time.Duration

	// Faults injects failures into the in-process pool (tests only).
	Faults *sim.FaultPlan
}

// Server is the sweep daemon's HTTP surface wrapped around a Scheduler and
// an optional in-process worker pool.
//
// Endpoints:
//
//	POST /api/v1/sweeps                 submit a sim.SweepSpec  -> 201 {"id": ...}
//	GET  /api/v1/sweeps/{id}            SweepStatus
//	GET  /api/v1/sweeps/{id}/events     progress stream, one CellEvent JSON per line
//	POST /api/v1/lease                  acquire   -> 200 Lease | 204 no work
//	POST /api/v1/lease/{id}/heartbeat   extend    -> 204 | 410 lease lost
//	POST /api/v1/lease/{id}/done        complete  -> 204 | 410 lease lost
//	GET  /healthz                       process liveness (always 200 while serving)
//	GET  /readyz                        accepting work? (503 while draining)
//
// Backpressure surfaces as 429 with a Retry-After header; draining as 503.
type Server struct {
	sched *Scheduler
	opts  ServerOpts

	draining    atomic.Bool
	stopWorkers func()
}

// NewServer builds the daemon: scheduler (journal lock, janitor) plus the
// in-process worker pool. The warning, when non-empty, reports a stale
// journal lock that was reclaimed.
func NewServer(opts ServerOpts) (*Server, string, error) {
	sched, warn, err := NewScheduler(opts.SchedulerOpts)
	if err != nil {
		return nil, warn, err
	}
	srv := &Server{sched: sched, opts: opts}
	n := opts.Workers
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > 0 {
		srv.stopWorkers = RunWorkers(context.Background(), sched, n, WorkerOpts{
			Poll:         25 * time.Millisecond,
			CellTimeout:  opts.CellTimeout,
			Retries:      opts.Retries,
			RetryBackoff: opts.RetryBackoff,
			Faults:       opts.Faults,
		})
	}
	return srv, warn, nil
}

// Scheduler exposes the underlying scheduler (tests, drain verification).
func (srv *Server) Scheduler() *Scheduler { return srv.sched }

// Handler returns the daemon's HTTP mux.
func (srv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/sweeps", srv.handleSubmit)
	mux.HandleFunc("GET /api/v1/sweeps/{id}", srv.handleStatus)
	mux.HandleFunc("GET /api/v1/sweeps/{id}/events", srv.handleEvents)
	mux.HandleFunc("POST /api/v1/lease", srv.handleAcquire)
	mux.HandleFunc("POST /api/v1/lease/{id}/heartbeat", srv.handleHeartbeat)
	mux.HandleFunc("POST /api/v1/lease/{id}/done", srv.handleComplete)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if srv.draining.Load() || srv.sched.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

// Drain performs the graceful-shutdown sequence: stop admitting work,
// let in-flight cells finish (bounded by ctx), stop the worker pool, and
// release the journal lock. After Drain the handler still answers status
// and event reads — clients watching a sweep see its terminal event — but
// every mutation is rejected.
func (srv *Server) Drain(ctx context.Context) error {
	srv.draining.Store(true)
	err := srv.sched.Drain(ctx)
	if srv.stopWorkers != nil {
		srv.stopWorkers()
		srv.stopWorkers = nil
	}
	if cerr := srv.sched.Close(); err == nil {
		err = cerr
	}
	return err
}

// clientID identifies the submitting client for admission control: the
// X-Client-ID header when present (trusted deployments name themselves),
// otherwise the peer host — good enough to keep one greedy machine from
// starving the rest.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// retryAfterSeconds renders d as a Retry-After header value, rounding up
// so a sub-second quota window still tells the client to wait.
func retryAfterSeconds(d time.Duration) string {
	secs := int(d.Seconds() + 0.5)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (srv *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec sim.SweepSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&spec); err != nil {
		http.Error(w, "bad spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	id, err := srv.sched.SubmitAs(clientID(r), spec)
	var busy *BusyError
	var quota *QuotaError
	switch {
	case errors.As(err, &busy):
		w.Header().Set("Retry-After", retryAfterSeconds(busy.RetryAfter))
		http.Error(w, busy.Error(), http.StatusTooManyRequests)
	case errors.As(err, &quota):
		w.Header().Set("Retry-After", retryAfterSeconds(quota.RetryAfter))
		http.Error(w, quota.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		writeJSON(w, http.StatusCreated, map[string]string{"id": id})
	}
}

func (srv *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := srv.sched.Status(r.PathValue("id"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams the sweep's progress as one JSON-encoded CellEvent
// per line (ndjson), flushed per event, ending after the terminal event.
// The scheduler never blocks on this handler: if the connection can't keep
// up the subscription is dropped and the handler resubscribes, resuming
// from history by event count — every event is delivered exactly once per
// connection, in order, regardless of lag.
func (srv *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")

	enc := json.NewEncoder(w)
	send := func(ev CellEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	sent := 0
	for {
		history, live, cancel, err := srv.sched.Subscribe(id)
		if err != nil {
			if sent == 0 {
				http.Error(w, err.Error(), http.StatusNotFound)
			}
			return
		}
		// Catch up from history first: after a lag-induced drop this is
		// where the missed events live. The terminal event, once sent,
		// ends the stream.
		for ; sent < len(history); sent++ {
			if !send(history[sent]) {
				cancel()
				return
			}
			if history[sent].Terminal {
				cancel()
				return
			}
		}
	live:
		for {
			select {
			case <-r.Context().Done():
				cancel()
				return
			case ev, ok := <-live:
				if !ok {
					// Lag drop or daemon shutdown mid-sweep: resubscribe and
					// resume from history — no event is lost or repeated.
					cancel()
					break live
				}
				sent++
				if !send(ev) {
					cancel()
					return
				}
				if ev.Terminal {
					cancel()
					return
				}
			}
		}
	}
}

func (srv *Server) handleAcquire(w http.ResponseWriter, r *http.Request) {
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		worker = r.RemoteAddr
	}
	lease, err := srv.sched.Acquire(worker)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if lease == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, lease)
}

func (srv *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if err := srv.sched.Heartbeat(r.PathValue("id")); err != nil {
		http.Error(w, err.Error(), http.StatusGone)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (srv *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	// Entry is the push-down upload: sealed journal-entry bytes, verified
	// by the scheduler before admission. The larger body cap covers the
	// biggest plausible windowed-cell entry with room to spare.
	var body struct {
		Worker string `json:"worker"`
		Err    string `json:"err"`
		Entry  []byte `json:"entry"`
	}
	if r.Body != nil {
		_ = json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&body)
	}
	if err := srv.sched.Complete(r.PathValue("id"), body.Worker, body.Err, body.Entry); err != nil {
		http.Error(w, err.Error(), http.StatusGone)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// An encode failure here is a connection-level problem; the client
	// retries, nothing useful left to do server-side.
	_ = json.NewEncoder(w).Encode(v)
}
