package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"lowvcc/internal/sim"
)

// ChaosSource wraps a CellSource with deterministic network-fault
// injection (tests and the partition smoke only). Faults match by cell
// identity and protocol call — sim.FaultRule with a network kind and an
// Op of "acquire", "heartbeat" or "complete" — never by timing, so a plan
// injects the same faults for any worker count or schedule:
//
//   - FaultNetDrop fails the call with a transport error after it already
//     ran against the inner source — the lost-response case, which is the
//     one that forces retries and daemon-side idempotency. (A lost
//     request is indistinguishable from the caller's side and exercises
//     strictly less.)
//   - FaultNetDelay sleeps Delay, then proceeds normally.
//   - FaultNetDup delivers the call twice back-to-back and returns the
//     duplicate's result — the duplicated-request case the daemon's
//     Complete dedup must absorb.
//   - FaultNetSever partitions the lease: the matched call and every
//     later call on the same lease fail with a transport error without
//     reaching the inner source, until the worker abandons the cell and
//     the lease expires daemon-side.
type ChaosSource struct {
	inner CellSource
	plan  *sim.FaultPlan

	mu      sync.Mutex
	cells   map[string]Cell     // leaseID -> cell, for identity matching
	severed map[string]struct{} // leases cut off by FaultNetSever
}

// NewChaosSource wraps inner with the plan's network faults. A nil plan
// injects nothing.
func NewChaosSource(inner CellSource, plan *sim.FaultPlan) *ChaosSource {
	return &ChaosSource{
		inner:   inner,
		plan:    plan,
		cells:   make(map[string]Cell),
		severed: make(map[string]struct{}),
	}
}

// chaosError is the injected transport failure. Distinct from ErrLeaseLost
// so the worker treats it exactly like a real network error.
func chaosError(op, label string) error {
	return fmt.Errorf("service: injected network fault: %s for %s lost on the wire", op, label)
}

func (c *ChaosSource) Acquire(ctx context.Context, worker string) (*Lease, error) {
	lease, err := c.inner.Acquire(ctx, worker)
	if err != nil || lease == nil {
		return lease, err
	}
	c.mu.Lock()
	c.cells[lease.ID] = lease.Cell
	c.mu.Unlock()
	if r := c.plan.TakeNet("acquire", lease.Cell.Label, lease.Cell.TraceName); r != nil {
		switch r.Kind {
		case sim.FaultNetDrop:
			// The lease was granted but the response never arrived: the
			// worker sees an error, the daemon holds an orphan lease that
			// only expiry can reclaim.
			return nil, chaosError("acquire", lease.Cell.Label)
		case sim.FaultNetDelay:
			time.Sleep(r.Delay)
		case sim.FaultNetSever:
			c.mu.Lock()
			c.severed[lease.ID] = struct{}{}
			c.mu.Unlock()
		}
	}
	return lease, nil
}

// take matches a network fault for op on leaseID's cell, and reports
// whether the lease is severed (either previously or by this match).
func (c *ChaosSource) take(op, leaseID string) (*sim.FaultRule, bool) {
	c.mu.Lock()
	cell, known := c.cells[leaseID]
	_, cut := c.severed[leaseID]
	c.mu.Unlock()
	if cut {
		return nil, true
	}
	if !known {
		return nil, false
	}
	r := c.plan.TakeNet(op, cell.Label, cell.TraceName)
	if r != nil && r.Kind == sim.FaultNetSever {
		c.mu.Lock()
		c.severed[leaseID] = struct{}{}
		c.mu.Unlock()
		return nil, true
	}
	return r, false
}

func (c *ChaosSource) Heartbeat(ctx context.Context, leaseID string) error {
	r, cut := c.take("heartbeat", leaseID)
	if cut {
		return chaosError("heartbeat", leaseID)
	}
	if r != nil {
		switch r.Kind {
		case sim.FaultNetDrop:
			return chaosError("heartbeat", leaseID)
		case sim.FaultNetDelay:
			time.Sleep(r.Delay)
		case sim.FaultNetDup:
			_ = c.inner.Heartbeat(ctx, leaseID)
		}
	}
	return c.inner.Heartbeat(ctx, leaseID)
}

func (c *ChaosSource) Complete(ctx context.Context, leaseID, worker, errMsg string, entry []byte) error {
	r, cut := c.take("complete", leaseID)
	if cut {
		return chaosError("complete", leaseID)
	}
	if r != nil {
		switch r.Kind {
		case sim.FaultNetDrop:
			// The request lands, the response is lost: the daemon records
			// the completion, the worker sees a transport error and
			// retries — the canonical double-count hazard the scheduler's
			// lease-ID dedup absorbs.
			_ = c.inner.Complete(ctx, leaseID, worker, errMsg, entry)
			return chaosError("complete", leaseID)
		case sim.FaultNetDelay:
			time.Sleep(r.Delay)
		case sim.FaultNetDup:
			_ = c.inner.Complete(ctx, leaseID, worker, errMsg, entry)
		}
	}
	return c.inner.Complete(ctx, leaseID, worker, errMsg, entry)
}
