package service

import (
	"context"
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"lowvcc/internal/sim"
)

// testSpec is the small grid the service tests sweep: 2 modes x 2 levels
// over the quick suite's traces — enough cells to exercise scheduling,
// milliseconds to simulate.
func testSpec() sim.SweepSpec {
	return sim.SweepSpec{
		InstsPerTrace:   2000,
		SeedsPerProfile: 1,
		Modes:           []string{"baseline", "iraw"},
		LevelsMV:        []int{500, 400},
	}
}

// singlePointSpec pins one operating point for tests that hand-drive
// leases.
func singlePointSpec() sim.SweepSpec {
	return sim.SweepSpec{
		InstsPerTrace:   2000,
		SeedsPerProfile: 1,
		Modes:           []string{"iraw"},
		LevelsMV:        []int{500},
	}
}

func cellCount(spec sim.SweepSpec) int {
	return len(spec.Modes) * len(spec.Levels()) * len(spec.Traces())
}

// journalHashes fingerprints every entry file in a journal directory.
func journalHashes(t *testing.T, dir string) map[string][32]byte {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][32]byte)
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".cell") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = sha256.Sum256(data)
	}
	return out
}

// localReferenceJournal runs the spec's grid with the plain sim runner and
// returns the journal it leaves — the ground truth every service execution
// must reproduce byte-for-byte.
func localReferenceJournal(t *testing.T, spec sim.SweepSpec) string {
	t.Helper()
	dir := t.TempDir()
	modes, err := spec.CircuitModes()
	if err != nil {
		t.Fatal(err)
	}
	r := spec.NewRunner().WithJournal(dir)
	r.Workers = 2
	if _, err := r.Sweep(context.Background(), spec.Traces(), modes, spec.Levels()); err != nil {
		t.Fatal(err)
	}
	return dir
}

func assertJournalsEqual(t *testing.T, wantDir, gotDir, label string) {
	t.Helper()
	want, got := journalHashes(t, wantDir), journalHashes(t, gotDir)
	if len(want) != len(got) {
		t.Fatalf("%s: journal has %d entries, reference %d", label, len(got), len(want))
	}
	for name, h := range want {
		if got[name] != h {
			t.Fatalf("%s: journal entry %s differs from the local reference", label, name)
		}
	}
}

// newTestScheduler builds a scheduler with fast test timings and closes it
// with the test.
func newTestScheduler(t *testing.T, opts SchedulerOpts) *Scheduler {
	t.Helper()
	if opts.JournalDir == "" {
		opts.JournalDir = t.TempDir()
	}
	if opts.LeaseTTL == 0 {
		opts.LeaseTTL = 200 * time.Millisecond
	}
	s, warn, err := NewScheduler(opts)
	if err != nil {
		t.Fatal(err)
	}
	if warn != "" {
		t.Fatalf("fresh scheduler warned: %s", warn)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// waitStatus polls until the sweep reaches a terminal state.
func waitStatus(t *testing.T, s *Scheduler, id string, timeout time.Duration) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s still %q after %s (%d/%d done)", id, st.State, timeout, st.Done, st.Total)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// completeLease simulates the leased cell exactly like a worker and
// reports it done.
func completeLease(t *testing.T, s *Scheduler, lease *Lease) {
	t.Helper()
	if err := executeCell(context.Background(), lease, WorkerOpts{}); err != nil {
		t.Fatalf("executing leased cell: %v", err)
	}
	if err := s.Complete(lease.ID, "test", "", nil); err != nil {
		t.Fatalf("completing lease: %v", err)
	}
}

// TestInProcessSweepMatchesLocal: a sweep executed by the daemon's
// in-process pool finishes, streams every cell event exactly once, and
// leaves a journal byte-identical to a plain local run.
func TestInProcessSweepMatchesLocal(t *testing.T) {
	spec := testSpec()
	ref := localReferenceJournal(t, spec)

	dir := t.TempDir()
	srv, _, err := NewServer(ServerOpts{
		SchedulerOpts: SchedulerOpts{JournalDir: dir, LeaseTTL: time.Second},
		Workers:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain(context.Background())

	id, err := srv.Scheduler().Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	history, live, cancel, err := srv.Scheduler().Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	seen := make(map[int]int)
	var terminal *CellEvent
	record := func(ev CellEvent) {
		if ev.Terminal {
			terminal = &ev
			return
		}
		seen[ev.Index]++
	}
	for _, ev := range history {
		record(ev)
	}
	timeout := time.After(30 * time.Second)
	for terminal == nil {
		select {
		case ev, ok := <-live:
			if !ok {
				t.Fatal("event channel closed before the terminal event")
			}
			record(ev)
		case <-timeout:
			t.Fatal("no terminal event after 30s")
		}
	}
	if terminal.State != "done" {
		t.Fatalf("sweep ended %q, want done", terminal.State)
	}
	total := cellCount(spec)
	if len(seen) != total {
		t.Fatalf("saw events for %d cells, want %d", len(seen), total)
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("cell %d completed %d times, want exactly once", idx, n)
		}
	}
	assertJournalsEqual(t, ref, dir, "in-process sweep")
}

// TestLeaseExpiryReclaimsAndNeverDoubleCounts: a worker that stops
// heartbeating loses its cell to reclamation; its late heartbeat and
// completion get ErrLeaseLost and change nothing, and the cell completes
// exactly once under the new lease.
func TestLeaseExpiryReclaimsAndNeverDoubleCounts(t *testing.T) {
	spec := singlePointSpec()
	s := newTestScheduler(t, SchedulerOpts{LeaseTTL: 150 * time.Millisecond})
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	dead, err := s.Acquire("doomed")
	if err != nil || dead == nil {
		t.Fatalf("acquire: (%v, %v)", dead, err)
	}
	if err := s.Heartbeat(dead.ID); err != nil {
		t.Fatalf("live heartbeat: %v", err)
	}

	// Stop heartbeating; the janitor must reclaim within ~1.25 TTL.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := s.Heartbeat(dead.ID); errors.Is(err, ErrLeaseLost) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lease was never reclaimed")
		}
		// Only probe occasionally — each successful heartbeat extends the
		// lease, so probe slower than the TTL.
		time.Sleep(400 * time.Millisecond)
	}
	if err := s.Complete(dead.ID, "doomed", "", nil); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale Complete = %v, want ErrLeaseLost", err)
	}

	// The reclaimed cell leases out again (attempt 2) and completes once.
	var second *Lease
	for time.Now().Before(deadline) {
		if second, err = s.Acquire("rescue"); err != nil {
			t.Fatal(err)
		}
		if second != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if second == nil {
		t.Fatal("reclaimed cell never became acquirable")
	}
	if second.Cell.Key != dead.Cell.Key {
		t.Fatalf("reclaim handed out a different cell: %s vs %s", second.Cell.Key, dead.Cell.Key)
	}
	completeLease(t, s, second)

	st, err := s.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 {
		t.Fatalf("done = %d, want 1 (no double count)", st.Done)
	}
}

// TestSuccessWithoutJournalEntryRetries: a worker claiming success without
// having journaled the result (lost write) costs an attempt and requeues —
// the scheduler believes the journal, not the worker.
func TestSuccessWithoutJournalEntryRetries(t *testing.T) {
	s := newTestScheduler(t, SchedulerOpts{})
	if _, err := s.Submit(singlePointSpec()); err != nil {
		t.Fatal(err)
	}
	lease, err := s.Acquire("liar")
	if err != nil || lease == nil {
		t.Fatalf("acquire: (%v, %v)", lease, err)
	}
	// Complete without executing: no journal entry exists.
	if err := s.Complete(lease.ID, "liar", "", nil); err != nil {
		t.Fatal(err)
	}
	again, err := s.Acquire("honest")
	if err != nil || again == nil {
		t.Fatalf("cell was not requeued after bogus success: (%v, %v)", again, err)
	}
	if again.Cell.Key != lease.Cell.Key {
		t.Fatalf("requeued a different cell")
	}
}

// TestMaxAttemptsDeclaresCellFailed: a poison cell exhausts its attempt
// budget and fails the sweep rather than wedging it; the failure event
// carries the reason.
func TestMaxAttemptsDeclaresCellFailed(t *testing.T) {
	spec := singlePointSpec()
	s := newTestScheduler(t, SchedulerOpts{MaxAttempts: 2})
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	total := cellCount(spec)

	for attempt := 0; ; attempt++ {
		lease, err := s.Acquire("clumsy")
		if err != nil {
			t.Fatal(err)
		}
		if lease == nil {
			break // all cells exhausted
		}
		if err := s.Complete(lease.ID, "clumsy", "injected failure", nil); err != nil {
			t.Fatal(err)
		}
		if attempt > total*2+1 {
			t.Fatal("cells were not capped at MaxAttempts")
		}
	}
	st := waitStatus(t, s, id, 5*time.Second)
	if st.State != "failed" || st.Failed != total {
		t.Fatalf("status = %+v, want failed with %d failed cells", st, total)
	}
	history, _, cancel, err := s.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	foundReason := false
	for _, ev := range history {
		if strings.Contains(ev.Err, "injected failure") && strings.Contains(ev.Err, "giving up") {
			foundReason = true
		}
	}
	if !foundReason {
		t.Fatal("no failure event carried the exhausted-attempts reason")
	}
}

// TestBackpressureThenRecovery: a full queue rejects with BusyError and a
// positive Retry-After; after the queue drains the same submission
// succeeds — 429 is a retryable condition, not a terminal one.
func TestBackpressureThenRecovery(t *testing.T) {
	spec := testSpec()
	total := cellCount(spec)
	s := newTestScheduler(t, SchedulerOpts{MaxQueuedCells: total})
	id1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	_, err = s.Submit(singlePointSpec())
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("over-capacity submit err = %v, want *BusyError", err)
	}
	if busy.RetryAfter <= 0 {
		t.Fatalf("BusyError.RetryAfter = %v, want positive", busy.RetryAfter)
	}

	// Drain the queue with real workers, then retry.
	stop := RunWorkers(context.Background(), s, 2, WorkerOpts{})
	waitStatus(t, s, id1, 30*time.Second)
	id2, err := s.Submit(singlePointSpec())
	if err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	waitStatus(t, s, id2, 30*time.Second)
	stop()
}

// TestDrainFinishesInFlightAndRejectsNew: during a drain, an in-flight
// lease completes and counts, new submissions and acquisitions are
// refused, the remaining cells are abandoned ("interrupted"), and the
// journal verifies clean.
func TestDrainFinishesInFlightAndRejectsNew(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	s := newTestScheduler(t, SchedulerOpts{JournalDir: dir, LeaseTTL: time.Second})
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	lease, err := s.Acquire("slowpoke")
	if err != nil || lease == nil {
		t.Fatalf("acquire: (%v, %v)", lease, err)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Drain must refuse new work while waiting on our lease.
	deadline := time.Now().Add(2 * time.Second)
	for !s.Draining() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := s.Submit(singlePointSpec()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain = %v, want ErrDraining", err)
	}
	if l, err := s.Acquire("eager"); err != nil || l != nil {
		t.Fatalf("acquire during drain = (%v, %v), want (nil, nil)", l, err)
	}
	select {
	case err := <-drained:
		t.Fatalf("drain returned %v while a lease was still in flight", err)
	default:
	}

	completeLease(t, s, lease)
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not finish after the in-flight lease completed")
	}

	st, err := s.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "interrupted" || st.Done != 1 {
		t.Fatalf("status after drain = %+v, want interrupted with the in-flight cell done", st)
	}
	if n, err := s.Journal().Verify(); err != nil || n != 1 {
		t.Fatalf("journal after drain: (%d, %v), want (1, nil)", n, err)
	}
}

// TestRestartResumesFromJournal: a new daemon over the same journal
// directory replays the previous daemon's completed cells instantly and
// only simulates the missing ones; the final journal is byte-identical to
// an uninterrupted local run.
func TestRestartResumesFromJournal(t *testing.T) {
	spec := testSpec()
	ref := localReferenceJournal(t, spec)
	dir := t.TempDir()

	// Daemon A: complete exactly one cell, then die (Close releases the
	// lock like a crashed daemon's reclaimed LOCK would).
	a := newTestScheduler(t, SchedulerOpts{JournalDir: dir})
	if _, err := a.Submit(spec); err != nil {
		t.Fatal(err)
	}
	lease, err := a.Acquire("a-worker")
	if err != nil || lease == nil {
		t.Fatalf("acquire: (%v, %v)", lease, err)
	}
	completeLease(t, a, lease)
	a.Close()

	// Daemon B: same journal, same spec. One replay, the rest simulated.
	b := newTestScheduler(t, SchedulerOpts{JournalDir: dir})
	id, err := b.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	stop := RunWorkers(context.Background(), b, 2, WorkerOpts{})
	defer stop()
	st := waitStatus(t, b, id, 30*time.Second)
	if st.State != "done" {
		t.Fatalf("resumed sweep ended %q", st.State)
	}
	if st.Replayed != 1 {
		t.Fatalf("resumed sweep replayed %d cells, want exactly the 1 completed by daemon A", st.Replayed)
	}
	assertJournalsEqual(t, ref, dir, "restart resume")
}

// TestSchedulerLockExclusion: two daemons must not share a journal
// directory; the second acquires the lock only after the first closes.
func TestSchedulerLockExclusion(t *testing.T) {
	dir := t.TempDir()
	a := newTestScheduler(t, SchedulerOpts{JournalDir: dir})
	if _, _, err := NewScheduler(SchedulerOpts{JournalDir: dir}); err == nil {
		t.Fatal("second scheduler acquired a held journal lock")
	}
	a.Close()
	b, _, err := NewScheduler(SchedulerOpts{JournalDir: dir})
	if err != nil {
		t.Fatalf("acquire after close: %v", err)
	}
	b.Close()
}

// TestSlowSubscriberNeverStallsScheduler: a subscriber that never reads
// must not block completion — it gets disconnected instead. The sweep
// finishes at full speed and the history still holds every event.
func TestSlowSubscriberNeverStallsScheduler(t *testing.T) {
	spec := testSpec()
	s := newTestScheduler(t, SchedulerOpts{})
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Subscribe and never read a single event.
	_, _, cancel, err := s.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	stop := RunWorkers(context.Background(), s, 2, WorkerOpts{})
	defer stop()
	st := waitStatus(t, s, id, 30*time.Second)
	if st.State != "done" {
		t.Fatalf("sweep ended %q with a stuck subscriber", st.State)
	}
	history, _, c2, err := s.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	c2()
	// total cell events + 1 terminal.
	if want := cellCount(spec) + 1; len(history) != want {
		t.Fatalf("history has %d events, want %d", len(history), want)
	}
}

// TestDrainLeavesNoGoroutines: a full server lifecycle (submit, simulate,
// drain) settles back to the pre-server goroutine count — no leaked
// workers, janitors, heartbeats or subscribers.
func TestDrainLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		srv, _, err := NewServer(ServerOpts{
			SchedulerOpts: SchedulerOpts{JournalDir: t.TempDir(), LeaseTTL: time.Second},
			Workers:       2,
		})
		if err != nil {
			t.Fatal(err)
		}
		id, err := srv.Scheduler().Submit(testSpec())
		if err != nil {
			t.Fatal(err)
		}
		// Subscribe and abandon, mid-sweep.
		_, _, cancel, err := srv.Scheduler().Subscribe(id)
		if err != nil {
			t.Fatal(err)
		}
		_ = cancel // deliberately never called: terminate must close it
		if err := srv.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if now := runtime.NumGoroutine(); now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSweepDeadline: an overdue sweep is failed by the janitor instead of
// running forever.
func TestSweepDeadline(t *testing.T) {
	s := newTestScheduler(t, SchedulerOpts{
		LeaseTTL:      100 * time.Millisecond,
		SweepDeadline: 50 * time.Millisecond,
	})
	id, err := s.Submit(singlePointSpec())
	if err != nil {
		t.Fatal(err)
	}
	// No workers ever acquire: the deadline must fire on its own.
	st := waitStatus(t, s, id, 5*time.Second)
	if st.State != "failed" {
		t.Fatalf("overdue sweep ended %q, want failed", st.State)
	}
}

// TestReplayOnlySubmitIsInstantlyTerminal: submitting a spec whose cells
// are all journaled completes at submission without any worker.
func TestReplayOnlySubmitIsInstantlyTerminal(t *testing.T) {
	spec := testSpec()
	dir := localReferenceJournal(t, spec)
	// The local run left no LOCK; the scheduler claims it fresh.
	s := newTestScheduler(t, SchedulerOpts{JournalDir: dir})
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Replayed != st.Total {
		t.Fatalf("status = %+v, want done with every cell replayed", st)
	}
}
