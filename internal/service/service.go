// Package service is the sweep daemon: an HTTP/JSON control plane that
// accepts sweep specifications, decomposes them into journal-keyed cells,
// and hands the cells to workers under time-bounded leases. It turns the
// sim runner's single-process resilience layer (journaling, retries,
// partial sweeps) into a multi-process one: workers can crash, hang, or be
// kill -9'ed and the sweep still completes, bit-identical to an
// uninterrupted local run.
//
// # Cells and content addressing
//
// A submitted SweepSpec expands into one Cell per (mode, voltage, trace)
// triple, in the same fixed (mode, level, trace) order a local sweep uses.
// Each cell carries the journal content address (sim.Runner.CellKey) that
// its result must land under — a hash of the trace bytes, the full core
// configuration, the windowing plan and the engine version. That key is
// the system's idempotency token: executing a cell twice is harmless
// because both executions write the same bytes to the same address, and a
// replayed cell is indistinguishable from a fresh one.
//
// Results reach the daemon one of two ways, both ending in the daemon's
// own journal through the full integrity check. In-process workers write
// the shared journal directly. External workers journal into a private
// directory and upload the sealed entry bytes in the Complete call
// (result push-down): the daemon re-derives the sha256 content address
// and cell key from the uploaded bytes before admitting them
// (journal.Admit), so a buggy or byzantine worker can corrupt nothing —
// a bad upload is rejected, charged as a failed attempt, and the cell
// requeues. No shared filesystem is required to join a fleet.
//
// # Leases, heartbeats, reclamation
//
// Workers pull cells by acquiring a Lease — exclusive, time-bounded
// (SchedulerOpts.LeaseTTL) permission to execute one cell. A live worker
// extends its lease by heartbeating at TTL/3; the scheduler's janitor
// reclaims any lease that outlives its TTL and requeues the cell, so a
// crashed, hung, partitioned or kill -9'ed worker delays its cells by at
// most one TTL. A worker that comes back from a pause after losing its
// lease gets ErrLeaseLost on the next heartbeat or completion and abandons
// the cell; only the current leaseholder's completion counts, so a cell is
// never double-counted even when an old and a new holder both finish it
// (their results are bit-identical by the keying contract anyway). Each
// reclamation increments the cell's attempt count; a cell that exhausts
// SchedulerOpts.MaxAttempts is declared failed and the sweep finishes
// partial, reporting it — a poison cell cannot wedge the service.
//
// # Failure model
//
// The faults the service tolerates by design, and what each degrades to
// (never a wrong number — at worst re-done work or a reported-failed
// cell):
//
//   - Worker crash / kill -9 mid-cell: lease expires, cell requeues,
//     another worker re-runs it. Cost: one TTL of latency. A half-written
//     journal entry is a temp file the atomic-rename protocol never
//     published.
//   - Network partition, worker side: heartbeats stop getting through;
//     after enough misses to guarantee the TTL has passed, the worker
//     cancels the cell, abandons cleanly and rejoins the poll loop. The
//     daemon reclaims the lease and requeues the cell. A worker that
//     finishes just as the partition heals completes normally — its
//     upload is verified like any other.
//   - Dropped or duplicated Complete: the lease ID doubles as the
//     request's idempotency token. Workers retry a failed Complete with
//     jittered backoff; the daemon remembers recently completed leases
//     and absorbs duplicates, so a retried Complete after a dropped
//     response can never double-count a cell. A Complete that never
//     arrives at all degrades to lease expiry (above).
//   - Corrupt upload (buggy or byzantine worker): the daemon verifies
//     the sealed bytes' sha256 content address and cell key before
//     admitting them; a bad upload is rejected, the attempt is charged,
//     and the cell requeues under MaxAttempts — the scheduler believes
//     the verified bytes, never the worker.
//   - Slow client / disconnect mid-stream: its event subscription is
//     dropped; the sweep runs on. Slow subscribers are disconnected
//     rather than ever stalling the scheduler (see Scheduler.Subscribe).
//   - Queue full: submission fails fast with BusyError (HTTP 429 +
//     Retry-After) instead of queueing unboundedly. Per-client token
//     buckets and the per-sweep cell limit (QuotaError, also 429)
//     throttle a greedy tenant without starving the rest.
//   - Disk full / store over budget: journal and checkpoint stores are
//     caches. Write failures are counted and swallowed (the cell re-runs
//     later); under -journal-budget/-ckpt-budget the stores evict
//     least-recently-used entries, never an in-flight lease's cell
//     (pinned) — an evicted entry is a future re-simulation or live
//     replay, never an error.
//   - Daemon dies: the exclusive-writer LOCK file (internal/journal) is
//     reclaimed by the next daemon after a pid+start-time liveness check
//     (a recycled pid cannot wedge it); completed cells replay from the
//     journal on resubmission, only missing cells re-simulate.
//   - Drain (SIGTERM): no new leases, no new sweeps (503), in-flight cells
//     finish and journal; still-incomplete sweeps end "interrupted".
//     Resubmitting the same spec to the next daemon replays the finished
//     cells and runs only the remainder.
//
// Two worker flavors implement the same CellSource-driven loop:
// in-process goroutine pools inside the daemon (zero-copy, shared
// journal) and external worker processes (sweepd -worker -join <addr>)
// that pull leases over HTTP, journal privately and push results down.
// Correctness never depends on the flavor or the worker count: the
// acceptance tests run the same sweep with 1, 2 and 4 workers under
// kill -9, partitions and corrupt uploads and assert identical journals.
package service

import (
	"errors"
	"fmt"
	"time"

	"lowvcc/internal/core"
	"lowvcc/internal/sim"
)

// Cell is one schedulable unit of a sweep: a single (mode, voltage,
// trace) simulation, content-addressed by Key.
type Cell struct {
	// Sweep and Index identify the cell within its sweep; cells are
	// indexed in the fixed (mode, level, trace) expansion order.
	Sweep string `json:"sweep"`
	Index int    `json:"index"`

	// Label is the operating point's sweep label (sim.SweepLabel) — what
	// progress lines print and fault-injection rules match on.
	Label string `json:"label"`

	Mode      string `json:"mode"`
	VccMV     int    `json:"vcc_mv"`
	TraceIdx  int    `json:"trace_idx"`
	TraceName string `json:"trace_name"`

	// Key is the journal content address the cell's result lands under.
	// The worker recomputes it from Spec and refuses the cell on mismatch
	// (an engine-version or windowing drift between daemon and worker).
	Key string `json:"key"`

	// Spec is the submitted sweep spec; the worker regenerates the trace
	// and core configuration from it deterministically.
	Spec sim.SweepSpec `json:"spec"`
}

// Lease is time-bounded permission to execute one cell. The holder must
// heartbeat before TTL expires or the scheduler reassigns the cell.
type Lease struct {
	ID   string `json:"id"`
	Cell Cell   `json:"cell"`

	// JournalDir is the daemon's journal directory. In-process workers
	// journal straight into it; external workers ignore it — they journal
	// into a private directory and upload the sealed entry bytes in
	// Complete instead (result push-down), so joining a daemon requires
	// no shared filesystem.
	JournalDir  string `json:"journal_dir"`
	JournalSync bool   `json:"journal_sync"`

	// TTLMS is the lease's time budget in milliseconds; heartbeat at a
	// third of it.
	TTLMS int64 `json:"ttl_ms"`
}

// TTL returns the lease's time budget.
func (l *Lease) TTL() time.Duration { return time.Duration(l.TTLMS) * time.Millisecond }

// CellEvent is one progress record of a running sweep. Terminal events
// (Terminal=true, Index=-1) carry the sweep's final state instead of a
// cell.
type CellEvent struct {
	Sweep string `json:"sweep"`
	// Index is the completed cell's index, or -1 on the terminal event.
	Index     int    `json:"index"`
	Label     string `json:"label,omitempty"`
	Mode      string `json:"mode,omitempty"`
	VccMV     int    `json:"vcc_mv,omitempty"`
	TraceIdx  int    `json:"trace_idx,omitempty"`
	TraceName string `json:"trace_name,omitempty"`

	// Replayed marks a cell served from the journal without simulating.
	Replayed bool `json:"replayed,omitempty"`
	// Worker names who completed the cell (in-process slots are "local/N").
	Worker string `json:"worker,omitempty"`

	// Result is the cell's simulation result (nil on failure and on the
	// terminal event — aggregate results are read per-cell).
	Result *core.Result `json:"result,omitempty"`
	// Err is the cell's (or sweep's) failure, "" on success.
	Err string `json:"err,omitempty"`

	Done   int `json:"done"`
	Failed int `json:"failed,omitempty"`
	Total  int `json:"total"`

	Terminal bool `json:"terminal,omitempty"`
	// State on the terminal event: "done", "failed" or "interrupted".
	State string `json:"state,omitempty"`
}

// SweepStatus is a point-in-time summary of one sweep.
type SweepStatus struct {
	ID string `json:"id"`
	// State: "running", "done", "failed" (some cells exhausted their
	// attempts) or "interrupted" (the daemon drained mid-sweep).
	State    string `json:"state"`
	Done     int    `json:"done"`
	Failed   int    `json:"failed"`
	Replayed int    `json:"replayed"`
	Total    int    `json:"total"`
}

// Terminal reports whether the sweep has finished (in any state).
func (s SweepStatus) Terminal() bool { return s.State != "running" }

// BusyError reports a submission rejected by backpressure: the cell queue
// cannot absorb the sweep. Retry after RetryAfter.
type BusyError struct {
	RetryAfter time.Duration
	Queued     int
	Limit      int
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("service: queue full (%d cells queued, limit %d); retry after %s",
		e.Queued, e.Limit, e.RetryAfter)
}

// QuotaError reports a submission rejected by per-client admission
// control: the client's token bucket ran dry (submission rate) or the
// sweep exceeds the per-sweep cell limit. Like BusyError it surfaces as
// HTTP 429 + Retry-After; unlike BusyError it names the client, so one
// greedy tenant throttles only itself.
type QuotaError struct {
	Client     string
	Reason     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("service: client %q over quota: %s; retry after %s",
		e.Client, e.Reason, e.RetryAfter)
}

// ErrDraining rejects new work while the daemon shuts down gracefully.
var ErrDraining = errors.New("service: draining, not accepting new sweeps")

// ErrLeaseLost tells a worker its lease expired and was reassigned (or the
// lease ID never existed). The worker abandons the cell; the result it may
// already have journaled is still valid and will be replayed.
var ErrLeaseLost = errors.New("service: lease lost")

// ErrUnknownSweep reports a status or subscription request for a sweep ID
// the scheduler has never seen.
var ErrUnknownSweep = errors.New("service: unknown sweep")
