package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"lowvcc/internal/circuit"
	"lowvcc/internal/journal"
	"lowvcc/internal/sim"
)

// CellSource is the lease protocol from a worker's point of view. Two
// implementations exist: schedSource calls the Scheduler directly
// (in-process worker slots inside the daemon) and httpSource speaks the
// /api/v1/lease endpoints (external sweepd -worker processes). The worker
// loop is identical either way, so every crash-recovery property holds for
// both flavors.
type CellSource interface {
	// Acquire leases the next cell, (nil, nil) when none is available.
	Acquire(ctx context.Context, worker string) (*Lease, error)
	// Heartbeat extends the lease; ErrLeaseLost means it was reclaimed.
	Heartbeat(ctx context.Context, leaseID string) error
	// Complete reports the cell's outcome. errMsg == "" means success.
	// entry carries the sealed journal-entry bytes for push-down workers
	// (verified daemon-side before admission); in-process workers pass nil
	// and the daemon reads its own journal. The lease ID is the request's
	// idempotency token: retrying a Complete is always safe.
	Complete(ctx context.Context, leaseID, worker, errMsg string, entry []byte) error
}

// schedSource adapts a Scheduler to CellSource for in-process workers.
type schedSource struct{ s *Scheduler }

func (ss schedSource) Acquire(_ context.Context, worker string) (*Lease, error) {
	return ss.s.Acquire(worker)
}
func (ss schedSource) Heartbeat(_ context.Context, leaseID string) error {
	return ss.s.Heartbeat(leaseID)
}
func (ss schedSource) Complete(_ context.Context, leaseID, worker, errMsg string, entry []byte) error {
	return ss.s.Complete(leaseID, worker, errMsg, entry)
}

// WorkerOpts configures a worker loop.
type WorkerOpts struct {
	// Name identifies the worker in leases and events.
	Name string

	// Poll is the sleep between empty Acquires (default 250ms for remote
	// workers; the daemon's in-process slots use a tighter loop).
	Poll time.Duration

	// CellTimeout, when positive, bounds each cell's wall clock
	// (sim.Runner.PointTimeout) — the per-cell deadline.
	CellTimeout time.Duration

	// Retries and RetryBackoff forward to the Runner's window-level
	// transient-failure retry policy.
	Retries      int
	RetryBackoff time.Duration

	// Faults forwards a fault-injection plan to the Runner (tests and the
	// crash-recovery smoke script only).
	Faults *sim.FaultPlan

	// JournalDir, when set, makes this a push-down worker: cells journal
	// into this private directory and the sealed entry bytes upload in
	// Complete, so no filesystem is shared with the daemon. When "", the
	// worker journals straight into the lease's (daemon's) directory —
	// the in-process arrangement.
	JournalDir string

	// JournalBudget and CkptBudget bound the private journal's and the
	// warm-state checkpoint store's disk usage in bytes (LRU eviction);
	// 0 = unbounded. Only meaningful with JournalDir set.
	JournalBudget int64
	CkptBudget    int64
}

func (o WorkerOpts) withDefaults() WorkerOpts {
	if o.Name == "" {
		o.Name = "worker"
	}
	if o.Poll <= 0 {
		o.Poll = 250 * time.Millisecond
	}
	return o
}

// workLoop pulls leases until the context dies. Every error path reports
// back through Complete so the scheduler learns the outcome as soon as the
// worker does, rather than waiting for lease expiry; a worker that dies
// before reporting is exactly the case lease reclamation covers.
func workLoop(ctx context.Context, src CellSource, opts WorkerOpts) {
	opts = opts.withDefaults()
	for ctx.Err() == nil {
		lease, err := src.Acquire(ctx, opts.Name)
		if err != nil || lease == nil {
			// Idle or unreachable: back off and re-poll. Acquire errors are
			// indistinguishable from a daemon restart; retrying is correct
			// either way.
			select {
			case <-ctx.Done():
			case <-time.After(opts.Poll):
			}
			continue
		}
		runLease(ctx, src, lease, opts)
	}
}

// runLease executes one leased cell under a heartbeat, then reports.
func runLease(ctx context.Context, src CellSource, lease *Lease, opts WorkerOpts) {
	// The cell runs under its own context so a lost lease cancels the
	// simulation promptly instead of wasting the slot on a cell someone
	// else now owns.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		heartbeatLoop(cctx, cancel, src, lease, opts)
	}()

	errMsg := ""
	if err := executeCell(cctx, lease, opts); err != nil {
		errMsg = err.Error()
	}
	cancel()
	hb.Wait()

	// Push-down: read the sealed entry bytes back from the private journal
	// for upload. A read failure here degrades to a nil upload — the
	// daemon charges the attempt and requeues, exactly as if we crashed.
	var entry []byte
	if errMsg == "" && opts.JournalDir != "" {
		if jnl, err := journal.Open(opts.JournalDir); err == nil {
			entry, _ = jnl.GetRaw(lease.Cell.Key)
		}
	}

	// Report on the parent context: the cell context is dead by design.
	// A lost lease makes Complete return ErrLeaseLost, which is fine — the
	// reclaimed cell is someone else's now. Transport failures retry with
	// jittered backoff: the lease ID makes retried Completes idempotent,
	// and a Complete that never lands degrades to lease expiry.
	rctx, rcancel := context.WithTimeout(context.WithoutCancel(ctx), 20*time.Second)
	defer rcancel()
	for attempt := 1; ; attempt++ {
		err := src.Complete(rctx, lease.ID, opts.Name, errMsg, entry)
		if err == nil || errors.Is(err, ErrLeaseLost) || attempt >= 3 || rctx.Err() != nil {
			return
		}
		select {
		case <-rctx.Done():
			return
		case <-time.After(sim.JitteredBackoff(200*time.Millisecond, attempt)):
		}
	}
}

// heartbeatLoop extends the lease at TTL/3 until the cell context ends.
// A definitive ErrLeaseLost — or repeated transport failures adding up to
// a TTL — cancels the cell.
func heartbeatLoop(ctx context.Context, cancel context.CancelFunc, src CellSource, lease *Lease, opts WorkerOpts) {
	interval := lease.TTL() / 3
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	misses := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			err := src.Heartbeat(ctx, lease.ID)
			switch {
			case err == nil:
				misses = 0
			case errors.Is(err, ErrLeaseLost):
				cancel()
				return
			default:
				// Transport trouble: the lease may still be live on the
				// daemon. Keep simulating until the misses alone prove the
				// lease must have expired.
				misses++
				if misses >= 4 {
					cancel()
					return
				}
			}
		}
	}
}

// executeCell regenerates the cell's inputs from its spec, verifies the
// content address matches the daemon's (catching engine-version or
// windowing drift between the two binaries), and simulates through
// Runner.RunCell so the result journals under exactly the promised key.
func executeCell(ctx context.Context, lease *Lease, opts WorkerOpts) error {
	c := lease.Cell
	mode, err := sim.ParseMode(c.Mode)
	if err != nil {
		return err
	}
	traces := c.Spec.Traces()
	if c.TraceIdx < 0 || c.TraceIdx >= len(traces) {
		return fmt.Errorf("cell %d: trace index %d outside suite of %d", c.Index, c.TraceIdx, len(traces))
	}
	tr := traces[c.TraceIdx]
	if tr.Name != c.TraceName {
		return fmt.Errorf("cell %d: trace %d is %q here, %q on the daemon (workload drift)", c.Index, c.TraceIdx, tr.Name, c.TraceName)
	}
	cfg := c.Spec.PointConfig(circuit.Millivolts(c.VccMV), mode)

	// Push-down workers journal privately (fsync off: the daemon's journal
	// is the durability boundary, this one is a scratch cache); in-process
	// workers share the daemon's directory and inherit its sync policy.
	dir, sync := lease.JournalDir, lease.JournalSync
	if opts.JournalDir != "" {
		dir, sync = opts.JournalDir, false
	}

	r := c.Spec.NewRunner().
		WithJournal(dir).
		WithJournalSync(sync).
		WithJournalBudget(opts.JournalBudget).
		WithCheckpointBudget(opts.CkptBudget).
		WithPointTimeout(opts.CellTimeout).
		WithRetry(opts.Retries, opts.RetryBackoff).
		WithFaults(opts.Faults)
	r.Workers = 1

	key, err := r.CellKey(cfg, tr)
	if err != nil {
		return err
	}
	if key != c.Key {
		return fmt.Errorf("cell %d: key mismatch (worker %s, daemon %s): engine or windowing drift — rebuild the worker", c.Index, key, c.Key)
	}
	_, _, err = r.RunCell(ctx, c.Label, cfg, tr)
	return err
}

// RunWorkers starts n in-process worker slots against the scheduler and
// returns a stop function that cancels them and waits. The daemon calls
// this when configured with local simulation capacity; the slots poll
// tightly (no HTTP in the path) and are named "local/N".
func RunWorkers(ctx context.Context, s *Scheduler, n int, opts WorkerOpts) (stop func()) {
	ctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		o := opts
		o.Name = fmt.Sprintf("local/%d", i)
		if o.Poll <= 0 {
			o.Poll = 25 * time.Millisecond
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			workLoop(ctx, schedSource{s}, o)
		}()
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

// Work runs one external worker loop against a daemon at baseURL until the
// context ends — the body of `sweepd -worker -join <addr>`. External
// workers always push results down: when opts.JournalDir is empty a
// throwaway private journal directory is created for the process's
// lifetime, so joining a daemon never requires a shared filesystem.
func Work(ctx context.Context, baseURL string, opts WorkerOpts) error {
	src, err := newHTTPSource(baseURL)
	if err != nil {
		return err
	}
	if opts.JournalDir == "" {
		dir, err := os.MkdirTemp("", "sweepd-worker-")
		if err != nil {
			return fmt.Errorf("service: worker scratch journal: %w", err)
		}
		defer os.RemoveAll(dir)
		opts.JournalDir = dir
	}
	workLoop(ctx, src, opts)
	return ctx.Err()
}
