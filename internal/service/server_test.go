package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"lowvcc/internal/circuit"
	"lowvcc/internal/sim"
)

// newTestDaemon stands up a full HTTP daemon over httptest and returns it
// with its base URL. Workers < 0 means external-workers-only.
func newTestDaemon(t *testing.T, opts ServerOpts) (*Server, string) {
	t.Helper()
	if opts.JournalDir == "" {
		opts.JournalDir = t.TempDir()
	}
	if opts.LeaseTTL == 0 {
		opts.LeaseTTL = time.Second
	}
	srv, warn, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	if warn != "" {
		t.Fatalf("fresh daemon warned: %s", warn)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Scheduler().Close()
	})
	return srv, ts.URL
}

// TestHTTPEndToEndExternalWorker: the full wire path — client submits over
// HTTP, an external worker (in-process here, but speaking only HTTP +
// shared journal dir) executes every cell, the client streams ndjson
// events to the terminal, and the journal matches a local run.
func TestHTTPEndToEndExternalWorker(t *testing.T) {
	spec := testSpec()
	ref := localReferenceJournal(t, spec)
	dir := t.TempDir()
	srv, base := newTestDaemon(t, ServerOpts{
		SchedulerOpts: SchedulerOpts{JournalDir: dir},
		Workers:       -1,
	})

	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- Work(wctx, base, WorkerOpts{Name: "ext-1", Poll: 10 * time.Millisecond})
	}()

	cl, err := NewClient(base)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	id, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	if st, err := cl.Status(ctx, id); err != nil || st.Total != cellCount(spec) {
		t.Fatalf("status = (%+v, %v), want %d total cells", st, err, cellCount(spec))
	}

	seen := make(map[int]int)
	term, err := cl.Events(ctx, id, func(ev CellEvent) error {
		if !ev.Terminal && ev.Err == "" {
			seen[ev.Index]++
			if ev.Worker != "ext-1" {
				t.Errorf("cell %d completed by %q, want ext-1", ev.Index, ev.Worker)
			}
			if ev.Result == nil {
				t.Errorf("cell %d event carries no result", ev.Index)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if term.State != "done" {
		t.Fatalf("sweep ended %q, want done", term.State)
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("cell %d completed %d times over HTTP", idx, n)
		}
	}
	if len(seen) != cellCount(spec) {
		t.Fatalf("saw %d cells, want %d", len(seen), cellCount(spec))
	}
	assertJournalsEqual(t, ref, dir, "http external worker")

	// Health endpoints: live and ready while serving...
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d, want 200", ep, resp.StatusCode)
		}
	}

	// ...and after a drain, live but not ready, refusing submissions.
	wcancel()
	<-workerDone
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after drain = %d, want 503", resp.StatusCode)
	}
	if _, err := cl.Submit(ctx, spec); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain = %v, want ErrDraining", err)
	}
}

// TestHTTPBackpressure429: an over-capacity submission comes back over the
// wire as *BusyError with the server's Retry-After.
func TestHTTPBackpressure429(t *testing.T) {
	spec := testSpec()
	_, base := newTestDaemon(t, ServerOpts{
		SchedulerOpts: SchedulerOpts{MaxQueuedCells: cellCount(spec)},
		Workers:       -1,
	})
	cl, err := NewClient(base)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := cl.Submit(ctx, spec); err != nil {
		t.Fatal(err)
	}
	_, err = cl.Submit(ctx, singlePointSpec())
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("over-capacity submit = %v, want *BusyError", err)
	}
	if busy.RetryAfter <= 0 {
		t.Fatalf("Retry-After = %v, want positive", busy.RetryAfter)
	}
}

// TestClientStreamLevels: the client's re-aggregation of daemon cell
// events emits the same levels, in the same order, with the same merged
// stats, as the local sim.StreamLevels path.
func TestClientStreamLevels(t *testing.T) {
	spec := testSpec()
	modes, err := spec.CircuitModes()
	if err != nil {
		t.Fatal(err)
	}

	type row struct {
		v   circuit.Millivolts
		pts map[circuit.Mode]*sim.Point
	}
	var local []row
	sim.SetWorkers(2)
	defer sim.SetWorkers(0)
	err = sim.StreamLevels(context.Background(), spec.Traces(), modes, spec.Levels(),
		func(v circuit.Millivolts, pts map[circuit.Mode]*sim.Point, fails map[circuit.Mode]*sim.CellError) error {
			if len(fails) != 0 {
				t.Fatalf("local sweep failed at %v: %v", v, fails)
			}
			local = append(local, row{v, pts})
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}

	_, base := newTestDaemon(t, ServerOpts{Workers: 2})
	cl, err := NewClient(base)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var remote []row
	err = cl.StreamLevels(ctx, spec,
		func(v circuit.Millivolts, pts map[circuit.Mode]*sim.Point, fails map[circuit.Mode]*sim.CellError) error {
			if len(fails) != 0 {
				t.Fatalf("daemon sweep failed at %v: %v", v, fails)
			}
			remote = append(remote, row{v, pts})
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}

	if len(remote) != len(local) {
		t.Fatalf("daemon path emitted %d levels, local %d", len(remote), len(local))
	}
	for i := range local {
		if remote[i].v != local[i].v {
			t.Fatalf("level %d: daemon emitted %v, local %v (order must match)", i, remote[i].v, local[i].v)
		}
		for _, m := range modes {
			lp, rp := local[i].pts[m], remote[i].pts[m]
			if lp == nil || rp == nil {
				t.Fatalf("level %v mode %v missing a point (local %v, remote %v)", local[i].v, m, lp, rp)
			}
			if rp.Agg.Run != lp.Agg.Run || rp.Agg.Time != lp.Agg.Time || rp.Agg.Plan != lp.Agg.Plan {
				t.Fatalf("level %v mode %v: daemon aggregate differs from local", local[i].v, m)
			}
		}
	}
}
