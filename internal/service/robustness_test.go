package service

// Robustness tests for the cross-machine fleet features: result
// push-down (no shared filesystem), corrupt-upload rejection, Complete
// idempotency, lease races against expiry, per-client admission quotas,
// deterministic network-fault chaos, and journal budgets under load.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"lowvcc/internal/journal"
	"lowvcc/internal/sim"
)

// fakeClock drives the scheduler's time hook deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Now()} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// setNow swaps the scheduler's time hook under its lock (every s.now()
// call site holds s.mu, so this is race-safe even with the janitor live).
func setNow(s *Scheduler, fn func() time.Time) {
	s.mu.Lock()
	s.now = fn
	s.mu.Unlock()
}

// pushDownWorkers starts n worker loops that journal into private
// directories and upload sealed bytes in Complete — the no-shared-FS
// arrangement — optionally through a chaos wrapper. Returns a stop func.
func pushDownWorkers(t *testing.T, s *Scheduler, n int, plan *sim.FaultPlan) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		var src CellSource = schedSource{s}
		if plan != nil {
			src = NewChaosSource(src, plan)
		}
		opts := WorkerOpts{
			Name:       fmt.Sprintf("remote/%d", i),
			Poll:       5 * time.Millisecond,
			JournalDir: t.TempDir(),
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			workLoop(ctx, src, opts)
		}()
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

// TestPushDownNoSharedFS: workers with private journal directories upload
// sealed entries; the daemon's journal ends byte-identical to a local run
// and every progress event still carries its result.
func TestPushDownNoSharedFS(t *testing.T) {
	spec := testSpec()
	ref := localReferenceJournal(t, spec)
	dir := t.TempDir()
	s := newTestScheduler(t, SchedulerOpts{JournalDir: dir, LeaseTTL: time.Second})

	stop := pushDownWorkers(t, s, 2, nil)
	defer stop()

	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitStatus(t, s, id, 60*time.Second)
	if st.State != "done" || st.Done != cellCount(spec) {
		t.Fatalf("push-down sweep = %+v, want done with all %d cells", st, cellCount(spec))
	}
	history, _, cancel, err := s.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	for _, ev := range history {
		if !ev.Terminal && ev.Err == "" && ev.Result == nil {
			t.Fatalf("cell %d event has no result: push-down lost the payload", ev.Index)
		}
	}
	assertJournalsEqual(t, ref, dir, "push-down")
	if n, err := s.Journal().Verify(); err != nil || n != cellCount(spec) {
		t.Fatalf("daemon journal verify = (%d, %v)", n, err)
	}
}

// TestCorruptUploadRejectedAndRetried: a byzantine worker's tampered
// upload is rejected by the content check, charged as an attempt, and the
// requeued cell completes correctly on an honest retry.
func TestCorruptUploadRejectedAndRetried(t *testing.T) {
	dir := t.TempDir()
	s := newTestScheduler(t, SchedulerOpts{JournalDir: dir})
	if _, err := s.Submit(singlePointSpec()); err != nil {
		t.Fatal(err)
	}

	lease, err := s.Acquire("evil")
	if err != nil || lease == nil {
		t.Fatalf("acquire: (%v, %v)", lease, err)
	}
	wdir := t.TempDir()
	if err := executeCell(context.Background(), lease, WorkerOpts{JournalDir: wdir}); err != nil {
		t.Fatal(err)
	}
	wjnl, err := journal.Open(wdir)
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := wjnl.GetRaw(lease.Cell.Key)
	if !ok {
		t.Fatal("worker journal has no sealed entry after execution")
	}
	tampered := append([]byte(nil), entry...)
	tampered[len(tampered)-2] ^= 0x40

	if err := s.Complete(lease.ID, "evil", "", tampered); err != nil {
		t.Fatalf("Complete with corrupt entry = %v (rejection is an attempt, not a protocol error)", err)
	}
	if _, ok := s.Journal().Get(lease.Cell.Key); ok {
		t.Fatal("corrupt upload was admitted into the daemon journal")
	}
	if rej := s.Journal().Stats().Rejected; rej != 1 {
		t.Fatalf("journal rejected = %d, want 1", rej)
	}

	// The cell requeued; an honest upload of the same execution's bytes
	// completes it.
	again, err := s.Acquire("honest")
	if err != nil || again == nil {
		t.Fatalf("cell not requeued after corrupt upload: (%v, %v)", again, err)
	}
	if again.Cell.Key != lease.Cell.Key {
		t.Fatalf("requeued a different cell")
	}
	if err := s.Complete(again.ID, "honest", "", entry); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Journal().Get(lease.Cell.Key); !ok {
		t.Fatal("verified upload did not land in the daemon journal")
	}
}

// TestDuplicateCompleteIsIdempotent: the lease ID is the Complete
// request's idempotency token — a retried Complete after a recorded one
// returns success and changes nothing, while a never-issued lease ID is
// still ErrLeaseLost.
func TestDuplicateCompleteIsIdempotent(t *testing.T) {
	s := newTestScheduler(t, SchedulerOpts{})
	id, err := s.Submit(singlePointSpec())
	if err != nil {
		t.Fatal(err)
	}
	lease, err := s.Acquire("dup")
	if err != nil || lease == nil {
		t.Fatalf("acquire: (%v, %v)", lease, err)
	}
	completeLease(t, s, lease)
	st1, _ := s.Status(id)

	for i := 0; i < 3; i++ {
		if err := s.Complete(lease.ID, "dup", "", nil); err != nil {
			t.Fatalf("retried Complete #%d = %v, want nil (idempotent)", i+1, err)
		}
	}
	st2, _ := s.Status(id)
	if st1.Done != st2.Done || st2.Done != 1 {
		t.Fatalf("done went %d -> %d under duplicate Completes, want stable 1", st1.Done, st2.Done)
	}
	if err := s.Complete("lease-999999", "ghost", "", nil); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("never-issued lease Complete = %v, want ErrLeaseLost", err)
	}
}

// TestCompleteWinsExpiredUnreclaimedLease: a Complete that lands after the
// TTL but before the janitor's pass counts — completion wins the race,
// which is safe because the result is content-verified either way.
func TestCompleteWinsExpiredUnreclaimedLease(t *testing.T) {
	clock := newFakeClock()
	// Hour-long TTL: the janitor's wall-clock ticks never fire inside the
	// test, so only the fake clock decides expiry.
	s := newTestScheduler(t, SchedulerOpts{LeaseTTL: time.Hour})
	setNow(s, clock.now)
	id, err := s.Submit(singlePointSpec())
	if err != nil {
		t.Fatal(err)
	}
	lease, err := s.Acquire("slow")
	if err != nil || lease == nil {
		t.Fatalf("acquire: (%v, %v)", lease, err)
	}
	if err := executeCell(context.Background(), lease, WorkerOpts{}); err != nil {
		t.Fatal(err)
	}
	clock.advance(2 * time.Hour) // lease is now expired but unreclaimed
	if err := s.Complete(lease.ID, "slow", "", nil); err != nil {
		t.Fatalf("Complete on expired-but-unreclaimed lease = %v, want nil", err)
	}
	st, _ := s.Status(id)
	if st.Done != 1 {
		t.Fatalf("done = %d, want 1", st.Done)
	}
}

// TestLateHeartbeatReclaimsInline: a heartbeat arriving after the TTL
// does not revive the lease — it reclaims it on the spot, requeues the
// cell, and the worker sees ErrLeaseLost.
func TestLateHeartbeatReclaimsInline(t *testing.T) {
	clock := newFakeClock()
	s := newTestScheduler(t, SchedulerOpts{LeaseTTL: time.Hour})
	setNow(s, clock.now)
	id, err := s.Submit(singlePointSpec())
	if err != nil {
		t.Fatal(err)
	}
	lease, err := s.Acquire("tardy")
	if err != nil || lease == nil {
		t.Fatalf("acquire: (%v, %v)", lease, err)
	}
	clock.advance(90 * time.Minute)
	if err := s.Heartbeat(lease.ID); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("late heartbeat = %v, want ErrLeaseLost", err)
	}
	// The inline reclaim requeued the cell immediately — no janitor pass
	// needed.
	again, err := s.Acquire("rescue")
	if err != nil || again == nil {
		t.Fatalf("cell not requeued after inline reclaim: (%v, %v)", again, err)
	}
	if again.Cell.Key != lease.Cell.Key {
		t.Fatal("reclaim handed out a different cell")
	}
	completeLease(t, s, again)
	st, _ := s.Status(id)
	if st.Done != 1 {
		t.Fatalf("done = %d, want exactly 1", st.Done)
	}
}

// TestSubmitQuotas: the per-client token bucket throttles one client
// without touching another, refills with time, and the per-sweep cell
// limit rejects oversized submissions outright.
func TestSubmitQuotas(t *testing.T) {
	clock := newFakeClock()
	s := newTestScheduler(t, SchedulerOpts{
		SubmitRate:  1, // 1 sweep/s, burst 2 (default)
		LeaseTTL:    time.Hour,
		MaxAttempts: 1,
	})
	setNow(s, clock.now)

	for i := 0; i < 2; i++ {
		if _, err := s.SubmitAs("alice", singlePointSpec()); err != nil {
			t.Fatalf("alice submit #%d inside burst: %v", i+1, err)
		}
	}
	_, err := s.SubmitAs("alice", singlePointSpec())
	var quota *QuotaError
	if !errors.As(err, &quota) {
		t.Fatalf("alice over-rate submit = %v, want *QuotaError", err)
	}
	if quota.Client != "alice" || quota.RetryAfter <= 0 {
		t.Fatalf("QuotaError = %+v, want alice with positive RetryAfter", quota)
	}

	// Another client and the anonymous local path are unaffected.
	if _, err := s.SubmitAs("bob", singlePointSpec()); err != nil {
		t.Fatalf("bob submit while alice throttled: %v", err)
	}
	if _, err := s.Submit(singlePointSpec()); err != nil {
		t.Fatalf("anonymous submit while alice throttled: %v", err)
	}

	// The bucket refills with time.
	clock.advance(1500 * time.Millisecond)
	if _, err := s.SubmitAs("alice", singlePointSpec()); err != nil {
		t.Fatalf("alice submit after refill: %v", err)
	}

	// Per-sweep cell limit.
	s2 := newTestScheduler(t, SchedulerOpts{MaxCellsPerSweep: 1})
	_, err = s2.SubmitAs("carol", testSpec())
	if !errors.As(err, &quota) {
		t.Fatalf("oversized sweep = %v, want *QuotaError", err)
	}
	if quota.RetryAfter <= 0 {
		t.Fatalf("oversized-sweep RetryAfter = %v, want positive", quota.RetryAfter)
	}
}

// TestHTTPQuota429PerClient: over the wire, a throttled client gets 429 +
// Retry-After while a differently identified client sails through —
// X-Client-ID scopes the bucket.
func TestHTTPQuota429PerClient(t *testing.T) {
	_, base := newTestDaemon(t, ServerOpts{
		SchedulerOpts: SchedulerOpts{SubmitRate: 0.0001, SubmitBurst: 1},
		Workers:       -1,
	})
	ctx := context.Background()

	alice, err := NewClient(base)
	if err != nil {
		t.Fatal(err)
	}
	alice.ClientID = "alice"
	if _, err := alice.Submit(ctx, singlePointSpec()); err != nil {
		t.Fatalf("alice first submit: %v", err)
	}
	_, err = alice.Submit(ctx, singlePointSpec())
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("alice throttled submit = %v, want 429/*BusyError", err)
	}
	if busy.RetryAfter <= 0 {
		t.Fatalf("Retry-After = %v, want positive", busy.RetryAfter)
	}

	bob, err := NewClient(base)
	if err != nil {
		t.Fatal(err)
	}
	bob.ClientID = "bob"
	if _, err := bob.Submit(ctx, singlePointSpec()); err != nil {
		t.Fatalf("bob submit while alice throttled: %v", err)
	}
}

// TestChaosDropDupAcquire: deterministic network faults — dropped Acquire
// responses (orphan leases), dropped Complete responses (forced retries
// into the dedup path) and duplicated Completes — never corrupt the sweep:
// it ends done, exactly once per cell, byte-identical to local.
func TestChaosDropDupAcquire(t *testing.T) {
	spec := testSpec()
	ref := localReferenceJournal(t, spec)
	dir := t.TempDir()
	// Short TTL so orphaned leases (dropped Acquire) requeue quickly.
	s := newTestScheduler(t, SchedulerOpts{JournalDir: dir, LeaseTTL: 300 * time.Millisecond})

	plan := sim.NewFaultPlan(
		sim.FaultRule{Op: "acquire", Kind: sim.FaultNetDrop, Times: 1},
		sim.FaultRule{Op: "complete", Kind: sim.FaultNetDrop, Times: 2},
		sim.FaultRule{Op: "complete", Kind: sim.FaultNetDup, Times: 2},
	)
	stop := pushDownWorkers(t, s, 2, plan)
	defer stop()

	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitStatus(t, s, id, 60*time.Second)
	if st.State != "done" || st.Done != cellCount(spec) {
		t.Fatalf("chaos sweep = %+v, want done with all %d cells", st, cellCount(spec))
	}
	history, _, cancel, err := s.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	perCell := make(map[int]int)
	for _, ev := range history {
		if !ev.Terminal && ev.Err == "" {
			perCell[ev.Index]++
		}
	}
	for idx, n := range perCell {
		if n != 1 {
			t.Fatalf("cell %d recorded %d times under chaos, want exactly once", idx, n)
		}
	}
	assertJournalsEqual(t, ref, dir, "chaos drop/dup")
}

// TestChaosSeverPartition: severing one cell's link mid-lease partitions
// that worker until it abandons the cell; the lease expires, the cell
// requeues and the sweep still ends done and byte-identical.
func TestChaosSeverPartition(t *testing.T) {
	spec := testSpec()
	ref := localReferenceJournal(t, spec)
	dir := t.TempDir()
	s := newTestScheduler(t, SchedulerOpts{JournalDir: dir, LeaseTTL: 200 * time.Millisecond})

	plan := sim.NewFaultPlan(
		sim.FaultRule{Op: "heartbeat", Kind: sim.FaultNetSever, Times: 1},
	)
	stop := pushDownWorkers(t, s, 2, plan)
	defer stop()

	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitStatus(t, s, id, 60*time.Second)
	if st.State != "done" || st.Done != cellCount(spec) {
		t.Fatalf("partitioned sweep = %+v, want done with all %d cells", st, cellCount(spec))
	}
	assertJournalsEqual(t, ref, dir, "chaos sever")
}

// TestJournalBudgetUnderLoad: a daemon whose journal budget cannot even
// hold one entry still completes every cell — leased cells are pinned
// through their completion, eviction only ever reclaims unpinned history,
// and what remains on disk stays verifiable.
func TestJournalBudgetUnderLoad(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	s := newTestScheduler(t, SchedulerOpts{
		JournalDir:    dir,
		LeaseTTL:      time.Second,
		JournalBudget: 1, // absurdly tight: every unpinned entry evicts
	})
	stop := pushDownWorkers(t, s, 2, nil)
	defer stop()

	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitStatus(t, s, id, 60*time.Second)
	if st.State != "done" || st.Done != cellCount(spec) {
		t.Fatalf("budgeted sweep = %+v, want done with all %d cells", st, cellCount(spec))
	}
	stats := s.Journal().Stats()
	if stats.Evictions == 0 {
		t.Fatal("no evictions under a 1-byte budget")
	}
	if _, err := s.Journal().Verify(); err != nil {
		t.Fatalf("surviving journal entries failed verification: %v", err)
	}
}
