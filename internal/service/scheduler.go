package service

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"lowvcc/internal/core"
	"lowvcc/internal/journal"
	"lowvcc/internal/sim"
)

// SchedulerOpts configures a Scheduler. The zero value is usable: defaults
// fill in at New.
type SchedulerOpts struct {
	// JournalDir roots the shared result journal (required). The scheduler
	// claims the directory's exclusive-writer LOCK for the daemon's
	// lifetime.
	JournalDir string

	// LeaseTTL bounds how long a worker may hold a cell without
	// heartbeating before the cell is reclaimed (default 30s). It is the
	// worst-case latency a crashed worker adds to its cells.
	LeaseTTL time.Duration

	// MaxQueuedCells bounds pending+leased cells across all sweeps
	// (default 4096). Submissions that would exceed it fail with
	// BusyError — backpressure instead of unbounded memory.
	MaxQueuedCells int

	// MaxAttempts bounds executions per cell, counting lease reclamations
	// (default 5). A cell that exhausts it is declared failed so a poison
	// cell cannot wedge the sweep.
	MaxAttempts int

	// SweepDeadline, when positive, bounds each sweep's wall clock; the
	// janitor fails overdue sweeps' remaining cells. 0 = no deadline.
	SweepDeadline time.Duration

	// JournalSync selects fsync-on-Put for the daemon's journal handle and
	// for workers (propagated through leases).
	JournalSync bool

	// JournalBudget, when positive, caps the daemon journal's disk usage
	// in bytes: least-recently-used entries are evicted to stay under it.
	// Cells with live leases are pinned and never evicted. 0 = unbounded.
	JournalBudget int64

	// SubmitRate, when positive, throttles SubmitAs per client to this
	// many sweeps per second (token bucket, burst SubmitBurst). Clients
	// over their rate get QuotaError. 0 = no rate limit.
	SubmitRate float64

	// SubmitBurst is the token bucket's capacity (default 2 when
	// SubmitRate is set): how many sweeps a quiet client may submit
	// back-to-back before the rate applies.
	SubmitBurst int

	// MaxCellsPerSweep, when positive, rejects any single sweep that
	// expands to more cells than this with QuotaError — one tenant cannot
	// monopolize the queue with a single giant submission. 0 = unlimited.
	MaxCellsPerSweep int
}

func (o SchedulerOpts) withDefaults() SchedulerOpts {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.MaxQueuedCells <= 0 {
		o.MaxQueuedCells = 4096
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.SubmitBurst <= 0 {
		o.SubmitBurst = 2
	}
	return o
}

// cell lifecycle within a sweepJob.
const (
	cellPending = iota
	cellLeased
	cellDone
	cellFailed
)

type sweepJob struct {
	id       string
	spec     sim.SweepSpec
	cells    []Cell
	state    []int
	attempts []int
	started  time.Time

	done, failed, replayed int
	terminalState          string // "" while running

	events  []CellEvent
	subs    map[int]chan CellEvent
	nextSub int
}

func (job *sweepJob) total() int     { return len(job.cells) }
func (job *sweepJob) finished() bool { return job.done+job.failed == job.total() }

type leaseState struct {
	id     string
	sweep  string
	index  int
	worker string
	expiry time.Time
}

// tokenBucket is one client's submission-rate state (SubmitRate/SubmitBurst).
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// completedRing bounds the Complete-dedup memory: how many recently
// completed lease IDs the scheduler remembers to absorb retried Completes.
// Far larger than any plausible retry window at normal lease churn.
const completedRing = 4096

// Scheduler owns the sweep queue and the lease table. It is safe for
// concurrent use; all methods may be called from HTTP handlers and worker
// goroutines simultaneously. The scheduler itself never simulates — it
// only hands out leases and reads completed results back from the journal.
type Scheduler struct {
	opts SchedulerOpts
	jnl  *journal.Journal
	lock *journal.Lock
	now  func() time.Time // test hook

	mu         sync.Mutex
	idle       *sync.Cond // broadcast when leases/completing drain or state changes
	sweeps     map[string]*sweepJob
	order      []string // submission order; scheduling scans it FIFO
	leases     map[string]*leaseState
	completing int // Completes between lease removal and result recording
	queued     int // pending + leased cells across all sweeps
	draining   bool
	closed     bool
	seq        int

	// Complete-dedup: lease IDs whose completion was already recorded.
	// A retried Complete (dropped response, duplicated request) finds its
	// lease gone but its ID here, and returns success instead of
	// ErrLeaseLost — the lease ID is the request's idempotency token.
	completed      map[string]struct{}
	completedOrder []string // FIFO eviction ring for completed

	// Per-client submission token buckets (SubmitRate).
	buckets map[string]*tokenBucket

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// NewScheduler claims the journal directory's exclusive-writer lock and
// starts the lease janitor. The returned warning is non-empty when a stale
// lock from a dead daemon was reclaimed; surface it to the operator.
func NewScheduler(opts SchedulerOpts) (*Scheduler, string, error) {
	opts = opts.withDefaults()
	if opts.JournalDir == "" {
		return nil, "", fmt.Errorf("service: scheduler requires a journal directory")
	}
	lock, warn, err := journal.AcquireLock(opts.JournalDir)
	if err != nil {
		return nil, "", err
	}
	jnl, err := journal.Open(opts.JournalDir)
	if err != nil {
		lock.Release()
		return nil, warn, err
	}
	jnl.SetSync(opts.JournalSync)
	if opts.JournalBudget > 0 {
		jnl.SetBudget(opts.JournalBudget)
	}
	s := &Scheduler{
		opts:        opts,
		jnl:         jnl,
		lock:        lock,
		now:         time.Now,
		sweeps:      make(map[string]*sweepJob),
		leases:      make(map[string]*leaseState),
		completed:   make(map[string]struct{}),
		buckets:     make(map[string]*tokenBucket),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	s.idle = sync.NewCond(&s.mu)
	go s.janitor()
	return s, warn, nil
}

// Journal exposes the scheduler's journal handle (status endpoints, drain
// verification).
func (s *Scheduler) Journal() *journal.Journal { return s.jnl }

// expandSpec builds the sweep's cell grid in the canonical (mode, level,
// trace) order and computes every cell's journal key. Pure function of the
// spec — called outside the scheduler lock (trace materialization and
// config hashing are the expensive parts).
func expandSpec(id string, spec sim.SweepSpec) ([]Cell, error) {
	modes, err := spec.CircuitModes()
	if err != nil {
		return nil, err
	}
	traces := spec.Traces()
	runner := spec.NewRunner()
	var cells []Cell
	for mi, mode := range modes {
		for _, v := range spec.Levels() {
			cfg := spec.PointConfig(v, mode)
			label := sim.SweepLabel(v, mode)
			for ti, tr := range traces {
				key, err := runner.CellKey(cfg, tr)
				if err != nil {
					return nil, fmt.Errorf("service: keying %s %s: %w", label, tr.Name, err)
				}
				cells = append(cells, Cell{
					Sweep:     id,
					Index:     len(cells),
					Label:     label,
					Mode:      spec.Modes[mi],
					VccMV:     int(v),
					TraceIdx:  ti,
					TraceName: tr.Name,
					Key:       key,
					Spec:      spec,
				})
			}
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("service: spec expands to zero cells")
	}
	return cells, nil
}

// Submit validates and enqueues a sweep, returning its ID. Cells whose
// results are already journaled complete instantly as replays — a
// restarted campaign only pays for the missing cells. Fails fast with
// BusyError when the queue cannot absorb the new cells and ErrDraining
// during shutdown. Submit bypasses per-client admission control; remote
// submissions go through SubmitAs.
func (s *Scheduler) Submit(spec sim.SweepSpec) (string, error) {
	return s.submit("", spec)
}

// SubmitAs is Submit under per-client admission control: the client's
// token bucket (SubmitRate/SubmitBurst) and the per-sweep cell limit
// (MaxCellsPerSweep) apply, rejecting with QuotaError. The client ID is
// whatever the transport trusts — the HTTP layer uses the X-Client-ID
// header, falling back to the peer address.
func (s *Scheduler) SubmitAs(client string, spec sim.SweepSpec) (string, error) {
	return s.submit(client, spec)
}

func (s *Scheduler) submit(client string, spec sim.SweepSpec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}

	// Cheap pre-checks so a doomed submission skips the expensive expansion.
	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		return "", ErrDraining
	}
	if client != "" && s.opts.SubmitRate > 0 {
		if !s.takeTokenLocked(client) {
			s.mu.Unlock()
			return "", &QuotaError{
				Client:     client,
				Reason:     fmt.Sprintf("submission rate %.3g/s exceeded", s.opts.SubmitRate),
				RetryAfter: time.Duration(float64(time.Second) / s.opts.SubmitRate),
			}
		}
	}
	s.seq++
	id := fmt.Sprintf("sweep-%d", s.seq)
	s.mu.Unlock()

	cells, err := expandSpec(id, spec)
	if err != nil {
		return "", err
	}
	if max := s.opts.MaxCellsPerSweep; max > 0 && len(cells) > max {
		return "", &QuotaError{
			Client:     client,
			Reason:     fmt.Sprintf("sweep expands to %d cells, per-sweep limit is %d", len(cells), max),
			RetryAfter: s.retryAfterLocked(), // reads only immutable opts
		}
	}

	// Replay scan outside the lock: journal reads are file IO. Entries
	// found here are trusted — Get already ran the integrity check — and
	// their cells complete at registration without ever being queued.
	type replay struct {
		index int
		res   *core.Result
	}
	var replays []replay
	for _, c := range cells {
		if ent, ok := s.jnl.Get(c.Key); ok {
			replays = append(replays, replay{c.Index, ent.Result})
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return "", ErrDraining
	}
	fresh := len(cells) - len(replays)
	if s.queued+fresh > s.opts.MaxQueuedCells {
		return "", &BusyError{
			RetryAfter: s.retryAfterLocked(),
			Queued:     s.queued,
			Limit:      s.opts.MaxQueuedCells,
		}
	}

	job := &sweepJob{
		id:       id,
		spec:     spec,
		cells:    cells,
		state:    make([]int, len(cells)),
		attempts: make([]int, len(cells)),
		started:  s.now(),
		subs:     make(map[int]chan CellEvent),
	}
	s.sweeps[id] = job
	s.order = append(s.order, id)
	s.queued += fresh

	for _, r := range replays {
		job.state[r.index] = cellDone
		job.done++
		job.replayed++
		s.emitLocked(job, s.cellEvent(job, r.index, r.res, true, "journal", ""))
	}
	s.maybeFinishLocked(job)
	return id, nil
}

// takeTokenLocked draws one submission token from client's bucket,
// refilling at SubmitRate up to SubmitBurst. Buckets for clients idle
// long enough to refill fully are pruned when the map grows large.
func (s *Scheduler) takeTokenLocked(client string) bool {
	now := s.now()
	b, ok := s.buckets[client]
	if !ok {
		if len(s.buckets) > 8192 {
			full := float64(s.opts.SubmitBurst)
			for id, old := range s.buckets {
				if old.tokens+now.Sub(old.last).Seconds()*s.opts.SubmitRate >= full {
					delete(s.buckets, id)
				}
			}
		}
		b = &tokenBucket{tokens: float64(s.opts.SubmitBurst), last: now}
		s.buckets[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * s.opts.SubmitRate
	if full := float64(s.opts.SubmitBurst); b.tokens > full {
		b.tokens = full
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// retryAfterLocked estimates when queue space should free up: roughly one
// lease TTL — by then either progress was made or reclamation kicked in.
func (s *Scheduler) retryAfterLocked() time.Duration {
	d := s.opts.LeaseTTL
	if d > 10*time.Second {
		d = 10 * time.Second
	}
	if d < time.Second {
		d = time.Second
	}
	return d
}

// Acquire leases the next pending cell to worker, FIFO across sweeps and
// index-ordered within one. Returns (nil, nil) when no work is available
// (idle or draining) — polling workers sleep and retry.
func (s *Scheduler) Acquire(worker string) (*Lease, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return nil, nil
	}
	for _, id := range s.order {
		job := s.sweeps[id]
		if job.terminalState != "" {
			continue
		}
		for i, st := range job.state {
			if st != cellPending {
				continue
			}
			job.state[i] = cellLeased
			s.seq++
			ls := &leaseState{
				id:     fmt.Sprintf("lease-%d", s.seq),
				sweep:  id,
				index:  i,
				worker: worker,
				expiry: s.now().Add(s.opts.LeaseTTL),
			}
			s.leases[ls.id] = ls
			// Pin the cell's journal entry for the lease's lifetime so
			// budget eviction can never race an in-flight completion's
			// read-back. Unpinned wherever the lease is removed.
			s.jnl.Pin(job.cells[i].Key)
			return &Lease{
				ID:          ls.id,
				Cell:        job.cells[i],
				JournalDir:  s.opts.JournalDir,
				JournalSync: s.opts.JournalSync,
				TTLMS:       s.opts.LeaseTTL.Milliseconds(),
			}, nil
		}
	}
	return nil, nil
}

// Heartbeat extends a live lease by one TTL. ErrLeaseLost means the lease
// expired: the worker must abandon the cell. A heartbeat that arrives
// after the TTL but before the janitor's next pass does not revive the
// lease — it reclaims it inline, so the expiry the worker was promised is
// exact regardless of janitor cadence.
func (s *Scheduler) Heartbeat(leaseID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ls, ok := s.leases[leaseID]
	if !ok {
		return ErrLeaseLost
	}
	if s.now().After(ls.expiry) {
		s.reclaimLocked(ls, fmt.Sprintf("lease %s expired (worker %s heartbeat arrived late)", ls.id, ls.worker))
		s.idle.Broadcast()
		return ErrLeaseLost
	}
	ls.expiry = s.now().Add(s.opts.LeaseTTL)
	return nil
}

// reclaimLocked removes an expired lease and requeues its cell (charging
// one attempt). Shared by the janitor and the late-heartbeat path.
func (s *Scheduler) reclaimLocked(ls *leaseState, reason string) {
	delete(s.leases, ls.id)
	job := s.sweeps[ls.sweep]
	s.jnl.Unpin(job.cells[ls.index].Key)
	if job.terminalState != "" {
		return
	}
	s.failAttemptLocked(job, ls.index, reason)
}

// Complete records a cell's outcome. On success the result enters the
// daemon's journal one of two ways: an in-process worker already wrote it
// there (entry nil — read it back through the integrity check), an
// external worker uploads the sealed entry bytes (entry non-nil — verify
// and admit via journal.Admit). Either way the scheduler believes only
// what the journal's content check vouches for; results never count on a
// worker's say-so, so a corrupt upload is charged as a failed attempt and
// the cell requeues.
//
// Complete is idempotent per lease: the lease ID doubles as the request's
// idempotency token, and a retried Complete whose first try was already
// recorded (dropped response, duplicated request) returns nil without
// changing anything. ErrLeaseLost means the lease was reclaimed before
// any completion arrived — only the current leaseholder counts, so
// reclamation can never double-count a cell.
func (s *Scheduler) Complete(leaseID, worker, errMsg string, entry []byte) error {
	s.mu.Lock()
	ls, ok := s.leases[leaseID]
	if !ok {
		_, dup := s.completed[leaseID]
		s.mu.Unlock()
		if dup {
			return nil
		}
		return ErrLeaseLost
	}
	delete(s.leases, leaseID)
	s.recordCompletedLocked(leaseID)
	job := s.sweeps[ls.sweep]
	cell := job.cells[ls.index]
	// completing keeps Drain honest while the journal IO below runs
	// outside the lock: the lease is gone but the cell isn't recorded yet.
	s.completing++
	s.mu.Unlock()

	var res *core.Result
	readErr := ""
	if errMsg == "" {
		if len(entry) > 0 {
			// Push-down: verify the uploaded bytes (sha256, length, key)
			// before they touch the journal.
			if ent, err := s.jnl.Admit(cell.Key, entry); err == nil {
				res = ent.Result
			} else {
				readErr = fmt.Sprintf("worker %s uploaded a corrupt entry for %s: %v", worker, cell.Key, err)
			}
		} else if ent, ok := s.jnl.Get(cell.Key); ok {
			res = ent.Result
		} else {
			readErr = fmt.Sprintf("worker %s reported success but journal has no entry %s", worker, cell.Key)
		}
	}

	s.mu.Lock()
	defer func() {
		s.jnl.Unpin(cell.Key)
		s.completing--
		s.idle.Broadcast()
		s.mu.Unlock()
	}()
	if job.terminalState != "" {
		// The sweep ended while we were off-lock (deadline, drain). The
		// journaled result remains valid for future replays; nothing to
		// record.
		return nil
	}
	switch {
	case errMsg != "":
		s.failAttemptLocked(job, ls.index, fmt.Sprintf("worker %s: %s", worker, errMsg))
	case readErr != "":
		s.failAttemptLocked(job, ls.index, readErr)
	default:
		job.state[ls.index] = cellDone
		job.done++
		s.queued--
		s.emitLocked(job, s.cellEvent(job, ls.index, res, false, worker, ""))
		s.maybeFinishLocked(job)
	}
	return nil
}

// recordCompletedLocked remembers a completed lease ID for Complete
// dedup, evicting the oldest remembered ID past completedRing.
func (s *Scheduler) recordCompletedLocked(leaseID string) {
	s.completed[leaseID] = struct{}{}
	s.completedOrder = append(s.completedOrder, leaseID)
	if len(s.completedOrder) > completedRing {
		delete(s.completed, s.completedOrder[0])
		s.completedOrder = s.completedOrder[1:]
	}
}

// failAttemptLocked charges one failed attempt to a cell: requeue while
// attempts remain, otherwise declare the cell failed and emit the failure.
func (s *Scheduler) failAttemptLocked(job *sweepJob, index int, reason string) {
	job.attempts[index]++
	if job.attempts[index] >= s.opts.MaxAttempts {
		job.state[index] = cellFailed
		job.failed++
		s.queued--
		s.emitLocked(job, s.cellEvent(job, index, nil, false, "",
			fmt.Sprintf("%s (attempt %d/%d, giving up)", reason, job.attempts[index], s.opts.MaxAttempts)))
		s.maybeFinishLocked(job)
		return
	}
	job.state[index] = cellPending
}

// cellEvent builds the progress record for one recorded cell outcome.
func (s *Scheduler) cellEvent(job *sweepJob, index int, res *core.Result, replayed bool, worker, errMsg string) CellEvent {
	c := job.cells[index]
	return CellEvent{
		Sweep:     job.id,
		Index:     index,
		Label:     c.Label,
		Mode:      c.Mode,
		VccMV:     c.VccMV,
		TraceIdx:  c.TraceIdx,
		TraceName: c.TraceName,
		Replayed:  replayed,
		Worker:    worker,
		Result:    res,
		Err:       errMsg,
		Done:      job.done,
		Failed:    job.failed,
		Total:     job.total(),
	}
}

// maybeFinishLocked emits the terminal event and closes subscriptions once
// every cell is recorded.
func (s *Scheduler) maybeFinishLocked(job *sweepJob) {
	if job.terminalState != "" || !job.finished() {
		return
	}
	state := "done"
	if job.failed > 0 {
		state = "failed"
	}
	s.terminateLocked(job, state)
}

// terminateLocked moves the sweep to a terminal state: cells still pending
// or leased are abandoned (their queue slots released), the terminal event
// is emitted, and every subscriber channel closes.
func (s *Scheduler) terminateLocked(job *sweepJob, state string) {
	for i, st := range job.state {
		if st == cellPending || st == cellLeased {
			job.state[i] = cellFailed
			s.queued--
		}
	}
	job.terminalState = state
	s.emitLocked(job, CellEvent{
		Sweep:    job.id,
		Index:    -1,
		Done:     job.done,
		Failed:   job.total() - job.done,
		Total:    job.total(),
		Terminal: true,
		State:    state,
	})
	for id, ch := range job.subs {
		close(ch)
		delete(job.subs, id)
	}
	s.idle.Broadcast()
}

// emitLocked appends the event to the sweep's history and fans it out
// without ever blocking: a subscriber whose channel is full is
// disconnected (channel closed) instead of stalling the scheduler — the
// streaming handler detects the close and resubscribes from history.
func (s *Scheduler) emitLocked(job *sweepJob, ev CellEvent) {
	job.events = append(job.events, ev)
	for id, ch := range job.subs {
		select {
		case ch <- ev:
		default:
			close(ch)
			delete(job.subs, id)
		}
	}
}

// Subscribe returns the sweep's event history so far plus a live channel
// for what follows. The channel closes at the terminal event or when the
// subscriber falls behind (subscriberBuf undelivered events); after a lag
// close, resubscribe and resume from the returned history. cancel is
// idempotent and must be called to release the subscription.
func (s *Scheduler) Subscribe(sweepID string) ([]CellEvent, <-chan CellEvent, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.sweeps[sweepID]
	if !ok {
		return nil, nil, nil, ErrUnknownSweep
	}
	history := append([]CellEvent(nil), job.events...)
	ch := make(chan CellEvent, subscriberBuf)
	if job.terminalState != "" {
		// Already over: the full story is in history.
		close(ch)
		return history, ch, func() {}, nil
	}
	id := job.nextSub
	job.nextSub++
	job.subs[id] = ch
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if c, ok := job.subs[id]; ok {
			close(c)
			delete(job.subs, id)
		}
	}
	return history, ch, cancel, nil
}

// subscriberBuf is each subscription channel's buffer: enough to ride out
// a slow flush, small enough that an abandoned connection is detected
// quickly.
const subscriberBuf = 256

// Status summarizes one sweep.
func (s *Scheduler) Status(sweepID string) (SweepStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.sweeps[sweepID]
	if !ok {
		return SweepStatus{}, ErrUnknownSweep
	}
	state := job.terminalState
	if state == "" {
		state = "running"
	}
	return SweepStatus{
		ID:       job.id,
		State:    state,
		Done:     job.done,
		Failed:   job.failed,
		Replayed: job.replayed,
		Total:    job.total(),
	}, nil
}

// Queued reports pending+leased cells (readiness endpoints, tests).
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// Draining reports whether a drain is in progress or finished.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// janitor reclaims expired leases and enforces sweep deadlines. It runs at
// a quarter of the lease TTL so a dead worker's cells requeue at most
// 1.25 TTL after its last heartbeat.
func (s *Scheduler) janitor() {
	defer close(s.janitorDone)
	interval := s.opts.LeaseTTL / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-tick.C:
			s.sweepExpired()
		}
	}
}

// sweepExpired performs one janitor pass.
func (s *Scheduler) sweepExpired() {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()

	// Deterministic reclamation order for the log and tests.
	var expired []string
	for id, ls := range s.leases {
		if now.After(ls.expiry) {
			expired = append(expired, id)
		}
	}
	sort.Strings(expired)
	for _, id := range expired {
		ls := s.leases[id]
		s.reclaimLocked(ls,
			fmt.Sprintf("lease %s expired (worker %s stopped heartbeating)", ls.id, ls.worker))
	}
	if len(expired) > 0 {
		s.idle.Broadcast()
	}

	if s.opts.SweepDeadline > 0 {
		for _, id := range s.order {
			job := s.sweeps[id]
			if job.terminalState == "" && now.Sub(job.started) > s.opts.SweepDeadline {
				s.terminateLocked(job, "failed")
			}
		}
	}
}

// Drain gracefully winds the scheduler down: new submissions and lease
// acquisitions stop immediately, in-flight leases run to completion (or
// expiry), and sweeps still unfinished afterwards end "interrupted" — their
// journaled cells replay on resubmission to the next daemon. Returns
// ctx.Err() if the context expires first (in-flight leases are then
// abandoned where they stand; the journal stays consistent regardless).
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	// Wake the waiter when the context dies: cond waits can't select.
	watchdog := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			s.idle.Broadcast()
		case <-watchdog:
		}
	}()
	defer close(watchdog)

	s.mu.Lock()
	for (len(s.leases) > 0 || s.completing > 0) && ctx.Err() == nil {
		s.idle.Wait()
	}
	err := ctx.Err()
	for _, id := range s.order {
		if job := s.sweeps[id]; job.terminalState == "" {
			s.terminateLocked(job, "interrupted")
		}
	}
	s.mu.Unlock()
	return err
}

// Close stops the janitor, ends any still-running sweeps as interrupted,
// and releases the journal lock. Idempotent.
func (s *Scheduler) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining = true
	for _, id := range s.order {
		if job := s.sweeps[id]; job.terminalState == "" {
			s.terminateLocked(job, "interrupted")
		}
	}
	s.mu.Unlock()

	close(s.janitorStop)
	<-s.janitorDone
	return s.lock.Release()
}
