// Package dvfs implements the voltage/frequency governance layer the paper
// motivates (Section 1: mobile processors "make an aggressive use of DVFS
// techniques to adapt their Vcc and frequency to the current workload and
// battery state"). IRAW avoidance is what makes the low-Vcc levels usable;
// this package decides which level to run.
//
// Two pieces:
//
//   - Planner: offline selection over measured operating points (pick the
//     minimum-EDP level, the fastest level within an energy budget, or the
//     most frugal level within a deadline);
//   - Governor: a reactive controller that walks the voltage ladder from
//     utilization feedback with hysteresis, the classic interactive-device
//     policy.
package dvfs

import (
	"fmt"
	"sort"

	"lowvcc/internal/circuit"
)

// PointMetrics is one measured operating point: the suite's execution time
// and energy at a voltage level (from the sim package's sweeps or the
// user's own runs).
type PointMetrics struct {
	Vcc    circuit.Millivolts
	Mode   circuit.Mode
	Time   float64 // execution time for the reference work, any unit
	Energy float64 // energy for the reference work, same unit base
}

// EDP returns the point's energy-delay product.
func (p PointMetrics) EDP() float64 { return p.Time * p.Energy }

// Objective selects what the planner optimizes.
type Objective int

const (
	// MinEDP picks the lowest energy-delay product (the paper's headline
	// metric, Figure 12).
	MinEDP Objective = iota
	// MinEnergyUnderDeadline picks the most frugal point whose time meets
	// the deadline.
	MinEnergyUnderDeadline
	// MinTimeUnderBudget picks the fastest point whose energy fits the
	// budget.
	MinTimeUnderBudget
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case MinEDP:
		return "min-edp"
	case MinEnergyUnderDeadline:
		return "min-energy-under-deadline"
	case MinTimeUnderBudget:
		return "min-time-under-budget"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Planner selects operating points from a measured table.
type Planner struct {
	points []PointMetrics
}

// NewPlanner returns a planner over the given measurements. It rejects an
// empty table and sorts points by descending voltage for stable iteration.
func NewPlanner(points []PointMetrics) (*Planner, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("dvfs: no operating points")
	}
	ps := make([]PointMetrics, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Vcc > ps[j].Vcc })
	for _, p := range ps {
		if p.Time <= 0 || p.Energy <= 0 {
			return nil, fmt.Errorf("dvfs: point %v has non-positive time/energy", p.Vcc)
		}
	}
	return &Planner{points: ps}, nil
}

// Points returns the planner's table (descending voltage).
func (pl *Planner) Points() []PointMetrics {
	out := make([]PointMetrics, len(pl.points))
	copy(out, pl.points)
	return out
}

// Pick returns the best point for the objective. `bound` is the deadline
// (MinEnergyUnderDeadline) or the energy budget (MinTimeUnderBudget);
// ignored for MinEDP. ok is false when no point satisfies the bound.
func (pl *Planner) Pick(obj Objective, bound float64) (PointMetrics, bool) {
	var best PointMetrics
	found := false
	better := func(a, b PointMetrics) bool {
		switch obj {
		case MinEDP:
			return a.EDP() < b.EDP()
		case MinEnergyUnderDeadline:
			return a.Energy < b.Energy
		case MinTimeUnderBudget:
			return a.Time < b.Time
		default:
			panic(fmt.Sprintf("dvfs: unknown objective %v", obj))
		}
	}
	feasible := func(p PointMetrics) bool {
		switch obj {
		case MinEnergyUnderDeadline:
			return p.Time <= bound
		case MinTimeUnderBudget:
			return p.Energy <= bound
		default:
			return true
		}
	}
	for _, p := range pl.points {
		if !feasible(p) {
			continue
		}
		if !found || better(p, best) {
			best = p
			found = true
		}
	}
	return best, found
}

// Governor is a reactive ladder controller: it watches utilization (the
// fraction of cycles doing useful work) and steps the voltage up when the
// core saturates, down when it idles, with hysteresis so it does not
// oscillate. Levels are whatever ladder the platform exposes (usually
// circuit.Levels()).
type Governor struct {
	levels []circuit.Millivolts
	idx    int

	// UpThreshold / DownThreshold bound the comfort band.
	UpThreshold   float64
	DownThreshold float64
	// Patience is how many consecutive out-of-band samples trigger a step.
	Patience int

	strikesUp, strikesDown int
	transitions            int
}

// NewGovernor returns a governor over the ladder, starting at the highest
// level (index 0 of a descending ladder).
func NewGovernor(levels []circuit.Millivolts) (*Governor, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("dvfs: empty ladder")
	}
	ls := make([]circuit.Millivolts, len(levels))
	copy(ls, levels)
	sort.Slice(ls, func(i, j int) bool { return ls[i] > ls[j] })
	return &Governor{
		levels:        ls,
		UpThreshold:   0.90,
		DownThreshold: 0.55,
		Patience:      2,
	}, nil
}

// Level returns the current voltage level.
func (g *Governor) Level() circuit.Millivolts { return g.levels[g.idx] }

// Transitions returns how many level changes the governor has made.
func (g *Governor) Transitions() int { return g.transitions }

// Observe feeds one utilization sample in [0, 1] and returns the level to
// use next (possibly unchanged).
func (g *Governor) Observe(utilization float64) circuit.Millivolts {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	switch {
	case utilization >= g.UpThreshold:
		g.strikesUp++
		g.strikesDown = 0
	case utilization <= g.DownThreshold:
		g.strikesDown++
		g.strikesUp = 0
	default:
		g.strikesUp, g.strikesDown = 0, 0
	}
	if g.strikesUp >= g.Patience && g.idx > 0 {
		g.idx--
		g.transitions++
		g.strikesUp = 0
	}
	if g.strikesDown >= g.Patience && g.idx < len(g.levels)-1 {
		g.idx++
		g.transitions++
		g.strikesDown = 0
	}
	return g.levels[g.idx]
}

// Reset returns the governor to the highest level and clears its state.
func (g *Governor) Reset() {
	g.idx = 0
	g.strikesUp, g.strikesDown = 0, 0
	g.transitions = 0
}
