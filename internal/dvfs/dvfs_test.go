package dvfs

import (
	"testing"

	"lowvcc/internal/circuit"
)

// A synthetic table with the paper's shape: lower voltage = slower but
// (down to a point) lower energy; IRAW's EDP optimum sits at low Vcc.
func table() []PointMetrics {
	return []PointMetrics{
		{Vcc: 700, Mode: circuit.ModeIRAW, Time: 1.00, Energy: 1.00},
		{Vcc: 600, Mode: circuit.ModeIRAW, Time: 1.20, Energy: 0.74},
		{Vcc: 500, Mode: circuit.ModeIRAW, Time: 1.70, Energy: 0.52},
		{Vcc: 450, Mode: circuit.ModeIRAW, Time: 2.20, Energy: 0.46},
		{Vcc: 400, Mode: circuit.ModeIRAW, Time: 3.10, Energy: 0.45},
	}
}

func TestPlannerMinEDP(t *testing.T) {
	pl, err := NewPlanner(table())
	if err != nil {
		t.Fatal(err)
	}
	best, ok := pl.Pick(MinEDP, 0)
	if !ok {
		t.Fatal("no point")
	}
	if best.Vcc != 500 { // 1.70*0.52 = 0.884 is the minimum of the table
		t.Fatalf("MinEDP picked %v", best.Vcc)
	}
}

func TestPlannerDeadline(t *testing.T) {
	pl, _ := NewPlanner(table())
	best, ok := pl.Pick(MinEnergyUnderDeadline, 2.0)
	if !ok || best.Vcc != 500 {
		t.Fatalf("deadline pick = %v ok=%v, want 500mV", best.Vcc, ok)
	}
	// A deadline no point meets.
	if _, ok := pl.Pick(MinEnergyUnderDeadline, 0.5); ok {
		t.Fatal("infeasible deadline satisfied")
	}
}

func TestPlannerBudget(t *testing.T) {
	pl, _ := NewPlanner(table())
	best, ok := pl.Pick(MinTimeUnderBudget, 0.55)
	if !ok || best.Vcc != 500 {
		t.Fatalf("budget pick = %v ok=%v, want 500mV (fastest under 0.55)", best.Vcc, ok)
	}
	best, ok = pl.Pick(MinTimeUnderBudget, 10)
	if !ok || best.Vcc != 700 {
		t.Fatalf("loose budget pick = %v, want fastest (700mV)", best.Vcc)
	}
}

func TestPlannerValidation(t *testing.T) {
	if _, err := NewPlanner(nil); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := NewPlanner([]PointMetrics{{Vcc: 500, Time: 0, Energy: 1}}); err == nil {
		t.Error("zero time accepted")
	}
}

func TestObjectiveStrings(t *testing.T) {
	if MinEDP.String() != "min-edp" || Objective(9).String() != "Objective(9)" {
		t.Fatal("objective strings wrong")
	}
}

func TestGovernorLadder(t *testing.T) {
	g, err := NewGovernor(circuit.Levels())
	if err != nil {
		t.Fatal(err)
	}
	if g.Level() != 700 {
		t.Fatalf("start level %v", g.Level())
	}
	// Sustained idleness walks the ladder down.
	for i := 0; i < 10; i++ {
		g.Observe(0.2)
	}
	if g.Level() >= 700 {
		t.Fatalf("governor did not step down: %v", g.Level())
	}
	down := g.Level()
	// Saturation walks it back up.
	for i := 0; i < 10; i++ {
		g.Observe(1.0)
	}
	if g.Level() <= down {
		t.Fatalf("governor did not step up: %v", g.Level())
	}
	if g.Transitions() == 0 {
		t.Fatal("transitions not counted")
	}
}

func TestGovernorHysteresis(t *testing.T) {
	g, _ := NewGovernor(circuit.Levels())
	// In-band samples never move the level.
	for i := 0; i < 50; i++ {
		g.Observe(0.7)
	}
	if g.Transitions() != 0 {
		t.Fatalf("in-band samples caused %d transitions", g.Transitions())
	}
	// A single out-of-band blip (below Patience) does not move it either.
	g.Observe(0.1)
	g.Observe(0.7)
	g.Observe(0.1)
	g.Observe(0.7)
	if g.Transitions() != 0 {
		t.Fatal("blips moved the governor")
	}
}

func TestGovernorClampsAtLadderEnds(t *testing.T) {
	g, _ := NewGovernor([]circuit.Millivolts{500, 450})
	for i := 0; i < 20; i++ {
		g.Observe(0.0)
	}
	if g.Level() != 450 {
		t.Fatalf("bottom clamp: %v", g.Level())
	}
	for i := 0; i < 20; i++ {
		g.Observe(1.0)
	}
	if g.Level() != 500 {
		t.Fatalf("top clamp: %v", g.Level())
	}
	g.Reset()
	if g.Level() != 500 || g.Transitions() != 0 {
		t.Fatal("reset wrong")
	}
}

func TestGovernorValidation(t *testing.T) {
	if _, err := NewGovernor(nil); err == nil {
		t.Fatal("empty ladder accepted")
	}
}

func TestGovernorClampsUtilization(t *testing.T) {
	g, _ := NewGovernor(circuit.Levels())
	g.Observe(-5)
	g.Observe(42)
	// No panic, and extreme samples count as 0/1.
	if g.Level() != 700 {
		t.Fatalf("level %v after 2 samples (patience 2 not reached per direction)", g.Level())
	}
}
