package stable

import "testing"

// paper-sized table: one store per cycle, N=1 (the "2 cycles to stabilize"
// example of Section 4.4): two entries.
func paperTable() *Table {
	t := New(1, 1)
	t.SetStabilizeCycles(1)
	return t
}

func TestPaperSizing(t *testing.T) {
	tab := paperTable()
	if tab.Size() != 2 {
		t.Fatalf("Size = %d, want 2 (paper example)", tab.Size())
	}
	if tab.Active() != 2 {
		t.Fatalf("Active = %d, want 2", tab.Active())
	}
}

func TestNoMatch(t *testing.T) {
	tab := paperTable()
	tab.Insert(10, 0x1000, 3, 42)
	res := tab.Probe(11, 0x2000, 7) // different set
	if res.Kind != MatchNone {
		t.Fatalf("Kind = %v, want none", res.Kind)
	}
	if tab.Stats().ReplayedStores != 0 {
		t.Fatal("no-match probe replayed stores")
	}
}

func TestFullMatchForwards(t *testing.T) {
	tab := paperTable()
	tab.Insert(10, 0x1000, 3, 42)
	res := tab.Probe(11, 0x1000, 3)
	if res.Kind != MatchFull {
		t.Fatalf("Kind = %v, want full", res.Kind)
	}
	if res.Data != 42 {
		t.Fatalf("forwarded data = %d, want 42", res.Data)
	}
	if res.ReplayStores() != 1 {
		t.Fatalf("ReplayStores = %d, want 1", res.ReplayStores())
	}
	s := tab.Stats()
	if s.FullMatches != 1 || s.Forwards != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSetOnlyMatch(t *testing.T) {
	tab := paperTable()
	tab.Insert(10, 0x1000, 3, 42)
	res := tab.Probe(11, 0x1040, 3) // same set, different word
	if res.Kind != MatchSet {
		t.Fatalf("Kind = %v, want set", res.Kind)
	}
	if res.ReplayStores() != 1 {
		t.Fatalf("ReplayStores = %d, want 1", res.ReplayStores())
	}
	if tab.Stats().SetMatches != 1 {
		t.Fatalf("stats = %+v", tab.Stats())
	}
}

// TestEntryLifetime: a store committed at cycle c is probeable during its
// danger window (c..c+N) and gone once the DL0 entry is readable (c+N+1).
func TestEntryLifetime(t *testing.T) {
	tab := paperTable() // N=1
	tab.Insert(10, 0x1000, 3, 42)
	if res := tab.Probe(11, 0x1000, 3); res.Kind != MatchFull {
		t.Fatalf("cycle 11 (danger window): Kind = %v, want full", res.Kind)
	}
	// The probe replayed the store at cycle 11, renewing its window; use a
	// fresh table to check pure expiry.
	tab2 := paperTable()
	tab2.Insert(10, 0x1000, 3, 42)
	if res := tab2.Probe(12, 0x1000, 3); res.Kind != MatchNone {
		t.Fatalf("cycle 12 (stabilized): Kind = %v, want none", res.Kind)
	}
}

// TestReplayReexecution: a probe hands back the matching stores (oldest
// first) and invalidates their entries — the caller re-executes them as
// fresh stores ("those repeated store actions further update STable to
// keep it consistent"). Re-inserting restores coverage with a fresh
// window.
func TestReplayReexecution(t *testing.T) {
	tab := paperTable()
	tab.Insert(10, 0x1000, 3, 42)
	res := tab.Probe(11, 0x1040, 3) // set match: replay at cycle 11
	if len(res.Replay) != 1 || res.Replay[0].Addr != 0x1000 {
		t.Fatalf("Replay = %+v, want the original store", res.Replay)
	}
	// The matched entry was consumed; the caller re-inserts it.
	if r2 := tab.Probe(11, 0x1000, 3); r2.Kind != MatchNone {
		t.Fatalf("entry still present after consumption: %v", r2.Kind)
	}
	tab.Insert(11, res.Replay[0].Addr, res.Replay[0].Set, res.Replay[0].Data)
	if r3 := tab.Probe(12, 0x1000, 3); r3.Kind != MatchFull {
		t.Fatalf("cycle 12 after re-insert: Kind = %v, want full", r3.Kind)
	}
}

// TestReplayOrderOldestFirst: replayed stores come back in age order.
func TestReplayOrderOldestFirst(t *testing.T) {
	tab := New(2, 1) // 4 entries, two stores per cycle
	tab.SetStabilizeCycles(1)
	tab.Insert(10, 0x1000, 3, 1)
	tab.Insert(10, 0x1040, 3, 2)
	res := tab.Probe(10, 0x1080, 3)
	if res.Kind != MatchSet || len(res.Replay) != 2 {
		t.Fatalf("probe = %+v", res)
	}
	if res.Replay[0].Data != 1 || res.Replay[1].Data != 2 {
		t.Fatalf("replay out of order: %+v", res.Replay)
	}
}

func TestRoundRobinReplacement(t *testing.T) {
	tab := New(1, 2) // 3 physical entries
	tab.SetStabilizeCycles(2)
	tab.Insert(10, 0xA00, 1, 1)
	tab.Insert(11, 0xB00, 2, 2)
	tab.Insert(12, 0xC00, 4, 3)
	// All three live (windows 10..12, 11..13, 12..14).
	if res := tab.Probe(12, 0xA00, 1); res.Kind != MatchFull {
		t.Fatalf("oldest entry already evicted: %v", res.Kind)
	}
	// The fourth insert recycles the oldest slot.
	tab.Insert(13, 0xD00, 5, 4)
	if res := tab.Probe(13, 0xA00, 1); res.Kind != MatchNone {
		t.Fatalf("recycled entry still matching: %v", res.Kind)
	}
}

func TestIdleCyclesInvalidate(t *testing.T) {
	tab := paperTable()
	tab.Insert(10, 0x1000, 3, 42)
	// No stores for many cycles: entries age out via the per-cycle
	// invalidation clock even without new inserts.
	if res := tab.Probe(50, 0x1000, 3); res.Kind != MatchNone {
		t.Fatalf("stale entry matched after idle: %v", res.Kind)
	}
}

func TestNewestFullMatchWins(t *testing.T) {
	tab := New(2, 1) // two stores per cycle
	tab.SetStabilizeCycles(1)
	tab.Insert(10, 0x1000, 3, 1)
	tab.Insert(10, 0x1000, 3, 2) // same word, same cycle, newer value
	res := tab.Probe(10, 0x1000, 3)
	if res.Kind != MatchFull || res.Data != 2 {
		t.Fatalf("probe = %+v, want the newest store's data", res)
	}
}

func TestDisabledAtN0(t *testing.T) {
	tab := paperTable()
	tab.Insert(10, 0x1000, 3, 42)
	tab.SetStabilizeCycles(0)
	if tab.Active() != 0 {
		t.Fatalf("Active = %d after disable", tab.Active())
	}
	if res := tab.Probe(10, 0x1000, 3); res.Kind != MatchNone {
		t.Fatal("disabled table matched")
	}
	tab.Insert(11, 0x2000, 1, 9) // must be a no-op
	if tab.Stats().Inserts != 1 {
		t.Fatal("insert accepted while disabled")
	}
}

func TestReconfigureUpAndDown(t *testing.T) {
	tab := New(1, 3) // supports N up to 3
	for _, n := range []int{1, 3, 2, 0, 1} {
		tab.SetStabilizeCycles(n)
		wantActive := 0
		if n > 0 {
			wantActive = n + 1
		}
		if tab.Active() != wantActive {
			t.Fatalf("N=%d: Active = %d, want %d", n, tab.Active(), wantActive)
		}
	}
}

func TestSetStabilizeCyclesPanicsBeyondCapacity(t *testing.T) {
	tab := New(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tab.SetStabilizeCycles(5)
}

func TestNewValidation(t *testing.T) {
	for _, c := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() { recover() }()
			New(c[0], c[1])
			t.Errorf("New(%d,%d) accepted", c[0], c[1])
		}()
	}
}

func TestBitsAccounting(t *testing.T) {
	tab := paperTable()
	if tab.Bits() != 2*(1+48+12+64) {
		t.Fatalf("Bits = %d", tab.Bits())
	}
}

// TestWindowProperty: for any insert cycle and probe offset, a (fresh)
// entry matches exactly within its danger window.
func TestWindowProperty(t *testing.T) {
	for n := 1; n <= 3; n++ {
		for off := int64(0); off <= int64(n)+2; off++ {
			tab := New(1, 3)
			tab.SetStabilizeCycles(n)
			tab.Insert(100, 0x1000, 3, 7)
			res := tab.Probe(100+off, 0x1000, 3)
			want := off <= int64(n)
			if got := res.Kind == MatchFull; got != want {
				t.Errorf("N=%d offset=%d: match=%v, want %v", n, off, got, want)
			}
		}
	}
}
