package stable

import (
	"reflect"
	"testing"

	"lowvcc/internal/rng"
)

// TestProbeFastPathEquivalence fuzzes the probe early-outs (empty table,
// set-bitmap miss) against the scan-everything reference: identical
// insert/probe/resize sequences must produce identical probe results,
// statistics and entry contents.
func TestProbeFastPathEquivalence(t *testing.T) {
	fast, slow := New(2, 4), New(2, 4)
	slow.SetFastPath(false)
	fast.SetStabilizeCycles(2)
	slow.SetStabilizeCycles(2)

	src := rng.New(0x57AB1E)
	cycle := int64(1)
	for i := 0; i < 60000; i++ {
		switch src.Intn(10) {
		case 0:
			n := src.Intn(5) // 0 disables the table entirely
			fast.SetStabilizeCycles(n)
			slow.SetStabilizeCycles(n)
		case 1, 2, 3:
			addr := uint64(src.Intn(32)) * 8
			set := src.Intn(70) // >64 exercises the set&63 aliasing
			data := src.Uint64()
			fast.Insert(cycle, addr, set, data)
			slow.Insert(cycle, addr, set, data)
		default:
			addr := uint64(src.Intn(32)) * 8
			set := src.Intn(70)
			fr := fast.Probe(cycle, addr, set)
			sr := slow.Probe(cycle, addr, set)
			if !reflect.DeepEqual(fr, sr) {
				t.Fatalf("op %d: Probe(%d, %#x, %d) = %+v vs %+v", i, cycle, addr, set, fr, sr)
			}
		}
		cycle += int64(src.Intn(3))
		if fast.Stats() != slow.Stats() {
			t.Fatalf("op %d: stats diverge:\nfast: %+v\nslow: %+v", i, fast.Stats(), slow.Stats())
		}
		if i%128 == 0 && !reflect.DeepEqual(fast.Entries(), slow.Entries()) {
			t.Fatalf("op %d: entries diverge:\nfast: %+v\nslow: %+v", i, fast.Entries(), slow.Entries())
		}
	}
}
