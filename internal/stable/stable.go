// Package stable implements the Store Table (STable) of Section 4.4 — the
// IRAW-avoidance mechanism for frequently written cache-like blocks (the
// DL0 data cache).
//
// Stores update the DL0 at commit time; at low Vcc those writes stabilize
// over N cycles. Instead of stalling every load for N cycles after every
// store, the STable tracks the address and data of the last
// storesPerCycle*N committed stores (the only entries that can still be
// stabilizing) in latch cells that operate in a single cycle at low Vcc.
// Loads probe it in parallel with the DL0:
//
//   - no match: the common case, nothing to do;
//   - full address match: the STable forwards the data;
//   - set-only match: the DL0 provides the data;
//
// and in both match cases further cache accesses stall while the matching
// stores are *repeated* from the oldest match onward, repairing whatever
// the set-wide read may have destroyed.
package stable

import "fmt"

// Entry is one STable slot: a committed store whose DL0 write may still be
// stabilizing.
type Entry struct {
	Valid bool
	// Addr is the stored word address; Set is the DL0 set it maps to
	// (needed for set-only matches).
	Addr uint64
	Set  int
	Data uint64
	// Cycle is the commit cycle of the store.
	Cycle int64
	// seq orders inserts within a cycle.
	seq uint64
}

// MatchKind classifies a load's probe result.
type MatchKind int

const (
	// MatchNone: the load touches no recently stored word or set.
	MatchNone MatchKind = iota
	// MatchSet: the load's DL0 set holds a possibly-stabilizing store, but
	// a different address; the DL0 provides the data, then stores replay.
	MatchSet
	// MatchFull: the load reads a recently stored word; the STable
	// forwards the data, then stores replay.
	MatchFull
)

// String implements fmt.Stringer.
func (k MatchKind) String() string {
	switch k {
	case MatchNone:
		return "none"
	case MatchSet:
		return "set"
	case MatchFull:
		return "full"
	default:
		return fmt.Sprintf("MatchKind(%d)", int(k))
	}
}

// Stats counts STable activity.
type Stats struct {
	Inserts           uint64
	Probes            uint64
	FullMatches       uint64
	SetMatches        uint64
	Forwards          uint64 // loads served data by the STable
	ReplayedStores    uint64
	ReplayStallCycles uint64
}

// Table is the Store Table. Not goroutine-safe.
type Table struct {
	entries []Entry
	// next is the round-robin replacement cursor: each cycle the entries
	// holding the stores that have just stabilized are the ones replaced.
	next int
	// active is storesPerCycle*N for the current Vcc level; the remaining
	// physical entries are disabled (Section 4.4: "The Vcc controller sets
	// the number of entries that must be checked").
	active int

	storesPerCycle int
	lastTick       int64
	seq            uint64

	// validCount and setBits summarize the active entries so the per-load
	// probe can early-out: validCount counts Valid entries; setBits has bit
	// set&63 set when some valid entry maps to that set index (exact, not
	// approximate — it is rebuilt whenever entries are invalidated). Both
	// are maintained on every state change; noFast only gates whether Probe
	// consults them (fast-vs-slow equivalence hook).
	validCount int
	setBits    uint64
	noFast     bool
	// replayBuf backs ProbeResult.Replay so matching probes do not
	// allocate; see the Probe doc for the aliasing contract.
	replayBuf []Entry

	stats Stats
}

// New returns an STable with capacity for maxN stabilization cycles at the
// given commit width ("the size required by the largest number of IRAW
// cycles allowed"). A store committed at cycle c is dangerous to set reads
// during cycles c..c+N, so each commit slot must survive N+1 round-robin
// steps: the physical size is storesPerCycle*(maxN+1). This matches the
// paper's example ("one store per cycle, write operations require 2 cycles
// to stabilize, the STable has 2 entries"), whose 2-cycle figure counts the
// write cycle plus one stabilization cycle (N=1 here).
func New(storesPerCycle, maxN int) *Table {
	if storesPerCycle <= 0 || maxN <= 0 {
		panic(fmt.Sprintf("stable: invalid sizing %d x %d", storesPerCycle, maxN))
	}
	return &Table{
		entries:        make([]Entry, storesPerCycle*(maxN+1)),
		storesPerCycle: storesPerCycle,
	}
}

// SetStabilizeCycles reconfigures the active entry count for N (0 disables
// the table entirely).
func (t *Table) SetStabilizeCycles(n int) {
	if n < 0 || (n > 0 && t.storesPerCycle*(n+1) > len(t.entries)) {
		panic(fmt.Sprintf("stable: N=%d out of range for %d entries", n, len(t.entries)))
	}
	if n == 0 {
		t.active = 0
		for i := range t.entries {
			t.entries[i].Valid = false
		}
		t.validCount, t.setBits = 0, 0
		return
	}
	t.active = t.storesPerCycle * (n + 1)
	// The summaries describe entries[0:active]. A resize moves that window
	// over entries the seed logic deliberately leaves in place — a shrink
	// hides valid entries, a later grow re-exposes them — so recount.
	t.validCount = 0
	for i := 0; i < t.active; i++ {
		if t.entries[i].Valid {
			t.validCount++
		}
	}
	t.rebuildSetBits()
}

// SetFastPath enables or disables the probe early-outs (enabled by
// default); the summaries stay maintained either way. Fast-vs-slow
// equivalence hook.
func (t *Table) SetFastPath(enabled bool) { t.noFast = !enabled }

// rebuildSetBits recomputes the set-index bitmap after invalidations (a
// cleared bit may still be covered by another valid entry, so clearing is
// a recount, not a single-bit operation).
func (t *Table) rebuildSetBits() {
	var b uint64
	for i := 0; i < t.active; i++ {
		if t.entries[i].Valid {
			b |= 1 << (uint(t.entries[i].Set) & 63)
		}
	}
	t.setBits = b
}

// Active returns the number of enabled entries.
func (t *Table) Active() int { return t.active }

// Size returns the physical entry count.
func (t *Table) Size() int { return len(t.entries) }

// Stats returns a snapshot of the counters.
func (t *Table) Stats() Stats { return t.stats }

// tick advances the round-robin clock to `cycle`: for every elapsed cycle,
// storesPerCycle entries are either consumed by Insert or invalidated
// ("if new store instructions do not exist, the corresponding entries are
// simply invalidated") — entries only describe stores young enough to be
// stabilizing.
func (t *Table) tick(cycle int64) {
	if t.active == 0 {
		return
	}
	elapsed := cycle - t.lastTick
	if elapsed <= 0 {
		return
	}
	if elapsed > int64(t.active) {
		elapsed = int64(t.active)
	}
	if t.validCount == 0 && t.next < t.active {
		// Nothing in the window to invalidate: advance the cursor
		// arithmetically — exactly where the walk below would leave it.
		// (A stale out-of-window cursor after a SetStabilizeCycles shrink
		// takes the walk, which also clears that slot as the seed did.)
		t.next = (t.next + int(elapsed)*t.storesPerCycle) % t.active
	} else {
		dropped := false
		for e := int64(0); e < elapsed*int64(t.storesPerCycle); e++ {
			if t.entries[t.next].Valid {
				t.entries[t.next].Valid = false
				if t.next < t.active {
					t.validCount--
					dropped = true
				}
			}
			// Modulo, not a wrap-on-equal: the cursor may start at or
			// beyond active after a shrink and must renormalize exactly as
			// the seed arithmetic did.
			t.next = (t.next + 1) % t.active
		}
		if dropped {
			t.rebuildSetBits()
		}
	}
	// Rewind: invalidation walked the cursor; inserts this cycle reuse the
	// slots just freed, so step back storesPerCycle positions.
	t.next = (t.next + t.active - t.storesPerCycle) % t.active
	t.lastTick = cycle
}

// Insert records a store committing at `cycle` to word address addr in DL0
// set `set`. It must be called at most storesPerCycle times per cycle.
func (t *Table) Insert(cycle int64, addr uint64, set int, data uint64) {
	if t.active == 0 {
		return
	}
	t.tick(cycle)
	t.seq++
	inWindow := t.next < t.active // a stale post-shrink cursor writes outside it
	replacedValid := t.entries[t.next].Valid
	t.entries[t.next] = Entry{Valid: true, Addr: addr, Set: set, Data: data, Cycle: cycle, seq: t.seq}
	t.next = (t.next + 1) % t.active
	if inWindow {
		if replacedValid {
			// The round-robin contract (at most storesPerCycle inserts per
			// cycle) means the reused slot was just invalidated; keep the
			// summaries right even if a caller overfills.
			t.validCount--
			t.rebuildSetBits()
		}
		t.validCount++
		t.setBits |= 1 << (uint(set) & 63)
	}
	t.stats.Inserts++
}

// ProbeResult is the outcome of a load probe.
type ProbeResult struct {
	Kind MatchKind
	// Data is the forwarded value (valid when Kind == MatchFull).
	Data uint64
	// Replay lists the stores that must be repeated, oldest first ("repeat
	// store operations from the oldest matching entry onwards"). The caller
	// re-executes them on consecutive cycles — each re-enters the table as
	// a fresh store — and the D-cache port stalls for as many cycles.
	Replay []Entry
}

// ReplayStores returns the number of stores to repeat.
func (r ProbeResult) ReplayStores() int { return len(r.Replay) }

// Probe checks a load at `cycle` against the active entries: addr is the
// word address, set the DL0 set index. A match means the load's set access
// may have destroyed stabilizing store data, so the matching stores replay.
//
// The returned Replay slice aliases a scratch buffer owned by the table:
// it is valid until the next Probe. Callers that need it longer must copy.
func (t *Table) Probe(cycle int64, addr uint64, set int) ProbeResult {
	if t.active == 0 {
		return ProbeResult{Kind: MatchNone}
	}
	t.tick(cycle)
	t.stats.Probes++
	if !t.noFast && (t.validCount == 0 || t.setBits>>(uint(set)&63)&1 == 0) {
		// Empty table, or no active entry maps to this set index: the scan
		// below would find nothing. (setBits aliases sets mod 64; a bit hit
		// just falls through to the exact scan.)
		return ProbeResult{Kind: MatchNone}
	}

	// Find the oldest matching entry (full or set) and the newest full
	// match (which holds the freshest data for forwarding).
	oldestIdx, fullIdx := -1, -1
	var oldestSeq, fullSeq uint64
	for i := 0; i < t.active; i++ {
		e := &t.entries[i]
		if !e.Valid || e.Set != set {
			continue
		}
		if oldestIdx < 0 || e.seq < oldestSeq {
			oldestIdx, oldestSeq = i, e.seq
		}
		if e.Addr == addr && (fullIdx < 0 || e.seq > fullSeq) {
			fullIdx, fullSeq = i, e.seq
		}
	}
	if oldestIdx < 0 {
		return ProbeResult{Kind: MatchNone}
	}
	// Collect the stores to replay: every valid entry in this set from the
	// oldest match onward, in age order. The entries are *invalidated*
	// here — the caller re-executes the stores, which re-enter the table
	// as fresh inserts with fresh stabilization windows (anything less
	// would leave a renewed window without table coverage once the
	// round-robin clock recycles the old slot).
	replay := t.replayBuf[:0]
	for i := 0; i < t.active; i++ {
		e := &t.entries[i]
		if e.Valid && e.Set == set && e.seq >= oldestSeq {
			replay = append(replay, *e)
			e.Valid = false
			t.validCount--
		}
	}
	t.replayBuf = replay
	t.rebuildSetBits()
	for i := 1; i < len(replay); i++ {
		for j := i; j > 0 && replay[j].seq < replay[j-1].seq; j-- {
			replay[j], replay[j-1] = replay[j-1], replay[j]
		}
	}
	t.stats.ReplayedStores += uint64(len(replay))
	t.stats.ReplayStallCycles += uint64(len(replay))
	if fullIdx >= 0 {
		t.stats.FullMatches++
		t.stats.Forwards++
		return ProbeResult{Kind: MatchFull, Data: t.entries[fullIdx].Data, Replay: replay}
	}
	t.stats.SetMatches++
	return ProbeResult{Kind: MatchSet, Replay: replay}
}

// Entries returns a copy of the active entries (tests and debugging).
func (t *Table) Entries() []Entry {
	out := make([]Entry, t.active)
	copy(out, t.entries[:t.active])
	return out
}

// Bits returns the latch storage of the table for area accounting: per
// entry one valid bit, a 48-bit address, a set index (12 bits) and the
// maximum store data width (64 bits).
func (t *Table) Bits() int { return len(t.entries) * (1 + 48 + 12 + 64) }
