package scoreboard

import (
	"testing"

	"lowvcc/internal/isa"
	"lowvcc/internal/rng"
)

// randReg returns a random register, RegNone one time in four.
func randReg(src *rng.Source) isa.Reg {
	if src.Intn(4) == 0 {
		return isa.RegNone
	}
	return isa.Reg(src.Intn(isa.NumRegs))
}

// TestIssueReadyMatchesSingleProbes holds the fused probe to its
// definition: IssueReady(s1, s2, d) == ReadReady(s1) && ReadReady(s2) &&
// WriteReady(d), across randomized scoreboard states.
func TestIssueReadyMatchesSingleProbes(t *testing.T) {
	sb := New(DefaultConfig())
	src := rng.New(0x5B0A)
	for i := 0; i < 40000; i++ {
		mutateScoreboard(sb, src)
		s1, s2, d := randReg(src), randReg(src), randReg(src)
		want := sb.ReadReady(s1) && sb.ReadReady(s2) && sb.WriteReady(d)
		if got := sb.IssueReady(s1, s2, d); got != want {
			t.Fatalf("op %d: IssueReady(%v,%v,%v) = %v, singles say %v (now=%d)",
				i, s1, s2, d, got, want, sb.Now())
		}
	}
}

// TestIssueReadyPairMatchesSequentialProbes fuzzes the two-slot probe
// against its contract: okA equals a one-slot probe of A, and — whenever
// okA holds — okB equals a one-slot probe of B taken *after* A's issue is
// applied. The fuzz actually applies the issue (IssueProducer on A's
// produced register) and compares against the live post-issue probe, so
// the overlap shortcut is held to the mutation it predicts.
func TestIssueReadyPairMatchesSequentialProbes(t *testing.T) {
	sb := New(DefaultConfig())
	src := rng.New(0xD0A1)
	for i := 0; i < 40000; i++ {
		mutateScoreboard(sb, src)
		a1, a2, ad := randReg(src), randReg(src), randReg(src)
		b1, b2, bd := randReg(src), randReg(src), randReg(src)
		// aProd is A's produced register: ad itself for producing ops,
		// RegNone for stores/control — both shapes the issue stage passes.
		aProd := ad
		if src.Intn(4) == 0 {
			aProd = isa.RegNone
		}

		wantA := sb.IssueReady(a1, a2, ad)
		okA, okB := sb.IssueReadyPair(a1, a2, ad, aProd, b1, b2, bd)
		if okA != wantA {
			t.Fatalf("op %d: okA = %v, single probe says %v", i, okA, wantA)
		}
		if !okA {
			continue // okB is not evaluated when the pair cannot issue
		}
		// Apply A's issue exactly as the core would, then probe B.
		if aProd != isa.RegNone {
			lat := 1 + src.Intn(sb.MaxShortLatency())
			sb.IssueProducer(aProd, lat)
		}
		if wantB := sb.IssueReady(b1, b2, bd); okB != wantB {
			t.Fatalf("op %d: okB = %v, post-issue probe says %v (aProd=%v b=%v,%v,%v)",
				i, okB, wantB, aProd, b1, b2, bd)
		}
	}
}

// mutateScoreboard applies a random state transition: shifts, bulk
// advances, producers (short and long), completions, flushes and bubble
// reconfigurations.
func mutateScoreboard(sb *Scoreboard, src *rng.Source) {
	switch src.Intn(10) {
	case 0:
		sb.SetStabilizeCycles(src.Intn(sb.MaxN() + 1))
	case 1:
		sb.Flush()
	case 2:
		sb.AdvanceTo(sb.Now() + int64(src.Intn(20)))
	case 3, 4:
		r := isa.Reg(src.Intn(isa.NumRegs))
		if sb.LongPending(r) {
			sb.CompleteLongLatency(r, 1+src.Intn(sb.MaxShortLatency()))
		} else if src.Intn(2) == 0 {
			sb.BeginLongLatency(r)
		} else {
			sb.IssueProducer(r, 1+src.Intn(sb.MaxShortLatency()))
		}
	default:
		sb.Shift()
	}
}
