package scoreboard

import (
	"math"
	"testing"
	"testing/quick"

	"lowvcc/internal/isa"
)

func newSB(t *testing.T, n int) *Scoreboard {
	t.Helper()
	sb := New(DefaultConfig())
	sb.SetStabilizeCycles(n)
	return sb
}

// TestFigure8Pattern reproduces the paper's worked example: a 3-cycle
// producer with one bypass level and N=1 initializes 0001011 (here widened
// to 12 bits: 000101111111).
func TestFigure8Pattern(t *testing.T) {
	sb := newSB(t, 1)
	got := sb.Pattern(3)
	want := uint32(0b000101111111)
	if got != want {
		t.Fatalf("Pattern(3) = %012b, want %012b", got, want)
	}
}

func TestBaselinePattern(t *testing.T) {
	sb := newSB(t, 0) // IRAW off: baseline initialization, no bubble
	got := sb.Pattern(3)
	want := uint32(0b000111111111)
	if got != want {
		t.Fatalf("baseline Pattern(3) = %012b, want %012b", got, want)
	}
}

// TestFigure8Timeline drives the full consumer-visible schedule of
// Figure 8: producer issues at cycle i with latency 3; consumers may issue
// at i+3 (bypass), must not at i+4 (stabilizing), and may from i+5 onward.
func TestFigure8Timeline(t *testing.T) {
	sb := newSB(t, 1)
	const r = isa.Reg(5)
	sb.IssueProducer(r, 3) // cycle i
	type step struct {
		ready bool
		iraw  bool
	}
	want := []step{
		{false, false}, // i+1
		{false, false}, // i+2
		{true, false},  // i+3: bypass window
		{false, true},  // i+4: stabilization bubble — the IRAW delay
		{true, false},  // i+5
		{true, false},  // i+6
	}
	for k, w := range want {
		sb.Shift()
		if got := sb.ReadReady(r); got != w.ready {
			t.Errorf("cycle i+%d: ReadReady = %v, want %v (view %012b)", k+1, got, w.ready, sb.ReadView(r))
		}
		if got := sb.IRAWBlocked(r); got != w.iraw {
			t.Errorf("cycle i+%d: IRAWBlocked = %v, want %v", k+1, got, w.iraw)
		}
	}
}

// TestBaselineTimeline: with N=0 the consumer may issue from i+3 onward
// with no bubble, as in the top row of Figure 8.
func TestBaselineTimeline(t *testing.T) {
	sb := newSB(t, 0)
	const r = isa.Reg(2)
	sb.IssueProducer(r, 3)
	want := []bool{false, false, true, true, true}
	for k, w := range want {
		sb.Shift()
		if got := sb.ReadReady(r); got != w {
			t.Errorf("cycle i+%d: ReadReady = %v, want %v", k+1, got, w)
		}
		if sb.IRAWBlocked(r) {
			t.Errorf("cycle i+%d: IRAWBlocked in baseline mode", k+1)
		}
	}
}

// TestTimelineOracle property-checks the shift-register machinery against
// the closed-form schedule for every short latency and every N: ready
// exactly in [L, L+bypass-1] and [L+bypass+N, inf).
func TestTimelineOracle(t *testing.T) {
	cfg := DefaultConfig()
	for n := 0; n <= 4; n++ {
		sb := New(cfg)
		sb.SetStabilizeCycles(n)
		for lat := 1; lat <= sb.MaxShortLatency(); lat++ {
			sb.Flush()
			const r = isa.Reg(0)
			sb.IssueProducer(r, lat)
			for k := 1; k <= cfg.Bits+4; k++ {
				sb.Shift()
				var want bool
				if n == 0 {
					want = k >= lat
				} else {
					inBypass := k >= lat && k < lat+cfg.BypassLevels
					afterBubble := k >= lat+cfg.BypassLevels+n
					want = inBypass || afterBubble
				}
				if got := sb.ReadReady(r); got != want {
					t.Fatalf("N=%d lat=%d cycle+%d: ReadReady=%v want %v (view %012b)",
						n, lat, k, got, want, sb.ReadView(r))
				}
			}
		}
	}
}

// TestWriteViewIgnoresBubble: writers only wait for value availability;
// the stabilization bubble never blocks a WAW rewrite (Section 4.4).
func TestWriteViewIgnoresBubble(t *testing.T) {
	sb := newSB(t, 1)
	const r = isa.Reg(7)
	sb.IssueProducer(r, 3)
	for k := 1; k <= 6; k++ {
		sb.Shift()
		want := k >= 3
		if got := sb.WriteReady(r); got != want {
			t.Errorf("cycle i+%d: WriteReady=%v, want %v", k, got, want)
		}
	}
}

func TestUnwrittenRegsReady(t *testing.T) {
	sb := newSB(t, 1)
	for r := 0; r < isa.NumRegs; r++ {
		if !sb.ReadReady(isa.Reg(r)) || !sb.WriteReady(isa.Reg(r)) {
			t.Fatalf("fresh register r%d not ready", r)
		}
	}
	if !sb.ReadReady(isa.RegNone) || !sb.WriteReady(isa.RegNone) {
		t.Fatal("RegNone must always be ready")
	}
}

func TestLongLatencyPath(t *testing.T) {
	sb := newSB(t, 1)
	const r = isa.Reg(3)
	sb.BeginLongLatency(r)
	for k := 0; k < 20; k++ {
		sb.Shift()
		if sb.ReadReady(r) || sb.WriteReady(r) {
			t.Fatalf("cycle %d: long-pending register became ready on its own", k)
		}
		if sb.IRAWBlocked(r) {
			t.Fatalf("cycle %d: long-pending register counts as IRAW-blocked", k)
		}
	}
	if !sb.LongPending(r) {
		t.Fatal("LongPending lost")
	}
	// Completion in 2 cycles re-arms the register like a 2-cycle producer:
	// bypass at +2, bubble at +3, ready from +4.
	sb.CompleteLongLatency(r, 2)
	want := []bool{false, true, false, true, true}
	for k, w := range want {
		sb.Shift()
		if got := sb.ReadReady(r); got != w {
			t.Errorf("post-completion cycle +%d: ReadReady=%v, want %v", k+1, got, w)
		}
	}
}

func TestCompleteLongLatencyWithoutPendingPanics(t *testing.T) {
	sb := newSB(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	sb.CompleteLongLatency(isa.Reg(1), 2)
}

func TestReconfigurationAcrossVcc(t *testing.T) {
	// Section 4.1.3: at 600 mV or higher the bubble disappears; at 575 mV
	// or lower one stabilization cycle is inserted. Pattern for a 3-cycle
	// producer: 0001111... vs 0001011...
	sb := newSB(t, 0)
	high := sb.Pattern(3)
	sb.SetStabilizeCycles(1)
	low := sb.Pattern(3)
	if high == low {
		t.Fatal("patterns identical across reconfiguration")
	}
	if high != 0b000111111111 || low != 0b000101111111 {
		t.Fatalf("patterns = %012b / %012b", high, low)
	}
}

func TestFlush(t *testing.T) {
	sb := newSB(t, 1)
	sb.IssueProducer(isa.Reg(1), 4)
	sb.BeginLongLatency(isa.Reg(2))
	sb.Flush()
	for r := 0; r < isa.NumRegs; r++ {
		if !sb.ReadReady(isa.Reg(r)) {
			t.Fatalf("r%d not ready after flush", r)
		}
	}
}

func TestMaxShortLatencyBounds(t *testing.T) {
	sb := newSB(t, 1)
	// 12 bits, 1 bypass, N=1: max short latency is 9.
	if got := sb.MaxShortLatency(); got != 9 {
		t.Fatalf("MaxShortLatency = %d, want 9", got)
	}
	sb.SetStabilizeCycles(0)
	if got := sb.MaxShortLatency(); got != 11 {
		t.Fatalf("baseline MaxShortLatency = %d, want 11", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Pattern beyond max latency did not panic")
		}
	}()
	sb.Pattern(12)
}

func TestSetStabilizeCyclesBounds(t *testing.T) {
	sb := New(DefaultConfig())
	if sb.MaxN() != 9 {
		t.Fatalf("MaxN = %d, want 9 for 12-bit registers", sb.MaxN())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range N did not panic")
		}
	}()
	sb.SetStabilizeCycles(10)
}

// TestShiftInvariantOnesTail: once a register's low bits are all ones they
// stay ones — readiness is eventually permanent (property test over random
// issue sequences).
func TestShiftInvariantOnesTail(t *testing.T) {
	f := func(lats [8]uint8, shifts uint8) bool {
		sb := New(DefaultConfig())
		sb.SetStabilizeCycles(1)
		for _, l := range lats {
			lat := int(l)%sb.MaxShortLatency() + 1
			sb.IssueProducer(isa.Reg(0), lat)
			for s := 0; s < int(shifts%8); s++ {
				sb.Shift()
			}
		}
		// After Bits shifts the register must be all ones.
		for s := 0; s < sb.Config().Bits; s++ {
			sb.Shift()
		}
		return sb.ReadView(isa.Reg(0)) == uint32(1<<sb.Config().Bits)-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAdvanceToMatchesShift: the bulk clock advance must be exactly
// equivalent to repeated Shifts — every view, at every register, at every
// elapsed time.
func TestAdvanceToMatchesShift(t *testing.T) {
	mk := func() *Scoreboard {
		sb := New(DefaultConfig())
		sb.SetStabilizeCycles(1)
		sb.IssueProducer(isa.Reg(0), 3)
		sb.IssueProducer(isa.Reg(1), 7)
		sb.BeginLongLatency(isa.Reg(2))
		return sb
	}
	stepped := mk()
	for k := 1; k <= 20; k++ {
		stepped.Shift()
		jumped := mk()
		jumped.AdvanceTo(int64(k))
		for r := 0; r < 4; r++ {
			reg := isa.Reg(r)
			if stepped.ReadReady(reg) != jumped.ReadReady(reg) ||
				stepped.WriteReady(reg) != jumped.WriteReady(reg) ||
				stepped.IRAWBlocked(reg) != jumped.IRAWBlocked(reg) ||
				stepped.ReadView(reg) != jumped.ReadView(reg) {
				t.Fatalf("k=%d r%d: AdvanceTo diverges from Shift (views %012b vs %012b)",
					k, r, stepped.ReadView(reg), jumped.ReadView(reg))
			}
		}
	}
}

// TestNextChangeIsExact property-checks NextChange against brute force: for
// every (latency, N, elapsed) it must name exactly the next cycle at which
// ReadReady, WriteReady or IRAWBlocked changes, and MaxInt64 only when no
// view ever flips again.
func TestNextChangeIsExact(t *testing.T) {
	const r = isa.Reg(0)
	for n := 0; n <= 4; n++ {
		sb := New(DefaultConfig())
		sb.SetStabilizeCycles(n)
		for lat := 1; lat <= sb.MaxShortLatency(); lat++ {
			sb.Flush()
			base := sb.Now()
			sb.IssueProducer(r, lat)
			for k := 0; k <= sb.Config().Bits+3; k++ {
				got := sb.NextChange(r)
				// Brute force: probe a clone forward until a view flips.
				probe := New(DefaultConfig())
				probe.SetStabilizeCycles(n)
				probe.IssueProducer(r, lat)
				probe.AdvanceTo(int64(k))
				r0, w0 := probe.ReadReady(r), probe.WriteReady(r)
				want := int64(math.MaxInt64)
				for j := k + 1; j <= 2*sb.Config().Bits+4; j++ {
					probe.AdvanceTo(int64(j))
					if probe.ReadReady(r) != r0 || probe.WriteReady(r) != w0 {
						want = base + int64(j)
						break
					}
				}
				if got != want {
					t.Fatalf("N=%d lat=%d k=%d: NextChange=%d want %d", n, lat, k, got, want)
				}
				sb.Shift()
			}
		}
	}
}

// TestNextChangeLongPending: event-completed registers have no self-change.
func TestNextChangeLongPending(t *testing.T) {
	sb := newSB(t, 1)
	sb.BeginLongLatency(isa.Reg(4))
	if got := sb.NextChange(isa.Reg(4)); got != math.MaxInt64 {
		t.Fatalf("NextChange(long-pending) = %d, want MaxInt64", got)
	}
	if got := sb.NextChange(isa.RegNone); got != math.MaxInt64 {
		t.Fatalf("NextChange(RegNone) = %d, want MaxInt64", got)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Regs: 0, Bits: 12, BypassLevels: 1},
		{Regs: 16, Bits: 1, BypassLevels: 1},
		{Regs: 16, Bits: 40, BypassLevels: 1},
		{Regs: 16, Bits: 12, BypassLevels: -1},
	} {
		func() {
			defer func() { recover() }()
			New(cfg)
			t.Errorf("config %+v accepted", cfg)
		}()
	}
}
