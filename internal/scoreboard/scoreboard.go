// Package scoreboard implements the readiness-control logic of the in-order
// issue stage (Section 4.1): one shift register per logical register, with
// the IRAW-avoidance extension that inserts a stabilization bubble between
// the bypass window and register-file readability.
//
// A producer of latency L issued with B-bit registers sets, from the most
// significant bit: L zeros, then (IRAW mode) `bypass` ones, N zeros, and
// ones to fill — e.g. 0001011 for L=3, bypass=1, N=1 (Figure 8). Registers
// shift left one position per cycle, replicating the least significant bit.
// A consumer may issue only while the MSB of each source's register is 1:
// exactly the cycles in which the value is reachable through the bypass
// network or, later, readable from stabilized bitcells — never the cycles
// in which the RF entry is still stabilizing.
//
// The scoreboard tracks two views per register:
//
//   - the read view (IRAW-extended pattern) gating consumers, and
//   - the write view (baseline pattern, no bubble) gating writers (WAW);
//     overwriting a stabilizing entry is safe (Section 4.4), so writers do
//     not wait out the bubble.
//
// # Representation
//
// The hardware shifts every register each cycle; simulating that literally
// costs O(registers) per cycle even when the pipeline is stalled. This
// implementation is lazy: each register stores its initialization patterns
// and the scoreboard time at which they were set (`stamp`), and every view
// is computed on demand from the elapsed shift count `now - stamp`. Shift
// (or the bulk AdvanceTo) therefore only advances a clock, and the
// Pattern/Figure 8 semantics — including the stabilization bubble — remain
// the observable contract: ReadView reconstructs the exact register value
// the shifting hardware would hold. NextChange exposes, for the
// event-driven pipeline, the next cycle at which a register's readiness can
// change without an external completion event.
package scoreboard

import (
	"fmt"
	"math"
	"math/bits"

	"lowvcc/internal/isa"
)

// Config sizes the scoreboard.
type Config struct {
	// Regs is the number of logical registers tracked.
	Regs int
	// Bits is the shift-register width B. Producers of latency up to
	// B-1-bypass-maxN use the in-register path; longer ones use the
	// long-latency event path (Section 4.1.1).
	Bits int
	// BypassLevels is the depth of the bypass network (ones inserted after
	// the latency zeros in IRAW mode).
	BypassLevels int
}

// DefaultConfig matches the modelled Silverthorne-like core: 16 logical
// registers, 12-bit shift registers, one bypass level.
func DefaultConfig() Config {
	return Config{Regs: isa.NumRegs, Bits: 12, BypassLevels: 1}
}

// regState is one register's lazy shift-register pair: the read/write
// patterns as initialized, plus the scoreboard time they were set at. The
// value after k = now - stamp cycles is the pattern shifted left k times
// with LSB replication — computed on demand, never stored.
type regState struct {
	read  uint32 // IRAW-extended pattern (bit cfg.Bits-1 is MSB) at stamp
	write uint32 // baseline pattern (value-availability only) at stamp
	stamp int64  // scoreboard time the patterns were installed
	// longPending marks a register whose producer's completion will be
	// signalled by an event (load miss, divider) rather than the register.
	longPending bool
}

// Scoreboard is the per-register readiness tracker. Not goroutine-safe.
type Scoreboard struct {
	cfg Config
	n   int   // current stabilization cycles (0 = IRAW avoidance off)
	now int64 // scoreboard time: total shifts since New

	regs []regState

	// patterns caches Pattern(latency) for the current n, indexed by
	// latency (entry 0 unused): producers issue on the hot path and the
	// pattern for a given (latency, n) never changes between
	// reconfigurations.
	patterns []uint32

	// ExtraBits is the per-register storage added by the IRAW extension
	// (bypass + max bubble), for the area/energy accounting.
	ExtraBits int
}

// Validate reports whether the configuration is structurally usable. New
// panics on the same conditions (an invariant backstop), so API boundaries
// that accept user-supplied configs — core.New — check here first and
// return the error instead.
func (cfg Config) Validate() error {
	if cfg.Regs <= 0 || cfg.Bits <= 1 || cfg.Bits > 31 || cfg.BypassLevels < 0 {
		return fmt.Errorf("scoreboard: invalid config %+v", cfg)
	}
	return nil
}

// New returns a scoreboard with every register ready.
func New(cfg Config) *Scoreboard {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	sb := &Scoreboard{
		cfg:       cfg,
		regs:      make([]regState, cfg.Regs),
		ExtraBits: cfg.BypassLevels + 1, // bubble sized for N up to MaxN=1 per level change
	}
	all := sb.allOnes()
	for r := range sb.regs {
		sb.regs[r] = regState{read: all, write: all}
	}
	sb.rebuildPatterns()
	return sb
}

// rebuildPatterns refreshes the pattern cache for the current n.
func (sb *Scoreboard) rebuildPatterns() {
	max := sb.MaxShortLatency()
	if cap(sb.patterns) < max+1 {
		sb.patterns = make([]uint32, max+1)
	}
	sb.patterns = sb.patterns[:max+1]
	for lat := 1; lat <= max; lat++ {
		sb.patterns[lat] = sb.buildPattern(lat)
	}
}

// Config returns the scoreboard configuration.
func (sb *Scoreboard) Config() Config { return sb.cfg }

func (sb *Scoreboard) allOnes() uint32 { return (1 << sb.cfg.Bits) - 1 }

// SetStabilizeCycles reconfigures the stabilization bubble N for the
// current Vcc level (Section 4.1.3). N = 0 disables IRAW avoidance: the
// shift registers are then initialized exactly as in the baseline.
func (sb *Scoreboard) SetStabilizeCycles(n int) {
	if n < 0 || n > sb.MaxN() {
		panic(fmt.Sprintf("scoreboard: N=%d out of range [0,%d]", n, sb.MaxN()))
	}
	sb.n = n
	sb.rebuildPatterns()
}

// StabilizeCycles returns the configured bubble width N.
func (sb *Scoreboard) StabilizeCycles() int { return sb.n }

// MaxN is the largest bubble the register width can accommodate alongside a
// single-cycle producer and the bypass window.
func (sb *Scoreboard) MaxN() int { return sb.cfg.Bits - 1 - sb.cfg.BypassLevels - 1 }

// MaxShortLatency is the largest producer latency the shift register can
// express with the current bubble; longer producers must use the
// long-latency path.
func (sb *Scoreboard) MaxShortLatency() int {
	if sb.n == 0 {
		return sb.cfg.Bits - 1
	}
	return sb.cfg.Bits - 1 - sb.cfg.BypassLevels - sb.n
}

// Pattern returns the initialization value for a producer of the given
// latency under the current mode, MSB at bit Bits-1. Exposed for tests and
// the documentation tooling. Served from the per-n cache.
func (sb *Scoreboard) Pattern(latency int) uint32 {
	if latency < 1 || latency > sb.MaxShortLatency() {
		panic(fmt.Sprintf("scoreboard: latency %d outside short range [1,%d]", latency, sb.MaxShortLatency()))
	}
	return sb.patterns[latency]
}

// buildPattern constructs Pattern(latency) from the Figure 8 recipe.
func (sb *Scoreboard) buildPattern(latency int) uint32 {
	bits := make([]byte, 0, sb.cfg.Bits)
	for i := 0; i < latency; i++ {
		bits = append(bits, 0) // (I) producer execution
	}
	if sb.n > 0 {
		for i := 0; i < sb.cfg.BypassLevels; i++ {
			bits = append(bits, 1) // (II) bypass window
		}
		for i := 0; i < sb.n; i++ {
			bits = append(bits, 0) // (III) stabilization bubble
		}
	}
	for len(bits) < sb.cfg.Bits {
		bits = append(bits, 1) // (IV) ready thereafter
	}
	var v uint32
	for _, b := range bits { // bits[0] is the MSB
		v = v<<1 | uint32(b)
	}
	return v
}

// basePattern is the baseline (no-bubble) pattern for the write view.
func (sb *Scoreboard) basePattern(latency int) uint32 {
	return sb.allOnes() >> latency
}

// Shift advances every register by one cycle: shift left, replicate LSB.
// Call once at each cycle boundary before issue decisions. With the lazy
// representation this is a clock tick — views are derived on read.
func (sb *Scoreboard) Shift() { sb.now++ }

// AdvanceTo moves the scoreboard clock directly to time t (equivalent to
// t - Now() consecutive Shifts), the bulk path the event-driven pipeline
// uses when it skips idle cycles. Time never moves backwards.
func (sb *Scoreboard) AdvanceTo(t int64) {
	if t > sb.now {
		sb.now = t
	}
}

// Now returns the scoreboard time (total shifts since New).
func (sb *Scoreboard) Now() int64 { return sb.now }

// shiftedView reconstructs a pattern's register value after k shifts: the
// pattern shifted left with its LSB replicated into the vacated positions,
// exactly what the shifting hardware holds.
func (sb *Scoreboard) shiftedView(pat uint32, k int64) uint32 {
	if k <= 0 {
		return pat
	}
	if k > int64(sb.cfg.Bits) {
		k = int64(sb.cfg.Bits)
	}
	v := (uint64(pat) << uint(k)) & uint64(sb.allOnes())
	if pat&1 == 1 {
		v |= 1<<uint(k) - 1
	}
	return uint32(v)
}

// msbAfter reports a pattern's MSB after k shifts: bit Bits-1-k of the
// pattern while k < Bits, the replicated LSB afterwards.
func (sb *Scoreboard) msbAfter(pat uint32, k int64) bool {
	if k >= int64(sb.cfg.Bits) {
		return pat&1 == 1
	}
	if k < 0 {
		k = 0
	}
	return pat>>(uint(sb.cfg.Bits)-1-uint(k))&1 == 1
}

func (sb *Scoreboard) check(r isa.Reg) {
	if int(r) >= sb.cfg.Regs {
		panic(fmt.Sprintf("scoreboard: register %v out of range", r))
	}
}

// ReadReady reports whether a consumer of r may issue this cycle: the MSB
// of the IRAW-extended register is set and no long-latency producer is
// outstanding. Registers never written are always ready.
func (sb *Scoreboard) ReadReady(r isa.Reg) bool {
	if r == isa.RegNone {
		return true
	}
	e := &sb.regs[r] // implicit bounds check stands in for check(r)
	return !e.longPending && sb.msbAfter(e.read, sb.now-e.stamp)
}

// WriteReady reports whether a new producer of r may issue this cycle
// without a WAW hazard: the previous value is available (baseline view) and
// no long-latency producer is outstanding. The stabilization bubble does
// not block writers — overwriting a stabilizing entry is safe.
func (sb *Scoreboard) WriteReady(r isa.Reg) bool {
	if r == isa.RegNone {
		return true
	}
	e := &sb.regs[r] // implicit bounds check stands in for check(r)
	return !e.longPending && sb.msbAfter(e.write, sb.now-e.stamp)
}

// IssueReady reports whether an instruction reading s1 and s2 and writing d
// may issue this cycle as far as the scoreboard is concerned: both sources
// pass the read view and the destination passes the write view, in one
// probe. It is exactly ReadReady(s1) && ReadReady(s2) && WriteReady(d) —
// the issue stage's fused common case, leaving the per-register walk for
// stall attribution to the slow path.
func (sb *Scoreboard) IssueReady(s1, s2, d isa.Reg) bool {
	return sb.ReadReady(s1) && sb.ReadReady(s2) && sb.WriteReady(d)
}

// IssueReadyPair resolves both IQ slots in one scoreboard probe — the
// dual-issue fast path. okA is IssueReady for the older slot (reading
// a1/a2, writing ad) in the current state. okB is the younger slot's
// verdict *as if the older slot had just issued*: aProd names the register
// the older slot's issue would install a producer for (RegNone for
// non-producing ops — stores, control, fences), and any overlap with it
// (intra-pair RAW or WAW) blocks B, because a freshly issued producer of
// latency >= 1 is never read- or write-ready in its issue cycle, while no
// other register's state changes when A issues. When okA is false, okB is
// not evaluated (the pair cannot issue). The probe itself mutates nothing;
// a one-slot probe of B with A's issue applied first returns exactly okB —
// the equivalence fuzz holds the two together.
func (sb *Scoreboard) IssueReadyPair(a1, a2, ad, aProd, b1, b2, bd isa.Reg) (okA, okB bool) {
	if !sb.IssueReady(a1, a2, ad) {
		return false, false
	}
	if aProd != isa.RegNone && (b1 == aProd || b2 == aProd || bd == aProd) {
		return true, false
	}
	return true, sb.IssueReady(b1, b2, bd)
}

// IssueOp is one issue-slot operand set for IssueReadySet: the two sources,
// the destination, and Prod — the register the slot's issue would install a
// producer for (RegNone for non-producing ops: stores, control, fences).
type IssueOp struct {
	S1, S2, D, Prod isa.Reg
}

// IssueReadySet resolves up to 32 in-order issue slots in one scoreboard
// probe — the width-N generalization of IssueReadyPair. Bit i of the result
// is set iff slot i passes IssueReady *as if slots 0..i-1 had just issued*:
// a slot whose source or destination overlaps any older slot's Prod is
// blocked (intra-group RAW or WAW), because a freshly issued producer of
// latency >= 1 is never read- or write-ready in its issue cycle, while no
// other register's state changes when the older slots issue. Verdicts stop
// at the first not-ready slot (in-order issue: younger bits stay 0). The
// probe mutates nothing; sequentially probing IssueReady with each issue's
// IssueProducer applied yields exactly the same bits — the property test
// holds the two together.
func (sb *Scoreboard) IssueReadySet(ops []IssueOp) uint32 {
	var mask, fresh uint32 // fresh: registers produced by already-granted slots
	for i := range ops {
		op := &ops[i]
		if op.S1 != isa.RegNone && fresh>>op.S1&1 == 1 ||
			op.S2 != isa.RegNone && fresh>>op.S2&1 == 1 ||
			op.D != isa.RegNone && fresh>>op.D&1 == 1 {
			break
		}
		if !sb.IssueReady(op.S1, op.S2, op.D) {
			break
		}
		mask |= 1 << uint(i)
		if op.Prod != isa.RegNone {
			fresh |= 1 << op.Prod
		}
	}
	return mask
}

// IRAWBlocked reports whether a consumer of r is blocked *only* by the
// stabilization bubble: the value is available (a baseline machine would
// issue) but the RF entry is still stabilizing. This distinguishes the
// paper's "13.2% of instructions delayed" statistic from ordinary RAW
// stalls.
func (sb *Scoreboard) IRAWBlocked(r isa.Reg) bool {
	if r == isa.RegNone {
		return false
	}
	e := &sb.regs[r] // implicit bounds check stands in for check(r)
	if e.longPending {
		return false
	}
	k := sb.now - e.stamp
	return !sb.msbAfter(e.read, k) && sb.msbAfter(e.write, k)
}

// NextChange returns the earliest scoreboard time after Now at which r's
// readiness (either view's MSB) can change on its own — i.e. by shifting
// alone, with no new producer and no long-latency completion. It returns
// math.MaxInt64 when no such self-change exists: the register is
// long-pending (only an event can change it) or both views have gone
// steady-state. The event-driven pipeline uses this to bound idle-cycle
// skips; readiness is NOT monotone (the bubble un-readies a register after
// its bypass window), so the next change is a flip in either direction.
func (sb *Scoreboard) NextChange(r isa.Reg) int64 {
	if r == isa.RegNone {
		return math.MaxInt64
	}
	sb.check(r)
	e := &sb.regs[r]
	if e.longPending {
		return math.MaxInt64
	}
	k := sb.now - e.stamp
	next := int64(math.MaxInt64)
	for _, pat := range [2]uint32{e.read, e.write} {
		if j := sb.nextFlip(pat, k); j >= 0 {
			if t := e.stamp + j; t < next {
				next = t
			}
		}
	}
	return next
}

// nextFlip returns the smallest shift count j > k at which pat's MSB
// differs from its MSB at k, or -1 if the MSB never changes again. After
// Bits-1 shifts the MSB is the (replicated) LSB and stays there, so flips
// only occur while some original bit below the current MSB position still
// differs — located in O(1) with a leading-bit scan.
func (sb *Scoreboard) nextFlip(pat uint32, k int64) int64 {
	last := int64(sb.cfg.Bits) - 1
	if k >= last {
		return -1 // steady state
	}
	i := uint(last - k)       // index of the bit that is MSB after k shifts
	below := pat & (1<<i - 1) // the bits still to rotate into MSB
	if pat>>i&1 == 1 {
		below = ^pat & (1<<i - 1) // MSB is 1: look for the next 0
	}
	if below == 0 {
		return -1
	}
	return last - int64(bits.Len32(below)) + 1
}

// IssueProducer records that a producer of r with the given execution
// latency issued this cycle. Latency must be in the short range; use
// BeginLongLatency otherwise.
func (sb *Scoreboard) IssueProducer(r isa.Reg, latency int) {
	sb.check(r)
	sb.regs[r] = regState{
		read:  sb.Pattern(latency),
		write: sb.basePattern(latency),
		stamp: sb.now,
	}
}

// BeginLongLatency records a producer whose completion time is unknown or
// too large for the shift register (load miss, divider). The register stays
// not-ready until CompleteLongLatency.
func (sb *Scoreboard) BeginLongLatency(r isa.Reg) {
	sb.check(r)
	sb.regs[r] = regState{stamp: sb.now, longPending: true}
}

// CompleteLongLatency signals that the long-latency value of r will be
// available in `remaining` cycles (>= 1), re-arming the shift register as
// if a short producer of that latency issued this cycle (Section 4.1.1:
// "the shift register is updated ... when the value is expected to be
// available in less than B cycles").
func (sb *Scoreboard) CompleteLongLatency(r isa.Reg, remaining int) {
	sb.check(r)
	if !sb.regs[r].longPending {
		panic(fmt.Sprintf("scoreboard: CompleteLongLatency(%v) without pending producer", r))
	}
	if remaining < 1 {
		remaining = 1
	}
	if remaining > sb.MaxShortLatency() {
		panic(fmt.Sprintf("scoreboard: remaining %d exceeds short range %d", remaining, sb.MaxShortLatency()))
	}
	sb.regs[r] = regState{
		read:  sb.Pattern(remaining),
		write: sb.basePattern(remaining),
		stamp: sb.now,
	}
}

// LongPending reports whether r awaits a long-latency completion.
func (sb *Scoreboard) LongPending(r isa.Reg) bool {
	if r == isa.RegNone {
		return false
	}
	return sb.regs[r].longPending // implicit bounds check stands in for check(r)
}

// Flush resets every register to ready (pipeline flush: the in-flight
// producers that set these bits were squashed or will be reinjected).
func (sb *Scoreboard) Flush() {
	all := sb.allOnes()
	for r := range sb.regs {
		sb.regs[r] = regState{read: all, write: all, stamp: sb.now}
	}
}

// ReadView returns the raw read-view register of r (for tests and tracing).
func (sb *Scoreboard) ReadView(r isa.Reg) uint32 {
	sb.check(r)
	e := &sb.regs[r]
	return sb.shiftedView(e.read, sb.now-e.stamp)
}
