// Package scoreboard implements the readiness-control logic of the in-order
// issue stage (Section 4.1): one shift register per logical register, with
// the IRAW-avoidance extension that inserts a stabilization bubble between
// the bypass window and register-file readability.
//
// A producer of latency L issued with B-bit registers sets, from the most
// significant bit: L zeros, then (IRAW mode) `bypass` ones, N zeros, and
// ones to fill — e.g. 0001011 for L=3, bypass=1, N=1 (Figure 8). Registers
// shift left one position per cycle, replicating the least significant bit.
// A consumer may issue only while the MSB of each source's register is 1:
// exactly the cycles in which the value is reachable through the bypass
// network or, later, readable from stabilized bitcells — never the cycles
// in which the RF entry is still stabilizing.
//
// The scoreboard tracks two views per register:
//
//   - the read view (IRAW-extended pattern) gating consumers, and
//   - the write view (baseline pattern, no bubble) gating writers (WAW);
//     overwriting a stabilizing entry is safe (Section 4.4), so writers do
//     not wait out the bubble.
package scoreboard

import (
	"fmt"

	"lowvcc/internal/isa"
)

// Config sizes the scoreboard.
type Config struct {
	// Regs is the number of logical registers tracked.
	Regs int
	// Bits is the shift-register width B. Producers of latency up to
	// B-1-bypass-maxN use the in-register path; longer ones use the
	// long-latency event path (Section 4.1.1).
	Bits int
	// BypassLevels is the depth of the bypass network (ones inserted after
	// the latency zeros in IRAW mode).
	BypassLevels int
}

// DefaultConfig matches the modelled Silverthorne-like core: 16 logical
// registers, 12-bit shift registers, one bypass level.
func DefaultConfig() Config {
	return Config{Regs: isa.NumRegs, Bits: 12, BypassLevels: 1}
}

// Scoreboard is the per-register readiness tracker. Not goroutine-safe.
type Scoreboard struct {
	cfg Config
	n   int // current stabilization cycles (0 = IRAW avoidance off)

	read  []uint32 // IRAW-extended shift registers (bit cfg.Bits-1 is MSB)
	write []uint32 // baseline shift registers (value-availability only)
	// longPending marks registers whose producer's completion will be
	// signalled by an event (load miss, divider) rather than the register.
	longPending []bool

	// ExtraBits is the per-register storage added by the IRAW extension
	// (bypass + max bubble), for the area/energy accounting.
	ExtraBits int
}

// New returns a scoreboard with every register ready.
func New(cfg Config) *Scoreboard {
	if cfg.Regs <= 0 || cfg.Bits <= 1 || cfg.Bits > 31 || cfg.BypassLevels < 0 {
		panic(fmt.Sprintf("scoreboard: invalid config %+v", cfg))
	}
	sb := &Scoreboard{
		cfg:         cfg,
		read:        make([]uint32, cfg.Regs),
		write:       make([]uint32, cfg.Regs),
		longPending: make([]bool, cfg.Regs),
		ExtraBits:   cfg.BypassLevels + 1, // bubble sized for N up to MaxN=1 per level change
	}
	all := sb.allOnes()
	for r := range sb.read {
		sb.read[r] = all
		sb.write[r] = all
	}
	return sb
}

// Config returns the scoreboard configuration.
func (sb *Scoreboard) Config() Config { return sb.cfg }

func (sb *Scoreboard) allOnes() uint32 { return (1 << sb.cfg.Bits) - 1 }

func (sb *Scoreboard) msb() uint32 { return 1 << (sb.cfg.Bits - 1) }

// SetStabilizeCycles reconfigures the stabilization bubble N for the
// current Vcc level (Section 4.1.3). N = 0 disables IRAW avoidance: the
// shift registers are then initialized exactly as in the baseline.
func (sb *Scoreboard) SetStabilizeCycles(n int) {
	if n < 0 || n > sb.MaxN() {
		panic(fmt.Sprintf("scoreboard: N=%d out of range [0,%d]", n, sb.MaxN()))
	}
	sb.n = n
}

// StabilizeCycles returns the configured bubble width N.
func (sb *Scoreboard) StabilizeCycles() int { return sb.n }

// MaxN is the largest bubble the register width can accommodate alongside a
// single-cycle producer and the bypass window.
func (sb *Scoreboard) MaxN() int { return sb.cfg.Bits - 1 - sb.cfg.BypassLevels - 1 }

// MaxShortLatency is the largest producer latency the shift register can
// express with the current bubble; longer producers must use the
// long-latency path.
func (sb *Scoreboard) MaxShortLatency() int {
	if sb.n == 0 {
		return sb.cfg.Bits - 1
	}
	return sb.cfg.Bits - 1 - sb.cfg.BypassLevels - sb.n
}

// Pattern returns the initialization value for a producer of the given
// latency under the current mode, MSB at bit Bits-1. Exposed for tests and
// the documentation tooling.
func (sb *Scoreboard) Pattern(latency int) uint32 {
	if latency < 1 || latency > sb.MaxShortLatency() {
		panic(fmt.Sprintf("scoreboard: latency %d outside short range [1,%d]", latency, sb.MaxShortLatency()))
	}
	bits := make([]byte, 0, sb.cfg.Bits)
	for i := 0; i < latency; i++ {
		bits = append(bits, 0) // (I) producer execution
	}
	if sb.n > 0 {
		for i := 0; i < sb.cfg.BypassLevels; i++ {
			bits = append(bits, 1) // (II) bypass window
		}
		for i := 0; i < sb.n; i++ {
			bits = append(bits, 0) // (III) stabilization bubble
		}
	}
	for len(bits) < sb.cfg.Bits {
		bits = append(bits, 1) // (IV) ready thereafter
	}
	var v uint32
	for _, b := range bits { // bits[0] is the MSB
		v = v<<1 | uint32(b)
	}
	return v
}

// basePattern is the baseline (no-bubble) pattern for the write view.
func (sb *Scoreboard) basePattern(latency int) uint32 {
	return sb.allOnes() >> latency
}

// Shift advances every register by one cycle: shift left, replicate LSB.
// Call once at each cycle boundary before issue decisions.
func (sb *Scoreboard) Shift() {
	mask := sb.allOnes()
	for r := range sb.read {
		sb.read[r] = (sb.read[r]<<1 | sb.read[r]&1) & mask
		sb.write[r] = (sb.write[r]<<1 | sb.write[r]&1) & mask
	}
}

func (sb *Scoreboard) check(r isa.Reg) {
	if int(r) >= sb.cfg.Regs {
		panic(fmt.Sprintf("scoreboard: register %v out of range", r))
	}
}

// ReadReady reports whether a consumer of r may issue this cycle: the MSB
// of the IRAW-extended register is set and no long-latency producer is
// outstanding. Registers never written are always ready.
func (sb *Scoreboard) ReadReady(r isa.Reg) bool {
	if r == isa.RegNone {
		return true
	}
	sb.check(r)
	return !sb.longPending[r] && sb.read[r]&sb.msb() != 0
}

// WriteReady reports whether a new producer of r may issue this cycle
// without a WAW hazard: the previous value is available (baseline view) and
// no long-latency producer is outstanding. The stabilization bubble does
// not block writers — overwriting a stabilizing entry is safe.
func (sb *Scoreboard) WriteReady(r isa.Reg) bool {
	if r == isa.RegNone {
		return true
	}
	sb.check(r)
	return !sb.longPending[r] && sb.write[r]&sb.msb() != 0
}

// IRAWBlocked reports whether a consumer of r is blocked *only* by the
// stabilization bubble: the value is available (a baseline machine would
// issue) but the RF entry is still stabilizing. This distinguishes the
// paper's "13.2% of instructions delayed" statistic from ordinary RAW
// stalls.
func (sb *Scoreboard) IRAWBlocked(r isa.Reg) bool {
	if r == isa.RegNone {
		return false
	}
	sb.check(r)
	if sb.longPending[r] {
		return false
	}
	return sb.read[r]&sb.msb() == 0 && sb.write[r]&sb.msb() != 0
}

// IssueProducer records that a producer of r with the given execution
// latency issued this cycle. Latency must be in the short range; use
// BeginLongLatency otherwise.
func (sb *Scoreboard) IssueProducer(r isa.Reg, latency int) {
	sb.check(r)
	sb.read[r] = sb.Pattern(latency)
	sb.write[r] = sb.basePattern(latency)
	sb.longPending[r] = false
}

// BeginLongLatency records a producer whose completion time is unknown or
// too large for the shift register (load miss, divider). The register stays
// not-ready until CompleteLongLatency.
func (sb *Scoreboard) BeginLongLatency(r isa.Reg) {
	sb.check(r)
	sb.read[r] = 0
	sb.write[r] = 0
	sb.longPending[r] = true
}

// CompleteLongLatency signals that the long-latency value of r will be
// available in `remaining` cycles (>= 1), re-arming the shift register as
// if a short producer of that latency issued this cycle (Section 4.1.1:
// "the shift register is updated ... when the value is expected to be
// available in less than B cycles").
func (sb *Scoreboard) CompleteLongLatency(r isa.Reg, remaining int) {
	sb.check(r)
	if !sb.longPending[r] {
		panic(fmt.Sprintf("scoreboard: CompleteLongLatency(%v) without pending producer", r))
	}
	if remaining < 1 {
		remaining = 1
	}
	if remaining > sb.MaxShortLatency() {
		panic(fmt.Sprintf("scoreboard: remaining %d exceeds short range %d", remaining, sb.MaxShortLatency()))
	}
	sb.read[r] = sb.Pattern(remaining)
	sb.write[r] = sb.basePattern(remaining)
	sb.longPending[r] = false
}

// LongPending reports whether r awaits a long-latency completion.
func (sb *Scoreboard) LongPending(r isa.Reg) bool {
	if r == isa.RegNone {
		return false
	}
	sb.check(r)
	return sb.longPending[r]
}

// Flush resets every register to ready (pipeline flush: the in-flight
// producers that set these bits were squashed or will be reinjected).
func (sb *Scoreboard) Flush() {
	all := sb.allOnes()
	for r := range sb.read {
		sb.read[r] = all
		sb.write[r] = all
		sb.longPending[r] = false
	}
}

// ReadView returns the raw read-view register of r (for tests and tracing).
func (sb *Scoreboard) ReadView(r isa.Reg) uint32 {
	sb.check(r)
	return sb.read[r]
}
