package scoreboard

import (
	"testing"

	"lowvcc/internal/isa"
	"lowvcc/internal/rng"
)

// TestIssueReadySetMatchesSequentialProbes fuzzes the batched ready-set
// probe against its contract: bit i equals a one-slot IssueReady probe of
// slot i taken *after* the issues of every granted older slot are applied,
// and bits stop at the first not-ready slot (in-order issue). The fuzz
// actually applies each granted slot's issue (IssueProducer on its produced
// register, with a random latency) before checking the next bit, so the
// fresh-producer shortcut is held to the mutation it predicts.
func TestIssueReadySetMatchesSequentialProbes(t *testing.T) {
	sb := New(DefaultConfig())
	src := rng.New(0x5E7B17)
	var ops [4]IssueOp
	for i := 0; i < 40000; i++ {
		mutateScoreboard(sb, src)
		n := 1 + src.Intn(len(ops))
		for j := 0; j < n; j++ {
			d := randReg(src)
			prod := d
			if src.Intn(4) == 0 {
				prod = isa.RegNone // store/control shape: no producer
			}
			ops[j] = IssueOp{S1: randReg(src), S2: randReg(src), D: d, Prod: prod}
		}
		mask := sb.IssueReadySet(ops[:n])

		// The two-slot probe is the n=2 special case; hold them together.
		if n >= 2 {
			okA, okB := sb.IssueReadyPair(
				ops[0].S1, ops[0].S2, ops[0].D, ops[0].Prod,
				ops[1].S1, ops[1].S2, ops[1].D)
			pair := uint32(0)
			if okA {
				pair |= 1
			}
			if okB {
				pair |= 2
			}
			if mask&3 != pair {
				t.Fatalf("op %d: set mask %02b disagrees with pair probe %02b", i, mask&3, pair)
			}
		}

		for j := 0; j < n; j++ {
			op := ops[j]
			want := sb.IssueReady(op.S1, op.S2, op.D)
			if got := mask>>uint(j)&1 == 1; got != want {
				t.Fatalf("op %d slot %d/%d: set bit = %v, sequential probe says %v (mask %04b, %+v)",
					i, j, n, got, want, mask, op)
			}
			if !want {
				if rest := mask >> uint(j); rest != 0 {
					t.Fatalf("op %d slot %d: bits %04b set past the first not-ready slot", i, j, mask)
				}
				break
			}
			if op.Prod != isa.RegNone {
				sb.IssueProducer(op.Prod, 1+src.Intn(sb.MaxShortLatency()))
			}
		}
	}
}
