// Package iq implements the instruction queue of the in-order core with the
// IRAW-avoidance issue gate of Section 4.2.
//
// The IQ is itself an SRAM block: allocating an instruction writes an
// entry, and the issue stage reads the ICI oldest entries every cycle
// whether or not they are valid. At low Vcc those writes are interrupted,
// so an entry must not be read for N cycles after allocation. Rather than
// tracking per-entry timers, the hardware gates issue on occupancy:
//
//	issue allowed  <=>  occupancy >= ICI + AI*N
//
// which guarantees the ICI oldest entries are stable even if the AI*N
// youngest are not (allocation is in order). When the pipeline must drain,
// AI*N NOOPs are injected so real instructions can always issue.
package iq

import "fmt"

// Entry is one queue slot. Payload is an opaque instruction handle owned by
// the pipeline; AllocCycle records when the slot was written (used by the
// self-check that the occupancy gate subsumes per-entry stability).
type Entry struct {
	Payload    uint64
	NOOP       bool
	AllocCycle int64
}

// Config sizes the queue and its gate.
type Config struct {
	// Size is the number of IQ entries (32 in the modelled core).
	Size int
	// ICI is the number of oldest instructions considered for issue each
	// cycle (2 in the modelled core: "Intel Silverthorne considers the 2
	// oldest instructions").
	ICI int
	// AI is the allocation rate, instructions per cycle (2).
	AI int
}

// DefaultConfig matches the modelled core.
func DefaultConfig() Config { return Config{Size: 32, ICI: 2, AI: 2} }

// Queue is the instruction queue. Not goroutine-safe.
type Queue struct {
	cfg Config
	n   int // stabilization cycles; 0 disables the gate ("stall issue?" = 0)

	// head and tail are free-running counters; hardware keeps them modulo
	// 2*Size (one extra wrap bit, as in Figure 9, where a '1' is appended
	// to the tail before the subtraction).
	head, tail int64
	ring       []Entry

	// Stats
	GateStalls    uint64 // cycles issue was blocked only by the occupancy gate
	NOOPsInjected uint64
}

// Validate reports whether the configuration is structurally usable. New
// panics on the same conditions (an invariant backstop), so API boundaries
// that accept user-supplied configs — core.New — check here first and
// return the error instead.
func (cfg Config) Validate() error {
	if cfg.Size <= 0 || cfg.ICI <= 0 || cfg.AI <= 0 {
		return fmt.Errorf("iq: invalid config %+v", cfg)
	}
	if cfg.Size&(cfg.Size-1) != 0 {
		return fmt.Errorf("iq: size %d must be a power of two (ring pointer arithmetic)", cfg.Size)
	}
	return nil
}

// New returns an empty queue.
func New(cfg Config) *Queue {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	return &Queue{cfg: cfg, ring: make([]Entry, cfg.Size)}
}

// Config returns the queue configuration.
func (q *Queue) Config() Config { return q.cfg }

// SetStabilizeCycles reconfigures N on a Vcc change. Only N and the
// stall-issue enable change; the threshold ICI + AI*N is recomputed here
// exactly as the Figure 9 logic would (N shifted left once for AI=2).
func (q *Queue) SetStabilizeCycles(n int) {
	if n < 0 {
		panic("iq: negative N")
	}
	q.n = n
}

// StabilizeCycles returns the configured N.
func (q *Queue) StabilizeCycles() int { return q.n }

// Occupancy returns the number of instructions in the queue.
func (q *Queue) Occupancy() int { return int(q.tail - q.head) }

// Free returns the number of empty slots.
func (q *Queue) Free() int { return q.cfg.Size - q.Occupancy() }

// threshold is ICI + AI*N.
func (q *Queue) threshold() int { return q.cfg.ICI + q.cfg.AI*q.n }

// Figure9Occupancy computes the occupancy using the hardware arithmetic of
// Figure 9: a '1' is appended to the left of the 5-bit tail (adding
// IQsize), the head is subtracted, and the uppermost bit of the result is
// discarded (modulo 2*IQsize). It must always agree with Occupancy; a test
// holds the two together.
func (q *Queue) Figure9Occupancy() int {
	size := q.cfg.Size
	tail := int(q.tail) & (size - 1)   // 5-bit tail
	head := int(q.head) & (2*size - 1) // head with wrap bit
	ext := tail | size                 // append '1' to the left: tail + IQsize
	diff := (ext - head) & (2*size - 1)
	return diff % size // discard the uppermost bit
}

// MayIssue reports whether the issue stage may consider instructions this
// cycle. With N = 0 the gate is disabled (the "stall issue?" signal of
// Figure 9 is held at 0) and only emptiness blocks.
func (q *Queue) MayIssue() bool {
	occ := q.Occupancy()
	if occ == 0 {
		return false
	}
	if q.n == 0 {
		return true
	}
	return occ >= q.threshold()
}

// MayIssueTwo reports whether the issue stage may consider BOTH of the two
// oldest instructions this cycle — the dual-issue fast path's gate. The
// second pop sees occupancy one lower, so the occupancy gate must hold at
// occupancy-1 too, exactly as the sequential issue loop would re-check it
// after the first pop.
func (q *Queue) MayIssueTwo() bool {
	occ := q.Occupancy()
	if occ < 2 {
		return false
	}
	return q.n == 0 || occ-1 >= q.threshold()
}

// MayIssueN reports whether the issue stage may consider the k oldest
// instructions this cycle — the width-N generalization of MayIssueTwo
// (MayIssueN(2) is exactly MayIssueTwo, and MayIssueN(1) is MayIssue). The
// j-th pop sees occupancy j lower, so the occupancy gate must hold at
// occupancy-(k-1) too, exactly as the sequential issue loop would re-check
// it after each pop.
func (q *Queue) MayIssueN(k int) bool {
	occ := q.Occupancy()
	if occ < k || k < 1 {
		return false
	}
	return q.n == 0 || occ-(k-1) >= q.threshold()
}

// GateBlocked reports whether issue is blocked *only* by the IRAW gate:
// there are instructions (so a baseline queue would issue) but fewer than
// the threshold. Callers use it for stall attribution.
func (q *Queue) GateBlocked() bool {
	occ := q.Occupancy()
	return occ > 0 && q.n > 0 && occ < q.threshold()
}

// NoteGateStall increments the gate-stall counter (called once per stalled
// cycle by the pipeline, which owns cycle accounting).
func (q *Queue) NoteGateStall() { q.GateStalls++ }

// Alloc appends an instruction allocated at the given cycle. It returns
// false when the queue is full.
func (q *Queue) Alloc(cycle int64, payload uint64) bool {
	if q.Free() == 0 {
		return false
	}
	q.ring[int(q.tail)&(q.cfg.Size-1)] = Entry{Payload: payload, AllocCycle: cycle}
	q.tail++
	return true
}

// InjectNOOPs appends AI*N NOOP entries (the drain mechanism: "whenever the
// pipeline must empty, AI*N NOOP instructions are injected in the IQ to
// ensure all instructions are issued"). Injection is best-effort up to the
// free space, which suffices since draining implies allocation has stopped.
func (q *Queue) InjectNOOPs(cycle int64) int {
	n := q.cfg.AI * q.n
	injected := 0
	for i := 0; i < n && q.Free() > 0; i++ {
		q.ring[int(q.tail)&(q.cfg.Size-1)] = Entry{NOOP: true, AllocCycle: cycle}
		q.tail++
		injected++
	}
	q.NOOPsInjected += uint64(injected)
	return injected
}

// Oldest returns the k-th oldest entry (k = 0 is the head) without
// consuming it, or nil if fewer than k+1 entries exist or k >= ICI (the
// hardware only reads the ICI oldest slots).
func (q *Queue) Oldest(k int) *Entry {
	if k < 0 || k >= q.cfg.ICI || k >= q.Occupancy() {
		return nil
	}
	return &q.ring[int(q.head+int64(k))&(q.cfg.Size-1)]
}

// PopOldest consumes the head entry. It panics if the queue is empty
// (callers must check Oldest first — popping blind is a pipeline bug).
func (q *Queue) PopOldest() Entry {
	if q.Occupancy() == 0 {
		panic("iq: PopOldest on empty queue")
	}
	e := q.ring[int(q.head)&(q.cfg.Size-1)]
	q.head++
	return e
}

// EntriesStable verifies that the ICI oldest entries were allocated at
// least N+1 cycles before `cycle` — i.e. their SRAM writes have stabilized.
// The occupancy gate is supposed to make this always true when MayIssue
// returns true; the pipeline asserts it in debug runs and a property test
// exercises it directly.
func (q *Queue) EntriesStable(cycle int64) bool {
	k := q.cfg.ICI
	if occ := q.Occupancy(); occ < k {
		k = occ
	}
	for i := 0; i < k; i++ {
		e := &q.ring[int(q.head+int64(i))&(q.cfg.Size-1)]
		if cycle < e.AllocCycle+1+int64(q.n) {
			return false
		}
	}
	return true
}

// Flush empties the queue (branch misprediction or exception).
func (q *Queue) Flush() {
	q.head = q.tail
}
