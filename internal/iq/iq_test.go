package iq

import (
	"testing"
	"testing/quick"
)

func TestAllocPopFIFO(t *testing.T) {
	q := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		if !q.Alloc(int64(i), uint64(100+i)) {
			t.Fatalf("alloc %d rejected", i)
		}
	}
	if q.Occupancy() != 10 {
		t.Fatalf("occupancy = %d", q.Occupancy())
	}
	for i := 0; i < 10; i++ {
		e := q.PopOldest()
		if e.Payload != uint64(100+i) {
			t.Fatalf("pop %d = %d, want %d", i, e.Payload, 100+i)
		}
	}
}

func TestAllocRejectsWhenFull(t *testing.T) {
	q := New(Config{Size: 4, ICI: 2, AI: 2})
	for i := 0; i < 4; i++ {
		if !q.Alloc(0, uint64(i)) {
			t.Fatalf("alloc %d rejected early", i)
		}
	}
	if q.Alloc(0, 99) {
		t.Fatal("alloc into full queue accepted")
	}
	q.PopOldest()
	if !q.Alloc(1, 99) {
		t.Fatal("alloc after pop rejected")
	}
}

// TestGateThreshold verifies the Section 4.2 rule: with ICI=2, AI=2, N=1
// issue needs occupancy >= 4.
func TestGateThreshold(t *testing.T) {
	q := New(DefaultConfig())
	q.SetStabilizeCycles(1)
	for occ := 0; occ < 6; occ++ {
		want := occ >= 4
		if got := q.MayIssue(); got != want {
			t.Errorf("occupancy %d: MayIssue = %v, want %v", occ, got, want)
		}
		wantBlocked := occ > 0 && occ < 4
		if got := q.GateBlocked(); got != wantBlocked {
			t.Errorf("occupancy %d: GateBlocked = %v, want %v", occ, got, wantBlocked)
		}
		q.Alloc(int64(occ), uint64(occ))
	}
}

func TestGateDisabledAtN0(t *testing.T) {
	q := New(DefaultConfig())
	q.SetStabilizeCycles(0) // "stall issue?" held at 0
	if q.MayIssue() {
		t.Fatal("empty queue may not issue")
	}
	q.Alloc(0, 1)
	if !q.MayIssue() {
		t.Fatal("single instruction must be issuable with the gate disabled")
	}
	if q.GateBlocked() {
		t.Fatal("GateBlocked with N=0")
	}
}

func TestGateReconfiguration(t *testing.T) {
	q := New(DefaultConfig())
	for i := 0; i < 5; i++ {
		q.Alloc(int64(i), uint64(i))
	}
	q.SetStabilizeCycles(2) // threshold 2 + 2*2 = 6
	if q.MayIssue() {
		t.Fatal("occupancy 5 < threshold 6 must block")
	}
	q.SetStabilizeCycles(1) // threshold 4
	if !q.MayIssue() {
		t.Fatal("occupancy 5 >= threshold 4 must pass")
	}
}

// TestGateImpliesStability is the central property (Section 4.2): whenever
// the gate passes, the ICI oldest entries have stabilized — for any
// interleaving of bounded allocation and issue. Allocation is capped at AI
// per cycle, as the hardware's allocation stage guarantees.
func TestGateImpliesStability(t *testing.T) {
	f := func(script []byte) bool {
		q := New(DefaultConfig())
		q.SetStabilizeCycles(1)
		cycle := int64(0)
		for _, b := range script {
			cycle++
			// Issue phase (reads happen before this cycle's allocations).
			if q.MayIssue() {
				if !q.EntriesStable(cycle) {
					return false // gate passed but an entry was unstable
				}
				issues := int(b>>4) & 3 // 0..3, capped to ICI below
				if issues > q.Config().ICI {
					issues = q.Config().ICI
				}
				for i := 0; i < issues && q.Occupancy() > 0; i++ {
					q.PopOldest()
				}
			}
			// Allocation phase: at most AI per cycle.
			allocs := int(b) & 3
			if allocs > q.Config().AI {
				allocs = q.Config().AI
			}
			for i := 0; i < allocs; i++ {
				q.Alloc(cycle, uint64(b))
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestGateImpliesStabilityN2 repeats the property at N=2 (the "different
// technology nodes" case) where the threshold grows to ICI + 2*AI = 6.
func TestGateImpliesStabilityN2(t *testing.T) {
	q := New(DefaultConfig())
	q.SetStabilizeCycles(2)
	cycle := int64(0)
	for step := 0; step < 1000; step++ {
		cycle++
		if q.MayIssue() {
			if !q.EntriesStable(cycle) {
				t.Fatalf("cycle %d: gate passed with unstable oldest entries", cycle)
			}
			q.PopOldest()
		}
		// Bursty allocation: alternate 2 and 0 per cycle.
		if step%2 == 0 {
			q.Alloc(cycle, 1)
			q.Alloc(cycle, 2)
		}
	}
}

// TestFigure9OccupancyMatches holds the hardware bit-trick arithmetic to
// the reference occupancy across wrap-arounds.
func TestFigure9OccupancyMatches(t *testing.T) {
	q := New(DefaultConfig())
	q.SetStabilizeCycles(1)
	cycle := int64(0)
	for step := 0; step < 5000; step++ {
		cycle++
		if step%3 != 0 && q.Occupancy() > 0 {
			q.PopOldest()
		}
		if step%7 != 2 {
			q.Alloc(cycle, uint64(step))
		}
		if q.Occupancy() < q.Config().Size { // full is ambiguous in 5-bit form
			if got, want := q.Figure9Occupancy(), q.Occupancy(); got != want {
				t.Fatalf("step %d: Figure9Occupancy = %d, want %d", step, got, want)
			}
		}
	}
}

func TestInjectNOOPs(t *testing.T) {
	q := New(DefaultConfig())
	q.SetStabilizeCycles(1)
	q.Alloc(0, 1) // occupancy 1 < threshold 4: stuck without injection
	if q.MayIssue() {
		t.Fatal("should be gate-blocked")
	}
	got := q.InjectNOOPs(1)
	if got != 2 { // AI*N = 2
		t.Fatalf("injected %d NOOPs, want 2", got)
	}
	if q.Occupancy() != 3 {
		t.Fatalf("occupancy = %d, want 3", q.Occupancy())
	}
	// One more round reaches the threshold; the real instruction drains.
	q.InjectNOOPs(2)
	if !q.MayIssue() {
		t.Fatal("still blocked after NOOP injection")
	}
	e := q.PopOldest()
	if e.NOOP || e.Payload != 1 {
		t.Fatalf("drained entry = %+v, want the real instruction", e)
	}
	if q.NOOPsInjected != 4 {
		t.Fatalf("NOOPsInjected = %d, want 4", q.NOOPsInjected)
	}
}

func TestInjectNOOPsRespectsCapacity(t *testing.T) {
	q := New(Config{Size: 4, ICI: 2, AI: 2})
	q.SetStabilizeCycles(2) // wants 4 NOOPs
	q.Alloc(0, 1)
	q.Alloc(0, 2)
	q.Alloc(0, 3)
	if got := q.InjectNOOPs(1); got != 1 {
		t.Fatalf("injected %d, want 1 (only one slot free)", got)
	}
}

func TestOldestWindow(t *testing.T) {
	q := New(DefaultConfig())
	for i := 0; i < 5; i++ {
		q.Alloc(0, uint64(i))
	}
	if e := q.Oldest(0); e == nil || e.Payload != 0 {
		t.Fatalf("Oldest(0) = %+v", e)
	}
	if e := q.Oldest(1); e == nil || e.Payload != 1 {
		t.Fatalf("Oldest(1) = %+v", e)
	}
	// Only the ICI oldest are visible to the issue stage.
	if e := q.Oldest(2); e != nil {
		t.Fatalf("Oldest(2) = %+v, want nil (ICI=2)", e)
	}
	if e := q.Oldest(-1); e != nil {
		t.Fatal("Oldest(-1) returned an entry")
	}
}

func TestFlush(t *testing.T) {
	q := New(DefaultConfig())
	for i := 0; i < 8; i++ {
		q.Alloc(0, uint64(i))
	}
	q.Flush()
	if q.Occupancy() != 0 {
		t.Fatalf("occupancy after flush = %d", q.Occupancy())
	}
	if q.MayIssue() {
		t.Fatal("flushed queue may not issue")
	}
}

func TestPopEmptyPanics(t *testing.T) {
	q := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	q.PopOldest()
}

func TestNewValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Size: 0, ICI: 2, AI: 2},
		{Size: 32, ICI: 0, AI: 2},
		{Size: 32, ICI: 2, AI: 0},
		{Size: 33, ICI: 2, AI: 2}, // not a power of two
	} {
		func() {
			defer func() { recover() }()
			New(cfg)
			t.Errorf("config %+v accepted", cfg)
		}()
	}
}

// TestMayIssueTwoMatchesSequentialGate holds the dual-issue gate to its
// definition: MayIssueTwo is true exactly when MayIssue holds now AND would
// still hold after one pop (the sequential issue loop's re-check for the
// second slot).
// TestMayIssueNMatchesSequentialGate holds the width-N gate to its
// definition: MayIssueN(k) allows k pops exactly when a sequential loop
// re-checking MayIssue after every pop would. MayIssueN(1) must agree with
// MayIssue and MayIssueN(2) with MayIssueTwo.
func TestMayIssueNMatchesSequentialGate(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		for k := 1; k <= 5; k++ {
			q := New(Config{Size: 16, ICI: 4, AI: 2})
			q.SetStabilizeCycles(n)
			for occ := 0; occ <= 16; occ++ {
				got := q.MayIssueN(k)
				probe := *q // pops on a copy of the pointers
				want := true
				for j := 0; j < k; j++ {
					if !probe.MayIssue() {
						want = false
						break
					}
					probe.PopOldest()
				}
				if got != want {
					t.Fatalf("N=%d k=%d occ=%d: MayIssueN = %v, sequential gate says %v", n, k, occ, got, want)
				}
				if k == 1 && got != q.MayIssue() {
					t.Fatalf("N=%d occ=%d: MayIssueN(1) = %v disagrees with MayIssue", n, occ, got)
				}
				if k == 2 && got != q.MayIssueTwo() {
					t.Fatalf("N=%d occ=%d: MayIssueN(2) = %v disagrees with MayIssueTwo", n, occ, got)
				}
				q.Alloc(int64(occ), uint64(occ))
			}
		}
	}
}

func TestMayIssueTwoMatchesSequentialGate(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		q := New(Config{Size: 16, ICI: 2, AI: 2})
		q.SetStabilizeCycles(n)
		for occ := 0; occ <= 16; occ++ {
			got := q.MayIssueTwo()
			want := false
			if q.MayIssue() && q.Occupancy() >= 1 {
				// Simulate the first pop on a copy of the pointers.
				probe := *q
				probe.PopOldest()
				want = probe.MayIssue()
			}
			if got != want {
				t.Fatalf("N=%d occ=%d: MayIssueTwo = %v, sequential gate says %v", n, occ, got, want)
			}
			q.Alloc(int64(occ), uint64(occ))
		}
	}
}
