package cache

import (
	"fmt"
	"sort"

	"lowvcc/internal/sram"
)

// WarmState is the checkpointable snapshot of one cache-like block whose
// state was produced purely by the functional warm path from reset. It
// holds exactly the access-order state of the warm contract — tags, valid
// and dirty bits, LRU recency, settled data — in a canonical form:
//
//   - LRU ticks are renumbered to 1..n by rank (zero stays zero, LRUTick
//     = n). Tick values are a producer artifact (a monotone grant counter);
//     only their ordering is observable, so renumbering makes snapshots
//     byte-comparable no matter how the producing replay was segmented.
//   - Derived summaries (validMask, tagSum, lruOrder, validFrom, the sram
//     ready bounds) are not stored; RestoreWarm recomputes them exactly.
//   - The fault map (disabled lines) is not stored: it is reinstalled
//     deterministically by the core's reset and keys the snapshot instead.
//
// A WarmState is immutable once captured: restores copy out of it, so one
// snapshot is safely shared read-only across any number of cores.
type WarmState struct {
	Tags []uint64
	// Valid and Dirty are bitsets over entries (set*Ways + way).
	Valid []uint64
	Dirty []uint64
	// LRU holds the normalized recency ticks; LRUTick the grant counter
	// (== number of nonzero ticks after normalization).
	LRU     []uint64
	LRUTick uint64
	Data    *sram.WarmState
}

// CaptureWarm snapshots the block's warm state. It fails if the block
// carries any state a pure functional warm-up from a reset core cannot
// produce: port holds, MSHR records, timed fill visibility stamps, or
// timed/corrupt sram state. The live block is not modified.
func (c *Cache) CaptureWarm() (*WarmState, error) {
	if c.holds.max != 0 || c.holds.slots != nil {
		return nil, fmt.Errorf("cache %q: port holds present — not pure warm state", c.cfg.Name)
	}
	if len(c.inflight) != 0 || len(c.inflightOld) != 0 {
		return nil, fmt.Errorf("cache %q: in-flight fill records present — not pure warm state", c.cfg.Name)
	}
	entries := len(c.tags)
	s := &WarmState{
		Tags:  make([]uint64, entries),
		Valid: make([]uint64, (entries+63)/64),
		Dirty: make([]uint64, (entries+63)/64),
		LRU:   make([]uint64, entries),
	}
	copy(s.Tags, c.tags)
	for e := 0; e < entries; e++ {
		want := int64(0)
		if c.valid[e] {
			s.Valid[e/64] |= 1 << (e % 64)
			want = 1
		}
		if c.validFrom[e] != want {
			return nil, fmt.Errorf("cache %q: entry %d validFrom %d is not a warm stamp (want %d)",
				c.cfg.Name, e, c.validFrom[e], want)
		}
		if c.dirty[e] {
			s.Dirty[e/64] |= 1 << (e % 64)
		}
	}
	// Canonical tick renumbering: rank the touched entries by tick (ticks
	// are distinct grants, so the order is total) and renumber 1..n.
	touched := make([]int, 0, entries)
	for e, t := range c.lru {
		if t != 0 {
			touched = append(touched, e)
		}
	}
	sort.Slice(touched, func(i, j int) bool { return c.lru[touched[i]] < c.lru[touched[j]] })
	for rank, e := range touched {
		s.LRU[e] = uint64(rank + 1)
	}
	s.LRUTick = uint64(len(touched))
	data, err := c.data.CaptureWarm()
	if err != nil {
		return nil, fmt.Errorf("cache %q: %w", c.cfg.Name, err)
	}
	s.Data = data
	return s, nil
}

// RestoreWarm loads a warm snapshot into the block, which must be freshly
// reset (empty, with its fault map — if any — already installed). The
// snapshot is only read; every derived summary is recomputed from it. A
// valid entry colliding with a disabled line means the snapshot was built
// under a different fault map and is rejected.
func (c *Cache) RestoreWarm(s *WarmState) error {
	entries := len(c.tags)
	if len(s.Tags) != entries || len(s.LRU) != entries ||
		len(s.Valid) != (entries+63)/64 || len(s.Dirty) != (entries+63)/64 {
		return fmt.Errorf("cache %q: warm snapshot shape mismatch", c.cfg.Name)
	}
	copy(c.tags, s.Tags)
	for e := 0; e < entries; e++ {
		valid := s.Valid[e/64]&(1<<(e%64)) != 0
		if valid && c.disabled[e] {
			return fmt.Errorf("cache %q: warm snapshot holds entry %d, disabled here — fault-map mismatch", c.cfg.Name, e)
		}
		c.valid[e] = valid
		c.dirty[e] = s.Dirty[e/64]&(1<<(e%64)) != 0
		if valid {
			c.validFrom[e] = 1
		} else {
			c.validFrom[e] = 0
		}
		c.lru[e] = s.LRU[e]
	}
	c.lruTick = s.LRUTick
	for set := 0; set < c.cfg.Sets; set++ {
		base := set * c.cfg.Ways
		var vm uint64
		for w := 0; w < c.cfg.Ways; w++ {
			if c.valid[base+w] {
				vm |= 1 << uint(w)
			}
		}
		c.validMask[set] = vm
		if c.tagSum != nil {
			var sum uint64
			for w := 0; w < c.cfg.Ways; w++ {
				sum |= tagFold(c.tags[base+w]) << uint(8*w)
			}
			c.tagSum[set] = sum
		}
		if c.lruPacked {
			// Rebuild the packed recency order: ways sorted by (tick, way)
			// ascending, least-recent in the low nibble — the same ranking
			// touchLRU maintains incrementally. Insertion sort over <= 8
			// ways; ties are only possible on zero ticks, where the ascending
			// way index matches the initial packed order.
			var ways [8]int
			for w := 0; w < c.cfg.Ways; w++ {
				ways[w] = w
				for i := w; i > 0; i-- {
					a, b := ways[i-1], ways[i]
					if c.lru[base+a] < c.lru[base+b] ||
						(c.lru[base+a] == c.lru[base+b] && a < b) {
						break
					}
					ways[i-1], ways[i] = b, a
				}
			}
			var ord uint32
			for i := c.cfg.Ways - 1; i >= 0; i-- {
				ord = ord<<4 | uint32(ways[i])
			}
			c.lruOrder[set] = ord
		}
	}
	if err := c.data.RestoreWarm(s.Data); err != nil {
		return fmt.Errorf("cache %q: %w", c.cfg.Name, err)
	}
	return nil
}

// HierarchyWarmState is the warm snapshot of the whole memory system: the
// five cache blocks' warm states. Everything else a warm replay could have
// touched is provably at its reset value after a pure functional warm-up —
// the integrity oracle stays empty (only timed stores bump line versions,
// and the GC only deletes), the STable, buffers, port holds and data-side
// serialization point never move, and the memos are result-invariant
// caches — so CaptureWarm asserts those invariants instead of serializing
// them, and RestoreWarm re-clears the caches.
type HierarchyWarmState struct {
	IL0, DL0, UL1, ITLB, DTLB *WarmState
}

// CaptureWarm snapshots the hierarchy's warm state, failing if any state
// outside the warm contract has moved since reset.
func (h *Hierarchy) CaptureWarm() (*HierarchyWarmState, error) {
	if h.dFreeAt != 0 {
		return nil, fmt.Errorf("cache: data-side serialization point %d moved — not pure warm state", h.dFreeAt)
	}
	if len(h.lineVer) != 0 {
		return nil, fmt.Errorf("cache: %d oracle version records present — not pure warm state", len(h.lineVer))
	}
	for _, b := range []*Buffer{h.FB, h.WCB} {
		if b.Allocs != 0 || b.holds.max != 0 || b.holds.slots != nil {
			return nil, fmt.Errorf("cache: buffer %q carries allocations — not pure warm state", b.name)
		}
	}
	s := &HierarchyWarmState{}
	var err error
	if s.IL0, err = h.IL0.CaptureWarm(); err != nil {
		return nil, err
	}
	if s.DL0, err = h.DL0.CaptureWarm(); err != nil {
		return nil, err
	}
	if s.UL1, err = h.UL1.CaptureWarm(); err != nil {
		return nil, err
	}
	if s.ITLB, err = h.ITLB.CaptureWarm(); err != nil {
		return nil, err
	}
	if s.DTLB, err = h.DTLB.CaptureWarm(); err != nil {
		return nil, err
	}
	return s, nil
}

// RestoreWarm loads a warm snapshot into the hierarchy, which must be
// freshly reset (fault maps installed, nothing else touched). The
// result-invariant caches (TLB translation memos, warm memos, signature
// memo) are cleared; they repopulate on demand with identical contents.
func (h *Hierarchy) RestoreWarm(s *HierarchyWarmState) error {
	for _, p := range []struct {
		c *Cache
		w *WarmState
	}{{h.IL0, s.IL0}, {h.DL0, s.DL0}, {h.UL1, s.UL1}, {h.ITLB, s.ITLB}, {h.DTLB, s.DTLB}} {
		if p.w == nil {
			return fmt.Errorf("cache: warm snapshot missing block %q", p.c.cfg.Name)
		}
		if err := p.c.RestoreWarm(p.w); err != nil {
			return err
		}
	}
	h.dFreeAt = 0
	h.itlbMemo.valid = false
	h.dtlbMemo.valid = false
	h.warmITLB.valid = false
	h.warmDTLB.valid = false
	h.warmDL0.valid = false
	for i := range h.sigMemo {
		h.sigMemo[i] = sigMemoEntry{}
	}
	clear(h.lineVer)
	return nil
}
