package cache

import (
	"math/rand/v2"
	"testing"
)

// TestBufferHeapEquivalence: the heap-backed Reserve and the reference
// argmin scan are the same function — same grant cycles, same reserved
// entries, same stall counters — over random Reserve/Commit/Acquire
// sequences, IRAW configurations and buffer sizes. The heap's (freeAt,
// index) tie-break must reproduce the scan's strict-< lowest-index choice
// exactly, including when Commit shortens an occupancy (until below the
// current freeAt), which exercises the sift-up half of heapFix.
func TestBufferHeapEquivalence(t *testing.T) {
	for _, entries := range []int{1, 2, 3, 8, 13} {
		for _, iraw := range []struct {
			interrupted, avoid bool
			n                  int
		}{{false, false, 0}, {true, false, 4}, {true, true, 4}, {true, true, 1}} {
			rng := rand.New(rand.NewPCG(uint64(entries), uint64(iraw.n)))
			fast := NewBuffer("fast", entries)
			ref := NewBuffer("ref", entries)
			ref.SetFastPath(false)
			fast.SetIRAW(iraw.interrupted, iraw.n, iraw.avoid)
			ref.SetIRAW(iraw.interrupted, iraw.n, iraw.avoid)

			cycle := int64(0)
			for op := 0; op < 5000; op++ {
				cycle += rng.Int64N(6)
				if rng.IntN(3) == 0 {
					hold := int(rng.Int64N(40))
					gf := fast.Acquire(cycle, hold)
					gr := ref.Acquire(cycle, hold)
					if gf != gr {
						t.Fatalf("entries=%d iraw=%+v op %d: Acquire grant %d != ref %d",
							entries, iraw, op, gf, gr)
					}
				} else {
					sf := fast.Reserve(cycle)
					sr := ref.Reserve(cycle)
					if sf != sr || fast.reserved != ref.reserved {
						t.Fatalf("entries=%d iraw=%+v op %d: Reserve (%d, entry %d) != ref (%d, entry %d)",
							entries, iraw, op, sf, fast.reserved, sr, ref.reserved)
					}
					// Occasionally commit an occupancy ending before the
					// entry's previous freeAt: freeAt decreases, the entry
					// must sift toward the root.
					until := sf + rng.Int64N(60) - 10
					if until < sf {
						until = sf
					}
					fast.Commit(sf, until)
					ref.Commit(sr, until)
				}
				if fast.FullStallCycles != ref.FullStallCycles ||
					fast.FillStallCycles != ref.FillStallCycles ||
					fast.Allocs != ref.Allocs {
					t.Fatalf("entries=%d iraw=%+v op %d: counters diverged: fast {full %d fill %d allocs %d} ref {full %d fill %d allocs %d}",
						entries, iraw, op,
						fast.FullStallCycles, fast.FillStallCycles, fast.Allocs,
						ref.FullStallCycles, ref.FillStallCycles, ref.Allocs)
				}
			}

			// Structural postcondition: pos is the inverse of order and the
			// heap invariant holds.
			for i := int32(0); i < int32(entries); i++ {
				if fast.pos[fast.order[i]] != i {
					t.Fatalf("entries=%d: pos/order out of sync at heap slot %d", entries, i)
				}
				if i > 0 && fast.heapLess(fast.order[i], fast.order[(i-1)/2]) {
					t.Fatalf("entries=%d: heap invariant violated at slot %d", entries, i)
				}
			}
		}
	}
}
