package cache

import (
	"testing"

	"lowvcc/internal/stable"
)

func testHierarchy(t *testing.T, mode TimingMode) *Hierarchy {
	t.Helper()
	h := MustNewHierarchy(DefaultHierarchyConfig())
	h.SetMode(mode)
	return h
}

var safeIRAW = TimingMode{Interrupted: true, N: 1, Avoid: true, MemCycles: 60}
var baselineMode = TimingMode{Interrupted: false, N: 0, Avoid: false, MemCycles: 40}

func TestLoadMissThenHit(t *testing.T) {
	h := testHierarchy(t, baselineMode)
	r1 := h.Load(100, 0x10000000)
	if !r1.Missed {
		t.Fatal("cold load hit")
	}
	if r1.ReadyCycle <= 100 {
		t.Fatalf("miss ready at %d", r1.ReadyCycle)
	}
	r2 := h.Load(r1.ReadyCycle+5, 0x10000000)
	if r2.Missed {
		t.Fatal("warm load missed")
	}
}

func TestLoadMergesInFlightMiss(t *testing.T) {
	h := testHierarchy(t, baselineMode)
	r1 := h.Load(100, 0x10000000)
	r2 := h.Load(101, 0x10000008) // same line, while in flight
	if !r2.Missed {
		t.Fatal("expected merged miss")
	}
	if r2.ReadyCycle > r1.ReadyCycle {
		t.Fatalf("merged miss completes at %d after the original %d", r2.ReadyCycle, r1.ReadyCycle)
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	h := testHierarchy(t, safeIRAW)
	// Warm the line, then store and load the same word immediately.
	h.Load(100, 0x10000040)
	sr := h.CommitStore(300, 0x10000040, 42)
	lr := h.Load(sr.DoneCycle+1, 0x10000040)
	if !lr.STableForward {
		t.Fatal("immediate load after store not forwarded by the STable")
	}
	if lr.CorruptConsumed {
		t.Fatal("forwarded load consumed corrupt data")
	}
	if h.Stats().STableForwards != 1 {
		t.Fatalf("STableForwards = %d", h.Stats().STableForwards)
	}
}

func TestSetMatchRepairsCollateral(t *testing.T) {
	h := testHierarchy(t, safeIRAW)
	setBits := uint64(h.DL0.Config().LineBytes * h.DL0.Config().Sets)
	a := uint64(0x10000040)
	b := a + setBits // same DL0 set, different line
	h.Load(100, a)
	h.Load(300, b)
	// Store to a, then immediately load b: set-only match; the set read
	// destroys a's stabilizing entry, the replay repairs it.
	sr := h.CommitStore(500, a, 7)
	lr := h.Load(sr.DoneCycle+1, b)
	if lr.CorruptConsumed {
		t.Fatal("set-match load consumed corrupt data")
	}
	if lr.ReplayStall == 0 {
		t.Fatal("set match did not trigger a replay")
	}
	if h.Stats().IntegrityErrors != 0 {
		t.Fatalf("unrepaired destruction: %+v", h.Stats())
	}
	// After the windows close, a's data is intact.
	lr2 := h.Load(sr.DoneCycle+10, a)
	if lr2.CorruptConsumed || lr2.Missed {
		t.Fatalf("repaired line wrong: %+v", lr2)
	}
}

func TestUnsafeModeCorrupts(t *testing.T) {
	h := testHierarchy(t, TimingMode{Interrupted: true, N: 1, Avoid: false, MemCycles: 60})
	h.Load(100, 0x10000040)
	sr := h.CommitStore(300, 0x10000040, 9)
	lr := h.Load(sr.DoneCycle+1, 0x10000040) // inside the window, no STable
	if !lr.CorruptConsumed {
		t.Fatal("unsafe in-window load did not consume corrupt data")
	}
	if h.ViolationReads() == 0 {
		t.Fatal("no violations recorded in unsafe mode")
	}
}

func TestFillStallAfterMiss(t *testing.T) {
	h := testHierarchy(t, safeIRAW)
	r1 := h.Load(100, 0x10000000)
	fillCycle := r1.ReadyCycle
	// An access to the DL0 right at the fill completes only after the
	// stabilization window (ports held).
	if !h.DL0.Busy(fillCycle) || !h.DL0.Busy(fillCycle+1) {
		t.Fatal("DL0 ports not held through the fill window")
	}
	if h.DL0.Busy(fillCycle + 2) {
		t.Fatal("DL0 ports held too long")
	}
}

func TestTLBWalkCounted(t *testing.T) {
	h := testHierarchy(t, baselineMode)
	h.Load(100, 0x10000000)
	if h.Stats().TLBWalks != 1 {
		t.Fatalf("TLBWalks = %d, want 1", h.Stats().TLBWalks)
	}
	h.Load(200, 0x10000100) // same page
	if h.Stats().TLBWalks != 1 {
		t.Fatalf("TLBWalks = %d after same-page access", h.Stats().TLBWalks)
	}
}

func TestFetchMissAndWalk(t *testing.T) {
	h := testHierarchy(t, baselineMode)
	fr := h.FetchInst(100, 0x400000)
	if !fr.Missed || !fr.Walked {
		t.Fatalf("cold fetch = %+v, want miss+walk", fr)
	}
	fr2 := h.FetchInst(fr.ReadyCycle+2, 0x400000)
	if fr2.Missed {
		t.Fatal("warm fetch missed")
	}
}

func TestDSideSerialization(t *testing.T) {
	// A load delayed by a TLB walk pushes the next access behind it: DL0
	// access times are monotone in program order (the single LSU).
	h := testHierarchy(t, baselineMode)
	r1 := h.Load(100, 0x10000000) // walks the DTLB (+30 cycles)
	r2 := h.Load(101, 0x11000000) // different page: walks again
	if r2.ReadyCycle <= r1.ReadyCycle-60 {
		t.Fatalf("second load overtook the first: %d vs %d", r2.ReadyCycle, r1.ReadyCycle)
	}
}

func TestWriteAllocateStore(t *testing.T) {
	h := testHierarchy(t, safeIRAW)
	sr := h.CommitStore(100, 0x10000200, 5)
	if !sr.Missed {
		t.Fatal("cold store did not miss")
	}
	// The line is now present and dirty; a later load hits.
	lr := h.Load(sr.DoneCycle+10, 0x10000200)
	if lr.Missed {
		t.Fatal("load after write-allocate missed")
	}
}

func TestDirtyEvictionThroughWCB(t *testing.T) {
	h := testHierarchy(t, baselineMode)
	ways := h.DL0.Config().Ways
	setBits := uint64(h.DL0.Config().LineBytes * h.DL0.Config().Sets)
	// Dirty one line, then evict it by filling ways+1 lines of its set.
	h.CommitStore(100, 0x10000000, 1)
	cycle := int64(1000)
	for i := 1; i <= ways; i++ {
		h.Load(cycle, 0x10000000+uint64(i)*setBits)
		cycle += 200
	}
	if h.WCB.Allocs == 0 {
		t.Fatal("dirty eviction never used the WCB/EB")
	}
}

func TestModeValidation(t *testing.T) {
	h := testHierarchy(t, baselineMode)
	for _, m := range []TimingMode{
		{Interrupted: true, N: 0, Avoid: true, MemCycles: 10},
		{Interrupted: true, N: 99, Avoid: true, MemCycles: 10},
		{Interrupted: false, N: 0, Avoid: false, MemCycles: 0},
	} {
		func() {
			defer func() { recover() }()
			h.SetMode(m)
			t.Errorf("mode %+v accepted", m)
		}()
	}
}

func TestSTableDisabledWithoutAvoidance(t *testing.T) {
	h := testHierarchy(t, baselineMode)
	if h.STab.Active() != 0 {
		t.Fatal("STable active at baseline")
	}
	h.SetMode(safeIRAW)
	if h.STab.Active() == 0 {
		t.Fatal("STable inactive under IRAW avoidance")
	}
	_ = stable.MatchNone // keep the import for the match-kind reference
}

func TestViolationAccountingCleanAtBaseline(t *testing.T) {
	h := testHierarchy(t, baselineMode)
	cycle := int64(100)
	for i := 0; i < 200; i++ {
		h.Load(cycle, 0x10000000+uint64(i*8))
		cycle += 3
		h.CommitStore(cycle, 0x10000000+uint64(i*8), uint64(i))
		cycle += 3
	}
	if v := h.ViolationReads(); v != 0 {
		t.Fatalf("baseline violations = %d", v)
	}
	if h.Stats().CorruptConsumed != 0 || h.Stats().IntegrityErrors != 0 {
		t.Fatalf("baseline corruption: %+v", h.Stats())
	}
}

// TestTLBMemoEquivalence drives identical deterministic access sequences
// through a memoizing and a memo-disabled hierarchy — in baseline and safe
// IRAW timing, with page reuse, page changes, walks, and port holds from
// fills — and requires every returned timing and every counter to match:
// the per-page translation memo must be invisible.
func TestTLBMemoEquivalence(t *testing.T) {
	for _, mode := range []TimingMode{baselineMode, safeIRAW} {
		memo := testHierarchy(t, mode)
		plain := testHierarchy(t, mode)
		plain.noTLBMemo = true

		// xorshift keeps the sequence deterministic without test deps.
		state := uint64(0x9E3779B97F4A7C15)
		next := func() uint64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return state
		}

		cycle := int64(100)
		for i := 0; i < 4000; i++ {
			r := next()
			// Cluster addresses on few pages so same-page repeats dominate
			// (the memo's case), with occasional far pages forcing walks.
			page := uint64(0x10000000) + (r%6)*4096
			if r%37 == 0 {
				page = uint64(0x40000000) + (r%1024)*4096
			}
			addr := page + (next() % 4096 &^ 7)
			pc := uint64(0x00400000) + (r % 3 * 4096) + (next() % 2048 &^ 3)

			switch r % 4 {
			case 0, 1:
				a, b := memo.Load(cycle, addr), plain.Load(cycle, addr)
				if a != b {
					t.Fatalf("mode %+v op %d: Load(%d, %#x) = %+v vs %+v", mode, i, cycle, addr, a, b)
				}
			case 2:
				a, b := memo.CommitStore(cycle, addr, r), plain.CommitStore(cycle, addr, r)
				if a != b {
					t.Fatalf("mode %+v op %d: CommitStore(%d, %#x) = %+v vs %+v", mode, i, cycle, addr, a, b)
				}
			case 3:
				a, b := memo.FetchInst(cycle, pc), plain.FetchInst(cycle, pc)
				if a != b {
					t.Fatalf("mode %+v op %d: FetchInst(%d, %#x) = %+v vs %+v", mode, i, cycle, pc, a, b)
				}
			}
			cycle += int64(next() % 4) // mostly adjacent cycles, some repeats-in-place pressure
			if memo.Stats() != plain.Stats() {
				t.Fatalf("mode %+v op %d: hierarchy stats diverge:\nmemo:  %+v\nplain: %+v",
					mode, i, memo.Stats(), plain.Stats())
			}
			for j, pair := range [][2]*Cache{
				{memo.ITLB, plain.ITLB}, {memo.DTLB, plain.DTLB},
				{memo.IL0, plain.IL0}, {memo.DL0, plain.DL0}, {memo.UL1, plain.UL1},
			} {
				if pair[0].Stats() != pair[1].Stats() {
					t.Fatalf("mode %+v op %d: block %d stats diverge:\nmemo:  %+v\nplain: %+v",
						mode, i, j, pair[0].Stats(), pair[1].Stats())
				}
			}
		}
	}
}
