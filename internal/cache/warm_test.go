package cache

import (
	"testing"
)

// TestWarmFillVisibleToTimedLookup: a warm-filled line hits a timed Lookup
// from the next cycle on, and its data reads back clean with the signature
// the fill wrote — the handoff contract between warm replay and the timed
// engine.
func TestWarmFillVisibleToTimedLookup(t *testing.T) {
	c := MustNew(Config{Name: "T", Sets: 8, Ways: 4, LineBytes: 64})
	c.SetIRAW(true, 3, true) // IRAW mode must not leak into warm writes
	const addr = 0x4040
	_, way, _, _, ok := c.WarmFill(0, addr, 0xDEADBEEF)
	if !ok {
		t.Fatal("warm fill rejected")
	}
	w, hit := c.Lookup(1, addr)
	if !hit || w != way {
		t.Fatalf("timed lookup after warm fill: hit=%v way=%d (installed %d)", hit, w, way)
	}
	sig, okRead := c.ReadData(1, c.SetOf(addr), w)
	if !okRead || sig != 0xDEADBEEF {
		t.Fatalf("warm-filled data reads (sig=%x, ok=%v), want clean 0xDEADBEEF", sig, okRead)
	}
	// Timing-free contract: the fill held no ports even under IRAW mode.
	for cyc := int64(0); cyc < 8; cyc++ {
		if c.Busy(cyc) {
			t.Fatalf("warm fill held ports at cycle %d", cyc)
		}
	}
	if s := c.Stats(); s.Accesses != 1 || s.Fills != 0 {
		// The single access is the timed Lookup above.
		t.Fatalf("warm fill moved statistics: %+v", s)
	}
}

// TestWarmLookupTouchesLRU: warm hits move recency exactly as timed hits
// do, so victim selection after a replay matches the replayed access order.
func TestWarmLookupTouchesLRU(t *testing.T) {
	c := MustNew(Config{Name: "T", Sets: 1, Ways: 2, LineBytes: 64})
	a0, a1, a2 := uint64(0x000), uint64(0x100), uint64(0x200)
	c.WarmFill(0, a0, 0)
	c.WarmFill(0, a1, 0)
	// Touch a0 so a1 becomes LRU.
	if _, hit := c.WarmLookup(a0); !hit {
		t.Fatal("warm lookup missed an installed line")
	}
	victim, _, _, evicted, ok := c.WarmFill(0, a2, 0)
	if !ok || !evicted || victim != a1 {
		t.Fatalf("warm eviction picked %x (evicted=%v), want LRU %x", victim, evicted, a1)
	}
}

// TestWarmStoreIntegrity: a store warmed functionally leaves the DL0 entry
// dirty and signature-consistent, so a timed load over it verifies clean.
func TestWarmStoreIntegrity(t *testing.T) {
	h := MustNewHierarchy(DefaultHierarchyConfig())
	h.SetMode(TimingMode{Interrupted: true, N: 2, Avoid: true, MemCycles: 50})
	const addr = 0x1000_0040
	h.WarmStore(0, addr)
	res := h.Load(1, addr)
	if res.Missed {
		t.Fatal("timed load missed a warm-stored line")
	}
	if s := h.Stats(); s.IntegrityErrors != 0 || s.CorruptConsumed != 0 {
		t.Fatalf("warm store broke integrity: %+v", s)
	}
	// The dirty mark must survive into eviction accounting: overfill the
	// set and watch the dirty evict.
	set := h.DL0.SetOf(addr)
	ways := h.DL0.Config().Ways
	for i := 1; i <= ways; i++ {
		h.WarmLoad(0, addr+uint64(i*64*h.DL0.Config().Sets))
		_ = set
	}
	if evicts := h.DL0.Stats().DirtyEvicts; evicts != 0 {
		t.Fatalf("warm accesses moved eviction statistics: %d", evicts)
	}
}

// TestWarmLeavesNoTimingState: the full warm access mix leaves statistics,
// port holds, MSHR records and the STable untouched.
func TestWarmLeavesNoTimingState(t *testing.T) {
	h := MustNewHierarchy(DefaultHierarchyConfig())
	h.SetMode(TimingMode{Interrupted: true, N: 2, Avoid: true, MemCycles: 50})
	for i := 0; i < 2000; i++ {
		pc := uint64(0x40_0000 + i*64)
		addr := uint64(0x1000_0000 + i*64)
		h.WarmFetch(0, pc)
		h.WarmLoad(0, addr)
		h.WarmStore(0, addr+8)
	}
	if s := (HierarchyStats{}); h.Stats() != s {
		t.Fatalf("warm accesses moved hierarchy statistics: %+v", h.Stats())
	}
	for _, c := range []*Cache{h.IL0, h.DL0, h.UL1, h.ITLB, h.DTLB} {
		if s := c.Stats(); s.Accesses != 0 || s.Fills != 0 || s.FillStallCycles != 0 {
			t.Fatalf("%s: warm accesses moved statistics: %+v", c.Config().Name, s)
		}
		for cyc := int64(0); cyc < 16; cyc++ {
			if c.Busy(cyc) {
				t.Fatalf("%s: warm access held ports at cycle %d", c.Config().Name, cyc)
			}
		}
		if _, inflight := c.InFlightReady(0x1000_0000, 0); inflight {
			t.Fatalf("%s: warm access registered an in-flight fill", c.Config().Name)
		}
	}
	for _, e := range h.STab.Entries() {
		if e.Valid {
			t.Fatal("warm store entered the STable")
		}
	}
}

// TestOracleGCBounded: the integrity oracle's version map stays at DL0 size
// under streaming store traffic on BOTH lookup paths — the
// fast-path-disabled reference previously grew one record per line ever
// stored (the ROADMAP open item this pins down).
func TestOracleGCBounded(t *testing.T) {
	for _, fast := range []bool{true, false} {
		h := MustNewHierarchy(DefaultHierarchyConfig())
		h.SetFastPaths(fast)
		h.SetMode(TimingMode{MemCycles: 20})
		dl0Lines := h.DL0.Config().Sets * h.DL0.Config().Ways
		cycle := int64(0)
		const distinct = 4000 // >10x the DL0's 384 lines
		for i := 0; i < distinct; i++ {
			addr := uint64(0x1000_0000) + uint64(i)*64
			res := h.CommitStore(cycle, addr, uint64(i))
			cycle = res.DoneCycle + 50
		}
		if got := h.OracleLines(); got > dl0Lines {
			t.Errorf("fast=%v: %d live oracle records after %d distinct stored lines (DL0 holds %d)",
				fast, got, distinct, dl0Lines)
		}
		// The GC must not break integrity: re-load a recent line cleanly.
		if s := h.Stats(); s.IntegrityErrors != 0 {
			t.Errorf("fast=%v: integrity errors under streaming stores: %d", fast, s.IntegrityErrors)
		}
	}
}
