package cache

import (
	"testing"

	"lowvcc/internal/rng"
)

// fastSlowPair builds two identically configured hierarchies, one with every
// fast path disabled (the pre-summary reference), both in the given mode.
func fastSlowPair(t *testing.T, mode TimingMode) (fast, slow *Hierarchy) {
	t.Helper()
	fast = MustNewHierarchy(DefaultHierarchyConfig())
	slow = MustNewHierarchy(DefaultHierarchyConfig())
	slow.SetFastPaths(false)
	fast.SetMode(mode)
	slow.SetMode(mode)
	return fast, slow
}

// compareHierarchies asserts every observable counter of the two
// hierarchies matches.
func compareHierarchies(t *testing.T, tag string, fast, slow *Hierarchy) {
	t.Helper()
	if fast.Stats() != slow.Stats() {
		t.Fatalf("%s: hierarchy stats diverge:\nfast: %+v\nslow: %+v", tag, fast.Stats(), slow.Stats())
	}
	for _, pair := range []struct {
		name string
		f, s *Cache
	}{
		{"IL0", fast.IL0, slow.IL0}, {"DL0", fast.DL0, slow.DL0},
		{"UL1", fast.UL1, slow.UL1}, {"ITLB", fast.ITLB, slow.ITLB},
		{"DTLB", fast.DTLB, slow.DTLB},
	} {
		if pair.f.Stats() != pair.s.Stats() {
			t.Fatalf("%s: %s stats diverge:\nfast: %+v\nslow: %+v", tag, pair.name, pair.f.Stats(), pair.s.Stats())
		}
		if pair.f.Data().Stats() != pair.s.Data().Stats() {
			t.Fatalf("%s: %s sram stats diverge:\nfast: %+v\nslow: %+v",
				tag, pair.name, pair.f.Data().Stats(), pair.s.Data().Stats())
		}
	}
	if fast.STab.Stats() != slow.STab.Stats() {
		t.Fatalf("%s: STable stats diverge:\nfast: %+v\nslow: %+v", tag, fast.STab.Stats(), slow.STab.Stats())
	}
	if fast.ViolationReads() != slow.ViolationReads() {
		t.Fatalf("%s: violation reads %d vs %d", tag, fast.ViolationReads(), slow.ViolationReads())
	}
	if fast.CollateralDestructions() != slow.CollateralDestructions() {
		t.Fatalf("%s: collateral %d vs %d", tag, fast.CollateralDestructions(), slow.CollateralDestructions())
	}
}

// TestHierarchyFastSlowEquivalence drives identical access sequences
// through a fast-path and a fast-path-disabled hierarchy and requires every
// returned timing and every counter to be bit-identical. The sequence is
// tuned to exercise exactly the states the cached set state summarizes:
// store bursts followed by same-set loads (STable replays, full and
// set-only matches), unsafe IRAW windows (scrambled bitcells, so the
// per-set corrupt counts and violation paths engage), tight same-set
// conflict traffic (victim selection from the packed LRU order), and page
// churn (TLB walk fills).
func TestHierarchyFastSlowEquivalence(t *testing.T) {
	modes := []TimingMode{
		{Interrupted: false, N: 0, Avoid: false, MemCycles: 40}, // baseline
		{Interrupted: true, N: 1, Avoid: true, MemCycles: 60},   // safe IRAW
		{Interrupted: true, N: 3, Avoid: true, MemCycles: 90},   // deep windows
		{Interrupted: true, N: 2, Avoid: false, MemCycles: 60},  // unsafe: scrambles
	}
	for mi, mode := range modes {
		fast, slow := fastSlowPair(t, mode)
		src := rng.New(0xFA57 + uint64(mi))

		// setStride maps two addresses to the same DL0 set.
		setStride := uint64(fast.DL0.Config().LineBytes * fast.DL0.Config().Sets)
		cycle := int64(100)
		for i := 0; i < 6000; i++ {
			r := src.Uint64()
			// Cluster data within few sets and pages so same-set replays,
			// conflict evictions and STable matches are frequent; the
			// occasional far page forces walks and TLB victim churn.
			base := uint64(0x10000000) + r%8*64 + r%3*setStride
			if r%41 == 0 {
				base = uint64(0x40000000) + r%512*4096
			}
			addr := base &^ 7
			pc := uint64(0x00400000) + r%5*4096 + (src.Uint64()%2048)&^3

			switch r % 8 {
			case 0, 1, 2:
				a, b := fast.Load(cycle, addr), slow.Load(cycle, addr)
				if a != b {
					t.Fatalf("mode %d op %d: Load(%d, %#x) = %+v vs %+v", mi, i, cycle, addr, a, b)
				}
			case 3, 4, 5:
				a, b := fast.CommitStore(cycle, addr, r), slow.CommitStore(cycle, addr, r)
				if a != b {
					t.Fatalf("mode %d op %d: CommitStore(%d, %#x) = %+v vs %+v", mi, i, cycle, addr, a, b)
				}
			default:
				a, b := fast.FetchInst(cycle, pc), slow.FetchInst(cycle, pc)
				if a != b {
					t.Fatalf("mode %d op %d: FetchInst(%d, %#x) = %+v vs %+v", mi, i, cycle, pc, a, b)
				}
			}
			cycle += int64(r % 3) // adjacent cycles keep stabilization windows hot
			if i%64 == 0 {
				compareHierarchies(t, "mid-run", fast, slow)
			}
		}
		compareHierarchies(t, "final", fast, slow)
		if mode.Avoid && fast.Stats().IntegrityErrors != 0 {
			t.Fatalf("mode %d: integrity errors under avoidance: %+v", mi, fast.Stats())
		}
	}
}

// TestHierarchyFastSlowEquivalenceFaultyBits repeats the fast-vs-slow fuzz
// with Faulty-Bits fault maps installed: disabled ways exercise the
// disabledMask summaries in Lookup and Victim (including fully disabled
// sets, which bypass caching) while STable replays run on top.
func TestHierarchyFastSlowEquivalenceFaultyBits(t *testing.T) {
	fast, slow := fastSlowPair(t, TimingMode{Interrupted: true, N: 2, Avoid: true, MemCycles: 60})
	// Identical fault maps on both sides: fork per block from twin sources.
	fsrc, ssrc := rng.New(0xFAB), rng.New(0xFAB)
	for _, pair := range [][2]*Cache{
		{fast.IL0, slow.IL0}, {fast.DL0, slow.DL0}, {fast.UL1, slow.UL1},
		{fast.ITLB, slow.ITLB}, {fast.DTLB, slow.DTLB},
	} {
		// A high failure probability makes fully disabled sets likely.
		df := pair[0].DisableFaultyLines(fsrc.Fork(), 0.4)
		ds := pair[1].DisableFaultyLines(ssrc.Fork(), 0.4)
		if df != ds {
			t.Fatalf("fault maps diverge: %d vs %d disabled", df, ds)
		}
	}

	src := rng.New(0xB17F)
	setStride := uint64(fast.DL0.Config().LineBytes * fast.DL0.Config().Sets)
	cycle := int64(50)
	for i := 0; i < 6000; i++ {
		r := src.Uint64()
		addr := (uint64(0x20000000) + r%16*64 + r%4*setStride) &^ 7
		pc := uint64(0x00800000) + r%3*4096 + (src.Uint64()%1024)&^3
		switch r % 7 {
		case 0, 1, 2:
			a, b := fast.Load(cycle, addr), slow.Load(cycle, addr)
			if a != b {
				t.Fatalf("op %d: Load = %+v vs %+v", i, a, b)
			}
		case 3, 4:
			a, b := fast.CommitStore(cycle, addr, r), slow.CommitStore(cycle, addr, r)
			if a != b {
				t.Fatalf("op %d: CommitStore = %+v vs %+v", i, a, b)
			}
		default:
			a, b := fast.FetchInst(cycle, pc), slow.FetchInst(cycle, pc)
			if a != b {
				t.Fatalf("op %d: FetchInst = %+v vs %+v", i, a, b)
			}
		}
		cycle += int64(r % 4)
		if i%64 == 0 {
			compareHierarchies(t, "faulty mid-run", fast, slow)
		}
	}
	compareHierarchies(t, "faulty final", fast, slow)
}

// TestVictimMatchesTickScan pins the packed-LRU victim choice to the tick
// scan on one cache with randomized fills, hits and disables.
func TestVictimMatchesTickScan(t *testing.T) {
	fast := MustNew(Config{Name: "V", Sets: 4, Ways: 6, LineBytes: 64})
	slow := MustNew(Config{Name: "V", Sets: 4, Ways: 6, LineBytes: 64})
	slow.SetFastPaths(false)
	fsrc, ssrc := rng.New(7), rng.New(7)
	fast.DisableFaultyLines(fsrc, 0.15)
	slow.DisableFaultyLines(ssrc, 0.15)

	src := rng.New(0x1CC)
	cycle := int64(10)
	for i := 0; i < 20000; i++ {
		addr := uint64(src.Intn(64)) * 64 // 64 lines over 4 sets
		switch src.Intn(3) {
		case 0:
			fw, fok := fast.Victim(addr)
			sw, sok := slow.Victim(addr)
			if fw != sw || fok != sok {
				t.Fatalf("op %d: Victim(%#x) = (%d,%v) vs (%d,%v)", i, addr, fw, fok, sw, sok)
			}
		case 1:
			fa, fd, fe, fok := fast.Fill(cycle, addr, 0xABC)
			sa, sd, se, sok := slow.Fill(cycle, addr, 0xABC)
			if fa != sa || fd != sd || fe != se || fok != sok {
				t.Fatalf("op %d: Fill(%#x) diverges", i, addr)
			}
		default:
			fw, fh := fast.Lookup(cycle, addr)
			sw, sh := slow.Lookup(cycle, addr)
			if fw != sw || fh != sh {
				t.Fatalf("op %d: Lookup(%#x) = (%d,%v) vs (%d,%v)", i, addr, fw, fh, sw, sh)
			}
		}
		cycle += int64(src.Intn(3))
	}
	if fast.Stats() != slow.Stats() {
		t.Fatalf("stats diverge:\nfast: %+v\nslow: %+v", fast.Stats(), slow.Stats())
	}
}
