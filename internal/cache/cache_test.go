package cache

import (
	"testing"
	"testing/quick"

	"lowvcc/internal/rng"
)

func testCache(t *testing.T) *Cache {
	t.Helper()
	return MustNew(Config{Name: "t", Sets: 8, Ways: 2, LineBytes: 64})
}

func TestLookupMissThenFillHit(t *testing.T) {
	c := testCache(t)
	if _, hit := c.Lookup(10, 0x1000); hit {
		t.Fatal("empty cache hit")
	}
	c.Fill(20, 0x1000, 7)
	if _, hit := c.Lookup(21, 0x1000); !hit {
		t.Fatal("filled line missed")
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Misses != 1 || s.Hits != 1 || s.Fills != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFillNotVisibleBeforeCompletion(t *testing.T) {
	// A fill stamped at a future cycle (miss completion) must not hit
	// earlier: the data is still in flight.
	c := testCache(t)
	c.Fill(100, 0x2000, 1)
	if _, hit := c.Lookup(50, 0x2000); hit {
		t.Fatal("in-flight fill visible before completion")
	}
	if _, hit := c.Lookup(100, 0x2000); hit {
		t.Fatal("fill visible during its write cycle")
	}
	if _, hit := c.Lookup(101, 0x2000); !hit {
		t.Fatal("fill invisible after completion")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := testCache(t)                                         // 2 ways
	a, b, d := uint64(0x0000), uint64(0x4000), uint64(0x8000) // same set 0
	c.Fill(10, a, 1)
	c.Fill(20, b, 2)
	c.Lookup(30, a) // touch a: b becomes LRU
	victim, _, evicted, ok := c.Fill(40, d, 3)
	if !ok || !evicted {
		t.Fatalf("fill did not evict (ok=%v evicted=%v)", ok, evicted)
	}
	if victim != b {
		t.Fatalf("evicted %#x, want LRU %#x", victim, b)
	}
	if !c.Peek(a) || c.Peek(b) || !c.Peek(d) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	c := testCache(t)
	c.Fill(10, 0x0000, 1)
	way, hit := c.Lookup(11, 0x0000)
	if !hit {
		t.Fatal("miss")
	}
	c.MarkDirty(c.SetOf(0x0000), way)
	c.Fill(20, 0x4000, 2)
	_, dirty, evicted, _ := c.Fill(30, 0x8000, 3)
	if !evicted || !dirty {
		t.Fatalf("dirty eviction not reported (evicted=%v dirty=%v)", evicted, dirty)
	}
	if c.Stats().DirtyEvicts != 1 {
		t.Fatalf("DirtyEvicts = %d", c.Stats().DirtyEvicts)
	}
}

func TestPortHoldWindows(t *testing.T) {
	c := testCache(t)
	c.SetIRAW(true, 2, true)
	c.Fill(100, 0x1000, 1) // holds [100, 102]
	if !c.Busy(100) || !c.Busy(102) {
		t.Fatal("ports not held during stabilization window")
	}
	if c.Busy(99) || c.Busy(103) {
		t.Fatal("ports held outside the window")
	}
	if got := c.WaitPorts(101); got != 103 {
		t.Fatalf("WaitPorts(101) = %d, want 103", got)
	}
	if c.Stats().FillStallCycles != 2 {
		t.Fatalf("FillStallCycles = %d, want 2", c.Stats().FillStallCycles)
	}
	// A future window must not block the present.
	c2 := testCache(t)
	c2.SetIRAW(true, 1, true)
	c2.Fill(1000, 0x1000, 1) // holds [1000, 1001]
	if c2.Busy(500) {
		t.Fatal("future fill window blocks the present")
	}
	if got := c2.WaitPorts(500); got != 500 {
		t.Fatalf("WaitPorts(500) = %d", got)
	}
}

func TestBaselineFillHoldsOneCycle(t *testing.T) {
	c := testCache(t) // avoidance off
	c.Fill(100, 0x1000, 1)
	if !c.Busy(100) {
		t.Fatal("fill write cycle not held at baseline")
	}
	if c.Busy(101) {
		t.Fatal("baseline fill held past its write cycle")
	}
}

func TestOverlappingHoldWindows(t *testing.T) {
	c := testCache(t)
	c.SetIRAW(true, 1, true)
	c.Fill(100, 0x0000, 1) // [100, 101]
	c.Fill(101, 0x4000, 2) // [101, 102]
	if got := c.WaitPorts(100); got != 103 {
		t.Fatalf("WaitPorts(100) = %d, want 103 (chained windows)", got)
	}
}

func TestInFlightTracking(t *testing.T) {
	c := testCache(t)
	c.MarkInFlight(0x1000, 200)
	if r, ok := c.InFlightReady(0x1000, 150); !ok || r != 200 {
		t.Fatalf("InFlightReady = (%d, %v)", r, ok)
	}
	// Expired records are dropped lazily.
	if _, ok := c.InFlightReady(0x1000, 201); ok {
		t.Fatal("expired in-flight record returned")
	}
	if _, ok := c.InFlightReady(0x1000, 150); ok {
		t.Fatal("record not dropped after expiry")
	}
}

func TestDataViolationSemantics(t *testing.T) {
	c := testCache(t)
	c.SetIRAW(true, 2, false) // interrupted writes, avoidance OFF (unsafe)
	c.Fill(100, 0x1000, 0xABCD)
	set := c.SetOf(0x1000)
	way, hit := c.Lookup(101, 0x1000)
	if !hit {
		t.Fatal("miss")
	}
	// Read during the stabilization window: violation.
	if _, ok := c.ReadData(101, set, way); ok {
		t.Fatal("in-window read reported clean")
	}
	if c.Data().Stats().ViolationReads != 1 {
		t.Fatalf("violations = %d", c.Data().Stats().ViolationReads)
	}
}

func TestDisableFaultyLines(t *testing.T) {
	c := MustNew(Config{Name: "fb", Sets: 64, Ways: 8, LineBytes: 64})
	src := rng.New(1)
	n := c.DisableFaultyLines(src, 0.25)
	if n == 0 {
		t.Fatal("no lines disabled at p=0.25")
	}
	if got := c.Stats().DisabledLines; got != n {
		t.Fatalf("DisabledLines = %d, want %d", got, n)
	}
	// Disabled ways shrink capacity: after filling exactly capacity-many
	// distinct lines, fewer than all of them can be resident.
	for addr := uint64(0); addr < 64*8*64; addr += 64 {
		c.Fill(10, addr, 1)
	}
	resident := 0
	for addr := uint64(0); addr < 64*8*64; addr += 64 {
		if c.Peek(addr) {
			resident++
		}
	}
	if resident == 0 {
		t.Fatal("everything disabled at p=0.25?")
	}
	if resident >= 64*8 {
		t.Fatal("no capacity lost to disabled lines")
	}
	if want := 64*8 - n; resident > want {
		t.Fatalf("resident = %d, want <= capacity %d", resident, want)
	}
}

func TestVictimAllWaysDisabled(t *testing.T) {
	c := MustNew(Config{Name: "fb2", Sets: 2, Ways: 2, LineBytes: 64})
	src := rng.New(1)
	c.DisableFaultyLines(src, 1.0) // everything disabled
	if _, ok := c.Victim(0x1000); ok {
		t.Fatal("victim found in a fully disabled set")
	}
	if _, _, _, ok := c.Fill(10, 0x1000, 1); ok {
		t.Fatal("fill succeeded in a fully disabled set")
	}
}

func TestInvalidate(t *testing.T) {
	c := testCache(t)
	c.Fill(10, 0x1000, 1)
	if !c.Invalidate(0x1000) {
		t.Fatal("invalidate missed present line")
	}
	if c.Peek(0x1000) {
		t.Fatal("line still present")
	}
	if c.Invalidate(0x1000) {
		t.Fatal("invalidate hit absent line")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Name: "a", Sets: 0, Ways: 1, LineBytes: 64},
		{Name: "b", Sets: 3, Ways: 1, LineBytes: 64},
		{Name: "c", Sets: 4, Ways: 0, LineBytes: 64},
		{Name: "d", Sets: 4, Ways: 1, LineBytes: 48},
		{Name: "e", Sets: 4, Ways: 1, LineBytes: 64, HitLatency: -1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestSetIndexProperty(t *testing.T) {
	c := testCache(t)
	f := func(addr uint64) bool {
		set := c.SetOf(addr)
		if set < 0 || set >= 8 {
			return false
		}
		// Same line, same set; line address is aligned and preserved.
		return c.SetOf(c.LineAddr(addr)) == set && c.LineAddr(addr)%64 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLineAddrAt(t *testing.T) {
	c := testCache(t)
	const addr = 0x1040
	c.Fill(10, addr, 1)
	set := c.SetOf(addr)
	way, hit := c.Lookup(11, addr)
	if !hit {
		t.Fatal("miss")
	}
	got, valid := c.LineAddrAt(set, way)
	if !valid || got != c.LineAddr(addr) {
		t.Fatalf("LineAddrAt = (%#x, %v), want (%#x, true)", got, valid, c.LineAddr(addr))
	}
	if _, valid := c.LineAddrAt(set, 1-way); valid {
		t.Fatal("empty way reported valid")
	}
}

func TestBufferReserveCommit(t *testing.T) {
	b := NewBuffer("fb", 2)
	s1 := b.Reserve(10)
	if s1 != 10 {
		t.Fatalf("Reserve = %d", s1)
	}
	b.Commit(s1, 20)
	s2 := b.Reserve(10)
	b.Commit(s2, 30)
	// Both entries busy: the third waits for the earliest free (20).
	s3 := b.Reserve(12)
	if s3 != 20 {
		t.Fatalf("third Reserve = %d, want 20", s3)
	}
	b.Commit(s3, 25)
	if b.FullStallCycles != 8 {
		t.Fatalf("FullStallCycles = %d, want 8", b.FullStallCycles)
	}
}

func TestBufferIRAWHold(t *testing.T) {
	b := NewBuffer("fb", 4)
	b.SetIRAW(true, 2, true)
	s := b.Acquire(10, 5) // allocation at 10, window [11, 12]
	if s != 10 {
		t.Fatalf("Acquire = %d", s)
	}
	if got := b.Reserve(11); got != 13 {
		t.Fatalf("Reserve during hold = %d, want 13", got)
	}
	b.Commit(13, 14)
}

func TestBufferDoubleReservePanics(t *testing.T) {
	b := NewBuffer("fb", 1)
	b.Reserve(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b.Reserve(2)
}

func TestBufferCommitWithoutReservePanics(t *testing.T) {
	b := NewBuffer("fb", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b.Commit(1, 2)
}

func TestTotalBits(t *testing.T) {
	c := testCache(t)
	if c.TotalBits() <= 8*2*64*8 {
		t.Fatalf("TotalBits = %d does not include tags/state", c.TotalBits())
	}
}

// TestNextFreeMatchesBusy: the event-driven pipeline's "next event at" hook
// must name exactly the first non-busy cycle after its argument, for
// overlapping, adjacent and far-apart hold windows.
func TestNextFreeMatchesBusy(t *testing.T) {
	c := testCache(t)
	c.HoldPorts(10, 12)
	c.HoldPorts(12, 15) // overlapping
	c.HoldPorts(16, 16) // adjacent
	c.HoldPorts(40, 41) // detached
	for cycle := int64(0); cycle < 60; cycle++ {
		want := cycle + 1
		for c.Busy(want) {
			want++
		}
		if got := c.NextFree(cycle); got != want {
			t.Fatalf("NextFree(%d) = %d, want %d", cycle, got, want)
		}
	}
	// NextFree never charges stall statistics.
	before := c.Stats().FillStallCycles
	c.NextFree(9)
	if c.Stats().FillStallCycles != before {
		t.Fatal("NextFree charged FillStallCycles")
	}
}

// TestHoldCalendarFarApartWindows: windows registered far apart (beyond one
// calendar lap) must not shadow each other as long as both are within the
// consultation horizon of their own registration.
func TestHoldCalendarFarApartWindows(t *testing.T) {
	c := testCache(t)
	c.HoldPorts(100, 101)
	far := int64(100 + calSize)
	c.HoldPorts(far, far+1) // aliases the same slots one lap later
	if c.Busy(99) || !c.Busy(far) || !c.Busy(far+1) || c.Busy(far+2) {
		t.Fatal("far window misregistered")
	}
	// The aliased old cycles read as free — which the horizon argument
	// guarantees is unobservable in real pipelines, and which must at least
	// never read as busy for the wrong cycle.
	if c.Busy(far - calSize + 5) {
		t.Fatal("stale alias reported busy")
	}
}

// TestNextHeldFindsFutureOnsets: a hold registered in the past for a
// future window must bound skips that would otherwise cross its onset.
func TestNextHeldFindsFutureOnsets(t *testing.T) {
	c := testCache(t)
	c.HoldPorts(20, 22) // future window, registered "now"
	if got := c.NextHeld(10, 30); got != 20 {
		t.Fatalf("NextHeld(10,30) = %d, want 20", got)
	}
	if got := c.NextHeld(21, 30); got != 22 {
		t.Fatalf("NextHeld(21,30) = %d, want 22", got)
	}
	// Clear gap: the bound is the caller's horizon.
	if got := c.NextHeld(22, 30); got != 30 {
		t.Fatalf("NextHeld(22,30) = %d, want 30", got)
	}
	// No holds at all short-circuits without scanning.
	d := testCache(t)
	if got := d.NextHeld(0, 1000); got != 1000 {
		t.Fatalf("NextHeld on empty cache = %d, want 1000", got)
	}
}
