// Package cache implements the cache-like SRAM blocks of the core — IL0,
// DL0, UL1, the TLBs, fill buffers and the write-combining/eviction buffer
// — together with their IRAW-avoidance policies:
//
//   - unfrequently written blocks (IL0, UL1, ITLB, DTLB, WCB/EB, FB) stall
//     every port for N cycles after a fill (Section 4.3);
//   - the frequently written DL0 uses the Store Table for store traffic and
//     fill-stalling for line fills (Section 4.4);
//   - a Faulty-Bits comparison variant disables lines that fail timing at a
//     reduced variation margin (Section 2.2).
//
// Data arrays are backed by sram.Array, so stabilization windows, violating
// reads and set-wide collateral destruction are modelled physically, and the
// integration tests can prove the avoidance policies keep data intact.
//
// # Cached set state
//
// The access hot path works from per-set summaries instead of per-access
// recomputation, with these invariants (all equivalence-fuzzed against the
// summary-free slow paths, which remain selectable via SetFastPaths(false)):
//
//   - Address decomposition (lineShift/tagShift/setMask) is precomputed at
//     construction and never changes.
//   - validMask/disabledMask mirror the valid/disabled flags bit-per-way and
//     are updated at the only places those flags change: Fill, Invalidate,
//     and DisableFaultyLines. Lookup/Peek/Victim scan only the live ways.
//     The masks say nothing about validFrom — a set bit can still lose the
//     cycle comparison, exactly as in the full scan.
//   - The fault map (disabledMask) changes only on DisableFaultyLines, i.e.
//     on a vcc/mode reconfiguration; nothing on the access path writes it.
//   - tagSum mirrors the live ways' tags as one 8-bit fold per way,
//     rewritten only by Fill; lruOrder mirrors the lru tick ranking as a
//     packed recency list, moved only by touchLRU. Lookup resolves the set
//     in one SWAR compare (full tags verify candidates) and Victim reads
//     the LRU way off the packed order.
//   - The sram.Array keeps per-set ready bounds and corrupt counts,
//     maintained on every write/scramble; a read consults them to skip the
//     set-wide slot walk, and the hierarchy reads corrupt counts in O(1).
//     Only a write or a violation scramble can invalidate those summaries.
//   - The in-flight fill (MSHR) records are generational: two maps rotated
//     one access-time horizon apart, the older dropped wholesale once none
//     of its records can be consulted again (see MarkInFlight) —
//     observably identical to the lazily pruned map.
//   - The hierarchy's integrity-oracle state is lazy and bounded: line
//     signatures memoize until the line is written (bumpLineVer refreshes
//     in place), and version records are dropped when their line leaves
//     the DL0 — the only place signatures are ever compared — on both the
//     fast and the fast-path-disabled reference paths (see gcOracleLine).
//
// # Timing-independent access-order contract (functional warm-up)
//
// Hierarchy.WarmFetch/WarmLoad/WarmStore replay an access stream without a
// clock: sample-window warm-up (core.WarmReplay) uses them to pre-state the
// memory system before timed measurement. The contract, at every level down
// to UL1 and the TLBs:
//
//   - Access order is the only input. The state a replay leaves behind —
//     tags, valid bits, LRU recency, dirty bits, TLB entries, oracle
//     versions, settled data signatures — is a pure function of the
//     replayed sequence, independent of the clock plan, Vcc, IRAW mode and
//     the cycle at which the replay runs. Victim selection, mask/tagSum
//     maintenance and LRU movement are exactly the timed path's.
//   - Everything is settled. Warm lookups ignore validFrom (no clock to
//     compare against), warm fills and writes land uninterrupted with no
//     stabilization window, and installed lines are readable from the
//     cycle after the replay's anchor — the first cycle the timed engine
//     simulates.
//   - Nothing timing-visible moves. No port holds, no hit/miss/stall
//     statistics, no in-flight (MSHR) records, no STable entries, no
//     data-side serialization: a replay is invisible to every timing
//     mechanism the measured span exercises.
//   - Misses flow structurally, not temporally: an L1 miss touches UL1
//     (filling it on a UL1 miss), installs the line, writes a dirty
//     victim's line back into UL1, and GCs the oracle record of a line
//     leaving the DL0 — the same state transitions missFlow performs,
//     minus buffers, waits and completion times.
//
// Warm stores deliberately skip the STable (no warm write is still
// stabilizing when measurement starts) and the oracle version bump (nothing
// can observe a torn warm write, so the fill-time signature stays equal to
// the oracle's — the consistency the measured span's integrity checks
// verify).
//
// # Warm-state checkpoints
//
// Because warm state is a pure function of the access sequence, it can be
// snapshotted and restored instead of re-replayed: Cache.CaptureWarm /
// Hierarchy.CaptureWarm serialize exactly the access-order state (tags,
// valid/dirty bits, LRU recency, settled data, ready bits) into a
// WarmState, and RestoreWarm rebuilds every derived summary — validMask,
// tagSum, lruOrder, sram ready bounds — from it, so a restored hierarchy
// is indistinguishable from one that replayed the whole prefix live.
// Capture refuses anything timing-visible (port holds, in-flight fills,
// stabilizing writes, corrupt slots): a snapshot is only taken at a quiet
// boundary, which is what makes it shareable across Vcc points and IRAW
// modes. LRU ticks are renumbered to a canonical 1..n ranking at capture
// so snapshots are byte-comparable regardless of how the prefix replay was
// segmented. The fault map (disabled lines) is deliberately NOT serialized:
// it is a (vcc, mode, seed) reconfiguration, so RestoreWarm instead
// verifies the live map is consistent with the snapshot (no valid line on
// a disabled way) and the checkpoint store keys snapshots by fault-map
// configuration only when one installs (see internal/ckpt).
package cache

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"lowvcc/internal/rng"
	"lowvcc/internal/sram"
)

// Config describes one cache-like block.
type Config struct {
	Name      string
	Sets      int // power of two
	Ways      int
	LineBytes int // power of two (page size for TLBs)
	// HitLatency is the extra cycles a hit adds beyond the pipeline's
	// built-in access latency.
	HitLatency int
}

func (c Config) validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %q: Sets %d must be a positive power of two", c.Name, c.Sets)
	}
	if c.Ways <= 0 || c.Ways > 64 {
		return fmt.Errorf("cache %q: Ways %d must be in [1,64] (per-set way masks)", c.Name, c.Ways)
	}
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %q: LineBytes %d must be a positive power of two", c.Name, c.LineBytes)
	}
	if c.HitLatency < 0 {
		return fmt.Errorf("cache %q: negative HitLatency", c.Name)
	}
	return nil
}

// SizeBytes returns the data capacity.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * c.LineBytes }

// Stats counts cache activity.
type Stats struct {
	Accesses    uint64
	Hits        uint64
	Misses      uint64
	Fills       uint64
	Evictions   uint64
	DirtyEvicts uint64
	// FillStallCycles counts cycles accesses waited out a post-fill
	// stabilization window (the Section 4.3 policy cost).
	FillStallCycles uint64
	DisabledLines   int
}

// Cache is one cache-like SRAM block. Not goroutine-safe.
type Cache struct {
	cfg      Config
	tags     []uint64
	valid    []bool
	dirty    []bool
	disabled []bool
	// validFrom is the cycle from which an entry's tag match is visible:
	// a fill completes in the future, so the line must not hit before then.
	validFrom []int64
	lru       []uint64
	lruTick   uint64
	// inflight tracks outstanding fills per line (MSHR semantics): a
	// second miss to an in-flight line merges with it instead of issuing a
	// duplicate request. Expired records are dropped lazily on probe; on
	// the fast path the records are generational (inflight + inflightOld,
	// see MarkInFlight) so streaming miss traffic cannot accumulate one
	// stale record per line ever missed.
	inflight    map[uint64]int64
	inflightOld map[uint64]int64
	// inflightHigh is the newest completion stamp ever registered;
	// inflightRotate is the next stamp at which the generations rotate,
	// one inflightHorizon (grown via EnsureInFlightHorizon as the memory
	// round trip grows) past the previous rotation.
	inflightHigh    int64
	inflightRotate  int64
	inflightHorizon int64
	data            *sram.Array

	// validMask and disabledMask summarize the valid/disabled flags of each
	// set, bit per way; waysMask covers the configured ways. See the
	// package-doc invariants.
	validMask    []uint64
	disabledMask []uint64
	waysMask     uint64
	// lruOrder caches each set's recency order as packed 4-bit way indices,
	// least-recent in the low nibble — the same order the lru tick array
	// encodes, updated at the only place ticks are granted (touch). Victim
	// reads the LRU way from the low end instead of rescanning all ways'
	// ticks. Maintained only when Ways <= 8 (lruPacked); larger
	// configurations fall back to the tick scan.
	lruOrder  []uint32
	lruPacked bool
	// tagSum packs an 8-bit fold of each way's tag into one word per set
	// (byte w = fold of way w's tag, maintained at the only place tags
	// change: Fill). Lookup compares all ways in one SWAR operation and
	// verifies only candidate bytes against the full tags, so the common
	// miss costs no per-way tag loads. Allocated only when Ways <= 8.
	tagSum []uint64
	// noFast disables the summary-driven fast paths (Lookup/Victim/Peek
	// bit-scans, MSHR sweeping) in favour of the original full scans — the
	// benchmark baseline and equivalence-fuzz reference. Flip it only right
	// after construction (SetFastPaths).
	noFast bool
	// holds tracks port-busy cycles (fill stabilization windows,
	// Store-Table replays). A fill completing at a future cycle holds the
	// ports only during its window, not from the present.
	holds       holdCal
	n           int  // stabilization cycles (0 = IRAW off)
	interrupted bool // whether writes are interrupted (IRAW clocking)
	avoid       bool // whether the fill-stall avoidance policy is active
	stats       Stats

	lineShift uint
	tagShift  uint // lineShift + log2(Sets): tag extraction without division
	setMask   uint64
}

// New returns an empty cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	entries := cfg.Sets * cfg.Ways
	data, err := sram.New(sram.Config{
		Name:          cfg.Name,
		Entries:       entries,
		BytesPerEntry: 8, // line signature (integrity oracle), not full payload
		EntriesPerSet: cfg.Ways,
	})
	if err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:             cfg,
		tags:            make([]uint64, entries),
		valid:           make([]bool, entries),
		dirty:           make([]bool, entries),
		disabled:        make([]bool, entries),
		validFrom:       make([]int64, entries),
		lru:             make([]uint64, entries),
		inflight:        make(map[uint64]int64),
		data:            data,
		validMask:       make([]uint64, cfg.Sets),
		disabledMask:    make([]uint64, cfg.Sets),
		waysMask:        uint64(1)<<uint(cfg.Ways) - 1,
		inflightHorizon: minInflightHorizon,
	}
	for c.lineShift = 0; 1<<c.lineShift < cfg.LineBytes; c.lineShift++ {
	}
	c.tagShift = c.lineShift
	for 1<<(c.tagShift-c.lineShift) < cfg.Sets {
		c.tagShift++
	}
	c.setMask = uint64(cfg.Sets - 1)
	if cfg.Ways <= 8 {
		c.lruPacked = true
		c.lruOrder = make([]uint32, cfg.Sets)
		var ident uint32
		for w := cfg.Ways - 1; w >= 0; w-- {
			ident = ident<<4 | uint32(w)
		}
		for s := range c.lruOrder {
			c.lruOrder[s] = ident
		}
		c.tagSum = make([]uint64, cfg.Sets)
	}
	return c, nil
}

// tagFold is the 8-bit per-way tag digest stored in tagSum. Equal tags
// always fold equally (no false negatives); fold collisions only cost a
// full-tag verify.
func tagFold(tag uint64) uint64 { return (tag ^ tag>>8) & 0xFF }

// touchLRU grants (set, way) the next recency tick and, on the fast path,
// moves it to the most-recent end of the set's packed order. Ticks and
// packed order encode the same recency ranking: never-touched ways sort by
// ascending way index (the packed order's initial state, matching the tick
// scan's lowest-way tie-break on equal zero ticks), touched ways by tick.
func (c *Cache) touchLRU(set, way int) {
	c.lruTick++
	c.lru[set*c.cfg.Ways+way] = c.lruTick
	// Maintained regardless of noFast — like every other summary — so
	// SetFastPaths can be flipped without leaving a stale order behind.
	if !c.lruPacked {
		return
	}
	ord := c.lruOrder[set]
	top := 4 * uint(c.cfg.Ways-1)
	if ord>>top&0xF == uint32(way) {
		return // already most-recent: repeated hits to a hot way are free
	}
	// SWAR find of way's nibble, then splice it out and append at the top.
	x := ord ^ uint32(way)*0x11111111
	pos := uint(bits.TrailingZeros32((x-0x11111111)&^x&0x88888888)) &^ 3
	low := ord & (1<<pos - 1)
	high := ord >> (pos + 4)
	c.lruOrder[set] = low | high<<pos | uint32(way)<<top
}

// MustNew is New for static configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// SetFastPaths enables or disables the cached-set-state fast paths of this
// block and its backing sram array (enabled by default). The summaries are
// maintained either way; the flag selects whether the access path consults
// them. Benchmark-baseline and equivalence-test hook: flip it only right
// after construction.
func (c *Cache) SetFastPaths(enabled bool) {
	c.noFast = !enabled
	c.data.SetFastPath(enabled)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Data exposes the backing sram array (violation counters for tests).
func (c *Cache) Data() *sram.Array { return c.data }

// SetIRAW configures the write-interruption mode, the stabilization count,
// and whether the fill-stall avoidance policy is active. Interrupted writes
// with avoidance disabled is the unsafe validation mode: reads may then hit
// stabilizing entries and the backing sram array counts the violations.
func (c *Cache) SetIRAW(interrupted bool, n int, avoid bool) {
	if interrupted && n < 1 {
		panic(fmt.Sprintf("cache %q: interrupted writes need n >= 1", c.cfg.Name))
	}
	c.interrupted = interrupted
	c.n = n
	c.avoid = avoid
}

// SetOf returns the set index of addr.
func (c *Cache) SetOf(addr uint64) int { return int((addr >> c.lineShift) & c.setMask) }

// LineAddr returns the line-aligned address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr &^ (uint64(c.cfg.LineBytes) - 1) }

func (c *Cache) tagOf(addr uint64) uint64 { return addr >> c.tagShift }

func (c *Cache) entry(set, way int) int { return set*c.cfg.Ways + way }

// holdHorizon bounds how far back an access's time can trail the newest
// hold registration: accesses are issued in program order but their times
// can float ahead by at most a TLB walk plus a memory round trip. Holds
// older than the horizon below the newest registration can never be
// consulted again.
const holdHorizon = 1 << 13

// calBits sizes the hold calendar. The slot ring aliases cycles that are
// calSize apart; an aliased overwrite is only visible if both marks can
// still be queried, which the horizon argument rules out as long as
// calSize >= holdHorizon + the longest window span (spans are a few cycles:
// stabilization windows and short store replays), with ample slack here.
const (
	calBits = 14
	calSize = 1 << calBits
	calMask = calSize - 1
)

// holdCal tracks port-held cycles as a slot calendar: slot c&calMask holds
// the exact cycle it was marked for, so membership is one compare. This
// replaces the seed's interval-list scans — Busy was O(live windows) on
// every issue-stage port check and HoldPorts pruned by rebuilding the list
// on every fill — with O(1) membership, O(span) registration and O(wait)
// first-free walks. max is the latest held cycle ever registered: anything
// beyond it is free without touching the slots (the common case).
type holdCal struct {
	slots []int64
	max   int64
}

func (h *holdCal) mark(from, to int64) {
	if h.slots == nil {
		h.slots = make([]int64, calSize)
		for i := range h.slots {
			h.slots[i] = -1 // cycle numbers are non-negative
		}
	}
	for t := from; t <= to; t++ {
		h.slots[t&calMask] = t
	}
	if to > h.max {
		h.max = to
	}
}

func (h *holdCal) busy(cycle int64) bool {
	return cycle <= h.max && h.slots != nil && h.slots[cycle&calMask] == cycle
}

// firstFree returns the first cycle >= cycle not held.
func (h *holdCal) firstFree(cycle int64) int64 {
	for h.busy(cycle) {
		cycle++
	}
	return cycle
}

// Busy reports whether the block's ports are held at cycle.
func (c *Cache) Busy(cycle int64) bool { return c.holds.busy(cycle) }

// NextFree returns the first cycle > cycle at which the block's ports are
// not held. Unlike WaitPorts it charges nothing: it is the "next event at"
// hook the event-driven pipeline uses to bound idle-cycle skips (hold
// windows only ever shrink into the past between accesses, so the returned
// cycle is exact until the next access registers a new hold).
func (c *Cache) NextFree(cycle int64) int64 {
	return c.holds.firstFree(cycle + 1)
}

// NextHeld returns the first held cycle in (after, before), or before when
// no hold starts in that gap. Like NextFree it charges nothing. The
// event-driven pipeline uses it to bound a skip by a hold whose window was
// registered in the past but opens in the future (a fill completing at a
// future cycle holds the ports only from then); the scan is bounded by the
// gap the caller wants to cross.
func (c *Cache) NextHeld(after, before int64) int64 {
	if c.holds.max <= after {
		return before // no hold extends past `after`: the gap is clear
	}
	for t := after + 1; t < before; t++ {
		if c.holds.busy(t) {
			return t
		}
	}
	return before
}

// HoldPorts marks the ports busy during [from, to] (a fill's stabilization
// window or a Store-Table replay).
func (c *Cache) HoldPorts(from, to int64) {
	if to < from {
		return
	}
	c.holds.mark(from, to)
}

// WaitPorts returns the first cycle >= cycle at which the block may be
// accessed, charging the wait to FillStallCycles.
func (c *Cache) WaitPorts(cycle int64) int64 {
	start := c.holds.firstFree(cycle)
	if start > cycle {
		c.stats.FillStallCycles += uint64(start - cycle)
	}
	return start
}

// Lookup probes the cache at the given cycle. On a hit it updates LRU and
// returns the way. It does not touch the data array (see ReadData).
//
// The fast path scans only the live (valid, enabled) ways from the per-set
// mask, in the same ascending-way order as the full scan, so it hits the
// same way; an empty set short-circuits to a miss without touching the
// entry arrays at all.
func (c *Cache) Lookup(cycle int64, addr uint64) (way int, hit bool) {
	c.stats.Accesses++
	set := c.SetOf(addr)
	tag := c.tagOf(addr)
	if !c.noFast {
		base := set * c.cfg.Ways
		if c.tagSum != nil {
			// SWAR probe: all ways' tag folds compared in one word op;
			// only candidate bytes (fold matches — or the zero-byte
			// detector's occasional false positive, which the full-tag
			// verify rejects) touch the entry arrays. Candidates surface
			// in ascending way order, like the scan.
			live := c.validMask[set] &^ c.disabledMask[set]
			x := c.tagSum[set] ^ tagFold(tag)*0x0101010101010101
			for cand := (x - 0x0101010101010101) &^ x & 0x8080808080808080; cand != 0; cand &= cand - 1 {
				w := bits.TrailingZeros64(cand) >> 3
				if live>>uint(w)&1 == 0 {
					continue
				}
				e := base + w
				if c.tags[e] == tag && cycle >= c.validFrom[e] {
					c.stats.Hits++
					c.touchLRU(set, w)
					return w, true
				}
			}
			c.stats.Misses++
			return 0, false
		}
		for m := c.validMask[set] &^ c.disabledMask[set]; m != 0; m &= m - 1 {
			e := base + bits.TrailingZeros64(m)
			if c.tags[e] == tag && cycle >= c.validFrom[e] {
				c.stats.Hits++
				c.touchLRU(set, e-base)
				return e - base, true
			}
		}
		c.stats.Misses++
		return 0, false
	}
	for w := 0; w < c.cfg.Ways; w++ {
		e := c.entry(set, w)
		if c.valid[e] && !c.disabled[e] && c.tags[e] == tag && cycle >= c.validFrom[e] {
			c.stats.Hits++
			c.touchLRU(set, w)
			return w, true
		}
	}
	c.stats.Misses++
	return 0, false
}

// LookupAt probes one specific way — a memoized earlier hit — instead of
// scanning the set. On a match it performs exactly a Lookup hit's side
// effects (access/hit counters, LRU touch) and returns true; on any
// mismatch it returns false with NO side effects, so the caller can fall
// back to the full Lookup without double-counting. The hierarchy's
// per-page TLB translation memo is the intended caller.
func (c *Cache) LookupAt(cycle int64, addr uint64, way int) bool {
	if way < 0 || way >= c.cfg.Ways {
		return false
	}
	set := c.SetOf(addr)
	tag := c.tagOf(addr)
	e := c.entry(set, way)
	if !c.valid[e] || c.disabled[e] || c.tags[e] != tag || cycle < c.validFrom[e] {
		return false
	}
	// Scan-order guard: Lookup hits the lowest matching readable way, and
	// duplicate tags are transiently possible (a line can be refilled into
	// a second way while its first fill is not yet readable). If an
	// earlier way also matches, the memoized way is not the one Lookup
	// would pick — fall back so the LRU touch lands exactly where the full
	// scan would put it.
	if !c.noFast {
		base := set * c.cfg.Ways
		earlier := c.validMask[set] &^ c.disabledMask[set] & (uint64(1)<<uint(way) - 1)
		for m := earlier; m != 0; m &= m - 1 {
			pe := base + bits.TrailingZeros64(m)
			if c.tags[pe] == tag && cycle >= c.validFrom[pe] {
				return false
			}
		}
	} else {
		for w := 0; w < way; w++ {
			pe := c.entry(set, w)
			if c.valid[pe] && !c.disabled[pe] && c.tags[pe] == tag && cycle >= c.validFrom[pe] {
				return false
			}
		}
	}
	c.stats.Accesses++
	c.stats.Hits++
	c.touchLRU(set, way)
	return true
}

// MarkInFlight registers an outstanding fill of line completing at ready.
//
// On the fast path the records are generational: inserts go to the current
// generation, and when the newest completion stamp crosses the rotation
// point (one holdCal horizon past the previous rotation) the current
// generation becomes the old one and the previous old generation is dropped
// wholesale. A dropped record was registered more than a full horizon
// (inflightHorizon) below the newest stamp, and access times trail the
// newest stamp by at most a TLB walk plus a memory round trip, so no
// future probe could have consulted it: dropping is
// observably identical to the lazy per-probe pruning, with no sweep scans,
// and the live maps stay at working-set size instead of accumulating one
// stale record per line ever missed.
func (c *Cache) MarkInFlight(line uint64, ready int64) {
	if c.noFast {
		c.inflight[line] = ready
		return
	}
	if ready > c.inflightHigh {
		c.inflightHigh = ready
		if ready >= c.inflightRotate {
			// The dropped generation's map is recycled as the new current
			// one: steady-state rotation allocates nothing.
			dropped := c.inflightOld
			c.inflightOld = c.inflight
			if dropped == nil {
				dropped = make(map[uint64]int64, len(c.inflightOld))
			} else {
				clear(dropped)
			}
			c.inflight = dropped
			c.inflightRotate = ready + c.inflightHorizon
		}
	}
	c.inflight[line] = ready
}

// minInflightHorizon floors the generation width of the MSHR record maps.
// The width must exceed how far an access time can trail the newest
// registered completion stamp: a completion stamp leads its access by one
// memory round trip, and concurrent I-/D-side access times skew by at most
// a TLB wait+walk, port-hold windows, and a fill-buffer full stall — a few
// round trips end to end, the same skew bound the hold calendar's horizon
// builds on. The hierarchy scales the horizon with the configured round
// trip (EnsureInFlightHorizon); 2048 covers the default plans (round trip
// <= ~240 cycles) with >2x slack while keeping each generation small
// enough to stay cache-resident.
const minInflightHorizon = 1 << 11

// EnsureInFlightHorizon raises the MSHR generation width to at least h.
// Bump-only: a later, smaller timing mode must not shrink the horizon,
// because records registered under the earlier mode still rely on the
// wider bound before they can be dropped.
func (c *Cache) EnsureInFlightHorizon(h int64) {
	if h > c.inflightHorizon {
		c.inflightHorizon = h
	}
}

// InFlightReady reports an outstanding fill of line that completes at or
// after `now`; expired records are dropped lazily. The current generation
// shadows the old one, exactly as a re-registration overwrites a map entry.
func (c *Cache) InFlightReady(line uint64, now int64) (int64, bool) {
	r, ok := c.inflight[line]
	if !ok && c.inflightOld != nil {
		if r, ok = c.inflightOld[line]; ok && r < now {
			delete(c.inflightOld, line)
			return 0, false
		}
	}
	if !ok {
		return 0, false
	}
	if r < now {
		delete(c.inflight, line)
		return 0, false
	}
	return r, true
}

// Peek reports whether addr is present without moving LRU or counters.
func (c *Cache) Peek(addr uint64) bool {
	set := c.SetOf(addr)
	tag := c.tagOf(addr)
	if !c.noFast {
		base := set * c.cfg.Ways
		for m := c.validMask[set] &^ c.disabledMask[set]; m != 0; m &= m - 1 {
			if c.tags[base+bits.TrailingZeros64(m)] == tag {
				return true
			}
		}
		return false
	}
	for w := 0; w < c.cfg.Ways; w++ {
		e := c.entry(set, w)
		if c.valid[e] && !c.disabled[e] && c.tags[e] == tag {
			return true
		}
	}
	return false
}

// ReadData performs the physical data-array read of a hit (whole set read;
// any stabilizing co-resident entry is destroyed — the Section 4.3 hazard).
// It returns the 8-byte line signature and whether the read was clean.
func (c *Cache) ReadData(cycle int64, set, way int) (sig uint64, ok bool) {
	raw, ok := c.data.Read(cycle, c.entry(set, way))
	if raw == nil {
		return 0, false
	}
	return beUint64(raw), ok
}

// WriteData writes the line signature of (set, way) — a store or a repair —
// under the current interruption mode.
func (c *Cache) WriteData(cycle int64, set, way int, sig uint64) {
	var buf [8]byte
	bePutUint64(buf[:], sig)
	c.data.Write(cycle, c.entry(set, way), buf[:], c.interrupted, c.n)
}

// Victim selects the fill way for addr's set: an invalid enabled way if one
// exists, else the LRU enabled way. ok is false when every way of the set
// is disabled (Faulty-Bits), in which case the line cannot be cached.
//
// The fast path answers the two common cases from the set masks alone: a
// free enabled way is the lowest bit of enabled&^valid (the same way the
// ascending scan would return), and the LRU scan walks only enabled ways.
// Ties on the LRU tick break toward the lowest way in both paths.
func (c *Cache) Victim(addr uint64) (way int, ok bool) {
	set := c.SetOf(addr)
	if !c.noFast {
		enabled := c.waysMask &^ c.disabledMask[set]
		if free := enabled &^ c.validMask[set]; free != 0 {
			return bits.TrailingZeros64(free), true
		}
		if enabled == 0 {
			return 0, false
		}
		if c.lruPacked {
			// All enabled ways valid: the victim is the least-recent
			// enabled way, read off the packed order's low end.
			ord := c.lruOrder[set]
			for {
				w := int(ord & 0xF)
				if enabled>>uint(w)&1 == 1 {
					return w, true
				}
				ord >>= 4
			}
		}
		base := set * c.cfg.Ways
		best, bestTick := -1, uint64(0)
		for m := enabled; m != 0; m &= m - 1 {
			w := bits.TrailingZeros64(m)
			if t := c.lru[base+w]; best < 0 || t < bestTick {
				best, bestTick = w, t
			}
		}
		return best, true
	}
	best, bestTick := -1, uint64(0)
	for w := 0; w < c.cfg.Ways; w++ {
		e := c.entry(set, w)
		if c.disabled[e] {
			continue
		}
		if !c.valid[e] {
			return w, true
		}
		if best < 0 || c.lru[e] < bestTick {
			best, bestTick = w, c.lru[e]
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Fill installs addr's line at the given cycle, returning the evicted
// line's address and dirtiness (meaningful when evicted is true). The tag
// and data writes are interrupted under IRAW clocking, so the block's ports
// are held for the stabilization window ("in case of a fill we stall any
// access to cache", Section 4.3). sig is the line's data signature.
func (c *Cache) Fill(cycle int64, addr uint64, sig uint64) (victimAddr uint64, dirty, evicted, ok bool) {
	way, ok := c.Victim(addr)
	if !ok {
		return 0, false, false, false
	}
	set := c.SetOf(addr)
	e := c.entry(set, way)
	if c.valid[e] {
		evicted = true
		dirty = c.dirty[e]
		victimAddr = (c.tags[e]*uint64(c.cfg.Sets) + uint64(set)) << c.lineShift
		c.stats.Evictions++
		if dirty {
			c.stats.DirtyEvicts++
		}
	}
	c.tags[e] = c.tagOf(addr)
	if c.tagSum != nil {
		sh := uint(8 * way)
		c.tagSum[set] = c.tagSum[set]&^(0xFF<<sh) | tagFold(c.tags[e])<<sh
	}
	c.valid[e] = true
	c.validMask[set] |= 1 << uint(way)
	c.dirty[e] = false
	c.validFrom[e] = cycle + 1 // readable the cycle after the fill write
	c.touchLRU(set, way)
	c.WriteData(cycle, set, way, sig)
	c.stats.Fills++
	// The fill write occupies the ports during its own cycle in every
	// mode; under IRAW clocking with avoidance the hold extends through
	// the stabilization window (Section 4.3).
	hold := cycle
	if c.interrupted && c.avoid && c.n > 0 {
		hold = cycle + int64(c.n)
	}
	c.HoldPorts(cycle, hold)
	return victimAddr, dirty, evicted, true
}

// MarkDirty flags (set, way) dirty (a store hit).
func (c *Cache) MarkDirty(set, way int) { c.dirty[c.entry(set, way)] = true }

// WarmLookup probes the cache under the functional warm-up contract: it
// resolves addr against the installed lines in the same ascending-way order
// as Lookup, updating LRU on a hit, but it ignores validFrom (warm replay
// treats every installed line as settled — there is no clock to compare
// against) and moves no statistics. Port holds are not consulted: warm
// accesses are timing-free by definition. The probe always uses the set
// summaries (they are maintained regardless of the fast-path switch, and
// the warm path has no summary-free reference to stay equivalent to).
func (c *Cache) WarmLookup(addr uint64) (way int, hit bool) {
	set := c.SetOf(addr)
	tag := c.tagOf(addr)
	base := set * c.cfg.Ways
	live := c.validMask[set] &^ c.disabledMask[set]
	if c.tagSum != nil {
		x := c.tagSum[set] ^ tagFold(tag)*0x0101010101010101
		for cand := (x - 0x0101010101010101) &^ x & 0x8080808080808080; cand != 0; cand &= cand - 1 {
			w := bits.TrailingZeros64(cand) >> 3
			if live>>uint(w)&1 == 0 {
				continue
			}
			if c.tags[base+w] == tag {
				c.touchLRU(set, w)
				return w, true
			}
		}
		return 0, false
	}
	for m := live; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if c.tags[base+w] == tag {
			c.touchLRU(set, w)
			return w, true
		}
	}
	return 0, false
}

// WarmFill installs addr's line as fully settled state at `at`: victim
// selection and the mask/tagSum/LRU maintenance are exactly Fill's, but no
// statistics move, no ports are held, and the data write lands
// uninterrupted — the line (tag and signature) is readable from at+1, i.e.
// from the first cycle the timed engine simulates after a warm replay
// anchored at `at`. The returned values mirror Fill's; ok is false when the
// whole set is disabled (Faulty Bits), in which case the line stays
// uncached exactly as on the timed path.
func (c *Cache) WarmFill(at int64, addr uint64, sig uint64) (victimAddr uint64, way int, dirty, evicted, ok bool) {
	way, ok = c.Victim(addr)
	if !ok {
		return 0, 0, false, false, false
	}
	set := c.SetOf(addr)
	e := c.entry(set, way)
	if c.valid[e] {
		evicted = true
		dirty = c.dirty[e]
		victimAddr = (c.tags[e]*uint64(c.cfg.Sets) + uint64(set)) << c.lineShift
	}
	c.tags[e] = c.tagOf(addr)
	if c.tagSum != nil {
		sh := uint(8 * way)
		c.tagSum[set] = c.tagSum[set]&^(0xFF<<sh) | tagFold(c.tags[e])<<sh
	}
	c.valid[e] = true
	c.validMask[set] |= 1 << uint(way)
	c.dirty[e] = false
	c.validFrom[e] = at + 1
	c.touchLRU(set, way)
	c.WarmWrite(at, set, way, sig)
	return victimAddr, way, dirty, evicted, true
}

// WarmWrite lands the line signature of (set, way) as settled data: an
// uninterrupted write at `at`, stable from at+1, with no stabilization
// window regardless of the active IRAW mode. Warm replay's store and fill
// writes go through here so the measured span that follows starts from a
// hierarchy whose physical state does not depend on the clock plan.
func (c *Cache) WarmWrite(at int64, set, way int, sig uint64) {
	var buf [8]byte
	bePutUint64(buf[:], sig)
	c.data.Write(at, c.entry(set, way), buf[:], false, 0)
}

// LineAddrAt reconstructs the line address held at (set, way); valid is
// false for empty or disabled entries.
func (c *Cache) LineAddrAt(set, way int) (addr uint64, valid bool) {
	e := c.entry(set, way)
	if !c.valid[e] || c.disabled[e] {
		return 0, false
	}
	return (c.tags[e]*uint64(c.cfg.Sets) + uint64(set)) << c.lineShift, true
}

// CorruptedAt reports whether (set, way)'s data entry holds
// violation-scrambled contents.
func (c *Cache) CorruptedAt(set, way int) bool {
	return c.data.Corrupted(c.entry(set, way))
}

// Invalidate drops addr if present (used by tests and by UL1 inclusion
// handling). The data entry is not scrubbed; a later fill rewrites it.
func (c *Cache) Invalidate(addr uint64) bool {
	set := c.SetOf(addr)
	tag := c.tagOf(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		e := c.entry(set, w)
		if c.valid[e] && c.tags[e] == tag {
			c.valid[e] = false
			c.validMask[set] &^= 1 << uint(w)
			c.dirty[e] = false
			return true
		}
	}
	return false
}

// DisableFaultyLines builds a Faulty-Bits fault map: every line fails
// independently with the given probability (derived from the per-cell
// failure probability at the reduced margin and the line's bit count).
// It returns the number of disabled lines.
func (c *Cache) DisableFaultyLines(src *rng.Source, lineFailProb float64) int {
	disabled := 0
	for e := range c.disabled {
		if src.Bool(lineFailProb) {
			c.disabled[e] = true
			c.valid[e] = false
			set, way := e/c.cfg.Ways, e%c.cfg.Ways
			c.disabledMask[set] |= 1 << uint(way)
			c.validMask[set] &^= 1 << uint(way)
			disabled++
		}
	}
	c.stats.DisabledLines = disabled
	return disabled
}

// TotalBits returns tag+data+state storage for area accounting.
func (c *Cache) TotalBits() int {
	entries := c.cfg.Sets * c.cfg.Ways
	tagBits := 48 - int(c.lineShift) // tag width for a 48-bit address space
	stateBits := 2                   // valid + dirty
	return entries*(tagBits+stateBits) + c.cfg.Sets*c.cfg.Ways*c.cfg.LineBytes*8
}

func beUint64(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

func bePutUint64(b []byte, v uint64) { binary.BigEndian.PutUint64(b, v) }

// Buffer models a small fully associative buffer (fill buffers, WCB/EB)
// whose entries are held for a duration: the structures the paper lists
// among the "unfrequently written cache-like blocks". Allocation writes an
// entry, so under IRAW clocking the buffer's ports are held for N cycles
// afterwards.
type Buffer struct {
	name        string
	freeAt      []int64
	holds       holdCal
	n           int
	interrupted bool
	avoid       bool
	reserved    int // entry picked by Reserve, -1 when none

	// order/pos keep the entries as a binary min-heap over
	// (freeAt, entry index), so Reserve reads the earliest-freeing entry
	// off the root in O(1) instead of the exact argmin scan; the
	// lexicographic tie-break reproduces the scan's lowest-index choice
	// bit for bit. Commit re-sinks the allocated entry in O(log entries).
	// Like the cache's set summaries the heap is maintained regardless of
	// noFast; the flag only selects whether Reserve consults it.
	order []int32 // heap of entry indices
	pos   []int32 // entry index -> heap position
	// noFast selects the reference argmin scan in Reserve (equivalence
	// tests and benchmark baseline). Flip only right after construction.
	noFast bool

	Allocs          uint64
	FullStallCycles uint64
	FillStallCycles uint64
}

// NewBuffer returns a buffer with the given entry count.
func NewBuffer(name string, entries int) *Buffer {
	if entries <= 0 {
		panic(fmt.Sprintf("cache: buffer %q needs entries > 0", name))
	}
	b := &Buffer{name: name, freeAt: make([]int64, entries), reserved: -1,
		order: make([]int32, entries), pos: make([]int32, entries)}
	// The identity permutation is a valid heap for all-zero freeAt (ties
	// order by entry index).
	for i := range b.order {
		b.order[i] = int32(i)
		b.pos[i] = int32(i)
	}
	return b
}

// SetFastPath enables or disables the heap-backed Reserve (enabled by
// default), selecting the exact argmin scan as the reference. The heap is
// maintained either way; flip only right after construction.
func (b *Buffer) SetFastPath(enabled bool) { b.noFast = !enabled }

// heapLess orders entries by (freeAt, index): the same total order the
// reference scan's strict-< walk resolves to.
func (b *Buffer) heapLess(x, y int32) bool {
	if b.freeAt[x] != b.freeAt[y] {
		return b.freeAt[x] < b.freeAt[y]
	}
	return x < y
}

func (b *Buffer) heapSwap(i, j int32) {
	b.order[i], b.order[j] = b.order[j], b.order[i]
	b.pos[b.order[i]] = i
	b.pos[b.order[j]] = j
}

// heapFix restores the heap invariant around entry e after its freeAt
// changed (Commit only ever raises it, but the full fix is cheap and keeps
// the structure correct for any caller).
func (b *Buffer) heapFix(e int32) {
	i := b.pos[e]
	for i > 0 && b.heapLess(b.order[i], b.order[(i-1)/2]) {
		b.heapSwap(i, (i-1)/2)
		i = (i - 1) / 2
	}
	n := int32(len(b.order))
	for {
		min, l, r := i, 2*i+1, 2*i+2
		if l < n && b.heapLess(b.order[l], b.order[min]) {
			min = l
		}
		if r < n && b.heapLess(b.order[r], b.order[min]) {
			min = r
		}
		if min == i {
			return
		}
		b.heapSwap(i, min)
		i = min
	}
}

// SetIRAW configures interruption mode (as for Cache).
func (b *Buffer) SetIRAW(interrupted bool, n int, avoid bool) {
	if interrupted && n < 1 {
		panic(fmt.Sprintf("cache: buffer %q interrupted writes need n >= 1", b.name))
	}
	b.interrupted = interrupted
	b.n = n
	b.avoid = avoid
}

// Reserve picks the entry that frees earliest and returns the first cycle
// >= cycle at which it can be allocated (waiting out port holds and entry
// occupancy, charging the respective stall counters). The caller computes
// the completion time and then calls Commit.
func (b *Buffer) Reserve(cycle int64) int64 {
	if b.reserved >= 0 {
		panic(fmt.Sprintf("cache: buffer %q Reserve without Commit", b.name))
	}
	start := cycle
	if b.avoid {
		start = b.holds.firstFree(cycle)
		if start > cycle {
			b.FillStallCycles += uint64(start - cycle)
		}
	}
	best := 0
	if !b.noFast {
		// The heap root is the (freeAt, index)-minimal entry — exactly the
		// way the reference scan below picks.
		best = int(b.order[0])
	} else {
		for i, f := range b.freeAt {
			if f < b.freeAt[best] {
				best = i
			}
		}
	}
	if b.freeAt[best] > start {
		b.FullStallCycles += uint64(b.freeAt[best] - start)
		start = b.freeAt[best]
	}
	b.reserved = best
	return start
}

// Commit allocates the reserved entry from `start` until `until`
// (exclusive), applying the post-write port hold under IRAW clocking.
func (b *Buffer) Commit(start, until int64) {
	if b.reserved < 0 {
		panic(fmt.Sprintf("cache: buffer %q Commit without Reserve", b.name))
	}
	b.freeAt[b.reserved] = until
	b.heapFix(int32(b.reserved))
	b.reserved = -1
	b.Allocs++
	if b.interrupted && b.avoid && b.n > 0 {
		b.holds.mark(start+1, start+int64(b.n))
	}
}

// Acquire is Reserve+Commit for callers that know the hold duration upfront.
func (b *Buffer) Acquire(cycle int64, hold int) int64 {
	start := b.Reserve(cycle)
	b.Commit(start, start+int64(hold))
	return start
}

// Size returns the entry count.
func (b *Buffer) Size() int { return len(b.freeAt) }
