package cache

import (
	"fmt"

	"lowvcc/internal/stable"
)

// HierarchyConfig assembles the memory system of the modelled core
// (Silverthorne-like: 32 KB IL0, 24 KB 6-way DL0, 512 KB UL1, 64-entry
// TLBs, 8 fill buffers, 8-entry WCB/EB).
type HierarchyConfig struct {
	IL0, DL0, UL1 Config
	ITLB, DTLB    Config

	// UL1Latency is the UL1 hit latency in cycles; PageWalkCycles the TLB
	// miss penalty. Both are on-chip and scale with the clock, so they are
	// constant in cycles.
	UL1Latency     int
	PageWalkCycles int

	// FillBufferEntries and WCBEntries size the miss-handling buffers.
	FillBufferEntries int
	WCBEntries        int

	// StoresPerCycle and MaxStabilize size the Store Table.
	StoresPerCycle int
	MaxStabilize   int
}

// DefaultHierarchyConfig returns the modelled core's memory system.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		IL0:  Config{Name: "IL0", Sets: 64, Ways: 8, LineBytes: 64},
		DL0:  Config{Name: "DL0", Sets: 64, Ways: 6, LineBytes: 64},
		UL1:  Config{Name: "UL1", Sets: 1024, Ways: 8, LineBytes: 64},
		ITLB: Config{Name: "ITLB", Sets: 16, Ways: 4, LineBytes: 4096},
		DTLB: Config{Name: "DTLB", Sets: 16, Ways: 4, LineBytes: 4096},

		UL1Latency:        12,
		PageWalkCycles:    30,
		FillBufferEntries: 8,
		WCBEntries:        8,
		StoresPerCycle:    1,
		MaxStabilize:      4,
	}
}

// TimingMode is the hierarchy's view of the active clock plan.
type TimingMode struct {
	// Interrupted: SRAM writes are cut short and stabilize over N cycles.
	Interrupted bool
	// N is the stabilization cycle count.
	N int
	// Avoid enables the avoidance mechanisms (fill stalls, STable).
	// Interrupted && !Avoid is the unsafe validation mode.
	Avoid bool
	// MemCycles is the off-chip latency in cycles at the current frequency
	// (constant in time, so it varies with the plan).
	MemCycles int
}

// HierarchyStats aggregates cross-block counters.
type HierarchyStats struct {
	Loads, Stores, Fetches uint64
	TLBWalks               uint64
	// STableForwards counts loads served by the Store Table.
	STableForwards uint64
	// RepairedDestructions counts stabilizing DL0 entries destroyed by a
	// load's set access and repaired by the store-replay mechanism.
	RepairedDestructions uint64
	// CorruptConsumed counts loads that consumed scrambled data — must stay
	// zero whenever avoidance is active.
	CorruptConsumed uint64
	// IntegrityErrors counts oracle mismatches on clean reads (simulator
	// self-check; any nonzero value is a modelling bug).
	IntegrityErrors uint64
	// DL0ReplayStallCycles counts port-hold cycles due to store replays.
	DL0ReplayStallCycles uint64
}

// Hierarchy is the full memory system. Not goroutine-safe.
type Hierarchy struct {
	cfg  HierarchyConfig
	mode TimingMode

	IL0, DL0, UL1, ITLB, DTLB *Cache
	FB, WCB                   *Buffer
	STab                      *stable.Table

	// dFreeAt serializes the data side: the single load/store unit performs
	// at most one DL0 access per cycle *in program order*, so an access
	// delayed by a TLB walk or port hold pushes every younger access
	// behind it. This is both how the in-order LSU behaves and what keeps
	// simulated access times monotone with issue order.
	dFreeAt int64

	// itlbMemo and dtlbMemo memoize the last successful translation per
	// TLB (page and hit way), so the common run of same-page accesses
	// skips the port wait and the set scan. The fast path re-verifies the
	// memoized entry and replays a hit's exact side effects, so the memo
	// is invisible in results and statistics (equivalence-tested).
	itlbMemo, dtlbMemo tlbMemo
	// noTLBMemo disables the memo (test hook for the equivalence test).
	noTLBMemo bool

	// warmITLB/warmDTLB/warmDL0 memoize the warm path's last access per
	// block. A repeat of the immediately preceding access is a state no-op
	// (the touched way is already most-recent, residency cannot have
	// changed in between, and a failed fill fails again), so the memo skip
	// is state-identical to re-walking the block — it only removes probe
	// and LRU-early-out work from the warm hot loop. warmDL0 additionally
	// carries the dirty mark so a store to the memoized line can dirty it
	// without re-probing.
	warmITLB, warmDTLB, warmDL0 warmMemo

	// lineVer is the integrity oracle: the store version of each line.
	lineVer map[uint64]uint32
	// sigMemo is the lazy oracle cache: a small direct-mapped memo of line
	// signatures, keyed by line address. A slot is trusted only while its
	// recorded version is current, and the only writer of lineVer
	// (CommitStore) refreshes the matching slot in place, so a memo hit can
	// skip both the version lookup and the signature hash. Slots cover the
	// line/page mix one access touches (DL0 line, UL1 line, TLB page).
	sigMemo [sigMemoSlots]sigMemoEntry
	// noSigMemo disables the signature memo (fast-vs-slow test hook).
	noSigMemo bool
	stats     HierarchyStats
}

// sigMemoSlots sizes the signature memo; must be a power of two.
const sigMemoSlots = 8

// sigMemoEntry is one memoized (line, version) -> signature binding.
type sigMemoEntry struct {
	line  uint64
	sig   uint64
	ver   uint32
	valid bool
}

// tlbMemo is one TLB's last-translation memo.
type tlbMemo struct {
	page  uint64
	way   int
	valid bool
}

// warmMemo is one block's last-warm-access memo (see the warmITLB field
// doc). line is the block's line/page address; set/way locate the resident
// copy; dirty mirrors the DL0 dirty flag for the store fast path.
type warmMemo struct {
	line     uint64
	set, way int
	dirty    bool
	valid    bool
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	h := &Hierarchy{cfg: cfg, lineVer: make(map[uint64]uint32)}
	var err error
	if h.IL0, err = New(cfg.IL0); err != nil {
		return nil, err
	}
	if h.DL0, err = New(cfg.DL0); err != nil {
		return nil, err
	}
	if h.UL1, err = New(cfg.UL1); err != nil {
		return nil, err
	}
	if h.ITLB, err = New(cfg.ITLB); err != nil {
		return nil, err
	}
	if h.DTLB, err = New(cfg.DTLB); err != nil {
		return nil, err
	}
	if cfg.FillBufferEntries <= 0 || cfg.WCBEntries <= 0 {
		return nil, fmt.Errorf("cache: buffers need positive entry counts")
	}
	h.FB = NewBuffer("FB", cfg.FillBufferEntries)
	h.WCB = NewBuffer("WCB/EB", cfg.WCBEntries)
	h.STab = stable.New(cfg.StoresPerCycle, cfg.MaxStabilize)
	h.mode = TimingMode{MemCycles: 100}
	return h, nil
}

// MustNewHierarchy is NewHierarchy for static configurations.
func MustNewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h, err := NewHierarchy(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Stats returns a snapshot of the aggregate counters.
func (h *Hierarchy) Stats() HierarchyStats { return h.stats }

// Mode returns the active timing mode.
func (h *Hierarchy) Mode() TimingMode { return h.mode }

// SetMode reconfigures every block for a new clock plan (the Vcc
// controller's job: counters and STable sizing change, nothing else).
func (h *Hierarchy) SetMode(m TimingMode) {
	if m.Interrupted && (m.N < 1 || m.N > h.cfg.MaxStabilize) {
		panic(fmt.Sprintf("cache: mode N=%d out of range", m.N))
	}
	if m.MemCycles < 1 {
		panic("cache: MemCycles must be positive")
	}
	h.mode = m
	for _, c := range []*Cache{h.IL0, h.DL0, h.UL1, h.ITLB, h.DTLB} {
		c.SetIRAW(m.Interrupted, m.N, m.Avoid)
		// MSHR generations must outlive the largest access-time skew: a
		// few off-chip round trips of completion lead plus TLB walks and
		// stabilization holds, each an independent config knob. 8x the sum
		// matches the default plans' slack factor.
		c.EnsureInFlightHorizon(8 * int64(m.MemCycles+h.cfg.PageWalkCycles+m.N))
	}
	h.FB.SetIRAW(m.Interrupted, m.N, m.Avoid)
	h.WCB.SetIRAW(m.Interrupted, m.N, m.Avoid)
	if m.Interrupted && m.Avoid {
		h.STab.SetStabilizeCycles(m.N)
	} else {
		h.STab.SetStabilizeCycles(0)
	}
}

// computeSig hashes (line, version) into the oracle signature.
func computeSig(line uint64, v uint32) uint64 {
	x := line ^ uint64(v)<<48 ^ 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}

// sig returns the oracle line signature for a line at its current version,
// lazily: the hash is computed on first touch and memoized until the line
// is written (bumpLineVer refreshes the slot in place) or the slot is
// reused for another line. A valid slot's version is always current —
// CommitStore is the only version writer and it goes through bumpLineVer —
// so a memo hit serves the signature without consulting the version map.
func (h *Hierarchy) sig(line uint64) uint64 {
	if !h.noSigMemo {
		e := &h.sigMemo[(line>>6)&(sigMemoSlots-1)]
		if e.valid && e.line == line {
			return e.sig
		}
		v := h.lineVer[line]
		s := computeSig(line, v)
		*e = sigMemoEntry{line: line, sig: s, ver: v, valid: true}
		return s
	}
	return computeSig(line, h.lineVer[line])
}

// bumpLineVer advances the oracle version of line (a committed store) and
// refreshes the memoized signature so a stale one can never be served.
func (h *Hierarchy) bumpLineVer(line uint64) {
	v := h.lineVer[line] + 1
	h.lineVer[line] = v
	if !h.noSigMemo {
		h.sigMemo[(line>>6)&(sigMemoSlots-1)] = sigMemoEntry{
			line: line, sig: computeSig(line, v), ver: v, valid: true,
		}
	}
}

// SetFastPaths enables or disables every hierarchy-level fast path — the
// cached set state of all five cache blocks and their sram arrays, the
// per-set corrupt-count summary, the lazy signature memo, the STable
// probe early-outs, and the fill/write-combining buffers' heap-backed
// Reserve (enabled by default). The TLB translation memo has its own
// equivalence-tested hook and is not affected. Benchmark-baseline and
// equivalence-test hook; call right after construction.
func (h *Hierarchy) SetFastPaths(enabled bool) {
	for _, c := range []*Cache{h.IL0, h.DL0, h.UL1, h.ITLB, h.DTLB} {
		c.SetFastPaths(enabled)
	}
	h.noSigMemo = !enabled
	h.STab.SetFastPath(enabled)
	h.FB.SetFastPath(enabled)
	h.WCB.SetFastPath(enabled)
}

// translate runs addr through the given TLB and reports the cycle at which
// translation is available plus whether the access walked (was delayed at
// all). It is the single shared front half of FetchInst, Load and
// CommitStore — one memo guard instead of three near-identical call sites.
//
// The memo fast path handles the dominant case — a repeat access to the
// page this TLB translated last, with no port hold pending at cycle — in
// O(1): LookupAt re-verifies the memoized entry and replays a hit's exact
// side effects, and skipping WaitPorts is free because a hold-free cycle
// waits zero and charges nothing. Anything else (page change, hold, memo
// miss on a changed entry) falls back to the full path, which keeps the
// memo exactly equivalent to always scanning.
func (h *Hierarchy) translate(tlb *Cache, memo *tlbMemo, cycle int64, addr uint64) (t int64, walked bool) {
	if memo.valid && !h.noTLBMemo && memo.page == tlb.LineAddr(addr) && !tlb.Busy(cycle) {
		if tlb.LookupAt(cycle, addr, memo.way) {
			return cycle, false
		}
	}
	t = tlb.WaitPorts(cycle)
	if way, hit := tlb.Lookup(t, addr); hit {
		memo.page, memo.way, memo.valid = tlb.LineAddr(addr), way, true
		return t, t != cycle
	}
	memo.valid = false // the walk's fill is not readable until after t
	h.stats.TLBWalks++
	t += int64(h.cfg.PageWalkCycles)
	tlb.Fill(t, addr, h.sig(tlb.LineAddr(addr)))
	return t, t != cycle
}

// ul1Access reads (or writes) a line in UL1, going to memory on a miss.
// It returns the completion cycle.
func (h *Hierarchy) ul1Access(cycle int64, addr uint64, write bool) int64 {
	t := h.UL1.WaitPorts(cycle)
	line := h.UL1.LineAddr(addr)
	if rdy, ok := h.UL1.InFlightReady(line, t); ok {
		// Merge with the outstanding fill of this line.
		return rdy
	}
	way, hit := h.UL1.Lookup(t, addr)
	if hit {
		set := h.UL1.SetOf(addr)
		// Physical set read: violation semantics apply when the avoidance
		// policy is off.
		h.UL1.ReadData(t, set, way)
		if write {
			h.UL1.MarkDirty(set, way)
			h.UL1.WriteData(t, set, way, h.sig(line))
			hold := t // the write occupies the ports for its cycle
			if m := h.mode; m.Interrupted && m.Avoid && m.N > 0 {
				hold = t + int64(m.N)
			}
			h.UL1.HoldPorts(t, hold)
		}
		return t + int64(h.cfg.UL1Latency)
	}
	done := t + int64(h.mode.MemCycles)
	h.UL1.MarkInFlight(line, done)
	_, _, _, ok := h.UL1.Fill(done, addr, h.sig(line))
	_ = ok // a full-disabled UL1 set simply bypasses; timing is the same
	if write {
		if w2, hit2 := h.UL1.Lookup(done, addr); hit2 {
			h.UL1.MarkDirty(h.UL1.SetOf(addr), w2)
		}
	}
	return done
}

// missFlow handles an L1 miss for l1 (IL0 or DL0): allocate a fill buffer,
// access UL1 (and memory beyond), install the line, and send any dirty
// victim through the WCB/EB. It returns the cycle at which the missing data
// is available.
func (h *Hierarchy) missFlow(l1 *Cache, cycle int64, addr uint64) int64 {
	line := l1.LineAddr(addr)
	if rdy, ok := l1.InFlightReady(line, cycle); ok {
		// A fill of this line is already outstanding: merge with it.
		return rdy
	}
	start := h.FB.Reserve(cycle)
	ready := h.ul1Access(start, addr, false)
	h.FB.Commit(start, ready)
	l1.MarkInFlight(line, ready)
	victim, dirty, evicted, ok := l1.Fill(ready, addr, h.sig(l1.LineAddr(addr)))
	if !ok {
		// Faulty-Bits: the whole set is disabled; the line stays uncached.
		return ready
	}
	if evicted && dirty {
		// Dirty victim drains through the WCB/EB to UL1 off the critical
		// path; only buffer exhaustion back-pressures the fill.
		wstart := h.WCB.Reserve(ready)
		wdone := h.ul1Access(wstart, victim, true)
		h.WCB.Commit(wstart, wdone)
		if wstart > ready {
			ready = wstart
		}
	}
	if evicted && l1 == h.DL0 {
		h.gcOracleLine(victim)
	}
	return ready
}

// gcOracleLine drops the integrity-oracle version record of a line leaving
// the DL0. A signature is only ever *compared* for a DL0-resident line —
// UL1/IL0/TLB copies are written but never checked — and every DL0 fill
// rewrites the line's signature at the then-current version. So once a line
// leaves the DL0 its version history is unreachable: the version restarts
// at zero on refill, consistently on both the write and the compare side.
// Dropping the record keeps the oracle map at DL0 size instead of one entry
// per line ever stored. The GC runs on every configuration — including the
// fast-path-disabled reference, whose map previously grew without bound —
// because the version-reset argument above is independent of which lookup
// path found the victim.
func (h *Hierarchy) gcOracleLine(victim uint64) {
	delete(h.lineVer, victim)
	if e := &h.sigMemo[(victim>>6)&(sigMemoSlots-1)]; e.line == victim {
		e.valid = false
	}
}

// OracleLines reports the number of live integrity-oracle version records
// (bounded-growth observability for tests: the GC above keeps it at DL0
// size on every path).
func (h *Hierarchy) OracleLines() int { return len(h.lineVer) }

// FetchResult reports an instruction fetch's timing.
type FetchResult struct {
	// ReadyCycle is when the fetch group is available for decode.
	ReadyCycle int64
	// Missed reports an IL0 miss; Walked an ITLB walk.
	Missed, Walked bool
}

// FetchInst fetches the line containing pc.
func (h *Hierarchy) FetchInst(cycle int64, pc uint64) FetchResult {
	h.stats.Fetches++
	var res FetchResult
	t, walked := h.translate(h.ITLB, &h.itlbMemo, cycle, pc)
	res.Walked = walked
	t = h.IL0.WaitPorts(t)
	if way, hit := h.IL0.Lookup(t, pc); hit {
		h.IL0.ReadData(t, h.IL0.SetOf(pc), way)
	} else {
		res.Missed = true
		t = h.missFlow(h.IL0, t, pc)
	}
	res.ReadyCycle = t
	return res
}

// LoadResult reports a load's timing and data path.
type LoadResult struct {
	// ReadyCycle is when the loaded value is available.
	ReadyCycle int64
	Missed     bool
	Walked     bool
	// STableForward: the value came from the Store Table (full match).
	STableForward bool
	// ReplayStall is the store-replay port hold the load triggered.
	ReplayStall int
	// CorruptConsumed: the load used scrambled data (unsafe mode only).
	CorruptConsumed bool
}

// Load performs a data load at word address addr.
func (h *Hierarchy) Load(cycle int64, addr uint64) LoadResult {
	h.stats.Loads++
	var res LoadResult
	if cycle < h.dFreeAt {
		cycle = h.dFreeAt
	}
	t, walked := h.translate(h.DTLB, &h.dtlbMemo, cycle, addr)
	res.Walked = walked
	t = h.DL0.WaitPorts(t)
	h.dFreeAt = t + 1

	line := h.DL0.LineAddr(addr)
	set := h.DL0.SetOf(addr)
	word := addr &^ 7

	// Probe the STable and the DL0 in parallel (Figure 10).
	pr := h.STab.Probe(t, word, set)
	way, hit := h.DL0.Lookup(t, addr)

	if hit {
		sig, ok := h.DL0.ReadData(t, set, way)
		switch {
		case pr.Kind == stable.MatchFull:
			// STable provides the data; whatever the set read destroyed is
			// repaired by the replay below.
			res.STableForward = true
			h.stats.STableForwards++
		case pr.Kind == stable.MatchSet:
			// DL0 provides the data (Figure 10, set-only match). The loaded
			// word's bitcells were settled — a stabilizing target word
			// would have produced a full match — even though this model
			// tracks stabilization at line granularity. The replay below
			// repairs whatever the set-wide read destroyed.
		case ok:
			if sig != h.sig(line) {
				h.stats.IntegrityErrors++
			}
		default:
			// Clean-avoidance cores never get here; unsafe mode does.
			res.CorruptConsumed = true
			h.stats.CorruptConsumed++
		}
	} else if pr.Kind == stable.MatchFull {
		// Stored word whose line has since been evicted: the STable still
		// holds the latest value.
		res.STableForward = true
		h.stats.STableForwards++
	}

	if pr.Kind != stable.MatchNone {
		// Repair: re-execute the stores from the oldest match onward on
		// consecutive cycles; each re-enters the STable as a fresh store
		// and rewrites its DL0 word, restoring whatever the set-wide read
		// destroyed. The D-port stalls for the replay duration.
		res.ReplayStall = len(pr.Replay)
		h.stats.DL0ReplayStallCycles += uint64(len(pr.Replay))
		destroyed := h.corruptedWays(set)
		for i, e := range pr.Replay {
			tc := t + int64(i)
			h.STab.Insert(tc, e.Addr, e.Set, e.Data)
			if w, hit2 := h.DL0.Lookup(tc, e.Addr); hit2 {
				h.DL0.WriteData(tc, e.Set, w, h.sig(h.DL0.LineAddr(e.Addr)))
			}
		}
		h.DL0.HoldPorts(t+1, t+int64(len(pr.Replay)))
		if end := t + int64(len(pr.Replay)) + 1; end > h.dFreeAt {
			h.dFreeAt = end
		}
		left := h.corruptedWays(set)
		h.stats.RepairedDestructions += uint64(destroyed - left)
		// A survivor would be an IRAW window without STable coverage — a
		// modelling bug, surfaced through the integrity counter.
		h.stats.IntegrityErrors += uint64(left)
	}

	if !hit {
		res.Missed = true
		t = h.missFlow(h.DL0, t, addr)
	}
	res.ReadyCycle = t
	return res
}

// corruptedWays counts the violation-scrambled entries of a DL0 set — from
// the sram array's eagerly maintained per-set summary on the fast path, by
// rescanning the set's entries on the slow one.
func (h *Hierarchy) corruptedWays(set int) int {
	if !h.noSigMemo { // the hierarchy-level fast-path switch
		return h.DL0.Data().CorruptInSet(set * h.DL0.Config().Ways)
	}
	n := 0
	for w := 0; w < h.DL0.Config().Ways; w++ {
		if h.DL0.CorruptedAt(set, w) {
			n++
		}
	}
	return n
}

// StoreResult reports a store's timing.
type StoreResult struct {
	// DoneCycle is when the store has committed to the DL0 (or WCB).
	DoneCycle int64
	Missed    bool
	Walked    bool
}

// CommitStore commits a store to word address addr with the given data.
// Stores read tags (always stable — only fills write tags, and fills stall
// the ports) and write data; writing into stabilizing cells is safe.
func (h *Hierarchy) CommitStore(cycle int64, addr uint64, data uint64) StoreResult {
	h.stats.Stores++
	var res StoreResult
	if cycle < h.dFreeAt {
		cycle = h.dFreeAt
	}
	t, walked := h.translate(h.DTLB, &h.dtlbMemo, cycle, addr)
	res.Walked = walked
	t = h.DL0.WaitPorts(t)
	h.dFreeAt = t + 1

	line := h.DL0.LineAddr(addr)
	set := h.DL0.SetOf(addr)
	word := addr &^ 7

	way, hit := h.DL0.Lookup(t, addr)
	if !hit {
		// Write-allocate: bring the line in first.
		res.Missed = true
		t = h.missFlow(h.DL0, t, addr)
		if w2, hit2 := h.DL0.Lookup(t, addr); hit2 {
			way, hit = w2, true
		}
	}
	if hit {
		h.bumpLineVer(line)
		h.DL0.WriteData(t, set, way, h.sig(line))
		h.DL0.MarkDirty(set, way)
		h.STab.Insert(t, word, set, data)
	} else {
		// Uncacheable (Faulty-Bits full-set disable): write through.
		wstart := h.WCB.Reserve(t)
		wdone := h.ul1Access(wstart, addr, true)
		h.WCB.Commit(wstart, wdone)
	}
	res.DoneCycle = t
	return res
}

// Functional warm-up replay. WarmFetch, WarmLoad and WarmStore replay the
// access stream of a sample window's warm-up prefix under the
// timing-independent access-order contract (see the package doc): they
// update exactly the state a later access can observe through its *content*
// — tags, valid bits, LRU recency, dirty bits, TLB entries, the integrity
// oracle's versions and the data arrays' settled signatures — in access
// order, and touch nothing timing-visible: no port holds, no stall or
// hit/miss statistics, no in-flight (MSHR) records, no STable entries, no
// stabilization windows, and no movement of the data-side serialization
// point. The state they leave behind is a pure function of the access
// sequence — independent of the clock plan, Vcc level, IRAW mode and the
// cycle the replay runs at — and every write lands settled, so the timed
// engine that takes over at at+1 starts from a warm, fully stable
// hierarchy.

// BeginWarm starts a warm-up replay: it invalidates the warm-path memos,
// whose repeat-skip argument only holds while every access to the memoized
// blocks goes through the warm path — timed execution since the last
// replay may have moved LRU state or evicted the memoized lines.
// core.WarmReplay calls it before replaying.
func (h *Hierarchy) BeginWarm() {
	h.warmITLB.valid = false
	h.warmDTLB.valid = false
	h.warmDL0.valid = false
}

// WarmFetch replays an instruction fetch of the line containing pc. `at`
// anchors the settled writes on the core timeline: installed state is
// readable from at+1, the first cycle the timed engine simulates.
func (h *Hierarchy) WarmFetch(at int64, pc uint64) {
	h.warmTranslate(h.ITLB, &h.warmITLB, at, pc)
	if _, hit := h.IL0.WarmLookup(pc); !hit {
		h.warmMissFlow(h.IL0, at, pc)
	}
}

// WarmLoad replays a data load at word address addr.
func (h *Hierarchy) WarmLoad(at int64, addr uint64) {
	h.warmTranslate(h.DTLB, &h.warmDTLB, at, addr)
	line := h.DL0.LineAddr(addr)
	if h.warmDL0.valid && h.warmDL0.line == line {
		return // repeat of the previous data access: state no-op
	}
	way, hit := h.DL0.WarmLookup(addr)
	if !hit {
		if way, hit = h.warmMissFlow(h.DL0, at, addr); !hit {
			h.warmDL0.valid = false
			return
		}
	}
	h.warmDL0 = warmMemo{line: line, set: h.DL0.SetOf(addr), way: way, valid: true}
}

// WarmStore replays a committed store to word address addr: write-allocate
// into the DL0 plus the dirty mark. Two deliberate non-updates follow from
// the settled-state contract:
//
//   - no STable entry — no warm write is still stabilizing when
//     measurement starts, which is exactly the condition the STable covers;
//   - no oracle version bump and no signature rewrite — versions order
//     writes against reads that could observe torn state, and no warm
//     write is observable mid-stabilization. The array keeps the fill-time
//     signature, which stays equal to h.sig(line) precisely because
//     nothing bumps the version, so the measured span's integrity checks
//     hold. This keeps the warm store hit free of map and array traffic.
func (h *Hierarchy) WarmStore(at int64, addr uint64) {
	h.warmTranslate(h.DTLB, &h.warmDTLB, at, addr)
	line := h.DL0.LineAddr(addr)
	if h.warmDL0.valid && h.warmDL0.line == line {
		if !h.warmDL0.dirty {
			h.DL0.MarkDirty(h.warmDL0.set, h.warmDL0.way)
			h.warmDL0.dirty = true
		}
		return
	}
	way, hit := h.DL0.WarmLookup(addr)
	if !hit {
		way, hit = h.warmMissFlow(h.DL0, at, addr)
	}
	if hit {
		set := h.DL0.SetOf(addr)
		h.DL0.MarkDirty(set, way)
		h.warmDL0 = warmMemo{line: line, set: set, way: way, dirty: true, valid: true}
	} else {
		// Uncacheable (Faulty-Bits full-set disable): write through to UL1.
		h.warmDL0.valid = false
		h.warmUL1(at, addr, true)
	}
}

// warmTranslate touches the TLB entry for addr, filling it on a miss; a
// repeat of the TLB's previous page (the dominant case) is a state no-op
// and returns through the memo.
func (h *Hierarchy) warmTranslate(tlb *Cache, memo *warmMemo, at int64, addr uint64) {
	page := tlb.LineAddr(addr)
	if memo.valid && memo.line == page {
		return
	}
	if _, hit := tlb.WarmLookup(addr); !hit {
		tlb.WarmFill(at, addr, h.sig(page))
	}
	*memo = warmMemo{line: page, valid: true}
}

// warmUL1 touches (or dirties) addr's line in UL1, filling on a miss; a
// functional mirror of ul1Access with memory beyond UL1 stateless as ever.
func (h *Hierarchy) warmUL1(at int64, addr uint64, write bool) {
	line := h.UL1.LineAddr(addr)
	set := h.UL1.SetOf(addr)
	way, hit := h.UL1.WarmLookup(addr)
	if !hit {
		var ok bool
		_, way, _, _, ok = h.UL1.WarmFill(at, addr, h.sig(line))
		if !ok {
			return // full-set disabled: the line bypasses, as on the timed path
		}
	}
	if write {
		h.UL1.MarkDirty(set, way)
		h.UL1.WarmWrite(at, set, way, h.sig(line))
	}
}

// warmMissFlow is missFlow's functional mirror for an L1 (IL0 or DL0) miss:
// UL1 access, line install, dirty-victim writeback into UL1, and the oracle
// GC for lines leaving the DL0. It returns the installed way; ok is false
// when the set is fully disabled and the line stays uncached.
func (h *Hierarchy) warmMissFlow(l1 *Cache, at int64, addr uint64) (way int, ok bool) {
	h.warmUL1(at, addr, false)
	victim, way, dirty, evicted, ok := l1.WarmFill(at, addr, h.sig(l1.LineAddr(addr)))
	if !ok {
		return 0, false
	}
	if evicted && dirty {
		h.warmUL1(at, victim, true)
	}
	if evicted && l1 == h.DL0 {
		h.gcOracleLine(victim)
	}
	return way, true
}

// ViolationReads sums the violating reads across every block's data array
// (the ground-truth corruption signal for the validation tests).
func (h *Hierarchy) ViolationReads() uint64 {
	var total uint64
	for _, c := range []*Cache{h.IL0, h.DL0, h.UL1, h.ITLB, h.DTLB} {
		total += c.Data().Stats().ViolationReads
	}
	return total
}

// CollateralDestructions sums set-read destructions across the hierarchy.
func (h *Hierarchy) CollateralDestructions() uint64 {
	var total uint64
	for _, c := range []*Cache{h.IL0, h.DL0, h.UL1, h.ITLB, h.DTLB} {
		total += c.Data().Stats().CollateralDestructions
	}
	return total
}

// TotalBits sums SRAM capacity for the area accounting.
func (h *Hierarchy) TotalBits() int {
	total := 0
	for _, c := range []*Cache{h.IL0, h.DL0, h.UL1, h.ITLB, h.DTLB} {
		total += c.TotalBits()
	}
	return total
}
