package predictor

import "fmt"

// WarmState is the checkpointable snapshot of a predictor trained only
// through the functional warm path (WarmBranch/WarmCall/WarmReturn). Warm
// training stamps every write as settled (updatedAt/rsbPushed -1, no MSB
// flip tracking), so the counters, global history, RSB contents and stack
// top are the complete evolving state; the settled stamps are reasserted on
// restore rather than serialized.
//
// A WarmState is immutable once captured: restores copy out of it, so one
// snapshot is safely shared read-only across any number of cores.
type WarmState struct {
	Counters []uint8
	History  uint32
	RSB      []uint64
	Top      int32
}

// CaptureWarm snapshots the predictor's warm state. It fails if any timed
// stabilization stamp is present — state a pure warm replay from reset
// cannot produce.
func (p *Predictor) CaptureWarm() (*WarmState, error) {
	for i, at := range p.updatedAt {
		if at != -1 || p.msbFlipped[i] {
			return nil, fmt.Errorf("predictor: counter %d carries a timed update stamp", i)
		}
	}
	for i, at := range p.rsbPushed {
		if at != -1 {
			return nil, fmt.Errorf("predictor: RSB entry %d carries a timed push stamp", i)
		}
	}
	s := &WarmState{
		Counters: make([]uint8, len(p.counters)),
		History:  p.history,
		RSB:      make([]uint64, len(p.rsb)),
		Top:      int32(p.top),
	}
	copy(s.Counters, p.counters)
	copy(s.RSB, p.rsb)
	return s, nil
}

// RestoreWarm loads a warm snapshot into the predictor, which must be
// freshly constructed (or equivalent to it). The snapshot is only read.
func (p *Predictor) RestoreWarm(s *WarmState) error {
	if len(s.Counters) != len(p.counters) || len(s.RSB) != len(p.rsb) {
		return fmt.Errorf("predictor: warm snapshot shape mismatch (%d/%d counters, %d/%d RSB entries)",
			len(s.Counters), len(p.counters), len(s.RSB), len(p.rsb))
	}
	if s.Top < 0 || int(s.Top) >= p.cfg.RSBEntries {
		return fmt.Errorf("predictor: warm snapshot top %d out of range [0,%d)", s.Top, p.cfg.RSBEntries)
	}
	copy(p.counters, s.Counters)
	copy(p.rsb, s.RSB)
	p.history = s.History
	p.top = int(s.Top)
	for i := range p.updatedAt {
		p.updatedAt[i] = -1
		p.msbFlipped[i] = false
	}
	for i := range p.rsbPushed {
		p.rsbPushed[i] = -1
	}
	return nil
}
