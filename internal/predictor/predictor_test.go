package predictor

import "testing"

func TestBimodalLearnsBias(t *testing.T) {
	p := New(DefaultConfig())
	p.SetStabilizeCycles(0)
	const pc = 0x400100
	cycle := int64(0)
	// Train taken.
	for i := 0; i < 10; i++ {
		cycle += 10
		pred := p.PredictBranch(cycle, pc)
		p.UpdateBranch(cycle, pc, true, pred != true)
	}
	if !p.PredictBranch(cycle+10, pc) {
		t.Fatal("predictor failed to learn a taken bias")
	}
	// Retrain not-taken.
	for i := 0; i < 10; i++ {
		cycle += 10
		pred := p.PredictBranch(cycle, pc)
		p.UpdateBranch(cycle, pc, false, pred != false)
	}
	if p.PredictBranch(cycle+10, pc) {
		t.Fatal("predictor failed to relearn a not-taken bias")
	}
}

func TestCountersSaturate(t *testing.T) {
	p := New(DefaultConfig())
	const pc = 0x400200
	for i := 0; i < 100; i++ {
		p.UpdateBranch(int64(i*10), pc, true, false)
	}
	// One not-taken must not flip a saturated counter.
	p.UpdateBranch(2000, pc, false, false)
	if !p.PredictBranch(3000, pc) {
		t.Fatal("one contrary outcome flipped a saturated counter")
	}
}

// TestPotentialCorruptionWindow reproduces the Section 4.5 hazard: a
// prediction read within N cycles of an update that flipped the counter
// MSB returns the stale direction and is counted.
func TestPotentialCorruptionWindow(t *testing.T) {
	p := New(DefaultConfig())
	p.SetStabilizeCycles(1)
	const pc = 0x400300
	// Counters start weakly-not-taken (1). Two taken updates cross the MSB
	// on the first (1->2).
	p.UpdateBranch(100, pc, true, false) // MSB flips at cycle 100
	got := p.PredictBranch(101, pc)      // read inside the window
	if got {
		t.Fatal("in-window read should observe the stale (not-taken) MSB")
	}
	if p.Stats().PotentialCorruptions != 1 {
		t.Fatalf("PotentialCorruptions = %d, want 1", p.Stats().PotentialCorruptions)
	}
	// After the window the new direction is visible.
	if !p.PredictBranch(102, pc) {
		t.Fatal("post-window read should observe the updated counter")
	}
	// A non-MSB-flipping update (2->3) never corrupts.
	p.UpdateBranch(200, pc, true, false)
	before := p.Stats().PotentialCorruptions
	if !p.PredictBranch(201, pc) {
		t.Fatal("non-flip in-window read changed direction")
	}
	if p.Stats().PotentialCorruptions != before {
		t.Fatal("non-flip update counted as corruption")
	}
}

func TestCorruptionWindowDisabledAtN0(t *testing.T) {
	p := New(DefaultConfig())
	p.SetStabilizeCycles(0)
	const pc = 0x400400
	p.UpdateBranch(100, pc, true, false)
	p.PredictBranch(101, pc)
	if p.Stats().PotentialCorruptions != 0 {
		t.Fatal("corruption counted with IRAW off")
	}
}

func TestRSBRoundTrip(t *testing.T) {
	p := New(DefaultConfig())
	p.SetStabilizeCycles(1)
	p.PushCall(10, 0x401000)
	p.PushCall(20, 0x402000)
	tgt, stall, conflict := p.PredictReturn(100)
	if tgt != 0x402000 || stall != 0 || conflict {
		t.Fatalf("PredictReturn = (%#x,%d,%v)", tgt, stall, conflict)
	}
	tgt, _, _ = p.PredictReturn(110)
	if tgt != 0x401000 {
		t.Fatalf("second return = %#x, want 0x401000", tgt)
	}
}

// TestRSBConflict: a return popping an entry pushed within the window is a
// conflict (call and return 1 cycle apart with N=1), and the predicted
// target is corrupted.
func TestRSBConflict(t *testing.T) {
	p := New(DefaultConfig())
	p.SetStabilizeCycles(1)
	p.PushCall(100, 0x401000)
	tgt, stall, conflict := p.PredictReturn(101)
	if !conflict || stall != 0 {
		t.Fatalf("want conflict, got (%#x,%d,%v)", tgt, stall, conflict)
	}
	if tgt == 0x401000 {
		t.Fatal("conflicting return returned an intact target")
	}
	if p.Stats().RSBConflicts != 1 {
		t.Fatalf("RSBConflicts = %d, want 1", p.Stats().RSBConflicts)
	}
	// Outside the window: clean.
	p.PushCall(200, 0x403000)
	tgt, _, conflict = p.PredictReturn(202)
	if conflict || tgt != 0x403000 {
		t.Fatalf("clean return = (%#x,%v)", tgt, conflict)
	}
}

// TestRSBDeterministicStalls: the testability variant stalls instead of
// corrupting (Section 4.5: "the RSB should be stalled after a call").
func TestRSBDeterministicStalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Deterministic = true
	p := New(cfg)
	p.SetStabilizeCycles(1)
	p.PushCall(100, 0x401000)
	tgt, stall, conflict := p.PredictReturn(101)
	if conflict {
		t.Fatal("deterministic mode reported a conflict")
	}
	if stall != 1 {
		t.Fatalf("stall = %d, want 1", stall)
	}
	if tgt != 0x401000 {
		t.Fatalf("target = %#x, want intact address", tgt)
	}
	if p.Stats().RSBStallCycles != 1 {
		t.Fatalf("RSBStallCycles = %d, want 1", p.Stats().RSBStallCycles)
	}
}

func TestRSBWrapsAround(t *testing.T) {
	p := New(Config{BPEntries: 64, RSBEntries: 2})
	p.PushCall(10, 0xA)
	p.PushCall(20, 0xB)
	p.PushCall(30, 0xC) // overwrites 0xA
	tgt, _, _ := p.PredictReturn(100)
	if tgt != 0xC {
		t.Fatalf("pop1 = %#x", tgt)
	}
	tgt, _, _ = p.PredictReturn(110)
	if tgt != 0xB {
		t.Fatalf("pop2 = %#x", tgt)
	}
	tgt, _, _ = p.PredictReturn(120) // wrapped: oldest slot now holds 0xC
	if tgt != 0xC {
		t.Fatalf("pop3 = %#x, want wrap to 0xC", tgt)
	}
}

func TestGshareDiffersFromBimodal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HistoryBits = 8
	g := New(cfg)
	const pc = 0x400500
	// Alternate history so the same PC maps to different counters.
	g.UpdateBranch(10, pc, true, false)
	g.UpdateBranch(20, pc, true, false)
	idxAfterTT := g.index(pc)
	g.UpdateBranch(30, pc, false, false)
	idxAfterF := g.index(pc)
	if idxAfterTT == idxAfterF {
		t.Fatal("gshare index ignores history")
	}
}

func TestStatsAccumulate(t *testing.T) {
	p := New(DefaultConfig())
	p.PredictBranch(1, 0x10)
	p.UpdateBranch(1, 0x10, true, true)
	p.PredictReturn(5)
	p.NoteReturnMispredict()
	s := p.Stats()
	if s.Predictions != 1 || s.Mispredicts != 1 || s.ReturnPredictions != 1 || s.ReturnMispredicts != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAreaAccounting(t *testing.T) {
	p := New(DefaultConfig())
	if p.CounterBits() != 8192 {
		t.Fatalf("CounterBits = %d, want 8192", p.CounterBits())
	}
	if p.RSBBits() != 512 {
		t.Fatalf("RSBBits = %d, want 512", p.RSBBits())
	}
}

func TestNewValidation(t *testing.T) {
	for _, cfg := range []Config{
		{BPEntries: 0, RSBEntries: 8},
		{BPEntries: 100, RSBEntries: 8}, // not power of two
		{BPEntries: 64, RSBEntries: 0},
		{BPEntries: 64, RSBEntries: 8, HistoryBits: -1},
	} {
		func() {
			defer func() { recover() }()
			New(cfg)
			t.Errorf("config %+v accepted", cfg)
		}()
	}
}

// TestWarmMatchesTimedTraining: functionally warmed predictor state is
// behaviorally identical to timed training over the same resolved stream —
// same branch predictions at every trained site, same RSB pops.
func TestWarmMatchesTimedTraining(t *testing.T) {
	timed := New(DefaultConfig())
	warm := New(DefaultConfig())
	timed.SetStabilizeCycles(0)
	warm.SetStabilizeCycles(0)

	// A deterministic pseudo-random mix of branches, calls and returns.
	state := uint64(0x1234_5678)
	next := func(n uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33 % n
	}
	cycle := int64(0)
	depth := 0
	pcs := make(map[uint64]bool)
	for i := 0; i < 5000; i++ {
		cycle += 3
		switch op := next(10); {
		case op < 7:
			pc := 0x400000 + next(256)*4
			taken := next(2) == 0
			pcs[pc] = true
			pred := timed.PredictBranch(cycle, pc)
			timed.UpdateBranch(cycle, pc, taken, pred != taken)
			warm.WarmBranch(pc, taken)
		case op < 9 || depth == 0:
			ret := 0x500000 + next(1024)*4
			timed.PushCall(cycle, ret)
			warm.WarmCall(ret)
			depth++
		default:
			timed.PredictReturn(cycle)
			warm.WarmReturn()
			depth--
		}
	}
	// Same direction at every trained site.
	probe := cycle + 1000
	for pc := range pcs {
		if a, b := timed.PredictBranch(probe, pc), warm.PredictBranch(probe, pc); a != b {
			t.Fatalf("pc %x: timed predicts %v, warm predicts %v", pc, a, b)
		}
	}
	// Same RSB contents, popped side by side.
	for i := 0; i < DefaultConfig().RSBEntries; i++ {
		ta, _, _ := timed.PredictReturn(probe)
		tb, _, _ := warm.PredictReturn(probe)
		if ta != tb {
			t.Fatalf("RSB slot %d: timed %x, warm %x", i, ta, tb)
		}
	}
}

// TestWarmWritesAreSettled: under an active stabilization window, warm
// training leaves no window behind — an immediate read sees neither a
// potential corruption nor an RSB conflict.
func TestWarmWritesAreSettled(t *testing.T) {
	p := New(DefaultConfig())
	p.SetStabilizeCycles(4)
	const pc = 0x400100
	// Drive the counter across the MSB boundary (the corruptible case).
	p.WarmBranch(pc, true)
	p.WarmBranch(pc, true)
	if p.PredictBranch(1, pc) != true {
		t.Error("warm-trained branch mispredicted")
	}
	if got := p.Stats().PotentialCorruptions; got != 0 {
		t.Errorf("warm branch write left a stabilization window: %d potential corruptions", got)
	}
	p.WarmCall(0x500004)
	tgt, stall, conflict := p.PredictReturn(1)
	if conflict || stall != 0 || tgt != 0x500004 {
		t.Errorf("warm call left a stabilizing RSB entry: tgt=%x stall=%d conflict=%v", tgt, stall, conflict)
	}
}
