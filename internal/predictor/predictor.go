// Package predictor implements the prediction-only SRAM blocks of the core:
// the branch predictor (BP) and the return stack buffer (RSB), with the
// Section 4.5 IRAW policy — violations are *ignored* because a wrong
// prediction affects performance, never correctness.
//
// The package still tracks every would-be violation: reads of BP counters
// inside their stabilization window whose update flipped the counter's
// uppermost bit ("only those entries whose uppermost bit is flipped could
// be corrupted"), and returns that pop an RSB entry pushed within the
// window. The paper reports a negligible 0.0017% potential extra
// misprediction rate and no short call→return conflicts; the reproduction
// measures both. A deterministic mode (for post-silicon test comparability)
// stalls returns instead, as Section 4.5 suggests.
package predictor

import "fmt"

// Config sizes the predictor.
type Config struct {
	// BPEntries is the number of 2-bit counters (power of two).
	BPEntries int
	// HistoryBits > 0 selects gshare indexing with that many global-history
	// bits; 0 selects bimodal (PC-only) indexing.
	HistoryBits int
	// RSBEntries is the return-stack depth.
	RSBEntries int
	// Deterministic selects the testability variant: returns stall until
	// the top RSB entry stabilizes rather than risking a corrupt target.
	Deterministic bool
}

// DefaultConfig matches the modelled core: 4K-counter bimodal BP, 8-entry RSB.
func DefaultConfig() Config {
	return Config{BPEntries: 4096, HistoryBits: 0, RSBEntries: 8}
}

// Stats counts predictor activity.
type Stats struct {
	Predictions uint64
	Mispredicts uint64
	// PotentialCorruptions counts BP counter reads inside a stabilization
	// window whose pending update flipped the counter MSB — the paper's
	// "potential extra misprediction" events.
	PotentialCorruptions uint64
	ReturnPredictions    uint64
	ReturnMispredicts    uint64
	// RSBConflicts counts returns that popped a still-stabilizing entry
	// (call and return fewer than N+1 cycles apart).
	RSBConflicts uint64
	// RSBStallCycles counts cycles spent waiting in deterministic mode.
	RSBStallCycles uint64
}

// Predictor is the BP+RSB block. Not goroutine-safe.
type Predictor struct {
	cfg Config
	n   int // stabilization cycles; 0 = IRAW machinery off

	counters []uint8 // 2-bit saturating: 0,1 not-taken; 2,3 taken
	// updatedAt and msbFlipped track each counter's last write for the
	// violation accounting (the hardware needs nothing: violations are
	// simply tolerated).
	updatedAt  []int64
	msbFlipped []bool
	history    uint32

	rsb       []uint64
	rsbPushed []int64
	top       int // index of next push slot

	stats Stats
}

// Validate reports whether the configuration is structurally usable. New
// panics on the same conditions (an invariant backstop), so API boundaries
// that accept user-supplied configs — core.New — check here first and
// return the error instead.
func (cfg Config) Validate() error {
	if cfg.BPEntries <= 0 || cfg.BPEntries&(cfg.BPEntries-1) != 0 {
		return fmt.Errorf("predictor: BPEntries %d must be a positive power of two", cfg.BPEntries)
	}
	if cfg.RSBEntries <= 0 {
		return fmt.Errorf("predictor: RSBEntries must be positive")
	}
	if cfg.HistoryBits < 0 || cfg.HistoryBits > 20 {
		return fmt.Errorf("predictor: HistoryBits %d out of range", cfg.HistoryBits)
	}
	return nil
}

// New returns a predictor with weakly-not-taken counters and an empty RSB.
func New(cfg Config) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	p := &Predictor{
		cfg:        cfg,
		counters:   make([]uint8, cfg.BPEntries),
		updatedAt:  make([]int64, cfg.BPEntries),
		msbFlipped: make([]bool, cfg.BPEntries),
		rsb:        make([]uint64, cfg.RSBEntries),
		rsbPushed:  make([]int64, cfg.RSBEntries),
	}
	for i := range p.counters {
		p.counters[i] = 1 // weakly not-taken
		p.updatedAt[i] = -1
	}
	for i := range p.rsbPushed {
		p.rsbPushed[i] = -1
	}
	return p
}

// Config returns the predictor configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Stats returns a snapshot of the counters.
func (p *Predictor) Stats() Stats { return p.stats }

// SetStabilizeCycles reconfigures N on a Vcc change (0 disables the
// violation window entirely).
func (p *Predictor) SetStabilizeCycles(n int) {
	if n < 0 {
		panic("predictor: negative N")
	}
	p.n = n
}

func (p *Predictor) index(pc uint64) int {
	idx := uint32(pc >> 2)
	if p.cfg.HistoryBits > 0 {
		idx ^= p.history & (1<<p.cfg.HistoryBits - 1)
	}
	return int(idx) & (p.cfg.BPEntries - 1)
}

// inWindow reports whether a write at w is still stabilizing at cycle c.
func (p *Predictor) inWindow(c, w int64) bool {
	return p.n > 0 && w >= 0 && c > w && c <= w+int64(p.n)
}

// PredictBranch returns the predicted direction for the branch at pc,
// read at the given cycle. If the indexed counter is mid-stabilization and
// its pending update flipped the MSB, the read is a potential corruption:
// the model returns the *pre-update* direction (the cell has not finished
// flipping) and counts the event.
func (p *Predictor) PredictBranch(cycle int64, pc uint64) bool {
	p.stats.Predictions++
	i := p.index(pc)
	taken := p.counters[i] >= 2
	if p.inWindow(cycle, p.updatedAt[i]) && p.msbFlipped[i] {
		p.stats.PotentialCorruptions++
		taken = !taken // the settled-so-far cell still shows the old MSB
	}
	return taken
}

// UpdateBranch records the resolved direction of the branch at pc,
// updating the counter (an SRAM write that stabilizes over N cycles) and
// the global history. `mispredicted` feeds the statistics.
func (p *Predictor) UpdateBranch(cycle int64, pc uint64, taken, mispredicted bool) {
	if mispredicted {
		p.stats.Mispredicts++
	}
	i := p.index(pc)
	old := p.counters[i]
	c := old
	if taken {
		if c < 3 {
			c++
		}
	} else {
		if c > 0 {
			c--
		}
	}
	if c != old {
		p.counters[i] = c
		p.updatedAt[i] = cycle
		p.msbFlipped[i] = (old >= 2) != (c >= 2)
	}
	p.history = p.history<<1 | b2u(taken)
}

// PushCall records a call's return address at the given cycle (an RSB
// write, stabilizing over N cycles).
func (p *Predictor) PushCall(cycle int64, retPC uint64) {
	p.rsb[p.top] = retPC
	p.rsbPushed[p.top] = cycle
	p.top = (p.top + 1) % p.cfg.RSBEntries
}

// PredictReturn pops the RSB and returns the predicted target. If the
// popped entry is still stabilizing, the outcome depends on the mode:
// deterministic mode reports the stall cycles needed before the entry may
// be read; otherwise the event is counted as an RSB conflict and the
// returned target is corrupted (guaranteed mispredict).
func (p *Predictor) PredictReturn(cycle int64) (target uint64, stallCycles int, conflict bool) {
	p.stats.ReturnPredictions++
	p.top = (p.top + p.cfg.RSBEntries - 1) % p.cfg.RSBEntries
	pushed := p.rsbPushed[p.top]
	target = p.rsb[p.top]
	if p.inWindow(cycle, pushed) {
		if p.cfg.Deterministic {
			stall := pushed + int64(p.n) - cycle + 1
			p.stats.RSBStallCycles += uint64(stall)
			return target, int(stall), false
		}
		p.stats.RSBConflicts++
		return target ^ 0x4, 0, true // corrupted prediction
	}
	return target, 0, false
}

// NoteReturnMispredict feeds the return-misprediction statistic.
func (p *Predictor) NoteReturnMispredict() { p.stats.ReturnMispredicts++ }

// Functional warm-up replay. WarmBranch, WarmCall and WarmReturn train the
// predictor over a sample window's warm-up prefix under the same
// timing-independent contract as the cache hierarchy's warm path: the
// counters, global history and RSB contents evolve exactly as a timed run
// over the same instruction sequence would evolve them (direction training
// depends only on resolved outcomes, never on timing), every write is
// recorded as settled (no stabilization stamp, so no violation window can
// reach into the measured span), and no statistics move.

// WarmBranch trains the branch at pc with its resolved direction.
func (p *Predictor) WarmBranch(pc uint64, taken bool) {
	i := p.index(pc)
	old := p.counters[i]
	c := old
	if taken {
		if c < 3 {
			c++
		}
	} else {
		if c > 0 {
			c--
		}
	}
	if c != old {
		p.counters[i] = c
		p.updatedAt[i] = -1 // settled: the warm write cannot be mid-stabilization
		p.msbFlipped[i] = false
	}
	p.history = p.history<<1 | b2u(taken)
}

// WarmCall pushes a call's return address as a settled RSB entry.
func (p *Predictor) WarmCall(retPC uint64) {
	p.rsb[p.top] = retPC
	p.rsbPushed[p.top] = -1
	p.top = (p.top + 1) % p.cfg.RSBEntries
}

// WarmReturn pops the RSB (keeping the stack aligned with the replayed
// call/return stream) without prediction, conflict or stall accounting.
func (p *Predictor) WarmReturn() {
	p.top = (p.top + p.cfg.RSBEntries - 1) % p.cfg.RSBEntries
}

// Flush clears speculative history state after a pipeline flush. Counters
// and the RSB survive (as in hardware), only the in-flight history is
// squashed; the RSB top is left as-is since the modelled core resolves
// calls/returns at issue.
func (p *Predictor) Flush() {}

// CounterBits returns the BP storage in bits (for area accounting).
func (p *Predictor) CounterBits() int { return 2 * p.cfg.BPEntries }

// RSBBits returns the RSB storage in bits.
func (p *Predictor) RSBBits() int { return 64 * p.cfg.RSBEntries }

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
