package ckpt_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"lowvcc/internal/circuit"
	"lowvcc/internal/ckpt"
	"lowvcc/internal/core"
	"lowvcc/internal/trace"
	"lowvcc/internal/workload"
)

func testTrace(t *testing.T) *trace.Trace {
	t.Helper()
	return workload.LongTrace(40000, 7)
}

func warmSnapshot(t *testing.T, cfg core.Config, tr *trace.Trace, n int) *core.WarmState {
	t.Helper()
	c := core.MustNew(cfg)
	if err := c.WarmReplay(tr, n); err != nil {
		t.Fatal(err)
	}
	ws, err := c.CaptureWarm()
	if err != nil {
		t.Fatal(err)
	}
	return ws
}

// TestWarmStateVccIndependence: the access-order contract promises warm
// state is a pure function of the instruction sequence — so snapshots
// captured at different Vcc levels, and under modes that do not install
// fault maps, must be byte-identical. This is the invariant that lets one
// snapshot serve every operating point of a sweep.
func TestWarmStateVccIndependence(t *testing.T) {
	tr := testTrace(t)
	const n = 30000
	ref := ckpt.EncodeSnapshot(warmSnapshot(t, core.DefaultConfig(500, circuit.ModeIRAW), tr, n))
	for _, cfg := range []core.Config{
		core.DefaultConfig(700, circuit.ModeIRAW),
		core.DefaultConfig(400, circuit.ModeIRAW),
		core.DefaultConfig(500, circuit.ModeBaseline),
		core.DefaultConfig(600, circuit.ModeExtraBypass),
	} {
		got := ckpt.EncodeSnapshot(warmSnapshot(t, cfg, tr, n))
		if !bytes.Equal(got, ref) {
			t.Errorf("warm snapshot at %v %v differs from 500mV iraw reference", cfg.Vcc, cfg.Mode)
		}
	}

	// Mode-irrelevant knobs must not leak into the snapshot either.
	knobbed := core.DefaultConfig(450, circuit.ModeIRAW)
	knobbed.ForcedN = 3
	knobbed.DisableFastPaths = true
	if got := ckpt.EncodeSnapshot(warmSnapshot(t, knobbed, tr, n)); !bytes.Equal(got, ref) {
		t.Error("timing-only knobs (ForcedN, DisableFastPaths) changed the warm snapshot")
	}

	// Fault maps do shape warm evolution (disabled lines change victim
	// selection): same seed and sigma must agree across Vcc, and the key
	// must separate them from the no-map configurations.
	fb1 := ckpt.EncodeSnapshot(warmSnapshot(t, core.DefaultConfig(500, circuit.ModeFaultyBits), tr, n))
	fb2 := ckpt.EncodeSnapshot(warmSnapshot(t, core.DefaultConfig(425, circuit.ModeFaultyBits), tr, n))
	if !bytes.Equal(fb1, fb2) {
		t.Error("faulty-bits snapshots with identical fault maps differ across Vcc")
	}

	if ckpt.WarmConfigKey(core.DefaultConfig(500, circuit.ModeIRAW)) !=
		ckpt.WarmConfigKey(core.DefaultConfig(700, circuit.ModeBaseline)) {
		t.Error("WarmConfigKey split vcc/mode-independent configurations")
	}
	if ckpt.WarmConfigKey(core.DefaultConfig(500, circuit.ModeIRAW)) ==
		ckpt.WarmConfigKey(core.DefaultConfig(500, circuit.ModeFaultyBits)) {
		t.Error("WarmConfigKey merged fault-mapped and map-free configurations")
	}
	seeded := core.DefaultConfig(500, circuit.ModeFaultyBits)
	seeded.Seed = 99
	if ckpt.WarmConfigKey(core.DefaultConfig(500, circuit.ModeFaultyBits)) == ckpt.WarmConfigKey(seeded) {
		t.Error("WarmConfigKey ignored the fault-map seed")
	}
}

// TestWarmSegmentationInvariance: replaying a prefix in arbitrary segments
// leaves the same canonical snapshot as one continuous replay — the
// property that makes restore-plus-residual-tail interchangeable with live
// warm-up.
func TestWarmSegmentationInvariance(t *testing.T) {
	tr := testTrace(t)
	cfg := core.DefaultConfig(500, circuit.ModeIRAW)
	const n = 30000
	ref := ckpt.EncodeSnapshot(warmSnapshot(t, cfg, tr, n))

	for _, cuts := range [][]int{
		{10000, 20000},
		{1, 2, 3, 29999},
		{4096, 8192, 12288, 16384},
		{29999},
	} {
		c := core.MustNew(cfg)
		pos := 0
		for _, cut := range append(cuts, n) {
			if err := c.WarmReplayRange(tr, pos, cut); err != nil {
				t.Fatal(err)
			}
			pos = cut
		}
		ws, err := c.CaptureWarm()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ckpt.EncodeSnapshot(ws), ref) {
			t.Errorf("segmented replay %v differs from continuous replay", cuts)
		}
	}
}

// TestWarmRestoreRoundTrip: restore into a fresh core reproduces the
// snapshot bit-for-bit (capture(restore(s)) == s), and a measured run from
// the restored core matches one from a live-replayed core exactly.
func TestWarmRestoreRoundTrip(t *testing.T) {
	tr := testTrace(t)
	cfg := core.DefaultConfig(500, circuit.ModeIRAW)
	const n = 30000
	ws := warmSnapshot(t, cfg, tr, n)
	enc := ckpt.EncodeSnapshot(ws)

	restored := core.MustNew(cfg)
	if err := restored.RestoreWarm(ws); err != nil {
		t.Fatal(err)
	}
	ws2, err := restored.CaptureWarm()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckpt.EncodeSnapshot(ws2), enc) {
		t.Fatal("capture(restore(s)) != s")
	}

	live := core.MustNew(cfg)
	if err := live.WarmReplay(tr, n); err != nil {
		t.Fatal(err)
	}
	resLive, err := live.RunWarmed(tr, n)
	if err != nil {
		t.Fatal(err)
	}
	resRestored, err := restored.RunWarmed(tr, n)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resLive, resRestored) {
		t.Fatal("measured run from restored core differs from live-replayed core")
	}
}

// TestWarmRestoreRejectsFaultMapMismatch: a snapshot built under one fault
// map must not restore into a core with a different one — the disabled
// lines differ, so the warm evolutions diverge.
func TestWarmRestoreRejectsFaultMapMismatch(t *testing.T) {
	tr := testTrace(t)
	cfg1 := core.DefaultConfig(500, circuit.ModeFaultyBits)
	cfg2 := cfg1
	cfg2.Seed = 99
	ws := warmSnapshot(t, cfg1, tr, 30000)
	if err := core.MustNew(cfg2).RestoreWarm(ws); err == nil {
		t.Fatal("restore under a different fault map succeeded")
	} else if !strings.Contains(err.Error(), "fault-map") {
		t.Fatalf("unexpected mismatch error: %v", err)
	}
}

// TestWarmToEquivalence: warming through the checkpoint store — cold
// (capturing), warm (restoring), and on disk across store instances — is
// result-identical to a live replay, for boundary spacings that divide the
// prefix exactly and ones that leave a residual tail.
func TestWarmToEquivalence(t *testing.T) {
	tr := testTrace(t)
	cfg := core.DefaultConfig(475, circuit.ModeIRAW)
	th := "trace-under-test"
	wk := ckpt.WarmConfigKey(cfg)

	for _, tc := range []struct{ n, interval int }{
		{30000, 10000}, // boundary-aligned: steady state is restore-only
		{30000, 7000},  // residual tail after the last boundary
		{30000, 40000}, // interval beyond the prefix: pure live replay
		{9999, 2500},
	} {
		live := core.MustNew(cfg)
		if err := live.WarmReplay(tr, tc.n); err != nil {
			t.Fatal(err)
		}
		want, err := live.RunWarmed(tr, tc.n)
		if err != nil {
			t.Fatal(err)
		}

		dir := t.TempDir()
		for round := 0; round < 3; round++ {
			st, err := ckpt.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if round == 2 {
				// Fresh store handle on the same directory: the disk format
				// round-trips, not just the in-memory map.
				if st2, err := ckpt.Open(dir); err == nil {
					st = st2
				}
			}
			c := core.MustNew(cfg)
			if err := st.WarmTo(c, th, wk, tc.interval, tr, tc.n); err != nil {
				t.Fatal(err)
			}
			got, err := c.RunWarmed(tr, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d interval=%d round %d: checkpointed warm-up changed the Result",
					tc.n, tc.interval, round)
			}
		}
	}
}

// TestWarmToNilStore: a nil store degrades to exactly the live replay.
func TestWarmToNilStore(t *testing.T) {
	tr := testTrace(t)
	cfg := core.DefaultConfig(500, circuit.ModeIRAW)
	const n = 20000

	live := core.MustNew(cfg)
	if err := live.WarmReplay(tr, n); err != nil {
		t.Fatal(err)
	}
	want, err := live.RunWarmed(tr, n)
	if err != nil {
		t.Fatal(err)
	}

	var st *ckpt.Store
	c := core.MustNew(cfg)
	if err := st.WarmTo(c, "x", "y", 5000, tr, n); err != nil {
		t.Fatal(err)
	}
	got, err := c.RunWarmed(tr, n)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("nil-store WarmTo differs from live replay")
	}
}

// TestCorruptCheckpointsDetected: truncated manifests and scrambled blobs
// are detected misses — WarmTo falls back to live replay with identical
// results and rebuilds the damaged snapshot.
func TestCorruptCheckpointsDetected(t *testing.T) {
	tr := testTrace(t)
	cfg := core.DefaultConfig(500, circuit.ModeIRAW)
	th, wk := "trace-under-test", ckpt.WarmConfigKey(cfg)
	const n, interval = 20000, 10000

	dir := t.TempDir()
	st, err := ckpt.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warmed := core.MustNew(cfg)
	if err := st.WarmTo(warmed, th, wk, interval, tr, n); err != nil {
		t.Fatal(err)
	}
	want, err := warmed.RunWarmed(tr, n)
	if err != nil {
		t.Fatal(err)
	}

	damage := []func() error{
		func() error { // truncate the deepest manifest mid-file
			path := filepath.Join(dir, ckpt.SnapshotKey(th, wk, n)+".ckpt")
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, data[:len(data)/2], 0o644)
		},
		func() error { // flip a payload byte in every blob
			ents, err := os.ReadDir(dir)
			if err != nil {
				return err
			}
			for _, e := range ents {
				if !strings.HasPrefix(e.Name(), "blob-") {
					continue
				}
				path := filepath.Join(dir, e.Name())
				data, err := os.ReadFile(path)
				if err != nil {
					return err
				}
				data[len(data)-1] ^= 0xFF
				if err := os.WriteFile(path, data, 0o644); err != nil {
					return err
				}
			}
			return nil
		},
	}
	for i, corrupt := range damage {
		if err := corrupt(); err != nil {
			t.Fatal(err)
		}
		// A fresh store sees only the damaged files.
		st, err := ckpt.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		c := core.MustNew(cfg)
		if err := st.WarmTo(c, th, wk, interval, tr, n); err != nil {
			t.Fatal(err)
		}
		got, err := c.RunWarmed(tr, n)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("damage %d: corrupt checkpoint changed the Result", i)
		}
		if s := st.Stats(); s.Corrupt == 0 {
			t.Errorf("damage %d: corruption not counted (stats %+v)", i, s)
		}
		// The rebuild must have replaced the damaged snapshot: a second
		// fresh store restores cleanly.
		st2, err := ckpt.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := st2.Get(ckpt.SnapshotKey(th, wk, n)); !ok {
			t.Errorf("damage %d: snapshot not rebuilt after corruption", i)
		}
	}
}

// TestBlobDedup: snapshots at consecutive boundaries share the blobs of
// components the extra instructions did not touch — content addressing is
// what keeps a many-boundary store compact.
func TestBlobDedup(t *testing.T) {
	tr := testTrace(t)
	cfg := core.DefaultConfig(500, circuit.ModeIRAW)
	dir := t.TempDir()
	st, err := ckpt.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Two snapshots one instruction apart: at most a handful of components
	// change, so blob count must be far below 2 * components.
	c := core.MustNew(cfg)
	if err := st.WarmTo(c, "t", "w", 1, tr, 2); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	blobs, manifests := 0, 0
	for _, e := range ents {
		switch {
		case strings.HasPrefix(e.Name(), "blob-"):
			blobs++
		case strings.HasSuffix(e.Name(), ".ckpt"):
			manifests++
		}
	}
	if manifests != 2 {
		t.Fatalf("manifests = %d, want 2", manifests)
	}
	if blobs >= 12 {
		t.Errorf("blobs = %d: consecutive boundaries shared nothing", blobs)
	}
}
