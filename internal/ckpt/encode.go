package ckpt

import (
	"encoding/binary"
	"fmt"

	"lowvcc/internal/cache"
	"lowvcc/internal/core"
	"lowvcc/internal/predictor"
	"lowvcc/internal/sram"
)

// The wire encoding is deliberately primitive: fixed-width little-endian
// scalars, length-prefixed slices, fields in struct order. Two properties
// matter — it is deterministic (the same warm state encodes to the same
// bytes, which is what makes blobs content-addressable and the
// vcc-independence tests byte-comparable) and it is self-delimiting (a
// decoder can bounds-check every read, so a scrambled blob fails loudly
// instead of producing a plausible snapshot).

type encoder struct{ buf []byte }

func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

func (e *encoder) u64s(v []uint64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.u64(x)
	}
}

func (e *encoder) bytes(v []byte) {
	e.u64(uint64(len(v)))
	e.buf = append(e.buf, v...)
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.err = fmt.Errorf("ckpt: truncated blob at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// lenField reads a slice length and sanity-bounds it against the remaining
// payload so a scrambled length cannot drive a huge allocation.
func (d *decoder) lenField(width int) int {
	n := d.u64()
	if d.err == nil && n > uint64((len(d.buf)-d.off)/width) {
		d.err = fmt.Errorf("ckpt: implausible length %d at offset %d", n, d.off)
	}
	return int(n)
}

func (d *decoder) u64s() []uint64 {
	n := d.lenField(8)
	if d.err != nil {
		return nil
	}
	v := make([]uint64, n)
	for i := range v {
		v[i] = d.u64()
	}
	return v
}

func (d *decoder) bytes() []byte {
	n := d.lenField(1)
	if d.err != nil {
		return nil
	}
	v := make([]byte, n)
	copy(v, d.buf[d.off:d.off+n])
	d.off += n
	return v
}

func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("ckpt: %d trailing bytes after payload", len(d.buf)-d.off)
	}
	return nil
}

func encodeCache(w *cache.WarmState) []byte {
	e := &encoder{buf: make([]byte, 0,
		8*(len(w.Tags)+len(w.Valid)+len(w.Dirty)+len(w.LRU)+7)+
			len(w.Data.Data)+8*len(w.Data.Ready))}
	e.u64s(w.Tags)
	e.u64s(w.Valid)
	e.u64s(w.Dirty)
	e.u64s(w.LRU)
	e.u64(w.LRUTick)
	e.bytes(w.Data.Data)
	e.u64s(w.Data.Ready)
	return e.buf
}

func decodeCache(buf []byte) (*cache.WarmState, error) {
	d := &decoder{buf: buf}
	w := &cache.WarmState{
		Tags:  d.u64s(),
		Valid: d.u64s(),
		Dirty: d.u64s(),
		LRU:   d.u64s(),
	}
	w.LRUTick = d.u64()
	w.Data = &sram.WarmState{Data: d.bytes(), Ready: d.u64s()}
	if err := d.done(); err != nil {
		return nil, err
	}
	return w, nil
}

func encodeBP(w *predictor.WarmState) []byte {
	e := &encoder{buf: make([]byte, 0, len(w.Counters)+8*(len(w.RSB)+5))}
	e.bytes(w.Counters)
	e.u64(uint64(w.History))
	e.u64s(w.RSB)
	e.u64(uint64(uint32(w.Top)))
	return e.buf
}

func decodeBP(buf []byte) (*predictor.WarmState, error) {
	d := &decoder{buf: buf}
	w := &predictor.WarmState{Counters: d.bytes()}
	w.History = uint32(d.u64())
	w.RSB = d.u64s()
	w.Top = int32(uint32(d.u64()))
	if err := d.done(); err != nil {
		return nil, err
	}
	return w, nil
}

// components maps a snapshot to its named component payloads, in the fixed
// manifest order. Each component is one content-addressed blob on disk;
// consecutive boundaries of the same trace typically change only a subset
// of components, so the unchanged ones share their blob files.
func components(ws *core.WarmState) []struct {
	name string
	data []byte
} {
	return []struct {
		name string
		data []byte
	}{
		{"il0", encodeCache(ws.Mem.IL0)},
		{"dl0", encodeCache(ws.Mem.DL0)},
		{"ul1", encodeCache(ws.Mem.UL1)},
		{"itlb", encodeCache(ws.Mem.ITLB)},
		{"dtlb", encodeCache(ws.Mem.DTLB)},
		{"bp", encodeBP(ws.BP)},
	}
}

// componentNames is the manifest order; decode rejects manifests that list
// anything else.
var componentNames = []string{"il0", "dl0", "ul1", "itlb", "dtlb", "bp"}

func assemble(payloads map[string][]byte) (*core.WarmState, error) {
	mem := &cache.HierarchyWarmState{}
	var err error
	for _, p := range []struct {
		name string
		dst  **cache.WarmState
	}{{"il0", &mem.IL0}, {"dl0", &mem.DL0}, {"ul1", &mem.UL1}, {"itlb", &mem.ITLB}, {"dtlb", &mem.DTLB}} {
		if *p.dst, err = decodeCache(payloads[p.name]); err != nil {
			return nil, fmt.Errorf("ckpt: component %s: %w", p.name, err)
		}
	}
	bp, err := decodeBP(payloads["bp"])
	if err != nil {
		return nil, fmt.Errorf("ckpt: component bp: %w", err)
	}
	return &core.WarmState{Mem: mem, BP: bp}, nil
}

// EncodeSnapshot renders a snapshot's canonical byte form: every component
// payload concatenated in manifest order, each length-prefixed. Two
// snapshots are identical warm states iff their encodings are equal — the
// vcc-independence tests compare these bytes directly.
func EncodeSnapshot(ws *core.WarmState) []byte {
	e := &encoder{}
	for _, c := range components(ws) {
		e.bytes(c.data)
	}
	return e.buf
}
