package ckpt_test

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"lowvcc/internal/circuit"
	"lowvcc/internal/ckpt"
	"lowvcc/internal/core"
)

// dirShape counts the manifest and blob files in a store directory.
func dirShape(t *testing.T, dir string) (manifests, blobs int) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		switch {
		case strings.HasSuffix(e.Name(), ".ckpt"):
			manifests++
		case strings.HasPrefix(e.Name(), "blob-"):
			blobs++
		}
	}
	return
}

// TestBudgetEvictsSnapshotsLRU: squeezing the byte budget evicts whole
// snapshots oldest-use first, GCs blobs whose last referencing manifest
// went with them, and a sweep warmed through the shrunken store remains
// result-identical to a live replay (eviction costs work, never results).
func TestBudgetEvictsSnapshotsLRU(t *testing.T) {
	tr := testTrace(t)
	cfg := core.DefaultConfig(500, circuit.ModeIRAW)
	th := "budget-trace"
	wk := ckpt.WarmConfigKey(cfg)
	dir := t.TempDir()

	st, err := ckpt.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.SetBudget(1 << 40) // activate tracking before any flush
	c := core.MustNew(cfg)
	const interval, n = 5000, 20000
	if err := st.WarmTo(c, th, wk, interval, tr, n); err != nil {
		t.Fatal(err)
	}
	manifests, blobs := dirShape(t, dir)
	if manifests != n/interval || blobs == 0 {
		t.Fatalf("dir holds %d manifests / %d blobs, want %d manifests", manifests, blobs, n/interval)
	}
	full := st.DiskUsage()
	if full <= 0 {
		t.Fatalf("DiskUsage = %d after %d snapshots", full, manifests)
	}

	// Squeeze: force at least one eviction. The shallowest boundary is the
	// least recently flushed, so it goes first.
	st.SetBudget(full - 1)
	if s := st.Stats(); s.Evictions == 0 {
		t.Fatal("no evictions after squeezing below usage")
	}
	if st.DiskUsage() > full-1 {
		t.Errorf("DiskUsage %d over budget %d", st.DiskUsage(), full-1)
	}
	// A fresh store over the directory sees the survivors only; the
	// deepest (most recently used) boundary must be among them.
	st2, err := ckpt.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Get(ckpt.SnapshotKey(th, wk, n)); !ok {
		t.Error("most recently used snapshot was evicted")
	}
	if _, ok := st2.Get(ckpt.SnapshotKey(th, wk, interval)); ok {
		t.Error("LRU snapshot survived the squeeze")
	}

	// Warming through the evicted store must still equal a live replay.
	warmed := core.MustNew(cfg)
	if err := st2.WarmTo(warmed, th, wk, interval, tr, n); err != nil {
		t.Fatal(err)
	}
	got, err := warmed.RunWarmed(tr, n)
	if err != nil {
		t.Fatal(err)
	}
	live := core.MustNew(cfg)
	if err := live.WarmReplay(tr, n); err != nil {
		t.Fatal(err)
	}
	want, err := live.RunWarmed(tr, n)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("warmed run through evicted store differs from live replay")
	}
}

// TestBudgetBlobRefcount: a blob shared by several manifests survives
// until its last referencing manifest is evicted; evicting everything
// leaves an empty directory (no orphan blobs).
func TestBudgetBlobRefcount(t *testing.T) {
	tr := testTrace(t)
	cfg := core.DefaultConfig(500, circuit.ModeIRAW)
	dir := t.TempDir()
	st, err := ckpt.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.SetBudget(1 << 40)
	// Two boundaries one instruction apart share most component blobs
	// (TestBlobDedup's arrangement).
	c := core.MustNew(cfg)
	if err := st.WarmTo(c, "t", "w", 1, tr, 2); err != nil {
		t.Fatal(err)
	}
	if m, _ := dirShape(t, dir); m != 2 {
		t.Fatalf("manifests = %d, want 2", m)
	}
	full := st.DiskUsage()

	// Evict exactly one snapshot: shared blobs must survive, and the
	// surviving snapshot must still load from a fresh store handle.
	st.SetBudget(full - 1)
	if m, b := dirShape(t, dir); m != 1 || b == 0 {
		t.Fatalf("after one eviction: %d manifests / %d blobs", m, b)
	}
	st2, err := ckpt.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Get(ckpt.SnapshotKey("t", "w", 2)); !ok {
		t.Error("surviving snapshot unloadable after shared-blob eviction")
	}

	// Evict everything: manifests and blobs all GC'd.
	st.SetBudget(1)
	if m, b := dirShape(t, dir); m != 0 || b != 0 {
		t.Errorf("after full eviction: %d manifests / %d blobs, want 0/0", m, b)
	}
}

// TestBudgetSeedsFromDisk: SetBudget on a store opened over an existing
// directory reconstructs sizes, refcounts and mtime-ordered recency from
// the files themselves.
func TestBudgetSeedsFromDisk(t *testing.T) {
	tr := testTrace(t)
	cfg := core.DefaultConfig(500, circuit.ModeIRAW)
	dir := t.TempDir()
	st, err := ckpt.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := core.MustNew(cfg)
	if err := st.WarmTo(c, "t", "w", 5000, tr, 15000); err != nil {
		t.Fatal(err)
	}

	reopened, err := ckpt.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reopened.SetBudget(1 << 40)
	if reopened.DiskUsage() <= 0 {
		t.Fatal("reopened store tracked no usage")
	}
	reopened.SetBudget(reopened.DiskUsage() - 1)
	if s := reopened.Stats(); s.Evictions == 0 {
		t.Error("no eviction after seeding from disk")
	}
	if m, _ := dirShape(t, dir); m >= 3 {
		t.Errorf("manifests = %d, want < 3 after eviction", m)
	}
}
