// Package ckpt is the warm-state checkpoint store: it captures the
// functional warm state of a core at fixed trace boundaries and restores it
// later in O(state size), so a sample window's start no longer costs a
// replay of its whole warm prefix. It is the SMARTS/SimPoint-style
// checkpointing half of the sharded-sweep methodology, built on the
// core-layer warm primitives (core.CaptureWarm / RestoreWarm /
// WarmReplayRange — see the core package's "Warm-state checkpoints"
// section for the contract).
//
// # Keying and sharing
//
// A snapshot is a pure function of (trace, warm-relevant configuration,
// boundary, engine version) — and of nothing else. In particular it is
// independent of Vcc, clock plan and IRAW mode, so one snapshot per
// (trace, boundary) serves every operating point of a sweep: the sweep's
// hundreds of (vcc, mode) cells share each boundary's snapshot read-only.
// WarmConfigKey hashes exactly the warm-relevant configuration — the
// hierarchy and predictor geometry plus the fault-map identity (whether
// maps install, and from which seed and sigma) — so irrelevant knobs can
// never split the share and relevant ones can never alias.
//
// # Storage
//
// Snapshots live in an in-process map (decoded, shared by pointer) and,
// when a directory is configured, on disk in content-addressed form: one
// blob file per component (named by its payload's SHA-256, so unchanged
// components dedup across boundaries) plus one manifest per snapshot key
// listing the component hashes. Every file carries the journal's integrity
// header (magic, payload SHA-256, length) and is published by atomic
// rename; a corrupt or truncated file is a counted miss, never data — the
// warm prefix simply replays live, and the rebuilt snapshot overwrites the
// bad file. Sweep workers sharing a journal directory (in-process pools
// and sweepd -worker processes alike) share the store through the
// filesystem the same way they share the result journal.
//
// # The store is a cache
//
// Nothing is ever allowed to fail a simulation because of checkpointing: a
// failed write costs a future re-replay, a failed read replays live, and a
// restore that rejects its snapshot (fault-map mismatch, shape drift) falls
// back to replay. The reference path — checkpoints off, every prefix
// replayed live — is selectable everywhere and bit-identical (fuzzed).
package ckpt

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"lowvcc/internal/cache"
	"lowvcc/internal/circuit"
	"lowvcc/internal/core"
	"lowvcc/internal/journal"
	"lowvcc/internal/predictor"
	"lowvcc/internal/trace"
)

// Stats is a snapshot of the store's access counters.
type Stats struct {
	// Hits and Misses count snapshot lookups (memory or disk).
	Hits, Misses uint64
	// Corrupt counts snapshots rejected by the integrity check or by a
	// failed restore; each is also a miss.
	Corrupt uint64
	// Restores counts windows whose warm prefix was satisfied (fully or
	// partially) from a snapshot; Replays counts windows warmed by live
	// replay alone. Their ratio is the checkpoint hit rate.
	Restores, Replays uint64
	// Captures counts snapshots built and stored.
	Captures uint64
	// WriteErrors counts failed disk writes and failed captures. The store
	// is a cache: these cost future re-replays, never correctness.
	WriteErrors uint64
	// Evictions counts snapshots removed from disk by the byte-budget
	// policy (SetBudget). Every snapshot is independently restorable, so
	// an evicted one degrades to a live replay, never an error.
	Evictions uint64
}

// Store holds warm-state snapshots, in memory and optionally on disk. Safe
// for concurrent use by multiple goroutines and — thanks to atomic renames
// and content addressing — by multiple processes sharing the directory. A
// nil *Store is valid and means "checkpoints off": every operation is a
// no-op and WarmTo replays live.
type Store struct {
	dir string

	mu    sync.Mutex
	snaps map[string]*core.WarmState

	hits, misses, corrupt, restores, replays, captures, writeErrs atomic.Uint64
	evictions                                                     atomic.Uint64

	// Disk-budget state (SetBudget); all guarded by bmu. msizes/mblobs
	// describe manifests, bsizes/brefs the blobs they reference; total is
	// the tracked on-disk byte count. Populated only while a budget is
	// active.
	bmu     sync.Mutex
	budget  int64
	total   int64
	msizes  map[string]int64
	mblobs  map[string][]string
	bsizes  map[string]int64
	brefs   map[string]int
	lastUse map[string]int64
	useSeq  int64
}

// Open returns a store backed by dir; dir "" means memory-only.
func Open(dir string) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("ckpt: %w", err)
		}
	}
	return &Store{dir: dir, snaps: make(map[string]*core.WarmState)}, nil
}

// Dir returns the store's directory ("" for memory-only).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Stats returns a snapshot of the access counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Corrupt:     s.corrupt.Load(),
		Restores:    s.restores.Load(),
		Replays:     s.replays.Load(),
		Captures:    s.captures.Load(),
		WriteErrors: s.writeErrs.Load(),
		Evictions:   s.evictions.Load(),
	}
}

// SnapshotKey derives the content address of the snapshot at an instruction
// boundary of a trace: the trace identity, the warm-relevant configuration
// (WarmConfigKey) and the engine version pin everything the snapshot is a
// function of.
func SnapshotKey(traceHash, warmCfgKey string, boundary int) string {
	return journal.Key("warm-ckpt", traceHash, warmCfgKey, strconv.Itoa(boundary), core.EngineVersion)
}

// warmCfg is the warm-relevant slice of a core configuration. Vcc, clock
// and mode knobs are deliberately absent: warm state is independent of them
// (the access-order contract), and including them would needlessly split
// the snapshot share across a sweep's operating points. The fault map is
// the one mode-adjacent input that does shape warm evolution (disabled
// lines change victim selection), so its identity — installed or not, and
// from which seed and sigma — is part of the key; the map itself is
// reinstalled deterministically by the core's reset, never serialized.
type warmCfg struct {
	Hierarchy cache.HierarchyConfig
	Predictor predictor.Config
	FaultMap  bool
	Seed      uint64
	Sigma     float64
}

// WarmConfigKey hashes the warm-relevant part of cfg.
func WarmConfigKey(cfg core.Config) string {
	w := warmCfg{Hierarchy: cfg.Hierarchy, Predictor: cfg.Predictor}
	if cfg.Mode == circuit.ModeFaultyBits ||
		(cfg.Mode == circuit.ModeIRAW && cfg.CombineFaultyBits) {
		w.FaultMap = true
		w.Seed = cfg.Seed
		w.Sigma = cfg.FaultySigma
	}
	js, err := json.Marshal(&w)
	if err != nil {
		// Config structs are plain scalars; Marshal cannot fail on them.
		panic(fmt.Sprintf("ckpt: encoding warm config: %v", err))
	}
	return journal.Key("warm-cfg", string(js))
}

// Get returns the snapshot for key, or (nil, false) when absent or failing
// the integrity check. The returned snapshot is shared: callers must treat
// it as read-only (core.RestoreWarm does).
func (s *Store) Get(key string) (*core.WarmState, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	ws, ok := s.snaps[key]
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
		s.touchSnap(key)
		return ws, true
	}
	if s.dir == "" {
		s.misses.Add(1)
		return nil, false
	}
	ws, err := s.load(key)
	if err != nil {
		if !os.IsNotExist(err) {
			// Corrupt, not absent: evict the manifest so has() stops
			// reporting a snapshot here and the next WarmTo re-publishes
			// it (load already evicted any bad blob).
			s.corrupt.Add(1)
			os.Remove(s.manifestPath(key))
		}
		s.misses.Add(1)
		return nil, false
	}
	s.mu.Lock()
	// A concurrent loader may have won; keep the first pointer so every
	// core in the process shares one decoded copy.
	if prior, ok := s.snaps[key]; ok {
		ws = prior
	} else {
		s.snaps[key] = ws
	}
	s.mu.Unlock()
	s.hits.Add(1)
	s.touchSnap(key)
	return ws, true
}

// Put stores the snapshot under key; the caller must not mutate it
// afterwards. Disk errors are counted and swallowed: the in-memory copy is
// already serving this process, and other processes re-replay.
func (s *Store) Put(key string, ws *core.WarmState) {
	if s == nil {
		return
	}
	s.mu.Lock()
	_, dup := s.snaps[key]
	if !dup {
		s.snaps[key] = ws
	}
	s.mu.Unlock()
	s.captures.Add(1)
	if s.dir == "" || dup {
		return
	}
	if err := s.flush(key, ws); err != nil {
		s.writeErrs.Add(1)
	}
}

// has reports whether a snapshot exists (in memory or as a manifest file)
// without decoding it.
func (s *Store) has(key string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	_, ok := s.snaps[key]
	s.mu.Unlock()
	if ok || s.dir == "" {
		return ok
	}
	_, err := os.Stat(s.manifestPath(key))
	return err == nil
}

// drop forgets a snapshot that failed to restore, so the next probe
// rebuilds it instead of re-hitting the bad copy.
func (s *Store) drop(key string) {
	s.mu.Lock()
	delete(s.snaps, key)
	s.mu.Unlock()
	if s.dir != "" {
		os.Remove(s.manifestPath(key))
		s.bmu.Lock()
		s.forgetLocked(key, false)
		s.bmu.Unlock()
	}
}

// WarmTo brings a freshly reset core to warm boundary n of tr: it restores
// the deepest usable snapshot at a multiple of interval, replays the
// residual tail through the functional warm path, and captures any
// boundary snapshots still missing along the way. The resulting core state
// is observationally identical to a live WarmReplay(tr, n) — checkpointing
// only moves work, never results. A nil store (or non-positive interval)
// degrades to exactly that live replay.
//
// traceHash and warmCfgKey identify the snapshot family (see SnapshotKey);
// interval is the boundary spacing in instructions — the sim runner passes
// its window size, so full-history warm prefixes land exactly on
// boundaries and steady-state windows restore without any replay.
func (s *Store) WarmTo(c *core.Core, traceHash, warmCfgKey string, interval int, tr *trace.Trace, n int) error {
	if s == nil || interval <= 0 {
		return c.WarmReplay(tr, n)
	}
	pos := 0
	for b := n / interval * interval; b >= interval; b -= interval {
		key := SnapshotKey(traceHash, warmCfgKey, b)
		ws, ok := s.Get(key)
		if !ok {
			continue
		}
		if err := c.RestoreWarm(ws); err != nil {
			// Keyed identically yet unusable: a scrambled or stale copy.
			// Forget it and probe shallower; the replay below rebuilds it.
			s.drop(key)
			s.corrupt.Add(1)
			continue
		}
		pos = b
		break
	}
	if pos > 0 {
		s.restores.Add(1)
	} else if n > 0 {
		s.replays.Add(1)
	}
	for pos < n {
		next := (pos/interval + 1) * interval
		if next > n {
			next = n
		}
		if err := c.WarmReplayRange(tr, pos, next); err != nil {
			return err
		}
		pos = next
		if pos%interval == 0 {
			key := SnapshotKey(traceHash, warmCfgKey, pos)
			if !s.has(key) {
				ws, err := c.CaptureWarm()
				if err != nil {
					// Capture refused (timed residue?) — checkpointing is
					// best-effort, the warm state itself is fine: keep
					// replaying live.
					s.writeErrs.Add(1)
					continue
				}
				s.Put(key, ws)
			}
		}
	}
	return nil
}

// ---- disk format ----

const headerMagic = "lowvccckpt1"

func (s *Store) manifestPath(key string) string { return filepath.Join(s.dir, key+".ckpt") }
func (s *Store) blobPath(hash string) string    { return filepath.Join(s.dir, "blob-"+hash) }

// seal prepends the integrity header (magic, payload SHA-256, length) and
// returns the framed file plus the payload's hash.
func seal(payload []byte) ([]byte, string) {
	sum := fmt.Sprintf("%x", sha256.Sum256(payload))
	header := fmt.Sprintf("%s %s %d\n", headerMagic, sum, len(payload))
	return append([]byte(header), payload...), sum
}

// unseal verifies the integrity header and returns the payload.
func unseal(data []byte) ([]byte, error) {
	nl := strings.IndexByte(string(data), '\n')
	if nl < 0 {
		return nil, fmt.Errorf("ckpt: truncated header")
	}
	var magicGot, sum string
	var length int
	if _, err := fmt.Sscanf(string(data[:nl]), "%s %s %d", &magicGot, &sum, &length); err != nil || magicGot != headerMagic {
		return nil, fmt.Errorf("ckpt: bad header")
	}
	payload := data[nl+1:]
	if len(payload) != length {
		return nil, fmt.Errorf("ckpt: payload %d bytes, header says %d (truncated write)", len(payload), length)
	}
	if got := fmt.Sprintf("%x", sha256.Sum256(payload)); got != sum {
		return nil, fmt.Errorf("ckpt: checksum mismatch")
	}
	return payload, nil
}

// flush writes the snapshot's component blobs (skipping ones already
// present — content addressing makes them immutable) and then publishes
// the manifest, all via temp-file + atomic rename.
func (s *Store) flush(key string, ws *core.WarmState) error {
	var manifest strings.Builder
	type blob struct {
		sum  string
		size int64
	}
	var blobs []blob
	for _, c := range components(ws) {
		data, sum := seal(c.data)
		fmt.Fprintf(&manifest, "%s %s\n", c.name, sum)
		blobs = append(blobs, blob{sum, int64(len(data))})
		path := s.blobPath(sum)
		// Dedup: an intact blob with this hash is this blob. Verify, don't
		// just stat — trusting a name would let a torn or scrambled file
		// block its own repair forever.
		if existing, err := os.ReadFile(path); err == nil {
			if p, err := unseal(existing); err == nil &&
				fmt.Sprintf("%x", sha256.Sum256(p)) == sum {
				continue
			}
		}
		if err := s.writeFile(path, data); err != nil {
			return err
		}
	}
	data, _ := seal([]byte(manifest.String()))
	if err := s.writeFile(s.manifestPath(key), data); err != nil {
		return err
	}
	s.bmu.Lock()
	if s.budget > 0 && s.msizes != nil {
		if _, known := s.msizes[key]; !known {
			s.msizes[key] = int64(len(data))
			s.total += int64(len(data))
			hashes := make([]string, 0, len(blobs))
			for _, b := range blobs {
				hashes = append(hashes, b.sum)
				if s.brefs[b.sum] == 0 {
					s.bsizes[b.sum] = b.size
					s.total += b.size
				}
				s.brefs[b.sum]++
			}
			s.mblobs[key] = hashes
		}
		s.useSeq++
		s.lastUse[key] = s.useSeq
		s.enforceLocked(key)
	}
	s.bmu.Unlock()
	return nil
}

// load reads and verifies the manifest and every component blob for key.
// os.IsNotExist errors mean a plain miss; anything else is corruption.
func (s *Store) load(key string) (*core.WarmState, error) {
	raw, err := os.ReadFile(s.manifestPath(key))
	if err != nil {
		return nil, err
	}
	payload, err := unseal(raw)
	if err != nil {
		return nil, fmt.Errorf("ckpt: manifest %s: %w", key, err)
	}
	lines := strings.Split(strings.TrimSuffix(string(payload), "\n"), "\n")
	if len(lines) != len(componentNames) {
		return nil, fmt.Errorf("ckpt: manifest %s: %d components, want %d", key, len(lines), len(componentNames))
	}
	payloads := make(map[string][]byte, len(componentNames))
	for i, line := range lines {
		name, sum, ok := strings.Cut(line, " ")
		if !ok || name != componentNames[i] {
			return nil, fmt.Errorf("ckpt: manifest %s: bad component line %q", key, line)
		}
		braw, err := os.ReadFile(s.blobPath(sum))
		if err != nil {
			return nil, fmt.Errorf("ckpt: manifest %s: %w", key, err)
		}
		bp, err := unseal(braw)
		if err != nil {
			// A blob that fails its own header is not the content its name
			// claims: evict it, or flush's existence check would keep
			// trusting the bad bytes and rebuilds could never heal.
			os.Remove(s.blobPath(sum))
			return nil, fmt.Errorf("ckpt: blob %s: %w", sum, err)
		}
		// The header hash was just verified; it must also be the content
		// address the manifest pointed at.
		if got := fmt.Sprintf("%x", sha256.Sum256(bp)); got != sum {
			os.Remove(s.blobPath(sum))
			return nil, fmt.Errorf("ckpt: blob %s holds content %s", sum, got)
		}
		payloads[name] = bp
	}
	return assemble(payloads)
}

// ---- disk budget ----

// SetBudget caps the store's directory at budget bytes of manifests plus
// blobs. When a flush pushes the total over the cap, whole snapshots are
// evicted least-recently-used first — manifest removed, then any blob no
// surviving manifest references (blobs are refcounted, so a component
// shared across boundaries survives until its last manifest goes). Zero
// or negative disables the cap. Eviction can never break a restorable
// boundary chain: every snapshot restores independently and WarmTo
// probes shallower (ultimately live replay) on a miss, so the worst case
// is re-replay work, never a wrong result. A nil *Store ignores the call.
//
// Accounting assumes this process is the directory's only writer while a
// budget is active (the sweep daemon's arrangement); other readers just
// see extra misses.
func (s *Store) SetBudget(budget int64) {
	if s == nil || s.dir == "" {
		return
	}
	s.bmu.Lock()
	defer s.bmu.Unlock()
	s.budget = budget
	if budget <= 0 {
		s.msizes, s.mblobs, s.bsizes, s.brefs, s.lastUse = nil, nil, nil, nil, nil
		s.total = 0
		return
	}
	if s.msizes == nil {
		s.scanLocked()
	}
	s.enforceLocked("")
}

// DiskUsage reports the tracked on-disk bytes while a budget is active
// (0 otherwise).
func (s *Store) DiskUsage() int64 {
	if s == nil {
		return 0
	}
	s.bmu.Lock()
	defer s.bmu.Unlock()
	return s.total
}

// touchSnap bumps a snapshot's recency; a no-op unless a budget is
// active.
func (s *Store) touchSnap(key string) {
	s.bmu.Lock()
	if s.lastUse != nil {
		if _, ok := s.msizes[key]; ok {
			s.useSeq++
			s.lastUse[key] = s.useSeq
		}
	}
	s.bmu.Unlock()
}

// scanLocked seeds the accounting from the directory: manifests are read
// (they are one line per component) to recover blob references, recency
// comes from manifest mtimes, and orphan blobs — referenced by no
// manifest — are counted with zero refs so enforcement GCs them first.
func (s *Store) scanLocked() {
	s.msizes = make(map[string]int64)
	s.mblobs = make(map[string][]string)
	s.bsizes = make(map[string]int64)
	s.brefs = make(map[string]int)
	s.lastUse = make(map[string]int64)
	s.total = 0
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type aged struct {
		key string
		mt  int64
	}
	var manifests []aged
	for _, ent := range ents {
		name := ent.Name()
		info, ierr := ent.Info()
		if ierr != nil {
			continue
		}
		switch {
		case strings.HasSuffix(name, ".ckpt"):
			key := strings.TrimSuffix(name, ".ckpt")
			s.msizes[key] = info.Size()
			s.total += info.Size()
			manifests = append(manifests, aged{key, info.ModTime().UnixNano()})
			if raw, rerr := os.ReadFile(filepath.Join(s.dir, name)); rerr == nil {
				if payload, uerr := unseal(raw); uerr == nil {
					var hashes []string
					for _, line := range strings.Split(strings.TrimSuffix(string(payload), "\n"), "\n") {
						if _, sum, ok := strings.Cut(line, " "); ok {
							hashes = append(hashes, sum)
							s.brefs[sum]++
						}
					}
					s.mblobs[key] = hashes
				}
			}
		case strings.HasPrefix(name, "blob-"):
			sum := strings.TrimPrefix(name, "blob-")
			s.bsizes[sum] = info.Size()
			s.total += info.Size()
		}
	}
	sort.Slice(manifests, func(a, b int) bool { return manifests[a].mt < manifests[b].mt })
	for _, m := range manifests {
		s.useSeq++
		s.lastUse[m.key] = s.useSeq
	}
}

// enforceLocked GCs orphan blobs, then evicts least-recently-used
// snapshots (sparing keep, the one just flushed) until the total fits.
func (s *Store) enforceLocked(keep string) {
	if s.budget <= 0 || s.msizes == nil {
		return
	}
	if s.total > s.budget {
		for sum, size := range s.bsizes {
			if s.brefs[sum] == 0 {
				if err := os.Remove(s.blobPath(sum)); err == nil || os.IsNotExist(err) {
					s.total -= size
					delete(s.bsizes, sum)
					delete(s.brefs, sum)
				}
			}
		}
	}
	if s.total <= s.budget {
		return
	}
	type cand struct {
		key string
		use int64
	}
	var cands []cand
	for key, use := range s.lastUse {
		if key != keep {
			cands = append(cands, cand{key, use})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].use < cands[b].use })
	for _, c := range cands {
		if s.total <= s.budget {
			return
		}
		if err := os.Remove(s.manifestPath(c.key)); err != nil && !os.IsNotExist(err) {
			continue
		}
		s.forgetLocked(c.key, true)
		s.evictions.Add(1)
	}
}

// forgetLocked drops key from the accounting (manifest file already
// removed by the caller) and, when gcBlobs is set, unlinks blobs whose
// last reference it held.
func (s *Store) forgetLocked(key string, gcBlobs bool) {
	if s.msizes == nil {
		return
	}
	size, ok := s.msizes[key]
	if !ok {
		return
	}
	s.total -= size
	delete(s.msizes, key)
	delete(s.lastUse, key)
	for _, sum := range s.mblobs[key] {
		if s.brefs[sum]--; s.brefs[sum] <= 0 {
			delete(s.brefs, sum)
			if gcBlobs {
				if err := os.Remove(s.blobPath(sum)); err == nil || os.IsNotExist(err) {
					s.total -= s.bsizes[sum]
					delete(s.bsizes, sum)
				}
			}
		}
	}
	delete(s.mblobs, key)
}

func (s *Store) writeFile(path string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: closing %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: publishing %s: %w", path, err)
	}
	return nil
}
