package sram

import (
	"bytes"
	"testing"

	"lowvcc/internal/rng"
)

// TestPerSetFastReadEquivalence fuzzes the per-set ready-bound fast read
// against the maxReady-gated slow path: identical write/read sequences
// (interrupted and not, in and out of stabilization windows, across sets)
// must produce identical data, cleanliness, statistics and corruption
// state — including the per-set corrupt counts, which are checked against
// a direct scan.
func TestPerSetFastReadEquivalence(t *testing.T) {
	cfg := Config{Name: "T", Entries: 24, BytesPerEntry: 8, EntriesPerSet: 4}
	fast, slow := MustNew(cfg), MustNew(cfg)
	slow.SetFastPath(false)

	src := rng.New(0x5E7FA57)
	cycle := int64(1)
	buf := make([]byte, cfg.BytesPerEntry)
	for i := 0; i < 50000; i++ {
		entry := src.Intn(cfg.Entries)
		switch src.Intn(3) {
		case 0:
			for j := range buf {
				buf[j] = byte(src.Intn(256))
			}
			interrupted := src.Intn(2) == 0
			n := 1 + src.Intn(4)
			if fast.Write(cycle, entry, buf, interrupted, n) != slow.Write(cycle, entry, buf, interrupted, n) {
				t.Fatalf("op %d: Write accept diverges", i)
			}
		default:
			fd, fok := fast.Read(cycle, entry)
			sd, sok := slow.Read(cycle, entry)
			if fok != sok || !bytes.Equal(fd, sd) {
				t.Fatalf("op %d: Read(%d, %d) = (%x,%v) vs (%x,%v)", i, cycle, entry, fd, fok, sd, sok)
			}
		}
		// Mostly dwell inside stabilization windows; sometimes jump past.
		if src.Intn(20) == 0 {
			cycle += 10
		} else {
			cycle += int64(src.Intn(2))
		}

		if fast.Stats() != slow.Stats() {
			t.Fatalf("op %d: stats diverge:\nfast: %+v\nslow: %+v", i, fast.Stats(), slow.Stats())
		}
		if i%64 == 0 {
			for e := 0; e < cfg.Entries; e++ {
				if fast.Corrupted(e) != slow.Corrupted(e) {
					t.Fatalf("op %d: Corrupted(%d) diverges", i, e)
				}
			}
			for e := 0; e < cfg.Entries; e += cfg.EntriesPerSet {
				scan := 0
				for k := 0; k < cfg.EntriesPerSet; k++ {
					if fast.Corrupted(e + k) {
						scan++
					}
				}
				if got := fast.CorruptInSet(e); got != scan {
					t.Fatalf("op %d: CorruptInSet(%d) = %d, scan says %d", i, e, got, scan)
				}
			}
		}
	}
}
