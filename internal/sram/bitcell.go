// Package sram provides the SRAM substrate of the reproduction: a physical
// 8-T bitcell model and data-carrying arrays with the write-interruption and
// stabilization semantics that IRAW avoidance relies on (Section 3.2).
//
// Two levels of abstraction live here:
//
//   - Bitcell models one storage node's voltage swing: driven writes, early
//     interruption, self-stabilization, relaxation back to the old value if
//     interrupted too early, and read-disturb destruction of half-flipped
//     cells. It grounds the cycle-level rules in the circuit behaviour the
//     paper describes.
//   - Array models a whole SRAM block at cycle granularity: every entry
//     tracks the cycle from which it is readable; reading a set that holds a
//     stabilizing entry destroys that entry's contents (the paper's
//     set-associative hazard: "all entries in the corresponding set are
//     accessed simultaneously").
package sram

import "math"

// Swing thresholds of the bitcell model, as fractions of full swing.
const (
	// ReadableSwing is how much of its swing a node must have completed to
	// be read reliably; the paper measures delays at 80% of swing.
	ReadableSwing = 0.80
	// FlipPoint is the metastable threshold: a node driven past it keeps
	// flipping toward the new value on its own after the wordline drops;
	// below it the cell relaxes back to the old value.
	FlipPoint = 0.50
)

// Bitcell is a single storage cell. The zero value holds value false, fully
// settled.
type Bitcell struct {
	// stored is the value toward which the node currently converges.
	stored bool
	// swing is the completed fraction of the transition toward `stored`;
	// 1 means fully settled, smaller values mean mid-flip.
	swing float64
}

// NewBitcell returns a settled cell holding v.
func NewBitcell(v bool) *Bitcell {
	return &Bitcell{stored: v, swing: 1}
}

// Drive applies a write of value v with the wordline active for `active`
// time out of the `full` time a complete write needs (both in any common
// unit). A complete write (active >= full) settles the cell. An interrupted
// write leaves the node at a partial swing: past FlipPoint the cell is
// committed to the new value and will stabilize by itself; otherwise it
// relaxes back and the write is lost.
//
// Drive returns whether the cell is committed to v after the wordline drops.
func (b *Bitcell) Drive(v bool, active, full float64) bool {
	if full <= 0 {
		panic("sram: Drive with non-positive full write time")
	}
	if v == b.stored && b.swing >= 1 {
		return true // writing the stored value is a no-op
	}
	// Progress toward the new value is modelled as a first-order settling:
	// swing = 1 - exp(-k * t/full), with k chosen so a full write reaches
	// ReadableSwing plus design margin (settled) exactly at t == full.
	k := -math.Log(1 - ReadableSwing)
	progress := 1 - math.Exp(-k*active/full)
	if active >= full {
		b.stored = v
		b.swing = 1
		return true
	}
	if progress >= FlipPoint {
		// Committed: the cell finishes the flip unaided.
		b.stored = v
		b.swing = progress
		return true
	}
	// Interrupted too early: relaxes back to the old value, write lost.
	return false
}

// Stabilize lets the cell settle unaided for dt time, where `full` is the
// full-write time scale. Self-stabilization is slower than a driven write
// (no help from the bitlines); the model halves the settling rate.
func (b *Bitcell) Stabilize(dt, full float64) {
	if b.swing >= 1 {
		return
	}
	k := -math.Log(1-ReadableSwing) / 2
	b.swing = 1 - (1-b.swing)*math.Exp(-k*dt/full)
	if b.swing >= ReadableSwing {
		b.swing = 1
	}
}

// Readable reports whether a read would observe the stored value reliably.
func (b *Bitcell) Readable() bool { return b.swing >= ReadableSwing }

// Read returns the stored value and whether the read was reliable. Reading
// a cell mid-flip disturbs the node: the model corrupts the cell to the
// complement and marks it settled there, reflecting the paper's "data
// retrieved could be wrong and bitcell contents could be destroyed".
func (b *Bitcell) Read() (v, ok bool) {
	if b.Readable() {
		return b.stored, true
	}
	b.stored = !b.stored
	b.swing = 1
	return b.stored, false
}

// Value returns the settled value without read-disturb side effects (a
// test/debug observer, not a hardware operation).
func (b *Bitcell) Value() bool { return b.stored }

// Swing returns the completed fraction of the current transition.
func (b *Bitcell) Swing() float64 { return b.swing }
