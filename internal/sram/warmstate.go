package sram

import "fmt"

// WarmState is the checkpointable snapshot of an array that has only ever
// been written through the functional warm path (settled writes stamped at
// cycle 0). It captures exactly the state that determines future behaviour
// under the timing-independent access-order contract: the data bytes and
// which entries have been written (ready == 1). Everything else — written
// stamps, corruption, port counters, the per-set summaries — is either
// provably at its post-warm value or derivable from Ready, so a restore
// reconstructs it instead of serializing it.
//
// A WarmState is immutable once captured: restores copy out of it, so one
// snapshot is safely shared read-only across any number of cores.
type WarmState struct {
	// Data is the full backing store (Entries * BytesPerEntry).
	Data []byte
	// Ready is a bitset over entries: bit e set means entry e has been
	// warm-written (ready stamp 1); clear means never written (stamp 0).
	Ready []uint64
}

// CaptureWarm snapshots the array's warm state. It fails if the array
// carries any state a pure functional warm-up from reset cannot produce
// (timed writes, stabilization windows, corruption) — the checkpoint layer
// must never silently serialize timing-dependent state.
func (a *Array) CaptureWarm() (*WarmState, error) {
	s := &WarmState{
		Data:  make([]byte, len(a.data)),
		Ready: make([]uint64, (a.cfg.Entries+63)/64),
	}
	copy(s.Data, a.data)
	for e := 0; e < a.cfg.Entries; e++ {
		switch {
		case a.written[e] != 0 || a.corrupt[e]:
			return nil, fmt.Errorf("sram %q: entry %d carries timed state (written %d, corrupt %v)",
				a.cfg.Name, e, a.written[e], a.corrupt[e])
		case a.ready[e] == 1:
			s.Ready[e/64] |= 1 << (e % 64)
		case a.ready[e] != 0:
			return nil, fmt.Errorf("sram %q: entry %d ready stamp %d is not a warm stamp",
				a.cfg.Name, e, a.ready[e])
		}
	}
	return s, nil
}

// RestoreWarm loads a warm snapshot into the array, which must be freshly
// constructed (or equivalent to it). The snapshot is only read: the array
// gets its own copy of the data and recomputed summaries.
func (a *Array) RestoreWarm(s *WarmState) error {
	if len(s.Data) != len(a.data) || len(s.Ready) != (a.cfg.Entries+63)/64 {
		return fmt.Errorf("sram %q: warm snapshot shape mismatch (%d/%d data bytes, %d/%d ready words)",
			a.cfg.Name, len(s.Data), len(a.data), len(s.Ready), (a.cfg.Entries+63)/64)
	}
	copy(a.data, s.Data)
	a.maxReady = 0
	for i := range a.setReady {
		a.setReady[i] = 0
		a.corruptInSet[i] = 0
	}
	for e := 0; e < a.cfg.Entries; e++ {
		a.written[e] = 0
		a.corrupt[e] = false
		if s.Ready[e/64]&(1<<(e%64)) != 0 {
			a.ready[e] = 1
			a.maxReady = 1
			a.setReady[e/a.cfg.EntriesPerSet] = 1
		} else {
			a.ready[e] = 0
		}
	}
	return nil
}
