package sram

import "fmt"

// Config describes an SRAM array's organization.
type Config struct {
	// Name identifies the block in statistics ("DL0", "RF", ...).
	Name string
	// Entries is the number of independently addressable entries.
	Entries int
	// BytesPerEntry is the payload width of one entry.
	BytesPerEntry int
	// EntriesPerSet groups entries that are physically read together (the
	// ways of one cache set). Reading any entry of a set exposes every
	// stabilizing entry of that set to destruction. Use 1 for arrays whose
	// entries are read individually (register files, queues).
	EntriesPerSet int
	// ReadPorts and WritePorts bound per-cycle concurrency; 0 means
	// unlimited (port contention modelled elsewhere).
	ReadPorts  int
	WritePorts int
}

func (c Config) validate() error {
	if c.Entries <= 0 {
		return fmt.Errorf("sram %q: Entries must be positive, got %d", c.Name, c.Entries)
	}
	if c.BytesPerEntry <= 0 {
		return fmt.Errorf("sram %q: BytesPerEntry must be positive, got %d", c.Name, c.BytesPerEntry)
	}
	if c.EntriesPerSet <= 0 {
		return fmt.Errorf("sram %q: EntriesPerSet must be positive, got %d", c.Name, c.EntriesPerSet)
	}
	if c.Entries%c.EntriesPerSet != 0 {
		return fmt.Errorf("sram %q: Entries (%d) not a multiple of EntriesPerSet (%d)",
			c.Name, c.Entries, c.EntriesPerSet)
	}
	return nil
}

// Stats counts array activity; violation counters are the ground truth the
// integration tests use to prove IRAW avoidance works ("zero violations
// with avoidance on, nonzero with it off at low Vcc").
type Stats struct {
	Reads  uint64
	Writes uint64
	// ViolationReads counts reads whose target entry was still stabilizing.
	ViolationReads uint64
	// CollateralDestructions counts stabilizing entries destroyed because a
	// read touched their set, even though they were not the target.
	CollateralDestructions uint64
	// PortConflicts counts accesses rejected for lack of a free port.
	PortConflicts uint64
}

// Array is a data-carrying SRAM block at cycle granularity. It is not
// goroutine-safe; each simulated core owns its arrays.
type Array struct {
	cfg   Config
	data  []byte  // Entries * BytesPerEntry backing store
	ready []int64 // cycle from which each entry is readable
	// written is the cycle each entry's latest write started: the entry is
	// stabilizing (dangerous to read) only in [written, ready). Reads
	// before `written` see the previous, settled contents — this matters
	// because callers may stamp fills at future completion times.
	written []int64
	// corrupt marks entries destroyed by an IRAW violation; their data has
	// been scrambled and stays scrambled until rewritten.
	corrupt []bool
	// maxReady is an upper bound on every entry's ready stamp: reads at or
	// beyond it cannot hit a stabilizing entry anywhere in the array, so
	// the violation/collateral scan is skipped (the overwhelmingly common
	// case outside stabilization windows).
	maxReady int64
	// setReady is the per-set refinement of maxReady: setReady[s] bounds
	// the ready stamps of set s's entries, so a read can prove its own set
	// settled even while writes keep other sets stabilizing (the common
	// case for a store-heavy block under IRAW clocking). Like maxReady it
	// is an upper bound, only raised by writes — scramble lowers an entry's
	// ready stamp without touching the summary, which keeps the bound
	// conservative, never wrong.
	setReady []int64
	// corruptInSet counts scrambled entries per set, maintained eagerly by
	// Write/scramble so callers (the hierarchy's replay-repair accounting)
	// read it in O(1) instead of rescanning the set's entries.
	corruptInSet []int32
	// noFast disables consulting setReady on Read and the port-free
	// access shortcut (test and benchmark hook: the slow path is the
	// pre-summary behaviour, gated on maxReady alone). The summaries are
	// maintained regardless, so the flag only selects which proof of
	// stability the read consults.
	noFast bool
	// unlimited records ReadPorts == 0 && WritePorts == 0 at construction:
	// such arrays never consult the per-cycle port counters, so fast-path
	// accesses skip rolling them. portCycle is still rolled by every
	// slow-path read, which is the only place scramble (its one consumer)
	// can run.
	unlimited bool
	stats     Stats

	readsThisCycle, writesThisCycle int
	portCycle                       int64

	// DebugScramble, when set, fires whenever an entry is destroyed
	// (tests only).
	DebugScramble func(cycle int64, entry int, wasTarget bool)
	// DebugWrite, when set, fires on every write (tests only).
	DebugWrite func(cycle int64, entry int, interrupted bool)
}

// New returns an Array for cfg with all entries stable and zeroed.
func New(cfg Config) (*Array, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sets := cfg.Entries / cfg.EntriesPerSet
	return &Array{
		cfg:          cfg,
		data:         make([]byte, cfg.Entries*cfg.BytesPerEntry),
		ready:        make([]int64, cfg.Entries),
		written:      make([]int64, cfg.Entries),
		corrupt:      make([]bool, cfg.Entries),
		setReady:     make([]int64, sets),
		corruptInSet: make([]int32, sets),
		unlimited:    cfg.ReadPorts == 0 && cfg.WritePorts == 0,
	}, nil
}

// SetFastPath enables or disables the per-set summary fast paths (enabled by
// default). Intended for the fast-vs-slow equivalence tests and the
// throughput benchmark baseline; call it right after construction.
func (a *Array) SetFastPath(enabled bool) { a.noFast = !enabled }

// MustNew is New for static configurations; it panics on config errors.
func MustNew(cfg Config) *Array {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Config returns the array's configuration.
func (a *Array) Config() Config { return a.cfg }

// Stats returns a snapshot of the activity counters.
func (a *Array) Stats() Stats { return a.stats }

func (a *Array) checkEntry(entry int) {
	if entry < 0 || entry >= a.cfg.Entries {
		panic(fmt.Sprintf("sram %q: entry %d out of range [0,%d)", a.cfg.Name, entry, a.cfg.Entries))
	}
}

func (a *Array) rollPorts(cycle int64) {
	if cycle != a.portCycle {
		a.portCycle = cycle
		a.readsThisCycle = 0
		a.writesThisCycle = 0
	}
}

// slot returns the backing slice for an entry.
func (a *Array) slot(entry int) []byte {
	off := entry * a.cfg.BytesPerEntry
	return a.data[off : off+a.cfg.BytesPerEntry]
}

// Write stores data into entry during the given cycle. With interrupted set
// (IRAW mode at low Vcc) the entry only becomes readable after
// stabilizeCycles further cycles; otherwise it is readable from the next
// cycle. Write returns false if no write port was free this cycle.
//
// The write itself always succeeds once a port is held, even into a
// stabilizing entry: per Section 4.4, "even if the data in the updated
// location were still stabilizing, correctness is guaranteed because data
// are not read but updated".
func (a *Array) Write(cycle int64, entry int, data []byte, interrupted bool, stabilizeCycles int) bool {
	// entry is bounds-checked by the slice accesses below (hot path).
	if len(data) != a.cfg.BytesPerEntry {
		panic(fmt.Sprintf("sram %q: write of %d bytes into %d-byte entry", a.cfg.Name, len(data), a.cfg.BytesPerEntry))
	}
	if a.noFast || !a.unlimited || a.DebugWrite != nil {
		a.rollPorts(cycle)
		if a.cfg.WritePorts > 0 && a.writesThisCycle >= a.cfg.WritePorts {
			a.stats.PortConflicts++
			return false
		}
		a.writesThisCycle++
		if a.DebugWrite != nil {
			a.DebugWrite(cycle, entry, interrupted)
		}
	}
	copy(a.slot(entry), data)
	set := entry / a.cfg.EntriesPerSet
	if a.corrupt[entry] {
		a.corrupt[entry] = false
		a.corruptInSet[set]--
	}
	a.written[entry] = cycle
	if interrupted {
		if stabilizeCycles < 1 {
			panic(fmt.Sprintf("sram %q: interrupted write needs stabilizeCycles >= 1", a.cfg.Name))
		}
		a.ready[entry] = cycle + 1 + int64(stabilizeCycles)
	} else {
		a.ready[entry] = cycle + 1
	}
	if a.ready[entry] > a.maxReady {
		a.maxReady = a.ready[entry]
	}
	if a.ready[entry] > a.setReady[set] {
		a.setReady[set] = a.ready[entry]
	}
	a.stats.Writes++
	return true
}

// scramble deterministically corrupts an entry's data, modelling the
// destroyed half-flipped bitcells of an IRAW violation.
func (a *Array) scramble(entry int) {
	s := a.slot(entry)
	for i := range s {
		s[i] ^= byte(0xA5 ^ (entry + i))
	}
	if !a.corrupt[entry] {
		a.corrupt[entry] = true
		a.corruptInSet[entry/a.cfg.EntriesPerSet]++
	}
	a.ready[entry] = a.portCycle // destroyed cells settle (to wrong values)
}

// Read fetches entry's data during cycle. ok reports a clean read. A read
// targeting a stabilizing entry is an IRAW violation: the returned data is
// the scrambled result and the entry stays corrupted. Whether or not the
// target itself was stabilizing, every *other* stabilizing entry in the
// same set is destroyed too (simultaneous set access, Section 4.3).
//
// A nil return with ok=false (and no counter movement beyond PortConflicts)
// means no read port was free.
func (a *Array) Read(cycle int64, entry int) (data []byte, ok bool) {
	// entry is bounds-checked by the slice accesses below (hot path).
	if !a.noFast && a.unlimited {
		// Port-free fast reads: the per-cycle counters are never consulted
		// for unlimited-port arrays, so they are not rolled.
		a.stats.Reads++
		if cycle >= a.maxReady || cycle >= a.setReady[entry/a.cfg.EntriesPerSet] {
			// The target's set is settled (setReady refines maxReady per
			// set): the read is clean unless the entry still carries an
			// earlier violation's scramble, no co-resident entry can be
			// destroyed, and the set-wide slot walk is skipped — the same
			// outcome the walk below would reach with every stabilizing()
			// check false.
			return a.slot(entry), !a.corrupt[entry]
		}
		a.rollPorts(cycle) // scramble below reads portCycle
		return a.readSlow(cycle, entry)
	}
	a.rollPorts(cycle)
	if a.cfg.ReadPorts > 0 && a.readsThisCycle >= a.cfg.ReadPorts {
		a.stats.PortConflicts++
		return nil, false
	}
	a.readsThisCycle++
	a.stats.Reads++

	if cycle >= a.maxReady {
		// Nothing in the array is stabilizing: the read is clean unless the
		// entry still carries an earlier violation's scramble, and no
		// co-resident entry can be destroyed.
		return a.slot(entry), !a.corrupt[entry]
	}
	return a.readSlow(cycle, entry)
}

// readSlow is Read's set-walk half: the target and its co-resident entries
// checked for stabilization, with violation/collateral semantics applied.
// The caller has rolled the ports (scramble stamps a.portCycle).
func (a *Array) readSlow(cycle int64, entry int) (data []byte, ok bool) {
	violated := false
	if a.stabilizing(cycle, entry) {
		a.stats.ViolationReads++
		if a.DebugScramble != nil {
			a.DebugScramble(cycle, entry, true)
		}
		a.scramble(entry)
		violated = true
	}
	// Destroy any other stabilizing entry sharing the set.
	setBase := (entry / a.cfg.EntriesPerSet) * a.cfg.EntriesPerSet
	for e := setBase; e < setBase+a.cfg.EntriesPerSet; e++ {
		if e != entry && a.stabilizing(cycle, e) {
			a.stats.CollateralDestructions++
			if a.DebugScramble != nil {
				a.DebugScramble(cycle, e, false)
			}
			a.scramble(e)
		}
	}
	return a.slot(entry), !violated && !a.corrupt[entry]
}

// stabilizing reports whether entry is mid-stabilization at cycle.
func (a *Array) stabilizing(cycle int64, entry int) bool {
	return cycle >= a.written[entry] && cycle < a.ready[entry]
}

// Stable reports whether entry is readable at cycle without a violation.
// This is what the avoidance mechanisms consult *instead of* reading.
func (a *Array) Stable(cycle int64, entry int) bool {
	a.checkEntry(entry)
	return !a.stabilizing(cycle, entry)
}

// SetStable reports whether every entry in the set containing entry is
// readable at cycle (the condition a whole-set access needs).
func (a *Array) SetStable(cycle int64, entry int) bool {
	a.checkEntry(entry)
	setBase := (entry / a.cfg.EntriesPerSet) * a.cfg.EntriesPerSet
	for e := setBase; e < setBase+a.cfg.EntriesPerSet; e++ {
		if a.stabilizing(cycle, e) {
			return false
		}
	}
	return true
}

// ReadyAt returns the first cycle at which entry is readable.
func (a *Array) ReadyAt(entry int) int64 {
	a.checkEntry(entry)
	return a.ready[entry]
}

// WrittenAt returns the start cycle of entry's latest write.
func (a *Array) WrittenAt(entry int) int64 {
	a.checkEntry(entry)
	return a.written[entry]
}

// Corrupted reports whether entry currently holds violation-scrambled data.
func (a *Array) Corrupted(entry int) bool {
	a.checkEntry(entry)
	return a.corrupt[entry]
}

// CorruptInSet returns the number of violation-scrambled entries in the set
// containing entry — the eagerly maintained summary, always equal to
// counting Corrupted over the set.
func (a *Array) CorruptInSet(entry int) int {
	a.checkEntry(entry)
	return int(a.corruptInSet[entry/a.cfg.EntriesPerSet])
}

// Peek returns a copy of entry's data without port accounting, violation
// semantics, or side effects (a test/debug observer).
func (a *Array) Peek(entry int) []byte {
	a.checkEntry(entry)
	out := make([]byte, a.cfg.BytesPerEntry)
	copy(out, a.slot(entry))
	return out
}

// TotalBits returns the array's storage capacity in bits, used by the area
// and energy accounting.
func (a *Array) TotalBits() int { return a.cfg.Entries * a.cfg.BytesPerEntry * 8 }
