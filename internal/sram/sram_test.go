package sram

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBitcellFullWrite(t *testing.T) {
	b := NewBitcell(false)
	if !b.Drive(true, 1.0, 1.0) {
		t.Fatal("full-duration write did not commit")
	}
	if !b.Readable() {
		t.Fatal("cell not readable after full write")
	}
	if v, ok := b.Read(); !ok || !v {
		t.Fatalf("Read = (%v, %v), want (true, true)", v, ok)
	}
}

func TestBitcellInterruptedWriteCommits(t *testing.T) {
	// Drive for 60% of the full write time: past the 50% flip point, so the
	// cell commits but is not yet readable; stabilization finishes the flip.
	b := NewBitcell(false)
	if !b.Drive(true, 0.6, 1.0) {
		t.Fatal("60% drive should pass the flip point and commit")
	}
	if b.Readable() {
		t.Fatal("interrupted cell must not be immediately readable")
	}
	b.Stabilize(2.0, 1.0)
	if !b.Readable() {
		t.Fatalf("cell failed to stabilize; swing=%v", b.Swing())
	}
	if v, ok := b.Read(); !ok || !v {
		t.Fatalf("stabilized Read = (%v,%v), want (true,true)", v, ok)
	}
}

func TestBitcellTooEarlyInterruptionLosesWrite(t *testing.T) {
	b := NewBitcell(false)
	if b.Drive(true, 0.1, 1.0) {
		t.Fatal("10% drive should not pass the flip point")
	}
	if v := b.Value(); v {
		t.Fatal("cell should have relaxed back to the old value")
	}
}

func TestBitcellReadDisturbDestroysMidFlip(t *testing.T) {
	b := NewBitcell(false)
	b.Drive(true, 0.6, 1.0) // committed, mid-flip
	v, ok := b.Read()
	if ok {
		t.Fatal("read of a mid-flip cell reported reliable")
	}
	_ = v
	// After the disturb the cell has settled (possibly to garbage) and
	// reads of it are "reliable" again, but the datum is untrustworthy.
	if !b.Readable() {
		t.Fatal("disturbed cell should settle")
	}
}

func TestBitcellRewriteSameValueNoop(t *testing.T) {
	b := NewBitcell(true)
	if !b.Drive(true, 0.01, 1.0) {
		t.Fatal("rewriting the stored value must trivially succeed")
	}
	if !b.Readable() {
		t.Fatal("cell should stay settled")
	}
}

// TestBitcellGammaSafety ties the circuit model's interrupted-write fraction
// to cell physics: driving for the gamma fraction used by the clock plans
// must always commit the cell (property (iii) of Section 3.2). gamma in the
// calibration ranges over ~[0.50, 0.70]; the flip-point requires ~0.43.
func TestBitcellGammaSafety(t *testing.T) {
	for _, gamma := range []float64{0.497, 0.55, 0.607, 0.65, 0.70} {
		b := NewBitcell(false)
		if !b.Drive(true, gamma, 1.0) {
			t.Errorf("gamma=%v failed to commit; clock plan would be unsafe", gamma)
		}
	}
}

func TestBitcellStabilizeProperty(t *testing.T) {
	// Property: any committed interrupted write reaches readability within
	// one full-write time of unaided stabilization with margin 2x.
	f := func(frac float64) bool {
		if frac < 0 {
			frac = -frac
		}
		frac = 0.5 + 0.45*(frac-float64(int(frac))) // in [0.5, 0.95)
		b := NewBitcell(false)
		if !b.Drive(true, frac, 1.0) {
			return true // did not commit; nothing to check
		}
		b.Stabilize(2.0, 1.0)
		return b.Readable() && b.Value()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func newTestArray(t *testing.T, entriesPerSet int) *Array {
	t.Helper()
	a, err := New(Config{
		Name: "test", Entries: 16, BytesPerEntry: 4,
		EntriesPerSet: entriesPerSet,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestArrayWriteThenStableRead(t *testing.T) {
	a := newTestArray(t, 1)
	data := []byte{1, 2, 3, 4}
	if !a.Write(10, 3, data, false, 0) {
		t.Fatal("write rejected")
	}
	got, ok := a.Read(11, 3)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("Read = (%v, %v), want clean %v", got, ok, data)
	}
	if a.Stats().ViolationReads != 0 {
		t.Fatal("clean read counted as violation")
	}
}

func TestArrayInterruptedWriteWindow(t *testing.T) {
	a := newTestArray(t, 1)
	data := []byte{9, 8, 7, 6}
	const n = 2
	a.Write(100, 5, data, true, n)
	// Stabilizing during cycles 101..102; readable from 103.
	if a.Stable(101, 5) || a.Stable(102, 5) {
		t.Fatal("entry reported stable inside the stabilization window")
	}
	if !a.Stable(103, 5) {
		t.Fatal("entry not stable after the window")
	}
	got, ok := a.Read(103, 5)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("post-window read = (%v,%v), want clean data", got, ok)
	}
}

func TestArrayViolationScramblesData(t *testing.T) {
	a := newTestArray(t, 1)
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	a.Write(50, 2, data, true, 1)
	got, ok := a.Read(51, 2) // inside the window: violation
	if ok {
		t.Fatal("violating read reported clean")
	}
	if bytes.Equal(got, data) {
		t.Fatal("violating read returned intact data; must be scrambled")
	}
	if a.Stats().ViolationReads != 1 {
		t.Fatalf("ViolationReads = %d, want 1", a.Stats().ViolationReads)
	}
	if !a.Corrupted(2) {
		t.Fatal("entry not marked corrupted")
	}
	// A rewrite clears the corruption.
	a.Write(60, 2, data, false, 0)
	if a.Corrupted(2) {
		t.Fatal("rewrite did not clear corruption")
	}
	if got, ok := a.Read(61, 2); !ok || !bytes.Equal(got, data) {
		t.Fatalf("read after rewrite = (%v,%v)", got, ok)
	}
}

func TestArrayCollateralSetDestruction(t *testing.T) {
	// 4 entries per set: entries 0..3 share a set. A read of entry 0 while
	// entry 2 stabilizes destroys entry 2 even though 0 was the target.
	a := newTestArray(t, 4)
	stable := []byte{1, 1, 1, 1}
	fresh := []byte{2, 2, 2, 2}
	a.Write(10, 0, stable, false, 0)
	a.Write(20, 2, fresh, true, 1)
	got, ok := a.Read(21, 0)
	if !ok || !bytes.Equal(got, stable) {
		t.Fatalf("read of stable way = (%v,%v), want clean", got, ok)
	}
	if a.Stats().CollateralDestructions != 1 {
		t.Fatalf("CollateralDestructions = %d, want 1", a.Stats().CollateralDestructions)
	}
	if !a.Corrupted(2) {
		t.Fatal("stabilizing way not destroyed by set access")
	}
	// Entries in other sets are untouched.
	a.Write(30, 7, fresh, true, 1)
	a.Read(31, 0)
	if a.Corrupted(7) {
		t.Fatal("read destroyed an entry in a different set")
	}
}

func TestArraySetStable(t *testing.T) {
	a := newTestArray(t, 4)
	a.Write(10, 1, []byte{1, 2, 3, 4}, true, 2)
	if a.SetStable(11, 0) {
		t.Fatal("SetStable true while a way stabilizes")
	}
	if !a.SetStable(13, 0) {
		t.Fatal("SetStable false after the window")
	}
	if !a.SetStable(11, 8) {
		t.Fatal("unrelated set affected")
	}
}

func TestArrayWriteIntoStabilizingEntryIsSafe(t *testing.T) {
	// Section 4.4: overwriting a stabilizing entry is fine (no read).
	a := newTestArray(t, 1)
	a.Write(10, 4, []byte{1, 1, 1, 1}, true, 1)
	a.Write(11, 4, []byte{2, 2, 2, 2}, true, 1) // inside window: allowed
	if got, ok := a.Read(13, 4); !ok || !bytes.Equal(got, []byte{2, 2, 2, 2}) {
		t.Fatalf("read = (%v,%v), want the second write's data", got, ok)
	}
	if a.Stats().ViolationReads != 0 {
		t.Fatal("write-into-stabilizing counted as violation")
	}
}

func TestArrayPortLimits(t *testing.T) {
	a, err := New(Config{Name: "p", Entries: 8, BytesPerEntry: 2,
		EntriesPerSet: 1, ReadPorts: 1, WritePorts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Write(5, 0, []byte{1, 2}, false, 0) {
		t.Fatal("first write rejected")
	}
	if a.Write(5, 1, []byte{3, 4}, false, 0) {
		t.Fatal("second write same cycle accepted with 1 port")
	}
	if !a.Write(6, 1, []byte{3, 4}, false, 0) {
		t.Fatal("write next cycle rejected")
	}
	if _, ok := a.Read(7, 0); !ok {
		t.Fatal("first read rejected")
	}
	if _, ok := a.Read(7, 1); ok {
		t.Fatal("second read same cycle accepted with 1 port")
	}
	if a.Stats().PortConflicts != 2 {
		t.Fatalf("PortConflicts = %d, want 2", a.Stats().PortConflicts)
	}
}

func TestArrayUninterruptedNextCycleReadable(t *testing.T) {
	a := newTestArray(t, 1)
	a.Write(10, 0, []byte{5, 5, 5, 5}, false, 0)
	if !a.Stable(11, 0) {
		t.Fatal("uninterrupted write not readable next cycle")
	}
	if a.ReadyAt(0) != 11 {
		t.Fatalf("ReadyAt = %d, want 11", a.ReadyAt(0))
	}
}

func TestArrayConfigValidation(t *testing.T) {
	bad := []Config{
		{Name: "a", Entries: 0, BytesPerEntry: 1, EntriesPerSet: 1},
		{Name: "b", Entries: 4, BytesPerEntry: 0, EntriesPerSet: 1},
		{Name: "c", Entries: 4, BytesPerEntry: 1, EntriesPerSet: 0},
		{Name: "d", Entries: 6, BytesPerEntry: 1, EntriesPerSet: 4},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestArrayPanicsOnBadUsage(t *testing.T) {
	a := newTestArray(t, 1)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("out-of-range entry", func() { a.Read(0, 99) })
	mustPanic("wrong width", func() { a.Write(0, 0, []byte{1}, false, 0) })
	mustPanic("interrupted without N", func() { a.Write(0, 0, []byte{1, 2, 3, 4}, true, 0) })
}

// TestArrayDataIntegrityProperty: for any sequence of interrupted writes
// followed by reads after their windows, data is always intact — the core
// correctness claim behind IRAW avoidance.
func TestArrayDataIntegrityProperty(t *testing.T) {
	f := func(seed uint8, entries [12]uint8, values [12]uint32) bool {
		a := MustNew(Config{Name: "q", Entries: 8, BytesPerEntry: 4, EntriesPerSet: 2})
		cycle := int64(0)
		want := map[int][]byte{}
		for i, e := range entries {
			entry := int(e) % 8
			v := values[i]
			data := []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
			cycle += 3 // windows never overlap reads below
			a.Write(cycle, entry, data, true, 2)
			want[entry] = data
		}
		cycle += 3 // all windows closed
		for entry, data := range want {
			got, ok := a.Read(cycle, entry)
			if !ok || !bytes.Equal(got, data) {
				return false
			}
			cycle++
		}
		return a.Stats().ViolationReads == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTotalBits(t *testing.T) {
	a := newTestArray(t, 1)
	if got := a.TotalBits(); got != 16*4*8 {
		t.Fatalf("TotalBits = %d, want %d", got, 16*4*8)
	}
}

func TestPeekHasNoSideEffects(t *testing.T) {
	a := newTestArray(t, 4)
	a.Write(10, 1, []byte{1, 2, 3, 4}, true, 5)
	before := a.Stats()
	_ = a.Peek(1)
	_ = a.Peek(0)
	if a.Stats() != before {
		t.Fatal("Peek moved counters")
	}
	if a.Corrupted(1) {
		t.Fatal("Peek destroyed a stabilizing entry")
	}
}
