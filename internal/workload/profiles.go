package workload

import (
	"fmt"
	"sync"

	"lowvcc/internal/trace"
)

// The standard profiles mirror the application classes of the paper's
// workload ("Spec2006, Spec2000, kernels, multimedia, office, server,
// workstation", Section 5.1). Mixes and dependency distances follow the
// usual characterization of these classes on low-power in-order cores; the
// suite as a whole is calibrated so the RF IRAW-delay rate lands near the
// paper's 13.2%.

// SpecInt models integer SPEC-like compute: ALU-dense, short dependency
// chains, branchy, modest working set.
func SpecInt() Profile {
	return Profile{
		Name: "specint",
		ALU:  0.52, Mul: 0.02, Div: 0.002,
		Load: 0.22, Store: 0.09, Branch: 0.13, Call: 0.01,
		DepDistMean: 2.7, UseRecentProb: 0.80, Src2Prob: 0.45,
		DataWorkingSet: 256 << 10, DataZipfTheta: 1.2,
		StrideFrac: 0.35, StrideStreams: 4,
		CodeFootprint: 24 << 10, BlockLenMean: 8,
		TakenBias: 0.5, FlakyBranchFrac: 0.05,
	}
}

// SpecFP models floating-point SPEC-like compute: FP pipes busy, longer
// latencies, strided array traversal, predictable loops.
func SpecFP() Profile {
	return Profile{
		Name: "specfp",
		ALU:  0.28, Mul: 0.02, FPAdd: 0.16, FPMul: 0.12, FPDiv: 0.006,
		Load: 0.26, Store: 0.10, Branch: 0.05, Call: 0.005,
		DepDistMean: 3.1, UseRecentProb: 0.80, Src2Prob: 0.60,
		DataWorkingSet: 384 << 10, DataZipfTheta: 0.5,
		StrideFrac: 0.75, StrideStreams: 6,
		CodeFootprint: 16 << 10, BlockLenMean: 14,
		TakenBias: 0.5, FlakyBranchFrac: 0.02,
	}
}

// Kernel models OS-kernel code paths: short blocks, fences, irregular data.
func Kernel() Profile {
	return Profile{
		Name: "kernel",
		ALU:  0.48, Mul: 0.01,
		Load: 0.24, Store: 0.11, Branch: 0.13, Call: 0.02, Fence: 0.008,
		DepDistMean: 2.6, UseRecentProb: 0.75, Src2Prob: 0.4,
		DataWorkingSet: 192 << 10, DataZipfTheta: 1.2,
		StrideFrac: 0.2, StrideStreams: 2,
		CodeFootprint: 40 << 10, BlockLenMean: 6,
		TakenBias: 0.45, FlakyBranchFrac: 0.08,
	}
}

// Multimedia models media kernels: multiply-dense, streaming, predictable.
func Multimedia() Profile {
	return Profile{
		Name: "multimedia",
		ALU:  0.38, Mul: 0.12, FPAdd: 0.05, FPMul: 0.04,
		Load: 0.24, Store: 0.11, Branch: 0.055, Call: 0.003,
		DepDistMean: 2.9, UseRecentProb: 0.84, Src2Prob: 0.65,
		DataWorkingSet: 320 << 10, DataZipfTheta: 0.4,
		StrideFrac: 0.85, StrideStreams: 8,
		CodeFootprint: 12 << 10, BlockLenMean: 16,
		TakenBias: 0.5, FlakyBranchFrac: 0.015,
	}
}

// Office models interactive productivity code: branchy, large code
// footprint, cold data.
func Office() Profile {
	return Profile{
		Name: "office",
		ALU:  0.46, Mul: 0.015,
		Load: 0.25, Store: 0.10, Branch: 0.14, Call: 0.02,
		DepDistMean: 2.8, UseRecentProb: 0.75, Src2Prob: 0.4,
		DataWorkingSet: 512 << 10, DataZipfTheta: 1.25,
		StrideFrac: 0.25, StrideStreams: 3,
		CodeFootprint: 64 << 10, BlockLenMean: 7,
		TakenBias: 0.5, FlakyBranchFrac: 0.07,
	}
}

// Server models server workloads: big data and code footprints, calls,
// pointer-dependent loads.
func Server() Profile {
	return Profile{
		Name: "server",
		ALU:  0.42, Mul: 0.01,
		Load: 0.28, Store: 0.12, Branch: 0.12, Call: 0.03, Fence: 0.003,
		DepDistMean: 2.5, UseRecentProb: 0.79, Src2Prob: 0.35,
		DataWorkingSet: 1 << 20, DataZipfTheta: 1.15,
		StrideFrac: 0.1, StrideStreams: 2,
		CodeFootprint: 96 << 10, BlockLenMean: 7,
		TakenBias: 0.5, FlakyBranchFrac: 0.09,
	}
}

// Workstation models engineering/workstation codes: mixed int/FP.
func Workstation() Profile {
	return Profile{
		Name: "workstation",
		ALU:  0.36, Mul: 0.03, FPAdd: 0.08, FPMul: 0.06, FPDiv: 0.003,
		Load: 0.26, Store: 0.10, Branch: 0.09, Call: 0.015,
		DepDistMean: 2.9, UseRecentProb: 0.80, Src2Prob: 0.5,
		DataWorkingSet: 448 << 10, DataZipfTheta: 1.0,
		StrideFrac: 0.5, StrideStreams: 4,
		CodeFootprint: 48 << 10, BlockLenMean: 10,
		TakenBias: 0.5, FlakyBranchFrac: 0.04,
	}
}

// MemBound is an extra stress profile (not part of the paper's mix) used by
// examples and memory-sensitivity studies: cache-hostile streaming.
func MemBound() Profile {
	return Profile{
		Name: "membound",
		ALU:  0.30,
		Load: 0.40, Store: 0.16, Branch: 0.13, Call: 0.005,
		DepDistMean: 1.6, UseRecentProb: 0.9, Src2Prob: 0.3,
		DataWorkingSet: 64 << 20, DataZipfTheta: 0.05,
		StrideFrac: 0.15, StrideStreams: 2,
		CodeFootprint: 24 << 10, BlockLenMean: 7,
		TakenBias: 0.5, FlakyBranchFrac: 0.06,
	}
}

// Profiles returns the seven paper-aligned workload classes.
func Profiles() []Profile {
	return []Profile{
		SpecInt(), SpecFP(), Kernel(), Multimedia(),
		Office(), Server(), Workstation(),
	}
}

// Phased concatenates one trace per profile phase — an application that
// moves through distinct behaviours (compute burst, memory sweep, branchy
// control), the input a DVFS governor reacts to.
func Phased(phases []Profile, instsPerPhase int, seed uint64) *trace.Trace {
	if len(phases) == 0 {
		panic("workload: Phased needs at least one phase")
	}
	out := &trace.Trace{Name: "phased"}
	for i, p := range phases {
		tr := Generate(p, instsPerPhase, seed+uint64(i)*7919)
		out.Insts = append(out.Insts, tr.Insts...)
	}
	return out
}

// LongTrace generates one long mixed-behaviour trace of about n
// instructions — the sharded-execution stand-in for the paper's
// 10M-instruction production traces. The paper-aligned classes rotate in
// fixed phases, so the trace moves through compute bursts, memory sweeps
// and branchy control the way a production workload does; generation is
// deterministic in (n, seed). For n below one phase per class it degrades
// to a single SpecInt trace.
func LongTrace(n int, seed uint64) *trace.Trace {
	profiles := Profiles()
	perPhase := n / len(profiles)
	if perPhase < 1 {
		return Generate(SpecInt(), n, seed)
	}
	out := Phased(profiles, perPhase, seed)
	out.Name = fmt.Sprintf("long-%d-%d", n, seed)
	return out
}

// suiteCache memoizes Suite: generation is deterministic in (n,
// seedsPerProfile), and every figure, benchmark and test materializes the
// same few sizes, so regenerating the whole suite per call is pure waste.
var suiteCache sync.Map // suiteKey -> []*trace.Trace

type suiteKey struct{ n, seedsPerProfile int }

// Suite returns the standard evaluation suite: seedsPerProfile traces of
// n instructions for each paper-aligned profile. The paper uses 531 traces
// of 10M instructions; the default experiments scale this down while
// keeping every class represented.
//
// Suites are cached per (n, seedsPerProfile): repeated calls return the
// same shared traces. Callers must treat them as read-only — every
// consumer in the tree does (the core reads traces, and Reschedule builds
// new ones); a caller that needs to mutate instructions must copy first.
func Suite(n, seedsPerProfile int) []*trace.Trace {
	key := suiteKey{n, seedsPerProfile}
	if v, ok := suiteCache.Load(key); ok {
		return v.([]*trace.Trace)
	}
	var out []*trace.Trace
	for pi, p := range Profiles() {
		for s := 0; s < seedsPerProfile; s++ {
			seed := uint64(pi)*1000 + uint64(s) + 1
			out = append(out, Generate(p, n, seed))
		}
	}
	// Clamp capacity so a caller appending to the returned slice copies
	// instead of writing into the shared backing array. Two racing
	// generators produce identical suites; keep whichever one published
	// first so all callers share one copy.
	out = out[:len(out):len(out)]
	v, _ := suiteCache.LoadOrStore(key, out)
	return v.([]*trace.Trace)
}
