// Package workload generates the synthetic instruction traces that stand in
// for the paper's 531 proprietary traces (Spec2006, Spec2000, kernels,
// multimedia, office, server, workstation — Section 5.1).
//
// Each Profile controls exactly the properties the reproduced statistics
// depend on: the operation mix, the producer→consumer register distance
// distribution (which sets the IRAW stall rate), memory footprint and
// locality (cache and TLB behaviour), and branch predictability (BP/RSB
// behaviour). Generation is fully deterministic given (profile, seed).
package workload

import (
	"fmt"

	"lowvcc/internal/isa"
	"lowvcc/internal/rng"
	"lowvcc/internal/trace"
)

// Profile parameterizes one workload class.
type Profile struct {
	Name string

	// Operation mix weights (normalized internally; Return weight is tied
	// to Call so the RSB stays balanced).
	ALU, Mul, Div, FPAdd, FPMul, FPDiv float64
	Load, Store, Branch, Call, Fence   float64

	// DepDistMean is the mean distance, in dynamic instructions, between a
	// consumer and the producer of its source value. Short distances are
	// what expose immediate-read-after-write hazards in the register file.
	DepDistMean float64
	// UseRecentProb is the probability that a source operand names a recent
	// producer at all (the rest read long-lived values: stack pointers,
	// globals, loop bounds).
	UseRecentProb float64
	// Src2Prob is the probability an instruction has a second register
	// source.
	Src2Prob float64

	// DataWorkingSet is the data footprint in bytes; DataZipfTheta skews
	// line popularity (0 = uniform). StrideFrac of memory accesses stream
	// sequentially through StrideStreams independent pointers.
	DataWorkingSet uint64
	DataZipfTheta  float64
	StrideFrac     float64
	StrideStreams  int

	// CodeFootprint is the static code size in bytes; BlockLenMean the mean
	// basic-block length.
	CodeFootprint uint64
	BlockLenMean  float64

	// TakenBias is the taken probability of flaky branch sites;
	// FlakyBranchFrac is the fraction of branch sites whose outcome is
	// random each visit (the rest are strongly biased and predictable).
	TakenBias       float64
	FlakyBranchFrac float64
}

// Validate reports structural problems in a profile.
func (p Profile) Validate() error {
	total := p.ALU + p.Mul + p.Div + p.FPAdd + p.FPMul + p.FPDiv +
		p.Load + p.Store + p.Branch + p.Call + p.Fence
	if total <= 0 {
		return fmt.Errorf("workload %q: empty op mix", p.Name)
	}
	if p.DepDistMean < 1 {
		return fmt.Errorf("workload %q: DepDistMean %v < 1", p.Name, p.DepDistMean)
	}
	if p.DataWorkingSet == 0 || p.CodeFootprint == 0 {
		return fmt.Errorf("workload %q: zero footprint", p.Name)
	}
	if p.BlockLenMean < 1 {
		return fmt.Errorf("workload %q: BlockLenMean %v < 1", p.Name, p.BlockLenMean)
	}
	return nil
}

const (
	instBytes   = 4  // modelled instruction size
	lineBytes   = 64 // cache line for footprint math
	blockStride = 32 // instruction slots reserved per static basic block
	codeBase    = 0x0040_0000
	dataBase    = 0x1000_0000

	// scratchRegs registers are allocated to computation results; the
	// remaining architectural registers hold long-lived values (stack
	// pointer, globals, loop bounds) that are read often but written
	// rarely, as in real code.
	scratchRegs = 12
	// longLivedSrcProb is how often a non-recent source reads one of the
	// long-lived registers instead of a random scratch register.
	longLivedSrcProb = 0.45
	// minFunctionInsts is the shortest function body the generator emits;
	// real prologues/epilogues keep call->return pairs far enough apart
	// that the RSB's stabilization window is never violated.
	minFunctionInsts = 8
)

// generator carries the evolving state of one trace generation.
type generator struct {
	p   Profile
	src *rng.Source

	ops    []isa.Op // op classes, cumulative-weighted selection
	cum    []float64
	depGeo float64 // geometric parameter for dependency distance

	// producers is a ring of the destination registers of the most recent
	// register-writing instructions, most recent last.
	producers []isa.Reg

	// code structure: the static program is a set of basic blocks at fixed
	// addresses with fixed lengths, so branch sites are stable and the
	// branch predictor sees a meaningful static program.
	blockStarts []uint64
	blockLens   []int
	blockZipf   *rng.Zipf
	pc          uint64
	blockLeft   int
	siteBias    map[uint64]uint8 // branch PC -> 0 taken-biased, 1 nt-biased, 2 flaky

	// memory structure
	dataZipf *rng.Zipf
	streams  []uint64

	// call stack for matched returns; sinceCall enforces a minimum
	// function length so call->return never happens within a couple of
	// cycles (the paper: "we did not find any short function meeting those
	// conditions", Section 4.5).
	callStack []uint64
	sinceCall int
}

func newGenerator(p Profile, seed uint64) *generator {
	g := &generator{p: p, src: rng.New(seed)}
	weights := []struct {
		op isa.Op
		w  float64
	}{
		{isa.OpALU, p.ALU}, {isa.OpMul, p.Mul}, {isa.OpDiv, p.Div},
		{isa.OpFPAdd, p.FPAdd}, {isa.OpFPMul, p.FPMul}, {isa.OpFPDiv, p.FPDiv},
		{isa.OpLoad, p.Load}, {isa.OpStore, p.Store},
		{isa.OpBranch, p.Branch}, {isa.OpCall, p.Call}, {isa.OpFence, p.Fence},
	}
	total := 0.0
	for _, w := range weights {
		if w.w < 0 {
			panic(fmt.Sprintf("workload %q: negative weight for %v", p.Name, w.op))
		}
		total += w.w
	}
	acc := 0.0
	for _, w := range weights {
		if w.w == 0 {
			continue
		}
		acc += w.w / total
		g.ops = append(g.ops, w.op)
		g.cum = append(g.cum, acc)
	}
	g.cum[len(g.cum)-1] = 1

	g.depGeo = 1 / p.DepDistMean

	nBlocks := int(p.CodeFootprint / (instBytes * blockStride))
	if nBlocks < 4 {
		nBlocks = 4
	}
	g.blockStarts = make([]uint64, nBlocks)
	g.blockLens = make([]int, nBlocks)
	for i := range g.blockStarts {
		g.blockStarts[i] = codeBase + uint64(i)*instBytes*blockStride
		l := g.src.Geometric(1 / p.BlockLenMean)
		if l > blockStride {
			l = blockStride
		}
		if l < 2 {
			l = 2 // room for at least one body op and the terminator
		}
		g.blockLens[i] = l
	}
	g.blockZipf = rng.NewZipf(g.src.Fork(), nBlocks, 1.1)
	g.siteBias = make(map[uint64]uint8)

	nLines := int(p.DataWorkingSet / lineBytes)
	if nLines < 1 {
		nLines = 1
	}
	g.dataZipf = rng.NewZipf(g.src.Fork(), nLines, p.DataZipfTheta)

	streams := p.StrideStreams
	if streams < 1 {
		streams = 1
	}
	g.streams = make([]uint64, streams)
	for i := range g.streams {
		g.streams[i] = dataBase + g.src.Uint64n(p.DataWorkingSet)&^7
	}

	g.producers = make([]isa.Reg, 0, 64)
	g.enterBlock()
	return g
}

// enterBlock jumps to a popularity-weighted block start.
func (g *generator) enterBlock() {
	idx := g.blockZipf.Next()
	g.pc = g.blockStarts[idx]
	g.blockLeft = g.blockLens[idx]
}

// enterBlockAt resumes execution at an arbitrary PC (a return target or a
// branch fall-through), computing how much straight-line code remains. A PC
// past its block's terminator (the usual case for a return, since calls
// terminate blocks) executes the remainder of the block's address slot as a
// continuation, so return targets are honoured exactly and the RSB sees
// resolvable addresses.
func (g *generator) enterBlockAt(pc uint64) {
	idx := int((pc - codeBase) / (instBytes * blockStride))
	if pc < codeBase || idx < 0 || idx >= len(g.blockStarts) {
		// Off the end of the laid-out region (a fall-through past the last
		// block): execute a short straight-line continuation there; its
		// terminator jumps back into the region. PCs stay continuous.
		g.pc = pc
		g.blockLeft = 4
		return
	}
	off := int((pc - g.blockStarts[idx]) / instBytes)
	left := g.blockLens[idx] - off
	if left < 1 {
		left = blockStride - off
		if left < 1 {
			idx = (idx + 1) % len(g.blockStarts)
			g.pc = g.blockStarts[idx]
			g.blockLeft = g.blockLens[idx]
			return
		}
	}
	g.pc = pc
	g.blockLeft = left
}

// pickSrc selects a source register: usually the destination of a recent
// producer at a geometric distance; otherwise a long-lived register (stack
// pointer, global) or a random scratch register whose producer is far in
// the past.
func (g *generator) pickSrc() isa.Reg {
	if len(g.producers) > 0 && g.src.Bool(g.p.UseRecentProb) {
		d := g.src.Geometric(g.depGeo)
		if d > len(g.producers) {
			d = len(g.producers)
		}
		return g.producers[len(g.producers)-d]
	}
	if g.src.Bool(longLivedSrcProb) {
		return isa.Reg(scratchRegs + g.src.Intn(isa.NumRegs-scratchRegs))
	}
	return isa.Reg(g.src.Intn(scratchRegs))
}

func (g *generator) pickDst() isa.Reg {
	r := isa.Reg(g.src.Intn(scratchRegs))
	g.producers = append(g.producers, r)
	if len(g.producers) > 64 {
		g.producers = g.producers[1:]
	}
	return r
}

func (g *generator) memAddr() uint64 {
	if g.src.Bool(g.p.StrideFrac) {
		i := g.src.Intn(len(g.streams))
		a := g.streams[i]
		g.streams[i] += 8
		if g.streams[i] >= dataBase+g.p.DataWorkingSet {
			g.streams[i] = dataBase
		}
		return a
	}
	line := uint64(g.dataZipf.Next())
	off := g.src.Uint64n(lineBytes) &^ 7
	return dataBase + line*lineBytes + off
}

func (g *generator) branchOutcome(pc uint64) bool {
	bias, ok := g.siteBias[pc]
	if !ok {
		switch {
		case g.src.Bool(g.p.FlakyBranchFrac):
			bias = 2
		case g.src.Bool(0.6):
			bias = 0 // taken-biased (loop back-edges dominate)
		default:
			bias = 1
		}
		g.siteBias[pc] = bias
	}
	switch bias {
	case 0:
		return !g.src.Bool(0.03) // strongly taken
	case 1:
		return g.src.Bool(0.03) // strongly not-taken
	default:
		return g.src.Bool(g.p.TakenBias)
	}
}

// next produces the next instruction.
func (g *generator) next() trace.Inst {
	pc := g.pc
	g.pc += instBytes
	g.sinceCall++

	var op isa.Op
	if g.blockLeft <= 1 {
		// Block terminator: control transfer (or a matched return).
		switch {
		case len(g.callStack) > 0 && g.sinceCall >= minFunctionInsts && g.src.Bool(0.5):
			op = isa.OpReturn
		case g.src.Bool(g.callFrac()):
			op = isa.OpCall
		default:
			op = isa.OpBranch
		}
	} else {
		op = g.pickOp()
		// Control ops only at block ends; re-roll the few that collide.
		for isa.IsCtrl(op) && g.blockLeft > 1 {
			op = g.pickOp()
		}
	}
	g.blockLeft--

	in := trace.Inst{PC: pc, Op: op, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	switch op {
	case isa.OpNop, isa.OpFence:
		// no operands
	case isa.OpLoad:
		in.Src1 = g.pickSrc() // address base
		in.Addr = g.memAddr()
		in.Size = 8
		in.Dst = g.pickDst()
	case isa.OpStore:
		in.Src1 = g.pickSrc() // address base
		in.Src2 = g.pickSrc() // stored value
		in.Addr = g.memAddr()
		in.Size = 8
	case isa.OpBranch:
		in.Src1 = g.pickSrc()
		in.Taken = g.branchOutcome(pc)
		if in.Taken {
			g.enterBlock()
			in.Addr = g.pc
		} else {
			g.enterBlockAt(g.pc)
		}
	case isa.OpCall:
		g.callStack = append(g.callStack, g.pc)
		if len(g.callStack) > 64 {
			g.callStack = g.callStack[1:]
		}
		g.sinceCall = 0
		g.enterBlock()
		in.Addr = g.pc
		in.Taken = true
	case isa.OpReturn:
		ret := g.callStack[len(g.callStack)-1]
		g.callStack = g.callStack[:len(g.callStack)-1]
		g.enterBlockAt(ret)
		in.Addr = g.pc
		in.Taken = true
	default: // register-computing ops
		in.Src1 = g.pickSrc()
		if g.src.Bool(g.p.Src2Prob) {
			in.Src2 = g.pickSrc()
		}
		in.Dst = g.pickDst()
	}
	return in
}

func (g *generator) pickOp() isa.Op {
	u := g.src.Float64()
	for i, c := range g.cum {
		if u < c {
			return g.ops[i]
		}
	}
	return g.ops[len(g.ops)-1]
}

func (g *generator) callFrac() float64 {
	ctrl := g.p.Branch + g.p.Call
	if ctrl <= 0 {
		return 0
	}
	return g.p.Call / ctrl
}

// Generate produces a deterministic trace of n instructions for profile p
// and the given seed. It panics on invalid profiles (a programming error in
// the caller's experiment setup).
func Generate(p Profile, n int, seed uint64) *trace.Trace {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g := newGenerator(p, seed)
	t := &trace.Trace{
		Name:  fmt.Sprintf("%s-%d", p.Name, seed),
		Insts: make([]trace.Inst, n),
	}
	for i := 0; i < n; i++ {
		t.Insts[i] = g.next()
	}
	return t
}
