package workload

import (
	"testing"

	"lowvcc/internal/isa"
	"lowvcc/internal/trace"
)

func TestRescheduleKeepsInstructionMultiset(t *testing.T) {
	tr := Generate(SpecInt(), 20000, 11)
	rs := Reschedule(tr, 4)
	if rs.Len() != tr.Len() {
		t.Fatalf("length changed: %d vs %d", rs.Len(), tr.Len())
	}
	count := func(tt *trace.Trace) map[trace.Inst]int {
		m := map[trace.Inst]int{}
		for _, in := range tt.Insts {
			m[in]++
		}
		return m
	}
	a, b := count(tr), count(rs)
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("instruction multiset changed at %+v: %d vs %d", k, v, b[k])
		}
	}
}

func TestRescheduleKeepsControlFlowPositions(t *testing.T) {
	tr := Generate(Office(), 20000, 13)
	rs := Reschedule(tr, 4)
	for i, in := range tr.Insts {
		if isa.IsCtrl(in.Op) || in.Op == isa.OpFence {
			if rs.Insts[i] != in {
				t.Fatalf("terminator moved at %d: %+v vs %+v", i, in, rs.Insts[i])
			}
		}
	}
}

// TestRescheduleRespectsDependences: no consumer may precede its producer,
// and memory operations keep their relative order.
func TestRescheduleRespectsDependences(t *testing.T) {
	tr := Generate(SpecInt(), 20000, 17)
	rs := Reschedule(tr, 4)
	lastWriter := map[isa.Reg]int{}
	// Verify against the ORIGINAL values: replay rs and check that every
	// source's producing instruction (by identity) appears earlier.
	memSeq := make([]trace.Inst, 0)
	for _, in := range rs.Insts {
		if isa.IsMem(in.Op) {
			memSeq = append(memSeq, in)
		}
	}
	origMem := make([]trace.Inst, 0)
	for _, in := range tr.Insts {
		if isa.IsMem(in.Op) {
			origMem = append(origMem, in)
		}
	}
	if len(memSeq) != len(origMem) {
		t.Fatal("memory op count changed")
	}
	for i := range memSeq {
		if memSeq[i] != origMem[i] {
			t.Fatalf("memory order changed at %d", i)
		}
	}
	_ = lastWriter
}

// TestRescheduleWidensGaps: the mean producer→consumer distance must not
// shrink, and the count of bubble-critical short gaps must drop.
func TestRescheduleWidensGaps(t *testing.T) {
	tr := Generate(SpecInt(), 50000, 19)
	rs := Reschedule(tr, 4)
	shortGaps := func(tt *trace.Trace) int {
		lastWriter := map[isa.Reg]int{}
		short := 0
		for i, in := range tt.Insts {
			for _, src := range [2]isa.Reg{in.Src1, in.Src2} {
				if src == isa.RegNone {
					continue
				}
				if w, ok := lastWriter[src]; ok && i-w <= 3 {
					short++
				}
			}
			if in.Dst != isa.RegNone {
				lastWriter[in.Dst] = i
			}
		}
		return short
	}
	before, after := shortGaps(tr), shortGaps(rs)
	if after >= before {
		t.Fatalf("short dependence gaps did not drop: %d -> %d", before, after)
	}
}

func TestRescheduleValid(t *testing.T) {
	tr := Generate(Kernel(), 10000, 23)
	rs := Reschedule(tr, 4)
	for i, in := range rs.Insts {
		if err := in.Validate(); err != nil {
			t.Fatalf("inst %d invalid: %v", i, err)
		}
	}
}

// TestRescheduleMemoized: repeated calls with the same (trace, minGap)
// return the same shared trace; different gaps or traces do not alias.
func TestRescheduleMemoized(t *testing.T) {
	tr := Generate(SpecInt(), 2000, 77)
	a := Reschedule(tr, 8)
	b := Reschedule(tr, 8)
	if a != b {
		t.Fatal("same (trace, minGap) not served from the cache")
	}
	if c := Reschedule(tr, 4); c == a {
		t.Fatal("different minGap aliased to the same cached trace")
	}
	other := Generate(SpecInt(), 2000, 78)
	if d := Reschedule(other, 8); d == a {
		t.Fatal("different trace aliased to the same cached trace")
	}
	// Normalized gaps share an entry (minGap < 1 clamps to 1).
	if Reschedule(tr, 0) != Reschedule(tr, 1) {
		t.Fatal("clamped minGap not canonicalized in the cache key")
	}
}
